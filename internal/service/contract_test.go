package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"factcheck/internal/persist"
	"factcheck/internal/synth"
)

// rawDo issues one raw HTTP request — the contract tests bypass the Go
// client on purpose: the envelope is a wire-format promise, not a
// client-library one.
func rawDo(t *testing.T, base, method, path, body string) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, base+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// decodeEnvelope asserts the response body is exactly the JSON error
// envelope and returns its payload.
func decodeEnvelope(t *testing.T, resp *http.Response) ErrorInfo {
	t.Helper()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var body errorBody
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		t.Fatalf("response %q is not the error envelope: %v", raw, err)
	}
	if body.Error.Code == "" {
		t.Fatalf("envelope %q carries no error code", raw)
	}
	if body.Error.Message == "" {
		t.Fatalf("envelope %q carries no message", raw)
	}
	return body.Error
}

// assertEnvelope checks one error response end to end: status, stable
// code, the Retry-After header mirroring the envelope hint, and — on
// legacy unversioned paths — the deprecation headers.
func assertEnvelope(t *testing.T, resp *http.Response, status int, code string, retryAfter int, legacy bool) {
	t.Helper()
	if resp.StatusCode != status {
		t.Fatalf("status = %d, want %d", resp.StatusCode, status)
	}
	info := decodeEnvelope(t, resp)
	if info.Code != code {
		t.Fatalf("envelope code = %q, want %q", info.Code, code)
	}
	if info.RetryAfter != retryAfter {
		t.Fatalf("envelope retryAfter = %d, want %d", info.RetryAfter, retryAfter)
	}
	header := resp.Header.Get("Retry-After")
	if retryAfter > 0 {
		if header != fmt.Sprint(retryAfter) {
			t.Fatalf("Retry-After header = %q, want %d (must mirror the envelope)", header, retryAfter)
		}
	} else if header != "" {
		t.Fatalf("Retry-After header = %q on a response with no envelope hint", header)
	}
	if legacy {
		if resp.Header.Get("Deprecation") != "true" {
			t.Fatal("legacy route missing the Deprecation header")
		}
		if link := resp.Header.Get("Link"); !strings.Contains(link, `rel="successor-version"`) || !strings.Contains(link, "/v1/") {
			t.Fatalf("legacy route Link header = %q, want a /v1 successor-version", link)
		}
	} else {
		if resp.Header.Get("Deprecation") != "" {
			t.Fatal("/v1 route carries a Deprecation header")
		}
	}
}

// brokenStore fails every Load, modelling a store whose medium died
// under a running manager.
type brokenStore struct{ persist.Store }

func (brokenStore) Load(string) (persist.Record, bool, error) {
	return persist.Record{}, false, errors.New("stored records unreadable")
}

// TestErrorEnvelopeContract drives every handler error path — on the
// canonical /v1 surface and, where a legacy alias exists, on the
// unversioned path too — and asserts each refusal carries the JSON
// error envelope with its stable code, the mirrored Retry-After hint,
// and the deprecation headers exactly on the legacy aliases.
func TestErrorEnvelopeContract(t *testing.T) {
	client, m := newTestServer(t, Config{Workers: 1, MailboxCap: 1})
	base := client.BaseURL

	// "live": a session mid-run, one answer in, with a stale sequence
	// and a wrong claim prepared for the 409 cases.
	if _, err := m.OpenAs("live", fastOpen("wiki", 0.1, 41)); err != nil {
		t.Fatal(err)
	}
	n1, err := m.Next("live", 1)
	if err != nil {
		t.Fatal(err)
	}
	staleSeq := n1.Seq
	st, err := m.Answer("live", AnswerRequest{Claim: n1.Candidates[0].Claim, Oracle: true})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := m.Next("live", 1)
	if err != nil {
		t.Fatal(err)
	}
	expected := n2.Candidates[0].Claim
	wrong := (expected + 1) % st.Claims

	// "done": driven to completion, so answering it again conflicts.
	if _, err := m.OpenAs("done", fastOpen("wiki", 0.1, 43)); err != nil {
		t.Fatal(err)
	}
	for {
		next, err := m.Next("done", 1)
		if err != nil {
			t.Fatal(err)
		}
		if next.Done {
			break
		}
		if _, err := m.Answer("done", AnswerRequest{Claim: next.Candidates[0].Claim, Oracle: true}); err != nil {
			t.Fatal(err)
		}
	}

	// "moved": exported to another backend; requests answer 410.
	if _, err := m.OpenAs("moved", fastOpen("wiki", 0.1, 47)); err != nil {
		t.Fatal(err)
	}
	driveOracle(t, m, "moved", 1)
	if _, err := m.Export("moved"); err != nil {
		t.Fatal(err)
	}

	// "busy": its lock held for the whole table, so ingests queue
	// instead of applying; with MailboxCap 1 the second is refused.
	if _, err := m.OpenAs("busy", fastOpen("wiki", 0.08, 53)); err != nil {
		t.Fatal(err)
	}
	busy, err := m.get("busy")
	if err != nil {
		t.Fatal(err)
	}
	d1 := synth.GenerateDelta(wikiShape(busy.corpus.DB), 0.1, 61)
	prof := wikiShape(busy.corpus.DB)
	growShape(&prof, d1)
	d2 := synth.GenerateDelta(prof, 0.1, 67)
	ingestBody := func(d any) string {
		b, err := json.Marshal(map[string]any{"delta": d})
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	busy.mu.Lock()
	unlockBusy := func() { busy.mu.Unlock() }
	defer func() {
		if unlockBusy != nil {
			unlockBusy()
		}
	}()
	if resp := rawDo(t, base, http.MethodPost, "/v1/sessions/busy/claims", ingestBody(d1)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("busy-session ingest answered %d, want 202 (queued)", resp.StatusCode)
	}

	// Fixture servers for the manager-wide refusals.
	fullClient, fullM := newTestServer(t, Config{Workers: 1, MaxSessions: 1})
	if _, err := fullM.Open(fastOpen("wiki", 0.1, 59)); err != nil {
		t.Fatal(err)
	}

	shutClient, shutM := newTestServer(t, Config{Workers: 1})
	shutM.Shutdown()

	persistClient, _ := newTestServer(t, Config{Workers: 1, Store: brokenStore{persist.NewMemStore()}})

	// A controller walked to the shedding rung with virtual timestamps;
	// real requests land earlier than its last evaluation, inside the
	// cadence gate, so admission control sees the rung as-is.
	shedClient, shedM := newTestServer(t, Config{Workers: 1, SLO: SLOConfig{
		P99: 0.1, WindowSeconds: 10, Slots: 5, MinSamples: 2,
		DegradeAfter: 2, ShedAfter: 2, RecoverAfter: 2,
	}})
	ctrl := shedM.Controller()
	for i := 0; i < 8; i++ {
		ctrl.ObserveAnswer(float64(i), 0.01, 0)
	}
	ctrl.ObserveAnswer(10, 0.5, 0)
	ctrl.ObserveAnswer(11, 0.5, 0)
	ctrl.ModeAt(12, 0)
	ctrl.ModeAt(14, 1)
	if got := ctrl.ModeAt(16, 2); got != ModeShedding {
		t.Fatalf("controller mode = %v, want shedding", got)
	}

	openBody := `{"profile":"wiki","scale":0.1,"seed":71,"candidatePool":4}`
	cases := []struct {
		name   string
		base   string
		method string
		path   string // canonical path, without the /v1 prefix
		body   string
		status int
		code   string
		retry  int
		legacy bool // a legacy alias exists and must serve identically
	}{
		{"open malformed body", base, "POST", "/sessions", "{not json", 400, CodeBadRequest, 0, true},
		{"open duplicate id", base, "POST", "/sessions", `{"id":"live","profile":"wiki","scale":0.1,"seed":41}`, 409, CodeExists, 0, true},
		{"next bad k", base, "GET", "/sessions/live/next?k=0", "", 400, CodeBadRequest, 0, true},
		{"next unknown session", base, "GET", "/sessions/ghost/next", "", 404, CodeNotFound, 0, true},
		{"state unknown session", base, "GET", "/sessions/ghost/state", "", 404, CodeNotFound, 0, true},
		{"snapshot unknown session", base, "GET", "/sessions/ghost/snapshot", "", 404, CodeNotFound, 0, true},
		{"export unknown session", base, "GET", "/sessions/ghost/export", "", 404, CodeNotFound, 0, true},
		{"delete unknown session", base, "DELETE", "/sessions/ghost", "", 404, CodeNotFound, 0, true},
		{"answer unknown session", base, "POST", "/sessions/ghost/answer", `{"claim":0,"oracle":true}`, 404, CodeNotFound, 0, true},
		{"answer malformed body", base, "POST", "/sessions/live/answer", "{not json", 400, CodeBadRequest, 0, true},
		{"import malformed body", base, "POST", "/sessions/ghost/import", "{not json", 400, CodeBadRequest, 0, true},
		{"answer wrong claim", base, "POST", "/sessions/live/answer",
			fmt.Sprintf(`{"claim":%d,"oracle":true}`, wrong), 409, CodeWrongClaim, 0, true},
		{"answer stale seq", base, "POST", "/sessions/live/answer",
			fmt.Sprintf(`{"claim":%d,"oracle":true,"seq":%d}`, expected, staleSeq), 409, CodeStaleSeq, 0, true},
		{"answer finished session", base, "POST", "/sessions/done/answer", `{"claim":0,"oracle":true}`, 409, CodeDone, 0, true},
		{"exported session", base, "GET", "/sessions/moved/state", "", 410, CodeMigrated, 0, true},
		{"ingest unknown session", base, "POST", "/sessions/ghost/claims", ingestBody(d1), 404, CodeNotFound, 0, false},
		{"ingest malformed body", base, "POST", "/sessions/live/claims", "{not json", 400, CodeBadRequest, 0, false},
		{"ingest empty delta", base, "POST", "/sessions/live/claims", `{"delta":{}}`, 400, CodeBadRequest, 0, false},
		{"ingest truth mismatch", base, "POST", "/sessions/live/claims", `{"delta":{"newClaims":2,"truth":[true]}}`, 400, CodeBadRequest, 0, false},
		{"sources endpoint with claims", base, "POST", "/sessions/live/sources",
			`{"delta":{"newClaims":1,"truth":[true]}}`, 400, CodeBadRequest, 0, false},
		{"mailbox full", base, "POST", "/sessions/busy/claims", ingestBody(d2), 429, CodeMailboxFull, 1, false},
		{"session limit", fullClient.BaseURL, "POST", "/sessions", openBody, 503, CodeSessionLimit, 1, true},
		{"shutting down", shutClient.BaseURL, "GET", "/sessions", "", 503, CodeShuttingDown, 1, true},
		{"persist failure", persistClient.BaseURL, "DELETE", "/sessions/ghost", "", 500, CodePersistFailure, 0, true},
		{"admission shed", shedClient.BaseURL, "POST", "/sessions", openBody, 429, CodeShedding, 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := rawDo(t, tc.base, tc.method, "/v1"+tc.path, tc.body)
			assertEnvelope(t, resp, tc.status, tc.code, tc.retry, false)
			if tc.legacy {
				resp := rawDo(t, tc.base, tc.method, tc.path, tc.body)
				assertEnvelope(t, resp, tc.status, tc.code, tc.retry, true)
			}
		})
	}
	unlockBusy()
	unlockBusy = nil

	// The ingest endpoints are /v1-only: the unversioned spellings must
	// not exist, not even as deprecated aliases.
	for _, path := range []string{"/sessions/live/claims", "/sessions/live/sources"} {
		resp := rawDo(t, base, http.MethodPost, path, ingestBody(d2))
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("legacy %s answered %d, want 404 (no alias)", path, resp.StatusCode)
		}
		if resp.Header.Get("Deprecation") != "" {
			t.Fatalf("legacy %s carries a Deprecation header: the route must not exist at all", path)
		}
	}
}

// TestClientTypedErrors pins the client half of the error contract:
// every envelope code decodes into an *APIError whose Unwrap maps onto
// the matching service sentinel, so errors.Is works identically for
// over-the-wire and in-process callers.
func TestClientTypedErrors(t *testing.T) {
	client, m := newTestServer(t, Config{Workers: 1, MailboxCap: 1})

	info, err := client.Open(fastOpen("wiki", 0.1, 73))
	if err != nil {
		t.Fatal(err)
	}
	next, err := client.Next(info.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.Answer(info.ID, AnswerRequest{Claim: next.Candidates[0].Claim, Oracle: true})
	if err != nil {
		t.Fatal(err)
	}
	next2, err := client.Next(info.ID, 1)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, err error, sentinel error, status int, code string) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s: no error", name)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("%s: errors.Is failed for %v", name, err)
		}
		var api *APIError
		if !errors.As(err, &api) {
			t.Fatalf("%s: not an *APIError: %v", name, err)
		}
		if api.Status != status || api.Code != code {
			t.Fatalf("%s: APIError status/code = %d/%q, want %d/%q", name, api.Status, api.Code, status, code)
		}
	}

	_, err = client.State("ghost", false)
	check("unknown session", err, ErrNotFound, 404, CodeNotFound)

	wrong := (next2.Candidates[0].Claim + 1) % st.Claims
	_, err = client.Answer(info.ID, AnswerRequest{Claim: wrong, Oracle: true})
	check("wrong claim", err, ErrWrongClaim, 409, CodeWrongClaim)

	staleSeq := next.Seq
	_, err = client.Answer(info.ID, AnswerRequest{Claim: next2.Candidates[0].Claim, Oracle: true, Seq: &staleSeq})
	check("stale seq", err, ErrSeq, 409, CodeStaleSeq)

	_, err = client.OpenAs(info.ID, fastOpen("wiki", 0.1, 73))
	check("duplicate open", err, ErrExists, 409, CodeExists)

	// Mailbox backpressure: hold the session lock so deltas queue, fill
	// the 1-slot mailbox, and assert the refusal carries the hint.
	s, err := m.get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	d1 := synth.GenerateDelta(wikiShape(s.corpus.DB), 0.1, 79)
	prof := wikiShape(s.corpus.DB)
	growShape(&prof, d1)
	d2 := synth.GenerateDelta(prof, 0.1, 83)
	s.mu.Lock()
	if _, err := client.IngestClaims(info.ID, IngestRequest{Delta: d1}); err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	_, err = client.IngestClaims(info.ID, IngestRequest{Delta: d2})
	s.mu.Unlock()
	check("mailbox full", err, ErrMailboxFull, 429, CodeMailboxFull)
	var api *APIError
	if !errors.As(err, &api) || api.RetryAfter <= 0 {
		t.Fatalf("mailbox refusal carries no Retry-After hint: %v", err)
	}

	// Migration: export the session, then address it.
	if _, err := m.Export(info.ID); err != nil {
		t.Fatal(err)
	}
	_, err = client.State(info.ID, false)
	check("exported session", err, ErrMigrated, 410, CodeMigrated)

	fullClient, fullM := newTestServer(t, Config{Workers: 1, MaxSessions: 1})
	if _, err := fullM.Open(fastOpen("wiki", 0.1, 89)); err != nil {
		t.Fatal(err)
	}
	_, err = fullClient.Open(fastOpen("wiki", 0.1, 97))
	check("session limit", err, ErrFull, 503, CodeSessionLimit)

	shutClient, shutM := newTestServer(t, Config{Workers: 1})
	shutM.Shutdown()
	_, err = shutClient.Sessions()
	check("shutdown", err, ErrShutdown, 503, CodeShuttingDown)

	persistClient, _ := newTestServer(t, Config{Workers: 1, Store: brokenStore{persist.NewMemStore()}})
	err = persistClient.Delete("ghost")
	check("persist failure", err, ErrPersist, 500, CodePersistFailure)
}
