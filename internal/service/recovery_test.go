package service

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"factcheck/internal/core"
	"factcheck/internal/persist"
)

// driveOracle answers n oracle-driven validations against a manager,
// returning the final state.
func driveOracle(t *testing.T, m *Manager, id string, n int) StateResponse {
	t.Helper()
	var st StateResponse
	for i := 0; i < n; i++ {
		next, err := m.Next(id, 1)
		if err != nil {
			t.Fatalf("next %d: %v", i, err)
		}
		if next.Done {
			t.Fatalf("session finished after %d answers, wanted %d", i, n)
		}
		st, err = m.Answer(id, AnswerRequest{Claim: next.Candidates[0].Claim, Oracle: true})
		if err != nil {
			t.Fatalf("answer %d: %v", i, err)
		}
	}
	return st
}

// assertSameTrace compares two sessions' transcripts and final states
// bit-for-bit across two managers.
func assertSameTrace(t *testing.T, got *Manager, gotID string, want *Manager, wantID string) {
	t.Helper()
	gs, err := got.Snapshot(gotID)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := want.Snapshot(wantID)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs.Elicitations) != len(ws.Elicitations) {
		t.Fatalf("transcript lengths diverged: %d vs %d", len(gs.Elicitations), len(ws.Elicitations))
	}
	for i := range ws.Elicitations {
		// DeepEqual, not ==: ingest records hold the delta by pointer.
		if !reflect.DeepEqual(gs.Elicitations[i], ws.Elicitations[i]) {
			t.Fatalf("transcripts diverged at %d: %+v vs %+v", i, gs.Elicitations[i], ws.Elicitations[i])
		}
	}
	gst, err := got.State(gotID, true)
	if err != nil {
		t.Fatal(err)
	}
	wst, err := want.State(wantID, true)
	if err != nil {
		t.Fatal(err)
	}
	if gst.Labeled != wst.Labeled || gst.Z != wst.Z || gst.Precision != wst.Precision ||
		gst.Iterations != wst.Iterations {
		t.Fatalf("states diverged:\n got  %+v\n want %+v", gst, wst)
	}
	for c := range wst.Marginals {
		if gst.Marginals[c] != wst.Marginals[c] {
			t.Fatalf("marginal P(%d) diverged: %v vs %v", c, gst.Marginals[c], wst.Marginals[c])
		}
	}
}

func fileManager(t *testing.T, dir string, checkpointEvery int) *Manager {
	t.Helper()
	fs, err := persist.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return NewManager(Config{Workers: 1, Store: fs, CheckpointEvery: checkpointEvery})
}

// TestCrashRecoveryBitIdentical is the durability acceptance test: a
// manager is abandoned mid-session without any shutdown (the in-process
// equivalent of SIGKILL — the file store holds no state outside the
// files themselves), a fresh manager over the same directory recovers
// the session from checkpoint + WAL, and the resumed run's selection
// trace and final state are bit-identical to an uninterrupted run with
// the same seed.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	req := fastOpen("wiki", 0.08, 21)
	const before, after = 4, 4

	// Uninterrupted reference run.
	ref := NewManager(Config{Workers: 1})
	defer ref.Shutdown()
	refInfo, err := ref.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	driveOracle(t, ref, refInfo.ID, before+after)

	// Interrupted run: answer, "crash", recover, resume.
	dir := t.TempDir()
	m1 := fileManager(t, dir, 3) // forces both a compaction and a WAL tail
	info, err := m1.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	driveOracle(t, m1, info.ID, before)
	// No Shutdown, no Close: m1 is simply abandoned, as SIGKILL would.

	m2 := fileManager(t, dir, 3)
	defer m2.Shutdown()
	n, err := m2.RecoverAll()
	if err != nil {
		t.Fatalf("RecoverAll: %v", err)
	}
	if n != 1 {
		t.Fatalf("RecoverAll found %d sessions, want 1", n)
	}
	if got := m2.Spilled(); got != 1 {
		t.Fatalf("Spilled = %d before first touch, want 1", got)
	}
	st, err := m2.State(info.ID, false) // first touch revives by replay
	if err != nil {
		t.Fatalf("recovered session unavailable: %v", err)
	}
	if st.Labeled != before {
		t.Fatalf("recovered session labeled %d claims, want %d", st.Labeled, before)
	}
	driveOracle(t, m2, info.ID, after)
	assertSameTrace(t, m2, info.ID, ref, refInfo.ID)
}

// TestCrashRecoveryTornWALTail crashes "mid-append": the WAL's final
// entry is torn in half. Recovery drops the partial entry (that answer's
// response was never sent, so the client re-asks), and re-answering
// converges to a trace bit-identical to an uninterrupted run.
func TestCrashRecoveryTornWALTail(t *testing.T) {
	req := fastOpen("wiki", 0.08, 22)
	const before, after = 3, 3

	ref := NewManager(Config{Workers: 1})
	defer ref.Shutdown()
	refInfo, err := ref.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	driveOracle(t, ref, refInfo.ID, before+after)

	dir := t.TempDir()
	m1 := fileManager(t, dir, 100) // keep everything in the WAL
	info, err := m1.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	driveOracle(t, m1, info.ID, before)

	// Tear the last WAL entry, as a crash mid-write would.
	wal := filepath.Join(dir, info.ID+".wal")
	buf, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, buf[:len(buf)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := fileManager(t, dir, 100)
	defer m2.Shutdown()
	st, err := m2.State(info.ID, false)
	if err != nil {
		t.Fatalf("recovered session unavailable: %v", err)
	}
	if st.Labeled != before-1 {
		t.Fatalf("recovery kept %d answers, want %d (torn entry dropped)", st.Labeled, before-1)
	}
	// The lost answer is re-elicited, then the run continues.
	driveOracle(t, m2, info.ID, 1+after)
	assertSameTrace(t, m2, info.ID, ref, refInfo.ID)
}

// TestGracefulShutdownSpillsSessions: Shutdown writes a final checkpoint
// for every live session, so a restart over the same directory resumes
// them — the clean-restart counterpart of the crash tests.
func TestGracefulShutdownSpillsSessions(t *testing.T) {
	req := fastOpen("wiki", 0.08, 23)
	dir := t.TempDir()
	m1 := fileManager(t, dir, 100)
	info, err := m1.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	before := driveOracle(t, m1, info.ID, 3)
	m1.Shutdown()
	// Shutdown compacts: the WAL is gone, the checkpoint is complete.
	if _, err := os.Stat(filepath.Join(dir, info.ID+".wal")); !os.IsNotExist(err) {
		t.Fatalf("WAL survived the shutdown checkpoint: %v", err)
	}

	m2 := fileManager(t, dir, 100)
	defer m2.Shutdown()
	st, err := m2.State(info.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Labeled != before.Labeled || st.Z != before.Z || st.Precision != before.Precision {
		t.Fatalf("restarted state diverged: got (labeled=%d z=%v p=%v), want (labeled=%d z=%v p=%v)",
			st.Labeled, st.Z, st.Precision, before.Labeled, before.Z, before.Precision)
	}
}

// TestDeleteSpilledSession: deleting an evicted (spilled) session
// removes its durable record, after which the id is gone for good.
func TestDeleteSpilledSession(t *testing.T) {
	dir := t.TempDir()
	m := fileManager(t, dir, 3)
	defer m.Shutdown()
	info, err := m.Open(fastOpen("wiki", 0.05, 24))
	if err != nil {
		t.Fatal(err)
	}
	driveOracle(t, m, info.ID, 1)
	if n := m.EvictIdle(0); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if err := m.Delete(info.ID); err != nil {
		t.Fatalf("deleting a spilled session: %v", err)
	}
	if _, err := m.State(info.ID, false); err != ErrNotFound {
		t.Fatalf("deleted session still serveable: %v", err)
	}
	ids, err := m.Store().List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("store still holds %v after delete", ids)
	}
}

// TestSpillSkipsDeletedSession pins the janitor-vs-Delete race: the
// janitor collects a victim, Delete closes it and removes its record,
// and the janitor's spill must then skip the closed session instead of
// checkpointing it — which would resurrect the deleted record.
func TestSpillSkipsDeletedSession(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown()
	info, err := m.Open(fastOpen("wiki", 0.05, 31))
	if err != nil {
		t.Fatal(err)
	}
	m.mu.Lock()
	s := m.sessions[info.ID]
	m.mu.Unlock()
	if err := m.Delete(info.ID); err != nil {
		t.Fatal(err)
	}
	if m.spill(s, func(*Session) bool { return true }) {
		t.Fatal("spill evicted a deleted session")
	}
	if ids, _ := m.Store().List(); len(ids) != 0 {
		t.Fatalf("spill resurrected the deleted record: store holds %v", ids)
	}
}

// gateLoadStore wraps a Store and parks the first Load after it has
// read the record, modelling a Delete landing while a revival is
// mid-replay. Later Loads (Delete's own lookup) pass through.
type gateLoadStore struct {
	persist.Store
	once    sync.Once
	entered chan struct{} // closed once the gated Load holds the record
	release chan struct{} // the gated Load returns after this closes
}

func (g *gateLoadStore) Load(id string) (persist.Record, bool, error) {
	rec, ok, err := g.Store.Load(id)
	gated := false
	g.once.Do(func() { gated = true })
	if gated {
		close(g.entered)
		<-g.release
	}
	return rec, ok, err
}

// TestDeleteDuringRevivalDiscards pins the revive-vs-Delete race: a
// Delete that lands after a revival has read the record but before it
// is inserted must win — the revival discards its replay instead of
// resurrecting the session.
func TestDeleteDuringRevivalDiscards(t *testing.T) {
	gate := &gateLoadStore{
		Store:   persist.NewMemStore(),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	m := NewManager(Config{Workers: 1, Store: gate})
	defer m.Shutdown()
	info, err := m.Open(fastOpen("wiki", 0.05, 32))
	if err != nil {
		t.Fatal(err)
	}
	driveOracle(t, m, info.ID, 1)
	if n := m.EvictIdle(0); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}

	got := make(chan error, 1)
	go func() {
		_, err := m.State(info.ID, false) // revives; parks in the gated Load
		got <- err
	}()
	select {
	case <-gate.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("revival never reached the store")
	}
	if err := m.Delete(info.ID); err != nil {
		t.Fatalf("delete during revival: %v", err)
	}
	close(gate.release)
	if err := <-got; !errors.Is(err, ErrNotFound) {
		t.Fatalf("revival racing a delete returned %v, want ErrNotFound", err)
	}
	if n := m.Len(); n != 0 {
		t.Fatalf("deleted session came back to life: %d live sessions", n)
	}
	if ids, _ := m.Store().List(); len(ids) != 0 {
		t.Fatalf("store holds %v after delete", ids)
	}
	if _, err := m.State(info.ID, false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted session still serveable: %v", err)
	}
}

// TestSnapshotVersionRoundTrip: served snapshots carry the core
// encoding version, and restore rejects a snapshot from a newer build
// instead of replaying it under changed semantics.
func TestSnapshotVersionRoundTrip(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown()
	info, err := m.Open(fastOpen("wiki", 0.05, 33))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != core.SnapshotVersion {
		t.Fatalf("snapshot version = %d, want %d", snap.Version, core.SnapshotVersion)
	}
	if _, err := m.Restore(snap); err != nil {
		t.Fatalf("restoring a current-version snapshot: %v", err)
	}
	snap.Version = core.SnapshotVersion + 1
	if _, err := m.Restore(snap); err == nil {
		t.Fatal("restore accepted a snapshot from a newer build")
	}
}
