package service

import (
	"errors"
	"reflect"
	"testing"

	"factcheck/internal/core"
	"factcheck/internal/factdb"
	"factcheck/internal/stats"
	"factcheck/internal/synth"
)

// liveTruth answers from a truth slice read at call time, so verdicts
// stay defined for claims ingested after construction.
type liveTruth struct{ truth *[]bool }

func (o *liveTruth) Validate(c int) (bool, bool) { return (*o.truth)[c], true }

// wikiShape returns the wiki profile's statistical knobs at a
// database's actual totals — the shape synth.GenerateDelta needs to
// produce a delta whose existing-row references validate.
func wikiShape(db *factdb.DB) synth.Profile {
	p := synth.Wikipedia
	p.Claims = db.NumClaims
	p.Sources = len(db.Sources)
	p.Documents = len(db.Documents)
	return p
}

func growShape(p *synth.Profile, d factdb.Delta) {
	p.Claims += d.NewClaims
	p.Sources += len(d.Sources)
	p.Documents += len(d.Documents)
}

// TestServedIngestTraceBitIdenticalToLibrary extends the fidelity
// acceptance test to the streaming path: a session driven over HTTP
// with answers interleaved with corpus deltas must stay bit-identical
// — transcript, ingest records included, z, marginals — to a library
// core.Session fed the identical interleaving.
func TestServedIngestTraceBitIdenticalToLibrary(t *testing.T) {
	req := fastOpen("wiki", 0.1, 17)

	opts, err := buildOptions(req)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 1
	corpus, err := BuildCorpus(req)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.OpenSession(corpus.DB, opts)
	if err != nil {
		t.Fatal(err)
	}
	truth := append([]bool(nil), corpus.Truth...)
	oracle := &liveTruth{&truth}

	client, _ := newTestServer(t, Config{Workers: 1})
	info, err := client.Open(req)
	if err != nil {
		t.Fatal(err)
	}

	prof := wikiShape(corpus.DB)
	answerBoth := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			next, err := client.Next(info.ID, 1)
			if err != nil {
				t.Fatal(err)
			}
			if next.Done {
				t.Fatal("served session finished early")
			}
			if _, err := client.Answer(info.ID, AnswerRequest{Claim: next.Candidates[0].Claim, Oracle: true}); err != nil {
				t.Fatal(err)
			}
			ref.Step(oracle)
		}
	}
	for r := 0; r < 3; r++ {
		answerBoth(2)
		d := synth.GenerateDelta(prof, 0.08, stats.StreamSeed(606, uint64(r)))
		resp, err := client.IngestClaims(info.ID, IngestRequest{Delta: d})
		if err != nil {
			t.Fatalf("round %d: served ingest: %v", r, err)
		}
		growShape(&prof, d)
		if resp.Claims != prof.Claims || resp.Sources != prof.Sources || resp.Documents != prof.Documents {
			t.Fatalf("round %d: virtual totals %d/%d/%d, want %d/%d/%d",
				r, resp.Claims, resp.Sources, resp.Documents, prof.Claims, prof.Sources, prof.Documents)
		}
		if _, err := ref.Ingest(d); err != nil {
			t.Fatalf("round %d: library ingest: %v", r, err)
		}
		truth = append(truth, d.Truth...)
	}
	answerBoth(2) // forces a drain of any still-queued delta before comparing

	snap, err := client.Snapshot(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Snapshot().Elicitations
	if len(snap.Elicitations) != len(want) {
		t.Fatalf("transcript lengths differ: served %d, library %d", len(snap.Elicitations), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(snap.Elicitations[i], want[i]) {
			t.Fatalf("transcripts diverged at %d:\n served  %+v\n library %+v", i, snap.Elicitations[i], want[i])
		}
	}
	st, err := client.State(info.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.Z != ref.ZScore() {
		t.Fatalf("z diverged: served %v, library %v", st.Z, ref.ZScore())
	}
	if len(st.Marginals) != ref.DB.NumClaims {
		t.Fatalf("marginals cover %d claims, library corpus has %d", len(st.Marginals), ref.DB.NumClaims)
	}
	for c, p := range st.Marginals {
		if p != ref.State.P(c) {
			t.Fatalf("marginal P(%d) diverged: served %v, library %v", c, p, ref.State.P(c))
		}
	}
}

// TestIngestSnapshotImportBitIdentical: a snapshot whose transcript
// contains ingest records must import into a second session that
// regrows the corpus by replay and then runs in lockstep with the
// original.
func TestIngestSnapshotImportBitIdentical(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown()
	info, err := m.Open(fastOpen("wiki", 0.08, 23))
	if err != nil {
		t.Fatal(err)
	}
	driveOracle(t, m, info.ID, 3)
	s, err := m.get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	d := synth.GenerateDelta(wikiShape(s.corpus.DB), 0.1, 9)
	if _, err := m.Ingest(info.ID, IngestRequest{Delta: d}); err != nil {
		t.Fatal(err)
	}
	driveOracle(t, m, info.ID, 2)

	snap, err := m.Snapshot(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	var hasIngest bool
	for _, e := range snap.Elicitations {
		hasIngest = hasIngest || e.Ingest != nil
	}
	if !hasIngest {
		t.Fatal("snapshot carries no ingest record")
	}
	if _, err := m.Import("replica", snap); err != nil {
		t.Fatalf("import with ingest records: %v", err)
	}
	assertSameTrace(t, m, "replica", m, info.ID)
	driveOracle(t, m, info.ID, 2)
	driveOracle(t, m, "replica", 2)
	assertSameTrace(t, m, "replica", m, info.ID)
}

// TestCrashRecoveryWithIngestBitIdentical extends the durability
// acceptance test to streaming arrivals: a manager is abandoned without
// shutdown after answers and an applied corpus delta, a fresh manager
// over the same directory replays checkpoint + WAL (ingest records
// included), and the resumed run stays bit-identical to an
// uninterrupted reference run fed the same interleaving.
func TestCrashRecoveryWithIngestBitIdentical(t *testing.T) {
	req := fastOpen("wiki", 0.08, 29)
	corpus, err := BuildCorpus(req)
	if err != nil {
		t.Fatal(err)
	}
	d := synth.GenerateDelta(wikiShape(corpus.DB), 0.1, 31)

	drive := func(m *Manager, id string) {
		t.Helper()
		driveOracle(t, m, id, 3)
		if _, err := m.Ingest(id, IngestRequest{Delta: d}); err != nil {
			t.Fatal(err)
		}
		// The trailing answers drain the mailbox if the apply was not
		// inline, so the delta is in the WAL before the crash.
		driveOracle(t, m, id, 3)
	}

	ref := NewManager(Config{Workers: 1})
	defer ref.Shutdown()
	refInfo, err := ref.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	drive(ref, refInfo.ID)

	dir := t.TempDir()
	m1 := fileManager(t, dir, 3) // forces a compaction below the ingest record plus a WAL tail
	info, err := m1.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	drive(m1, info.ID)
	// No Shutdown: m1 is abandoned, as SIGKILL would leave it.

	m2 := fileManager(t, dir, 3)
	defer m2.Shutdown()
	if n, err := m2.RecoverAll(); err != nil || n != 1 {
		t.Fatalf("RecoverAll = %d, %v", n, err)
	}
	st, err := m2.State(info.ID, false)
	if err != nil {
		t.Fatalf("recovered session unavailable: %v", err)
	}
	if st.Claims != corpus.DB.NumClaims+d.NewClaims {
		t.Fatalf("recovered corpus has %d claims, want %d", st.Claims, corpus.DB.NumClaims+d.NewClaims)
	}
	assertSameTrace(t, m2, info.ID, ref, refInfo.ID)

	// The recovered session keeps serving — including ingested claims.
	driveOracle(t, m2, info.ID, 2)
	driveOracle(t, ref, refInfo.ID, 2)
	assertSameTrace(t, m2, info.ID, ref, refInfo.ID)
}

// TestIngestMailboxBackpressure pins the bounded-mailbox contract: with
// the session lock held (a busy session), arrivals queue rather than
// apply; a full mailbox refuses the next delta with ErrMailboxFull; and
// the queue drains before the next worker-holding request's work.
func TestIngestMailboxBackpressure(t *testing.T) {
	m := NewManager(Config{Workers: 1, MailboxCap: 1})
	defer m.Shutdown()
	info, err := m.Open(fastOpen("wiki", 0.08, 37))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	baseClaims := s.corpus.DB.NumClaims
	d1 := synth.GenerateDelta(wikiShape(s.corpus.DB), 0.1, 41)
	prof := wikiShape(s.corpus.DB)
	growShape(&prof, d1)
	d2 := synth.GenerateDelta(prof, 0.1, 43)

	s.mu.Lock() // the session is "busy": opportunistic apply must not run
	resp, err := m.Ingest(info.ID, IngestRequest{Delta: d1})
	if err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	if resp.Applied || resp.Queued != 1 {
		s.mu.Unlock()
		t.Fatalf("busy-session ingest = %+v, want queued", resp)
	}
	_, err = m.Ingest(info.ID, IngestRequest{Delta: d2})
	s.mu.Unlock()
	if !errors.Is(err, ErrMailboxFull) {
		t.Fatalf("full mailbox accepted a delta: %v", err)
	}

	// The next ranking drains the queue: the corpus grows and the
	// refused delta is welcome again.
	if _, err := m.Next(info.ID, 1); err != nil {
		t.Fatal(err)
	}
	st, err := m.State(info.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Claims != baseClaims+d1.NewClaims {
		t.Fatalf("drained corpus has %d claims, want %d", st.Claims, baseClaims+d1.NewClaims)
	}
	resp, err = m.Ingest(info.ID, IngestRequest{Delta: d2})
	if err != nil {
		t.Fatalf("retry after drain: %v", err)
	}
	if !resp.Applied {
		t.Fatalf("uncontended retry not applied inline: %+v", resp)
	}
}

// TestIngestQueuedValidatesAgainstVirtualShape: a delta referencing a
// claim that exists only once the delta queued ahead of it applies must
// validate at enqueue time (virtual totals), and both must drain
// cleanly — apply-time failure is impossible by induction.
func TestIngestQueuedValidatesAgainstVirtualShape(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown()
	info, err := m.Open(fastOpen("wiki", 0.08, 47))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	base := s.corpus.DB.NumClaims
	docFeat := make([]float64, s.docDim)
	first := factdb.Delta{
		NewClaims: 1,
		Truth:     []bool{true},
		Documents: []factdb.DeltaDocument{{Source: 0, Features: docFeat, Refs: []factdb.DeltaRef{{Claim: -1}}}},
	}
	// References the claim `first` introduces, by its future global id.
	second := factdb.Delta{
		Documents: []factdb.DeltaDocument{{Source: 0, Features: docFeat, Refs: []factdb.DeltaRef{{Claim: base}}}},
	}

	s.mu.Lock()
	if _, err := m.Ingest(info.ID, IngestRequest{Delta: second}); err == nil {
		s.mu.Unlock()
		t.Fatal("delta referencing a not-yet-applied claim validated against the bare corpus")
	}
	if _, err := m.Ingest(info.ID, IngestRequest{Delta: first}); err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	resp, err := m.Ingest(info.ID, IngestRequest{Delta: second})
	s.mu.Unlock()
	if err != nil {
		t.Fatalf("virtual-shape validation rejected a valid chained delta: %v", err)
	}
	if resp.Applied || resp.Queued != 2 {
		t.Fatalf("chained ingest = %+v, want 2 queued", resp)
	}
	if _, err := m.Next(info.ID, 1); err != nil {
		t.Fatalf("drain of chained deltas failed: %v", err)
	}
	st, err := m.State(info.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Claims != base+1 {
		t.Fatalf("corpus has %d claims after chained drain, want %d", st.Claims, base+1)
	}
}

// TestIngestRejectsMalformedRequests covers the request-level guards:
// empty deltas and truth vectors not matching the new-claim count are
// refused before touching the session.
func TestIngestRejectsMalformedRequests(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown()
	info, err := m.Open(fastOpen("wiki", 0.08, 53))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest(info.ID, IngestRequest{}); err == nil {
		t.Fatal("empty delta accepted")
	}
	d := synth.GenerateDelta(wikiShape(mustCorpus(t, fastOpen("wiki", 0.08, 53)).DB), 0.1, 3)
	d.Truth = d.Truth[:len(d.Truth)-1]
	if _, err := m.Ingest(info.ID, IngestRequest{Delta: d}); err == nil {
		t.Fatal("truth/claims mismatch accepted")
	}
	if _, err := m.Ingest("nope", IngestRequest{Delta: synth.GenerateDelta(synth.Wikipedia, 0.01, 5)}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown session: %v, want ErrNotFound", err)
	}
}

func mustCorpus(t *testing.T, req OpenRequest) *synth.Corpus {
	t.Helper()
	c, err := BuildCorpus(req)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestIngestSeqTolerance: server-side ingestion commits transcript
// records the client cannot have seen, so an answer declaring the
// sequence from before an ingest must still apply — while a sequence
// stale by an actual answer keeps the conflict semantics.
func TestIngestSeqTolerance(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown()
	info, err := m.Open(fastOpen("wiki", 0.08, 59))
	if err != nil {
		t.Fatal(err)
	}
	next, err := m.Next(info.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := m.Ingest(info.ID, IngestRequest{Delta: synth.GenerateDelta(wikiShape(s.corpus.DB), 0.1, 61)})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Applied {
		t.Fatalf("uncontended ingest not applied: %+v", resp)
	}
	// The ingest re-ranked, so ask for the current expected claim — but
	// declare the sequence read before the ingest committed.
	after, err := m.Next(info.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	seq := next.Seq // stale by exactly one ingest record
	if _, err := m.Answer(info.ID, AnswerRequest{Claim: after.Candidates[0].Claim, Oracle: true, Seq: &seq}); err != nil {
		t.Fatalf("ingest-stale sequence bounced: %v", err)
	}
	// Stale by an answer: conflict.
	next2, err := m.Next(info.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Answer(info.ID, AnswerRequest{Claim: next2.Candidates[0].Claim, Oracle: true, Seq: &seq}); !errors.Is(err, ErrSeq) {
		t.Fatalf("answer-stale sequence: %v, want ErrSeq", err)
	}
}

// TestExportDrainsMailbox: acknowledged arrivals still queued in the
// mailbox must be folded into the exported snapshot, not dropped with
// the live copy.
func TestExportDrainsMailbox(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown()
	info, err := m.Open(fastOpen("wiki", 0.08, 67))
	if err != nil {
		t.Fatal(err)
	}
	driveOracle(t, m, info.ID, 1)
	s, err := m.get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	d := synth.GenerateDelta(wikiShape(s.corpus.DB), 0.1, 71)

	s.mu.Lock()
	resp, err := m.Ingest(info.ID, IngestRequest{Delta: d})
	s.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Applied {
		t.Fatalf("ingest under a held lock applied inline: %+v", resp)
	}
	snap, err := m.Export(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	last := snap.Elicitations[len(snap.Elicitations)-1]
	if last.Ingest == nil {
		t.Fatal("export dropped the queued delta")
	}
	if !reflect.DeepEqual(*last.Ingest, d) {
		t.Fatal("exported ingest record does not match the queued delta")
	}
}
