package service

import "sync"

// Budget is the shared worker-lane budget that lets N concurrent
// sessions multiplex onto one bounded set of scoring/inference
// goroutines instead of each session assuming it owns the machine. A
// request acquires lanes for the duration of one inference or scoring
// round and releases them immediately after; because every engine is
// bit-identical across worker counts, the grant size is free to vary
// request-to-request with load without perturbing any session's
// selection trace.
//
// The policy is work-conserving and starvation-free: an acquirer blocks
// only while zero lanes are free, then takes everything free up to its
// ask. Under contention this degrades smoothly to one lane per request —
// 64 sessions on an 8-lane budget each proceed with 1–8 lanes as they
// become free — and under light load a single session gets the full
// budget.
type Budget struct {
	mu    sync.Mutex
	cond  *sync.Cond
	total int
	inUse int
}

// NewBudget creates a budget of total worker lanes (minimum 1).
func NewBudget(total int) *Budget {
	if total < 1 {
		total = 1
	}
	b := &Budget{total: total}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Acquire blocks until at least one lane is free, then takes up to want
// lanes (minimum 1). It returns the number granted and a release
// function; release is idempotent and must be called when the round
// finishes.
func (b *Budget) Acquire(want int) (granted int, release func()) {
	if want < 1 {
		want = 1
	}
	b.mu.Lock()
	for b.total-b.inUse < 1 {
		b.cond.Wait()
	}
	granted = b.total - b.inUse
	if granted > want {
		granted = want
	}
	b.inUse += granted
	b.mu.Unlock()

	var once sync.Once
	release = func() {
		once.Do(func() {
			b.mu.Lock()
			b.inUse -= granted
			b.mu.Unlock()
			b.cond.Broadcast()
		})
	}
	return granted, release
}

// Total returns the budget size.
func (b *Budget) Total() int { return b.total }

// InUse returns the lanes currently granted.
func (b *Budget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inUse
}
