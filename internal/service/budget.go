package service

import (
	"runtime"
	"sync"
)

// Budget is the shared worker-lane budget that lets N concurrent
// sessions multiplex onto one bounded set of scoring/inference
// goroutines instead of each session assuming it owns the machine. A
// request acquires lanes for the duration of one inference or scoring
// round and releases them immediately after; because every engine is
// bit-identical across worker counts, the grant size is free to vary
// request-to-request with load without perturbing any session's
// selection trace.
//
// The policy is work-conserving and starvation-free: an acquirer blocks
// only while zero lanes are free, then takes everything free up to its
// ask. Under contention this degrades smoothly to one lane per request —
// 64 sessions on an 8-lane budget each proceed with 1–8 lanes as they
// become free — and under light load a single session gets the full
// budget.
type Budget struct {
	mu      sync.Mutex
	cond    *sync.Cond
	total   int
	inUse   int
	waiters int
	// waits counts contention events since boot: Acquire calls that had
	// to block and TryAcquire calls refused for want of a free lane. The
	// overload controller diffs this monotone counter across evaluation
	// windows — "did anyone queue since the last look" is a far sturdier
	// saturation signal than sampling lane occupancy at one instant.
	waits int64
}

// NewBudget creates a budget of total worker lanes (minimum 1).
func NewBudget(total int) *Budget {
	if total < 1 {
		total = 1
	}
	b := &Budget{total: total}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Acquire blocks until at least one lane is free, then takes up to want
// lanes (minimum 1). It returns the number granted and a release
// function; release is idempotent and must be called when the round
// finishes.
func (b *Budget) Acquire(want int) (granted int, release func()) {
	if want < 1 {
		want = 1
	}
	b.mu.Lock()
	if b.total-b.inUse < 1 {
		b.waits++
	}
	for b.total-b.inUse < 1 {
		b.waiters++
		b.cond.Wait()
		b.waiters--
	}
	granted = b.total - b.inUse
	if granted > want {
		granted = want
	}
	b.inUse += granted
	b.mu.Unlock()

	// Hold-and-yield: give concurrently arrived requests one chance to
	// reach the budget before this one runs its CPU-bound section. On a
	// single-P runtime a short non-blocking section otherwise never
	// interleaves with other goroutines, so genuine queueing piles up
	// invisibly in the scheduler runqueue and the contention counter
	// reads an overloaded server as calm. The yield is ~free when the
	// runqueue is empty.
	runtime.Gosched()

	var once sync.Once
	release = func() {
		once.Do(func() {
			b.mu.Lock()
			b.inUse -= granted
			b.mu.Unlock()
			b.cond.Broadcast()
		})
	}
	return granted, release
}

// TryAcquire is the non-blocking Acquire used by admission control's
// shed-before-queue policy: when no lane is free it reports ok = false
// immediately instead of queueing the request behind a saturated budget.
// On success it grants up to want lanes exactly like Acquire.
func (b *Budget) TryAcquire(want int) (granted int, release func(), ok bool) {
	if want < 1 {
		want = 1
	}
	b.mu.Lock()
	free := b.total - b.inUse
	if free < 1 {
		b.waits++
		b.mu.Unlock()
		return 0, func() {}, false
	}
	granted = free
	if granted > want {
		granted = want
	}
	b.inUse += granted
	b.mu.Unlock()

	runtime.Gosched() // see Acquire: keep arrival pressure visible

	var once sync.Once
	release = func() {
		once.Do(func() {
			b.mu.Lock()
			b.inUse -= granted
			b.mu.Unlock()
			b.cond.Broadcast()
		})
	}
	return granted, release, true
}

// Total returns the budget size.
func (b *Budget) Total() int { return b.total }

// InUse returns the lanes currently granted.
func (b *Budget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inUse
}

// Saturated reports instantaneous worker-lane saturation: every lane
// granted, or a request already queued behind the budget.
func (b *Budget) Saturated() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.waiters > 0 || b.inUse >= b.total
}

// Waits returns the cumulative contention counter (see the field doc).
// This is the overload controller's second signal — a breached p99
// alone triggers degradation, but shedding additionally requires
// contention in every evaluation window, so a latency blip on an
// otherwise idle server never sheds.
func (b *Budget) Waits() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.waits
}
