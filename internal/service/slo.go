package service

import (
	"sync"

	"factcheck/internal/stats"
)

// SLOConfig tunes the overload controller. The controller watches the
// windowed answer-latency p99 against the target and worker-lane
// saturation, and walks a two-stage degradation ladder:
//
//	normal ──p99 breached DegradeAfter evals──▶ degraded
//	degraded ──lanes saturated ShedAfter evals──▶ shedding
//	shedding ──calm RecoverAfter evals──▶ degraded ──healthy──▶ normal
//
// Degraded mode swaps the per-request what-if scoring for the cheap
// precomputed uncertainty ranking (core.Session.SetDegraded); shedding
// additionally rejects new sessions and sheds answer load that cannot
// get a worker lane immediately, with 429 + Retry-After. A zero P99
// disables the controller entirely.
type SLOConfig struct {
	// P99 is the answer-latency SLO in seconds; <= 0 disables the
	// controller.
	P99 float64 `json:"p99,omitempty"`
	// WindowSeconds is the rolling latency window the p99 is read over
	// (default 10s).
	WindowSeconds float64 `json:"windowSeconds,omitempty"`
	// Slots divides the window for aging-out granularity (default 5);
	// one slot width is also the evaluation cadence.
	Slots int `json:"slots,omitempty"`
	// MinSamples is the fewest observations a window needs before its
	// p99 counts as a signal (default 8); thinner windows read as "no
	// signal", which is never a breach.
	MinSamples int `json:"minSamples,omitempty"`
	// DegradeAfter is the consecutive breached evaluations before
	// normal → degraded (default 2).
	DegradeAfter int `json:"degradeAfter,omitempty"`
	// ShedAfter is the consecutive saturated evaluations (fresh
	// worker-lane contention in every evaluation window) while degraded
	// before degraded → shedding (default 3).
	ShedAfter int `json:"shedAfter,omitempty"`
	// RecoverAfter is the consecutive healthy evaluations before
	// stepping back down one rung (default 3).
	RecoverAfter int `json:"recoverAfter,omitempty"`
}

// Enabled reports whether the configuration turns the controller on.
func (c SLOConfig) Enabled() bool { return c.P99 > 0 }

func (c SLOConfig) withDefaults() SLOConfig {
	if c.WindowSeconds <= 0 {
		c.WindowSeconds = 10
	}
	if c.Slots < 1 {
		c.Slots = 5
	}
	if c.MinSamples < 1 {
		c.MinSamples = 8
	}
	if c.DegradeAfter < 1 {
		c.DegradeAfter = 2
	}
	if c.ShedAfter < 1 {
		c.ShedAfter = 3
	}
	if c.RecoverAfter < 1 {
		c.RecoverAfter = 3
	}
	return c
}

// SLOMode is a rung of the degradation ladder.
type SLOMode int

const (
	// ModeNormal serves the configured strategy with no admission limits.
	ModeNormal SLOMode = iota
	// ModeDegraded serves the cheap uncertainty ranking instead of
	// what-if scoring.
	ModeDegraded
	// ModeShedding additionally rejects new sessions and answer load
	// that cannot get a lane immediately (429 + Retry-After).
	ModeShedding
)

func (m SLOMode) String() string {
	switch m {
	case ModeDegraded:
		return "degraded"
	case ModeShedding:
		return "shedding"
	default:
		return "normal"
	}
}

// ParseSLOMode maps a mode string (as serialised in Health and
// ControllerStatus) back to its rung; unknown strings read as normal.
func ParseSLOMode(s string) SLOMode {
	switch s {
	case "degraded":
		return ModeDegraded
	case "shedding":
		return ModeShedding
	default:
		return ModeNormal
	}
}

// ControllerStatus is the controller's /metrics payload.
type ControllerStatus struct {
	// Mode is the current ladder rung: "normal", "degraded", "shedding".
	Mode string `json:"mode"`
	// SLOSeconds echoes the configured p99 target.
	SLOSeconds float64 `json:"sloSeconds"`
	// WindowP99 is the current windowed p99 (0 when the window carries
	// no signal; see WindowCount to distinguish).
	WindowP99 float64 `json:"windowP99"`
	// WindowCount is the number of answers inside the current window.
	WindowCount int64 `json:"windowCount"`
	// Breaches counts evaluations whose windowed p99 exceeded the SLO.
	Breaches int64 `json:"breaches"`
	// Sheds counts requests rejected with 429 (opens refused while
	// shedding, plus answer/next load shed for want of a free lane).
	Sheds int64 `json:"sheds"`
	// DegradedAnswers counts answers served from a degraded-mode ranking.
	DegradedAnswers int64 `json:"degradedAnswers"`
}

// Merge folds another backend's controller status into this one — the
// fleet aggregation the router serves: counters sum, the mode is the
// worst rung any member reports, and the window view takes the worst
// (highest) p99 so the fleet number is the pessimistic bound.
func (cs *ControllerStatus) Merge(o ControllerStatus) {
	if ParseSLOMode(o.Mode) > ParseSLOMode(cs.Mode) {
		cs.Mode = o.Mode
	}
	if o.SLOSeconds > 0 && (cs.SLOSeconds == 0 || o.SLOSeconds < cs.SLOSeconds) {
		cs.SLOSeconds = o.SLOSeconds
	}
	if o.WindowP99 > cs.WindowP99 {
		cs.WindowP99 = o.WindowP99
	}
	cs.WindowCount += o.WindowCount
	cs.Breaches += o.Breaches
	cs.Sheds += o.Sheds
	cs.DegradedAnswers += o.DegradedAnswers
}

// SLOController is the overload state machine. It is deliberately a
// pure function of explicitly passed timestamps (float64 seconds on any
// monotone clock) and an externally maintained contention counter: the
// Manager drives it with wall seconds since boot and Budget.Waits, and
// the workload package's SLO simulation drives the *same* controller
// with virtual DES time and a simulated queue counter — which is what
// makes the CI slo-gate replay deterministic while exercising the exact
// thresholds production runs. Safe for concurrent use.
//
// Saturation is judged per evaluation window by diffing the monotone
// waits counter: an evaluation is "saturated" when anyone queued behind
// (or was refused) the worker budget since the previous evaluation.
// Sampling occupancy at the evaluation instant instead would be
// systematically lucky — on a busy box the evaluating goroutine tends
// to get scheduled exactly when lane-holding work yields.
type SLOController struct {
	mu  sync.Mutex
	cfg SLOConfig
	win *stats.WindowedHist

	mode      SLOMode
	lastEval  float64
	evalEver  float64 // evaluation cadence (one slot width)
	started   bool
	lastWaits int64 // contention counter at the previous evaluation

	badStreak  int // consecutive breached evaluations
	goodStreak int // consecutive non-breached evaluations
	satStreak  int // consecutive saturated evaluations
	calmStreak int // consecutive non-saturated evaluations

	breaches        int64
	sheds           int64
	degradedAnswers int64
}

// NewSLOController builds a controller; nil when cfg disables it, so
// callers can gate on the pointer.
func NewSLOController(cfg SLOConfig) *SLOController {
	if !cfg.Enabled() {
		return nil
	}
	cfg = cfg.withDefaults()
	return &SLOController{
		cfg:      cfg,
		win:      stats.NewWindowedHist(cfg.WindowSeconds, cfg.Slots),
		evalEver: cfg.WindowSeconds / float64(cfg.Slots),
	}
}

// Config returns the (defaulted) configuration the controller runs.
func (c *SLOController) Config() SLOConfig { return c.cfg }

// evalLocked advances the state machine when an evaluation cadence has
// elapsed; c.mu must be held. Evaluation is lazy — driven by whatever
// observation or mode query arrives next — so the controller needs no
// goroutine and works identically under virtual time.
func (c *SLOController) evalLocked(now float64, waits int64) {
	if c.started && now < c.lastEval+c.evalEver {
		return
	}
	c.started = true
	c.lastEval = now
	saturated := waits > c.lastWaits
	c.lastWaits = waits

	p99, ok := c.win.Quantile(now, 0.99)
	if ok && c.win.Count(now) < int64(c.cfg.MinSamples) {
		ok = false // too thin to act on
	}
	breach := ok && p99 > c.cfg.P99
	if breach {
		c.breaches++
		c.badStreak++
		c.goodStreak = 0
	} else {
		c.badStreak = 0
		c.goodStreak++
	}
	if saturated {
		c.satStreak++
		c.calmStreak = 0
	} else {
		c.satStreak = 0
		c.calmStreak++
	}

	switch c.mode {
	case ModeNormal:
		if c.badStreak >= c.cfg.DegradeAfter {
			c.mode = ModeDegraded
			c.resetStreaksLocked()
		}
	case ModeDegraded:
		if c.satStreak >= c.cfg.ShedAfter {
			// Saturation persisting after degradation already removed the
			// what-if cost means demand exceeds even degraded capacity:
			// start shedding.
			c.mode = ModeShedding
			c.resetStreaksLocked()
		} else if c.goodStreak >= c.cfg.RecoverAfter && c.calmStreak >= c.cfg.RecoverAfter {
			c.mode = ModeNormal
			c.resetStreaksLocked()
		}
	case ModeShedding:
		if c.calmStreak >= c.cfg.RecoverAfter && c.goodStreak >= c.cfg.RecoverAfter {
			// Step down one rung only: re-admitted load must prove itself
			// under degraded serving before full scoring returns.
			c.mode = ModeDegraded
			c.resetStreaksLocked()
		}
	}
}

// resetStreaksLocked clears the evidence counters on a transition, so
// each rung demands fresh consecutive evidence before the next move.
func (c *SLOController) resetStreaksLocked() {
	c.badStreak, c.goodStreak, c.satStreak, c.calmStreak = 0, 0, 0, 0
}

// ObserveAnswer records one served answer's latency (seconds) at time
// now and re-evaluates the ladder. waits is the cumulative worker-lane
// contention counter (Budget.Waits or a simulated equivalent).
func (c *SLOController) ObserveAnswer(now, seconds float64, waits int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.win.Add(now, seconds)
	c.evalLocked(now, waits)
}

// ModeAt re-evaluates (at most once per cadence) and returns the
// current rung. Queries drive evaluation too, so the controller recovers
// even when shedding has silenced the answer stream.
func (c *SLOController) ModeAt(now float64, waits int64) SLOMode {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evalLocked(now, waits)
	return c.mode
}

// RecordShed counts one request rejected by admission control.
func (c *SLOController) RecordShed() {
	c.mu.Lock()
	c.sheds++
	c.mu.Unlock()
}

// RecordDegradedAnswer counts one answer served from a degraded-mode
// ranking.
func (c *SLOController) RecordDegradedAnswer() {
	c.mu.Lock()
	c.degradedAnswers++
	c.mu.Unlock()
}

// Status assembles the /metrics payload (and re-evaluates, so a scrape
// alone keeps the ladder moving on an otherwise idle server).
func (c *SLOController) Status(now float64, waits int64) ControllerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evalLocked(now, waits)
	st := ControllerStatus{
		Mode:            c.mode.String(),
		SLOSeconds:      c.cfg.P99,
		Breaches:        c.breaches,
		Sheds:           c.sheds,
		DegradedAnswers: c.degradedAnswers,
	}
	st.WindowCount = c.win.Count(now)
	if p99, ok := c.win.Quantile(now, 0.99); ok {
		st.WindowP99 = p99
	}
	return st
}
