// Package service is the multi-session serving layer over the Alg. 1
// validation loop: a session manager that hosts many concurrent
// validation sessions, an HTTP/JSON API (http.go) exposing the
// ask/answer protocol, and a Go client (client.go).
//
// Design constraints, in order:
//
//  1. Trace fidelity. A session served over the API must produce a
//     selection trace bit-identical to the in-process core.Session path
//     for the same (profile, seed, options). This falls out of two
//     properties: core.Session.Pending caches the per-iteration ranking
//     (so clients may poll "which claim next?" idempotently), and all
//     inference is bit-identical across worker counts (so the shared
//     budget may grant any parallelism per request).
//
//  2. Bounded resources. All sessions multiplex onto one Budget of
//     worker lanes sized to the machine, a session cap bounds admission,
//     and an idle TTL spills abandoned sessions to the snapshot store,
//     releasing their corpus, engine and cached worker chains
//     (em.Engine.ReleaseWorkers, guidance.Pool.Trim); a spilled session
//     revives transparently on its next request and stops counting
//     against the cap meanwhile.
//
//  3. Durability. Every session can be exported as a SessionSnapshot —
//     its opening configuration plus the elicitation transcript — and
//     reopened later (same process or not) via core.RestoreSession,
//     which replays the transcript deterministically. The manager keeps
//     a persist.Store current as a side effect of serving (checkpoint at
//     open, WAL append per answer, periodic compaction), so with a
//     file-backed store a SIGKILLed server recovers every session on
//     the next boot with a bit-identical selection trace.
//
// Sessions are opened over synthetic corpus profiles (§8.1), which is
// why the API can report precision against ground truth and offer
// oracle-answered validation: the server doubles as the evaluation
// harness for serving experiments. A production deployment would open
// sessions over ingested corpora and drop the truth-derived fields.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"factcheck/internal/core"
	"factcheck/internal/em"
	"factcheck/internal/factdb"
	"factcheck/internal/guidance"
	"factcheck/internal/obs"
	"factcheck/internal/persist"
	"factcheck/internal/stats"
	"factcheck/internal/synth"
)

// Sentinel errors, mapped to HTTP statuses by the API layer.
var (
	// ErrNotFound reports an unknown (or already evicted) session id.
	ErrNotFound = errors.New("service: session not found")
	// ErrWrongClaim reports an answer that does not address the claim
	// the guidance loop is currently asking about.
	ErrWrongClaim = errors.New("service: answer does not address the expected claim")
	// ErrSeq reports an answer whose client-declared transcript sequence
	// neither matches the transcript's current length nor identifies the
	// most recently applied request (a stale or out-of-order client).
	ErrSeq = errors.New("service: answer sequence does not match the transcript")
	// ErrDone reports an answer submitted to a finished session.
	ErrDone = errors.New("service: session has no unlabelled claims left")
	// ErrFull reports that the manager's session cap is reached.
	ErrFull = errors.New("service: session limit reached")
	// ErrExists reports an open or import under a session id that is
	// already in use on this backend.
	ErrExists = errors.New("service: session id already in use")
	// ErrMigrated reports a request for a session this backend exported
	// to another owner: the local copy is frozen and will not be revived.
	// The shard router never routes here; a direct client should ask the
	// router (or the new owner) instead.
	ErrMigrated = errors.New("service: session was exported to another backend")
	// ErrShutdown reports an operation after Manager.Shutdown.
	ErrShutdown = errors.New("service: manager is shut down")
	// ErrOverloaded reports a request shed by the SLO controller's
	// admission control (429 + Retry-After at the API layer): the server
	// is saturated past what graceful degradation recovers, and the
	// client should back off and retry.
	ErrOverloaded = errors.New("service: overloaded, request shed by admission control")
	// ErrPersist reports that the snapshot store failed; the in-memory
	// session (when one exists) is still consistent, but its durable
	// record may be stale until a later write succeeds.
	ErrPersist = errors.New("service: session persistence failed")
	// ErrMailboxFull reports a corpus delta rejected because the
	// session's ingestion mailbox is at capacity (429 + Retry-After at
	// the API layer): arrivals are outpacing the answer loop that drains
	// them, and the producer should back off and retry.
	ErrMailboxFull = errors.New("service: session ingestion mailbox is full")
)

// EMBudgets optionally overrides the inference budgets of em.Config;
// zero fields keep the defaults. Serving deployments lower these to
// trade marginal estimation accuracy for per-request latency.
type EMBudgets struct {
	BurnIn      int `json:"burnIn,omitempty"`
	Samples     int `json:"samples,omitempty"`
	IncBurnIn   int `json:"incBurnIn,omitempty"`
	IncSamples  int `json:"incSamples,omitempty"`
	EMIters     int `json:"emIters,omitempty"`
	HypoBurn    int `json:"hypoBurn,omitempty"`
	HypoSamples int `json:"hypoSamples,omitempty"`
}

// OpenRequest configures a new session over a synthetic corpus profile.
type OpenRequest struct {
	// Profile names a §8.1 corpus family: "wiki", "health" or "snopes".
	Profile string `json:"profile"`
	// Scale shrinks (or grows) the profile; 0 means 1 (published size).
	Scale float64 `json:"scale,omitempty"`
	// Seed drives corpus generation and all session randomness.
	Seed int64 `json:"seed"`
	// Strategy selects the guidance strategy: "hybrid" (default),
	// "info", "source", "uncertainty" or "random".
	Strategy string `json:"strategy,omitempty"`
	// Budget caps total validations (0 = all claims).
	Budget int `json:"budget,omitempty"`
	// CandidatePool bounds what-if scoring per iteration (0 = all).
	CandidatePool int `json:"candidatePool,omitempty"`
	// ConfirmEvery enables the §5.2 confirmation check at this effort
	// period (0 disables). Repair prompts raised by the check are
	// auto-skipped on the server path, since the ask/answer protocol has
	// no synchronous re-elicitation channel.
	ConfirmEvery float64 `json:"confirmEvery,omitempty"`
	// Communities, when >= 2, opens the session over a multi-community
	// corpus: that many independent replicas of the profile at 1/N size,
	// merged over disjoint id spaces (synth.GenerateCommunities). The
	// component structure is what the per-answer dirty-component path
	// feeds on; single-community profiles are (nearly) fully connected.
	Communities int `json:"communities,omitempty"`
	// FullSweepEvery sets the cadence of full EM parameter sweeps
	// (core.Options.FullSweepEvery): answers in between run the
	// component-restricted incremental inference + re-ranking path.
	// 0 selects the core default; 1 restores per-answer EM.
	FullSweepEvery int `json:"fullSweepEvery,omitempty"`
	// EM overrides individual inference budgets.
	EM *EMBudgets `json:"em,omitempty"`
}

// SessionSnapshot is the durable form of a server session: what opened
// it plus the full elicitation transcript. POSTing it back (the
// "restore" form of session creation) rebuilds the session
// bit-identically via deterministic replay.
type SessionSnapshot struct {
	// Version is the core snapshot encoding version
	// (core.SnapshotVersion); restore rejects snapshots from a newer
	// build instead of replaying them under changed semantics.
	Version      int                `json:"version,omitempty"`
	Config       OpenRequest        `json:"config"`
	Elicitations []core.Elicitation `json:"elicitations"`
}

// SessionInfo describes a newly opened session.
type SessionInfo struct {
	ID        string `json:"id"`
	Profile   string `json:"profile"`
	Claims    int    `json:"claims"`
	Sources   int    `json:"sources"`
	Documents int    `json:"documents"`
	// Precision is the automated (pre-validation) grounding precision
	// against the synthetic ground truth.
	Precision float64 `json:"precision"`
}

// Candidate is one entry of a guidance ranking, with the evidence
// context a human validator sees (cf. cmd/factcheck-session).
type Candidate struct {
	Claim     int     `json:"claim"`
	P         float64 `json:"p"`
	Documents int     `json:"documents"`
	Sources   int     `json:"sources"`
}

// NextResponse is the guidance ranking of the current iteration.
type NextResponse struct {
	ID         string      `json:"id"`
	Iteration  int         `json:"iteration"`
	Candidates []Candidate `json:"candidates"`
	Done       bool        `json:"done"`
	// Seq is the transcript sequence the next answer will commit at;
	// echo it in AnswerRequest.Seq to make the submission idempotent.
	Seq int `json:"seq"`
}

// AnswerRequest submits a verdict for the currently expected claim.
// Skip defers the claim (§8.5): the first skip moves the question to the
// second-best candidate, a second consecutive skip accepts the model
// value for it. Oracle asks the server to answer from the synthetic
// ground truth (the §8.1 simulated user), which is how auto-driven
// sessions and the smoke test run.
type AnswerRequest struct {
	Claim   int  `json:"claim"`
	Verdict bool `json:"verdict"`
	Skip    bool `json:"skip,omitempty"`
	Oracle  bool `json:"oracle,omitempty"`
	// Seq, when set, is the transcript sequence the client expects this
	// answer to commit at (from NextResponse.Seq / StateResponse.Seq).
	// It makes submission idempotent against transport-level replays: a
	// connection torn down after the server applied the answer makes the
	// retry look like a fresh request, and without the sequence the
	// server could only answer it with a spurious conflict. A duplicate
	// of the most recently applied request returns that request's stored
	// response; a genuinely stale sequence is rejected with ErrSeq.
	Seq *int `json:"seq,omitempty"`
}

// StateResponse reports a session's progress. Expected is the claim the
// loop is currently asking about (−1 once the session is done or before
// the first ranking is computed); answer loops can follow it without an
// extra GET /next round-trip.
type StateResponse struct {
	ID         string  `json:"id"`
	Iterations int     `json:"iterations"`
	Labeled    int     `json:"labeled"`
	Claims     int     `json:"claims"`
	Effort     float64 `json:"effort"`
	Z          float64 `json:"z"`
	Precision  float64 `json:"precision"`
	Done       bool    `json:"done"`
	Expected   int     `json:"expected"`
	// Seq is the transcript sequence the next answer will commit at (see
	// AnswerRequest.Seq).
	Seq       int       `json:"seq"`
	Marginals []float64 `json:"marginals,omitempty"`
}

// Health is the GET /healthz payload: live and spilled session counts
// plus worker-budget load.
type Health struct {
	Sessions       int `json:"sessions"`
	Spilled        int `json:"spilled"`
	WorkersTotal   int `json:"workersTotal"`
	WorkersGranted int `json:"workersGranted"`
	// Store identifies the backend's storage location (see
	// Manager.StoreLocation); "" when the store has no shareable
	// identity.
	Store string `json:"store,omitempty"`
	// ControllerMode is the overload controller's current rung
	// ("normal", "degraded", "shedding"); "" when the controller is
	// disabled. The router reads it to shed before proxying.
	ControllerMode string `json:"controllerMode,omitempty"`
}

// SessionList is the GET /sessions payload: the backend's sessions
// split by residence (see Manager.Sessions).
type SessionList struct {
	Live   []string `json:"live"`
	Stored []string `json:"stored"`
}

// Metrics is the GET /metrics payload, the load-telemetry superset of
// Health that factcheck-loadtest scrapes: session and worker-lane load,
// cumulative operation counters, and the server-side answer-latency
// histogram (seconds, measured around the whole Answer path — lock
// wait, inference, persistence).
type Metrics struct {
	// BackendID names the serving backend (Config.BackendID), so a
	// fleet-wide scrape can attribute the numbers below to a member.
	BackendID      string `json:"backendId,omitempty"`
	Sessions       int    `json:"sessions"`
	Spilled        int    `json:"spilled"`
	WorkersTotal   int    `json:"workersTotal"`
	WorkersGranted int    `json:"workersGranted"`
	// SessionsOpened counts sessions opened or restored since boot
	// (revivals of spilled sessions are not re-counted).
	SessionsOpened int64 `json:"sessionsOpened"`
	// AnswersServed counts successfully answered requests since boot.
	AnswersServed int64 `json:"answersServed"`
	// AnswerLatency digests the per-answer latency histogram.
	AnswerLatency stats.Summary `json:"answerLatency"`
	// AnswerLatencyBuckets is the raw log-bucketed histogram.
	AnswerLatencyBuckets []stats.HistBucket `json:"answerLatencyBuckets,omitempty"`
	// Endpoints breaks requests and errors down per API endpoint
	// (open, next, answer, state, snapshot, export, import, delete),
	// recorded by the HTTP layer.
	Endpoints map[string]EndpointCounters `json:"endpoints,omitempty"`
	// Controller is the overload controller's state (mode, breach/shed/
	// degraded-answer counters); nil when the controller is disabled. A
	// fleet scrape merges members' statuses via ControllerStatus.Merge.
	Controller *ControllerStatus `json:"controller,omitempty"`
	// LaneWaits is the worker budget's cumulative contention counter:
	// how many requests arrived to find every lane taken (the SLO
	// controller's saturation signal).
	LaneWaits int64 `json:"laneWaits"`
	// MailboxQueued is the number of corpus deltas currently queued
	// across live sessions' ingestion mailboxes.
	MailboxQueued int `json:"mailboxQueued"`
	// GainCacheHits/GainCacheMisses accumulate the sessions' guidance
	// gain-cache telemetry (sampled after each worker-holding request;
	// deleted sessions' counts are retained).
	GainCacheHits   int64 `json:"gainCacheHits"`
	GainCacheMisses int64 `json:"gainCacheMisses"`
	// Stages digests the answer path's per-stage span latencies
	// (lane_acquire, ingest_apply, resample, rescore, wal_append, and
	// the whole-path answer); StageBuckets carries the raw buckets when
	// the scrape asked for them — what the Prometheus exposition and
	// the fleet aggregation merge from.
	Stages       map[string]stats.Summary      `json:"stages,omitempty"`
	StageBuckets map[string][]stats.HistBucket `json:"stageBuckets,omitempty"`
}

// EndpointCounters is one endpoint's cumulative request telemetry in
// Metrics.Endpoints.
type EndpointCounters struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
}

// Config tunes a Manager.
type Config struct {
	// BackendID names this backend in /metrics so a shard router's
	// fleet view can attribute load to members ("" = anonymous).
	BackendID string
	// Workers is the shared worker-lane budget all sessions multiplex
	// onto (0 = GOMAXPROCS).
	Workers int
	// MaxSessions caps concurrently live sessions (0 = 1024). Sessions
	// spilled to the store do not count against the cap.
	MaxSessions int
	// IdleTTL spills sessions idle for at least this long to the store
	// and releases their in-memory resources (0 disables the janitor;
	// EvictIdle can still be called manually). A spilled session is
	// revived transparently on its next request.
	IdleTTL time.Duration
	// Store persists sessions: checkpointed at open, appended to on
	// every answer, compacted every CheckpointEvery answers. nil uses
	// an in-memory store (sessions survive eviction, not the process);
	// a persist.FileStore survives SIGKILL and machine restarts.
	Store persist.Store
	// CheckpointEvery compacts a session's write-ahead log into a fresh
	// checkpoint after this many appended elicitations (0 = 16).
	CheckpointEvery int
	// MailboxCap bounds each session's ingestion mailbox: corpus deltas
	// queued (validated but not yet applied) between answers (0 = 16).
	// A delta arriving at a full mailbox is refused with ErrMailboxFull
	// — the streaming path's backpressure.
	MailboxCap int
	// SLO enables the overload controller: graceful degradation to the
	// uncertainty ranking while the windowed answer-latency p99 breaches
	// SLO.P99, and 429-shedding admission control once saturation
	// persists. The zero value disables it.
	SLO SLOConfig
}

// Session is one server-hosted validation session. All methods are
// called through the Manager, which serialises them per session under
// s.mu while letting distinct sessions proceed concurrently.
type Session struct {
	id     string
	mu     sync.Mutex
	core   *core.Session
	corpus *synth.Corpus
	cfg    OpenRequest
	// skipped marks that the client skipped the top-ranked claim and the
	// question moved to the second-best candidate (§8.5). The skip is
	// materialised in the core transcript only when the follow-up answer
	// drives Step, so a dangling skip is not part of a Snapshot (and is
	// lost by a crash or spill: the client re-skips after a revival).
	skipped bool
	// walLen counts elicitations appended to the store since the last
	// checkpoint; reaching Config.CheckpointEvery triggers compaction.
	walLen int
	// boxMu guards the ingestion mailbox independently of mu: an arrival
	// must enqueue (or bounce with ErrMailboxFull) without waiting for
	// inference running under mu. boxClaims/boxSources/boxDocs are the
	// session's virtual corpus totals — the database's counts plus every
	// queued delta — maintained here so enqueue-time validation never
	// reads the database while another request is growing it under mu;
	// srcDim/docDim are the corpus feature dimensionalities (immutable).
	// Queue slots are deltas already validated against exactly the shape
	// they will apply at, which makes apply-time failure impossible by
	// induction (see core.ValidateDeltaShape). The mailbox is in-memory
	// only: a delta acknowledged as queued is applied at the latest by
	// the next worker-holding request, but is lost if the process dies
	// or the session is deleted before then — ingestion is at-least-once
	// from the producer's side, and producers that need the stronger
	// guarantee check IngestResponse.Applied.
	boxMu                          sync.Mutex
	box                            []factdb.Delta
	boxClaims, boxSources, boxDocs int
	srcDim, docDim                 int
	// lastApplied memoises the most recently applied answer request and
	// its response. A retried POST whose first response was lost on the
	// wire (connection reset after the server committed) arrives as an
	// exact duplicate; replaying the stored response instead of
	// re-judging the request keeps the transcript single-writer and the
	// client protocol in sync. The memo does not survive a crash or
	// spill — a retry racing a revival gets the historical conflict
	// answer, but never a double-applied transcript (the WAL is appended
	// before any response leaves).
	lastApplied *appliedAnswer

	// spans is the bounded per-session span ring behind
	// GET /v1/sessions/{id}/trace. It has its own lock and recording
	// into it never blocks on (or draws from) the inference path, so
	// tracing is trace-neutral by construction. The ring does not
	// survive a spill or migration — spans are diagnostics of this
	// process's serving, not session state.
	spans *obs.Ring
	// gcHits/gcMisses memoise the last sampled gain-cache counters, so
	// the manager can fold per-answer deltas into its cumulative
	// telemetry without /metrics ever taking s.mu (guarded by s.mu).
	gcHits, gcMisses int64

	lastUsed time.Time // guarded by the manager's mu
}

// spanRingCap bounds each session's span ring: 64 spans ≈ the last
// ~10 answers with their stage decomposition — enough to explain "why
// was that slow" after the fact at a few KB per session.
const spanRingCap = 64

// Manager hosts concurrent sessions over one shared worker budget.
type Manager struct {
	cfg    Config
	budget *Budget
	store  persist.Store
	nowFn  func() time.Time // test hook
	// slo is the overload controller (nil when Config.SLO disables it);
	// epoch anchors its float64-seconds clock.
	slo   *SLOController
	epoch time.Time

	// telemetry guards the cumulative serving counters behind /metrics;
	// it is separate from mu so scrapes never contend with routing.
	telemetry struct {
		sync.Mutex
		sessionsOpened int64
		answersServed  int64
		answerLatency  *stats.LogHist
		endpoints      map[string]EndpointCounters
		// gainHits/gainMisses accumulate the per-session gain-cache
		// deltas sampled after each worker-holding request (see
		// sampleGainCache); they survive session deletion.
		gainHits, gainMisses int64
	}

	// stages aggregates the answer path's span durations per stage; it
	// carries its own lock (inside obs.Stages), so recording never
	// contends with the telemetry mutex or mu.
	stages *obs.Stages

	mu sync.Mutex
	// sessions is the live-session table. guarded by mu
	sessions map[string]*Session
	// reviving counts in-flight revivals per id; tombstoned marks ids
	// deleted while a revival was in flight, so the revival discards its
	// replay instead of resurrecting the session. Entries live only as
	// long as some revival for the id is running. guarded by mu
	reviving map[string]int
	// guarded by mu
	tombstoned map[string]bool
	// exported marks sessions frozen by Export: the durable record is
	// retained (so a failed migration can be rolled back by importing
	// the payload right back), but requests refuse to revive the local
	// copy — the session's owner is another backend now. Cleared by
	// Import (rollback) or Delete (migration confirmed). guarded by mu
	exported map[string]bool
	// opening marks ids reserved by an in-flight open/import, so a
	// racing open of the same id (or a revival of its just-written
	// checkpoint) cannot publish a second copy. guarded by mu
	opening map[string]bool
	// guarded by mu
	closed bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

// NewManager creates a manager and, when cfg.IdleTTL > 0, starts its
// eviction janitor. Call Shutdown to release everything. Sessions
// already present in cfg.Store (from a previous process, or spilled by
// eviction) are served transparently: a request for a stored id revives
// the session by deterministic replay. Call RecoverAll to verify and
// count them eagerly at boot.
func NewManager(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 1024
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 16
	}
	if cfg.MailboxCap <= 0 {
		cfg.MailboxCap = 16
	}
	if cfg.Store == nil {
		cfg.Store = persist.NewMemStore()
	}
	m := &Manager{
		cfg:        cfg,
		budget:     NewBudget(cfg.Workers),
		store:      cfg.Store,
		nowFn:      time.Now,
		sessions:   make(map[string]*Session),
		reviving:   make(map[string]int),
		tombstoned: make(map[string]bool),
		exported:   make(map[string]bool),
		opening:    make(map[string]bool),
		stop:       make(chan struct{}),
		stages:     obs.NewStages(),
	}
	m.slo = NewSLOController(cfg.SLO)
	m.epoch = m.nowFn()
	m.telemetry.answerLatency = stats.NewLogHist()
	m.telemetry.endpoints = make(map[string]EndpointCounters)
	if cfg.IdleTTL > 0 {
		m.wg.Add(1)
		go m.janitor()
	}
	return m
}

// Store exposes the manager's snapshot store (for monitoring).
func (m *Manager) Store() persist.Store { return m.store }

// Controller exposes the overload controller (nil when disabled).
func (m *Manager) Controller() *SLOController { return m.slo }

// nowSec is the controller's clock: wall seconds since the manager was
// built, from the same nowFn tests hook.
func (m *Manager) nowSec() float64 { return m.nowFn().Sub(m.epoch).Seconds() }

// waitsNow samples the controller's saturation signal: the budget's
// cumulative contention counter, diffed per evaluation window inside
// the controller.
func (m *Manager) waitsNow() int64 { return m.budget.Waits() }

// sheddingNow reports whether admission control is currently rejecting
// load; the query itself advances the controller's evaluation clock.
func (m *Manager) sheddingNow() bool {
	if m.slo == nil {
		return false
	}
	return m.slo.ModeAt(m.nowSec(), m.waitsNow()) == ModeShedding
}

// ControllerMode returns the controller's current rung as a string, ""
// when the controller is disabled — the Health payload's capacity hint
// a shard router sheds-before-proxy on.
func (m *Manager) ControllerMode() string {
	if m.slo == nil {
		return ""
	}
	return m.slo.ModeAt(m.nowSec(), m.waitsNow()).String()
}

// Budget exposes the shared worker budget (for monitoring).
func (m *Manager) Budget() *Budget { return m.budget }

// Metrics assembles the load-telemetry snapshot behind GET /metrics.
// withBuckets adds the raw answer-latency buckets to the digest.
func (m *Manager) Metrics(withBuckets bool) Metrics {
	out := Metrics{
		BackendID:      m.cfg.BackendID,
		Sessions:       m.Len(),
		Spilled:        m.Spilled(),
		WorkersTotal:   m.budget.Total(),
		WorkersGranted: m.budget.InUse(),
		LaneWaits:      m.budget.Waits(),
		MailboxQueued:  m.mailboxQueued(),
	}
	if m.slo != nil {
		st := m.slo.Status(m.nowSec(), m.waitsNow())
		out.Controller = &st
	}
	out.Stages = m.stages.Summaries()
	if withBuckets {
		out.StageBuckets = m.stages.Buckets()
	}
	t := &m.telemetry
	t.Lock()
	defer t.Unlock()
	out.SessionsOpened = t.sessionsOpened
	out.AnswersServed = t.answersServed
	out.AnswerLatency = t.answerLatency.Summary()
	out.GainCacheHits = t.gainHits
	out.GainCacheMisses = t.gainMisses
	if withBuckets {
		out.AnswerLatencyBuckets = t.answerLatency.Buckets()
	}
	if len(t.endpoints) > 0 {
		out.Endpoints = make(map[string]EndpointCounters, len(t.endpoints))
		for k, v := range t.endpoints {
			out.Endpoints[k] = v
		}
	}
	return out
}

// RecordEndpoint folds one API request into the per-endpoint counters
// behind /metrics; the HTTP layer calls it for every routed request.
func (m *Manager) RecordEndpoint(endpoint string, isError bool) {
	t := &m.telemetry
	t.Lock()
	c := t.endpoints[endpoint]
	c.Requests++
	if isError {
		c.Errors++
	}
	t.endpoints[endpoint] = c
	t.Unlock()
}

// recordAnswer folds one successful answer into the telemetry.
func (m *Manager) recordAnswer(seconds float64) {
	t := &m.telemetry
	t.Lock()
	t.answersServed++
	t.answerLatency.Add(seconds)
	t.Unlock()
}

// mailboxQueued sums the deltas currently queued across live sessions'
// mailboxes. It takes only boxMu per session (never s.mu), so the
// scrape cannot stall behind inference.
func (m *Manager) mailboxQueued() int {
	m.mu.Lock()
	sessions := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.mu.Unlock()
	n := 0
	for _, s := range sessions {
		s.boxMu.Lock()
		n += len(s.box)
		s.boxMu.Unlock()
	}
	return n
}

// observeSpan records one finished stage: into the manager's per-stage
// histograms, and into the session's span ring when a session is in
// hand. Wall-clocked with time.Now directly — never through nowFn,
// whose test fakes advance per call and would perturb timings the
// tests assert on.
func (m *Manager) observeSpan(s *Session, trace, stage string, start time.Time) {
	d := time.Since(start).Seconds()
	m.stages.Observe(stage, d)
	if s != nil && s.spans != nil {
		s.spans.Append(obs.Span{Trace: trace, Stage: stage, Start: start.UnixNano(), Seconds: d})
	}
}

// sampleGainCache folds the session's gain-cache counter growth since
// the last sample into the manager's cumulative telemetry; s.mu must
// be held (the cache's counters are written by scoring under the same
// lock).
func (m *Manager) sampleGainCache(s *Session) {
	gc := s.core.GainCache()
	if gc == nil {
		return
	}
	h, mi := gc.Hits(), gc.Misses()
	dh, dm := h-s.gcHits, mi-s.gcMisses
	s.gcHits, s.gcMisses = h, mi
	if dh == 0 && dm == 0 {
		return
	}
	t := &m.telemetry
	t.Lock()
	t.gainHits += dh
	t.gainMisses += dm
	t.Unlock()
}

// TraceResponse is the GET /v1/sessions/{id}/trace payload: the
// session's buffered spans, oldest first.
type TraceResponse struct {
	ID    string     `json:"id"`
	Spans []obs.Span `json:"spans"`
}

// Trace returns the session's span ring. Live sessions only: a trace
// read is a diagnostic and must not revive a spilled session (the ring
// is per-process and would be empty anyway), bump its idle clock, or
// wait behind inference.
func (m *Manager) Trace(id string) (TraceResponse, error) {
	m.mu.Lock()
	s, ok := m.sessions[id]
	m.mu.Unlock()
	if !ok {
		return TraceResponse{}, ErrNotFound
	}
	spans := s.spans.Snapshot()
	if spans == nil {
		spans = []obs.Span{}
	}
	return TraceResponse{ID: id, Spans: spans}, nil
}

// Len returns the number of open sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

func (m *Manager) janitor() {
	defer m.wg.Done()
	tick := time.NewTicker(m.cfg.IdleTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			m.EvictIdle(m.cfg.IdleTTL)
		}
	}
}

// EvictIdle spills every session idle for at least ttl to the store and
// releases its in-memory resources (cached worker chains, scoring
// buffers, the corpus and engine), returning the number spilled. A
// spilled session stops counting against the session cap; its next
// request revives it transparently by deterministic replay, so memory
// scales past MaxSessions while ids stay serveable.
//
// The spill checkpoint is written while the session is still routable
// and its lock is held: concurrent requests for the id queue on the
// session lock instead of racing a revival against the checkpoint, and
// a request that touched the session while we waited cancels the
// eviction (rechecked under the manager lock before removal).
func (m *Manager) EvictIdle(ttl time.Duration) int {
	cutoff := m.nowFn().Add(-ttl)
	stale := func(s *Session) bool {
		return s.lastUsed.Before(cutoff) || s.lastUsed.Equal(cutoff)
	}
	m.mu.Lock()
	var victims []*Session
	for _, s := range m.sessions {
		if stale(s) {
			victims = append(victims, s)
		}
	}
	m.mu.Unlock()
	evicted := 0
	for _, s := range victims {
		if m.spill(s, stale) {
			evicted++
		}
	}
	return evicted
}

// spill writes one victim's compacting checkpoint and removes it from
// the live set; it reports whether the session was actually evicted. A
// session Deleted since the victim scan is already closed (Delete holds
// s.mu while closing), and checkpointing it would resurrect its durable
// record — the Closed check skips it.
func (m *Manager) spill(s *Session, stale func(*Session) bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.core.Closed() {
		return false
	}
	// Queued arrivals were acknowledged to their producers; fold them
	// into the spill checkpoint rather than dropping them with the live
	// copy (best effort, like the checkpoint itself).
	_ = m.drainWithBudget(s)
	// Compact WAL + checkpoint into one fresh checkpoint. Failure is
	// non-fatal: the store still holds the session as the previous
	// checkpoint plus its WAL, which Load merges.
	_ = m.checkpointLocked(s)
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur, ok := m.sessions[s.id]; ok && cur == s && stale(s) {
		delete(m.sessions, s.id)
		_ = s.core.Close()
		return true
	}
	return false
}

// record assembles the session's durable form; s.mu must be held.
func (s *Session) record() (persist.Record, error) {
	cfg, err := json.Marshal(s.cfg)
	if err != nil {
		return persist.Record{}, err
	}
	return persist.Record{
		Config:       cfg,
		Elicitations: s.core.Snapshot().Elicitations,
	}, nil
}

// checkpointLocked writes a full checkpoint for s and resets its WAL
// counter; s.mu must be held.
func (m *Manager) checkpointLocked(s *Session) error {
	rec, err := s.record()
	if err == nil {
		err = m.store.Checkpoint(s.id, rec)
	}
	if err != nil {
		return fmt.Errorf("%w: %v", ErrPersist, err)
	}
	s.walLen = 0
	return nil
}

// Shutdown stops the janitor, spills every session to the store (a
// final compacting checkpoint, so a durable store can recover them all
// after restart), closes them, and closes the store. The manager
// rejects all further operations with ErrShutdown.
func (m *Manager) Shutdown() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.stop)
	victims := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		victims = append(victims, s)
	}
	m.sessions = make(map[string]*Session)
	m.mu.Unlock()
	m.wg.Wait()
	for _, s := range victims {
		s.mu.Lock()
		_ = m.drainWithBudget(s)  // acknowledged arrivals ride the final checkpoint
		_ = m.checkpointLocked(s) // best effort; WAL already covers the transcript
		_ = s.core.Close()
		s.mu.Unlock()
	}
	_ = m.store.Close()
}

// buildOptions translates an OpenRequest into core options. Workers is
// left 0 here; every request installs its actual budget grant via
// core.Session.SetWorkers before doing work.
func buildOptions(req OpenRequest) (core.Options, error) {
	var strat guidance.Strategy
	switch req.Strategy {
	case "", "hybrid":
		strat = &guidance.Hybrid{}
	case "info":
		strat = guidance.InfoGain{}
	case "source":
		strat = guidance.SourceGain{}
	case "uncertainty":
		strat = guidance.Uncertainty{}
	case "random":
		strat = guidance.Random{}
	default:
		return core.Options{}, fmt.Errorf("service: unknown strategy %q", req.Strategy)
	}
	cfg := em.DefaultConfig()
	if o := req.EM; o != nil {
		if o.BurnIn > 0 {
			cfg.BurnIn = o.BurnIn
		}
		if o.Samples > 0 {
			cfg.Samples = o.Samples
		}
		if o.IncBurnIn > 0 {
			cfg.IncBurnIn = o.IncBurnIn
		}
		if o.IncSamples > 0 {
			cfg.IncSamples = o.IncSamples
		}
		if o.EMIters > 0 {
			cfg.EMIters = o.EMIters
		}
		if o.HypoBurn > 0 {
			cfg.HypoBurn = o.HypoBurn
		}
		if o.HypoSamples > 0 {
			cfg.HypoSamples = o.HypoSamples
		}
	}
	return core.Options{
		Strategy:       strat,
		Budget:         req.Budget,
		CandidatePool:  req.CandidatePool,
		ConfirmEvery:   req.ConfirmEvery,
		FullSweepEvery: req.FullSweepEvery,
		EM:             cfg,
		Seed:           req.Seed,
	}, nil
}

// BuildOptions translates an OpenRequest into the core session options
// the server would run it with. It is exported for tools (trace
// checkers, benchmarks) that must reproduce a served session's exact
// selection trace through the in-process library path.
func BuildOptions(req OpenRequest) (core.Options, error) { return buildOptions(req) }

// Admission bounds on a generated session corpus: one oversized open
// request must not be able to exhaust the server's memory.
const (
	maxCorpusClaims    = 20_000
	maxCorpusDocuments = 400_000
	maxCorpusSources   = 200_000
)

// BuildCorpus generates the session corpus a request opens over,
// applying the scale normalisation and the admission caps. It is
// exported because the workload subsystem must regenerate the same
// corpus client-side (synthetic corpora are a pure function of the
// request) to know the ground truth its simulated users answer from —
// sharing the constructor is what guarantees the two sides agree.
func BuildCorpus(req OpenRequest) (*synth.Corpus, error) {
	prof, err := synth.ByName(req.Profile)
	if err != nil {
		return nil, err
	}
	scale := req.Scale
	if scale == 0 {
		scale = 1
	}
	if scale < 0 {
		return nil, fmt.Errorf("service: negative corpus scale %v", scale)
	}
	p := prof
	if scale != 1 {
		p = prof.Scaled(scale)
	}
	parts := req.Communities
	if parts < 0 {
		return nil, fmt.Errorf("service: negative community count %d", parts)
	}
	if parts <= 1 {
		parts = 1
	}
	// Admission sizes the merged corpus: parts replicas of the
	// per-community sub-profile (whose floors can round sizes up).
	sub := synth.CommunityProfile(p, parts)
	if sub.Claims*parts > maxCorpusClaims || sub.Documents*parts > maxCorpusDocuments || sub.Sources*parts > maxCorpusSources {
		return nil, fmt.Errorf(
			"service: scale %v × %d communities yields %d claims / %d documents / %d sources, above the serving cap (%d/%d/%d)",
			scale, parts, sub.Claims*parts, sub.Documents*parts, sub.Sources*parts,
			maxCorpusClaims, maxCorpusDocuments, maxCorpusSources)
	}
	if parts == 1 {
		return synth.GenerateChecked(p, req.Seed)
	}
	if err := sub.Validate(); err != nil {
		return nil, err
	}
	return synth.GenerateCommunities(p, parts, req.Seed), nil
}

func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return hex.EncodeToString(b[:])
}

// Open creates a session from a fresh configuration.
func (m *Manager) Open(req OpenRequest) (SessionInfo, error) {
	return m.open(newID(), req, nil, false)
}

// checkSessionID validates a caller-supplied session id: ids become
// file names in a FileStore and path segments in the API, so anything
// outside [A-Za-z0-9_-] (or unreasonably long) is rejected.
func checkSessionID(id string) error {
	if id == "" || len(id) > 64 {
		return fmt.Errorf("service: invalid session id %q", id)
	}
	for _, r := range id {
		ok := r == '-' || r == '_' ||
			(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !ok {
			return fmt.Errorf("service: invalid session id %q", id)
		}
	}
	return nil
}

// OpenAs creates a session under a caller-chosen id. This is how a
// shard router keeps placement consistent: the router draws the id,
// hashes it onto the ring, and asks the owning backend to open under
// exactly that id. An id already known to this backend (live, stored,
// or mid-open) is rejected with ErrExists.
func (m *Manager) OpenAs(id string, req OpenRequest) (SessionInfo, error) {
	if err := checkSessionID(id); err != nil {
		return SessionInfo{}, err
	}
	if _, ok, err := m.store.Load(id); err != nil {
		return SessionInfo{}, fmt.Errorf("%w: %v", ErrPersist, err)
	} else if ok {
		return SessionInfo{}, fmt.Errorf("%w: %q", ErrExists, id)
	}
	return m.open(id, req, nil, false)
}

// Restore reopens a snapshotted session by deterministic replay of its
// transcript, under a fresh id. The restored session continues exactly
// where the snapshotted one stopped.
func (m *Manager) Restore(snap SessionSnapshot) (SessionInfo, error) {
	return m.open(newID(), snap.Config, &core.Snapshot{
		Version:      snap.Version,
		Elicitations: snap.Elicitations,
	}, false)
}

// Export freezes a session and returns its portable durable form — the
// same checkpoint+WAL record the persist layer keeps, which is all a
// session is. After Export the local copy is closed and will not be
// revived (requests get ErrMigrated); the durable record is retained as
// the rollback copy until the migration is confirmed with Delete, or
// rolled back by importing the payload right back into this backend.
func (m *Manager) Export(id string) (SessionSnapshot, error) {
	s, err := m.get(id) // revives a spilled session first
	if err != nil {
		return SessionSnapshot{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.core.Closed() {
		// Evicted or deleted between lookup and lock.
		return SessionSnapshot{}, ErrNotFound
	}
	// Acknowledged arrivals migrate with the session: drain the mailbox
	// into the transcript before the payload is cut. Unlike spill this
	// is not best-effort — an exported record silently missing deltas
	// would diverge from what producers were told.
	if err := m.drainWithBudget(s); err != nil {
		return SessionSnapshot{}, err
	}
	// Final compacting checkpoint: the local durable record (the
	// rollback copy) must match the payload that travels.
	if err := m.checkpointLocked(s); err != nil {
		return SessionSnapshot{}, err
	}
	cs := s.core.Snapshot()
	snap := SessionSnapshot{Version: cs.Version, Config: s.cfg, Elicitations: cs.Elicitations}
	m.mu.Lock()
	if cur, ok := m.sessions[s.id]; ok && cur == s {
		delete(m.sessions, s.id)
		m.exported[s.id] = true
	}
	m.mu.Unlock()
	_ = s.core.Close()
	return snap, nil
}

// Import installs an exported session under its original id — the
// receiving half of a migration, and the rollback path when the forward
// migration failed. The session is rebuilt by the same bit-identical
// replay as crash recovery and checkpointed locally before it becomes
// routable. A live session under the id is rejected with ErrExists; a
// stored (non-live) record is overwritten deliberately, because that is
// exactly what a rollback or a re-imported failover copy looks like.
func (m *Manager) Import(id string, snap SessionSnapshot) (SessionInfo, error) {
	if err := checkSessionID(id); err != nil {
		return SessionInfo{}, err
	}
	return m.open(id, snap.Config, &core.Snapshot{
		Version:      snap.Version,
		Elicitations: snap.Elicitations,
	}, true)
}

// Sessions lists every session this backend owns, split by residence:
// live in-memory ones versus stored (spilled or not-yet-revived)
// records, minus copies exported to another backend. A shard router
// enumerates backends this way when draining or rebalancing, so it
// needs no session table of its own; the live/stored split matters
// because with a shared store every backend lists the same stored
// records, and only live copies pin a session to a particular backend.
func (m *Manager) Sessions() (SessionList, error) {
	stored, err := m.store.List()
	if err != nil {
		return SessionList{}, fmt.Errorf("%w: %v", ErrPersist, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return SessionList{}, ErrShutdown
	}
	out := SessionList{
		Live:   make([]string, 0, len(m.sessions)),
		Stored: make([]string, 0, len(stored)),
	}
	for id := range m.sessions {
		out.Live = append(out.Live, id)
	}
	for _, id := range stored {
		if _, live := m.sessions[id]; !live && !m.exported[id] {
			out.Stored = append(out.Stored, id)
		}
	}
	sort.Strings(out.Live)
	sort.Strings(out.Stored)
	return out, nil
}

// StoreLocation identifies the backing store's storage location (the
// absolute data directory for a file store, "" for stores with no
// shareable identity). A shard router compares locations to decide
// whether two backends see the same bytes: migrating a session between
// co-located backends must not tombstone the record the new owner now
// serves from.
func (m *Manager) StoreLocation() string {
	if l, ok := m.store.(persist.Locator); ok {
		return l.Location()
	}
	return ""
}

// buildSession constructs the in-memory session for req, replaying snap
// when non-nil (restore and revival) or opening fresh when nil. The
// initial inference / replay is the expensive part; it runs with
// whatever share of the worker budget is free right now. The returned
// session is not yet routable — the caller publishes it.
func (m *Manager) buildSession(id string, req OpenRequest, snap *core.Snapshot) (*Session, error) {
	opts, err := buildOptions(req)
	if err != nil {
		return nil, err
	}
	corpus, err := BuildCorpus(req)
	if err != nil {
		return nil, err
	}
	grant, release := m.budget.Acquire(m.budget.Total())
	opts.Workers = grant
	var cs *core.Session
	if snap == nil {
		cs, err = core.OpenSession(corpus.DB, opts)
	} else {
		cs, err = core.RestoreSession(corpus.DB, opts, *snap)
	}
	release()
	if err != nil {
		return nil, err
	}
	if snap != nil {
		// Replay grew the corpus through recorded ingest records; the
		// ground truth of ingested claims rides inside the deltas (the
		// database itself is truth-free), so the truth vector is grown
		// here to keep oracle answers and precision defined over the
		// full corpus.
		for _, e := range snap.Elicitations {
			if e.Ingest != nil {
				corpus.Truth = append(corpus.Truth, e.Ingest.Truth...)
			}
		}
	}
	return &Session{
		id:         id,
		core:       cs,
		corpus:     corpus,
		cfg:        req,
		boxClaims:  corpus.DB.NumClaims,
		boxSources: len(corpus.DB.Sources),
		boxDocs:    len(corpus.DB.Documents),
		srcDim:     corpus.DB.SourceFeatureDim(),
		docDim:     corpus.DB.DocFeatureDim(),
		spans:      obs.NewRing(spanRingCap),
		lastUsed:   m.nowFn(),
	}, nil
}

// open builds, persists and publishes a session under id. reserve/
// unreserve bracket the build so two racing opens (or an open racing a
// revival) of the same id cannot both publish. imported marks the
// Import path: an exported tombstone for the id is cleared at publish,
// and a failed publish leaves the stored record in place — it is the
// migration's rollback copy, not this call's garbage.
func (m *Manager) open(id string, req OpenRequest, replay *core.Snapshot, imported bool) (SessionInfo, error) {
	if err := m.reserve(id, imported); err != nil {
		return SessionInfo{}, err
	}
	defer m.unreserve(id)
	s, err := m.buildSession(id, req, replay)
	if err != nil {
		return SessionInfo{}, err
	}
	// Persist before publishing: once a client holds the id, the session
	// must survive a crash. The session is not routable yet, so no lock
	// is needed around the checkpoint.
	if err := m.checkpointLocked(s); err != nil {
		_ = s.core.Close()
		return SessionInfo{}, err
	}
	m.mu.Lock()
	if m.closed || len(m.sessions) >= m.cfg.MaxSessions {
		closed := m.closed
		m.mu.Unlock()
		_ = s.core.Close()
		if !imported {
			_ = m.store.Delete(s.id)
		}
		if closed {
			return SessionInfo{}, ErrShutdown
		}
		return SessionInfo{}, ErrFull
	}
	m.sessions[s.id] = s
	if imported {
		delete(m.exported, s.id)
	}
	m.mu.Unlock()
	m.telemetry.Lock()
	m.telemetry.sessionsOpened++
	m.telemetry.Unlock()
	return SessionInfo{
		ID:        s.id,
		Profile:   s.corpus.Profile.Name,
		Claims:    s.corpus.DB.NumClaims,
		Sources:   len(s.corpus.DB.Sources),
		Documents: len(s.corpus.DB.Documents),
		Precision: s.core.Precision(s.corpus.Truth),
	}, nil
}

// reserve admits an open for id and marks it in-flight. allowExported
// distinguishes Import (which may reclaim an exported id — the
// rollback) from plain opens (for which an exported id is still taken).
// While the SLO controller sheds, plain opens are refused outright (new
// sessions are the most expensive admission there is: corpus generation
// plus initial inference); imports stay exempt, because a shard
// migration landing here is load the fleet has already accepted and
// refusing it would wedge drains exactly when they matter.
func (m *Manager) reserve(id string, allowExported bool) error {
	if !allowExported && m.sheddingNow() {
		m.slo.RecordShed()
		return ErrOverloaded
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrShutdown
	}
	if len(m.sessions) >= m.cfg.MaxSessions {
		return ErrFull
	}
	if _, live := m.sessions[id]; live || m.opening[id] || m.reviving[id] > 0 {
		return fmt.Errorf("%w: %q", ErrExists, id)
	}
	if !allowExported && m.exported[id] {
		return fmt.Errorf("%w: %q", ErrExists, id)
	}
	m.opening[id] = true
	return nil
}

func (m *Manager) unreserve(id string) {
	m.mu.Lock()
	delete(m.opening, id)
	m.mu.Unlock()
}

// get looks a session up and refreshes its idle clock; a session absent
// from memory but present in the store is revived first.
func (m *Manager) get(id string) (*Session, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrShutdown
	}
	if s, ok := m.sessions[id]; ok {
		s.lastUsed = m.nowFn()
		m.mu.Unlock()
		return s, nil
	}
	m.mu.Unlock()
	return m.revive(id)
}

// revive rebuilds a stored session (spilled by eviction, or left behind
// by a crashed process) via the bit-identical core.RestoreSession replay
// path, and re-inserts it into the live set. When two requests race to
// revive the same id, the loser discards its replay and adopts the
// winner's session. Revival counts against the session cap.
//
// A revival registers itself in m.reviving for its whole duration so
// Delete can leave a tombstone for it: without one, a Delete landing
// between the store read and the insert would remove the durable record
// and still see the session come back to life (and the next spill would
// re-create the record). The tombstone check runs under the manager
// lock right before the insert, and Delete keeps its store writes under
// the same lock, so every interleaving either tombstones the in-flight
// revival or empties the store before the revival's read.
func (m *Manager) revive(id string) (*Session, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrShutdown
	}
	if s, ok := m.sessions[id]; ok {
		// Lost the lookup race to a concurrent revival; adopt it.
		s.lastUsed = m.nowFn()
		m.mu.Unlock()
		return s, nil
	}
	if m.exported[id] {
		// The session was exported to another backend; its retained
		// record is a rollback copy, not a serveable session.
		m.mu.Unlock()
		return nil, ErrMigrated
	}
	if m.opening[id] {
		// An open/import for this id is mid-flight: its checkpoint may
		// already be on disk, but the id has not been published to the
		// caller yet, so to this request it does not exist.
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	m.reviving[id]++
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		if m.reviving[id]--; m.reviving[id] <= 0 {
			delete(m.reviving, id)
			delete(m.tombstoned, id)
		}
		m.mu.Unlock()
	}()

	rec, ok, err := m.store.Load(id)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPersist, err)
	}
	if !ok {
		return nil, ErrNotFound
	}
	var req OpenRequest
	if err := json.Unmarshal(rec.Config, &req); err != nil {
		return nil, fmt.Errorf("%w: corrupt stored config for session %q: %v", ErrPersist, id, err)
	}
	s, err := m.buildSession(id, req, &core.Snapshot{Elicitations: rec.Elicitations})
	if err != nil {
		return nil, fmt.Errorf("%w: replay of session %q: %v", ErrPersist, id, err)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		_ = s.core.Close()
		return nil, ErrShutdown
	}
	if m.tombstoned[id] {
		// The session was deleted while we were replaying it.
		m.mu.Unlock()
		_ = s.core.Close()
		return nil, ErrNotFound
	}
	if cur, ok := m.sessions[id]; ok {
		// Lost a revival race; the store was only read, nothing to undo.
		cur.lastUsed = m.nowFn()
		m.mu.Unlock()
		_ = s.core.Close()
		return cur, nil
	}
	if len(m.sessions) >= m.cfg.MaxSessions {
		m.mu.Unlock()
		_ = s.core.Close()
		return nil, ErrFull
	}
	m.sessions[id] = s
	m.mu.Unlock()
	return s, nil
}

// RecoverAll verifies every session left in the store by a previous
// process: each record is loaded (checkpoint plus WAL merge, torn tails
// dropped) and its configuration decoded. It returns the number of
// recoverable sessions. Replay itself is deferred to each session's
// first request, so boot cost is one store scan regardless of how much
// inference the stored transcripts represent; the first request pays
// the replay through the same bit-identical restore path.
func (m *Manager) RecoverAll() (int, error) {
	ids, err := m.store.List()
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrPersist, err)
	}
	recovered := 0
	var errs []error
	for _, id := range ids {
		rec, ok, err := m.store.Load(id)
		if err != nil || !ok {
			errs = append(errs, fmt.Errorf("session %q: %v", id, err))
			continue
		}
		var req OpenRequest
		if err := json.Unmarshal(rec.Config, &req); err != nil {
			errs = append(errs, fmt.Errorf("session %q: corrupt config: %v", id, err))
			continue
		}
		recovered++
	}
	return recovered, errors.Join(errs...)
}

// Spilled returns the number of stored sessions that are not currently
// live (evicted to the store, or recovered-but-not-yet-revived).
func (m *Manager) Spilled() int {
	ids, err := m.store.List()
	if err != nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, id := range ids {
		if _, live := m.sessions[id]; !live && !m.exported[id] {
			n++
		}
	}
	return n
}

// Delete closes and removes a session, live or spilled, and deletes its
// durable record. The store writes run under the manager lock, atomic
// with the tombstone decision, so a revival in flight for the id either
// sees the tombstone (registered before the delete) or an already-empty
// store (registered after) — it can never resurrect the session. The
// store I/O under the lock is acceptable because deletes are rare.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrShutdown
	}
	s, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
	}
	if !ok {
		// Possibly spilled, exported, or being revived right now.
		defer m.mu.Unlock()
		if m.reviving[id] > 0 {
			m.tombstoned[id] = true
		}
		_, stored, err := m.store.Load(id)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrPersist, err)
		}
		if !stored {
			return ErrNotFound
		}
		if err := m.store.Delete(id); err != nil {
			return fmt.Errorf("%w: %v", ErrPersist, err)
		}
		// A migration confirmed by the router deletes the exported
		// rollback copy; the id is free again.
		delete(m.exported, id)
		return nil
	}
	m.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-take the manager lock (s.mu → m.mu, the eviction janitor's
	// order) so the record removal is atomic with the tombstone check.
	m.mu.Lock()
	if m.reviving[id] > 0 {
		m.tombstoned[id] = true
	}
	err := m.store.Delete(id)
	m.mu.Unlock()
	if err != nil {
		_ = s.core.Close()
		return fmt.Errorf("%w: %v", ErrPersist, err)
	}
	return s.core.Close()
}

// withSession runs fn with the session locked and, when the request
// performs inference or scoring (needWorkers), a worker-budget grant
// installed. This is the per-request concurrency shape: distinct
// sessions run fn concurrently, one session's requests serialise,
// inference work shares the bounded lane budget, and read-only requests
// (state, snapshot) neither wait for nor consume lanes.
//
// The SLO controller hooks in here for work-performing requests: while
// shedding, a request that cannot take a lane immediately is refused
// with ErrOverloaded instead of queueing (shed-before-queue — the queue
// is exactly where a saturated p99 comes from), and the session's
// ranking mode for this request is set from the controller's rung at
// execution time (after any queue wait, so a backlog queued across the
// degrade transition drains at the cheap cost). The mode flip is
// trace-safe: core captures the mode at ranking time, so a cached
// ranking from a previous request keeps the mode it was computed under.
func (m *Manager) withSession(ctx context.Context, id string, needWorkers bool, fn func(*Session) error) error {
	trace := obs.TraceID(ctx)
	s, err := m.get(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.core.Closed() {
		// Evicted between lookup and lock.
		return ErrNotFound
	}
	if needWorkers {
		// Contention is sampled at arrival, before this request takes
		// (or queues for) lanes of its own — the signal is "did anyone
		// meet a saturated budget", not "is the budget busy while I
		// hold it".
		waits := m.waitsNow()
		laneStart := time.Now()
		if m.slo != nil && m.slo.ModeAt(m.nowSec(), waits) == ModeShedding {
			grant, release, ok := m.budget.TryAcquire(m.budget.Total())
			if !ok {
				m.slo.RecordShed()
				return ErrOverloaded
			}
			defer release()
			s.core.SetWorkers(grant)
		} else {
			grant, release := m.budget.Acquire(m.budget.Total())
			defer release()
			s.core.SetWorkers(grant)
		}
		m.observeSpan(s, trace, obs.StageLaneAcquire, laneStart)
		if m.slo != nil {
			// The ranking mode is stamped at execution time, after any
			// queue wait: when the controller degrades mid-backlog, the
			// queued requests behind the transition run cheap instead of
			// re-paying the full scoring cost the server already cannot
			// afford.
			s.core.SetDegraded(m.slo.ModeAt(m.nowSec(), waits) != ModeNormal)
		}
		// Drain the ingestion mailbox before the request's own work: a
		// worker-holding request is the batch boundary arrivals queue
		// between, so every ranking and answer sees the freshest corpus.
		// The span is recorded only when there was something to drain —
		// an empty mailbox is not an ingest_apply stage.
		s.boxMu.Lock()
		queued := len(s.box)
		s.boxMu.Unlock()
		drainStart := time.Now()
		if err := m.drainLocked(s); err != nil {
			return err
		}
		if queued > 0 {
			m.observeSpan(s, trace, obs.StageIngestApply, drainStart)
		}
		defer m.sampleGainCache(s)
	}
	return fn(s)
}

// Next returns the current iteration's top-k guidance ranking. The
// ranking is cached inside the core session, so polling is idempotent
// and trace-neutral.
func (m *Manager) Next(id string, k int) (NextResponse, error) {
	return m.NextCtx(context.Background(), id, k)
}

// NextCtx is Next with a request context carrying the trace id (see
// obs.WithTrace); the HTTP layer threads it through so the lane and
// drain spans it records land in the session's trace ring under the
// request's id.
func (m *Manager) NextCtx(ctx context.Context, id string, k int) (NextResponse, error) {
	var resp NextResponse
	err := m.withSession(ctx, id, true, func(s *Session) error {
		resp = s.next(k)
		return nil
	})
	return resp, err
}

func (s *Session) next(k int) NextResponse {
	resp := NextResponse{ID: s.id, Iteration: s.core.Iterations(), Seq: s.core.TranscriptLen()}
	if s.budgetExhausted() {
		// Checked before ranking: a finished session must not pay for
		// (and then discard) a scoring round.
		resp.Done = true
		return resp
	}
	rank := s.ranking()
	if len(rank) == 0 {
		resp.Done = true
		return resp
	}
	if k <= 0 {
		k = 1
	}
	if len(rank) > k {
		rank = rank[:k]
	}
	db := s.corpus.DB
	for _, c := range rank {
		resp.Candidates = append(resp.Candidates, Candidate{
			Claim:     c,
			P:         s.core.State.P(c),
			Documents: len(db.ClaimCliques[c]),
			Sources:   len(db.ClaimSources[c]),
		})
	}
	return resp
}

// ranking returns the per-iteration ranking (computing and caching it on
// first use), shifted past the top claim when the client has skipped it.
func (s *Session) ranking() []int {
	rank, err := s.core.Pending(0)
	if err != nil {
		return nil
	}
	if s.skipped && len(rank) > 0 {
		rank = rank[1:]
	}
	return rank
}

// cachedRanking is ranking without the side effect: it peeks at the
// cached order and reports ok = false when none is cached, so read-only
// endpoints never trigger a scoring round.
func (s *Session) cachedRanking() ([]int, bool) {
	rank, ok := s.core.PendingCached()
	if !ok {
		return nil, false
	}
	if s.skipped && len(rank) > 0 {
		rank = rank[1:]
	}
	return rank, true
}

func (s *Session) budgetExhausted() bool {
	b := s.cfg.Budget
	return b > 0 && s.core.State.NumLabeled() >= b
}

// ingestOnlySince reports whether every transcript record at or after
// seq is a corpus-ingestion arrival. Clients echo the sequence they
// last saw, but server-side ingestion commits transcript records the
// client cannot know about; a sequence stale only by ingest records
// still uniquely identifies "the next answer", so the sequence check
// tolerates it instead of bouncing the answer with ErrSeq.
func (s *Session) ingestOnlySince(seq int) bool {
	if seq < 0 || seq > s.core.TranscriptLen() {
		return false
	}
	for _, e := range s.core.TranscriptTail(seq) {
		if e.Ingest == nil {
			return false
		}
	}
	return true
}

// Answer applies one response to the currently expected claim and, when
// it completes an iteration, runs incremental inference. Every
// elicitation the step records (the answer itself, a materialised skip,
// repair prompts from a confirmation check) is appended to the snapshot
// store before the response is returned: a crash at any instant loses at
// most an answer whose response the client never saw, and resubmitting
// it after recovery is consistent.
func (m *Manager) Answer(id string, req AnswerRequest) (StateResponse, error) {
	return m.AnswerCtx(context.Background(), id, req)
}

// AnswerCtx is Answer with a request context carrying the trace id.
// The whole path is decomposed into spans (lane acquire → mailbox
// drain → Gibbs resample → dirty-component rescore → WAL append, plus
// the whole-path answer span) recorded in the session's trace ring and
// the per-stage histograms behind /metrics.
func (m *Manager) AnswerCtx(ctx context.Context, id string, req AnswerRequest) (StateResponse, error) {
	trace := obs.TraceID(ctx)
	start := m.nowFn()
	wallStart := time.Now()
	var resp StateResponse
	var degraded bool
	err := m.withSession(ctx, id, true, func(s *Session) error {
		from := s.core.TranscriptLen()
		var err error
		resp, err = s.answer(req, func(stage string, t0 time.Time) {
			m.observeSpan(s, trace, stage, t0)
		})
		if err != nil {
			return err
		}
		for _, e := range s.core.TranscriptTail(from) {
			if e.Degraded {
				degraded = true
			}
		}
		walStart := time.Now()
		if err := m.persistTail(s, from); err != nil {
			return err
		}
		m.observeSpan(s, trace, obs.StageWALAppend, walStart)
		m.observeSpan(s, trace, obs.StageAnswer, wallStart)
		return nil
	})
	if err == nil {
		lat := m.nowFn().Sub(start).Seconds()
		m.recordAnswer(lat)
		if m.slo != nil {
			if degraded {
				m.slo.RecordDegradedAnswer()
			}
			m.slo.ObserveAnswer(m.nowSec(), lat, m.waitsNow())
		}
	}
	return resp, err
}

// persistTail appends the elicitations recorded at or after index from
// to the store and compacts the WAL when it reaches CheckpointEvery;
// s.mu must be held. A failed append is retried as a full checkpoint
// (the store's seq-numbered merge makes the repair safe); only when
// both fail is ErrPersist reported — the in-memory session stays
// consistent either way.
func (m *Manager) persistTail(s *Session, from int) error {
	tail := s.core.TranscriptTail(from)
	if len(tail) == 0 {
		return nil
	}
	for i, e := range tail {
		if err := m.store.Append(s.id, from+i, e); err != nil {
			if cerr := m.checkpointLocked(s); cerr != nil {
				return fmt.Errorf("%w: %v", ErrPersist, err)
			}
			return nil
		}
	}
	s.walLen += len(tail)
	if s.walLen >= m.cfg.CheckpointEvery {
		// Compaction failure is non-fatal: checkpoint + WAL still hold
		// the full transcript, and the next threshold retries.
		_ = m.checkpointLocked(s)
	}
	return nil
}

// IngestRequest streams one corpus delta into a live session (POST
// /v1/sessions/{id}/claims and .../sources). Because this server
// doubles as the evaluation harness, a delta introducing claims must
// carry their ground truth (Delta.Truth, one value per new claim):
// oracle answers and precision reporting are defined over the full
// corpus, ingested claims included. A production deployment ingesting
// real corpora would drop that requirement along with the other
// truth-derived fields.
type IngestRequest struct {
	Delta factdb.Delta `json:"delta"`
}

// IngestResponse acknowledges an accepted corpus delta.
type IngestResponse struct {
	ID string `json:"id"`
	// Applied reports that the delta (and everything queued ahead of
	// it) was applied to the live session before this response was
	// sent. False means it passed validation and is queued in the
	// session's mailbox — it will be applied before the next ranking or
	// answer, but is not yet in the transcript and would not survive a
	// crash.
	Applied bool `json:"applied"`
	// Queued is the number of deltas waiting in the mailbox after this
	// request (0 when Applied).
	Queued int `json:"queued"`
	// Claims/Sources/Documents are the session's virtual corpus totals:
	// the database plus every queued delta.
	Claims    int `json:"claims"`
	Sources   int `json:"sources"`
	Documents int `json:"documents"`
	// Seq is the transcript sequence after this request's effects;
	// meaningful only when Applied (a queued delta has no transcript
	// position yet).
	Seq int `json:"seq,omitempty"`
}

// Ingest accepts one corpus delta for a live session: the delta is
// validated against the session's virtual corpus shape (database plus
// queued deltas — apply-time failure is impossible by induction) and
// enqueued in the session's bounded mailbox, then applied immediately
// when the session lock and a worker lane are free right now. A full
// mailbox is refused with ErrMailboxFull and counts as a shed toward
// the SLO controller's telemetry: arrivals outpacing the drain are
// exactly the overload admission control exists to push back on.
func (m *Manager) Ingest(id string, req IngestRequest) (IngestResponse, error) {
	return m.IngestCtx(context.Background(), id, req)
}

// IngestCtx is Ingest with a request context carrying the trace id;
// an opportunistic inline apply records its ingest_apply span under
// the producing request's trace.
func (m *Manager) IngestCtx(ctx context.Context, id string, req IngestRequest) (IngestResponse, error) {
	if req.Delta.Empty() {
		return IngestResponse{}, errors.New("service: empty delta")
	}
	if len(req.Delta.Truth) != req.Delta.NewClaims {
		return IngestResponse{}, fmt.Errorf(
			"service: delta carries %d truth values for %d new claims (this server grades against ground truth; see IngestRequest)",
			len(req.Delta.Truth), req.Delta.NewClaims)
	}
	s, err := m.get(id)
	if err != nil {
		return IngestResponse{}, err
	}
	resp := IngestResponse{ID: id}
	s.boxMu.Lock()
	if len(s.box) >= m.cfg.MailboxCap {
		s.boxMu.Unlock()
		if m.slo != nil {
			m.slo.RecordShed()
		}
		return IngestResponse{}, fmt.Errorf("%w: %d deltas queued", ErrMailboxFull, m.cfg.MailboxCap)
	}
	if err := req.Delta.Validate(s.boxClaims, s.boxSources, s.srcDim, s.docDim); err != nil {
		s.boxMu.Unlock()
		return IngestResponse{}, err
	}
	s.box = append(s.box, req.Delta)
	c, src, docs := req.Delta.Counts()
	s.boxClaims += c
	s.boxSources += src
	s.boxDocs += docs
	resp.Queued = len(s.box)
	resp.Claims, resp.Sources, resp.Documents = s.boxClaims, s.boxSources, s.boxDocs
	s.boxMu.Unlock()

	// Opportunistic apply: when the session lock and a worker lane are
	// both free right now, the arrival is folded in before the response
	// leaves (Applied = true, and the delta is durably in the WAL).
	// Contention skips this — the mailbox drains at the next ranking or
	// answer — so a busy session never makes producers wait behind
	// inference.
	if s.mu.TryLock() {
		defer s.mu.Unlock()
		if s.core.Closed() {
			// The session was evicted or deleted between lookup and
			// lock; the enqueue above landed in a dead object.
			return IngestResponse{}, ErrNotFound
		}
		if grant, release, ok := m.budget.TryAcquire(m.budget.Total()); ok {
			s.core.SetWorkers(grant)
			drainStart := time.Now()
			err := m.drainLocked(s)
			release()
			if err != nil {
				return IngestResponse{}, err
			}
			m.observeSpan(s, obs.TraceID(ctx), obs.StageIngestApply, drainStart)
			resp.Applied = true
			resp.Queued = 0
			resp.Seq = s.core.TranscriptLen()
		}
	}
	return resp, nil
}

// drainLocked applies every queued delta to the live session, records
// the arrivals in the transcript, and persists the tail; s.mu must be
// held with a worker grant installed. Enqueue-time validation against
// the virtual shape makes apply failure impossible; one anyway would
// indicate corruption and is surfaced as the internal error it is.
func (m *Manager) drainLocked(s *Session) error {
	s.boxMu.Lock()
	deltas := s.box
	s.box = nil
	s.boxMu.Unlock()
	if len(deltas) == 0 {
		return nil
	}
	from := s.core.TranscriptLen()
	for _, d := range deltas {
		if _, err := s.core.Ingest(d); err != nil {
			return fmt.Errorf("service: queued delta failed to apply: %w", err)
		}
		// Ground truth for the new claims travels inside the delta; the
		// truth vector grows in lockstep with the corpus so oracle
		// answers and precision stay defined.
		s.corpus.Truth = append(s.corpus.Truth, d.Truth...)
	}
	return m.persistTail(s, from)
}

// drainWithBudget drains the mailbox under a fresh worker grant; s.mu
// must be held. It serves the paths that persist a session outside the
// request flow (spill, export, shutdown), where acknowledged arrivals
// must be folded into the durable record rather than dropped with the
// live copy.
func (m *Manager) drainWithBudget(s *Session) error {
	s.boxMu.Lock()
	n := len(s.box)
	s.boxMu.Unlock()
	if n == 0 || s.core.Closed() {
		return nil
	}
	grant, release := m.budget.Acquire(m.budget.Total())
	defer release()
	s.core.SetWorkers(grant)
	return m.drainLocked(s)
}

// appliedAnswer memoises one applied answer for duplicate detection:
// the request, the transcript sequence it was applied at, and the
// response the client may never have received.
type appliedAnswer struct {
	req  AnswerRequest
	seq  int
	resp StateResponse
}

// duplicateOf reports whether req is a replay of the memoised request:
// identical in every field and pointing at the sequence the original
// was applied at. Only sequence-carrying requests participate — the
// declared sequence is the client's idempotency key; without it a
// resubmission keeps the historical conflict semantics, since content
// alone cannot distinguish a retry from a deliberate second submission.
func (la *appliedAnswer) duplicateOf(req AnswerRequest) bool {
	if la == nil || req.Seq == nil || *req.Seq != la.seq {
		return false
	}
	a, b := la.req, req
	return a.Claim == b.Claim && a.Verdict == b.Verdict && a.Skip == b.Skip && a.Oracle == b.Oracle
}

// transcriptReplay detects a sequence-carrying duplicate of an answer
// the transcript already holds — the migration and crash analogue of
// the lastApplied memo, which survives neither. A retry whose response
// was lost while the session moved to another backend (or through a
// SIGKILL) arrives with a now-stale sequence; rather than answering it
// with a spurious conflict, the transcript itself is consulted: if the
// elicitation recorded at the declared sequence is exactly this request
// (same claim, same applied verdict, same skip polarity) and nothing
// but auto-skipped prompts (OK=false records) followed it, the request
// was applied, and the session's current state is returned as the
// replayed response. The transcript stays single-writer: nothing is
// re-applied, so the selection trace is bit-identical to a run in which
// the response was never lost.
func (s *Session) transcriptReplay(req AnswerRequest) (StateResponse, bool) {
	if req.Seq == nil || *req.Seq < 0 || *req.Seq >= s.core.TranscriptLen() {
		return StateResponse{}, false
	}
	if req.Claim < 0 || req.Claim >= len(s.corpus.Truth) {
		return StateResponse{}, false
	}
	tail := s.core.TranscriptTail(*req.Seq)
	// Ingest arrivals may have committed between the client's read of
	// the sequence and the answer's apply; they are not elicitations, so
	// the match steps over them.
	for len(tail) > 0 && tail[0].Ingest != nil {
		tail = tail[1:]
	}
	if len(tail) == 0 {
		return StateResponse{}, false
	}
	// The Step that applied the original recorded, starting at the
	// declared sequence: an optional materialised skip of the then-top
	// claim (a different claim than the answered one), then the answer.
	j := 0
	if !req.Skip && len(tail) > 1 && !tail[0].OK && tail[0].Claim != req.Claim {
		j = 1
	}
	e := tail[j]
	if e.Claim != req.Claim || e.OK != !req.Skip {
		return StateResponse{}, false
	}
	want := req.Verdict
	if req.Oracle {
		want = s.corpus.Truth[req.Claim]
	}
	if e.OK && e.Verdict != want {
		return StateResponse{}, false
	}
	// Everything after the answer must be auto-skipped repair prompts
	// from the same Step's confirmation check or later ingest arrivals
	// (both OK=false records); a later accepted answer means the
	// declared sequence is genuinely stale, not a lost response.
	for _, r := range tail[j+1:] {
		if r.OK {
			return StateResponse{}, false
		}
	}
	if !s.budgetExhausted() {
		_ = s.ranking() // warm, trace-neutral: the duplicate's response carries the next expected claim
	}
	return s.state(false), true
}

// answer applies one validation. span receives each finished
// inference stage (the Gibbs resample Step and the what-if rescore
// that warms the next ranking) — observation only, after the work is
// done, so instrumentation cannot perturb the selection trace.
func (s *Session) answer(req AnswerRequest, span func(stage string, start time.Time)) (StateResponse, error) {
	// Idempotency: a replay of the most recently applied request (a
	// client retry after its response was lost in transit) returns the
	// stored response instead of double-submitting or conflicting.
	if s.lastApplied.duplicateOf(req) {
		return s.lastApplied.resp, nil
	}
	// The cross-process form: a duplicate arriving after a migration,
	// spill or crash, detected against the transcript itself.
	if resp, ok := s.transcriptReplay(req); ok {
		return resp, nil
	}
	if req.Seq != nil && *req.Seq != s.core.TranscriptLen() && !s.ingestOnlySince(*req.Seq) {
		return StateResponse{}, fmt.Errorf("%w: expected sequence %d, got %d",
			ErrSeq, s.core.TranscriptLen(), *req.Seq)
	}
	if s.budgetExhausted() {
		return StateResponse{}, ErrDone
	}
	rank := s.ranking()
	if len(rank) == 0 {
		return StateResponse{}, ErrDone
	}
	expected := rank[0]
	if req.Claim != expected {
		return StateResponse{}, fmt.Errorf("%w: expected claim %d, got %d", ErrWrongClaim, expected, req.Claim)
	}
	verdict := req.Verdict
	if req.Oracle {
		verdict = s.corpus.Truth[req.Claim]
	}

	// The duplicate-detection memo is keyed by the client's declared
	// sequence when one was sent: server-side ingestion may have pushed
	// the transcript past it (tolerated above), and a retry repeats the
	// declared value, not the position the answer actually committed at.
	seqAtApply := s.core.TranscriptLen()
	if req.Seq != nil {
		seqAtApply = *req.Seq
	}

	if req.Skip && !s.skipped && len(rank) > 1 {
		// First skip: the question moves to the second-best candidate
		// (§8.5); nothing reaches the model yet. With a single
		// candidate left there is no fallback — control falls through
		// and the loop accepts the model value, exactly like the
		// library path.
		s.skipped = true
		resp := s.state(false)
		s.lastApplied = &appliedAnswer{req: req, seq: seqAtApply, resp: resp}
		return resp, nil
	}

	// Assemble the scripted responses this Step will consume: the
	// recorded skip of the top claim (if any), then this answer.
	var script scriptUser
	if s.skipped {
		top, err := s.core.Pending(1)
		if err != nil {
			return StateResponse{}, err
		}
		script.q = append(script.q, core.Elicitation{Claim: top[0], OK: false})
	}
	script.q = append(script.q, core.Elicitation{Claim: req.Claim, Verdict: verdict, OK: !req.Skip})
	s.skipped = false
	stepStart := time.Now()
	s.core.Step(&script)
	if script.err != nil {
		return StateResponse{}, script.err
	}
	span(obs.StageResample, stepStart)
	// Warm the next iteration's ranking so the response can carry the
	// next expected claim and a follow-up GET /next is served from
	// cache; skipped when the session is finished anyway.
	if !s.budgetExhausted() {
		rescoreStart := time.Now()
		_ = s.ranking()
		span(obs.StageRescore, rescoreStart)
	}
	resp := s.state(false)
	s.lastApplied = &appliedAnswer{req: req, seq: seqAtApply, resp: resp}
	return resp, nil
}

// scriptUser answers the Alg. 1 loop from a fixed queue; elicitations
// beyond the script — repair prompts from a confirmation check — are
// skipped, since the ask/answer protocol cannot re-elicit synchronously.
type scriptUser struct {
	q   []core.Elicitation
	err error
}

func (u *scriptUser) Validate(c int) (bool, bool) {
	if len(u.q) == 0 {
		return false, false
	}
	head := u.q[0]
	if head.Claim != c {
		u.err = fmt.Errorf("service: internal script mismatch: loop asked claim %d, script holds %d", c, head.Claim)
		return false, false
	}
	u.q = u.q[1:]
	return head.Verdict, head.OK
}

// State reports the session's progress; withMarginals adds the full
// per-claim credibility marginals.
func (m *Manager) State(id string, withMarginals bool) (StateResponse, error) {
	var resp StateResponse
	err := m.withSession(context.Background(), id, false, func(s *Session) error {
		resp = s.state(withMarginals)
		return nil
	})
	return resp, err
}

func (s *Session) state(withMarginals bool) StateResponse {
	cs := s.core
	resp := StateResponse{
		ID:         s.id,
		Iterations: cs.Iterations(),
		Labeled:    cs.State.NumLabeled(),
		Claims:     s.corpus.DB.NumClaims,
		Effort:     cs.Effort(),
		Z:          cs.ZScore(),
		Precision:  cs.Precision(s.corpus.Truth),
		Expected:   -1,
		Seq:        cs.TranscriptLen(),
	}
	resp.Done = cs.State.NumLabeled() >= s.corpus.DB.NumClaims || s.budgetExhausted()
	if rank, ok := s.cachedRanking(); ok {
		resp.Done = resp.Done || len(rank) == 0
		if !resp.Done {
			resp.Expected = rank[0]
		}
	}
	if withMarginals {
		resp.Marginals = make([]float64, s.corpus.DB.NumClaims)
		for c := range resp.Marginals {
			resp.Marginals[c] = cs.State.P(c)
		}
	}
	return resp
}

// Snapshot exports a session's durable form.
func (m *Manager) Snapshot(id string) (SessionSnapshot, error) {
	var snap SessionSnapshot
	err := m.withSession(context.Background(), id, false, func(s *Session) error {
		cs := s.core.Snapshot()
		snap = SessionSnapshot{
			Version:      cs.Version,
			Config:       s.cfg,
			Elicitations: cs.Elicitations,
		}
		return nil
	})
	return snap, err
}
