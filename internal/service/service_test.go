package service

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"factcheck/internal/core"
	"factcheck/internal/sim"
	"factcheck/internal/synth"
)

// fastEM keeps test inference cheap; correctness here is about the
// serving protocol, and determinism holds at any budget.
func fastEM() *EMBudgets {
	return &EMBudgets{BurnIn: 4, Samples: 8, IncBurnIn: 2, IncSamples: 4, EMIters: 1, HypoBurn: 1, HypoSamples: 2}
}

func fastOpen(profile string, scale float64, seed int64) OpenRequest {
	return OpenRequest{
		Profile:       profile,
		Scale:         scale,
		Seed:          seed,
		CandidatePool: 4,
		EM:            fastEM(),
	}
}

func newTestServer(t *testing.T, cfg Config) (*Client, *Manager) {
	t.Helper()
	m := NewManager(cfg)
	srv := httptest.NewServer(NewServer(m).Handler())
	t.Cleanup(func() { srv.Close(); m.Shutdown() })
	return NewClient(srv.URL), m
}

// TestServedTraceBitIdenticalToLibrary is the fidelity acceptance test:
// a fixed-seed session driven over HTTP with oracle answers must produce
// a selection trace — and final state — bit-identical to the in-process
// core.Session path with the same corpus, options and simulated user.
func TestServedTraceBitIdenticalToLibrary(t *testing.T) {
	req := fastOpen("wiki", 0.1, 7)

	// In-process reference path.
	opts, err := buildOptions(req)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 1
	corpus, err := BuildCorpus(req)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.OpenSession(corpus.DB, opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle := &sim.Oracle{Truth: corpus.Truth}
	const steps = 6
	for i := 0; i < steps; i++ {
		ref.Step(oracle)
	}

	// Served path, same configuration, oracle-answered over HTTP.
	client, _ := newTestServer(t, Config{Workers: 2})
	info, err := client.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	next, err := client.Next(info.ID, 3)
	if err != nil {
		t.Fatal(err)
	}
	var st StateResponse
	for i := 0; i < steps; i++ {
		if next.Done {
			t.Fatalf("server session finished after %d steps", i)
		}
		st, err = client.Answer(info.ID, AnswerRequest{Claim: next.Candidates[0].Claim, Oracle: true})
		if err != nil {
			t.Fatal(err)
		}
		next, err = client.Next(info.ID, 3)
		if err != nil {
			t.Fatal(err)
		}
	}

	// Traces must agree claim-for-claim, verdict-for-verdict.
	snap, err := client.Snapshot(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	hist := ref.History()
	if len(snap.Elicitations) != len(hist) {
		t.Fatalf("trace lengths differ: served %d, library %d", len(snap.Elicitations), len(hist))
	}
	for i, e := range snap.Elicitations {
		if e.Claim != hist[i].Claim || e.Verdict != hist[i].Verdict {
			t.Fatalf("trace diverged at %d: served (%d,%v), library (%d,%v)",
				i, e.Claim, e.Verdict, hist[i].Claim, hist[i].Verdict)
		}
	}

	// Final state must agree bit-for-bit: z, precision, marginals.
	if st.Z != ref.ZScore() {
		t.Fatalf("z diverged: served %v, library %v", st.Z, ref.ZScore())
	}
	if st.Precision != ref.Precision(corpus.Truth) {
		t.Fatalf("precision diverged: served %v, library %v", st.Precision, ref.Precision(corpus.Truth))
	}
	full, err := client.State(info.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	for c, p := range full.Marginals {
		if p != ref.State.P(c) {
			t.Fatalf("marginal P(%d) diverged: served %v, library %v", c, p, ref.State.P(c))
		}
	}
	// And the served next-claim must be what the library would pick.
	if !next.Done {
		pend, err := ref.Pending(1)
		if err != nil {
			t.Fatal(err)
		}
		if next.Candidates[0].Claim != pend[0] {
			t.Fatalf("next claim diverged: served %d, library %d", next.Candidates[0].Claim, pend[0])
		}
	}
}

// TestSkipFollowsSection85 exercises the skip protocol: the first skip
// moves the question to the second-best candidate, answering it
// validates that claim, and a double skip accepts the model value.
func TestSkipFollowsSection85(t *testing.T) {
	client, _ := newTestServer(t, Config{})
	info, err := client.Open(fastOpen("wiki", 0.05, 3))
	if err != nil {
		t.Fatal(err)
	}
	next, err := client.Next(info.ID, 2)
	if err != nil {
		t.Fatal(err)
	}
	top, second := next.Candidates[0].Claim, next.Candidates[1].Claim

	st, err := client.Answer(info.ID, AnswerRequest{Claim: top, Skip: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Labeled != 0 {
		t.Fatalf("a first skip must not label anything, labeled=%d", st.Labeled)
	}
	if st.Expected != second {
		t.Fatalf("after skip the expected claim is %d, want second-best %d", st.Expected, second)
	}
	// The question moved: /next now leads with the second-best claim.
	next, err = client.Next(info.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if next.Candidates[0].Claim != second {
		t.Fatalf("next after skip returns %d, want %d", next.Candidates[0].Claim, second)
	}
	// Answering the moved question validates exactly that claim.
	st, err = client.Answer(info.ID, AnswerRequest{Claim: second, Verdict: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Labeled != 1 {
		t.Fatalf("labeled=%d after answering the fallback, want 1", st.Labeled)
	}

	// Double skip: the fallback claim is labelled with the model value.
	next, err = client.Next(info.ID, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = client.Answer(info.ID, AnswerRequest{Claim: next.Candidates[0].Claim, Skip: true}); err != nil {
		t.Fatal(err)
	}
	st, err = client.Answer(info.ID, AnswerRequest{Claim: next.Candidates[1].Claim, Skip: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Labeled != 2 {
		t.Fatalf("labeled=%d after double skip, want 2", st.Labeled)
	}
}

// TestSnapshotRestoreOverHTTP opens a session, works it, snapshots it,
// deletes it, restores it, and verifies the restored session continues
// exactly like an uninterrupted one.
func TestSnapshotRestoreOverHTTP(t *testing.T) {
	client, _ := newTestServer(t, Config{})
	req := fastOpen("wiki", 0.08, 13)

	// Uninterrupted reference: 5 oracle answers.
	refInfo, err := client.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	var refState StateResponse
	for i := 0; i < 5; i++ {
		n, err := client.Next(refInfo.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		refState, err = client.Answer(refInfo.ID, AnswerRequest{Claim: n.Candidates[0].Claim, Oracle: true})
		if err != nil {
			t.Fatal(err)
		}
	}
	refSnap, err := client.Snapshot(refInfo.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted path: 3 answers, snapshot, delete, restore, 2 more.
	info, err := client.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		n, err := client.Next(info.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err = client.Answer(info.ID, AnswerRequest{Claim: n.Candidates[0].Claim, Oracle: true}); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := client.Snapshot(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Delete(info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := client.State(info.ID, false); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("deleted session should 404, got %v", err)
	}

	restored, err := client.Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	var got StateResponse
	for i := 0; i < 2; i++ {
		n, err := client.Next(restored.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err = client.Answer(restored.ID, AnswerRequest{Claim: n.Candidates[0].Claim, Oracle: true})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got.Labeled != refState.Labeled || got.Precision != refState.Precision || got.Z != refState.Z {
		t.Fatalf("restored session diverged: got (labeled=%d p=%v z=%v), want (labeled=%d p=%v z=%v)",
			got.Labeled, got.Precision, got.Z, refState.Labeled, refState.Precision, refState.Z)
	}
	gotSnap, err := client.Snapshot(restored.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotSnap.Elicitations) != len(refSnap.Elicitations) {
		t.Fatalf("transcript lengths diverged: %d vs %d", len(gotSnap.Elicitations), len(refSnap.Elicitations))
	}
	for i := range gotSnap.Elicitations {
		if gotSnap.Elicitations[i] != refSnap.Elicitations[i] {
			t.Fatalf("transcripts diverged at %d: %+v vs %+v",
				i, gotSnap.Elicitations[i], refSnap.Elicitations[i])
		}
	}
}

func TestAPIErrorEdges(t *testing.T) {
	client, _ := newTestServer(t, Config{MaxSessions: 2})

	expectHTTP := func(err error, code string, what string) {
		t.Helper()
		if err == nil || !strings.Contains(err.Error(), code) {
			t.Fatalf("%s: want HTTP %s, got %v", what, code, err)
		}
	}

	// Unknown session id → 404 on every endpoint.
	_, err := client.Next("nope", 1)
	expectHTTP(err, "404", "next")
	_, err = client.State("nope", false)
	expectHTTP(err, "404", "state")
	_, err = client.Answer("nope", AnswerRequest{})
	expectHTTP(err, "404", "answer")
	_, err = client.Snapshot("nope")
	expectHTTP(err, "404", "snapshot")
	expectHTTP(client.Delete("nope"), "404", "delete")

	// Invalid configurations → 400.
	_, err = client.Open(OpenRequest{Profile: "nonesuch"})
	expectHTTP(err, "400", "bad profile")
	bad := fastOpen("wiki", 0.05, 1)
	bad.Strategy = "clairvoyance"
	_, err = client.Open(bad)
	expectHTTP(err, "400", "bad strategy")

	// A valid session, wrong-claim answers → 409.
	info, err := client.Open(fastOpen("wiki", 0.05, 2))
	if err != nil {
		t.Fatal(err)
	}
	next, err := client.Next(info.ID, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Answer(info.ID, AnswerRequest{Claim: next.Candidates[1].Claim, Verdict: true})
	expectHTTP(err, "409", "wrong claim")

	// Budget-exhausted session rejects further answers → 409.
	one := fastOpen("wiki", 0.05, 4)
	one.Budget = 1
	binfo, err := client.Open(one)
	if err != nil {
		t.Fatal(err)
	}
	n, err := client.Next(binfo.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.Answer(binfo.ID, AnswerRequest{Claim: n.Candidates[0].Claim, Oracle: true})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done {
		t.Fatal("budget-1 session should report done after one answer")
	}
	_, err = client.Answer(binfo.ID, AnswerRequest{Claim: n.Candidates[0].Claim, Oracle: true})
	expectHTTP(err, "409", "answer after done")
	n, err = client.Next(binfo.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Done {
		t.Fatal("next on a done session should report done")
	}

	// Session cap → 503 (two sessions already open).
	_, err = client.Open(fastOpen("wiki", 0.05, 5))
	expectHTTP(err, "503", "session cap")
}

func TestEvictIdleSpillsAndRevives(t *testing.T) {
	client, m := newTestServer(t, Config{})
	a, err := client.Open(fastOpen("wiki", 0.05, 6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := client.Open(fastOpen("wiki", 0.05, 7))
	if err != nil {
		t.Fatal(err)
	}
	next, err := client.Next(a.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	before, err := client.Answer(a.ID, AnswerRequest{Claim: next.Candidates[0].Claim, Oracle: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := m.EvictIdle(time.Hour); n != 0 {
		t.Fatalf("evicted %d fresh sessions", n)
	}
	// Age session a artificially, then evict: it leaves the live set
	// (and the cap) but stays serveable through the snapshot store.
	m.mu.Lock()
	m.sessions[a.ID].lastUsed = m.nowFn().Add(-2 * time.Hour)
	m.mu.Unlock()
	if n := m.EvictIdle(time.Hour); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	if got := m.Len(); got != 1 {
		t.Fatalf("live sessions after evict = %d, want 1", got)
	}
	if got := m.Spilled(); got != 1 {
		t.Fatalf("spilled sessions after evict = %d, want 1", got)
	}
	// The next request revives the spilled session with its state intact.
	after, err := client.State(a.ID, false)
	if err != nil {
		t.Fatalf("spilled session did not revive: %v", err)
	}
	if after.Labeled != before.Labeled || after.Z != before.Z || after.Precision != before.Precision {
		t.Fatalf("revived state diverged: got (labeled=%d z=%v p=%v), want (labeled=%d z=%v p=%v)",
			after.Labeled, after.Z, after.Precision, before.Labeled, before.Z, before.Precision)
	}
	if got := m.Len(); got != 2 {
		t.Fatalf("live sessions after revival = %d, want 2", got)
	}
	if _, err := client.State(b.ID, false); err != nil {
		t.Fatalf("fresh session evicted too: %v", err)
	}
}

// TestEvictedSessionsFreeTheCap verifies that spilled sessions stop
// counting against MaxSessions: with a cap of 1, evicting the only live
// session admits a new one, and reviving the first then hits the cap.
func TestEvictedSessionsFreeTheCap(t *testing.T) {
	client, m := newTestServer(t, Config{MaxSessions: 1})
	a, err := client.Open(fastOpen("wiki", 0.05, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Open(fastOpen("wiki", 0.05, 9)); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("cap of 1 admitted a second session: %v", err)
	}
	if n := m.EvictIdle(0); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	bID, err := client.Open(fastOpen("wiki", 0.05, 9))
	if err != nil {
		t.Fatalf("eviction did not free the session cap: %v", err)
	}
	// Reviving the spilled session would exceed the cap again.
	if _, err := client.State(a.ID, false); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("revival above the cap should 503, got %v", err)
	}
	if err := client.Delete(bID.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := client.State(a.ID, false); err != nil {
		t.Fatalf("revival below the cap failed: %v", err)
	}
}

func TestBudgetGrantsAndBlocks(t *testing.T) {
	b := NewBudget(4)
	g1, rel1 := b.Acquire(10)
	if g1 != 4 {
		t.Fatalf("first acquire granted %d, want all 4", g1)
	}
	// A second acquirer blocks until lanes free up.
	got := make(chan int)
	go func() {
		g, rel := b.Acquire(2)
		rel()
		got <- g
	}()
	select {
	case g := <-got:
		t.Fatalf("second acquire should block, granted %d", g)
	case <-time.After(20 * time.Millisecond):
	}
	rel1()
	rel1() // idempotent
	select {
	case g := <-got:
		if g < 1 || g > 2 {
			t.Fatalf("second acquire granted %d, want 1..2", g)
		}
	case <-time.After(time.Second):
		t.Fatal("second acquire never woke up")
	}
	if b.InUse() != 0 {
		t.Fatalf("lanes leaked: %d in use", b.InUse())
	}
}

func TestGenerateCorpusProfileValidation(t *testing.T) {
	if _, err := BuildCorpus(OpenRequest{Profile: "wiki", Scale: -1}); err == nil {
		t.Fatal("negative scale accepted")
	}
	if _, err := BuildCorpus(OpenRequest{Profile: ""}); err == nil {
		t.Fatal("empty profile accepted")
	}
	if _, err := BuildCorpus(OpenRequest{Profile: "snopes", Scale: 1e5}); err == nil {
		t.Fatal("oversized scale accepted — one request could exhaust server memory")
	}
	c, err := BuildCorpus(OpenRequest{Profile: "wiki", Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.DB.NumClaims == 0 {
		t.Fatal("empty corpus generated")
	}
	if c.Profile.Name != synth.Wikipedia.Scaled(0.05).Name {
		t.Fatalf("unexpected profile %q", c.Profile.Name)
	}
}

// TestServedCommunityTraceMatchesLibrary extends the trace-fidelity
// guarantee to the incremental serving path: a session over a
// multi-community (multi-component) corpus, running the default
// dirty-component re-ranking cadence, must match the in-process library
// path answer for answer.
func TestServedCommunityTraceMatchesLibrary(t *testing.T) {
	req := fastOpen("wiki", 0.4, 17)
	req.Communities = 4
	req.CandidatePool = 8

	opts, err := BuildOptions(req)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 1
	corpus, err := BuildCorpus(req)
	if err != nil {
		t.Fatal(err)
	}
	if corpus.DB.NumComponents() < 4 {
		t.Fatalf("community corpus has %d components, want >= 4", corpus.DB.NumComponents())
	}
	ref, err := core.OpenSession(corpus.DB, opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle := &sim.Oracle{Truth: corpus.Truth}
	const steps = 10
	for i := 0; i < steps; i++ {
		ref.Step(oracle)
	}
	if ref.GainCache().Hits() == 0 {
		t.Fatal("library reference never hit the gain cache — test is vacuous")
	}

	client, _ := newTestServer(t, Config{Workers: 2})
	info, err := client.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	next, err := client.Next(info.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		seq := next.Seq
		if _, err := client.Answer(info.ID, AnswerRequest{Claim: next.Candidates[0].Claim, Oracle: true, Seq: &seq}); err != nil {
			t.Fatal(err)
		}
		next, err = client.Next(info.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
	}
	snap, err := client.Snapshot(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	hist := ref.History()
	if len(snap.Elicitations) != len(hist) {
		t.Fatalf("trace lengths differ: served %d, library %d", len(snap.Elicitations), len(hist))
	}
	for i, e := range snap.Elicitations {
		if e.Claim != hist[i].Claim || e.Verdict != hist[i].Verdict {
			t.Fatalf("trace diverged at %d: served (%d,%v), library (%d,%v)",
				i, e.Claim, e.Verdict, hist[i].Claim, hist[i].Verdict)
		}
	}
}
