package service

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"
)

// flashCrowdP99 is the pinned overload scenario's SLO: an answer p99
// of 150ms, evaluated every 500ms over a 2s window. RecoverAfter is
// pinned far beyond the test horizon so the ladder's one-way walk is
// what the assertions see; recovery itself is covered deterministically
// by TestSLOControllerLadderWalk. Under the race detector the whole
// scenario dilates (see raceEnabled): the SLO, window, corpus and crowd
// scale so the same ladder walk happens on the ~15x slower machine.
const flashCrowdP99 = 0.15

// crowdSLO returns the scenario's effective SLO seconds.
func crowdSLO() float64 {
	if raceEnabled {
		return flashCrowdP99 * 20
	}
	return flashCrowdP99
}

// crowdSize returns the crowd's driver count.
func crowdSize() int {
	if raceEnabled {
		return 12
	}
	return 32
}

// crowdDeadline bounds the ladder walk.
func crowdDeadline() time.Duration {
	if raceEnabled {
		return 150 * time.Second
	}
	return 20 * time.Second
}

func flashCrowdConfig() Config {
	cfg := Config{
		Workers: 1,
		SLO: SLOConfig{
			P99:           crowdSLO(),
			WindowSeconds: 2,
			Slots:         4,
			MinSamples:    4,
			DegradeAfter:  2,
			ShedAfter:     2,
			RecoverAfter:  1_000_000,
		},
	}
	if raceEnabled {
		cfg.SLO.WindowSeconds = 16
	}
	return cfg
}

// flashCrowdOpen is the pinned per-session workload: a full-size wiki
// corpus with a wide candidate pool and heavy what-if budgets, so a
// full-scoring answer costs ~150ms on one worker lane while the
// degraded uncertainty ranking serves the same answer in ~1ms.
func flashCrowdOpen(seed int64) OpenRequest {
	scale := 1.0
	if raceEnabled {
		scale = 0.5
	}
	return OpenRequest{
		Profile:       "wiki",
		Scale:         scale,
		Seed:          seed,
		CandidatePool: 24,
		EM:            &EMBudgets{BurnIn: 4, Samples: 8, IncBurnIn: 30, IncSamples: 60, EMIters: 1, HypoBurn: 60, HypoSamples: 120},
	}
}

// as429 unwraps an admission-control rejection, returning the server's
// Retry-After hint.
func as429(err error) (time.Duration, bool) {
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests {
		return apiErr.RetryAfter, true
	}
	return 0, false
}

func isStatus(err error, status int) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == status
}

// crowdStats collects the fleet's client-side observations.
type crowdStats struct {
	mu          sync.Mutex
	answerAt    []time.Time
	answerLat   []time.Duration
	sheds       int
	missingHint int // 429s that arrived without a Retry-After hint
	failure     error
}

func (st *crowdStats) answer(at time.Time, lat time.Duration) {
	st.mu.Lock()
	st.answerAt = append(st.answerAt, at)
	st.answerLat = append(st.answerLat, lat)
	st.mu.Unlock()
}

func (st *crowdStats) shed(retryAfter time.Duration) {
	st.mu.Lock()
	st.sheds++
	if retryAfter <= 0 {
		st.missingHint++
	}
	st.mu.Unlock()
}

func (st *crowdStats) fail(err error) {
	st.mu.Lock()
	if st.failure == nil {
		st.failure = err
	}
	st.mu.Unlock()
}

// crowdDriver is one member of the flash crowd: open a session (riding
// out sheds), answer it to completion as fast as the server admits,
// repeat. Every 429 is counted and every successful answer timed.
func crowdDriver(client *Client, seed int64, stop <-chan struct{}, st *crowdStats) {
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	for !stopped() {
		info, err := client.Open(flashCrowdOpen(seed))
		if err != nil {
			if ra, ok := as429(err); ok {
				st.shed(ra)
				time.Sleep(10 * time.Millisecond)
				continue
			}
			st.fail(err)
			return
		}
		for !stopped() {
			next, err := client.Next(info.ID, 1)
			if err != nil {
				if ra, ok := as429(err); ok {
					st.shed(ra)
					time.Sleep(2 * time.Millisecond)
					continue
				}
				st.fail(err)
				return
			}
			if next.Done || len(next.Candidates) == 0 {
				break
			}
			seq := next.Seq
			t0 := time.Now()
			_, err = client.Answer(info.ID, AnswerRequest{Claim: next.Candidates[0].Claim, Oracle: true, Seq: &seq})
			if err != nil {
				if ra, ok := as429(err); ok {
					st.shed(ra)
					time.Sleep(2 * time.Millisecond)
					continue
				}
				if isStatus(err, http.StatusConflict) {
					break // session finished (or a shed retry raced a duplicate window)
				}
				st.fail(err)
				return
			}
			st.answer(time.Now(), time.Since(t0))
		}
	}
}

// p99Of computes the nearest-rank p99 of a latency sample.
func p99Of(lats []time.Duration) time.Duration {
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := (99*len(s) + 99) / 100 // ceil(0.99 n)
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// TestFlashCrowdAdmissionControl is the overload acceptance test: a
// fleet of zero-think-time drivers on a one-lane server whose full-scoring
// answer costs well over the SLO. With the controller on, the server
// must degrade (cheap uncertainty ranking, answers annotated and
// counted), then shed (429 + Retry-After on work it cannot admit) —
// and the answers it does admit must meet the SLO once degradation has
// kicked in.
func TestFlashCrowdAdmissionControl(t *testing.T) {
	m := NewManager(flashCrowdConfig())
	defer m.Shutdown()
	srv := httptest.NewServer(NewServer(m).Handler())
	defer srv.Close()

	drivers := crowdSize()
	stop := make(chan struct{})
	st := &crowdStats{}
	var wg sync.WaitGroup
	for i := 0; i < drivers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			client := NewClient(srv.URL)
			// A dedicated keep-alive transport per driver: the default
			// client's 2-idle-conns-per-host pool would throttle the crowd
			// on TCP churn instead of letting it hit the worker lane.
			tr := &http.Transport{MaxIdleConnsPerHost: 2}
			defer tr.CloseIdleConnections()
			client.HTTPClient = &http.Client{Transport: tr}
			crowdDriver(client, seed, stop, st)
		}(int64(100 + i))
	}

	// Watch the controller walk the ladder; keep the crowd running for a
	// second past the shed transition, hard-capped at 20s.
	var degradedAt, sheddingAt time.Time
	deadline := time.Now().Add(crowdDeadline())
	for time.Now().Before(deadline) {
		ctrl := m.Metrics(false).Controller
		if ctrl == nil {
			t.Fatal("controller missing from metrics")
		}
		mode := ParseSLOMode(ctrl.Mode)
		if mode >= ModeDegraded && degradedAt.IsZero() {
			degradedAt = time.Now()
		}
		if mode == ModeShedding && sheddingAt.IsZero() {
			sheddingAt = time.Now()
		}
		if !sheddingAt.IsZero() && time.Since(sheddingAt) > time.Second {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if st.failure != nil {
		t.Fatalf("crowd driver failed: %v", st.failure)
	}
	if degradedAt.IsZero() {
		t.Fatal("controller never degraded under the flash crowd")
	}
	if sheddingAt.IsZero() {
		t.Fatal("controller never shed under persisting saturation")
	}

	// Shed requests were rejected with 429 and always carried the
	// Retry-After hint.
	if st.sheds == 0 {
		t.Fatal("no client observed a 429")
	}
	if st.missingHint != 0 {
		t.Fatalf("%d of %d shed responses lacked a Retry-After hint", st.missingHint, st.sheds)
	}

	// The server's own book-keeping agrees: sheds and degraded answers
	// are counted in /metrics, and the mode stands at shedding.
	ctrl := m.Metrics(false).Controller
	if ParseSLOMode(ctrl.Mode) != ModeShedding {
		t.Fatalf("final mode = %q, want shedding", ctrl.Mode)
	}
	if ctrl.Sheds == 0 {
		t.Fatal("metrics count no sheds")
	}
	if ctrl.DegradedAnswers == 0 {
		t.Fatal("metrics count no degraded answers")
	}
	if ctrl.Breaches == 0 {
		t.Fatal("metrics count no breaches")
	}

	// Admitted answers meet the SLO once admission control is shedding
	// excess load: the client-side p99 of answers completed from shortly
	// after the shed transition stays under the target (requests still
	// queued at the transition are given 300ms to drain).
	cut := sheddingAt.Add(300 * time.Millisecond)
	var steady []time.Duration
	st.mu.Lock()
	for i, at := range st.answerAt {
		if at.After(cut) {
			steady = append(steady, st.answerLat[i])
		}
	}
	total := len(st.answerAt)
	st.mu.Unlock()
	if len(steady) < 10 {
		t.Fatalf("only %d answers (of %d) completed after shedding settled", len(steady), total)
	}
	if p99 := p99Of(steady); p99.Seconds() >= crowdSLO() {
		t.Fatalf("admitted answers' p99 = %v over %d samples, want < %v",
			p99, len(steady), time.Duration(crowdSLO()*float64(time.Second)))
	}

	// Degraded answers are distinguishable in the traces themselves: at
	// least one served session's snapshot records Degraded elicitations
	// alongside normal ones.
	client := NewClient(srv.URL)
	ids, err := client.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	var sawDegraded, sawNormal bool
	for i, id := range ids.Live {
		if i >= 50 || (sawDegraded && sawNormal) {
			break
		}
		snap, err := client.Snapshot(id)
		if err != nil {
			continue // a session deleted or exported mid-scan is fine
		}
		for _, e := range snap.Elicitations {
			if e.Degraded {
				sawDegraded = true
			} else {
				sawNormal = true
			}
		}
	}
	if !sawDegraded {
		t.Fatal("no session trace marks a degraded elicitation")
	}
	if !sawNormal {
		t.Fatal("no session trace holds a normal elicitation (crowd never ran full scoring?)")
	}
}

// TestFlashCrowdControllerOffBreachesSLO is the twin run: the identical
// workload with the controller disabled queues full-scoring answers
// behind the single lane and blows through the SLO — the regression the
// controller exists to prevent.
func TestFlashCrowdControllerOffBreachesSLO(t *testing.T) {
	cfg := flashCrowdConfig()
	cfg.SLO = SLOConfig{} // controller off
	m := NewManager(cfg)
	defer m.Shutdown()
	srv := httptest.NewServer(NewServer(m).Handler())
	defer srv.Close()

	// Each driver opens one session and submits a handful of answers;
	// with no degradation every answer pays full what-if scoring.
	const drivers, answersEach = 4, 3
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := 0; i < drivers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			client := NewClient(srv.URL)
			info, err := client.Open(flashCrowdOpen(seed))
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			for n := 0; n < answersEach; n++ {
				next, err := client.Next(info.ID, 1)
				if err != nil || next.Done || len(next.Candidates) == 0 {
					break
				}
				seq := next.Seq
				if _, err := client.Answer(info.ID, AnswerRequest{Claim: next.Candidates[0].Claim, Oracle: true, Seq: &seq}); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(int64(200 + i))
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatalf("driver failed: %v", firstErr)
	}

	metrics := m.Metrics(false)
	if metrics.Controller != nil {
		t.Fatal("controller reported in metrics despite being disabled")
	}
	if metrics.AnswersServed < drivers*answersEach {
		t.Fatalf("answers served = %d, want %d", metrics.AnswersServed, drivers*answersEach)
	}
	if metrics.AnswerLatency.P99 <= flashCrowdP99 {
		t.Fatalf("controller-off answer p99 = %.3fs — the scenario no longer breaches the %.2fs SLO",
			metrics.AnswerLatency.P99, flashCrowdP99)
	}
}
