package service

import (
	"testing"
)

// ladderConfig is the unit-test controller: 10s window over 5 slots
// (2s evaluation cadence), p99 SLO of 100ms, and short streak
// thresholds so the ladder is walkable in a handful of evaluations.
func ladderConfig() SLOConfig {
	return SLOConfig{
		P99:           0.1,
		WindowSeconds: 10,
		Slots:         5,
		MinSamples:    2,
		DegradeAfter:  2,
		ShedAfter:     2,
		RecoverAfter:  2,
	}
}

func TestSLOControllerDisabledByZeroConfig(t *testing.T) {
	if c := NewSLOController(SLOConfig{}); c != nil {
		t.Fatal("zero config must disable the controller")
	}
	if c := NewSLOController(SLOConfig{P99: -1}); c != nil {
		t.Fatal("negative SLO must disable the controller")
	}
	if !(SLOConfig{P99: 0.25}).Enabled() {
		t.Fatal("positive SLO must enable the controller")
	}
}

// TestSLOControllerLadderWalk drives the full ladder with explicit
// virtual timestamps: healthy → degraded on consecutive breached
// evaluations, degraded → shedding on persisting saturation, then
// recovery one rung at a time once the window calms.
func TestSLOControllerLadderWalk(t *testing.T) {
	c := NewSLOController(ladderConfig())
	if c == nil {
		t.Fatal("controller disabled")
	}

	// Healthy answers: stays normal no matter how many evaluations pass.
	for i := 0; i < 8; i++ {
		c.ObserveAnswer(float64(i), 0.01, 0)
	}
	if got := c.ModeAt(8, 0); got != ModeNormal {
		t.Fatalf("healthy mode = %v, want normal", got)
	}

	// Slow answers at t=10,11: the t=10 evaluation sees a breached
	// window (badStreak 1); t=12 evaluates again (badStreak 2 =
	// DegradeAfter) → degraded.
	c.ObserveAnswer(10, 0.5, 0)
	c.ObserveAnswer(11, 0.5, 0)
	if got := c.ModeAt(12, 0); got != ModeDegraded {
		t.Fatalf("after %d breached evals: mode = %v, want degraded", c.cfg.DegradeAfter, got)
	}
	st := c.Status(12, 0)
	if st.Breaches < 2 {
		t.Fatalf("breaches = %d, want >= 2", st.Breaches)
	}

	// Fresh contention (the waits counter grows) across ShedAfter
	// evaluations while degraded → shedding. (The window still holds the
	// slow answers, but the degraded → shedding edge is driven by
	// saturation, not p99.)
	if got := c.ModeAt(14, 1); got != ModeDegraded {
		t.Fatalf("one saturated eval: mode = %v, want still degraded", got)
	}
	if got := c.ModeAt(16, 2); got != ModeShedding {
		t.Fatalf("after %d saturated evals: mode = %v, want shedding", c.cfg.ShedAfter, got)
	}

	// Recovery is one rung at a time: the slow answers age out of the
	// 10s window by t=30, so evaluations see an empty window (no signal,
	// not a breach) and a calm budget (the waits counter stops growing).
	if got := c.ModeAt(30, 2); got != ModeShedding {
		t.Fatalf("one calm eval: mode = %v, want still shedding", got)
	}
	if got := c.ModeAt(32, 2); got != ModeDegraded {
		t.Fatalf("recovery from shedding: mode = %v, want degraded (one rung)", got)
	}
	if got := c.ModeAt(34, 2); got != ModeDegraded {
		t.Fatalf("one good eval after stepping down: mode = %v, want still degraded", got)
	}
	if got := c.ModeAt(36, 2); got != ModeNormal {
		t.Fatalf("full recovery: mode = %v, want normal", got)
	}
}

// TestSLOControllerEvaluationCadence pins the lazy evaluation contract:
// queries inside one cadence do not advance the ladder, so a burst of
// ModeAt calls cannot fast-forward streaks.
func TestSLOControllerEvaluationCadence(t *testing.T) {
	c := NewSLOController(ladderConfig())
	c.ObserveAnswer(0, 0.5, 0)
	c.ObserveAnswer(0.1, 0.5, 0)
	// Hammer queries within the 2s cadence: only the t=0 evaluation has
	// happened (one sample, under MinSamples — no breach yet), so the
	// mode must hold however many queries land.
	for i := 0; i < 10; i++ {
		if got := c.ModeAt(0.5+float64(i)/10, 0); got != ModeNormal {
			t.Fatalf("query %d inside one cadence flipped mode to %v", i, got)
		}
	}
	// Cadence 2 is the first evaluation with a full-signal window
	// (badStreak 1); cadence 3 reaches DegradeAfter.
	if got := c.ModeAt(2.5, 0); got != ModeNormal {
		t.Fatalf("second cadence: mode = %v, want still normal (one breach)", got)
	}
	if got := c.ModeAt(4.5, 0); got != ModeDegraded {
		t.Fatalf("third cadence: mode = %v, want degraded", got)
	}
}

// TestSLOControllerMinSamplesGate: a window too thin to trust is "no
// signal", never a breach — a single slow answer cannot degrade the
// server.
func TestSLOControllerMinSamplesGate(t *testing.T) {
	cfg := ladderConfig()
	cfg.MinSamples = 5
	c := NewSLOController(cfg)
	// One slow answer every 4s: the 10s window never holds more than 3
	// observations, always under MinSamples.
	for i := 0; i < 10; i++ {
		c.ObserveAnswer(float64(4*i), 10.0, 0)
	}
	if got := c.ModeAt(37, 0); got != ModeNormal {
		t.Fatalf("thin window degraded the server: mode = %v", got)
	}
	if st := c.Status(37, 0); st.Breaches != 0 {
		t.Fatalf("thin window counted %d breaches, want 0", st.Breaches)
	}
}

// TestSLOControllerStreaksResetOnTransition: evidence does not carry
// across rungs — after normal → degraded, the pre-transition saturation
// streak must not count toward shedding.
func TestSLOControllerStreaksResetOnTransition(t *testing.T) {
	c := NewSLOController(ladderConfig())
	// Breach with fresh contention each eval: badStreak and satStreak
	// both grow. The
	// t=0 eval is MinSamples-gated; t=2 and t=4 breach → degraded at
	// t=4, with satStreak already at 3 when the transition fires.
	c.ObserveAnswer(0, 0.5, 1)
	c.ObserveAnswer(2, 0.5, 2)
	if got := c.ModeAt(4, 3); got != ModeDegraded {
		t.Fatalf("mode = %v, want degraded", got)
	}
	// If satStreak had survived the transition, the very next saturated
	// evaluation would shed; the reset demands ShedAfter=2 fresh ones.
	if got := c.ModeAt(6, 4); got != ModeDegraded {
		t.Fatalf("pre-transition saturation evidence leaked: mode = %v", got)
	}
	if got := c.ModeAt(8, 5); got != ModeShedding {
		t.Fatalf("fresh saturated evals: mode = %v, want shedding", got)
	}
}

func TestSLOControllerStatusCounters(t *testing.T) {
	c := NewSLOController(ladderConfig())
	c.ObserveAnswer(0, 0.01, 0)
	c.RecordShed()
	c.RecordShed()
	c.RecordDegradedAnswer()
	st := c.Status(0.5, 0)
	if st.Mode != "normal" {
		t.Fatalf("mode = %q, want normal", st.Mode)
	}
	if st.SLOSeconds != 0.1 {
		t.Fatalf("sloSeconds = %v, want 0.1", st.SLOSeconds)
	}
	if st.Sheds != 2 || st.DegradedAnswers != 1 {
		t.Fatalf("counters = %+v, want sheds 2, degraded 1", st)
	}
	if st.WindowCount != 1 || st.WindowP99 <= 0 {
		t.Fatalf("window view = %+v, want count 1 and a positive p99", st)
	}
}

// TestControllerStatusMerge pins the fleet aggregation: worst mode
// wins, counters sum, the window p99 is the pessimistic max, the SLO
// echo is the tightest configured target.
func TestControllerStatusMerge(t *testing.T) {
	agg := ControllerStatus{Mode: "normal"}
	agg.Merge(ControllerStatus{Mode: "degraded", SLOSeconds: 0.25, WindowP99: 0.3, WindowCount: 5, Breaches: 2, Sheds: 1, DegradedAnswers: 4})
	agg.Merge(ControllerStatus{Mode: "normal", SLOSeconds: 0.1, WindowP99: 0.05, WindowCount: 7, Breaches: 0, Sheds: 0, DegradedAnswers: 0})
	if agg.Mode != "degraded" {
		t.Fatalf("merged mode = %q, want degraded (worst rung)", agg.Mode)
	}
	if agg.SLOSeconds != 0.1 {
		t.Fatalf("merged SLO = %v, want the tightest (0.1)", agg.SLOSeconds)
	}
	if agg.WindowP99 != 0.3 {
		t.Fatalf("merged windowP99 = %v, want the max (0.3)", agg.WindowP99)
	}
	if agg.WindowCount != 12 || agg.Breaches != 2 || agg.Sheds != 1 || agg.DegradedAnswers != 4 {
		t.Fatalf("merged counters = %+v", agg)
	}
	agg.Merge(ControllerStatus{Mode: "shedding"})
	if agg.Mode != "shedding" {
		t.Fatalf("merged mode = %q, want shedding", agg.Mode)
	}
	// Merging a worse rung never steps the aggregate back down.
	agg.Merge(ControllerStatus{Mode: "normal"})
	if agg.Mode != "shedding" {
		t.Fatalf("a healthy member stepped the aggregate down to %q", agg.Mode)
	}
}
