package service

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestExportImportMovesSession is the execution-layer half of a
// migration: export freezes a session on one manager, import rebuilds
// it bit-identically on another, and the exported copy answers
// ErrMigrated instead of quietly reviving its rollback record.
func TestExportImportMovesSession(t *testing.T) {
	src := NewManager(Config{Workers: 1})
	defer src.Shutdown()
	dst := NewManager(Config{Workers: 1})
	defer dst.Shutdown()

	req := fastOpen("wiki", 0.1, 11)
	info, err := src.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	id := info.ID
	for i := 0; i < 3; i++ {
		next, err := src.Next(id, 1)
		if err != nil {
			t.Fatal(err)
		}
		seq := next.Seq
		if _, err := src.Answer(id, AnswerRequest{Claim: next.Candidates[0].Claim, Oracle: true, Seq: &seq}); err != nil {
			t.Fatal(err)
		}
	}
	before, err := src.Snapshot(id)
	if err != nil {
		t.Fatal(err)
	}

	snap, err := src.Export(id)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if !reflect.DeepEqual(snap.Elicitations, before.Elicitations) {
		t.Fatal("export does not carry the full transcript")
	}
	// The source must refuse to serve the exported session — a stray
	// request reviving the rollback copy would fork the session.
	if _, err := src.State(id, false); !errors.Is(err, ErrMigrated) {
		t.Fatalf("state on the source after export: %v, want ErrMigrated", err)
	}
	// But the rollback record must still be there (not listed as owned,
	// not deleted).
	if _, ok, _ := src.Store().Load(id); !ok {
		t.Fatal("export deleted the rollback record")
	}
	if sl, _ := src.Sessions(); len(sl.Live)+len(sl.Stored) != 0 {
		t.Fatalf("exported session still listed as owned: %+v", sl)
	}

	if _, err := dst.Import(id, snap); err != nil {
		t.Fatalf("import: %v", err)
	}
	after, err := dst.Snapshot(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, before) {
		t.Fatalf("imported session diverged:\nbefore: %+v\nafter:  %+v", before, after)
	}
	// The moved session keeps serving.
	next, err := dst.Next(id, 1)
	if err != nil {
		t.Fatal(err)
	}
	seq := next.Seq
	if _, err := dst.Answer(id, AnswerRequest{Claim: next.Candidates[0].Claim, Oracle: true, Seq: &seq}); err != nil {
		t.Fatalf("answer after import: %v", err)
	}

	// Tombstoning the source clears the rollback copy and the mark.
	if err := src.Delete(id); err != nil {
		t.Fatalf("tombstone: %v", err)
	}
	if _, ok, _ := src.Store().Load(id); ok {
		t.Fatal("tombstone left the rollback record")
	}
}

// TestImportRollback: importing an exported snapshot back onto its
// source (the failed-migration path) clears the migrated mark and
// resumes service.
func TestImportRollback(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown()
	info, err := m.Open(fastOpen("wiki", 0.1, 12))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Export(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Import(info.ID, snap); err != nil {
		t.Fatalf("rollback import: %v", err)
	}
	if _, err := m.State(info.ID, false); err != nil {
		t.Fatalf("state after rollback: %v", err)
	}
}

// TestOpenAsCollisions: OpenAs pins ids (the shard router's placement
// contract) and refuses to stomp an existing session, live or stored.
func TestOpenAsCollisions(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown()
	req := fastOpen("wiki", 0.1, 13)
	if _, err := m.OpenAs("pinned-id", req); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OpenAs("pinned-id", req); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate OpenAs: %v, want ErrExists", err)
	}
	if _, err := m.OpenAs("bad id!", req); err == nil {
		t.Fatal("OpenAs accepted an invalid id")
	}
	if _, err := m.OpenAs("", req); err == nil {
		t.Fatal("OpenAs accepted an empty id")
	}
}

// TestAnswerReplayFromMigratedTranscript pins the transcript-based
// idempotency that survives a migration: the in-memory last-applied
// memo is gone on the new owner, so a retried answer must be
// recognized from the transcript itself.
func TestAnswerReplayFromMigratedTranscript(t *testing.T) {
	src := NewManager(Config{Workers: 1})
	defer src.Shutdown()
	dst := NewManager(Config{Workers: 1})
	defer dst.Shutdown()

	info, err := src.Open(fastOpen("wiki", 0.1, 14))
	if err != nil {
		t.Fatal(err)
	}
	id := info.ID
	next, err := src.Next(id, 1)
	if err != nil {
		t.Fatal(err)
	}
	seq := next.Seq
	req := AnswerRequest{Claim: next.Candidates[0].Claim, Oracle: true, Seq: &seq}
	applied, err := src.Answer(id, req)
	if err != nil {
		t.Fatal(err)
	}

	// Move the session: the new owner never saw the answer above.
	snap, err := src.Export(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Import(id, snap); err != nil {
		t.Fatal(err)
	}

	// The client retries the already-applied answer against the new
	// owner. Without transcript replay this would 409 (stale seq).
	st, err := dst.Answer(id, req)
	if err != nil {
		t.Fatalf("replayed answer on the new owner: %v", err)
	}
	if st.Labeled != applied.Labeled || st.Seq != applied.Seq {
		t.Fatalf("replay state = %+v, first application = %+v", st, applied)
	}
	after, _ := dst.Snapshot(id)
	if len(after.Elicitations) != len(snap.Elicitations) {
		t.Fatalf("replay grew the transcript: %d -> %d", len(snap.Elicitations), len(after.Elicitations))
	}
	// A genuinely stale retry (same seq, different claim) must still be
	// rejected — replay detection must not become an idempotency hole.
	bad := AnswerRequest{Claim: req.Claim + 1, Oracle: true, Seq: &seq}
	if _, err := dst.Answer(id, bad); !errors.Is(err, ErrSeq) && !errors.Is(err, ErrWrongClaim) {
		t.Fatalf("stale mismatched answer: %v, want a conflict", err)
	}
}

// TestClientHonorsRetryAfterOn503: the client must replay a 503 that
// carries Retry-After (drain/migration backpressure) for idempotent
// requests, and must not replay session-creating posts.
func TestClientHonorsRetryAfterOn503(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown()
	info, err := m.Open(fastOpen("wiki", 0.1, 15))
	if err != nil {
		t.Fatal(err)
	}
	inner := NewServer(m).Handler()

	var gate atomic.Int64 // requests answered 503 before serving
	var posts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			posts.Add(1)
		}
		if gate.Add(-1) >= 0 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"draining"}`))
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	client := NewClient(srv.URL)
	client.Retry = &RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 9}

	// Idempotent read: retried through the 503.
	gate.Store(1)
	if _, err := client.State(info.ID, false); err != nil {
		t.Fatalf("state through a Retry-After'd 503: %v", err)
	}
	if got := client.Retries(); got != 1 {
		t.Fatalf("Retries() = %d, want 1", got)
	}

	// Answer: idempotent via seq, retried through the 503.
	next, err := m.Next(info.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	seq := next.Seq
	gate.Store(1)
	if _, err := client.Answer(info.ID, AnswerRequest{Claim: next.Candidates[0].Claim, Oracle: true, Seq: &seq}); err != nil {
		t.Fatalf("answer through a Retry-After'd 503: %v", err)
	}

	// Open: NOT replayed — a duplicate open would strand a session.
	gate.Store(1)
	posts.Store(0)
	if _, err := client.Open(fastOpen("wiki", 0.1, 16)); err == nil {
		t.Fatal("open through a 503 unexpectedly succeeded")
	}
	if got := posts.Load(); got != 1 {
		t.Fatalf("open was sent %d times through a 503, want exactly 1", got)
	}

	// A 503 without Retry-After is a decision, not an invitation: no
	// replay even for reads.
	bare := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"full"}`))
	}))
	defer bare.Close()
	bc := NewClient(bare.URL)
	bc.Retry = &RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 9}
	if _, err := bc.Health(); err == nil {
		t.Fatal("bare 503 unexpectedly succeeded")
	}
	if got := bc.Retries(); got != 0 {
		t.Fatalf("bare 503 was retried %d times", got)
	}
}

// TestEndpointCountersInMetrics: the per-endpoint request/error
// counters and the backend id must surface in /metrics for the
// router's fleet attribution.
func TestEndpointCountersInMetrics(t *testing.T) {
	client, m := newTestServer(t, Config{Workers: 1, BackendID: "b1"})
	info, err := client.Open(fastOpen("wiki", 0.1, 18))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Next(info.ID, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := client.State(info.ID, false); err != nil {
		t.Fatal(err)
	}
	if _, err := client.State("no-such-session", false); err == nil {
		t.Fatal("want a 404")
	}
	_ = m

	mtr, err := client.Metrics(false)
	if err != nil {
		t.Fatal(err)
	}
	if mtr.BackendID != "b1" {
		t.Fatalf("backendId = %q, want b1", mtr.BackendID)
	}
	want := map[string]EndpointCounters{
		"open":  {Requests: 1},
		"next":  {Requests: 1},
		"state": {Requests: 2, Errors: 1},
	}
	for ep, c := range want {
		if got := mtr.Endpoints[ep]; got != c {
			t.Errorf("endpoints[%q] = %+v, want %+v", ep, got, c)
		}
	}
}

// TestExportImportOverHTTP drives a migration through the HTTP surface
// the router uses: OpenAs pins the id, Export/Import move the session
// between two servers, and Sessions reflects ownership on both sides.
func TestExportImportOverHTTP(t *testing.T) {
	c1, m1 := newTestServer(t, Config{Workers: 1})
	c2, _ := newTestServer(t, Config{Workers: 1})
	if NewServer(m1).Manager() != m1 {
		t.Fatal("Server.Manager does not return its manager")
	}

	info, err := c1.OpenAs("pinned-http-id", fastOpen("wiki", 0.1, 21))
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "pinned-http-id" {
		t.Fatalf("OpenAs returned id %q", info.ID)
	}
	next, err := c1.Next(info.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	seq := next.Seq
	if _, err := c1.Answer(info.ID, AnswerRequest{Claim: next.Candidates[0].Claim, Oracle: true, Seq: &seq}); err != nil {
		t.Fatal(err)
	}

	snap, err := c1.Export(info.ID)
	if err != nil {
		t.Fatalf("export over HTTP: %v", err)
	}
	if len(snap.Elicitations) != 1 {
		t.Fatalf("export carries %d elicitations, want 1", len(snap.Elicitations))
	}
	// The exported session answers 410 Gone, surfaced as a typed
	// APIError with the status preserved.
	var apiErr *APIError
	if _, err := c1.State(info.ID, false); !errors.As(err, &apiErr) || apiErr.Status != http.StatusGone {
		t.Fatalf("state on the source after export: %v, want HTTP 410", err)
	}
	if !strings.Contains(apiErr.Error(), "410") {
		t.Fatalf("APIError message hides the status: %q", apiErr.Error())
	}

	if _, err := c2.Import(info.ID, snap); err != nil {
		t.Fatalf("import over HTTP: %v", err)
	}
	sl, err := c2.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(sl.Live) != 1 || sl.Live[0] != info.ID {
		t.Fatalf("destination listing = %+v, want the imported session live", sl)
	}
	if sl, err := c1.Sessions(); err != nil || len(sl.Live)+len(sl.Stored) != 0 {
		t.Fatalf("source listing = %+v (%v), want empty", sl, err)
	}
	// A duplicate import is a conflict, not a silent overwrite.
	if _, err := c2.Import(info.ID, snap); !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict {
		t.Fatalf("duplicate import: %v, want HTTP 409", err)
	}
	// Export of a session this server never held is a 404.
	if _, err := c2.Export("no-such-session"); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("export of a missing session: %v, want HTTP 404", err)
	}
	// The moved session keeps serving over HTTP.
	if _, err := c2.Next(info.ID, 1); err != nil {
		t.Fatalf("next on the destination: %v", err)
	}
}

func TestRetryPolicyDefaultsAndAPIErrorFormat(t *testing.T) {
	p := (RetryPolicy{MaxAttempts: 3}).withDefaults()
	if p.BaseDelay != 50*time.Millisecond || p.MaxDelay != 2*time.Second || p.Seed != 1 {
		t.Fatalf("withDefaults left zeros: %+v", p)
	}
	full := (RetryPolicy{MaxAttempts: 2, BaseDelay: time.Second, MaxDelay: 3 * time.Second, Seed: 7}).withDefaults()
	if full.BaseDelay != time.Second || full.MaxDelay != 3*time.Second || full.Seed != 7 {
		t.Fatalf("withDefaults stomped explicit values: %+v", full)
	}

	withMsg := &APIError{Method: "GET", Path: "/x", Message: "broken", Status: 500}
	if got := withMsg.Error(); got != "GET /x: broken (HTTP 500)" {
		t.Fatalf("Error() = %q", got)
	}
	bare := &APIError{Method: "GET", Path: "/x", Status: 502}
	if got := bare.Error(); got != "GET /x: HTTP 502" {
		t.Fatalf("Error() = %q", got)
	}
}
