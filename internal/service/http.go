package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// API endpoints (all request/response bodies are JSON):
//
//	POST   /sessions                  open a session (OpenRequest), or
//	                                  restore one ({"restore": SessionSnapshot});
//	                                  an "id" field pins the session id
//	                                  (how a shard router keeps placement
//	                                  consistent with its hash ring)
//	GET    /sessions                  ids of every session this backend
//	                                  owns, split into live and stored
//	GET    /sessions/{id}/next?k=K    top-k guidance ranking (NextResponse)
//	POST   /sessions/{id}/answer      submit a verdict (AnswerRequest → StateResponse)
//	GET    /sessions/{id}/state       progress; ?marginals=1 adds marginals
//	GET    /sessions/{id}/snapshot    durable SessionSnapshot
//	GET    /sessions/{id}/export      freeze the session for migration and
//	                                  return its portable record
//	POST   /sessions/{id}/import      install an exported session under id
//	DELETE /sessions/{id}             close and remove the session
//	GET    /healthz                   liveness + load
//	GET    /metrics                   serving telemetry (Metrics);
//	                                  ?buckets=1 adds the raw latency buckets
//
// Errors are {"error": "..."} with 400 (bad request), 404 (unknown
// session), 409 (answer for the wrong claim or a stale sequence,
// answering a finished session, or an id collision), 410 (session was
// exported to another backend), 429 (shed by the overload controller's
// admission control; carries a Retry-After hint), 503 (session limit
// reached / shutting down; carries a Retry-After hint).

// Server exposes a Manager over HTTP.
type Server struct {
	m *Manager
}

// NewServer wraps a manager.
func NewServer(m *Manager) *Server { return &Server{m: m} }

// Manager returns the underlying session manager.
func (s *Server) Manager() *Manager { return s.m }

// Handler returns the API's routing handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", s.counted("open", s.create))
	mux.HandleFunc("GET /sessions", s.counted("list", s.list))
	mux.HandleFunc("GET /sessions/{id}/next", s.counted("next", s.next))
	mux.HandleFunc("POST /sessions/{id}/answer", s.counted("answer", s.answer))
	mux.HandleFunc("GET /sessions/{id}/state", s.counted("state", s.state))
	mux.HandleFunc("GET /sessions/{id}/snapshot", s.counted("snapshot", s.snapshot))
	mux.HandleFunc("GET /sessions/{id}/export", s.counted("export", s.export))
	mux.HandleFunc("POST /sessions/{id}/import", s.counted("import", s.importSession))
	mux.HandleFunc("DELETE /sessions/{id}", s.counted("delete", s.delete))
	mux.HandleFunc("GET /healthz", s.health)
	mux.HandleFunc("GET /metrics", s.metrics)
	return mux
}

// statusWriter captures the response status so counted can attribute
// errors per endpoint.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// counted wraps a handler with the per-endpoint request/error counters
// surfaced in /metrics — what a shard router's fleet view attributes
// load with. /healthz and /metrics themselves are uncounted: probe
// traffic would drown the serving signal.
func (s *Server) counted(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.m.RecordEndpoint(endpoint, sw.status >= 400)
	}
}

// createPayload is the POST /sessions body: either a plain OpenRequest
// or {"restore": snapshot}, optionally pinned to a caller-chosen id.
type createPayload struct {
	OpenRequest
	// ID pins the session id instead of drawing a random one. A shard
	// router sets it so the id it hashed onto the ring is the id the
	// owning backend serves under.
	ID      string           `json:"id,omitempty"`
	Restore *SessionSnapshot `json:"restore,omitempty"`
}

func (s *Server) create(w http.ResponseWriter, r *http.Request) {
	var body createPayload
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var (
		info SessionInfo
		err  error
	)
	switch {
	case body.Restore != nil && body.ID != "":
		info, err = s.m.Import(body.ID, *body.Restore)
	case body.Restore != nil:
		info, err = s.m.Restore(*body.Restore)
	case body.ID != "":
		info, err = s.m.OpenAs(body.ID, body.OpenRequest)
	default:
		info, err = s.m.Open(body.OpenRequest)
	}
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) list(w http.ResponseWriter, _ *http.Request) {
	ids, err := s.m.Sessions()
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ids)
}

func (s *Server) next(w http.ResponseWriter, r *http.Request) {
	k := 1
	if q := r.URL.Query().Get("k"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, errors.New("service: k must be a positive integer"))
			return
		}
		k = n
	}
	resp, err := s.m.Next(r.PathValue("id"), k)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) answer(w http.ResponseWriter, r *http.Request) {
	var req AnswerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.m.Answer(r.PathValue("id"), req)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) state(w http.ResponseWriter, r *http.Request) {
	withMarginals := r.URL.Query().Get("marginals") != ""
	resp, err := s.m.State(r.PathValue("id"), withMarginals)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) snapshot(w http.ResponseWriter, r *http.Request) {
	snap, err := s.m.Snapshot(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) export(w http.ResponseWriter, r *http.Request) {
	snap, err := s.m.Export(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) importSession(w http.ResponseWriter, r *http.Request) {
	var snap SessionSnapshot
	if err := json.NewDecoder(r.Body).Decode(&snap); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	info, err := s.m.Import(r.PathValue("id"), snap)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) delete(w http.ResponseWriter, r *http.Request) {
	if err := s.m.Delete(r.PathValue("id")); err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"deleted": true})
}

func (s *Server) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		Sessions:       s.m.Len(),
		Spilled:        s.m.Spilled(),
		WorkersTotal:   s.m.Budget().Total(),
		WorkersGranted: s.m.Budget().InUse(),
		Store:          s.m.StoreLocation(),
		ControllerMode: s.m.ControllerMode(),
	})
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	// ParseBool keeps the documented ?buckets=1 contract honest:
	// buckets=0/false (or garbage) stays digest-only.
	withBuckets, _ := strconv.ParseBool(r.URL.Query().Get("buckets"))
	writeJSON(w, http.StatusOK, s.m.Metrics(withBuckets))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeServiceError maps the service's sentinel errors to statuses.
// The 429s and 503s carry a Retry-After hint: overload and drain are
// transient, and a client that honors the hint rides out a shard
// migration or an admission-control shed.
func writeServiceError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrMigrated):
		writeError(w, http.StatusGone, err)
	case errors.Is(err, ErrWrongClaim), errors.Is(err, ErrDone),
		errors.Is(err, ErrSeq), errors.Is(err, ErrExists):
		writeError(w, http.StatusConflict, err)
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrFull), errors.Is(err, ErrShutdown):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrPersist):
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}
