package service

import (
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"strconv"
	"strings"

	"factcheck/internal/obs"
)

// API endpoints (all request/response bodies are JSON). The canonical
// surface is versioned under /v1; every route is also served at its
// original unversioned path as a deprecated alias (see Deprecation
// headers below) so pre-/v1 clients keep working:
//
//	POST   /v1/sessions                  open a session (OpenRequest), or
//	                                     restore one ({"restore": SessionSnapshot});
//	                                     an "id" field pins the session id
//	                                     (how a shard router keeps placement
//	                                     consistent with its hash ring)
//	GET    /v1/sessions                  ids of every session this backend
//	                                     owns, split into live and stored
//	GET    /v1/sessions/{id}/next?k=K    top-k guidance ranking (NextResponse)
//	POST   /v1/sessions/{id}/answer      submit a verdict (AnswerRequest → StateResponse)
//	POST   /v1/sessions/{id}/claims      stream a corpus delta into the live
//	                                     session (IngestRequest → IngestResponse);
//	                                     200 = applied, 202 = queued in the
//	                                     session's mailbox
//	POST   /v1/sessions/{id}/sources     same, restricted to deltas that
//	                                     introduce no claims (new sources
//	                                     and evidence on existing claims)
//	GET    /v1/sessions/{id}/trace       the session's recent request spans
//	                                     (TraceResponse: the bounded ring of
//	                                     lane/drain/resample/rescore/WAL stages)
//	GET    /v1/sessions/{id}/state       progress; ?marginals=1 adds marginals
//	GET    /v1/sessions/{id}/snapshot    durable SessionSnapshot
//	GET    /v1/sessions/{id}/export      freeze the session for migration and
//	                                     return its portable record
//	POST   /v1/sessions/{id}/import      install an exported session under id
//	DELETE /v1/sessions/{id}             close and remove the session
//	GET    /v1/healthz                   liveness + load
//	GET    /v1/metrics                   serving telemetry (Metrics);
//	                                     ?buckets=1 adds the raw latency buckets;
//	                                     ?format=prometheus serves the Prometheus
//	                                     text exposition instead
//
// Legacy aliases (the same paths without the /v1 prefix) serve
// identically but stamp "Deprecation: true" and a successor-version
// Link header on every response. The ingest endpoints (/claims,
// /sources) and the trace endpoint are /v1-only: they postdate the
// versioned surface.
//
// Every non-2xx response carries the JSON error envelope
//
//	{"error": {"code": "...", "message": "...", "retryAfter": n}}
//
// with a stable machine-readable code (the Code* constants) and, on
// 429/503, a retryAfter hint in seconds mirrored in the Retry-After
// header. Statuses: 400 bad_request, 404 session_not_found, 409
// wrong_claim / stale_seq / session_done / session_exists, 410
// session_migrated, 429 shedding / mailbox_full, 500 persist_failure,
// 503 session_limit / shutting_down.

// Stable error codes carried by the error envelope. Clients dispatch
// on these, never on message text.
const (
	CodeBadRequest     = "bad_request"
	CodeNotFound       = "session_not_found"
	CodeMigrated       = "session_migrated"
	CodeWrongClaim     = "wrong_claim"
	CodeStaleSeq       = "stale_seq"
	CodeDone           = "session_done"
	CodeExists         = "session_exists"
	CodeShedding       = "shedding"
	CodeMailboxFull    = "mailbox_full"
	CodeSessionLimit   = "session_limit"
	CodeShuttingDown   = "shutting_down"
	CodePersistFailure = "persist_failure"

	// Router-originated codes (the shard router speaks the same
	// envelope): a session mid-migration, an empty backend ring, and an
	// unreachable backend.
	CodeMigrating  = "session_migrating"
	CodeNoBackends = "no_backends"
	CodeBadGateway = "bad_gateway"
)

// ErrorInfo is the payload of the API's JSON error envelope.
type ErrorInfo struct {
	// Code is the stable machine-readable error code (Code*).
	Code string `json:"code"`
	// Message is the human-readable detail; not a stable surface.
	Message string `json:"message"`
	// RetryAfter is the server's backoff hint in seconds (0 = none),
	// mirrored in the Retry-After header.
	RetryAfter int `json:"retryAfter,omitempty"`
	// TraceID echoes the request's trace id (the X-Factcheck-Trace
	// header, minted by the router or this server when the client sent
	// none), so a refused request is joinable with server logs and the
	// session's span ring.
	TraceID string `json:"traceId,omitempty"`
}

// errorBody is the envelope: {"error": {...}}.
type errorBody struct {
	Error ErrorInfo `json:"error"`
}

// Server exposes a Manager over HTTP.
type Server struct {
	m   *Manager
	log *slog.Logger
}

// NewServer wraps a manager.
func NewServer(m *Manager) *Server { return &Server{m: m, log: obs.Discard()} }

// SetLogger installs a structured logger for the API layer: every
// 4xx/5xx response is logged at warn with its envelope code, trace id,
// method, path and session id, and every served request at debug. nil
// restores the silent default.
func (s *Server) SetLogger(l *slog.Logger) {
	if l == nil {
		l = obs.Discard()
	}
	s.log = l
}

// Manager returns the underlying session manager.
func (s *Server) Manager() *Manager { return s.m }

// Handler returns the API's routing handler: the /v1 surface plus the
// deprecated unversioned aliases.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.route(mux, "POST /sessions", "open", s.create)
	s.route(mux, "GET /sessions", "list", s.list)
	s.route(mux, "GET /sessions/{id}/next", "next", s.next)
	s.route(mux, "POST /sessions/{id}/answer", "answer", s.answer)
	s.route(mux, "GET /sessions/{id}/state", "state", s.state)
	s.route(mux, "GET /sessions/{id}/snapshot", "snapshot", s.snapshot)
	s.route(mux, "GET /sessions/{id}/export", "export", s.export)
	s.route(mux, "POST /sessions/{id}/import", "import", s.importSession)
	s.route(mux, "DELETE /sessions/{id}", "delete", s.delete)
	// The ingest and trace endpoints postdate the versioned surface; no
	// legacy alias exists for them.
	mux.HandleFunc("POST /v1/sessions/{id}/claims", s.counted("ingest", s.ingestClaims))
	mux.HandleFunc("POST /v1/sessions/{id}/sources", s.counted("ingest", s.ingestSources))
	mux.HandleFunc("GET /v1/sessions/{id}/trace", s.counted("trace", s.trace))
	mux.HandleFunc("GET /v1/healthz", s.health)
	mux.HandleFunc("GET /v1/metrics", s.metrics)
	mux.HandleFunc("GET /healthz", deprecated(s.health))
	mux.HandleFunc("GET /metrics", deprecated(s.metrics))
	return mux
}

// route registers a handler at its canonical /v1 path and at the
// unversioned legacy alias, which serves identically but stamps the
// deprecation headers.
func (s *Server) route(mux *http.ServeMux, pattern, endpoint string, h http.HandlerFunc) {
	method, path, _ := strings.Cut(pattern, " ")
	mux.HandleFunc(method+" /v1"+path, s.counted(endpoint, h))
	mux.HandleFunc(pattern, s.counted(endpoint, deprecated(h)))
}

// deprecated wraps a legacy unversioned handler: identical behavior to
// its /v1 successor, plus a "Deprecation: true" header (RFC 8594
// style) and a successor-version Link so clients can discover the
// migration target mechanically.
func deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "</v1"+r.URL.Path+`>; rel="successor-version"`)
		h(w, r)
	}
}

// statusWriter captures the response status so counted can attribute
// errors per endpoint, and the envelope code WriteError stamped so the
// error log line carries it.
type statusWriter struct {
	http.ResponseWriter
	status  int
	errCode string
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// SetErrorCode records the envelope's machine-readable error code;
// WriteError calls it through an interface assertion so the same
// envelope writer serves wrapped and bare ResponseWriters (the router
// has its own wrapper satisfying the same method).
func (w *statusWriter) SetErrorCode(code string) { w.errCode = code }

// counted wraps a handler with the per-endpoint request/error counters
// surfaced in /metrics — what a shard router's fleet view attributes
// load with — plus the request-trace plumbing: a valid inbound
// X-Factcheck-Trace id (minted upstream by the router) is adopted,
// anything else replaced with a fresh id; the id is echoed on the
// response, carried in the request context for span recording, and
// stamped on the structured log line every 4xx/5xx (warn) and served
// request (debug) emits. /healthz and /metrics themselves are
// uncounted: probe traffic would drown the serving signal.
func (s *Server) counted(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		trace := r.Header.Get(obs.TraceHeader)
		if !obs.ValidTraceID(trace) {
			trace = obs.NewTraceID()
		}
		w.Header().Set(obs.TraceHeader, trace)
		r = r.WithContext(obs.WithTrace(r.Context(), trace))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.m.RecordEndpoint(endpoint, sw.status >= 400)
		level := slog.LevelDebug
		msg := "request served"
		if sw.status >= 400 {
			level = slog.LevelWarn
			msg = "request refused"
		}
		s.log.LogAttrs(r.Context(), level, msg,
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("endpoint", endpoint),
			slog.Int("status", sw.status),
			slog.String("code", sw.errCode),
			slog.String("trace", trace),
			slog.String("session", r.PathValue("id")),
			slog.String("backend", s.m.cfg.BackendID),
		)
	}
}

// createPayload is the POST /sessions body: either a plain OpenRequest
// or {"restore": snapshot}, optionally pinned to a caller-chosen id.
type createPayload struct {
	OpenRequest
	// ID pins the session id instead of drawing a random one. A shard
	// router sets it so the id it hashed onto the ring is the id the
	// owning backend serves under.
	ID      string           `json:"id,omitempty"`
	Restore *SessionSnapshot `json:"restore,omitempty"`
}

func (s *Server) create(w http.ResponseWriter, r *http.Request) {
	var body createPayload
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeBadRequest(w, err)
		return
	}
	var (
		info SessionInfo
		err  error
	)
	switch {
	case body.Restore != nil && body.ID != "":
		info, err = s.m.Import(body.ID, *body.Restore)
	case body.Restore != nil:
		info, err = s.m.Restore(*body.Restore)
	case body.ID != "":
		info, err = s.m.OpenAs(body.ID, body.OpenRequest)
	default:
		info, err = s.m.Open(body.OpenRequest)
	}
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) list(w http.ResponseWriter, _ *http.Request) {
	ids, err := s.m.Sessions()
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ids)
}

func (s *Server) next(w http.ResponseWriter, r *http.Request) {
	k := 1
	if q := r.URL.Query().Get("k"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			writeBadRequest(w, errors.New("service: k must be a positive integer"))
			return
		}
		k = n
	}
	resp, err := s.m.NextCtx(r.Context(), r.PathValue("id"), k)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) answer(w http.ResponseWriter, r *http.Request) {
	var req AnswerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeBadRequest(w, err)
		return
	}
	resp, err := s.m.AnswerCtx(r.Context(), r.PathValue("id"), req)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) ingestClaims(w http.ResponseWriter, r *http.Request) {
	s.ingest(w, r, false)
}

func (s *Server) ingestSources(w http.ResponseWriter, r *http.Request) {
	s.ingest(w, r, true)
}

// ingest serves both streaming endpoints; sourcesOnly is the /sources
// restriction (no new claims — the endpoint exists so producers that
// only ever contribute sources and evidence get a surface that rejects
// claim-bearing payloads instead of quietly accepting them).
func (s *Server) ingest(w http.ResponseWriter, r *http.Request, sourcesOnly bool) {
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeBadRequest(w, err)
		return
	}
	if sourcesOnly && req.Delta.NewClaims != 0 {
		writeBadRequest(w, errors.New("service: the sources endpoint cannot introduce claims; POST .../claims"))
		return
	}
	resp, err := s.m.IngestCtx(r.Context(), r.PathValue("id"), req)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	status := http.StatusOK
	if !resp.Applied {
		// Queued, not yet in the transcript: 202 tells the producer the
		// delta was accepted but its effects are not observable yet.
		status = http.StatusAccepted
	}
	writeJSON(w, status, resp)
}

// trace serves the session's span ring (GET /v1/sessions/{id}/trace):
// the last spanRingCap spans, oldest first, each carrying the trace id
// of the request that produced it. Live sessions only — a diagnostic
// read neither revives a spilled session nor waits behind inference.
func (s *Server) trace(w http.ResponseWriter, r *http.Request) {
	resp, err := s.m.Trace(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) state(w http.ResponseWriter, r *http.Request) {
	withMarginals := r.URL.Query().Get("marginals") != ""
	resp, err := s.m.State(r.PathValue("id"), withMarginals)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) snapshot(w http.ResponseWriter, r *http.Request) {
	snap, err := s.m.Snapshot(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) export(w http.ResponseWriter, r *http.Request) {
	snap, err := s.m.Export(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) importSession(w http.ResponseWriter, r *http.Request) {
	var snap SessionSnapshot
	if err := json.NewDecoder(r.Body).Decode(&snap); err != nil {
		writeBadRequest(w, err)
		return
	}
	info, err := s.m.Import(r.PathValue("id"), snap)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) delete(w http.ResponseWriter, r *http.Request) {
	if err := s.m.Delete(r.PathValue("id")); err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"deleted": true})
}

func (s *Server) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		Sessions:       s.m.Len(),
		Spilled:        s.m.Spilled(),
		WorkersTotal:   s.m.Budget().Total(),
		WorkersGranted: s.m.Budget().InUse(),
		Store:          s.m.StoreLocation(),
		ControllerMode: s.m.ControllerMode(),
	})
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	// ?format=prometheus serves the text exposition a standard scraper
	// understands; the default stays the JSON blob the loadtest and the
	// fleet aggregation scrape.
	if r.URL.Query().Get("format") == "prometheus" {
		WritePrometheus(w, s.m.Metrics(true))
		return
	}
	// ParseBool keeps the documented ?buckets=1 contract honest:
	// buckets=0/false (or garbage) stays digest-only.
	withBuckets, _ := strconv.ParseBool(r.URL.Query().Get("buckets"))
	writeJSON(w, http.StatusOK, s.m.Metrics(withBuckets))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError writes the API's JSON error envelope. retryAfter (seconds,
// 0 = none) is mirrored in the Retry-After header so both envelope-
// aware clients and HTTP-generic ones see the same hint. Exported for
// the shard router, which speaks the identical envelope.
func WriteError(w http.ResponseWriter, status int, code, message string, retryAfter int) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	// The trace id was stamped on the response header by the request
	// middleware (server or router); echoing it in the envelope makes a
	// client-side failure joinable with server logs without header
	// spelunking. SetErrorCode hands the code to the wrapping status
	// writer so the error log line carries it.
	if sw, ok := w.(interface{ SetErrorCode(string) }); ok {
		sw.SetErrorCode(code)
	}
	writeJSON(w, status, errorBody{Error: ErrorInfo{
		Code:       code,
		Message:    message,
		RetryAfter: retryAfter,
		TraceID:    w.Header().Get(obs.TraceHeader),
	}})
}

func writeBadRequest(w http.ResponseWriter, err error) {
	WriteError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
}

// writeServiceError maps the service's sentinel errors to statuses and
// envelope codes. The 429s and 503s carry a Retry-After hint: overload,
// mailbox backpressure and drain are transient, and a client that
// honors the hint rides out a shard migration, a burst of arrivals or
// an admission-control shed.
func writeServiceError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		WriteError(w, http.StatusNotFound, CodeNotFound, err.Error(), 0)
	case errors.Is(err, ErrMigrated):
		WriteError(w, http.StatusGone, CodeMigrated, err.Error(), 0)
	case errors.Is(err, ErrWrongClaim):
		WriteError(w, http.StatusConflict, CodeWrongClaim, err.Error(), 0)
	case errors.Is(err, ErrSeq):
		WriteError(w, http.StatusConflict, CodeStaleSeq, err.Error(), 0)
	case errors.Is(err, ErrDone):
		WriteError(w, http.StatusConflict, CodeDone, err.Error(), 0)
	case errors.Is(err, ErrExists):
		WriteError(w, http.StatusConflict, CodeExists, err.Error(), 0)
	case errors.Is(err, ErrOverloaded):
		WriteError(w, http.StatusTooManyRequests, CodeShedding, err.Error(), 1)
	case errors.Is(err, ErrMailboxFull):
		WriteError(w, http.StatusTooManyRequests, CodeMailboxFull, err.Error(), 1)
	case errors.Is(err, ErrFull):
		WriteError(w, http.StatusServiceUnavailable, CodeSessionLimit, err.Error(), 1)
	case errors.Is(err, ErrShutdown):
		WriteError(w, http.StatusServiceUnavailable, CodeShuttingDown, err.Error(), 1)
	case errors.Is(err, ErrPersist):
		WriteError(w, http.StatusInternalServerError, CodePersistFailure, err.Error(), 0)
	default:
		writeBadRequest(w, err)
	}
}
