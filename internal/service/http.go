package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// API endpoints (all request/response bodies are JSON):
//
//	POST   /sessions                  open a session (OpenRequest), or
//	                                  restore one ({"restore": SessionSnapshot})
//	GET    /sessions/{id}/next?k=K    top-k guidance ranking (NextResponse)
//	POST   /sessions/{id}/answer      submit a verdict (AnswerRequest → StateResponse)
//	GET    /sessions/{id}/state       progress; ?marginals=1 adds marginals
//	GET    /sessions/{id}/snapshot    durable SessionSnapshot
//	DELETE /sessions/{id}             close and remove the session
//	GET    /healthz                   liveness + load
//	GET    /metrics                   serving telemetry (Metrics);
//	                                  ?buckets=1 adds the raw latency buckets
//
// Errors are {"error": "..."} with 400 (bad request), 404 (unknown
// session), 409 (answer for the wrong claim, or answering a finished
// session), 503 (session limit reached / shutting down).

// Server exposes a Manager over HTTP.
type Server struct {
	m *Manager
}

// NewServer wraps a manager.
func NewServer(m *Manager) *Server { return &Server{m: m} }

// Manager returns the underlying session manager.
func (s *Server) Manager() *Manager { return s.m }

// Handler returns the API's routing handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", s.create)
	mux.HandleFunc("GET /sessions/{id}/next", s.next)
	mux.HandleFunc("POST /sessions/{id}/answer", s.answer)
	mux.HandleFunc("GET /sessions/{id}/state", s.state)
	mux.HandleFunc("GET /sessions/{id}/snapshot", s.snapshot)
	mux.HandleFunc("DELETE /sessions/{id}", s.delete)
	mux.HandleFunc("GET /healthz", s.health)
	mux.HandleFunc("GET /metrics", s.metrics)
	return mux
}

// createPayload is the POST /sessions body: either a plain OpenRequest
// or {"restore": snapshot}.
type createPayload struct {
	OpenRequest
	Restore *SessionSnapshot `json:"restore,omitempty"`
}

func (s *Server) create(w http.ResponseWriter, r *http.Request) {
	var body createPayload
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var (
		info SessionInfo
		err  error
	)
	if body.Restore != nil {
		info, err = s.m.Restore(*body.Restore)
	} else {
		info, err = s.m.Open(body.OpenRequest)
	}
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) next(w http.ResponseWriter, r *http.Request) {
	k := 1
	if q := r.URL.Query().Get("k"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, errors.New("service: k must be a positive integer"))
			return
		}
		k = n
	}
	resp, err := s.m.Next(r.PathValue("id"), k)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) answer(w http.ResponseWriter, r *http.Request) {
	var req AnswerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.m.Answer(r.PathValue("id"), req)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) state(w http.ResponseWriter, r *http.Request) {
	withMarginals := r.URL.Query().Get("marginals") != ""
	resp, err := s.m.State(r.PathValue("id"), withMarginals)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) snapshot(w http.ResponseWriter, r *http.Request) {
	snap, err := s.m.Snapshot(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) delete(w http.ResponseWriter, r *http.Request) {
	if err := s.m.Delete(r.PathValue("id")); err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"deleted": true})
}

func (s *Server) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		Sessions:       s.m.Len(),
		Spilled:        s.m.Spilled(),
		WorkersTotal:   s.m.Budget().Total(),
		WorkersGranted: s.m.Budget().InUse(),
	})
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	// ParseBool keeps the documented ?buckets=1 contract honest:
	// buckets=0/false (or garbage) stays digest-only.
	withBuckets, _ := strconv.ParseBool(r.URL.Query().Get("buckets"))
	writeJSON(w, http.StatusOK, s.m.Metrics(withBuckets))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeServiceError maps the service's sentinel errors to statuses.
func writeServiceError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrWrongClaim), errors.Is(err, ErrDone), errors.Is(err, ErrSeq):
		writeError(w, http.StatusConflict, err)
	case errors.Is(err, ErrFull), errors.Is(err, ErrShutdown):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrPersist):
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}
