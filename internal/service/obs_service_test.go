package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"factcheck/internal/obs"
)

// TestTraceNeutralityProperty is the observability acceptance property:
// instrumentation must be passive. Two managers run the same fixed-seed
// session — one driven through the plain API, one through the ctx
// variants with a trace id on every request (spans recorded, trace ids
// threaded) — and their selection traces, transcripts, and posterior
// states must be bit-identical. Runs under `make race` so the span and
// stage recording is also exercised for data races.
func TestTraceNeutralityProperty(t *testing.T) {
	for _, seed := range []int64{5, 19, 53} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			plain := NewManager(Config{Workers: 2})
			defer plain.Shutdown()
			traced := NewManager(Config{Workers: 2})
			defer traced.Shutdown()

			req := fastOpen("wiki", 0.08, seed)
			pi, err := plain.Open(req)
			if err != nil {
				t.Fatal(err)
			}
			ti, err := traced.Open(req)
			if err != nil {
				t.Fatal(err)
			}
			const traceID = "neutrality-trace"
			ctx := obs.WithTrace(context.Background(), traceID)

			const steps = 5
			for i := 0; i < steps; i++ {
				pn, err := plain.Next(pi.ID, 2)
				if err != nil {
					t.Fatal(err)
				}
				tn, err := traced.NextCtx(ctx, ti.ID, 2)
				if err != nil {
					t.Fatal(err)
				}
				if pn.Done != tn.Done {
					t.Fatalf("step %d: done diverged: plain %v, traced %v", i, pn.Done, tn.Done)
				}
				if pn.Done {
					break
				}
				if pn.Candidates[0].Claim != tn.Candidates[0].Claim {
					t.Fatalf("step %d: selection diverged: plain %d, traced %d",
						i, pn.Candidates[0].Claim, tn.Candidates[0].Claim)
				}
				if _, err := plain.Answer(pi.ID, AnswerRequest{Claim: pn.Candidates[0].Claim, Oracle: true}); err != nil {
					t.Fatal(err)
				}
				if _, err := traced.AnswerCtx(ctx, ti.ID, AnswerRequest{Claim: tn.Candidates[0].Claim, Oracle: true}); err != nil {
					t.Fatal(err)
				}
			}

			// Transcripts byte-identical.
			ps, err := plain.Snapshot(pi.ID)
			if err != nil {
				t.Fatal(err)
			}
			ts, err := traced.Snapshot(ti.ID)
			if err != nil {
				t.Fatal(err)
			}
			pj, _ := json.Marshal(ps.Elicitations)
			tj, _ := json.Marshal(ts.Elicitations)
			if !bytes.Equal(pj, tj) {
				t.Fatalf("transcripts diverged:\nplain:  %s\ntraced: %s", pj, tj)
			}

			// Posterior state bit-identical.
			pst, err := plain.State(pi.ID, true)
			if err != nil {
				t.Fatal(err)
			}
			tst, err := traced.State(ti.ID, true)
			if err != nil {
				t.Fatal(err)
			}
			if pst.Z != tst.Z || pst.Precision != tst.Precision {
				t.Fatalf("state diverged: plain (z=%v, p=%v), traced (z=%v, p=%v)",
					pst.Z, pst.Precision, tst.Z, tst.Precision)
			}
			if !reflect.DeepEqual(pst.Marginals, tst.Marginals) {
				t.Fatal("marginals diverged between plain and traced runs")
			}

			// The traced run actually recorded its spans with the id —
			// passivity must not mean the instrumentation is dead.
			tr, err := traced.Trace(ti.ID)
			if err != nil {
				t.Fatal(err)
			}
			sawTraced := false
			for _, sp := range tr.Spans {
				if sp.Stage == obs.StageResample && sp.Trace == traceID {
					sawTraced = true
				}
			}
			if !sawTraced {
				t.Fatalf("traced run recorded no resample span carrying %q: %+v", traceID, tr.Spans)
			}
			pr, err := plain.Trace(pi.ID)
			if err != nil {
				t.Fatal(err)
			}
			for _, sp := range pr.Spans {
				if sp.Trace != "" {
					t.Fatalf("plain run recorded a trace id from nowhere: %+v", sp)
				}
			}
		})
	}
}

// TestPromTextExposition drives a couple of answers and checks the
// Prometheus rendering end to end: counters carry the backend label,
// the latency histogram ends at le="+Inf" with the full count, and the
// per-stage histograms cover the answer path.
func TestPromTextExposition(t *testing.T) {
	m := NewManager(Config{Workers: 2, BackendID: "b1"})
	defer m.Shutdown()
	info, err := m.Open(fastOpen("wiki", 0.08, 9))
	if err != nil {
		t.Fatal(err)
	}
	const answers = 2
	for i := 0; i < answers; i++ {
		next, err := m.Next(info.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		if next.Done {
			t.Fatalf("session done after %d answers", i)
		}
		if _, err := m.Answer(info.ID, AnswerRequest{Claim: next.Candidates[0].Claim, Oracle: true}); err != nil {
			t.Fatal(err)
		}
	}

	out := string(PromText(m.Metrics(true)))
	for _, want := range []string{
		"# TYPE factcheck_answers_served_total counter",
		fmt.Sprintf(`factcheck_answers_served_total{backend="b1"} %d`, answers),
		"# TYPE factcheck_answer_latency_seconds histogram",
		fmt.Sprintf(`factcheck_answer_latency_seconds_bucket{backend="b1",le="+Inf"} %d`, answers),
		fmt.Sprintf(`factcheck_answer_latency_seconds_count{backend="b1"} %d`, answers),
		"# TYPE factcheck_stage_latency_seconds histogram",
		`stage="resample"`,
		`stage="lane_acquire"`,
		`stage="answer"`,
		`factcheck_gain_cache_`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "factcheck_slo_rung") {
		t.Fatalf("controller series rendered with no controller configured:\n%s", out)
	}
}
