//go:build race

package service

// raceEnabled scales the flash-crowd scenario's timings: the race
// detector slows this workload roughly an order of magnitude, so the
// pinned wall-clock SLO and window would otherwise misread the
// instrumented machine as permanently idle (answers too sparse for a
// window to carry signal).
const raceEnabled = true
