package service

import "testing"

func TestMetricsEndpoint(t *testing.T) {
	client, _ := newTestServer(t, Config{Workers: 2})

	m0, err := client.Metrics(false)
	if err != nil {
		t.Fatal(err)
	}
	if m0.SessionsOpened != 0 || m0.AnswersServed != 0 || m0.AnswerLatency.Count != 0 {
		t.Fatalf("fresh metrics not zero: %+v", m0)
	}
	if m0.WorkersTotal != 2 {
		t.Fatalf("workersTotal = %d", m0.WorkersTotal)
	}

	info, err := client.Open(fastOpen("wiki", 0.05, 3))
	if err != nil {
		t.Fatal(err)
	}
	const answers = 3
	for i := 0; i < answers; i++ {
		next, err := client.Next(info.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		if next.Done {
			t.Fatalf("session done after %d answers", i)
		}
		if _, err := client.Answer(info.ID, AnswerRequest{Claim: next.Candidates[0].Claim, Oracle: true}); err != nil {
			t.Fatal(err)
		}
	}

	m1, err := client.Metrics(false)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Sessions != 1 || m1.SessionsOpened != 1 {
		t.Fatalf("session counts = %+v", m1)
	}
	if m1.AnswersServed != answers || m1.AnswerLatency.Count != answers {
		t.Fatalf("answer counts = %+v", m1)
	}
	if m1.AnswerLatency.P50 <= 0 || m1.AnswerLatency.Max < m1.AnswerLatency.P50 {
		t.Fatalf("latency digest not sane: %+v", m1.AnswerLatency)
	}
	if len(m1.AnswerLatencyBuckets) != 0 {
		t.Fatalf("buckets included without ?buckets=1: %+v", m1.AnswerLatencyBuckets)
	}

	mb, err := client.Metrics(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(mb.AnswerLatencyBuckets) == 0 {
		t.Fatal("?buckets=1 returned no buckets")
	}
	var total int64
	for _, b := range mb.AnswerLatencyBuckets {
		total += b.Count
	}
	if total != mb.AnswerLatency.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, mb.AnswerLatency.Count)
	}

	// A rejected answer (wrong claim) must not count as served.
	if _, err := client.Answer(info.ID, AnswerRequest{Claim: -5}); err == nil {
		t.Fatal("expected a wrong-claim rejection")
	}
	m2, err := client.Metrics(false)
	if err != nil {
		t.Fatal(err)
	}
	if m2.AnswersServed != answers {
		t.Fatalf("rejected answer counted: %+v", m2)
	}
}
