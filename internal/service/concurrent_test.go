package service

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestConcurrentSessionsShareOnePool is the scale acceptance test: 64
// auto-driven sessions multiplex concurrently onto one shared worker
// budget (run under -race via `make race`). Each session must finish its
// answers without protocol errors, and — because sessions are mutually
// isolated — produce exactly the state a lone session with the same seed
// produces.
func TestConcurrentSessionsShareOnePool(t *testing.T) {
	const sessions = 64
	const answers = 3

	m := NewManager(Config{Workers: 4, MaxSessions: sessions + 1}) // +1 for the solo control run
	srv := httptest.NewServer(NewServer(m).Handler())
	defer func() { srv.Close(); m.Shutdown() }()
	client := NewClient(srv.URL)

	drive := func(seed int64) (StateResponse, error) {
		info, err := client.Open(fastOpen("wiki", 0.03, seed))
		if err != nil {
			return StateResponse{}, fmt.Errorf("open: %w", err)
		}
		var st StateResponse
		for i := 0; i < answers; i++ {
			next, err := client.Next(info.ID, 1)
			if err != nil {
				return StateResponse{}, fmt.Errorf("next %d: %w", i, err)
			}
			if next.Done {
				break
			}
			st, err = client.Answer(info.ID, AnswerRequest{Claim: next.Candidates[0].Claim, Oracle: true})
			if err != nil {
				return StateResponse{}, fmt.Errorf("answer %d: %w", i, err)
			}
		}
		return st, nil
	}

	var wg sync.WaitGroup
	results := make([]StateResponse, sessions)
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = drive(int64(i))
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if results[i].Labeled != answers {
			t.Fatalf("session %d labeled %d claims, want %d", i, results[i].Labeled, answers)
		}
	}
	if got := m.Len(); got != sessions {
		t.Fatalf("manager hosts %d sessions, want %d", got, sessions)
	}
	if in := m.Budget().InUse(); in != 0 {
		t.Fatalf("worker lanes leaked: %d still granted", in)
	}

	// Isolation: a session seeded like session 5 but run alone, after
	// the fact, reaches the identical state — concurrency and budget
	// contention never leak between sessions.
	solo, err := drive(5)
	if err != nil {
		t.Fatal(err)
	}
	if solo.Labeled != results[5].Labeled || solo.Z != results[5].Z || solo.Precision != results[5].Precision ||
		solo.Expected != results[5].Expected {
		t.Fatalf("concurrent session diverged from solo run:\n concurrent=%+v\n solo=%+v", results[5], solo)
	}
}

// BenchmarkServedAnswer measures the full HTTP answer round-trip —
// decode, budget acquire, Step (incremental inference), next-ranking
// warm-up, encode — on a wiki-profile session. `make bench` reports this
// alongside the in-process scoring benchmarks for the README tuning
// table.
func BenchmarkServedAnswer(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			m := NewManager(Config{Workers: workers})
			srv := httptest.NewServer(NewServer(m).Handler())
			defer func() { srv.Close(); m.Shutdown() }()
			client := NewClient(srv.URL)

			req := OpenRequest{Profile: "wiki", Scale: 0.2, Seed: 42, CandidatePool: 8}
			info, err := client.Open(req)
			if err != nil {
				b.Fatal(err)
			}
			next, err := client.Next(info.ID, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if next.Done { // corpus exhausted: start a fresh session
					b.StopTimer()
					req.Seed++
					if info, err = client.Open(req); err != nil {
						b.Fatal(err)
					}
					if next, err = client.Next(info.ID, 1); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				st, err := client.Answer(info.ID, AnswerRequest{Claim: next.Candidates[0].Claim, Oracle: true})
				if err != nil {
					b.Fatal(err)
				}
				next = NextResponse{Done: st.Done}
				if !st.Done {
					next.Candidates = []Candidate{{Claim: st.Expected}}
				}
			}
		})
	}
}
