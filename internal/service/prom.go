package service

import (
	"net/http"
	"sort"

	"factcheck/internal/obs"
)

// PromText renders a Metrics snapshot as Prometheus text exposition
// (version 0.0.4): the bespoke JSON blob's counters and gauges as
// factcheck_* series, the answer-latency and per-stage LogHist
// buckets as native histograms with cumulative le bounds, and the SLO
// controller's rung as a 0/1/2 gauge. The same renderer serves one
// backend's /metrics?format=prometheus and the router's
// fleet-aggregated scrape (Metrics is the merge-closed shape both
// produce). The snapshot must have been assembled with buckets
// (Metrics(true)) for the histogram series to carry samples.
func PromText(m Metrics) []byte {
	var e obs.Expo
	var base obs.Labels
	if m.BackendID != "" {
		base = obs.Labels{{"backend", m.BackendID}}
	}

	e.Gauge("factcheck_sessions", "Live sessions on this backend (or summed across the fleet).", base, float64(m.Sessions))
	e.Gauge("factcheck_sessions_spilled", "Sessions spilled to the snapshot store by idle eviction.", base, float64(m.Spilled))
	e.Gauge("factcheck_workers_total", "Worker lanes in the shared inference budget.", base, float64(m.WorkersTotal))
	e.Gauge("factcheck_workers_granted", "Worker lanes currently granted to requests.", base, float64(m.WorkersGranted))
	e.Counter("factcheck_worker_lane_waits_total", "Requests that arrived to a saturated worker budget (the SLO controller's contention signal).", base, float64(m.LaneWaits))
	e.Gauge("factcheck_mailbox_queued", "Corpus deltas queued in live sessions' ingestion mailboxes.", base, float64(m.MailboxQueued))
	e.Counter("factcheck_sessions_opened_total", "Sessions opened or restored since boot.", base, float64(m.SessionsOpened))
	e.Counter("factcheck_answers_served_total", "Successfully answered validation requests since boot.", base, float64(m.AnswersServed))

	e.Counter("factcheck_gain_cache_hits_total", "Guidance gain-cache hits across sessions.", base, float64(m.GainCacheHits))
	e.Counter("factcheck_gain_cache_misses_total", "Guidance gain-cache misses across sessions.", base, float64(m.GainCacheMisses))
	if lookups := m.GainCacheHits + m.GainCacheMisses; lookups > 0 {
		e.Gauge("factcheck_gain_cache_hit_ratio", "Fraction of gain-cache lookups served from cache.", base, float64(m.GainCacheHits)/float64(lookups))
	}

	if c := m.Controller; c != nil {
		e.Gauge("factcheck_slo_rung", "Overload controller rung: 0 normal, 1 degraded, 2 shedding (fleet scrapes report the worst member).", base, float64(ParseSLOMode(c.Mode)))
		e.Gauge("factcheck_slo_target_seconds", "The controller's answer-latency p99 objective.", base, c.SLOSeconds)
		e.Gauge("factcheck_slo_window_p99_seconds", "Windowed answer-latency p99 the controller last evaluated.", base, c.WindowP99)
		e.Counter("factcheck_slo_breaches_total", "Controller evaluations whose windowed p99 breached the SLO.", base, float64(c.Breaches))
		e.Counter("factcheck_sheds_total", "Requests refused by admission control (shedding rung or full mailbox).", base, float64(c.Sheds))
		e.Counter("factcheck_degraded_answers_total", "Answers served on the degraded (uncertainty-ranking) rung.", base, float64(c.DegradedAnswers))
	}

	e.Histogram("factcheck_answer_latency_seconds", "Whole-path answer latency (lock wait, inference, persistence).", base, m.AnswerLatencyBuckets, m.AnswerLatency)
	e.HistogramMap("factcheck_stage_latency_seconds", "Answer-path stage latency (lane_acquire, ingest_apply, resample, rescore, wal_append, answer).", "stage", base, m.StageBuckets, m.Stages)

	if len(m.Endpoints) > 0 {
		reqs := make(map[string]float64, len(m.Endpoints))
		errs := make(map[string]float64, len(m.Endpoints))
		keys := make([]string, 0, len(m.Endpoints))
		for ep, c := range m.Endpoints {
			keys = append(keys, ep)
			reqs[ep] = float64(c.Requests)
			errs[ep] = float64(c.Errors)
		}
		sort.Strings(keys)
		for _, ep := range keys {
			e.Counter("factcheck_endpoint_requests_total", "API requests per endpoint.", base.With("endpoint", ep), reqs[ep])
		}
		for _, ep := range keys {
			e.Counter("factcheck_endpoint_errors_total", "API 4xx/5xx responses per endpoint.", base.With("endpoint", ep), errs[ep])
		}
	}
	return e.Bytes()
}

// WritePrometheus serves a Metrics snapshot as a Prometheus scrape
// response.
func WritePrometheus(w http.ResponseWriter, m Metrics) {
	w.Header().Set("Content-Type", obs.ContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(PromText(m))
}
