package service

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler drops the first fail connections on the floor (a
// transport-level failure, as a crashing or restarting server would
// produce) and serves the wrapped handler afterwards.
func flakyHandler(fail int64, next http.Handler) http.Handler {
	var seen atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if seen.Add(1) <= fail {
			hj, ok := w.(http.Hijacker)
			if !ok {
				panic("test server does not support hijacking")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				panic(err)
			}
			conn.Close() // slam the connection: the client sees EOF/reset
			return
		}
		next.ServeHTTP(w, r)
	})
}

func retryTestPolicy(attempts int) *RetryPolicy {
	return &RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 7}
}

func TestClientRetriesTransientConnectionErrors(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown()
	srv := httptest.NewServer(flakyHandler(2, NewServer(m).Handler()))
	defer srv.Close()

	client := NewClient(srv.URL)
	client.Retry = retryTestPolicy(4)
	h, err := client.Health()
	if err != nil {
		t.Fatalf("health with retry: %v", err)
	}
	if h.WorkersTotal != 1 {
		t.Fatalf("health = %+v", h)
	}
	if got := client.Retries(); got != 2 {
		t.Fatalf("Retries() = %d, want 2", got)
	}
}

func TestClientRetryGivesUpAfterMaxAttempts(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown()
	srv := httptest.NewServer(flakyHandler(1_000_000, NewServer(m).Handler()))
	defer srv.Close()

	client := NewClient(srv.URL)
	client.Retry = retryTestPolicy(3)
	if _, err := client.Health(); err == nil {
		t.Fatal("expected an error once every attempt failed")
	}
	if got := client.Retries(); got != 2 {
		t.Fatalf("Retries() = %d, want 2 (attempts 2 and 3)", got)
	}
}

func TestClientRetryOffByDefault(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown()
	srv := httptest.NewServer(flakyHandler(1, NewServer(m).Handler()))
	defer srv.Close()

	client := NewClient(srv.URL)
	if _, err := client.Health(); err == nil {
		t.Fatal("default client must not retry a dropped connection")
	}
	if got := client.Retries(); got != 0 {
		t.Fatalf("Retries() = %d, want 0", got)
	}
	// The next request goes through: the failure was per-connection.
	if _, err := client.Health(); err != nil {
		t.Fatalf("second request: %v", err)
	}
}

func TestClientDoesNotRetryHTTPErrors(t *testing.T) {
	// A 404 is a server decision, not a transport failure: replaying a
	// non-idempotent request the server already saw would be unsafe, so
	// HTTP-level errors must pass through untouched.
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown()
	srv := httptest.NewServer(NewServer(m).Handler())
	defer srv.Close()

	client := NewClient(srv.URL)
	client.Retry = retryTestPolicy(5)
	if _, err := client.State("no-such-session", false); err == nil {
		t.Fatal("expected a 404 error")
	}
	if got := client.Retries(); got != 0 {
		t.Fatalf("Retries() = %d, want 0 for an HTTP-level error", got)
	}
}

// applyThenDropHandler serves the first POST …/answer on the real
// handler via a recorder — so the manager fully applies it — then slams
// the connection without sending the response: the worst-case transport
// failure, committed server-side but lost on the wire. Every other
// request passes through.
func applyThenDropHandler(next http.Handler) http.Handler {
	var done atomic.Bool
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/answer") && done.CompareAndSwap(false, true) {
			rec := httptest.NewRecorder()
			next.ServeHTTP(rec, r)
			if rec.Code/100 != 2 {
				panic("apply-then-drop: the dropped request was not applied")
			}
			hj, ok := w.(http.Hijacker)
			if !ok {
				panic("test server does not support hijacking")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				panic(err)
			}
			conn.Close()
			return
		}
		next.ServeHTTP(w, r)
	})
}

func TestAnswerRetryAfterAppliedResponseLostIsIdempotent(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown()
	srv := httptest.NewServer(applyThenDropHandler(NewServer(m).Handler()))
	defer srv.Close()

	client := NewClient(srv.URL)
	client.Retry = retryTestPolicy(4)
	info, err := client.Open(fastOpen("wiki", 0.08, 9))
	if err != nil {
		t.Fatal(err)
	}
	next, err := client.Next(info.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if next.Seq != 0 {
		t.Fatalf("fresh session Seq = %d, want 0", next.Seq)
	}

	// The first attempt is applied and then dropped; the retry must be
	// recognised as a duplicate and served the stored response instead
	// of a 409 — and the transcript must hold the answer exactly once.
	seq := next.Seq
	st, err := client.Answer(info.ID, AnswerRequest{Claim: next.Candidates[0].Claim, Oracle: true, Seq: &seq})
	if err != nil {
		t.Fatalf("retried answer: %v", err)
	}
	if client.Retries() == 0 {
		t.Fatal("the drop handler never forced a retry")
	}
	if st.Labeled != 1 {
		t.Fatalf("labeled = %d, want 1", st.Labeled)
	}
	snap, err := client.Snapshot(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Elicitations) != 1 {
		t.Fatalf("transcript holds %d elicitations after the retry, want exactly 1: %+v",
			len(snap.Elicitations), snap.Elicitations)
	}

	// The session continues normally from the response's sequence.
	next, err = client.Next(info.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if next.Seq != st.Seq || next.Seq != 1 {
		t.Fatalf("sequence after retry: next=%d state=%d, want 1", next.Seq, st.Seq)
	}
	seq2 := next.Seq
	if _, err := client.Answer(info.ID, AnswerRequest{Claim: next.Candidates[0].Claim, Oracle: true, Seq: &seq2}); err != nil {
		t.Fatalf("follow-up answer: %v", err)
	}

	// A genuinely stale sequence (not a duplicate of the last applied
	// request) is a conflict, not a silent replay.
	stale := 0
	_, err = client.Answer(info.ID, AnswerRequest{Claim: 0, Verdict: true, Seq: &stale})
	if err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("stale sequence: want HTTP 409, got %v", err)
	}
}

// TestClientRetryAfterStatusTable pins the replay contract across the
// backpressure statuses: 503 (full/drain/migration) and 429 (shed by
// admission control) replay retry-safe requests when — and only when —
// a Retry-After hint accompanies them; session-creating posts are never
// replayed no matter what the server hints; every other status passes
// through on the first answer.
func TestClientRetryAfterStatusTable(t *testing.T) {
	cases := []struct {
		name       string
		method     string
		path       string
		status     int
		retryAfter string // Retry-After header on the failure; "" = absent
		wantHits   int64
		wantErr    bool
	}{
		{"503 with hint replays a read", http.MethodGet, "/sessions/x/state", http.StatusServiceUnavailable, "1", 2, false},
		{"429 with hint replays a read", http.MethodGet, "/sessions/x/state", http.StatusTooManyRequests, "1", 2, false},
		{"429 with hint replays a delete", http.MethodDelete, "/sessions/x", http.StatusTooManyRequests, "1", 2, false},
		{"429 with hint replays an answer", http.MethodPost, "/sessions/x/answer", http.StatusTooManyRequests, "1", 2, false},
		{"503 with hint replays an answer", http.MethodPost, "/sessions/x/answer", http.StatusServiceUnavailable, "1", 2, false},
		{"429 with hint never replays open", http.MethodPost, "/sessions", http.StatusTooManyRequests, "1", 1, true},
		{"503 with hint never replays open", http.MethodPost, "/sessions", http.StatusServiceUnavailable, "1", 1, true},
		{"429 with hint never replays import", http.MethodPost, "/sessions/x/import", http.StatusTooManyRequests, "1", 1, true},
		{"429 without hint fails fast", http.MethodGet, "/sessions/x/state", http.StatusTooManyRequests, "", 1, true},
		{"503 without hint fails fast", http.MethodGet, "/sessions/x/state", http.StatusServiceUnavailable, "", 1, true},
		{"404 with hint is not backpressure", http.MethodGet, "/sessions/x/state", http.StatusNotFound, "1", 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var hits atomic.Int64
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if hits.Add(1) == 1 {
					if tc.retryAfter != "" {
						w.Header().Set("Retry-After", tc.retryAfter)
					}
					w.WriteHeader(tc.status)
					io.WriteString(w, `{"error":"busy"}`)
					return
				}
				w.WriteHeader(http.StatusOK)
				io.WriteString(w, "{}")
			}))
			defer srv.Close()

			client := NewClient(srv.URL)
			client.Retry = retryTestPolicy(4)
			err := client.do(tc.method, tc.path, nil, nil)
			if tc.wantErr {
				var apiErr *APIError
				if !errors.As(err, &apiErr) || apiErr.Status != tc.status {
					t.Fatalf("err = %v, want APIError with status %d", err, tc.status)
				}
			} else if err != nil {
				t.Fatalf("replayed request failed: %v", err)
			}
			if got := hits.Load(); got != tc.wantHits {
				t.Fatalf("server saw %d requests, want %d", got, tc.wantHits)
			}
		})
	}
}

// TestClientRetryAfterCeilingIsMaxDelay pins the hint ceiling: a server
// demanding a pathological Retry-After (here a minute) cannot stall the
// client past the policy's MaxDelay.
func TestClientRetryAfterCeilingIsMaxDelay(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "60")
			w.WriteHeader(http.StatusTooManyRequests)
			io.WriteString(w, `{"error":"overloaded"}`)
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "{}")
	}))
	defer srv.Close()

	client := NewClient(srv.URL)
	client.Retry = &RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 25 * time.Millisecond, Seed: 7}
	start := time.Now()
	if err := client.do(http.MethodGet, "/sessions/x/state", nil, nil); err != nil {
		t.Fatalf("replay under a capped hint: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("client waited %v — the 60s Retry-After hint was not capped by MaxDelay", elapsed)
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2", got)
	}
}
