package service

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler drops the first fail connections on the floor (a
// transport-level failure, as a crashing or restarting server would
// produce) and serves the wrapped handler afterwards.
func flakyHandler(fail int64, next http.Handler) http.Handler {
	var seen atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if seen.Add(1) <= fail {
			hj, ok := w.(http.Hijacker)
			if !ok {
				panic("test server does not support hijacking")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				panic(err)
			}
			conn.Close() // slam the connection: the client sees EOF/reset
			return
		}
		next.ServeHTTP(w, r)
	})
}

func retryTestPolicy(attempts int) *RetryPolicy {
	return &RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 7}
}

func TestClientRetriesTransientConnectionErrors(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown()
	srv := httptest.NewServer(flakyHandler(2, NewServer(m).Handler()))
	defer srv.Close()

	client := NewClient(srv.URL)
	client.Retry = retryTestPolicy(4)
	h, err := client.Health()
	if err != nil {
		t.Fatalf("health with retry: %v", err)
	}
	if h.WorkersTotal != 1 {
		t.Fatalf("health = %+v", h)
	}
	if got := client.Retries(); got != 2 {
		t.Fatalf("Retries() = %d, want 2", got)
	}
}

func TestClientRetryGivesUpAfterMaxAttempts(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown()
	srv := httptest.NewServer(flakyHandler(1_000_000, NewServer(m).Handler()))
	defer srv.Close()

	client := NewClient(srv.URL)
	client.Retry = retryTestPolicy(3)
	if _, err := client.Health(); err == nil {
		t.Fatal("expected an error once every attempt failed")
	}
	if got := client.Retries(); got != 2 {
		t.Fatalf("Retries() = %d, want 2 (attempts 2 and 3)", got)
	}
}

func TestClientRetryOffByDefault(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown()
	srv := httptest.NewServer(flakyHandler(1, NewServer(m).Handler()))
	defer srv.Close()

	client := NewClient(srv.URL)
	if _, err := client.Health(); err == nil {
		t.Fatal("default client must not retry a dropped connection")
	}
	if got := client.Retries(); got != 0 {
		t.Fatalf("Retries() = %d, want 0", got)
	}
	// The next request goes through: the failure was per-connection.
	if _, err := client.Health(); err != nil {
		t.Fatalf("second request: %v", err)
	}
}

func TestClientDoesNotRetryHTTPErrors(t *testing.T) {
	// A 404 is a server decision, not a transport failure: replaying a
	// non-idempotent request the server already saw would be unsafe, so
	// HTTP-level errors must pass through untouched.
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown()
	srv := httptest.NewServer(NewServer(m).Handler())
	defer srv.Close()

	client := NewClient(srv.URL)
	client.Retry = retryTestPolicy(5)
	if _, err := client.State("no-such-session", false); err == nil {
		t.Fatal("expected a 404 error")
	}
	if got := client.Retries(); got != 0 {
		t.Fatalf("Retries() = %d, want 0 for an HTTP-level error", got)
	}
}
