package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"factcheck/internal/obs"
	"factcheck/internal/stats"
)

// RetryPolicy bounds the client's retry-with-jittered-backoff on
// transient transport errors (connection refused/reset, a server
// restarting mid-request). HTTP responses are never replayed — the
// server made a decision — with one exception: a 503 or 429 carrying a
// Retry-After header is an explicit invitation ("full" backpressure, a
// draining backend, a session mid-migration behind a router, load shed
// by the overload controller's admission control), and the client
// honors it for requests that are safe to repeat (all reads, deletes,
// and answers, which are idempotent via their sequence number;
// session-creating posts are not replayed). The server's Retry-After
// hint is respected but never waited beyond MaxDelay.
//
// The applied-but-response-lost window (a connection torn down after
// the server committed the request, making the retry look like a fresh
// submission) is closed for answer submission by server-side
// idempotency: the server memoises the last applied answer and replays
// its stored response to an exact duplicate, and clients that echo
// NextResponse.Seq into AnswerRequest.Seq get the stale-sequence check
// on top. A replayed open can still strand an extra session, which
// idle-TTL eviction reclaims — the reason the policy stays opt-in.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (first try included);
	// values below 2 disable retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it (0 = 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0 = 2s).
	MaxDelay time.Duration
	// Seed drives the jitter stream (0 = 1); fixed so that loadtest
	// runs with a pinned seed draw reproducible backoff schedules.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// APIError is an HTTP-level error response: the server answered with a
// non-2xx status. It preserves the envelope's stable error code, the
// status, and any Retry-After hint so callers (and the client's own
// retry loop) can distinguish transient backpressure from hard
// failures. Unwrap maps the code back onto the service's sentinel
// errors, so errors.Is(err, service.ErrSeq) works identically for
// in-process and over-the-wire callers.
type APIError struct {
	Method  string
	Path    string
	Message string
	Status  int
	// Code is the envelope's machine-readable error code (a Code*
	// constant; "" from pre-envelope servers).
	Code string
	// RetryAfter is the server's Retry-After hint (0 if absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("%s %s: %s (HTTP %d)", e.Method, e.Path, e.Message, e.Status)
	}
	return fmt.Sprintf("%s %s: HTTP %d", e.Method, e.Path, e.Status)
}

// Unwrap maps the envelope code to the matching service sentinel (nil
// for codes with no sentinel). For a pre-envelope server that sent no
// code, the unambiguous statuses still map: 404 was always ErrNotFound
// and 410 always ErrMigrated; the overloaded 409s and 429s stay
// unmapped rather than guessed.
func (e *APIError) Unwrap() error {
	switch e.Code {
	case CodeNotFound:
		return ErrNotFound
	case CodeMigrated:
		return ErrMigrated
	case CodeWrongClaim:
		return ErrWrongClaim
	case CodeStaleSeq:
		return ErrSeq
	case CodeDone:
		return ErrDone
	case CodeExists:
		return ErrExists
	case CodeShedding:
		return ErrOverloaded
	case CodeMailboxFull:
		return ErrMailboxFull
	case CodeSessionLimit:
		return ErrFull
	case CodeShuttingDown:
		return ErrShutdown
	case CodePersistFailure:
		return ErrPersist
	case "":
		switch e.Status {
		case http.StatusNotFound:
			return ErrNotFound
		case http.StatusGone:
			return ErrMigrated
		}
	}
	return nil
}

// Client is a Go client for the factcheck-server HTTP API. Its methods
// mirror the endpoints one-to-one; a zero HTTPClient uses
// http.DefaultClient. A Client is safe for concurrent use (it carries no
// per-session state — sessions live server-side).
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient optionally overrides the transport.
	HTTPClient *http.Client
	// Retry, when non-nil, retries requests that failed with a
	// transport error under the policy's jittered exponential backoff.
	// Off by default; the load-testing harness turns it on so a fleet
	// run rides out transient connection failures.
	Retry *RetryPolicy
	// Trace, when non-empty, is stamped on every request as the
	// X-Factcheck-Trace header. The router sets it on the per-migration
	// clients it builds, so one trace id follows a session's export →
	// import → tombstone hop across backends. Set before first use.
	Trace string
	// Logger, when non-nil, receives a structured warn line for every
	// retried request (attempt, backoff, the error being retried) —
	// silent by default, so the retry path stops dropping its evidence
	// on the floor without making quiet tools chatty.
	Logger *slog.Logger

	retries atomic.Int64

	jmu    sync.Mutex
	jitter *stats.RNG
}

// NewClient returns a client for the server at base.
func NewClient(base string) *Client {
	return &Client{BaseURL: strings.TrimRight(base, "/")}
}

// Retries returns the number of retried requests so far (0 unless a
// Retry policy is set).
func (c *Client) Retries() int64 { return c.retries.Load() }

// Open creates a new session.
func (c *Client) Open(req OpenRequest) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(http.MethodPost, "/v1/sessions", createPayload{OpenRequest: req}, &info)
	return info, err
}

// OpenAs creates a new session under a caller-chosen id (how a shard
// router pins placement to its hash ring).
func (c *Client) OpenAs(id string, req OpenRequest) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(http.MethodPost, "/v1/sessions", createPayload{OpenRequest: req, ID: id}, &info)
	return info, err
}

// Restore reopens a snapshotted session on the server.
func (c *Client) Restore(snap SessionSnapshot) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(http.MethodPost, "/v1/sessions", createPayload{Restore: &snap}, &info)
	return info, err
}

// Next fetches the current top-k guidance ranking.
func (c *Client) Next(id string, k int) (NextResponse, error) {
	var resp NextResponse
	p := "/v1/sessions/" + url.PathEscape(id) + "/next"
	if k > 0 {
		p += "?k=" + strconv.Itoa(k)
	}
	err := c.do(http.MethodGet, p, nil, &resp)
	return resp, err
}

// Answer submits a verdict for the expected claim.
func (c *Client) Answer(id string, req AnswerRequest) (StateResponse, error) {
	var resp StateResponse
	err := c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/answer", req, &resp)
	return resp, err
}

// IngestClaims streams a corpus delta (new claims, sources, documents)
// into a live session. The response reports whether the delta was
// applied immediately or queued in the session's mailbox; a full
// mailbox surfaces as ErrMailboxFull (HTTP 429 + Retry-After), which
// the retry policy honors — a rejected delta was never enqueued, so
// replaying it is safe.
func (c *Client) IngestClaims(id string, req IngestRequest) (IngestResponse, error) {
	var resp IngestResponse
	err := c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/claims", req, &resp)
	return resp, err
}

// IngestSources streams a claim-free corpus delta (new sources and
// evidence on existing claims) into a live session; a delta that
// introduces claims is rejected — use IngestClaims.
func (c *Client) IngestSources(id string, req IngestRequest) (IngestResponse, error) {
	var resp IngestResponse
	err := c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/sources", req, &resp)
	return resp, err
}

// State fetches the session's progress; withMarginals adds the
// per-claim credibility marginals.
func (c *Client) State(id string, withMarginals bool) (StateResponse, error) {
	var resp StateResponse
	p := "/v1/sessions/" + url.PathEscape(id) + "/state"
	if withMarginals {
		p += "?marginals=1"
	}
	err := c.do(http.MethodGet, p, nil, &resp)
	return resp, err
}

// Snapshot exports the session's durable form.
func (c *Client) Snapshot(id string) (SessionSnapshot, error) {
	var snap SessionSnapshot
	err := c.do(http.MethodGet, "/v1/sessions/"+url.PathEscape(id)+"/snapshot", nil, &snap)
	return snap, err
}

// Export freezes the session for migration and returns its portable
// record; the server keeps the durable copy as migration rollback until
// the session is deleted or re-imported.
func (c *Client) Export(id string) (SessionSnapshot, error) {
	var snap SessionSnapshot
	err := c.do(http.MethodGet, "/v1/sessions/"+url.PathEscape(id)+"/export", nil, &snap)
	return snap, err
}

// Import installs an exported session record under id.
func (c *Client) Import(id string, snap SessionSnapshot) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/import", snap, &info)
	return info, err
}

// Sessions lists the ids of every session the server owns, split into
// live and stored.
func (c *Client) Sessions() (SessionList, error) {
	var resp SessionList
	err := c.do(http.MethodGet, "/v1/sessions", nil, &resp)
	return resp, err
}

// Delete closes and removes the session.
func (c *Client) Delete(id string) error {
	return c.do(http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, nil)
}

// Health reports the server's liveness and load: live and spilled
// session counts plus worker-budget usage.
func (c *Client) Health() (Health, error) {
	var h Health
	err := c.do(http.MethodGet, "/v1/healthz", nil, &h)
	return h, err
}

// Metrics scrapes the server's serving telemetry; withBuckets adds the
// raw answer-latency histogram buckets.
func (c *Client) Metrics(withBuckets bool) (Metrics, error) {
	var m Metrics
	p := "/v1/metrics"
	if withBuckets {
		p += "?buckets=1"
	}
	err := c.do(http.MethodGet, p, nil, &m)
	return m, err
}

// backoff returns the jittered delay before retry attempt (1-based):
// full jitter over an exponentially growing, capped window.
func (c *Client) backoff(p RetryPolicy, attempt int) time.Duration {
	window := p.BaseDelay << (attempt - 1)
	if window > p.MaxDelay || window <= 0 {
		window = p.MaxDelay
	}
	c.jmu.Lock()
	if c.jitter == nil {
		c.jitter = stats.NewRNG(p.Seed)
	}
	u := c.jitter.Float64()
	c.jmu.Unlock()
	return time.Duration(u * float64(window))
}

func (c *Client) do(method, path string, body, out any) error {
	var buf []byte
	if body != nil {
		var err error
		buf, err = json.Marshal(body)
		if err != nil {
			return err
		}
	}
	attempts := 1
	var policy RetryPolicy
	if c.Retry != nil && c.Retry.MaxAttempts > 1 {
		policy = c.Retry.withDefaults()
		attempts = policy.MaxAttempts
	}
	var lastErr error
	var wait time.Duration
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			c.retries.Add(1)
			if wait <= 0 {
				wait = c.backoff(policy, attempt-1)
			}
			if c.Logger != nil {
				c.Logger.Warn("retrying request",
					"method", method, "path", path,
					"attempt", attempt, "of", attempts,
					"backoff", wait.String(), "err", lastErr)
			}
			time.Sleep(wait)
		}
		err := c.doOnce(method, path, buf, out)
		if err == nil {
			return nil
		}
		lastErr = err
		wait = 0
		if _, transient := err.(*url.Error); transient {
			continue
		}
		// An HTTP-level error: the server answered; replay only an
		// explicit transient rejection (keyed off the envelope's error
		// code, with a status fallback for pre-envelope servers) +
		// Retry-After on requests safe to repeat.
		var apiErr *APIError
		if errors.As(err, &apiErr) && retryable(apiErr) &&
			apiErr.RetryAfter > 0 && retrySafe(method, path) {
			wait = min(apiErr.RetryAfter, policy.MaxDelay)
			continue
		}
		return err
	}
	return lastErr
}

// retryable reports the rejections whose Retry-After hint the client
// honors, keyed off the envelope's stable code: shedding (admission
// control), mailbox_full (ingestion backpressure), session_limit and
// shutting_down (full / draining / mid-migration). A response with no
// code (a pre-envelope server, or a proxy that ate the body) falls
// back to the status: 503 and 429 were always the transient pair.
func retryable(e *APIError) bool {
	switch e.Code {
	case CodeShedding, CodeMailboxFull, CodeSessionLimit, CodeShuttingDown, CodeMigrating, CodeNoBackends:
		return true
	case "":
		return e.Status == http.StatusServiceUnavailable || e.Status == http.StatusTooManyRequests
	}
	return false
}

// retrySafe reports whether a request may be replayed after a
// Retry-After'd 503 or 429: reads and deletes are idempotent by
// nature, answers by their sequence number, and ingest posts because a
// 429/503 rejection never enqueued the delta. POST /sessions
// (open/restore) and POST .../import create state and could strand a
// duplicate.
func retrySafe(method, path string) bool {
	return method != http.MethodPost || strings.HasSuffix(path, "/answer") ||
		strings.HasSuffix(path, "/claims") || strings.HasSuffix(path, "/sources")
}

func (c *Client) doOnce(method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Trace != "" {
		req.Header.Set(obs.TraceHeader, c.Trace)
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{Method: method, Path: path, Status: resp.StatusCode}
		// The error envelope is {"error": {"code", "message",
		// "retryAfter"}}; pre-envelope servers sent {"error": "message"}.
		// Decoding into a RawMessage first handles both shapes.
		var e struct {
			Error json.RawMessage `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && len(e.Error) > 0 {
			var info ErrorInfo
			var msg string
			if json.Unmarshal(e.Error, &info) == nil && (info.Code != "" || info.Message != "") {
				apiErr.Code = info.Code
				apiErr.Message = info.Message
				if info.RetryAfter > 0 {
					apiErr.RetryAfter = time.Duration(info.RetryAfter) * time.Second
				}
			} else if json.Unmarshal(e.Error, &msg) == nil {
				apiErr.Message = msg
			}
		}
		io.Copy(io.Discard, resp.Body)
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
		return apiErr
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	err = json.NewDecoder(resp.Body).Decode(out)
	// Drain the body's trailing bytes (the encoder's newline): a body
	// not read to EOF forbids connection reuse, and the churn of a fresh
	// TCP connection per request throttles tight client loops far below
	// what the server can serve.
	io.Copy(io.Discard, resp.Body)
	return err
}
