package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// Client is a Go client for the factcheck-server HTTP API. Its methods
// mirror the endpoints one-to-one; a zero HTTPClient uses
// http.DefaultClient. A Client is safe for concurrent use (it carries no
// per-session state — sessions live server-side).
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient optionally overrides the transport.
	HTTPClient *http.Client
}

// NewClient returns a client for the server at base.
func NewClient(base string) *Client {
	return &Client{BaseURL: strings.TrimRight(base, "/")}
}

// Open creates a new session.
func (c *Client) Open(req OpenRequest) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(http.MethodPost, "/sessions", createPayload{OpenRequest: req}, &info)
	return info, err
}

// Restore reopens a snapshotted session on the server.
func (c *Client) Restore(snap SessionSnapshot) (SessionInfo, error) {
	var info SessionInfo
	err := c.do(http.MethodPost, "/sessions", createPayload{Restore: &snap}, &info)
	return info, err
}

// Next fetches the current top-k guidance ranking.
func (c *Client) Next(id string, k int) (NextResponse, error) {
	var resp NextResponse
	p := "/sessions/" + url.PathEscape(id) + "/next"
	if k > 0 {
		p += "?k=" + strconv.Itoa(k)
	}
	err := c.do(http.MethodGet, p, nil, &resp)
	return resp, err
}

// Answer submits a verdict for the expected claim.
func (c *Client) Answer(id string, req AnswerRequest) (StateResponse, error) {
	var resp StateResponse
	err := c.do(http.MethodPost, "/sessions/"+url.PathEscape(id)+"/answer", req, &resp)
	return resp, err
}

// State fetches the session's progress; withMarginals adds the
// per-claim credibility marginals.
func (c *Client) State(id string, withMarginals bool) (StateResponse, error) {
	var resp StateResponse
	p := "/sessions/" + url.PathEscape(id) + "/state"
	if withMarginals {
		p += "?marginals=1"
	}
	err := c.do(http.MethodGet, p, nil, &resp)
	return resp, err
}

// Snapshot exports the session's durable form.
func (c *Client) Snapshot(id string) (SessionSnapshot, error) {
	var snap SessionSnapshot
	err := c.do(http.MethodGet, "/sessions/"+url.PathEscape(id)+"/snapshot", nil, &snap)
	return snap, err
}

// Delete closes and removes the session.
func (c *Client) Delete(id string) error {
	return c.do(http.MethodDelete, "/sessions/"+url.PathEscape(id), nil, nil)
}

// Health reports the server's liveness and load: live and spilled
// session counts plus worker-budget usage.
func (c *Client) Health() (Health, error) {
	var h Health
	err := c.do(http.MethodGet, "/healthz", nil, &h)
	return h, err
}

func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
