//go:build !race

package service

// raceEnabled is false outside the race detector; see race_on_test.go.
const raceEnabled = false
