package corpusio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"factcheck/internal/synth"
)

func TestRoundTrip(t *testing.T) {
	orig := synth.Generate(synth.Wikipedia.Scaled(0.15), 7)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.DB.Stats() != orig.DB.Stats() {
		t.Fatalf("stats changed: %v vs %v", got.DB.Stats(), orig.DB.Stats())
	}
	for c := range orig.Truth {
		if got.Truth[c] != orig.Truth[c] {
			t.Fatalf("truth[%d] changed", c)
		}
	}
	for i := range orig.ClaimOrder {
		if got.ClaimOrder[i] != orig.ClaimOrder[i] {
			t.Fatalf("order[%d] changed", i)
		}
	}
	for s := range orig.SourceTrust {
		if got.SourceTrust[s] != orig.SourceTrust[s] {
			t.Fatalf("trust[%d] changed", s)
		}
	}
	for d := range orig.DB.Documents {
		od, gd := orig.DB.Documents[d], got.DB.Documents[d]
		if od.Source != gd.Source || len(od.Refs) != len(gd.Refs) {
			t.Fatalf("document %d changed", d)
		}
		for r := range od.Refs {
			if od.Refs[r] != gd.Refs[r] {
				t.Fatalf("document %d ref %d changed", d, r)
			}
		}
		for j := range od.Features {
			if od.Features[j] != gd.Features[j] {
				t.Fatalf("document %d feature %d changed", d, j)
			}
		}
	}
	if got.Profile.Name == "" {
		t.Fatal("profile name lost")
	}
}

func TestSaveLoad(t *testing.T) {
	orig := synth.Generate(synth.Health.Scaled(0.01), 9)
	path := filepath.Join(t.TempDir(), "corpus.json")
	if err := Save(path, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.DB.Stats() != orig.DB.Stats() {
		t.Fatalf("stats changed: %v vs %v", got.DB.Stats(), orig.DB.Stats())
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":     "not json",
		"bad version": `{"version": 99, "claims": [{"id":0}]}`,
		"no claims":   `{"version": 1}`,
		"bad stance": `{"version":1,"sources":[{"id":0}],
			"documents":[{"id":0,"source":0,"refs":[{"claim":0,"stance":"maybe"}]}],
			"claims":[{"id":0,"credible":true,"posting_order":0}]}`,
		"sparse sources": `{"version":1,"sources":[{"id":5}],
			"documents":[{"id":0,"source":0,"refs":[{"claim":0,"stance":"support"}]}],
			"claims":[{"id":0,"credible":true,"posting_order":0}]}`,
		"order not permutation": `{"version":1,"sources":[{"id":0}],
			"documents":[{"id":0,"source":0,"refs":[{"claim":0,"stance":"support"}]},
			             {"id":1,"source":0,"refs":[{"claim":1,"stance":"support"}]}],
			"claims":[{"id":0,"credible":true,"posting_order":0},
			          {"id":1,"credible":false,"posting_order":0}]}`,
		"orphan claim": `{"version":1,"sources":[{"id":0}],
			"documents":[{"id":0,"source":0,"refs":[{"claim":0,"stance":"support"}]}],
			"claims":[{"id":0,"credible":true,"posting_order":0},
			          {"id":1,"credible":false,"posting_order":1}]}`,
	}
	for name, payload := range cases {
		if _, err := Read(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: Read accepted invalid input", name)
		}
	}
}

func TestUnknownProfileNamePreserved(t *testing.T) {
	orig := synth.Generate(synth.Wikipedia.Scaled(0.1), 11)
	f := FromCorpus(orig)
	f.Profile = "custom-dataset"
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	// Re-encode with the custom name.
	got, err := f.ToCorpus()
	if err != nil {
		t.Fatal(err)
	}
	if got.Profile.Name != "custom-dataset" {
		t.Fatalf("profile name = %q", got.Profile.Name)
	}
}

func TestLoadedCorpusIsUsable(t *testing.T) {
	orig := synth.Generate(synth.Wikipedia.Scaled(0.1), 13)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The reloaded database must support the derived indexes.
	if got.DB.NumComponents() != orig.DB.NumComponents() {
		t.Fatalf("components changed: %d vs %d",
			got.DB.NumComponents(), orig.DB.NumComponents())
	}
	if got.DB.SharedSources(0, 0) == 0 {
		t.Fatal("claim 0 should share sources with itself")
	}
}
