// Package corpusio serialises fact-checking corpora to and from JSON, so
// generated datasets can be inspected, shipped to external tooling, and
// reloaded byte-identically. cmd/factcheck-datagen writes this format;
// cmd/factcheck-bench and cmd/factcheck-session can replay it.
//
// The format is a single JSON document with sources, documents (with
// stance-tagged claim references), claims (with ground truth and posting
// order), and the latent variables needed to resume experiments.
package corpusio

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"factcheck/internal/factdb"
	"factcheck/internal/synth"
)

// FormatVersion identifies the serialisation schema.
const FormatVersion = 1

// File is the on-disk schema.
type File struct {
	Version   int        `json:"version"`
	Profile   string     `json:"profile"`
	Seed      int64      `json:"seed,omitempty"`
	Sources   []Source   `json:"sources"`
	Documents []Document `json:"documents"`
	Claims    []Claim    `json:"claims"`
}

// Source mirrors factdb.Source plus the latent trust used by simulators.
type Source struct {
	ID       int       `json:"id"`
	Features []float64 `json:"features"`
	Trust    float64   `json:"latent_trust,omitempty"`
}

// Document mirrors factdb.Document.
type Document struct {
	ID       int       `json:"id"`
	Source   int       `json:"source"`
	Features []float64 `json:"features"`
	Refs     []Ref     `json:"refs"`
}

// Ref is a stance-tagged claim reference.
type Ref struct {
	Claim  int    `json:"claim"`
	Stance string `json:"stance"`
}

// Claim carries the ground truth and streaming order.
type Claim struct {
	ID       int  `json:"id"`
	Credible bool `json:"credible"`
	Order    int  `json:"posting_order"`
}

// FromCorpus converts a generated corpus into the file schema.
func FromCorpus(c *synth.Corpus) *File {
	f := &File{Version: FormatVersion, Profile: c.Profile.Name}
	for s, src := range c.DB.Sources {
		fs := Source{ID: src.ID, Features: src.Features}
		if s < len(c.SourceTrust) {
			fs.Trust = c.SourceTrust[s]
		}
		f.Sources = append(f.Sources, fs)
	}
	for _, d := range c.DB.Documents {
		fd := Document{ID: d.ID, Source: d.Source, Features: d.Features}
		for _, ref := range d.Refs {
			fd.Refs = append(fd.Refs, Ref{Claim: ref.Claim, Stance: ref.Stance.String()})
		}
		f.Documents = append(f.Documents, fd)
	}
	orderOf := make([]int, c.DB.NumClaims)
	for pos, cl := range c.ClaimOrder {
		orderOf[cl] = pos
	}
	for cl := 0; cl < c.DB.NumClaims; cl++ {
		f.Claims = append(f.Claims, Claim{ID: cl, Credible: c.Truth[cl], Order: orderOf[cl]})
	}
	return f
}

// ToCorpus rebuilds a corpus from the file schema; the database is
// finalised and validated.
func (f *File) ToCorpus() (*synth.Corpus, error) {
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("corpusio: unsupported version %d (want %d)", f.Version, FormatVersion)
	}
	if len(f.Claims) == 0 {
		return nil, fmt.Errorf("corpusio: no claims")
	}
	db := &factdb.DB{NumClaims: len(f.Claims)}
	trust := make([]float64, len(f.Sources))
	for i, s := range f.Sources {
		if s.ID != i {
			return nil, fmt.Errorf("corpusio: source ids must be dense (got %d at %d)", s.ID, i)
		}
		db.Sources = append(db.Sources, factdb.Source{ID: s.ID, Features: s.Features})
		trust[i] = s.Trust
	}
	for i, d := range f.Documents {
		if d.ID != i {
			return nil, fmt.Errorf("corpusio: document ids must be dense (got %d at %d)", d.ID, i)
		}
		doc := factdb.Document{ID: d.ID, Source: d.Source, Features: d.Features}
		for _, ref := range d.Refs {
			st, err := parseStance(ref.Stance)
			if err != nil {
				return nil, err
			}
			doc.Refs = append(doc.Refs, factdb.ClaimRef{Claim: ref.Claim, Stance: st})
		}
		db.Documents = append(db.Documents, doc)
	}
	if err := db.Finalize(); err != nil {
		return nil, fmt.Errorf("corpusio: invalid database: %w", err)
	}
	truth := make([]bool, len(f.Claims))
	order := make([]int, len(f.Claims))
	seen := make([]bool, len(f.Claims))
	for _, cl := range f.Claims {
		if cl.ID < 0 || cl.ID >= len(f.Claims) {
			return nil, fmt.Errorf("corpusio: claim id %d out of range", cl.ID)
		}
		truth[cl.ID] = cl.Credible
		if cl.Order < 0 || cl.Order >= len(f.Claims) || seen[cl.Order] {
			return nil, fmt.Errorf("corpusio: posting orders must form a permutation")
		}
		seen[cl.Order] = true
		order[cl.Order] = cl.ID
	}
	prof, err := synth.ByName(f.Profile)
	if err != nil {
		// Unknown profiles are allowed in files; keep the name only.
		prof = synth.Profile{Name: f.Profile}
	}
	return &synth.Corpus{
		Profile:     prof,
		DB:          db,
		Truth:       truth,
		SourceTrust: trust,
		ClaimOrder:  order,
	}, nil
}

func parseStance(s string) (factdb.Stance, error) {
	switch s {
	case "support":
		return factdb.Support, nil
	case "refute":
		return factdb.Refute, nil
	}
	return 0, fmt.Errorf("corpusio: unknown stance %q", s)
}

// Write serialises the corpus as indented JSON.
func Write(w io.Writer, c *synth.Corpus) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(FromCorpus(c))
}

// Read parses a corpus from JSON.
func Read(r io.Reader) (*synth.Corpus, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("corpusio: %w", err)
	}
	return f.ToCorpus()
}

// Save writes the corpus to a file path.
func Save(path string, c *synth.Corpus) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Write(f, c)
}

// Load reads a corpus from a file path.
func Load(path string) (*synth.Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
