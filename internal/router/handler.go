package router

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"

	"factcheck/internal/obs"
	"factcheck/internal/service"
)

// Handler returns the router's HTTP handler: the single-server session
// API proxied to ring owners (the streaming ingest endpoints included),
// the fleet aggregates of /healthz and /metrics, and the /fleet control
// plane. A service.Client, the workload harness, and every smoke script
// drive it exactly as they drive one factcheck-server.
//
// Like the execution layer, the canonical surface is versioned under
// /v1 and the unversioned legacy paths are served as deprecated
// aliases; router-originated errors carry the same JSON envelope
// ({"error": {"code", "message", "retryAfter"}}) as the backends, so
// clients see one error contract no matter which layer refused them.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		method, path, cut := strings.Cut(pattern, " ")
		if !cut {
			path, method = method, ""
		}
		prefix := method + " "
		if method == "" {
			prefix = ""
		}
		mux.HandleFunc(prefix+"/v1"+path, h)
		mux.HandleFunc(pattern, deprecated(h))
	}
	route("POST /sessions", rt.create)
	route("GET /sessions", rt.listSessions)
	route("/sessions/{id}", rt.proxySession)
	route("/sessions/{id}/{rest...}", rt.proxySession)
	route("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, rt.AggregateHealth())
	})
	route("GET /metrics", rt.metrics)
	route("GET /fleet", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, rt.Fleet())
	})
	route("POST /fleet/join", rt.fleetJoin)
	route("POST /fleet/leave", rt.fleetLeave)
	return rt.traced(mux)
}

// traced wraps the router mux with the fleet's trace boundary: a valid
// X-Factcheck-Trace on the inbound request is honored, anything else is
// replaced with a freshly minted id. The id is stamped back into
// r.Header — which is exactly what send forwards to the backend, so the
// proxy hop carries it for free — and onto the response before the
// handler runs, then every request is structured-logged with it (warn
// with the envelope code for 4xx/5xx, debug otherwise).
func (rt *Router) traced(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace := r.Header.Get(obs.TraceHeader)
		if !obs.ValidTraceID(trace) {
			trace = obs.NewTraceID()
		}
		r.Header.Set(obs.TraceHeader, trace)
		w.Header().Set(obs.TraceHeader, trace)
		sw := &traceWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		attrs := []slog.Attr{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.String("trace", trace),
		}
		if sw.status >= 400 {
			attrs = append(attrs, slog.String("code", sw.errCode))
			rt.log.LogAttrs(r.Context(), slog.LevelWarn, "request failed", attrs...)
			return
		}
		rt.log.LogAttrs(r.Context(), slog.LevelDebug, "request served", attrs...)
	})
}

// traceWriter records the status and envelope error code a handler
// writes, for the trace middleware's structured log line. SetErrorCode
// is the interface service.WriteError feeds the code through.
type traceWriter struct {
	http.ResponseWriter
	status  int
	errCode string
}

func (tw *traceWriter) WriteHeader(status int) {
	tw.status = status
	tw.ResponseWriter.WriteHeader(status)
}

func (tw *traceWriter) SetErrorCode(code string) { tw.errCode = code }

// metrics serves the fleet-aggregated scrape: the single-server JSON
// shape by default, Prometheus text exposition with
// ?format=prometheus. The Prometheus view is the backend renderer over
// the merged fleet snapshot (every series labeled backend="fleet")
// plus the router's own placement series.
func (rt *Router) metrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") != "prometheus" {
		writeJSON(w, http.StatusOK, rt.AggregateMetrics(r.URL.Query().Get("buckets") != ""))
		return
	}
	m := rt.AggregateMetrics(true)
	fs := rt.Fleet()
	up := 0
	for _, b := range fs.Backends {
		if b.Up {
			up++
		}
	}
	var e obs.Expo
	labels := obs.Labels{{"backend", "fleet"}}
	e.Counter("factcheck_migrations_total", "Completed session migrations since router boot.", labels, float64(rt.Migrations()))
	e.Gauge("factcheck_ring_members", "Backends currently on the placement ring.", labels, float64(len(fs.RingMembers)))
	e.Gauge("factcheck_backends_up", "Registered backends answering probes.", labels, float64(up))
	e.Gauge("factcheck_backends_known", "Registered backends, up or down.", labels, float64(len(fs.Backends)))
	e.Gauge("factcheck_sessions_migrating", "Sessions currently mid-migration.", labels, float64(fs.Migrating))
	w.Header().Set("Content-Type", obs.ContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(service.PromText(m))
	_, _ = w.Write(e.Bytes())
}

// deprecated stamps the RFC 8594-style deprecation headers on a legacy
// unversioned route, mirroring the execution layer's aliases.
func deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "</v1"+r.URL.Path+`>; rel="successor-version"`)
		h(w, r)
	}
}

// create handles POST /sessions. The router, not the backend, draws
// the session id: placement is a pure function of the id, so the id
// must exist before an owner can be chosen. The chosen id is injected
// into the forwarded body, which the execution layer honors
// (createPayload.ID), keeping the externally visible contract — POST
// returns the id you then address — identical to a single server.
func (rt *Router) create(w http.ResponseWriter, r *http.Request) {
	var body map[string]any
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		badRequest(w, err)
		return
	}
	if len(bytes.TrimSpace(raw)) == 0 {
		body = map[string]any{}
	} else if err := json.Unmarshal(raw, &body); err != nil {
		badRequest(w, err)
		return
	}
	id, _ := body["id"].(string)
	if id == "" {
		id = newID()
		body["id"] = id
	}
	if rt.isMigrating(id) {
		unavailable(w, service.CodeMigrating, "session is migrating")
		return
	}
	buf, err := json.Marshal(body)
	if err != nil {
		badRequest(w, err)
		return
	}
	// One re-resolve after a transport failure: marking the dead owner
	// down reshapes the ring, so the second resolve places the session
	// on a live backend.
	for attempt := 0; attempt < 2; attempt++ {
		b := rt.acquireOwner(id)
		if b == nil {
			unavailable(w, service.CodeNoBackends, "no backends in the fleet")
			return
		}
		// Shed-before-proxy: when the resolved owner's last probe reports
		// its overload controller shedding, refuse the create here with
		// the same 429 + Retry-After the backend would send, saving the
		// saturated member the proxy hop. Placement is pinned to the ring
		// owner, so routing around it would strand the session's id.
		if rt.shedding(b) {
			b.inflight.Done()
			tooManyRequests(w, "owner "+b.base+" is shedding load")
			return
		}
		resp, err := rt.send(b, r, "/v1/sessions", buf)
		if err != nil {
			b.inflight.Done()
			rt.markDown(b)
			continue
		}
		copyResponse(w, resp)
		b.inflight.Done()
		return
	}
	badGateway(w, "router: no backend could open the session")
}

// proxySession forwards one session request to the id's ring owner,
// buffering the body so the request can be replayed if the owner turns
// out to be dead. Mid-migration sessions answer 503 + Retry-After —
// the client-side retry rides the gap out. /export and /import are
// control-plane endpoints the router itself drives; proxying them
// would move sessions behind the placement layer's back.
func (rt *Router) proxySession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rest := r.PathValue("rest")
	if rest == "export" || rest == "import" {
		badRequest(w, errors.New("router: export/import are migration internals; drive migrations via /fleet"))
		return
	}
	if rt.isMigrating(id) {
		unavailable(w, service.CodeMigrating, "session is migrating")
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		badRequest(w, err)
		return
	}
	// Backends are always addressed through the canonical /v1 surface:
	// a legacy-path request is normalized here, so the proxy hop never
	// relies on the backends' own deprecated aliases.
	uri := r.URL.RequestURI()
	if !strings.HasPrefix(uri, "/v1/") {
		uri = "/v1" + uri
	}
	prev := ""
	for attempt := 0; attempt < 3; attempt++ {
		b := rt.ownerBackend(id)
		if b == nil {
			unavailable(w, service.CodeNoBackends, "no backends in the fleet")
			return
		}
		if b.base == prev {
			break
		}
		prev = b.base
		resp, err := rt.send(b, r, uri, body)
		if err != nil {
			// The owner is unreachable: take it out of the ring and
			// re-resolve. With a shared store the new owner revives the
			// session from the record the WAL kept current; the PR-5
			// answer idempotency absorbs a request the dead owner
			// applied but never acknowledged.
			rt.markDown(b)
			prev = ""
			continue
		}
		if resp.StatusCode == http.StatusGone {
			// The backend exported this session: a migration completed
			// between our flag check and the forward. Re-resolving now
			// sees the post-migration ring and finds the new owner.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if rt.isMigrating(id) {
				unavailable(w, service.CodeMigrating, "session is migrating")
				return
			}
			continue
		}
		copyResponse(w, resp)
		return
	}
	badGateway(w, "router: no reachable owner for the session")
}

// listSessions aggregates GET /sessions across the fleet. Stored
// records are deduplicated: with a shared store every backend lists
// the same ones.
func (rt *Router) listSessions(w http.ResponseWriter, _ *http.Request) {
	live := map[string]bool{}
	stored := map[string]bool{}
	for _, b := range rt.upBackends() {
		sl, err := b.client.Sessions()
		if err != nil {
			continue
		}
		for _, id := range sl.Live {
			live[id] = true
		}
		for _, id := range sl.Stored {
			stored[id] = true
		}
	}
	out := struct {
		Live   []string `json:"live"`
		Stored []string `json:"stored"`
	}{Live: []string{}, Stored: []string{}}
	for id := range live {
		out.Live = append(out.Live, id)
	}
	for id := range stored {
		if !live[id] {
			out.Stored = append(out.Stored, id)
		}
	}
	sort.Strings(out.Live)
	sort.Strings(out.Stored)
	writeJSON(w, http.StatusOK, out)
}

type fleetRequest struct {
	URL string `json:"url"`
}

func (rt *Router) fleetJoin(w http.ResponseWriter, r *http.Request) {
	var req fleetRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.URL == "" {
		badRequest(w, errors.New(`router: body must be {"url": "http://backend"}`))
		return
	}
	if err := rt.Join(req.URL); err != nil {
		badGateway(w, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, rt.Fleet())
}

func (rt *Router) fleetLeave(w http.ResponseWriter, r *http.Request) {
	var req fleetRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.URL == "" {
		badRequest(w, errors.New(`router: body must be {"url": "http://backend"}`))
		return
	}
	if err := rt.Leave(req.URL); err != nil {
		badGateway(w, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, rt.Fleet())
}

// isMigrating reports whether id is mid-migration.
func (rt *Router) isMigrating(id string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.migrating[id]
}

// ownerBackend resolves id's ring owner to its backend.
func (rt *Router) ownerBackend(id string) *backend {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	base, ok := rt.ring.Owner(id)
	if !ok {
		return nil
	}
	return rt.backends[base]
}

// acquireOwner resolves id's owner and registers an in-flight create
// against it under the same lock, closing the race between a create's
// placement decision and a concurrent drain's ring flip (the drain
// waits for in-flight creates before its final sweep). The caller must
// call inflight.Done.
func (rt *Router) acquireOwner(id string) *backend {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	base, ok := rt.ring.Owner(id)
	if !ok {
		return nil
	}
	b := rt.backends[base]
	if b != nil {
		b.inflight.Add(1)
	}
	return b
}

// send forwards the request's method and body to one backend.
func (rt *Router) send(b *backend, r *http.Request, uri string, body []byte) (*http.Response, error) {
	req, err := http.NewRequest(r.Method, b.base+uri, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	} else if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	// The trace middleware normalized the inbound trace id into
	// r.Header, so forwarding it threads one id through the proxy hop:
	// the backend's span ring and logs carry the id the client saw.
	if trace := r.Header.Get(obs.TraceHeader); trace != "" {
		req.Header.Set(obs.TraceHeader, trace)
	}
	return rt.hc.Do(req)
}

// copyResponse relays a backend response: status, the headers that
// matter to this API (content type, the Retry-After backpressure hint,
// and the trace id — the backend echoes the one the router forwarded),
// and the body.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After", obs.TraceHeader} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// unavailable answers 503 + Retry-After with a router-originated
// envelope code (session_migrating, no_backends); the service client
// honors the hint.
func unavailable(w http.ResponseWriter, code, why string) {
	service.WriteError(w, http.StatusServiceUnavailable, code, "router: "+why, 1)
}

// tooManyRequests answers 429 with the Retry-After hint, mirroring the
// execution layer's admission-control rejection (same "shedding" code:
// to the client it is the same condition, observed one hop earlier).
func tooManyRequests(w http.ResponseWriter, why string) {
	service.WriteError(w, http.StatusTooManyRequests, service.CodeShedding, "router: "+why, 1)
}

func badRequest(w http.ResponseWriter, err error) {
	service.WriteError(w, http.StatusBadRequest, service.CodeBadRequest, err.Error(), 0)
}

func badGateway(w http.ResponseWriter, why string) {
	service.WriteError(w, http.StatusBadGateway, service.CodeBadGateway, why, 0)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
