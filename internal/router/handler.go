package router

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sort"
)

// Handler returns the router's HTTP handler: the single-server session
// API proxied to ring owners, the fleet aggregates of /healthz and
// /metrics, and the /fleet control plane. A service.Client, the
// workload harness, and every smoke script drive it exactly as they
// drive one factcheck-server.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", rt.create)
	mux.HandleFunc("GET /sessions", rt.listSessions)
	mux.HandleFunc("/sessions/{id}", rt.proxySession)
	mux.HandleFunc("/sessions/{id}/{rest...}", rt.proxySession)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, rt.AggregateHealth())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, rt.AggregateMetrics(r.URL.Query().Get("buckets") != ""))
	})
	mux.HandleFunc("GET /fleet", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, rt.Fleet())
	})
	mux.HandleFunc("POST /fleet/join", rt.fleetJoin)
	mux.HandleFunc("POST /fleet/leave", rt.fleetLeave)
	return mux
}

// create handles POST /sessions. The router, not the backend, draws
// the session id: placement is a pure function of the id, so the id
// must exist before an owner can be chosen. The chosen id is injected
// into the forwarded body, which the execution layer honors
// (createPayload.ID), keeping the externally visible contract — POST
// returns the id you then address — identical to a single server.
func (rt *Router) create(w http.ResponseWriter, r *http.Request) {
	var body map[string]any
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(bytes.TrimSpace(raw)) == 0 {
		body = map[string]any{}
	} else if err := json.Unmarshal(raw, &body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, _ := body["id"].(string)
	if id == "" {
		id = newID()
		body["id"] = id
	}
	if rt.isMigrating(id) {
		unavailable(w, "session is migrating")
		return
	}
	buf, err := json.Marshal(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// One re-resolve after a transport failure: marking the dead owner
	// down reshapes the ring, so the second resolve places the session
	// on a live backend.
	for attempt := 0; attempt < 2; attempt++ {
		b := rt.acquireOwner(id)
		if b == nil {
			unavailable(w, "no backends in the fleet")
			return
		}
		// Shed-before-proxy: when the resolved owner's last probe reports
		// its overload controller shedding, refuse the create here with
		// the same 429 + Retry-After the backend would send, saving the
		// saturated member the proxy hop. Placement is pinned to the ring
		// owner, so routing around it would strand the session's id.
		if rt.shedding(b) {
			b.inflight.Done()
			tooManyRequests(w, "owner "+b.base+" is shedding load")
			return
		}
		resp, err := rt.send(b, r, "/sessions", buf)
		if err != nil {
			b.inflight.Done()
			rt.markDown(b)
			continue
		}
		copyResponse(w, resp)
		b.inflight.Done()
		return
	}
	writeError(w, http.StatusBadGateway, errors.New("router: no backend could open the session"))
}

// proxySession forwards one session request to the id's ring owner,
// buffering the body so the request can be replayed if the owner turns
// out to be dead. Mid-migration sessions answer 503 + Retry-After —
// the client-side retry rides the gap out. /export and /import are
// control-plane endpoints the router itself drives; proxying them
// would move sessions behind the placement layer's back.
func (rt *Router) proxySession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rest := r.PathValue("rest")
	if rest == "export" || rest == "import" {
		writeError(w, http.StatusBadRequest,
			errors.New("router: export/import are migration internals; drive migrations via /fleet"))
		return
	}
	if rt.isMigrating(id) {
		unavailable(w, "session is migrating")
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	prev := ""
	for attempt := 0; attempt < 3; attempt++ {
		b := rt.ownerBackend(id)
		if b == nil {
			unavailable(w, "no backends in the fleet")
			return
		}
		if b.base == prev {
			break
		}
		prev = b.base
		resp, err := rt.send(b, r, r.URL.RequestURI(), body)
		if err != nil {
			// The owner is unreachable: take it out of the ring and
			// re-resolve. With a shared store the new owner revives the
			// session from the record the WAL kept current; the PR-5
			// answer idempotency absorbs a request the dead owner
			// applied but never acknowledged.
			rt.markDown(b)
			prev = ""
			continue
		}
		if resp.StatusCode == http.StatusGone {
			// The backend exported this session: a migration completed
			// between our flag check and the forward. Re-resolving now
			// sees the post-migration ring and finds the new owner.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if rt.isMigrating(id) {
				unavailable(w, "session is migrating")
				return
			}
			continue
		}
		copyResponse(w, resp)
		return
	}
	writeError(w, http.StatusBadGateway, errors.New("router: no reachable owner for the session"))
}

// listSessions aggregates GET /sessions across the fleet. Stored
// records are deduplicated: with a shared store every backend lists
// the same ones.
func (rt *Router) listSessions(w http.ResponseWriter, _ *http.Request) {
	live := map[string]bool{}
	stored := map[string]bool{}
	for _, b := range rt.upBackends() {
		sl, err := b.client.Sessions()
		if err != nil {
			continue
		}
		for _, id := range sl.Live {
			live[id] = true
		}
		for _, id := range sl.Stored {
			stored[id] = true
		}
	}
	out := struct {
		Live   []string `json:"live"`
		Stored []string `json:"stored"`
	}{Live: []string{}, Stored: []string{}}
	for id := range live {
		out.Live = append(out.Live, id)
	}
	for id := range stored {
		if !live[id] {
			out.Stored = append(out.Stored, id)
		}
	}
	sort.Strings(out.Live)
	sort.Strings(out.Stored)
	writeJSON(w, http.StatusOK, out)
}

type fleetRequest struct {
	URL string `json:"url"`
}

func (rt *Router) fleetJoin(w http.ResponseWriter, r *http.Request) {
	var req fleetRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.URL == "" {
		writeError(w, http.StatusBadRequest, errors.New(`router: body must be {"url": "http://backend"}`))
		return
	}
	if err := rt.Join(req.URL); err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, rt.Fleet())
}

func (rt *Router) fleetLeave(w http.ResponseWriter, r *http.Request) {
	var req fleetRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.URL == "" {
		writeError(w, http.StatusBadRequest, errors.New(`router: body must be {"url": "http://backend"}`))
		return
	}
	if err := rt.Leave(req.URL); err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, rt.Fleet())
}

// isMigrating reports whether id is mid-migration.
func (rt *Router) isMigrating(id string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.migrating[id]
}

// ownerBackend resolves id's ring owner to its backend.
func (rt *Router) ownerBackend(id string) *backend {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	base, ok := rt.ring.Owner(id)
	if !ok {
		return nil
	}
	return rt.backends[base]
}

// acquireOwner resolves id's owner and registers an in-flight create
// against it under the same lock, closing the race between a create's
// placement decision and a concurrent drain's ring flip (the drain
// waits for in-flight creates before its final sweep). The caller must
// call inflight.Done.
func (rt *Router) acquireOwner(id string) *backend {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	base, ok := rt.ring.Owner(id)
	if !ok {
		return nil
	}
	b := rt.backends[base]
	if b != nil {
		b.inflight.Add(1)
	}
	return b
}

// send forwards the request's method and body to one backend.
func (rt *Router) send(b *backend, r *http.Request, uri string, body []byte) (*http.Response, error) {
	req, err := http.NewRequest(r.Method, b.base+uri, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	} else if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	return rt.hc.Do(req)
}

// copyResponse relays a backend response: status, the headers that
// matter to this API (content type and the Retry-After backpressure
// hint), and the body.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// unavailable answers 503 with the Retry-After hint the service client
// honors.
func unavailable(w http.ResponseWriter, why string) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, errors.New("router: "+why))
}

// tooManyRequests answers 429 with the Retry-After hint, mirroring the
// execution layer's admission-control rejection.
func tooManyRequests(w http.ResponseWriter, why string) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests, errors.New("router: "+why))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
