package router

import (
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"factcheck/internal/persist"
	"factcheck/internal/service"
)

// fastOpen keeps test inference cheap; migration correctness is about
// the placement protocol, and determinism holds at any budget.
func fastOpen(seed int64) service.OpenRequest {
	return service.OpenRequest{
		Profile:       "wiki",
		Scale:         0.1,
		Seed:          seed,
		CandidatePool: 6,
		Communities:   3,
		EM: &service.EMBudgets{
			BurnIn: 4, Samples: 8, IncBurnIn: 2, IncSamples: 4,
			EMIters: 1, HypoBurn: 1, HypoSamples: 2,
		},
	}
}

// fleetBackend is one test backend: its manager (for white-box
// assertions) and its HTTP server.
type fleetBackend struct {
	manager *service.Manager
	srv     *httptest.Server
}

// newFleet boots n backends (each with the given store) and a router
// over them, all torn down with the test.
func newFleet(t *testing.T, n int, storeFor func(i int) persist.Store) (*Router, *service.Client, []*fleetBackend) {
	t.Helper()
	rt := New(Config{
		ProbeInterval: time.Hour, // probes off: tests drive failure via the proxy path
		Logf:          t.Logf,
	})
	t.Cleanup(rt.Close)
	backends := make([]*fleetBackend, n)
	for i := 0; i < n; i++ {
		var store persist.Store
		if storeFor != nil {
			store = storeFor(i)
		}
		m := service.NewManager(service.Config{Workers: 2, Store: store})
		srv := httptest.NewServer(service.NewServer(m).Handler())
		t.Cleanup(func() { srv.Close(); m.Shutdown() })
		backends[i] = &fleetBackend{manager: m, srv: srv}
		if err := rt.Join(srv.URL); err != nil {
			t.Fatalf("join backend %d: %v", i, err)
		}
	}
	rsrv := httptest.NewServer(rt.Handler())
	t.Cleanup(rsrv.Close)
	return rt, service.NewClient(rsrv.URL), backends
}

// byBase finds the fleetBackend behind a base URL.
func byBase(t *testing.T, backends []*fleetBackend, base string) *fleetBackend {
	t.Helper()
	for _, b := range backends {
		if b.srv.URL == base {
			return b
		}
	}
	t.Fatalf("no backend with base %s", base)
	return nil
}

// driveOracle answers n oracle steps through the client, echoing each
// NextResponse.Seq for idempotency, and returns the last state.
func driveOracle(t *testing.T, c *service.Client, id string, n int) service.StateResponse {
	t.Helper()
	var st service.StateResponse
	for i := 0; i < n; i++ {
		next, err := c.Next(id, 1)
		if err != nil {
			t.Fatalf("next %d: %v", i, err)
		}
		if next.Done {
			break
		}
		seq := next.Seq
		st, err = c.Answer(id, service.AnswerRequest{
			Claim: next.Candidates[0].Claim, Oracle: true, Seq: &seq,
		})
		if err != nil {
			t.Fatalf("answer %d: %v", i, err)
		}
		if st.Done {
			break
		}
	}
	return st
}

// libraryTrace runs the same session in-process — the single-server
// library path — and returns its transcript after n oracle answers.
func libraryTrace(t *testing.T, req service.OpenRequest, n int) service.SessionSnapshot {
	t.Helper()
	m := service.NewManager(service.Config{Workers: 2})
	defer m.Shutdown()
	info, err := m.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		next, err := m.Next(info.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		if next.Done {
			break
		}
		seq := next.Seq
		st, err := m.Answer(info.ID, service.AnswerRequest{
			Claim: next.Candidates[0].Claim, Oracle: true, Seq: &seq,
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.Done {
			break
		}
	}
	snap, err := m.Snapshot(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestDrainMigrationTraceBitIdentical is the tentpole acceptance test:
// a session opened through the router, migrated mid-elicitation by
// draining the backend that owns it, must produce a selection trace
// bit-identical to the single-server library path.
func TestDrainMigrationTraceBitIdentical(t *testing.T) {
	rt, client, backends := newFleet(t, 3, nil)
	req := fastOpen(42)
	info, err := client.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	id := info.ID

	const before, after = 3, 3
	driveOracle(t, client, id, before)

	ownerBase, ok := rt.Owner(id)
	if !ok {
		t.Fatal("no owner")
	}
	owner := byBase(t, backends, ownerBase)
	if err := rt.Leave(ownerBase); err != nil {
		t.Fatalf("drain: %v", err)
	}
	newOwnerBase, ok := rt.Owner(id)
	if !ok || newOwnerBase == ownerBase {
		t.Fatalf("session still owned by the drained backend (%s)", newOwnerBase)
	}
	// The old copy must be tombstoned: the drained backend keeps no
	// record (private stores here, so the tombstone is a real delete).
	if sl, err := owner.manager.Sessions(); err != nil || len(sl.Live)+len(sl.Stored) != 0 {
		t.Fatalf("drained backend still holds sessions: %+v (err %v)", sl, err)
	}

	driveOracle(t, client, id, after)

	got, err := client.Snapshot(id)
	if err != nil {
		t.Fatal(err)
	}
	want := libraryTrace(t, req, before+after)
	if !reflect.DeepEqual(got.Elicitations, want.Elicitations) {
		t.Fatalf("trace diverged across migration:\nserved:  %+v\nlibrary: %+v", got.Elicitations, want.Elicitations)
	}
	if len(got.Elicitations) == 0 {
		t.Fatal("vacuous: no elicitations driven")
	}
}

// TestMigrationRacedAgainstAnswer pins the nastiest interleaving: an
// answer is applied by the old owner but its response is lost, the
// session migrates, and the client retries the same answer (same seq)
// against the new owner. The seq idempotency must recognize the replay
// from the migrated transcript itself and not double-apply.
func TestMigrationRacedAgainstAnswer(t *testing.T) {
	rt, client, backends := newFleet(t, 3, nil)
	req := fastOpen(17)
	info, err := client.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	id := info.ID
	driveOracle(t, client, id, 2)

	next, err := client.Next(id, 1)
	if err != nil {
		t.Fatal(err)
	}
	seq := next.Seq
	racedReq := service.AnswerRequest{Claim: next.Candidates[0].Claim, Oracle: true, Seq: &seq}

	// The answer lands on the owner, but the response never reaches the
	// client (applied directly on the owning manager to model the lost
	// response).
	ownerBase, _ := rt.Owner(id)
	owner := byBase(t, backends, ownerBase)
	if _, err := owner.manager.Answer(id, racedReq); err != nil {
		t.Fatalf("raced answer: %v", err)
	}
	applied, err := owner.manager.Snapshot(id)
	if err != nil {
		t.Fatal(err)
	}

	// The session migrates before the client can retry.
	if err := rt.Leave(ownerBase); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The retry must succeed (not 409) and must not double-apply.
	st, err := client.Answer(id, racedReq)
	if err != nil {
		t.Fatalf("retried answer after migration: %v", err)
	}
	if st.ID != id {
		t.Fatalf("retry answered for %q", st.ID)
	}
	got, err := client.Snapshot(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Elicitations, applied.Elicitations) {
		t.Fatalf("retry changed the transcript:\nbefore: %+v\nafter:  %+v", applied.Elicitations, got.Elicitations)
	}

	// And the trace must still match the library path end to end.
	driveOracle(t, client, id, 2)
	final, err := client.Snapshot(id)
	if err != nil {
		t.Fatal(err)
	}
	want := libraryTrace(t, req, 2+1+2)
	if !reflect.DeepEqual(final.Elicitations, want.Elicitations) {
		t.Fatalf("trace diverged:\nserved:  %+v\nlibrary: %+v", final.Elicitations, want.Elicitations)
	}
}

// TestAnswersConcurrentWithDrain drives answers (with the Retry-After
// client policy) while the owning backend drains. The 503 + Retry-After
// protocol must make the migration invisible to the caller, and the
// trace must stay on the library path.
func TestAnswersConcurrentWithDrain(t *testing.T) {
	rt, client, _ := newFleet(t, 3, nil)
	client.Retry = &service.RetryPolicy{MaxAttempts: 8, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: 3}
	req := fastOpen(23)
	info, err := client.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	id := info.ID
	driveOracle(t, client, id, 1)

	ownerBase, _ := rt.Owner(id)
	var wg sync.WaitGroup
	wg.Add(1)
	var drainErr error
	go func() {
		defer wg.Done()
		drainErr = rt.Leave(ownerBase)
	}()
	const total = 5
	driveOracle(t, client, id, total-1)
	wg.Wait()
	if drainErr != nil {
		t.Fatalf("drain: %v", drainErr)
	}

	got, err := client.Snapshot(id)
	if err != nil {
		t.Fatal(err)
	}
	want := libraryTrace(t, req, total)
	if !reflect.DeepEqual(got.Elicitations, want.Elicitations) {
		t.Fatalf("trace diverged under a concurrent drain:\nserved:  %+v\nlibrary: %+v", got.Elicitations, want.Elicitations)
	}
}

// TestFailoverAfterBackendDeath models the SIGKILL case router-smoke
// exercises end to end: backends share one durable store, the owner
// dies without warning, and the router reroutes to a backend that
// revives the session from the write-ahead log — trace unbroken.
func TestFailoverAfterBackendDeath(t *testing.T) {
	dir := t.TempDir()
	rt, client, backends := newFleet(t, 3, func(int) persist.Store {
		fs, err := persist.NewFileStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		return fs
	})
	req := fastOpen(99)
	info, err := client.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	id := info.ID
	driveOracle(t, client, id, 3)

	ownerBase, _ := rt.Owner(id)
	owner := byBase(t, backends, ownerBase)
	owner.srv.CloseClientConnections()
	owner.srv.Close()

	// The next request hits the dead owner, which the router marks down
	// and reroutes; the new owner revives the session from the shared
	// store.
	driveOracle(t, client, id, 3)
	if newOwner, ok := rt.Owner(id); !ok || newOwner == ownerBase {
		t.Fatalf("owner after death = %q, %v", newOwner, ok)
	}

	got, err := client.Snapshot(id)
	if err != nil {
		t.Fatal(err)
	}
	want := libraryTrace(t, req, 6)
	if !reflect.DeepEqual(got.Elicitations, want.Elicitations) {
		t.Fatalf("trace diverged across the failover:\nserved:  %+v\nlibrary: %+v", got.Elicitations, want.Elicitations)
	}
}

// TestJoinRebalancesMisplacedSessions: adding a backend migrates the
// sessions the new ring maps to it, and the fleet view reflects the
// join.
func TestJoinRebalancesMisplacedSessions(t *testing.T) {
	rt, client, _ := newFleet(t, 2, nil)

	// Open a handful of sessions so at least one remaps when a third
	// backend joins (64 vnodes give the new member ~1/3 of the space).
	ids := make([]string, 0, 4)
	req := fastOpen(5)
	for i := 0; i < 4; i++ {
		r := req
		r.Seed = int64(100 + i)
		info, err := client.Open(r)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
		driveOracle(t, client, info.ID, 1)
	}

	m := service.NewManager(service.Config{Workers: 2})
	srv := httptest.NewServer(service.NewServer(m).Handler())
	t.Cleanup(func() { srv.Close(); m.Shutdown() })
	if err := rt.Join(srv.URL); err != nil {
		t.Fatalf("join: %v", err)
	}

	onNew := 0
	for _, id := range ids {
		owner, ok := rt.Owner(id)
		if !ok {
			t.Fatalf("no owner for %s", id)
		}
		if owner == srv.URL {
			onNew++
		}
		// Every session must still answer wherever it landed.
		if _, err := client.State(id, false); err != nil {
			t.Fatalf("state of %s after rebalance: %v", id, err)
		}
	}
	t.Logf("rebalance moved %d/%d sessions to the new backend", onNew, len(ids))

	fs := rt.Fleet()
	if len(fs.Backends) != 3 || len(fs.RingMembers) != 3 {
		t.Fatalf("fleet after join: %+v", fs)
	}
	if fs.Migrating != 0 {
		t.Fatalf("migrating flags leaked: %+v", fs)
	}
}

// TestAggregateMetricsAndHealth: the router's /metrics and /healthz
// must present the fleet in the single-server shapes, with counters
// summed across members and per-endpoint attribution intact.
func TestAggregateMetricsAndHealth(t *testing.T) {
	_, client, _ := newFleet(t, 2, nil)
	req := fastOpen(3)
	info, err := client.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	driveOracle(t, client, info.ID, 2)

	m, err := client.Metrics(true)
	if err != nil {
		t.Fatal(err)
	}
	if m.AnswersServed != 2 {
		t.Fatalf("fleet answersServed = %d, want 2", m.AnswersServed)
	}
	if m.SessionsOpened != 1 {
		t.Fatalf("fleet sessionsOpened = %d, want 1", m.SessionsOpened)
	}
	if m.AnswerLatency.Count != 2 || len(m.AnswerLatencyBuckets) == 0 {
		t.Fatalf("fleet latency histogram not aggregated: %+v", m.AnswerLatency)
	}
	if m.Endpoints["answer"].Requests != 2 || m.Endpoints["open"].Requests != 1 {
		t.Fatalf("fleet endpoint counters: %+v", m.Endpoints)
	}
	h, err := client.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Sessions != 1 {
		t.Fatalf("fleet health sessions = %d, want 1", h.Sessions)
	}
}
