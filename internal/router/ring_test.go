package router

import (
	"fmt"
	"testing"
)

func TestRingOwnerDeterministic(t *testing.T) {
	a := NewRing(64)
	b := NewRing(64)
	for _, m := range []string{"http://a", "http://b", "http://c"} {
		a.Add(m)
		b.Add(m)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("session-%d", i)
		oa, ok := a.Owner(key)
		if !ok {
			t.Fatal("no owner on a populated ring")
		}
		if ob, _ := b.Owner(key); ob != oa {
			t.Fatalf("two rings with identical members disagree on %q: %s vs %s", key, oa, ob)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(64)
	members := []string{"http://a", "http://b", "http://c"}
	for _, m := range members {
		r.Add(m)
	}
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		o, _ := r.Owner(fmt.Sprintf("session-%d", i))
		counts[o]++
	}
	for _, m := range members {
		share := float64(counts[m]) / n
		if share < 0.15 || share > 0.55 {
			t.Errorf("member %s owns %.0f%% of keys; want a roughly even split (counts: %v)", m, 100*share, counts)
		}
	}
}

// TestRingConsistency is the property the ring exists for: removing a
// member moves only that member's keys, and adding it back restores
// the exact previous placement.
func TestRingConsistency(t *testing.T) {
	r := NewRing(64)
	for _, m := range []string{"http://a", "http://b", "http://c"} {
		r.Add(m)
	}
	before := map[string]string{}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("session-%d", i)
		before[key], _ = r.Owner(key)
	}
	r.Remove("http://b")
	moved := 0
	for key, prev := range before {
		now, ok := r.Owner(key)
		if !ok {
			t.Fatal("no owner after removal")
		}
		if now == "http://b" {
			t.Fatalf("removed member still owns %q", key)
		}
		if prev != "http://b" && now != prev {
			t.Fatalf("key %q moved from %s to %s although its owner never left", key, prev, now)
		}
		if prev == "http://b" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("test is vacuous: the removed member owned no keys")
	}
	r.Add("http://b")
	for key, prev := range before {
		if now, _ := r.Owner(key); now != prev {
			t.Fatalf("key %q not restored to %s after re-adding the member (got %s)", key, prev, now)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Owner("x"); ok {
		t.Fatal("empty ring reported an owner")
	}
	r.Add("http://only")
	if o, ok := r.Owner("x"); !ok || o != "http://only" {
		t.Fatalf("single-member ring: owner = %q, %v", o, ok)
	}
	if got := r.Len(); got != 1 {
		t.Fatalf("Len = %d", got)
	}
}

// TestRingSequentialIDSpread: an id family differing only in a
// trailing counter must split across members. Raw FNV-1a fails this —
// nearby keys hash into a tight cluster, so for some member pairs an
// entire sequential family landed on one backend (and the ghost-id
// searches in the handler tests flaked); the avalanche finalizer in
// ringHash is what this pins.
func TestRingSequentialIDSpread(t *testing.T) {
	for port := 32768; port < 60000; port += 7 {
		r := NewRing(0)
		a := fmt.Sprintf("http://127.0.0.1:%d", port)
		b := fmt.Sprintf("http://127.0.0.1:%d", port+100)
		r.Add(a)
		r.Add(b)
		na := 0
		for i := 0; i < 256; i++ {
			if o, _ := r.Owner(fmt.Sprintf("ghost-%d", i)); o == a {
				na++
			}
		}
		if na == 0 || na == 256 {
			t.Fatalf("members %s/%s: all 256 sequential ids on one member", a, b)
		}
	}
}
