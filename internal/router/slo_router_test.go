package router

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"factcheck/internal/service"
)

// shedSLOConfig is a controller the test can walk to shedding with two
// direct observations: single-sample windows, one-evaluation streaks,
// and a recovery horizon past the test.
func shedSLOConfig() service.SLOConfig {
	return service.SLOConfig{
		P99:           0.001,
		WindowSeconds: 1,
		Slots:         2,
		MinSamples:    1,
		DegradeAfter:  1,
		ShedAfter:     1,
		RecoverAfter:  1_000_000,
	}
}

// primeShedding walks m's controller to the shedding rung with explicit
// far-future virtual timestamps, so the manager's own wall-clock
// evaluations stay inside the last cadence and cannot step it back
// down for the duration of the test.
func primeShedding(t *testing.T, m *service.Manager) {
	t.Helper()
	c := m.Controller()
	if c == nil {
		t.Fatal("backend has no controller")
	}
	c.ObserveAnswer(100, 1.0, 0) // breach -> degraded
	c.ObserveAnswer(101, 1.0, 1) // fresh contention -> shedding
	if mode := m.ControllerMode(); mode != "shedding" {
		t.Fatalf("primed controller mode = %q, want shedding", mode)
	}
}

// TestRouterShedBeforeProxy: a create whose ring owner reports shedding
// is refused at the router with the backend's own 429 + Retry-After
// contract, without burning a proxy hop; creates owned by a healthy
// member still land.
func TestRouterShedBeforeProxy(t *testing.T) {
	rt := New(Config{ProbeInterval: time.Hour, Logf: t.Logf})
	t.Cleanup(rt.Close)

	overloaded := service.NewManager(service.Config{Workers: 2, SLO: shedSLOConfig()})
	healthy := service.NewManager(service.Config{Workers: 2})
	osrv := httptest.NewServer(service.NewServer(overloaded).Handler())
	hsrv := httptest.NewServer(service.NewServer(healthy).Handler())
	t.Cleanup(func() { osrv.Close(); overloaded.Shutdown(); hsrv.Close(); healthy.Shutdown() })

	if err := rt.Join(osrv.URL); err != nil {
		t.Fatal(err)
	}
	if err := rt.Join(hsrv.URL); err != nil {
		t.Fatal(err)
	}
	primeShedding(t, overloaded)
	rt.probeAll() // refresh the cached capacity view

	// Pick one id the ring pins to each backend.
	idFor := func(base string) string {
		for i := 0; i < 10_000; i++ {
			id := "sess-" + strings.Repeat("x", i%3) + time.Now().Format("150405") + "-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
			if owner, ok := rt.Owner(id); ok && owner == base {
				return id
			}
		}
		t.Fatalf("no id resolved to %s", base)
		return ""
	}

	rsrv := httptest.NewServer(rt.Handler())
	t.Cleanup(rsrv.Close)
	client := service.NewClient(rsrv.URL)

	// Create pinned to the shedding owner: refused at the router.
	shedID := idFor(osrv.URL)
	_, err := client.OpenAs(shedID, fastOpen(1))
	var apiErr *service.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("open on shedding owner: err = %v, want HTTP 429", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatal("router's 429 carries no Retry-After hint")
	}
	if !strings.Contains(apiErr.Message, "router:") {
		t.Fatalf("shed happened at the backend, not the router: %q", apiErr.Message)
	}
	if n := overloaded.Len(); n != 0 {
		t.Fatalf("shedding backend still received %d session(s)", n)
	}

	// Create pinned to the healthy owner: unaffected.
	okID := idFor(hsrv.URL)
	if _, err := client.OpenAs(okID, fastOpen(2)); err != nil {
		t.Fatalf("open on healthy owner: %v", err)
	}

	// The fleet view names the rung per member.
	var sawShedding, sawBare bool
	for _, b := range rt.Fleet().Backends {
		switch b.URL {
		case osrv.URL:
			sawShedding = b.ControllerMode == "shedding"
		case hsrv.URL:
			sawBare = b.ControllerMode == ""
		}
	}
	if !sawShedding {
		t.Fatal("fleet view does not report the shedding member")
	}
	if !sawBare {
		t.Fatal("fleet view invents a controller mode for a controller-less member")
	}

	// Fleet aggregates: health reports the worst rung, metrics merge the
	// controller counters.
	if h := rt.AggregateHealth(); h.ControllerMode != "shedding" {
		t.Fatalf("aggregate health controllerMode = %q, want shedding (worst rung)", h.ControllerMode)
	}
	agg := rt.AggregateMetrics(false)
	if agg.Controller == nil {
		t.Fatal("aggregate metrics dropped the controller status")
	}
	if agg.Controller.Mode != "shedding" {
		t.Fatalf("aggregate controller mode = %q, want shedding", agg.Controller.Mode)
	}
	if agg.Controller.Breaches == 0 {
		t.Fatal("aggregate controller lost the breach count")
	}
}
