package router

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"factcheck/internal/obs"
	"factcheck/internal/service"
	"factcheck/internal/stats"
)

// Config tunes a Router.
type Config struct {
	// VNodes is the virtual nodes per backend on the hash ring
	// (<=0 = 64).
	VNodes int
	// ProbeInterval is the health-probe period (<=0 = 2s).
	ProbeInterval time.Duration
	// FailAfter is the consecutive probe failures before a backend is
	// marked down and removed from the ring (<=0 = 2). A transport
	// error on a proxied request marks it down immediately — the proxy
	// has better evidence than the prober.
	FailAfter int
	// HTTPClient optionally overrides the transport used for proxying
	// and control calls (nil = a client with a 60s timeout, enough for
	// the slowest session open the profiles produce).
	HTTPClient *http.Client
	// Logf receives operational events: backends joining, leaving,
	// failing, sessions migrating (nil = silent). It predates Logger and
	// stays because operator tooling greps its exact lines.
	Logf func(format string, args ...any)
	// Logger receives structured request and migration logs (nil =
	// silent). Every proxied request is logged with its trace id, and
	// every 4xx/5xx with its envelope code.
	Logger *slog.Logger
}

// backend is one fleet member: its control client plus the placement
// layer's view of its health.
type backend struct {
	base   string
	client *service.Client
	// id is the backend's self-reported BackendID ("" = anonymous).
	id string
	// store is the backend's store location from /healthz; equal
	// non-empty locations mean shared records (see persist.Locator).
	store string
	down  bool
	fails int
	// health is the last successful probe's payload, for the fleet
	// view.
	health service.Health
	// inflight tracks create requests targeted at this backend, so a
	// drain can wait for the create/ring race to settle before its
	// final straggler sweep.
	inflight sync.WaitGroup
}

// Router is the placement layer: a consistent-hash ring over a
// registry of factcheck-server backends. It serves the single-server
// HTTP API (see Handler) plus a /fleet control plane, and owns session
// migration. All exported methods are safe for concurrent use.
type Router struct {
	cfg  Config
	hc   *http.Client
	logf func(format string, args ...any)
	log  *slog.Logger

	// migrations counts completed session migrations since boot, for
	// the router's own Prometheus series.
	migrations atomic.Int64

	// opMu serializes control-plane operations (Join, Leave,
	// rebalances): concurrent topology changes would race their
	// migration plans. The data plane only takes mu.
	opMu sync.Mutex

	mu sync.Mutex
	// ring is the consistent-hash placement function over the live
	// member set. guarded by mu
	ring *Ring
	// guarded by mu
	backends map[string]*backend
	// migrating flags session ids whose export/import is in flight, so
	// the data plane 503s them instead of racing the move. guarded by mu
	migrating map[string]bool
	// guarded by mu
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// New returns a router with no backends and starts its health-probe
// loop. Close stops the loop.
func New(cfg Config) *Router {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 2
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 60 * time.Second}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	log := cfg.Logger
	if log == nil {
		log = obs.Discard()
	}
	rt := &Router{
		cfg:       cfg,
		hc:        hc,
		logf:      logf,
		log:       log,
		ring:      NewRing(cfg.VNodes),
		backends:  make(map[string]*backend),
		migrating: make(map[string]bool),
		stop:      make(chan struct{}),
	}
	rt.wg.Add(1)
	go rt.probeLoop()
	return rt
}

// Close stops the probe loop. Backends keep serving their sessions —
// closing the router abandons placement, not execution.
func (rt *Router) Close() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	rt.mu.Unlock()
	close(rt.stop)
	rt.wg.Wait()
}

// Join registers a backend and rebalances: sessions whose ring owner
// changed are migrated onto their new owners. The backend must answer
// a health probe first — joining an unreachable backend is refused
// rather than letting the ring route sessions into a black hole.
// Rejoining a down backend resets its health state.
func (rt *Router) Join(base string) error {
	base = strings.TrimRight(base, "/")
	if base == "" {
		return errors.New("router: empty backend URL")
	}
	rt.opMu.Lock()
	defer rt.opMu.Unlock()

	cl := &service.Client{BaseURL: base, HTTPClient: rt.hc}
	h, err := cl.Health()
	if err != nil {
		return fmt.Errorf("router: backend %s failed its join probe: %w", base, err)
	}
	id := base
	if m, err := cl.Metrics(false); err == nil && m.BackendID != "" {
		id = m.BackendID
	}

	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return errors.New("router: closed")
	}
	if b, ok := rt.backends[base]; ok && !b.down {
		rt.mu.Unlock()
		return fmt.Errorf("router: backend %s already joined", base)
	}
	rt.backends[base] = &backend{base: base, client: cl, id: id, store: h.Store, health: h}
	rt.ring.Add(base)
	rt.mu.Unlock()
	rt.logf("router: backend %s (%s) joined, %d in ring", base, id, rt.Ring().Len())
	rt.log.Info("backend joined", "backend", id, "url", base, "ring", rt.Ring().Len())

	rt.rebalance()
	return nil
}

// Leave drains a backend and removes it from the fleet: every session
// it owns is migrated to its new ring owner, with requests for a
// session mid-move answered 503 + Retry-After instead of being routed
// into the gap. The order matters — sessions are flagged before the
// ring flips, so no request can reach a new owner that does not hold
// the session yet.
func (rt *Router) Leave(base string) error {
	base = strings.TrimRight(base, "/")
	rt.opMu.Lock()
	defer rt.opMu.Unlock()

	rt.mu.Lock()
	b, ok := rt.backends[base]
	rt.mu.Unlock()
	if !ok {
		return fmt.Errorf("router: unknown backend %s", base)
	}

	// List before flipping the ring: the backend is still serving, and
	// we need the ids to flag.
	ids, err := rt.ownedSessions(b)
	if err != nil {
		return fmt.Errorf("router: cannot drain %s: %w", base, err)
	}

	rt.mu.Lock()
	for _, id := range ids {
		rt.migrating[id] = true
	}
	rt.ring.Remove(base)
	rt.mu.Unlock()
	rt.logf("router: draining backend %s (%s): %d session(s)", base, b.id, len(ids))

	// Creates that resolved their owner before the ring flipped may
	// still be in flight toward the leaving backend; wait for them so
	// the straggler sweep below sees everything.
	b.inflight.Wait()

	failures := rt.migrateAll(b, ids)

	// Straggler sweep: sessions created on b between our listing and
	// the ring flip. The ring no longer places anything on b, so a few
	// bounded rounds settle it.
	for round := 0; round < 5; round++ {
		more, err := rt.ownedSessions(b)
		if err != nil || len(more) == 0 {
			break
		}
		rt.mu.Lock()
		for _, id := range more {
			rt.migrating[id] = true
		}
		rt.mu.Unlock()
		failures += rt.migrateAll(b, more)
	}

	rt.mu.Lock()
	delete(rt.backends, base)
	rt.mu.Unlock()
	rt.logf("router: backend %s left, %d in ring", base, rt.Ring().Len())
	if failures > 0 {
		return fmt.Errorf("router: drained %s with %d failed migration(s); see router log", base, failures)
	}
	return nil
}

// ownedSessions lists the sessions pinned to b: its live ones, plus
// its stored records when no other fleet member shares b's store (with
// a shared store, stored records are reachable from every member and
// need no migration; with a private store, a stored record's only
// bytes live on b and must move with it).
func (rt *Router) ownedSessions(b *backend) ([]string, error) {
	sl, err := b.client.Sessions()
	if err != nil {
		return nil, err
	}
	rt.mu.Lock()
	shared := false
	for _, o := range rt.backends {
		if o.base != b.base && !o.down && o.store != "" && o.store == b.store {
			shared = true
			break
		}
	}
	rt.mu.Unlock()
	ids := sl.Live
	if !shared {
		ids = append(ids, sl.Stored...)
	}
	return ids, nil
}

// migrateAll migrates each id off b to its current ring owner,
// clearing the migrating flag as each settles. Returns the number of
// failed migrations (the sessions stay where rollback put them).
func (rt *Router) migrateAll(from *backend, ids []string) int {
	failures := 0
	for _, id := range ids {
		if err := rt.migrate(id, from); err != nil {
			failures++
			rt.logf("router: migrate %s off %s: %v", id, from.base, err)
		}
		rt.mu.Lock()
		delete(rt.migrating, id)
		rt.mu.Unlock()
	}
	return failures
}

// migrate moves one session from its current holder to its ring owner:
// export freezes the session on the source (its durable record stays
// behind as the rollback copy), import replays it on the destination,
// and the source copy is tombstoned — unless the two backends share a
// store, in which case the record the destination now serves from IS
// the source's record, and deleting it would destroy the session. On
// import failure the session is imported back onto the source, which
// clears its exported mark and re-lives it: a failed migration leaves
// the fleet exactly as it was.
//
// Every migration mints a trace id and drives all its control calls
// (export, import, rollback, tombstone) through clients stamping that
// id, so one grep across the fleet's logs reconstructs the move hop by
// hop. Fresh clients per migration because service.Client embeds
// atomics and must not be copied.
func (rt *Router) migrate(id string, from *backend) error {
	rt.mu.Lock()
	ownerBase, ok := rt.ring.Owner(id)
	to := rt.backends[ownerBase]
	rt.mu.Unlock()
	if !ok || to == nil {
		return fmt.Errorf("no remaining owner for session %s", id)
	}
	if to.base == from.base {
		return nil
	}
	trace := obs.NewTraceID()
	src := &service.Client{BaseURL: from.base, HTTPClient: rt.hc, Trace: trace, Logger: rt.log}
	dst := &service.Client{BaseURL: to.base, HTTPClient: rt.hc, Trace: trace, Logger: rt.log}
	snap, err := src.Export(id)
	if err != nil {
		if apiStatus(err) == http.StatusNotFound {
			return nil // deleted or idle-evicted concurrently; nothing to move
		}
		return fmt.Errorf("export: %w", err)
	}
	if _, err := dst.Import(id, snap); err != nil {
		if _, rb := src.Import(id, snap); rb != nil {
			rt.logf("router: ROLLBACK FAILED for %s on %s: %v (frozen in source store; re-import manually)", id, from.base, rb)
			rt.log.Error("migration rollback failed",
				"session", id, "backend", from.base, "trace", trace, "err", rb)
		}
		return fmt.Errorf("import on %s: %w", to.base, err)
	}
	if !(from.store != "" && from.store == to.store) {
		if err := src.Delete(id); err != nil && apiStatus(err) != http.StatusNotFound {
			rt.logf("router: tombstone of %s on %s failed: %v (stale rollback copy remains)", id, from.base, err)
		}
	}
	rt.migrations.Add(1)
	rt.logf("router: migrated session %s: %s -> %s (trace %s)", id, from.base, to.base, trace)
	rt.log.Info("session migrated",
		"session", id, "from", from.base, "to", to.base, "trace", trace)
	return nil
}

// Migrations reports completed session migrations since boot.
func (rt *Router) Migrations() int64 { return rt.migrations.Load() }

// rebalance reconciles placement with the current ring: any live
// session sitting on a backend the ring no longer maps it to is
// migrated to its owner. Runs after a Join; bounded rounds because
// each migration can race fresh creates.
func (rt *Router) rebalance() {
	for round := 0; round < 5; round++ {
		moved := 0
		for _, b := range rt.upBackends() {
			ids, err := rt.ownedSessions(b)
			if err != nil {
				rt.logf("router: rebalance: listing %s: %v", b.base, err)
				continue
			}
			var misplaced []string
			rt.mu.Lock()
			for _, id := range ids {
				if owner, ok := rt.ring.Owner(id); ok && owner != b.base {
					misplaced = append(misplaced, id)
					rt.migrating[id] = true
				}
			}
			rt.mu.Unlock()
			if len(misplaced) == 0 {
				continue
			}
			moved += len(misplaced)
			rt.migrateAll(b, misplaced)
		}
		if moved == 0 {
			return
		}
	}
}

// probeLoop drives the health probes.
func (rt *Router) probeLoop() {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

// probeAll probes every backend once. A down backend is probed but
// never auto-rejoined: it may hold live sessions the fleet has since
// revived elsewhere, and only an operator-driven Join (which
// rebalances) can reconcile that safely.
func (rt *Router) probeAll() {
	rt.mu.Lock()
	targets := make([]*backend, 0, len(rt.backends))
	for _, b := range rt.backends {
		targets = append(targets, b)
	}
	rt.mu.Unlock()
	for _, b := range targets {
		h, err := b.client.Health()
		rt.mu.Lock()
		if err != nil {
			b.fails++
			if !b.down && b.fails >= rt.cfg.FailAfter {
				b.down = true
				rt.ring.Remove(b.base)
				rt.logf("router: backend %s (%s) marked down after %d failed probe(s)", b.base, b.id, b.fails)
				rt.log.Warn("backend marked down", "backend", b.id, "url", b.base, "fails", b.fails, "cause", "probe")
			}
		} else {
			b.fails = 0
			b.store = h.Store
			b.health = h
			if b.down {
				rt.logf("router: backend %s answers probes again; rejoin it via /fleet/join to restore it", b.base)
			}
		}
		rt.mu.Unlock()
	}
}

// markDown takes a backend out of the ring immediately — called by the
// proxy on a transport error, which is stronger evidence than a missed
// probe.
func (rt *Router) markDown(b *backend) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if b.down {
		return
	}
	b.down = true
	b.fails = rt.cfg.FailAfter
	rt.ring.Remove(b.base)
	rt.logf("router: backend %s (%s) marked down after a proxy transport error", b.base, b.id)
	rt.log.Warn("backend marked down", "backend", b.id, "url", b.base, "cause", "proxy transport error")
}

// shedding reports whether b's last good probe put its overload
// controller on the shedding rung. Probe-cadence staleness is
// acceptable here: the backend's own admission control is still the
// authority, this is only the router declining to burn a proxy hop on
// a member that has already said no.
func (rt *Router) shedding(b *backend) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return service.ParseSLOMode(b.health.ControllerMode) == service.ModeShedding
}

// Owner reports which backend the ring maps id to (ok = false with no
// live backends).
func (rt *Router) Owner(id string) (string, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ring.Owner(id)
}

// Ring returns a point-in-time copy of ring membership for inspection.
func (rt *Router) Ring() *Ring {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	r := NewRing(rt.cfg.VNodes)
	for _, m := range rt.ring.Members() {
		r.Add(m)
	}
	return r
}

// upBackends snapshots the non-down backends.
func (rt *Router) upBackends() []*backend {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*backend, 0, len(rt.backends))
	for _, b := range rt.backends {
		if !b.down {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].base < out[j].base })
	return out
}

// BackendStatus is one fleet member in the /fleet view.
type BackendStatus struct {
	ID  string `json:"id"`
	URL string `json:"url"`
	Up  bool   `json:"up"`
	// Sessions/Spilled/Workers mirror the backend's last good /healthz.
	Sessions       int    `json:"sessions"`
	Spilled        int    `json:"spilled"`
	WorkersTotal   int    `json:"workersTotal"`
	WorkersGranted int    `json:"workersGranted"`
	Store          string `json:"store,omitempty"`
	// ControllerMode is the backend's overload-controller rung from its
	// last good probe ("" when the backend runs without a controller).
	// The router sheds creates before proxying when the resolved owner
	// reports "shedding".
	ControllerMode string `json:"controllerMode,omitempty"`
}

// FleetStatus is the GET /fleet payload: the capacity view the
// placement layer works from.
type FleetStatus struct {
	Backends []BackendStatus `json:"backends"`
	// RingMembers is current ring membership (up backends only).
	RingMembers []string `json:"ringMembers"`
	// Migrating counts sessions currently mid-migration.
	Migrating int `json:"migrating"`
}

// Fleet reports the current fleet: membership, health, and per-member
// load from the latest probes.
func (rt *Router) Fleet() FleetStatus {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	fs := FleetStatus{
		Backends:    make([]BackendStatus, 0, len(rt.backends)),
		RingMembers: rt.ring.Members(),
		Migrating:   len(rt.migrating),
	}
	for _, b := range rt.backends {
		fs.Backends = append(fs.Backends, BackendStatus{
			ID: b.id, URL: b.base, Up: !b.down,
			Sessions: b.health.Sessions, Spilled: b.health.Spilled,
			WorkersTotal: b.health.WorkersTotal, WorkersGranted: b.health.WorkersGranted,
			Store: b.store, ControllerMode: b.health.ControllerMode,
		})
	}
	sort.Slice(fs.Backends, func(i, j int) bool { return fs.Backends[i].URL < fs.Backends[j].URL })
	return fs
}

// AggregateHealth sums the fleet's /healthz into the single-server
// shape, so health checks written against one server read the fleet
// unchanged. The controller mode reported is the worst rung any member
// stands on — the pessimistic capacity hint an upstream balancer or
// operator dashboard wants.
func (rt *Router) AggregateHealth() service.Health {
	var out service.Health
	worst := service.ModeNormal
	sawMode := false
	for _, b := range rt.upBackends() {
		h, err := b.client.Health()
		if err != nil {
			continue
		}
		out.Sessions += h.Sessions
		out.Spilled += h.Spilled
		out.WorkersTotal += h.WorkersTotal
		out.WorkersGranted += h.WorkersGranted
		if h.ControllerMode != "" {
			sawMode = true
			if m := service.ParseSLOMode(h.ControllerMode); m > worst {
				worst = m
			}
		}
	}
	if sawMode {
		out.ControllerMode = worst.String()
	}
	return out
}

// AggregateMetrics scrapes every up backend's /metrics and merges them
// into one fleet-wide service.Metrics: counters sum, per-endpoint
// counters sum per endpoint, and the answer-latency histograms merge
// via their exported buckets — so factcheck-loadtest pointed at a
// router scrapes fleet telemetry with the code it uses for one server.
func (rt *Router) AggregateMetrics(withBuckets bool) service.Metrics {
	out := service.Metrics{
		BackendID: "fleet",
		Endpoints: make(map[string]service.EndpointCounters),
	}
	var lat stats.LogHist
	stages := make(map[string]*stats.LogHist)
	for _, b := range rt.upBackends() {
		m, err := b.client.Metrics(true)
		if err != nil {
			continue
		}
		out.Sessions += m.Sessions
		out.Spilled += m.Spilled
		out.WorkersTotal += m.WorkersTotal
		out.WorkersGranted += m.WorkersGranted
		out.SessionsOpened += m.SessionsOpened
		out.AnswersServed += m.AnswersServed
		out.LaneWaits += m.LaneWaits
		out.MailboxQueued += m.MailboxQueued
		out.GainCacheHits += m.GainCacheHits
		out.GainCacheMisses += m.GainCacheMisses
		if m.Controller != nil {
			if out.Controller == nil {
				out.Controller = &service.ControllerStatus{Mode: service.ModeNormal.String()}
			}
			out.Controller.Merge(*m.Controller)
		}
		lat.AbsorbBuckets(m.AnswerLatencyBuckets, m.AnswerLatency)
		for stage, bks := range m.StageBuckets {
			h := stages[stage]
			if h == nil {
				h = &stats.LogHist{}
				stages[stage] = h
			}
			h.AbsorbBuckets(bks, m.Stages[stage])
		}
		for ep, c := range m.Endpoints {
			agg := out.Endpoints[ep]
			agg.Requests += c.Requests
			agg.Errors += c.Errors
			out.Endpoints[ep] = agg
		}
	}
	out.AnswerLatency = lat.Summary()
	if withBuckets {
		out.AnswerLatencyBuckets = lat.Buckets()
	}
	if len(stages) > 0 {
		out.Stages = make(map[string]stats.Summary, len(stages))
		for stage, h := range stages {
			out.Stages[stage] = h.Summary()
		}
		if withBuckets {
			out.StageBuckets = make(map[string][]stats.HistBucket, len(stages))
			for stage, h := range stages {
				out.StageBuckets[stage] = h.Buckets()
			}
		}
	}
	if len(out.Endpoints) == 0 {
		out.Endpoints = nil
	}
	return out
}

// apiStatus extracts the HTTP status from a service client error
// (0 for transport-level errors).
func apiStatus(err error) int {
	var apiErr *service.APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status
	}
	return 0
}

// newID draws a fresh session id, the same shape the execution layer
// generates: the router owns id generation so placement is decided
// before any backend sees the open.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("router: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}
