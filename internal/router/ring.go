// Package router is the placement layer of the scaled-out serving
// stack: it spreads sessions across a fleet of factcheck-server
// backends with a consistent-hash ring, probes backend health, proxies
// the single-server HTTP API unchanged, and moves live sessions
// between backends (drain, rebalance, failover) without breaking the
// bit-identical-trace contract the execution layer guarantees.
//
// The split mirrors the repo's standing layering: internal/service is
// the execution layer (one Manager, one worker budget, one session
// cap), and this package owns only placement — which backend a session
// id lives on, never what the session computes. Session state moves as
// the same portable checkpoint+WAL record that crash recovery replays,
// so a migrated session is rebuilt by exactly the code path a restart
// uses, and determinism holds across the move.
package router

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringPoint is one virtual node: a hash position owned by a member.
type ringPoint struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring with virtual nodes. Each member
// contributes vnodes points; a key belongs to the member owning the
// first point clockwise of the key's hash. Virtual nodes smooth the
// load split (with v points per member the expected imbalance shrinks
// like 1/sqrt(v)) and spread a removed member's keys across everyone
// remaining instead of dumping them on one successor. Not safe for
// concurrent use; the Router guards it with its own mutex.
type Ring struct {
	vnodes  int
	points  []ringPoint
	members map[string]bool
}

// NewRing returns an empty ring placing vnodes virtual nodes per
// member (<=0 selects 64, plenty for a small fleet: ~9% expected
// imbalance at 3 members).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// ringHash is FNV-1a 64 followed by a splitmix64-style avalanche
// finalizer. FNV alone is fast, dependency-free and stable across
// processes and platforms — ring layout must not depend on process
// randomness, or two routers over the same fleet would disagree on
// placement — but it diffuses poorly for short keys differing only in
// their final bytes: sequential ids like "sess-1", "sess-2", … hash
// into a tight cluster, which can drop an entire caller-pinned id
// family onto one member's arcs. The finalizer avalanches every input
// bit across the word so nearby keys spread uniformly, and is itself a
// pure function of the bytes, so cross-process agreement is preserved.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a member's virtual nodes. Adding a present member is a
// no-op.
func (r *Ring) Add(member string) {
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash:   ringHash(member + "#" + strconv.Itoa(i)),
			member: member,
		})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on the member so equal hashes (vanishingly rare,
		// but possible) still order deterministically.
		return r.points[i].member < r.points[j].member
	})
}

// Remove deletes a member and its virtual nodes. Removing an absent
// member is a no-op.
func (r *Ring) Remove(member string) {
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner returns the member owning key (ok = false on an empty ring).
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= h
	})
	if i == len(r.points) {
		i = 0 // wrap: past the last point means the first point owns it
	}
	return r.points[i].member, true
}

// Members returns the current members, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }
