package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"factcheck/internal/service"
)

// rawDo issues one raw HTTP request against the router — the envelope
// is a wire-format promise, so these tests bypass the Go client.
func rawDo(t *testing.T, base, method, path, body string) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, base+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// assertEnvelope checks a router refusal: status, stable envelope code,
// the mirrored Retry-After header, and the deprecation headers exactly
// on legacy unversioned paths.
func assertEnvelope(t *testing.T, resp *http.Response, status int, code string, retryAfter int, legacy bool) {
	t.Helper()
	if resp.StatusCode != status {
		t.Fatalf("status = %d, want %d", resp.StatusCode, status)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Error service.ErrorInfo `json:"error"`
	}
	if err := json.Unmarshal(raw, &body); err != nil || body.Error.Code == "" || body.Error.Message == "" {
		t.Fatalf("response %q is not the error envelope (%v)", raw, err)
	}
	if body.Error.Code != code {
		t.Fatalf("envelope code = %q, want %q", body.Error.Code, code)
	}
	if body.Error.RetryAfter != retryAfter {
		t.Fatalf("envelope retryAfter = %d, want %d", body.Error.RetryAfter, retryAfter)
	}
	header := resp.Header.Get("Retry-After")
	if retryAfter > 0 {
		if header != fmt.Sprint(retryAfter) {
			t.Fatalf("Retry-After header = %q, want %d (must mirror the envelope)", header, retryAfter)
		}
	} else if header != "" {
		t.Fatalf("Retry-After header = %q on a response with no envelope hint", header)
	}
	if legacy {
		if resp.Header.Get("Deprecation") != "true" {
			t.Fatal("legacy route missing the Deprecation header")
		}
		if link := resp.Header.Get("Link"); !strings.Contains(link, `rel="successor-version"`) || !strings.Contains(link, "/v1/") {
			t.Fatalf("legacy route Link header = %q, want a /v1 successor-version", link)
		}
	} else if resp.Header.Get("Deprecation") != "" {
		t.Fatal("/v1 route carries a Deprecation header")
	}
}

// stubBackend is a fake execution backend that answers just enough of
// the API for Router.Join to accept it: /v1/healthz reporting the given
// overload-controller mode and an empty /v1/sessions listing.
func stubBackend(t *testing.T, mode string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(service.Health{ControllerMode: mode})
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(service.SessionList{Live: []string{}, Stored: []string{}})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestRouterErrorEnvelopeContract drives every router-originated error
// path — on /v1 and on the legacy aliases — and asserts each refusal
// carries the same JSON envelope as the execution layer, including the
// router-specific codes (session_migrating, no_backends, bad_gateway)
// and the shed-before-proxy 429.
func TestRouterErrorEnvelopeContract(t *testing.T) {
	rt := New(Config{ProbeInterval: time.Hour, Logf: t.Logf})
	t.Cleanup(rt.Close)
	rsrv := httptest.NewServer(rt.Handler())
	t.Cleanup(rsrv.Close)
	base := rsrv.URL

	// A session flagged mid-migration; no backend needed, the flag is
	// checked before placement resolves.
	rt.mu.Lock()
	rt.migrating["mig"] = true
	rt.mu.Unlock()

	empty := []struct {
		name   string
		method string
		path   string // canonical path, without the /v1 prefix
		body   string
		status int
		code   string
		retry  int
	}{
		{"proxy with no backends", "GET", "/sessions/ghost/state", "", 503, service.CodeNoBackends, 1},
		{"create with no backends", "POST", "/sessions", `{"profile":"wiki","scale":0.1,"seed":3}`, 503, service.CodeNoBackends, 1},
		{"proxy to migrating session", "GET", "/sessions/mig/state", "", 503, service.CodeMigrating, 1},
		{"create pinned to migrating id", "POST", "/sessions", `{"id":"mig"}`, 503, service.CodeMigrating, 1},
		{"create malformed body", "POST", "/sessions", "{not json", 400, service.CodeBadRequest, 0},
		{"proxied export refused", "GET", "/sessions/ghost/export", "", 400, service.CodeBadRequest, 0},
		{"proxied import refused", "POST", "/sessions/ghost/import", "{}", 400, service.CodeBadRequest, 0},
		{"fleet join malformed body", "POST", "/fleet/join", "{not json", 400, service.CodeBadRequest, 0},
		{"fleet leave malformed body", "POST", "/fleet/leave", "{not json", 400, service.CodeBadRequest, 0},
		{"fleet join unreachable backend", "POST", "/fleet/join", `{"url":"http://127.0.0.1:1"}`, 502, service.CodeBadGateway, 0},
		{"fleet leave unknown backend", "POST", "/fleet/leave", `{"url":"http://127.0.0.1:1"}`, 502, service.CodeBadGateway, 0},
	}
	for _, tc := range empty {
		t.Run(tc.name, func(t *testing.T) {
			resp := rawDo(t, base, tc.method, "/v1"+tc.path, tc.body)
			assertEnvelope(t, resp, tc.status, tc.code, tc.retry, false)
			resp = rawDo(t, base, tc.method, tc.path, tc.body)
			assertEnvelope(t, resp, tc.status, tc.code, tc.retry, true)
		})
	}

	// Shed-before-proxy: the fleet's only member reports its overload
	// controller on the shedding rung, so the router refuses the create
	// itself with the backend's own 429 contract.
	shed := stubBackend(t, "shedding")
	if err := rt.Join(shed.URL); err != nil {
		t.Fatalf("join shedding stub: %v", err)
	}
	t.Run("create to shedding owner", func(t *testing.T) {
		body := `{"profile":"wiki","scale":0.1,"seed":5}`
		resp := rawDo(t, base, "POST", "/v1/sessions", body)
		assertEnvelope(t, resp, 429, service.CodeShedding, 1, false)
		resp = rawDo(t, base, "POST", "/sessions", body)
		assertEnvelope(t, resp, 429, service.CodeShedding, 1, true)
	})

	// Dead owners: a fleet whose members joined healthy and then
	// vanished. The create path marks each down after its failed
	// forward and gives up with 502 once its attempts are spent — which
	// empties the ring, so each request needs a fresh fleet.
	deadFleet := func() string {
		rt2 := New(Config{ProbeInterval: time.Hour, Logf: t.Logf})
		t.Cleanup(rt2.Close)
		rsrv2 := httptest.NewServer(rt2.Handler())
		t.Cleanup(rsrv2.Close)
		a, b := stubBackend(t, ""), stubBackend(t, "")
		if err := rt2.Join(a.URL); err != nil {
			t.Fatal(err)
		}
		if err := rt2.Join(b.URL); err != nil {
			t.Fatal(err)
		}
		a.Close()
		b.Close()
		return rsrv2.URL
	}
	t.Run("create with dead owners", func(t *testing.T) {
		body := `{"profile":"wiki","scale":0.1,"seed":7}`
		resp := rawDo(t, deadFleet(), "POST", "/v1/sessions", body)
		assertEnvelope(t, resp, 502, service.CodeBadGateway, 0, false)
		resp = rawDo(t, deadFleet(), "POST", "/sessions", body)
		assertEnvelope(t, resp, 502, service.CodeBadGateway, 0, true)
	})
}
