package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"factcheck/internal/service"
)

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestFleetHTTPControlPlane drives the /fleet control plane and the
// fleet views over HTTP — the surface operators (and router_smoke.sh)
// use, as opposed to the Go-level Join/Leave the other tests call.
func TestFleetHTTPControlPlane(t *testing.T) {
	rt, c, _ := newFleet(t, 2, nil)
	base := c.BaseURL

	info, err := c.Open(fastOpen(31))
	if err != nil {
		t.Fatal(err)
	}
	driveOracle(t, c, info.ID, 1)

	// GET /sessions through the router: the fleet-union listing.
	sl, err := c.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range sl.Live {
		if id == info.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("router listing misses the live session: %+v", sl)
	}

	// GET /fleet: both backends up, both in the ring.
	resp, err := http.Get(base + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var fleet FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&fleet); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(fleet.Backends) != 2 || len(fleet.RingMembers) != 2 || fleet.Migrating != 0 {
		t.Fatalf("fleet = %+v, want 2 up backends and no migrations", fleet)
	}

	// The migration internals must not be reachable through the proxy.
	for _, rest := range []string{"export", "import"} {
		resp, err := http.Get(base + "/sessions/" + info.ID + "/" + rest)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("proxied /%s answered %d, want 400", rest, resp.StatusCode)
		}
	}

	// Join a third backend over HTTP; the ring re-agrees.
	m3 := service.NewManager(service.Config{Workers: 2})
	srv3 := httptest.NewServer(service.NewServer(m3).Handler())
	t.Cleanup(func() { srv3.Close(); m3.Shutdown() })
	if resp := postJSON(t, base+"/fleet/join", fleetRequest{URL: srv3.URL}); resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet/join answered %d", resp.StatusCode)
	}
	if got := rt.Ring().Len(); got != 3 {
		t.Fatalf("ring has %d members after join, want 3", got)
	}

	// Control-plane error paths: malformed body, unreachable backend,
	// draining a stranger.
	resp, err = http.Post(base+"/fleet/join", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed join answered %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, base+"/fleet/join", fleetRequest{URL: "http://127.0.0.1:1"}); resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("unreachable join answered %d, want 502", resp.StatusCode)
	}
	if resp := postJSON(t, base+"/fleet/leave", fleetRequest{URL: "http://127.0.0.1:1"}); resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("unknown leave answered %d, want 502", resp.StatusCode)
	}

	// Drain the new backend over HTTP and keep serving.
	if resp := postJSON(t, base+"/fleet/leave", fleetRequest{URL: srv3.URL}); resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet/leave answered %d", resp.StatusCode)
	}
	if got := rt.Ring().Len(); got != 2 {
		t.Fatalf("ring has %d members after leave, want 2", got)
	}
	driveOracle(t, c, info.ID, 1)

	// The aggregate views over HTTP.
	for _, path := range []string{"/healthz", "/metrics?buckets=1"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s answered %d", path, resp.StatusCode)
		}
	}
}

// TestProbesMarkDeadBackendDown: with real probing enabled, a backend
// that stops answering /healthz is marked down after FailAfter
// consecutive failures and drops out of the ring — and is NOT rejoined
// automatically when it answers again (its arcs were remapped; a stale
// copy must not resurrect).
func TestProbesMarkDeadBackendDown(t *testing.T) {
	rt := New(Config{ProbeInterval: 10 * time.Millisecond, FailAfter: 2, Logf: t.Logf})
	t.Cleanup(rt.Close)
	m := service.NewManager(service.Config{Workers: 1})
	defer m.Shutdown()
	srv := httptest.NewServer(service.NewServer(m).Handler())
	defer srv.Close()
	if err := rt.Join(srv.URL); err != nil {
		t.Fatal(err)
	}

	srv.CloseClientConnections()
	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		fleet := rt.Fleet()
		if len(fleet.Backends) == 1 && !fleet.Backends[0].Up {
			if len(fleet.RingMembers) != 0 {
				t.Fatalf("down backend still in the ring: %+v", fleet)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("probes never marked the dead backend down: %+v", fleet)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, ok := rt.Owner("any"); ok {
		t.Fatal("an empty ring still names an owner")
	}
}

// TestDrainRollbackOnImportConflict: when the destination refuses an
// import (here: it already holds a live session under the same id),
// the snapshot is imported back onto the source, which keeps serving —
// a failed migration must leave the session alive somewhere, never
// frozen behind an exported mark.
func TestDrainRollbackOnImportConflict(t *testing.T) {
	rt, c, backends := newFleet(t, 2, nil)
	info, err := c.Open(fastOpen(33))
	if err != nil {
		t.Fatal(err)
	}
	driveOracle(t, c, info.ID, 1)

	ownerBase, ok := rt.Owner(info.ID)
	if !ok {
		t.Fatal("no owner")
	}
	owner := byBase(t, backends, ownerBase)
	var other *fleetBackend
	for _, b := range backends {
		if b.srv.URL != ownerBase {
			other = b
		}
	}

	// Manufacture the conflict: a live session under the same id on the
	// only possible destination.
	if _, err := other.manager.OpenAs(info.ID, fastOpen(34)); err != nil {
		t.Fatal(err)
	}

	err = rt.Leave(ownerBase)
	if err == nil {
		t.Fatal("drain with a conflicting destination reported success")
	}
	t.Logf("drain failed as expected: %v", err)

	// Rollback: the source still serves the session (reached directly —
	// the drain removed it from the fleet).
	sc := service.NewClient(owner.srv.URL)
	if _, err := sc.State(info.ID, false); err != nil {
		t.Fatalf("source does not serve the session after rollback: %v", err)
	}
}

// TestMigrateSkipsVanishedSession: a session that disappears between
// the drain listing and its migration (deleted, idle-evicted) is not
// an error — export's 404 means there is nothing left to move.
func TestMigrateSkipsVanishedSession(t *testing.T) {
	rt, c, backends := newFleet(t, 2, nil)
	info, err := c.Open(fastOpen(35))
	if err != nil {
		t.Fatal(err)
	}
	ownerBase, _ := rt.Owner(info.ID)
	owner := byBase(t, backends, ownerBase)

	// An id the ring maps AWAY from the owner, so migrate actually
	// attempts an export (same-owner ids return before exporting).
	ghost := ""
	for i := 0; i < 256; i++ {
		id := fmt.Sprintf("ghost-%d", i)
		if o, _ := rt.Owner(id); o != ownerBase {
			ghost = id
			break
		}
	}
	if ghost == "" {
		t.Fatal("no id mapping off the owner")
	}
	rt.mu.Lock()
	from := rt.backends[ownerBase]
	rt.mu.Unlock()
	if err := rt.migrate(ghost, from); err != nil {
		t.Fatalf("migrating a vanished session: %v", err)
	}
	// And the short-circuit: an id already on its owner does not move.
	if err := rt.migrate(info.ID, from); err != nil {
		t.Fatalf("migrating an already-placed session: %v", err)
	}
	if _, err := c.State(info.ID, false); err != nil {
		t.Fatal(err)
	}
	_ = owner
}

// TestCreatePaths covers the create edge cases: a caller-pinned id, an
// empty body (all defaults), a create aimed at a mid-migration id, and
// an empty fleet.
func TestCreatePaths(t *testing.T) {
	rt, c, _ := newFleet(t, 1, nil)
	base := c.BaseURL

	// Caller-pinned id passes through to the execution layer.
	resp := postJSON(t, base+"/sessions", map[string]any{
		"id": "caller-pinned", "profile": "wiki", "scale": 0.1, "seed": 41,
		"candidatePool": 6, "communities": 3,
		"em": map[string]any{"burnIn": 4, "samples": 8, "incBurnIn": 2, "incSamples": 4, "emIters": 1, "hypoBurn": 1, "hypoSamples": 2},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("pinned create answered %d", resp.StatusCode)
	}
	if _, err := c.State("caller-pinned", false); err != nil {
		t.Fatalf("pinned session not addressable: %v", err)
	}

	// Malformed JSON is a 400, not a proxied confusion.
	r2, err := http.Post(base+"/sessions", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed create answered %d, want 400", r2.StatusCode)
	}

	// A create addressed to a mid-migration id is backpressured with
	// Retry-After, same as any other request for it.
	rt.mu.Lock()
	rt.migrating["caller-pinned"] = true
	rt.mu.Unlock()
	resp = postJSON(t, base+"/sessions", map[string]any{"id": "caller-pinned"})
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("create of a migrating id answered %d (Retry-After %q), want 503 + Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if r3, err := http.Get(base + "/sessions/caller-pinned/state"); err != nil {
		t.Fatal(err)
	} else {
		r3.Body.Close()
		if r3.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request for a migrating id answered %d, want 503", r3.StatusCode)
		}
	}
	rt.mu.Lock()
	delete(rt.migrating, "caller-pinned")
	rt.mu.Unlock()

	// An empty fleet can place nothing.
	empty := New(Config{ProbeInterval: time.Hour, Logf: t.Logf})
	t.Cleanup(empty.Close)
	esrv := httptest.NewServer(empty.Handler())
	t.Cleanup(esrv.Close)
	r4, err := http.Post(esrv.URL+"/sessions", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if r4.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create on an empty fleet answered %d, want 503", r4.StatusCode)
	}
}
