package router

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"factcheck/internal/obs"
	"factcheck/internal/service"
	"factcheck/internal/synth"
)

// syncWriter is a concurrency-safe log sink for the slog handlers the
// tests inspect (handlers write from request goroutines).
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// tracedBackend boots one backend whose structured logs land in sink.
func tracedBackend(t *testing.T, cfg service.Config, sink *syncWriter) (*service.Manager, *httptest.Server) {
	t.Helper()
	m := service.NewManager(cfg)
	s := service.NewServer(m)
	s.SetLogger(obs.NewLogger(sink, "factcheck-server", slog.LevelDebug))
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() { srv.Close(); m.Shutdown() })
	return m, srv
}

// TestTracePropagationThroughProxyAndMigration checks the fleet-wide
// trace thread: a client-supplied trace id crosses the proxy hop into
// the backend's span ring and structured logs (and the router's own),
// the response echoes it back through copyResponse, and a drain
// migration mints its own id that shows up in the router's migration
// log and the backends' request logs for the export/import hops.
func TestTracePropagationThroughProxyAndMigration(t *testing.T) {
	backendLog := &syncWriter{}
	routerLog := &syncWriter{}

	m1, srv1 := tracedBackend(t, service.Config{Workers: 2, BackendID: "b1"}, backendLog)
	_, srv2 := tracedBackend(t, service.Config{Workers: 2, BackendID: "b2"}, backendLog)

	rt := New(Config{
		ProbeInterval: time.Hour,
		Logf:          t.Logf,
		Logger:        obs.NewLogger(routerLog, "factcheck-router", slog.LevelDebug),
	})
	t.Cleanup(rt.Close)
	if err := rt.Join(srv1.URL); err != nil {
		t.Fatal(err)
	}
	rsrv := httptest.NewServer(rt.Handler())
	t.Cleanup(rsrv.Close)

	const clientTrace = "proxy-trace-1"
	cl := service.NewClient(rsrv.URL)
	cl.Trace = clientTrace
	info, err := cl.Open(fastOpen(11))
	if err != nil {
		t.Fatal(err)
	}
	driveOracle(t, cl, info.ID, 2)

	// The client's id crossed the proxy hop into the backend's span ring.
	tr, err := m1.Trace(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	saw := false
	for _, sp := range tr.Spans {
		if sp.Trace == clientTrace && sp.Stage == obs.StageResample {
			saw = true
		}
	}
	if !saw {
		t.Fatalf("backend span ring has no resample span with the proxied trace id: %+v", tr.Spans)
	}
	if !strings.Contains(backendLog.String(), clientTrace) {
		t.Fatal("backend request log never saw the proxied trace id")
	}
	if !strings.Contains(routerLog.String(), clientTrace) {
		t.Fatal("router request log never saw the client trace id")
	}

	// The response echoes the inbound id (router middleware + the
	// backend echo relayed by copyResponse agree on the value).
	hreq, err := http.NewRequest("GET", rsrv.URL+"/v1/sessions/"+info.ID+"/state", nil)
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set(obs.TraceHeader, "echo-trace-2")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != "echo-trace-2" {
		t.Fatalf("response trace header = %q, want the inbound id", got)
	}

	// A request with a garbage id gets a freshly minted one instead.
	hreq, err = http.NewRequest("GET", rsrv.URL+"/v1/sessions/"+info.ID+"/state", nil)
	if err != nil {
		t.Fatal(err)
	}
	const junk = `bad id "with" junk!`
	hreq.Header.Set(obs.TraceHeader, junk)
	resp, err = http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); !obs.ValidTraceID(got) || got == junk {
		t.Fatalf("invalid inbound id was not replaced: %q", got)
	}

	// Drain migration: the migration's own minted trace id appears in
	// the router's structured migration log and in the backend request
	// logs for its export/import control calls.
	if err := rt.Join(srv2.URL); err != nil {
		t.Fatal(err)
	}
	if err := rt.Leave(srv1.URL); err != nil {
		t.Fatal(err)
	}
	migTrace := ""
	for _, line := range strings.Split(routerLog.String(), "\n") {
		if !strings.Contains(line, "session migrated") {
			continue
		}
		var rec struct {
			Session string `json:"session"`
			Trace   string `json:"trace"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable migration log line %q: %v", line, err)
		}
		if rec.Session == info.ID {
			migTrace = rec.Trace
		}
	}
	if migTrace == "" {
		t.Fatalf("router log has no structured migration record for %s:\n%s", info.ID, routerLog.String())
	}
	if !strings.Contains(backendLog.String(), migTrace) {
		t.Fatalf("migration trace %s absent from the backends' request logs", migTrace)
	}

	// The session keeps serving on its new owner.
	driveOracle(t, cl, info.ID, 1)
}

// TestForced429CarriesTrace forces admission control to refuse a
// request through the router — the worker budget is held so ingests
// queue, and the second delta overflows the size-1 mailbox — and
// checks the 429 carries the client's trace id in the response header
// and the JSON error envelope, and that the backend logged the refusal
// with the same id and envelope code.
func TestForced429CarriesTrace(t *testing.T) {
	backendLog := &syncWriter{}
	m, srv := tracedBackend(t, service.Config{Workers: 1, MailboxCap: 1, BackendID: "b1"}, backendLog)

	rt := New(Config{ProbeInterval: time.Hour, Logf: t.Logf})
	t.Cleanup(rt.Close)
	if err := rt.Join(srv.URL); err != nil {
		t.Fatal(err)
	}
	rsrv := httptest.NewServer(rt.Handler())
	t.Cleanup(rsrv.Close)

	req := fastOpen(31)
	cl := service.NewClient(rsrv.URL)
	info, err := cl.Open(req)
	if err != nil {
		t.Fatal(err)
	}

	// Deltas generated at the served corpus's actual shape (the
	// tracecheck recipe). Both reference only the base corpus, so the
	// second validates fine against the virtual shape — only the
	// mailbox bound refuses it.
	corpus, err := service.BuildCorpus(req)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := synth.ByName(req.Profile)
	if err != nil {
		t.Fatal(err)
	}
	prof.Claims = corpus.DB.NumClaims
	prof.Sources = len(corpus.DB.Sources)
	prof.Documents = len(corpus.DB.Documents)
	d1 := synth.GenerateDelta(prof, 0.05, 41)
	d2 := synth.GenerateDelta(prof, 0.05, 43)

	// Hold the only worker lane: the opportunistic inline apply cannot
	// get a lane, so deltas queue in the mailbox instead of applying.
	_, release := m.Budget().Acquire(1)
	defer release()

	ing, err := cl.IngestClaims(info.ID, service.IngestRequest{Delta: d1})
	if err != nil {
		t.Fatal(err)
	}
	if ing.Applied || ing.Queued != 1 {
		t.Fatalf("first ingest = %+v, want queued with the budget held", ing)
	}

	const trace = "trace-429-1"
	body, err := json.Marshal(service.IngestRequest{Delta: d2})
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest("POST", rsrv.URL+"/v1/sessions/"+info.ID+"/claims", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(obs.TraceHeader, trace)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow ingest = %d, want 429: %s", resp.StatusCode, payload)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != trace {
		t.Fatalf("429 trace header = %q, want %q", got, trace)
	}
	if !strings.Contains(string(payload), `"code":"`+service.CodeMailboxFull+`"`) {
		t.Fatalf("429 envelope missing the mailbox_full code: %s", payload)
	}
	if !strings.Contains(string(payload), `"traceId":"`+trace+`"`) {
		t.Fatalf("429 envelope missing the trace id: %s", payload)
	}
	logged := backendLog.String()
	if !strings.Contains(logged, trace) || !strings.Contains(logged, service.CodeMailboxFull) {
		t.Fatalf("backend log missing the refusal's trace id or code:\n%s", logged)
	}
}
