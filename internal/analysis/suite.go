package analysis

// All returns the project's analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Detrand, Wallclock, Errenvelope, Lockdiscipline}
}
