package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// traceAffecting lists the package suffixes whose outputs feed the
// selection trace: anything nondeterministic here breaks the standing
// "selection traces are bit-identical across worker counts, cache
// modes, migrations and crash recovery" invariant the property tests
// pin per seed. The analyzer pins it for every seed, at compile time.
var traceAffecting = []string{
	"internal/core",
	"internal/em",
	"internal/gibbs",
	"internal/guidance",
	"internal/stats",
	"internal/synth",
	"internal/factdb",
	"internal/stream",
}

// mathRandAllowed are the math/rand names that do not draw from the
// shared global source: constructing an explicitly seeded generator is
// deterministic, the package-level convenience functions are not.
var mathRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// wallClockFuncs are the time package's ambient-clock readers. The
// monotonic wall clock is observability-only by DESIGN.md §16;
// inference code gets its notion of progress from sweep ordinals and
// seeds, never from the scheduler.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// Detrand reports nondeterminism sources in trace-affecting packages:
// global math/rand draws, wall-clock reads, and map iteration whose
// order escapes into slices, index writes, or formatted output without
// an intervening sort.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc: "forbid nondeterminism sources (global math/rand, time.Now/Since, " +
		"unsorted map iteration flowing into ordered output) in trace-affecting packages",
	Run: runDetrand,
}

func runDetrand(pass *Pass) error {
	if !pathHasSuffix(pass.Pkg.Path(), traceAffecting) {
		return nil
	}
	for _, f := range pass.Files {
		withStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkForbiddenCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n, stack)
			}
		})
	}
	return nil
}

func checkForbiddenCall(pass *Pass, call *ast.CallExpr) {
	for _, randPkg := range []string{"math/rand", "math/rand/v2"} {
		if name, ok := pkgFunc(pass.TypesInfo, call, randPkg); ok && !mathRandAllowed[name] {
			pass.Reportf(call.Pos(),
				"%s.%s draws from the global math/rand source; derive a per-component stream from stats.StreamSeed instead",
				randPkg, name)
			return
		}
	}
	if name, ok := pkgFunc(pass.TypesInfo, call, "time"); ok && wallClockFuncs[name] {
		pass.Reportf(call.Pos(),
			"time.%s reads the wall clock in a trace-affecting package; the clock is observability-only (DESIGN.md §16)", name)
	}
}

// checkMapRange flags `range m` over a map when the loop body lets the
// iteration order escape into ordered output — an append, a write
// through a slice index, or a formatting/writing call that mentions
// the loop variables — and no sort of the destination follows the loop
// in the same function. Collect-then-sort is the blessed idiom and
// passes; aggregation (sums, counts, map-to-map rebuilds) never
// triggers the check because order cannot escape.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) {
	t := pass.TypesInfo.Types[rs.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	loopVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if o := objOf(pass.TypesInfo, id); o != nil {
				loopVars[o] = true
			}
		}
	}
	body := enclosingBody(stack)
	var sinks []orderSink
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if s, ok := appendSink(pass.TypesInfo, n, loopVars); ok {
				sinks = append(sinks, s)
			} else if formatSink(pass.TypesInfo, n, loopVars) {
				sinks = append(sinks, orderSink{kind: "formatted output"})
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if s, ok := indexWriteSink(pass.TypesInfo, n, lhs, loopVars); ok {
					sinks = append(sinks, s)
				}
			}
		}
		return true
	})
	for _, s := range sinks {
		if s.target != nil && sortedAfter(pass.TypesInfo, body, rs, s.target) {
			continue
		}
		pass.Reportf(rs.For,
			"map iteration order flows into %s without a deterministic sort; sort the destination (or iterate sorted keys)", s.kind)
		return // one diagnostic per loop is enough
	}
}

// orderSink is one place iteration order escapes to; target (when
// resolvable) is the destination object a later sort can absolve.
type orderSink struct {
	kind   string
	target types.Object
}

// appendSink matches append calls in the loop body whose appended
// values depend on the loop variables.
func appendSink(info *types.Info, call *ast.CallExpr, loopVars map[types.Object]bool) (orderSink, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) < 2 {
		return orderSink{}, false
	}
	if _, ok := objOf(info, id).(*types.Builtin); !ok || id.Name != "append" {
		return orderSink{}, false
	}
	dependent := false
	for _, a := range call.Args[1:] {
		if usesAny(info, a, loopVars) {
			dependent = true
			break
		}
	}
	if !dependent {
		return orderSink{}, false
	}
	s := orderSink{kind: "an append"}
	if root := rootIdent(call.Args[0]); root != nil {
		s.target = objOf(info, root)
	}
	return s, true
}

// indexWriteSink matches writes through a slice or array index inside
// a statement that depends on the loop variables (s[i] = k, s[k] = v,
// s[0] = k): whether the order-dependence is in the index or the
// value, the slice contents end up a function of iteration order.
func indexWriteSink(info *types.Info, assign *ast.AssignStmt, lhs ast.Expr, loopVars map[types.Object]bool) (orderSink, bool) {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return orderSink{}, false
	}
	t := info.Types[ix.X].Type
	if t == nil {
		return orderSink{}, false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array:
	default:
		return orderSink{}, false
	}
	if !usesAny(info, assign, loopVars) {
		return orderSink{}, false
	}
	s := orderSink{kind: "a slice index write"}
	if root := rootIdent(ix.X); root != nil {
		s.target = objOf(info, root)
	}
	return s, true
}

// formatSink matches fmt package calls and Write*/print-style method
// calls that mention the loop variables — iteration order escaping
// into encoded output.
func formatSink(info *types.Info, call *ast.CallExpr, loopVars map[types.Object]bool) bool {
	mentions := false
	for _, a := range call.Args {
		if usesAny(info, a, loopVars) {
			mentions = true
			break
		}
	}
	if !mentions {
		return false
	}
	if _, ok := pkgFunc(info, call, "fmt"); ok {
		return true
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if strings.HasPrefix(sel.Sel.Name, "Write") {
			return true
		}
	}
	return false
}

// sortedAfter reports whether a sorting call taking the target
// appears after the range statement in the enclosing function body: a
// sort/slices package function, or a local helper with "sort" in its
// name (the codebase keeps allocation-free insertion sorts like
// sortInts next to the hot paths).
func sortedAfter(info *types.Info, body *ast.BlockStmt, rs *ast.RangeStmt, target types.Object) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 || !isSortCall(info, call) {
			return true
		}
		for _, a := range call.Args {
			if root := rootIdent(a); root != nil && objOf(info, root) == target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	if _, ok := pkgFunc(info, call, "sort"); ok {
		return true
	}
	if _, ok := pkgFunc(info, call, "slices"); ok {
		return true
	}
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	return strings.Contains(strings.ToLower(name), "sort")
}

// enclosingBody returns the innermost enclosing function body from an
// ancestor stack.
func enclosingBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch d := stack[i].(type) {
		case *ast.FuncLit:
			return d.Body
		case *ast.FuncDecl:
			return d.Body
		}
	}
	return nil
}
