// Package analysis is the project's invariant-enforcing static
// analysis suite: a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver surface (the real module is
// not vendored; the build must stay offline-clean) plus four analyzers
// that encode the repo's documented invariants at analysis time
// instead of re-measuring them per seed in property tests:
//
//   - detrand: trace-affecting packages must not draw from global
//     math/rand, read the wall clock, or let map iteration order flow
//     into slices or encoded output without a deterministic sort
//     (DESIGN.md §4, §16: exact transformations only).
//   - wallclock: the observability layer is the inverse — spans are
//     wall-clocked with time.Now and must never touch the manager's
//     injectable clock (nowFn) or a session RNG stream.
//   - errenvelope: every HTTP refusal in the serving layer goes
//     through the JSON error-envelope funnel (DESIGN.md §15); no bare
//     http.Error or constant 4xx/5xx WriteHeader outside it.
//   - lockdiscipline: struct fields annotated "guarded by mu" may only
//     be accessed with that mutex held (intraprocedural, path-merged).
//
// Every analyzer honors an audited escape hatch: a comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line above suppresses the diagnostic; a
// directive with no reason is itself a diagnostic, so suppressions
// stay reviewable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check, mirroring the shape of
// golang.org/x/tools/go/analysis.Analyzer so the checks could migrate
// to the real driver wholesale if the dependency ever lands.
type Analyzer struct {
	// Name is the analyzer's identifier: the multichecker flag, the
	// diagnostic prefix, and the token //lint:allow directives name.
	Name string
	// Doc is the one-paragraph help text.
	Doc string
	// Run analyzes one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's parsed sources, comments included.
	Files []*ast.File
	// Pkg is the type-checked package (import path per the build
	// system, or the declared path for test fixtures).
	Pkg *types.Package
	// TypesInfo records the type-checker's object resolution: Uses,
	// Defs, Types and Selections are populated.
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding, positioned for editor navigation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies each analyzer to the package and returns the surviving
// diagnostics: findings suppressed by a well-formed //lint:allow
// directive are dropped, and malformed directives (no reason, or no
// analyzer name) are reported as findings themselves. Diagnostics come
// back sorted by position for stable output.
func Run(analyzers []*Analyzer, pkg *Package) []Diagnostic {
	allow := collectAllows(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		if err := a.Run(pass); err != nil {
			out = append(out, Diagnostic{
				Analyzer: a.Name,
				Message:  fmt.Sprintf("internal error: %v", err),
			})
			continue
		}
		for _, d := range pass.diags {
			if allow.covers(d) {
				continue
			}
			out = append(out, d)
		}
	}
	out = append(out, allow.malformed...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// allowDirective is the parsed form of one //lint:allow comment.
const allowPrefix = "lint:allow"

// allowSet indexes //lint:allow directives by file and line. A
// directive covers findings by the named analyzer on its own line and
// on the line immediately below (the "comment above the statement"
// idiom).
type allowSet struct {
	byLine    map[string]map[int]map[string]bool // file -> line -> analyzer set
	malformed []Diagnostic
}

func collectAllows(fset *token.FileSet, files []*ast.File) *allowSet {
	s := &allowSet{byLine: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+allowPrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "lintdirective",
						Message:  "malformed //lint:allow directive: want \"//lint:allow <analyzer> <reason>\"",
					})
					continue
				}
				name := fields[0]
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					s.byLine[pos.Filename] = lines
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					set := lines[ln]
					if set == nil {
						set = make(map[string]bool)
						lines[ln] = set
					}
					set[name] = true
				}
			}
		}
	}
	return s
}

func (s *allowSet) covers(d Diagnostic) bool {
	return s.byLine[d.Pos.Filename][d.Pos.Line][d.Analyzer]
}

// pathHasSuffix reports whether an import path ends with one of the
// given slash-separated suffixes ("internal/gibbs" matches both the
// real package and a fixture type-checked under a declared path).
func pathHasSuffix(path string, suffixes []string) bool {
	for _, suf := range suffixes {
		if path == suf || strings.HasSuffix(path, "/"+suf) {
			return true
		}
	}
	return false
}
