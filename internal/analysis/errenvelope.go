package analysis

import (
	"go/ast"
	"go/constant"
)

// envelopeFunnels are the only functions allowed to write an error
// status directly: WriteError builds the JSON envelope
// {"error":{code,message,retryAfter,traceId}} and writeJSON is its
// serializer (both packages keep a writeJSON with the same contract).
// Everything else must refuse through them, which is what keeps the
// PR 8 error contract total: stable codes, Retry-After mirroring, and
// trace-id stamping on every refusal.
var envelopeFunnels = map[string]bool{
	"WriteError": true,
	"writeJSON":  true,
}

// Errenvelope forbids bare HTTP refusals in the serving packages: no
// http.Error, and no w.WriteHeader with a constant 4xx/5xx status
// outside the envelope funnel. Non-constant statuses (proxy
// passthrough of a backend's already-enveloped response) are exempt by
// construction.
var Errenvelope = &Analyzer{
	Name: "errenvelope",
	Doc: "every HTTP refusal in internal/service and internal/router goes through " +
		"the JSON error-envelope helper; no bare http.Error or constant 4xx/5xx WriteHeader",
	Run: runErrenvelope,
}

func runErrenvelope(pass *Pass) error {
	if !pathHasSuffix(pass.Pkg.Path(), servingPackages) {
		return nil
	}
	for _, f := range pass.Files {
		withStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if name, ok := pkgFunc(pass.TypesInfo, call, "net/http"); ok && name == "Error" {
				pass.Reportf(call.Pos(),
					"http.Error bypasses the JSON error envelope; refuse via WriteError (code, Retry-After, traceId)")
				return
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "WriteHeader" || len(call.Args) != 1 {
				return
			}
			tv := pass.TypesInfo.Types[call.Args[0]]
			if tv.Value == nil || tv.Value.Kind() != constant.Int {
				return
			}
			status, ok := constant.Int64Val(tv.Value)
			if !ok || status < 400 {
				return
			}
			if envelopeFunnels[enclosingFuncName(stack)] {
				return
			}
			pass.Reportf(call.Pos(),
				"bare WriteHeader(%d) outside the envelope funnel; refuse via WriteError so the JSON error contract stays total", status)
		})
	}
	return nil
}
