package analysis_test

import (
	"strings"
	"testing"

	"factcheck/internal/analysis"
)

// TestAllowDirectives pins the escape hatch's audit rules: a reason is
// mandatory, suppression is per-analyzer, and a well-formed directive
// silences exactly the finding on (or below) its line.
func TestAllowDirectives(t *testing.T) {
	pkg, err := analysis.LoadDir("testdata/directives", "factcheck/internal/gibbs")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags := analysis.Run([]*analysis.Analyzer{analysis.Detrand}, pkg)

	var gotMalformed, gotUnsuppressed int
	for _, d := range diags {
		switch {
		case d.Analyzer == "lintdirective" && strings.Contains(d.Message, "malformed"):
			gotMalformed++
		case d.Analyzer == "detrand":
			gotUnsuppressed++
		default:
			t.Errorf("unexpected diagnostic: %v", d)
		}
	}
	// missingReason: the reasonless directive is malformed and does not
	// suppress, so its rand.Intn reports too. wrongAnalyzer: the
	// errenvelope-scoped directive leaves the detrand finding standing.
	// properlySuppressed: silence.
	if gotMalformed != 1 {
		t.Errorf("malformed-directive findings = %d, want 1\n%v", gotMalformed, diags)
	}
	if gotUnsuppressed != 2 {
		t.Errorf("unsuppressed detrand findings = %d, want 2\n%v", gotUnsuppressed, diags)
	}
}
