package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// PkgPath is the import path the package was type-checked under.
	PkgPath string
	// Dir is the directory holding the sources.
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Load lists the packages matching patterns (go list syntax, e.g.
// "./...") from dir and type-checks each from source. Dependency types
// come from compiler export data via `go list -export -deps`, so
// loading works offline and without golang.org/x/tools — the same
// trick go/packages plays, minus the module dependency.
//
// Test files are not loaded: the invariants under analysis are
// production invariants, and test helpers (fake clocks, seeded
// rand.New streams) would drown the signal.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, append([]string{"-json=ImportPath,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports, err := exportData(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := typeCheck(t.ImportPath, t.Dir, files, exports)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", t.ImportPath, err)
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// LoadDir parses every .go file in dir and type-checks them as a
// package imported as declaredPath. Fixture packages use this to
// impersonate real packages (an analyzer that scopes itself to
// internal/gibbs sees a testdata directory declared as such), with
// imports — stdlib and this module's — resolved through export data
// from the enclosing module.
func LoadDir(dir, declaredPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("loaddir %s: no .go files", dir)
	}
	sort.Strings(files)
	root, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	// Collect the fixture's imports syntactically, then ask the module
	// for their export data (plus transitive deps).
	fset := token.NewFileSet()
	importSet := map[string]bool{}
	for _, f := range files {
		pf, err := parser.ParseFile(fset, f, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, im := range pf.Imports {
			p, err := strconv.Unquote(im.Path.Value)
			if err != nil {
				return nil, fmt.Errorf("loaddir %s: bad import %s", dir, im.Path.Value)
			}
			importSet[p] = true
		}
	}
	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	exports := map[string]string{}
	if len(imports) > 0 {
		exports, err = exportData(root, imports...)
		if err != nil {
			return nil, err
		}
	}
	pkg, err := typeCheck(declaredPath, dir, files, exports)
	if err != nil {
		return nil, fmt.Errorf("loaddir %s: %w", dir, err)
	}
	return pkg, nil
}

// listedPackage is the subset of `go list -json` output the loader
// reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
}

func goList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportData maps every dependency of patterns (the listed packages
// included) to its compiled export-data file. `go list -export`
// compiles through the build cache, so this is warm after the first
// run and needs no network.
func exportData(dir string, patterns ...string) (map[string]string, error) {
	pkgs, err := goList(dir, append([]string{"-deps", "-export", "-json=ImportPath,Export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

func typeCheck(pkgPath, dir string, filenames []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, f := range filenames {
		pf, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, pf)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// moduleRoot walks up from dir to the enclosing go.mod.
func moduleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		d = parent
	}
}
