package analysis

import (
	"errors"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "pkg/file.go", Line: 12, Column: 3},
		Analyzer: "detrand",
		Message:  "global math/rand",
	}
	want := "pkg/file.go:12:3: [detrand] global math/rand"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestRunReportsAnalyzerError(t *testing.T) {
	boom := &Analyzer{
		Name: "boom",
		Doc:  "always fails",
		Run:  func(*Pass) error { return errors.New("exploded") },
	}
	diags := Run([]*Analyzer{boom}, &Package{Fset: token.NewFileSet()})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "boom" || !strings.Contains(diags[0].Message, "internal error: exploded") {
		t.Errorf("unexpected diagnostic: %v", diags[0])
	}
}

func TestRootIdent(t *testing.T) {
	cases := []struct {
		expr string
		want string // "" means nil
	}{
		{"m", "m"},
		{"m.sessions", "m"},
		{"m.sessions[id].x", "m"},
		{"(*p).f", "p"},
		{"s[1:2]", "s"},
		{"&x.y", "x"},
		{"f().y", ""},
		{"map[string]int{}", ""},
	}
	for _, tc := range cases {
		e, err := parser.ParseExpr(tc.expr)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", tc.expr, err)
		}
		id := rootIdent(e)
		got := ""
		if id != nil {
			got = id.Name
		}
		if got != tc.want {
			t.Errorf("rootIdent(%q) = %q, want %q", tc.expr, got, tc.want)
		}
	}
}

func TestEnclosingFuncName(t *testing.T) {
	src := `package p
func named() {
	_ = 1
}
var lit = func() {
	_ = 2
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	var inNamed, inLit, atTop string
	seen := 0
	withStack(f, func(n ast.Node, stack []ast.Node) {
		if _, ok := n.(*ast.AssignStmt); ok {
			seen++
			if seen == 1 {
				inNamed = enclosingFuncName(stack)
			} else {
				inLit = enclosingFuncName(stack)
			}
		}
		if _, ok := n.(*ast.File); ok {
			atTop = enclosingFuncName(stack)
		}
	})
	if inNamed != "named" {
		t.Errorf("inside func named: got %q, want %q", inNamed, "named")
	}
	if inLit != "" {
		t.Errorf("inside func literal: got %q, want %q", inLit, "")
	}
	if atTop != "" {
		t.Errorf("at file scope: got %q, want %q", atTop, "")
	}
}

func TestPathHasSuffix(t *testing.T) {
	suf := []string{"internal/gibbs", "internal/core"}
	cases := []struct {
		path string
		want bool
	}{
		{"internal/gibbs", true},
		{"factcheck/internal/gibbs", true},
		{"factcheck/internal/core", true},
		{"notinternal/gibbs", false},
		{"factcheck/internal/gibbs/sub", false},
		{"", false},
	}
	for _, tc := range cases {
		if got := pathHasSuffix(tc.path, suf); got != tc.want {
			t.Errorf("pathHasSuffix(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
}

func TestUsesAnyEdgeCases(t *testing.T) {
	if usesAny(nil, nil, map[types.Object]bool{}) {
		t.Error("usesAny(nil node) = true, want false")
	}
	e, err := parser.ParseExpr("a + b")
	if err != nil {
		t.Fatal(err)
	}
	if usesAny(nil, e, nil) {
		t.Error("usesAny with no objects = true, want false")
	}
}

func TestLoadBadPattern(t *testing.T) {
	root, err := moduleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(root, "./does-not-exist-xyzzy"); err == nil {
		t.Error("Load with a bad pattern succeeded, want error")
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir(), "missing"), "x"); err == nil {
		t.Error("LoadDir on a missing dir succeeded, want error")
	}

	empty := t.TempDir()
	if _, err := LoadDir(empty, "x"); err == nil || !strings.Contains(err.Error(), "no .go files") {
		t.Errorf("LoadDir on an empty dir: got %v, want a no-.go-files error", err)
	}

	// A directory outside any module: moduleRoot must fail.
	noMod := t.TempDir()
	if err := os.WriteFile(filepath.Join(noMod, "a.go"), []byte("package a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(noMod, "a"); err == nil || !strings.Contains(err.Error(), "no go.mod") {
		t.Errorf("LoadDir outside a module: got %v, want a no-go.mod error", err)
	}

	// A syntax error in the full parse (past the imports-only prepass).
	// The fixture must live inside the module so moduleRoot succeeds;
	// testdata is invisible to go list, so the self-scan never sees it.
	bad, err := os.MkdirTemp("testdata", "broken-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(bad) })
	src := "package b\n\nfunc broken() {\n"
	if err := os.WriteFile(filepath.Join(bad, "b.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(bad, "b"); err == nil {
		t.Error("LoadDir on a syntactically broken file succeeded, want error")
	}
}
