package analysis

import (
	"go/ast"
	"go/types"
)

// withStack walks every node in f, invoking visit with the node and
// the stack of its ancestors (outermost first, node not included).
func withStack(f *ast.File, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}

// rootIdent unwraps selectors, index expressions, parens, stars and
// calls down to the leftmost identifier: rootIdent(m.sessions[id].x)
// is m. Returns nil when the expression is not rooted in an ident
// (say, a function call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objOf resolves an identifier to its object, through either a use or
// a definition.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// usesAny reports whether the subtree rooted at n mentions any of the
// given objects.
func usesAny(info *types.Info, n ast.Node, objs map[types.Object]bool) bool {
	if n == nil || len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok {
			if o := objOf(info, id); o != nil && objs[o] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// pkgFunc reports whether the call's callee is a package-level
// function of the package with the given import path, returning its
// name. Methods and non-package callees return false.
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	obj, ok := objOf(info, id).(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return "", false
	}
	if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
		return "", false
	}
	return obj.Name(), true
}

// enclosingFuncName walks the ancestor stack for the nearest named
// function declaration ("" inside a bare func literal).
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		switch d := stack[i].(type) {
		case *ast.FuncLit:
			return ""
		case *ast.FuncDecl:
			return d.Name.Name
		}
	}
	return ""
}
