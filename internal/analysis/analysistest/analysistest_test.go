package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"factcheck/internal/analysis"
)

// fakeT records failures instead of failing, so the harness's own
// mismatch reporting is testable. Fatalf panics with a sentinel to
// model testing.T's stop-the-test semantics.
type fakeT struct {
	errors []string
	fatals []string
}

type fatalSentinel struct{}

func (f *fakeT) Helper() {}

func (f *fakeT) Errorf(format string, args ...any) {
	f.errors = append(f.errors, fmt.Sprintf(format, args...))
}

func (f *fakeT) Fatalf(format string, args ...any) {
	f.fatals = append(f.fatals, fmt.Sprintf(format, args...))
	panic(fatalSentinel{})
}

func expectFatal(t *testing.T, f *fakeT, fn func()) {
	t.Helper()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected a Fatalf, got none")
		} else if _, ok := r.(fatalSentinel); !ok {
			panic(r)
		}
		if len(f.fatals) == 0 {
			t.Fatal("panic without a recorded Fatalf")
		}
	}()
	fn()
}

// writeFixture materializes one fixture file inside the module (the
// loader walks up to go.mod), invisible to go list under testdata.
func writeFixture(t *testing.T, src string) string {
	t.Helper()
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp("testdata", "fix-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunCleanFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("loads export data via go list")
	}
	f := &fakeT{}
	dir := writeFixture(t, `package gibbs

import "time"

func noisy() time.Time {
	return time.Now() // want "wall clock"
}

func quiet() int {
	return 1
}
`)
	Run(f, dir, "factcheck/internal/gibbs", analysis.Detrand)
	if len(f.errors) != 0 || len(f.fatals) != 0 {
		t.Errorf("clean fixture produced failures: %v %v", f.errors, f.fatals)
	}
}

func TestRunReportsMismatches(t *testing.T) {
	if testing.Short() {
		t.Skip("loads export data via go list")
	}
	f := &fakeT{}
	dir := writeFixture(t, `package gibbs

import "time"

func noisy() time.Time {
	return time.Now()
}

func quiet() int {
	return 1 // want "never reported"
}
`)
	Run(f, dir, "factcheck/internal/gibbs", analysis.Detrand)
	if len(f.errors) != 2 {
		t.Fatalf("got %d errors, want 2 (one unexpected diagnostic, one unmatched want): %v", len(f.errors), f.errors)
	}
	if !strings.Contains(f.errors[0], "unexpected diagnostic") {
		t.Errorf("first error should flag the unexpected diagnostic: %q", f.errors[0])
	}
	if !strings.Contains(f.errors[1], "expected diagnostic matching") {
		t.Errorf("second error should flag the unmatched want: %q", f.errors[1])
	}
}

func TestRunFatalOnMissingFixture(t *testing.T) {
	f := &fakeT{}
	expectFatal(t, f, func() {
		Run(f, filepath.Join(t.TempDir(), "missing"), "x", analysis.Detrand)
	})
}

func TestRunFatalOnBadWantComment(t *testing.T) {
	if testing.Short() {
		t.Skip("loads export data via go list")
	}
	f := &fakeT{}
	dir := writeFixture(t, `package gibbs

func a() int {
	return 1 // want unquoted
}
`)
	expectFatal(t, f, func() {
		Run(f, dir, "factcheck/internal/gibbs", analysis.Detrand)
	})
	if !strings.Contains(f.fatals[0], "bad want comment") {
		t.Errorf("fatal should flag the unquoted want: %q", f.fatals[0])
	}
}

func TestRunFatalOnBadWantPattern(t *testing.T) {
	if testing.Short() {
		t.Skip("loads export data via go list")
	}
	f := &fakeT{}
	dir := writeFixture(t, `package gibbs

func a() int {
	return 1 // want "("
}
`)
	expectFatal(t, f, func() {
		Run(f, dir, "factcheck/internal/gibbs", analysis.Detrand)
	})
	if !strings.Contains(f.fatals[0], "bad want pattern") {
		t.Errorf("fatal should flag the unparsable regexp: %q", f.fatals[0])
	}
}

func TestClaim(t *testing.T) {
	w := &want{file: "f.go", line: 3, re: regexp.MustCompile("boom")}
	wants := []*want{w}
	d := analysis.Diagnostic{
		Pos:     token.Position{Filename: "f.go", Line: 3},
		Message: "boom went the invariant",
	}
	if !claim(wants, d) {
		t.Fatal("matching diagnostic not claimed")
	}
	if !w.hit {
		t.Fatal("claimed want not marked hit")
	}
	if claim(wants, d) {
		t.Error("a want may only be claimed once")
	}
	other := analysis.Diagnostic{Pos: token.Position{Filename: "g.go", Line: 3}, Message: "boom"}
	if claim(wants, other) {
		t.Error("diagnostic in another file claimed a spent want")
	}
}

func TestSplitQuoted(t *testing.T) {
	got, err := splitQuoted(`"a" "b c"`)
	if err != nil || len(got) != 2 || got[0] != "a" || got[1] != "b c" {
		t.Errorf(`splitQuoted("a" "b c") = %v, %v`, got, err)
	}
	got, err = splitQuoted(`"esc\"aped"`)
	if err != nil || len(got) != 1 || got[0] != `esc"aped` {
		t.Errorf("splitQuoted escaped quote = %v, %v", got, err)
	}
	if got, err := splitQuoted(""); err != nil || got != nil {
		t.Errorf("splitQuoted empty = %v, %v", got, err)
	}
	for _, bad := range []string{`unquoted`, `"unterminated`, `"\q"`} {
		if _, err := splitQuoted(bad); err == nil {
			t.Errorf("splitQuoted(%q) succeeded, want error", bad)
		}
	}
}
