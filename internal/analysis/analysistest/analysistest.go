// Package analysistest runs analyzers over fixture packages and
// checks their findings against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest (which the module cannot
// depend on) closely enough that fixtures would port unchanged.
//
// A fixture is a directory of .go files type-checked under a declared
// import path, so an analyzer that scopes itself to trace-affecting
// packages can be pointed at testdata impersonating internal/gibbs. An
// expectation is a comment on the flagged line:
//
//	rand.Intn(6) // want "global math/rand"
//
// Each double-quoted string is a regexp that must match one diagnostic
// reported on that line; diagnostics with no matching want, and wants
// with no matching diagnostic, fail the test. Suppression directives
// (//lint:allow) are applied before matching, so escape-hatch fixtures
// assert the absence of a finding by carrying no want.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"factcheck/internal/analysis"
)

// T is the slice of testing.T the harness needs, mirroring
// x/tools analysistest.Testing so the harness itself stays testable
// with a recording fake.
type T interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// want is one expected diagnostic.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture directory as declaredPath, applies the
// analyzer (suppressions included), and matches findings against the
// fixture's // want comments.
func Run(t T, fixtureDir, declaredPath string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := analysis.LoadDir(fixtureDir, declaredPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixtureDir, err)
	}
	wants := collectWants(t, pkg)
	diags := analysis.Run([]*analysis.Analyzer{a}, pkg)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unmatched want satisfied by d.
func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

func collectWants(t T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := splitQuoted(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of double-quoted Go strings.
func splitQuoted(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			return nil, fmt.Errorf("want arguments must be double-quoted regexps, got %q", s)
		}
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated quote in %q", s)
		}
		q, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, err
		}
		out = append(out, q)
		s = strings.TrimSpace(s[end+1:])
	}
	return out, nil
}
