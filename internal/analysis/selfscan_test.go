package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"factcheck/internal/analysis"
)

// TestRepoSelfScan runs the full suite over the module — the same scan
// `factcheck-lint ./...` (and make lint) performs — and asserts it
// comes back clean. Every invariant the analyzers encode holds over
// the tree that ships them; new violations fail here before they fail
// in CI.
func TestRepoSelfScan(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check; skipped in -short")
	}
	root, err := moduleRoot()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("self-scan loaded only %d packages; loader lost the tree", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, d := range analysis.Run(analysis.All(), pkg) {
			t.Errorf("%v", d)
		}
	}
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
