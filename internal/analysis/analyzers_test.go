package analysis_test

import (
	"testing"

	"factcheck/internal/analysis"
	"factcheck/internal/analysis/analysistest"
)

// The fixture packages impersonate real packages via their declared
// import paths: detrand only fires in trace-affecting packages,
// wallclock has one rule set for internal/obs and another for the
// serving layer, errenvelope and lockdiscipline scope to the serving
// packages.

func TestDetrandFixture(t *testing.T) {
	analysistest.Run(t, "testdata/detrand", "factcheck/internal/gibbs", analysis.Detrand)
}

func TestDetrandIgnoresNonTracePackages(t *testing.T) {
	// The same sources type-checked under a non-trace-affecting path
	// produce no findings: the invariant is scoped, not global.
	pkg, err := analysis.LoadDir("testdata/detrand", "factcheck/internal/workload")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if diags := analysis.Run([]*analysis.Analyzer{analysis.Detrand}, pkg); len(diags) != 0 {
		t.Fatalf("detrand fired outside trace-affecting packages: %v", diags)
	}
}

func TestWallclockObsFixture(t *testing.T) {
	analysistest.Run(t, "testdata/wallclock_obs", "factcheck/internal/obs", analysis.Wallclock)
}

func TestWallclockServiceFixture(t *testing.T) {
	analysistest.Run(t, "testdata/wallclock_service", "factcheck/internal/service", analysis.Wallclock)
}

func TestErrenvelopeFixture(t *testing.T) {
	analysistest.Run(t, "testdata/errenvelope", "factcheck/internal/service", analysis.Errenvelope)
}

func TestErrenvelopeIgnoresOtherPackages(t *testing.T) {
	pkg, err := analysis.LoadDir("testdata/errenvelope", "factcheck/internal/workload")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if diags := analysis.Run([]*analysis.Analyzer{analysis.Errenvelope}, pkg); len(diags) != 0 {
		t.Fatalf("errenvelope fired outside the serving packages: %v", diags)
	}
}

func TestLockdisciplineFixture(t *testing.T) {
	analysistest.Run(t, "testdata/lockdiscipline", "factcheck/internal/service", analysis.Lockdiscipline)
}
