// Fixture for the wallclock analyzer's serving-side rules,
// type-checked as factcheck/internal/service: span timestamps come
// from time.Now, never the injectable test clock.
package service

import (
	"time"

	"factcheck/internal/obs"
)

type mgr struct {
	nowFn  func() time.Time
	stages *obs.Stages
}

func (m *mgr) observeSpan(stage string, start time.Time) {
	m.stages.Observe(stage, time.Since(start).Seconds())
}

func (m *mgr) wallClockedOK() {
	start := time.Now()
	m.observeSpan("answer", start)
}

func (m *mgr) inlineWallClockOK() {
	m.observeSpan("answer", time.Now())
}

func (m *mgr) injectedDirect() {
	m.observeSpan("answer", m.nowFn()) // want "injectable clock"
}

func (m *mgr) injectedViaLocal() {
	start := m.nowFn()
	m.observeSpan("answer", start) // want "injectable clock"
}

func (m *mgr) spanLiteralInjected() obs.Span {
	return obs.Span{
		Stage: "answer",
		Start: m.nowFn().UnixNano(), // want "injectable clock"
	}
}

func (m *mgr) spanLiteralOK() obs.Span {
	return obs.Span{
		Stage: "answer",
		Start: time.Now().UnixNano(),
	}
}

func (m *mgr) allowedInjected() {
	//lint:allow wallclock deterministic replay harness compares span fields, not durations
	m.observeSpan("answer", m.nowFn())
}
