// Fixture for the detrand analyzer, type-checked as
// factcheck/internal/gibbs (a trace-affecting package).
package gibbs

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"strings"
	"time"
)

// --- global math/rand ---

func globalRand() int {
	return rand.Intn(6) // want "global math/rand"
}

func globalFloat() float64 {
	rand.Shuffle(3, func(i, j int) {}) // want "global math/rand"
	return rand.Float64()              // want "global math/rand"
}

func seededRandOK() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(6)
}

// --- wall clock ---

func wallClock() time.Time {
	return time.Now() // want "wall clock"
}

func wallSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall clock"
}

func durationOK() time.Duration {
	return 3 * time.Second
}

// --- map iteration order ---

func mapRangeUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order"
		keys = append(keys, k)
	}
	return keys
}

func mapRangeSortedOK(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapRangeLocalSortOK(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sortInts(keys)
	return keys
}

func mapRangeAggregateOK(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func mapRangeIndexWrite(m map[int]string, out []string) {
	for i, v := range m { // want "map iteration order"
		out[i] = v
	}
}

func mapRangeFormatted(m map[string]int) {
	for k, v := range m { // want "map iteration order"
		fmt.Println(k, v)
	}
}

func mapRangeRebuildOK(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func mapRangeBuilderWrite(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want "map iteration order"
		b.WriteString(k)
	}
	return b.String()
}

func mapRangeSlicesSortOK(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

func sameLineAllowed() int64 {
	return rand.Int63() //lint:allow detrand fixture exercises the same-line directive placement
}

func inversePermutationAllowed(m map[int]int, out []int) {
	//lint:allow detrand inverse permutation: every index written exactly once
	for k, v := range m {
		out[v] = k
	}
}

func sortInts(s []int) {
	for a := 1; a < len(s); a++ {
		for b := a; b > 0 && s[b-1] > s[b]; b-- {
			s[b-1], s[b] = s[b], s[b-1]
		}
	}
}
