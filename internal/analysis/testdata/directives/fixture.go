// Fixture for the //lint:allow directive rules: a directive without a
// reason is itself a finding, and a directive only suppresses the
// analyzer it names.
package gibbs

import "math/rand"

func missingReason() int {
	//lint:allow detrand
	return rand.Intn(6)
}

func wrongAnalyzer() int {
	//lint:allow errenvelope stray justification aimed at the wrong check
	return rand.Intn(6)
}

func properlySuppressed() int {
	//lint:allow detrand fixture exercises the escape hatch end to end
	return rand.Intn(6)
}
