// Fixture for the errenvelope analyzer, type-checked as
// factcheck/internal/service: every refusal goes through the JSON
// error-envelope funnel.
package service

import (
	"encoding/json"
	"net/http"
)

func bareHTTPError(w http.ResponseWriter) {
	http.Error(w, "nope", http.StatusBadRequest) // want "bypasses the JSON error envelope"
}

func bareWriteHeader(w http.ResponseWriter) {
	w.WriteHeader(http.StatusNotFound) // want "bare WriteHeader\\(404\\)"
}

func bareWriteHeaderLiteral(w http.ResponseWriter) {
	w.WriteHeader(503) // want "bare WriteHeader\\(503\\)"
}

func successStatusOK(w http.ResponseWriter) {
	w.WriteHeader(http.StatusOK)
	w.WriteHeader(204)
}

// proxyPassthroughOK copies a backend's status verbatim; the value is
// not a constant, so the backend's own envelope is trusted.
func proxyPassthroughOK(w http.ResponseWriter, status int) {
	w.WriteHeader(status)
}

// writeJSON is the envelope serializer: the funnel itself may write
// any status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError builds the envelope; a constant refusal status inside the
// funnel is the point.
func WriteError(w http.ResponseWriter, code, message string) {
	w.WriteHeader(http.StatusInternalServerError)
	_ = json.NewEncoder(w).Encode(map[string]any{"error": map[string]string{"code": code, "message": message}})
}

func allowedBare(w http.ResponseWriter) {
	//lint:allow errenvelope raw TCP health probe endpoint predates the envelope contract
	w.WriteHeader(http.StatusServiceUnavailable)
}
