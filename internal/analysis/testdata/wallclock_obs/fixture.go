// Fixture for the wallclock analyzer's obs-side rules, type-checked
// as factcheck/internal/obs: the observability layer is passive and
// must not draw inference randomness.
package obs

import (
	"math/rand"
	"time"

	"factcheck/internal/stats"
)

func randInObs() int {
	return rand.Intn(6) // want "must not use math/rand"
}

func sessionRNGInObs() {
	_ = stats.NewRNG(1) // want "session RNG"
}

func streamSeedInObs() {
	_ = stats.StreamSeed // want "session RNG"
}

func histogramOK() *stats.LogHist {
	return stats.NewLogHist()
}

func wallClockOK() time.Time {
	return time.Now()
}
