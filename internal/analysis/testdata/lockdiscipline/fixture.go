// Fixture for the lockdiscipline analyzer: fields annotated
// "guarded by <mu>" are only touched with the mutex held.
package service

import "sync"

type Mgr struct {
	mu sync.Mutex
	// sessions is the live table. guarded by mu
	sessions map[string]int
	// guarded by mu
	closed bool

	rw sync.RWMutex
	// guarded by rw
	stats []int

	// plain has no annotation and is never checked.
	plain int
}

func (m *Mgr) unguardedRead() int {
	return m.sessions["x"] // want "guarded by m.mu, which is not held"
}

func (m *Mgr) unguardedWrite() {
	m.closed = true // want "guarded by m.mu, which is not held"
}

func (m *Mgr) lockedOK() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sessions["x"]
}

func (m *Mgr) rlockedOK() int {
	m.rw.RLock()
	n := len(m.stats)
	m.rw.RUnlock()
	return n
}

func (m *Mgr) wrongMutex() {
	m.rw.Lock()
	defer m.rw.Unlock()
	m.closed = true // want "guarded by m.mu, which is not held"
}

func (m *Mgr) earlyReturnOK(bad bool) {
	m.mu.Lock()
	if bad {
		m.mu.Unlock()
		return
	}
	m.sessions["x"] = 1
	m.mu.Unlock()
}

func (m *Mgr) conditionalLock(maybe bool) {
	if maybe {
		m.mu.Lock()
		defer m.mu.Unlock()
	}
	m.sessions["x"] = 1 // want "guarded by m.mu, which is not held"
}

func (m *Mgr) unlockedBelow() {
	m.mu.Lock()
	m.sessions["x"] = 1
	m.mu.Unlock()
	m.closed = true // want "guarded by m.mu, which is not held"
}

// snapshotLocked asserts by name that the caller holds mu.
func (m *Mgr) snapshotLocked() int {
	return len(m.sessions)
}

// NewMgr builds an unshared value; initialization needs no lock.
func NewMgr() *Mgr {
	m := &Mgr{sessions: make(map[string]int)}
	m.sessions["boot"] = 1
	m.plain = 2
	return m
}

func (m *Mgr) goroutineDoesNotInherit() {
	m.mu.Lock()
	defer m.mu.Unlock()
	go func() {
		m.sessions["x"] = 2 // want "guarded by m.mu, which is not held"
	}()
}

func (m *Mgr) deferredCleanupOK() {
	m.mu.Lock()
	defer func() {
		delete(m.sessions, "x")
		m.mu.Unlock()
	}()
	m.sessions["x"] = 3
}

func (m *Mgr) plainFieldOK() int {
	return m.plain
}

func (m *Mgr) allowedHandoff() {
	//lint:allow lockdiscipline lock handed off by caller via startOp, released in finishOp
	m.sessions["x"] = 4
}

func (m *Mgr) switchMerge(n int) {
	switch n {
	case 0:
		m.mu.Lock()
	default:
		m.mu.Lock()
	}
	m.sessions["x"] = 5
	m.mu.Unlock()
}

func (m *Mgr) switchPartial(n int) {
	switch n {
	case 0:
		m.mu.Lock()
	}
	m.sessions["x"] = 6 // want "guarded by m.mu, which is not held"
}

// Package-level function literals are analyzed too, starting unlocked.
var crashHook = func(m *Mgr) {
	m.closed = true // want "guarded by m.mu, which is not held"
}

func (m *Mgr) closureInCondition() {
	if func() bool { return m.closed }() { // want "guarded by m.mu, which is not held"
		return
	}
}

func (m *Mgr) panicBranchOK(ready bool) {
	m.mu.Lock()
	if !ready {
		panic("not ready")
	}
	m.sessions["x"] = 7
	m.mu.Unlock()
}

func (m *Mgr) labeledLoopOK() {
	m.mu.Lock()
retry:
	for i := 0; i < 2; i++ {
		if i == 1 {
			break retry
		}
	}
	m.sessions["x"] = 8
	m.mu.Unlock()
}

func (m *Mgr) noop() {}

// A local mutex and an unrelated method call are noise the lock
// tracker must step over without confusing them for m.mu.
func (m *Mgr) localMutexNoiseOK() int {
	var mu sync.Mutex
	mu.Lock()
	m.noop()
	n := m.plain
	mu.Unlock()
	return n
}

// The annotation names a sibling that is not a mutex, so it is
// ignored rather than enforced.
type notReally struct {
	guard int
	// guarded by guard
	data int
}

func (n *notReally) free() int {
	return n.data
}

// A *sync.Mutex sibling is an acceptable guard.
type ptrMu struct {
	mu *sync.Mutex
	// guarded by mu
	v int
}

func (p *ptrMu) lockedOK() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.v
}

func (p *ptrMu) bare() int {
	return p.v // want "guarded by p.mu, which is not held"
}
