package analysis

import (
	"go/ast"
	"go/types"
)

// servingPackages are where spans are minted: the session manager and
// the shard router.
var servingPackages = []string{
	"internal/service",
	"internal/router",
}

// obsPackages is the observability layer itself.
var obsPackages = []string{"internal/obs"}

// rngNames are the internal/stats identifiers that hand out inference
// randomness. The observability layer may use the stats histograms,
// but a span or log record that consumed a session RNG draw would
// perturb the stream and break trace neutrality.
var rngNames = map[string]bool{
	"RNG":        true,
	"NewRNG":     true,
	"StreamSeed": true,
}

// injectableClockNames are the manager-style injectable clock hooks.
// Spans are wall-clock truth for operators; the fake clocks tests
// inject advance per call and would corrupt every duration they touch
// (see service.Manager.observeSpan).
var injectableClockNames = map[string]bool{
	"nowFn": true,
	"clock": true,
}

// Wallclock enforces the observability layer's clock discipline, the
// inverse of detrand: internal/obs must never draw from math/rand or
// the session RNG machinery, and span timestamps minted in the serving
// layer must come from time.Now — never from the injectable test clock.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "spans use time.Now and never the injectable clock or a session RNG; " +
		"internal/obs stays free of inference randomness",
	Run: runWallclock,
}

func runWallclock(pass *Pass) error {
	switch {
	case pathHasSuffix(pass.Pkg.Path(), obsPackages):
		runWallclockObs(pass)
	case pathHasSuffix(pass.Pkg.Path(), servingPackages):
		runWallclockServing(pass)
	}
	return nil
}

// runWallclockObs flags any use of math/rand (v1 or v2) and any use of
// the internal/stats RNG surface inside internal/obs.
func runWallclockObs(pass *Pass) {
	for id, obj := range pass.TypesInfo.Uses {
		pkg := obj.Pkg()
		if pkg == nil {
			continue
		}
		switch {
		case pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2":
			pass.Reportf(id.Pos(),
				"internal/obs must not use %s.%s: observability is passive and never draws randomness (DESIGN.md §16)",
				pkg.Path(), obj.Name())
		case pathHasSuffix(pkg.Path(), []string{"internal/stats"}) && rngNames[obj.Name()]:
			pass.Reportf(id.Pos(),
				"internal/obs must not touch the session RNG surface (stats.%s); observability is passive (DESIGN.md §16)",
				obj.Name())
		}
	}
}

// runWallclockServing checks span-minting sites in the serving layer:
// every time.Time that reaches an obs.Span literal or an observeSpan
// call must trace back to time.Now, and in particular must not pass
// through an injectable clock field (nowFn) or method.
func runWallclockServing(pass *Pass) {
	for _, f := range pass.Files {
		withStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "observeSpan" {
					for _, a := range n.Args {
						checkSpanTime(pass, a, stack)
					}
				}
			case *ast.CompositeLit:
				if isObsSpanType(pass.TypesInfo.Types[n].Type) {
					for _, el := range n.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if key, ok := kv.Key.(*ast.Ident); ok && (key.Name == "Start" || key.Name == "Seconds") {
							checkSpanTime(pass, kv.Value, stack)
						}
					}
				}
			}
		})
	}
}

func isObsSpanType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Span" && obj.Pkg() != nil && pathHasSuffix(obj.Pkg().Path(), obsPackages)
}

// checkSpanTime validates one expression feeding a span: it must not
// mention an injectable clock, directly or through the local variable
// it was assigned from.
func checkSpanTime(pass *Pass, e ast.Expr, stack []ast.Node) {
	if mentionsInjectableClock(pass, e) {
		pass.Reportf(e.Pos(),
			"span time derives from the injectable clock; spans are wall-clock truth — use time.Now (DESIGN.md §16)")
		return
	}
	// Chase one level of local definition: `start := m.nowFn()` ...
	// `observeSpan(..., start)`.
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return
	}
	obj := objOf(pass.TypesInfo, id)
	if obj == nil {
		return
	}
	body := enclosingBody(stack)
	if body == nil {
		return
	}
	bad := false
	ast.Inspect(body, func(n ast.Node) bool {
		if bad || n == nil || n.Pos() > e.Pos() {
			return !bad
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || objOf(pass.TypesInfo, lid) != obj || i >= len(as.Rhs) {
				continue
			}
			if mentionsInjectableClock(pass, as.Rhs[i]) {
				bad = true
			}
		}
		return !bad
	})
	if bad {
		pass.Reportf(e.Pos(),
			"span time derives from the injectable clock; spans are wall-clock truth — use time.Now (DESIGN.md §16)")
	}
}

// mentionsInjectableClock reports whether the expression references a
// field or method with an injectable-clock name (nowFn, clock) or a
// clock-derived helper (nowSec).
func mentionsInjectableClock(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if ok && (injectableClockNames[sel.Sel.Name] || sel.Sel.Name == "nowSec") {
			found = true
			return false
		}
		return true
	})
	return found
}
