package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Lockdiscipline enforces "// guarded by <mu>" field annotations:
// within the annotating package, an annotated field may only be read
// or written while the named sibling mutex is held on the same
// receiver. The check is intraprocedural and deliberately
// conservative in what it blesses:
//
//   - x.mu.Lock() / x.mu.RLock() put the (x, mu) pair in the held set;
//     Unlock/RUnlock remove it; defer x.mu.Unlock() keeps it held to
//     the end of the function.
//   - At branch merges the held set is intersected over the branches
//     that can fall through (a branch ending in return/panic/continue/
//     break is excluded), so "if bad { x.mu.Unlock(); return }" keeps
//     the lock held below.
//   - Methods whose name ends in "Locked" assert the caller holds the
//     lock and are exempt.
//   - A value freshly built in the same function from a composite
//     literal (the constructor idiom) is exempt: nothing else can see
//     it yet.
//   - Function literals run with an empty held set (a goroutine does
//     not inherit its spawner's locks), except literals that are
//     deferred in place, which inherit the held set at the defer
//     statement (the "defer cleanup while holding" idiom).
//
// Anything the approximation cannot see (lock handoff across
// functions, TryLock) takes a //lint:allow lockdiscipline annotation
// with its proof obligation spelled out in the reason.
var Lockdiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "fields annotated \"guarded by mu\" are only accessed with the mutex held",
	Run:  runLockdiscipline,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// lockKey identifies one mutex instance: the object the receiver
// expression is rooted in, plus the mutex field's name.
type lockKey struct {
	root  types.Object
	mutex string
}

type lockState map[lockKey]bool

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func intersect(states []lockState) lockState {
	if len(states) == 0 {
		return lockState{}
	}
	out := make(lockState)
	for k := range states[0] {
		all := true
		for _, s := range states[1:] {
			if !s[k] {
				all = false
				break
			}
		}
		if all {
			out[k] = true
		}
	}
	return out
}

type lockChecker struct {
	pass *Pass
	// guarded maps an annotated field object to its guard's field name.
	guarded map[types.Object]string
	// guardedStructs holds the type names owning annotated fields, for
	// the constructor exemption.
	guardedStructs map[types.Object]bool
	// constructed holds local variables built from composite literals
	// of guarded structs in the function under analysis.
	constructed map[types.Object]bool
	// handledLits are function literals analyzed in place (deferred
	// closures), not to be re-analyzed with an empty held set.
	handledLits map[*ast.FuncLit]bool
	// exempt marks the whole function (name ends in "Locked").
	exempt bool
}

func runLockdiscipline(pass *Pass) error {
	c := &lockChecker{
		pass:           pass,
		guarded:        make(map[types.Object]string),
		guardedStructs: make(map[types.Object]bool),
		handledLits:    make(map[*ast.FuncLit]bool),
	}
	for _, f := range pass.Files {
		c.collectAnnotations(f)
	}
	if len(c.guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd.Name.Name, fd.Body)
		}
		// Function literals not claimed by a defer in a checked
		// function body (goroutines, callbacks, package-level vars)
		// start with no locks held.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && !c.handledLits[lit] {
				c.handledLits[lit] = true
				saved := c.constructed
				c.constructed = c.collectConstructed(lit.Body)
				c.stmt(lit.Body, lockState{})
				c.constructed = saved
			}
			return true
		})
	}
	return nil
}

func (c *lockChecker) collectAnnotations(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		owner := objOf(c.pass.TypesInfo, ts.Name)
		for _, field := range st.Fields.List {
			text := field.Doc.Text() + " " + field.Comment.Text()
			m := guardedRe.FindStringSubmatch(text)
			if m == nil {
				continue
			}
			// The named guard must be a sibling mutex field; prose
			// like "guarded by the manager's mu" (a cross-object
			// guard this intraprocedural check cannot express) is
			// not an annotation.
			if !hasMutexField(owner, m[1]) {
				continue
			}
			for _, name := range field.Names {
				if obj := objOf(c.pass.TypesInfo, name); obj != nil {
					c.guarded[obj] = m[1]
					if owner != nil {
						c.guardedStructs[owner] = true
					}
				}
			}
		}
		return true
	})
}

// hasMutexField reports whether the struct named by owner has a field
// with the given name whose type is a sync mutex (value or pointer).
func hasMutexField(owner types.Object, name string) bool {
	if owner == nil {
		return false
	}
	st, ok := owner.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != name {
			continue
		}
		t := f.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
	}
	return false
}

func (c *lockChecker) checkFunc(name string, body *ast.BlockStmt) {
	c.exempt = strings.HasSuffix(name, "Locked")
	c.constructed = c.collectConstructed(body)
	c.stmt(body, lockState{})
	c.exempt = false
}

// collectConstructed finds local variables defined from composite
// literals of guarded structs anywhere in the body: a value this
// function built is unshared until published, so its fields may be
// initialized without the lock.
func (c *lockChecker) collectConstructed(body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			e := ast.Unparen(rhs)
			if u, ok := e.(*ast.UnaryExpr); ok {
				e = ast.Unparen(u.X)
			}
			lit, ok := e.(*ast.CompositeLit)
			if !ok {
				continue
			}
			t := c.pass.TypesInfo.Types[lit].Type
			if t == nil {
				continue
			}
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok || !c.guardedStructs[named.Obj()] {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := objOf(c.pass.TypesInfo, id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// stmt checks one statement under the entry held set and returns the
// held set after it.
func (c *lockChecker) stmt(s ast.Stmt, st lockState) lockState {
	switch s := s.(type) {
	case nil:
		return st
	case *ast.BlockStmt:
		for _, inner := range s.List {
			st = c.stmt(inner, st)
		}
		return st
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)
	case *ast.IfStmt:
		st = c.stmt(s.Init, st)
		c.checkExpr(s.Cond, st)
		var outcomes []lockState
		thenSt := c.stmt(s.Body, st.clone())
		if !terminates(s.Body) {
			outcomes = append(outcomes, thenSt)
		}
		if s.Else != nil {
			elseSt := c.stmt(s.Else, st.clone())
			if !terminates(s.Else) {
				outcomes = append(outcomes, elseSt)
			}
		} else {
			outcomes = append(outcomes, st)
		}
		if len(outcomes) == 0 {
			return st // everything below is unreachable
		}
		return intersect(outcomes)
	case *ast.ForStmt:
		st = c.stmt(s.Init, st)
		c.checkExpr(s.Cond, st)
		bodySt := c.stmt(s.Body, st.clone())
		c.stmt(s.Post, bodySt)
		return intersect([]lockState{st, bodySt})
	case *ast.RangeStmt:
		c.checkExpr(s.X, st)
		bodySt := c.stmt(s.Body, st.clone())
		return intersect([]lockState{st, bodySt})
	case *ast.SwitchStmt:
		st = c.stmt(s.Init, st)
		c.checkExpr(s.Tag, st)
		return c.clauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		st = c.stmt(s.Init, st)
		c.stmt(s.Assign, st)
		return c.clauses(s.Body, st)
	case *ast.SelectStmt:
		return c.clauses(s.Body, st)
	case *ast.DeferStmt:
		// defer x.mu.Unlock() keeps the lock held below; a deferred
		// closure runs while whatever is held here is still held.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			c.handledLits[lit] = true
			c.stmt(lit.Body, st.clone())
		} else {
			c.checkExpr(s.Call.Fun, st)
		}
		for _, a := range s.Call.Args {
			c.checkExpr(a, st)
		}
		return st
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the spawner's locks.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			c.handledLits[lit] = true
			c.stmt(lit.Body, lockState{})
		} else {
			c.checkExpr(s.Call.Fun, st)
		}
		for _, a := range s.Call.Args {
			c.checkExpr(a, st)
		}
		return st
	default:
		// Leaf statements: check accesses, then apply lock operations
		// in source order.
		c.checkStmtExprs(s, st)
		return c.applyLockOps(s, st)
	}
}

// clauses folds a switch/select body: each clause starts from the
// entry state; the result intersects the fall-through outcomes. A
// switch without terminating clauses that covers no default still
// merges with the entry state via the default path.
func (c *lockChecker) clauses(body *ast.BlockStmt, st lockState) lockState {
	outcomes := []lockState{}
	hasDefault := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.checkExpr(e, st)
			}
			if cl.List == nil {
				hasDefault = true
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			stmts = cl.Body
		}
		clSt := st.clone()
		term := false
		for _, inner := range stmts {
			clSt = c.stmt(inner, clSt)
			if terminates(inner) {
				term = true
			}
		}
		if !term {
			outcomes = append(outcomes, clSt)
		}
	}
	if !hasDefault {
		outcomes = append(outcomes, st)
	}
	if len(outcomes) == 0 {
		return st
	}
	return intersect(outcomes)
}

// applyLockOps scans a leaf statement for x.<mutex>.Lock()-shaped
// calls and updates the held set in source order.
func (c *lockChecker) applyLockOps(s ast.Stmt, st lockState) lockState {
	out := st.clone()
	ast.Inspect(s, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, op, ok := c.lockOp(call)
		if !ok {
			return true
		}
		switch op {
		case "Lock", "RLock":
			out[key] = true
		case "Unlock", "RUnlock":
			delete(out, key)
		}
		return true
	})
	return out
}

// lockOp decodes x.mu.Lock() / x.Lock() into a lock key and operation.
func (c *lockChecker) lockOp(call *ast.CallExpr) (lockKey, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return lockKey{}, "", false
	}
	// x.mu.Lock(): the mutex is the last selector before the op; x.Lock()
	// (embedded mutex) uses the receiver's own name as the key.
	mutex := ""
	base := sel.X
	if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		mutex = inner.Sel.Name
		base = inner.X
	}
	root := rootIdent(base)
	if root == nil {
		if mutex == "" {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				root = id
			}
		}
		if root == nil {
			return lockKey{}, "", false
		}
	}
	obj := objOf(c.pass.TypesInfo, root)
	if obj == nil {
		return lockKey{}, "", false
	}
	if mutex == "" {
		mutex = root.Name
	}
	return lockKey{root: obj, mutex: mutex}, op, true
}

// checkStmtExprs walks a leaf statement's expressions for guarded
// accesses. Nested function literals are handled by their own pass.
func (c *lockChecker) checkStmtExprs(s ast.Stmt, st lockState) {
	ast.Inspect(s, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if !c.handledLits[lit] {
				c.handledLits[lit] = true
				c.stmt(lit.Body, lockState{})
			}
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			c.checkSelector(sel, st)
		}
		return true
	})
}

func (c *lockChecker) checkExpr(e ast.Expr, st lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if !c.handledLits[lit] {
				c.handledLits[lit] = true
				c.stmt(lit.Body, lockState{})
			}
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			c.checkSelector(sel, st)
		}
		return true
	})
}

func (c *lockChecker) checkSelector(sel *ast.SelectorExpr, st lockState) {
	obj := objOf(c.pass.TypesInfo, sel.Sel)
	if obj == nil {
		return
	}
	mutex, guarded := c.guarded[obj]
	if !guarded || c.exempt {
		return
	}
	root := rootIdent(sel.X)
	if root == nil {
		return
	}
	rootObj := objOf(c.pass.TypesInfo, root)
	if rootObj == nil || c.constructed[rootObj] {
		return
	}
	if st[lockKey{root: rootObj, mutex: mutex}] {
		return
	}
	c.pass.Reportf(sel.Sel.Pos(),
		"%s.%s is guarded by %s.%s, which is not held here; lock it, or rename the function *Locked if the caller holds it",
		root.Name, sel.Sel.Name, root.Name, mutex)
}

// terminates reports whether control cannot fall out of the bottom of
// a statement: it ends in return, a branch, or a panic/Fatal-style
// call.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			return fun.Name == "panic"
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			return name == "Fatal" || name == "Fatalf" || name == "Exit" || name == "Goexit"
		}
		return false
	case *ast.BlockStmt:
		if len(s.List) == 0 {
			return false
		}
		return terminates(s.List[len(s.List)-1])
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		return terminates(s.Body) && terminates(s.Else)
	case *ast.LabeledStmt:
		return terminates(s.Stmt)
	}
	return false
}
