package workload

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"factcheck/internal/service"
)

// newHTTPTarget boots a real factcheck-server handler on a loopback
// listener and returns a target driving it over HTTP.
func newHTTPTarget(t *testing.T, workers, maxSessions int) *ClientTarget {
	t.Helper()
	m := service.NewManager(service.Config{Workers: workers, MaxSessions: maxSessions})
	srv := httptest.NewServer(service.NewServer(m).Handler())
	t.Cleanup(func() { srv.Close(); m.Shutdown() })
	return NewClientTarget(srv.URL)
}

// TestWallMode64ConcurrentUsers is the scale acceptance test: a
// closed-loop fleet of 64 concurrent simulated users drives a real
// factcheck-server over HTTP in wall-clock mode (run under -race via
// `make race`), and the report carries real latency percentiles and the
// server's /metrics scrape.
func TestWallMode64ConcurrentUsers(t *testing.T) {
	const concurrency = 64
	sc := &Scenario{
		Name:            "wall-64",
		Seed:            31,
		Mode:            ModeWall,
		DurationSeconds: 36_000, // ended by the user cap, not the clock
		MaxUsers:        concurrency + 8,
		AnswersPerUser:  2,
		WallTimeScale:   500, // 4s of think time -> 8ms of wall time
		Arrival:         ArrivalSpec{Kind: ArrivalClosed, Concurrency: concurrency},
		Session: service.OpenRequest{
			Profile:       "wiki",
			Scale:         0.03,
			Seed:          7000,
			CandidatePool: 4,
			EM:            fastEM(),
		},
		Fleet: []FleetGroup{
			{Behavior: Behavior{Kind: KindCrowd, ThinkMedianSeconds: 4, ThinkSigma: 0.3}},
			{Behavior: Behavior{Kind: KindOracle, ThinkMedianSeconds: 4, ThinkSigma: 0.3}},
		},
	}
	target := newHTTPTarget(t, 4, sc.MaxUsers+1)
	res, err := Run(sc, target)
	if err != nil {
		t.Fatal(err)
	}
	r := &res.Report

	if r.Mode != ModeWall || r.Target != "http" {
		t.Fatalf("report header = %+v", r)
	}
	if r.UsersStarted < concurrency {
		t.Fatalf("started %d users, want >= %d", r.UsersStarted, concurrency)
	}
	if r.UsersCompleted < concurrency {
		t.Fatalf("completed %d users, want >= %d", r.UsersCompleted, concurrency)
	}
	if r.Errors != 0 || r.UsersFailed != 0 {
		t.Fatalf("errors against a healthy server: %+v (opErrors %v)", r, r.OpErrors)
	}
	if r.Answers < int64(concurrency*2) {
		t.Fatalf("answers = %d, want >= %d", r.Answers, concurrency*2)
	}

	// Wall mode must report real latency percentiles per operation…
	if r.Latency == nil {
		t.Fatal("wall report has no latency section")
	}
	ans, ok := r.Latency[opAnswer]
	if !ok || ans.Count < int64(concurrency*2) {
		t.Fatalf("answer latency digest = %+v", ans)
	}
	if !(ans.P50 > 0 && ans.P50 <= ans.P90 && ans.P90 <= ans.P99 && ans.P99 <= ans.Max) {
		t.Fatalf("p50/p90/p99/max not ordered: %+v", ans)
	}

	// …and the server-side /metrics scrape.
	if r.Server == nil {
		t.Fatal("wall report has no server scrape")
	}
	if r.Server.AnswersServed != ans.Count {
		t.Fatalf("server served %d answers, client measured %d", r.Server.AnswersServed, ans.Count)
	}
	if r.Server.AnswerLatency.P99 <= 0 || len(r.Server.AnswerLatencyBuckets) == 0 {
		t.Fatalf("server latency histogram = %+v", r.Server.AnswerLatency)
	}
	if r.DurationSeconds <= 0 || r.AnswersPerSecond <= 0 {
		t.Fatalf("wall throughput = %+v", r)
	}
}

// TestWallModePoissonArrivals covers the open-loop wall path: users
// arrive on a compressed Poisson process and run to completion.
func TestWallModePoissonArrivals(t *testing.T) {
	sc := testScenario()
	sc.Mode = ModeWall
	sc.WallTimeScale = 400
	sc.MaxUsers = 6
	sc.Arrival = ArrivalSpec{Kind: ArrivalPoisson, Rate: 0.5}
	target := newHTTPTarget(t, 2, 64)
	res, err := Run(sc, target)
	if err != nil {
		t.Fatal(err)
	}
	r := &res.Report
	if r.UsersStarted == 0 || r.Answers == 0 {
		t.Fatalf("open-loop wall run did nothing: %+v", r)
	}
	if r.Latency == nil || r.Server == nil {
		t.Fatal("wall report missing measured sections")
	}
}

// TestWallModeIngestingFleet covers the streaming path over real HTTP:
// ingesting users must drive POST /v1/sessions/{id}/claims through
// service.Client against a live server without errors.
func TestWallModeIngestingFleet(t *testing.T) {
	sc := testScenario()
	sc.Mode = ModeWall
	sc.WallTimeScale = 400
	sc.MaxUsers = 4
	sc.AnswersPerUser = 4
	sc.Fleet = []FleetGroup{
		{Behavior: Behavior{Kind: KindIngesting, IngestEvery: 2, IngestScale: 0.05, ThinkMedianSeconds: 5}},
	}
	target := newHTTPTarget(t, 2, 64)
	res, err := Run(sc, target)
	if err != nil {
		t.Fatal(err)
	}
	r := &res.Report
	if r.OpCounts[opIngest] == 0 {
		t.Fatalf("wall ingesting fleet posted no deltas: %+v", r.OpCounts)
	}
	if r.Errors != 0 || r.UsersFailed != 0 {
		t.Fatalf("errors in a clean wall ingesting run: %+v (opErrors %v)", r, r.OpErrors)
	}
}

// dropFirst slams the first n connections shut before answering (the
// shape of a server still coming up), then serves normally.
func dropFirst(n int64, next http.Handler) http.Handler {
	var seen atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if seen.Add(1) <= n {
			hj, ok := w.(http.Hijacker)
			if !ok {
				panic("test server does not support hijacking")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				panic(err)
			}
			conn.Close()
			return
		}
		next.ServeHTTP(w, r)
	})
}

// TestWallModeRetriesSurviveFlakyTransport exercises the loadtest-side
// retry policy end to end: a server that drops some connections must
// not fail the fleet, and the retries land in the report.
func TestWallModeRetriesSurviveFlakyTransport(t *testing.T) {
	m := service.NewManager(service.Config{Workers: 2, MaxSessions: 64})
	inner := service.NewServer(m).Handler()
	srv := httptest.NewServer(dropFirst(3, inner))
	t.Cleanup(func() { srv.Close(); m.Shutdown() })

	sc := testScenario()
	sc.Mode = ModeWall
	sc.WallTimeScale = 400
	sc.MaxUsers = 4
	target := NewClientTarget(srv.URL)
	res, err := Run(sc, target)
	if err != nil {
		t.Fatal(err)
	}
	r := &res.Report
	if r.Retries == 0 {
		t.Fatalf("flaky transport produced no retries: %+v", r)
	}
	if r.UsersFailed != 0 || r.Errors != 0 {
		t.Fatalf("retries did not absorb the flakiness: %+v (opErrors %v)", r, r.OpErrors)
	}
}
