package workload

import (
	"testing"

	"factcheck/internal/service"
)

func TestManagerTargetWrapsExistingManager(t *testing.T) {
	m := service.NewManager(service.Config{Workers: 1, MaxSessions: 4})
	defer m.Shutdown()
	target := NewManagerTarget(m)
	if target.Kind() != "library" || target.Manager() != m {
		t.Fatal("wrapper identity broken")
	}
	if target.Retries() != 0 {
		t.Fatal("in-process target reported retries")
	}
	mx, err := target.Metrics(true)
	if err != nil || mx.WorkersTotal != 1 {
		t.Fatalf("metrics = %+v, %v", mx, err)
	}
	// Close must not shut down a manager the target does not own.
	target.Close()
	sess, _, err := target.Open(service.OpenRequest{Profile: "wiki", Scale: 0.03, Seed: 5, EM: fastEM()})
	if err != nil {
		t.Fatalf("open after Close on a non-owning target: %v", err)
	}
	if err := sess.Delete(); err != nil {
		t.Fatal(err)
	}
}

func TestClientTargetAccessors(t *testing.T) {
	target := NewClientTarget("http://127.0.0.1:1")
	if target.Kind() != "http" || target.Client() == nil {
		t.Fatal("client target identity broken")
	}
	if target.Client().Retry == nil || target.Client().Retry.MaxAttempts < 2 {
		t.Fatal("loadtest client must ship with retries enabled")
	}
	target.Close() // no-op
}
