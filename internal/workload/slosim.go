package workload

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"factcheck/internal/service"
	"factcheck/internal/stats"
)

// This file is the scenario-replay SLO simulation behind `make
// slo-gate`: a deterministic discrete-event queue model that drives the
// REAL service.SLOController — the same state machine production
// serves with, evaluated under virtual time instead of wall seconds —
// through a scenario's arrival process. The replay reproduces the
// overload arc (breach → degrade → shed → admitted load meets the SLO)
// bit-identically run over run, so the SLO curve can be pinned as a CI
// baseline the way bench-gate pins ns/op.

// streamSLOSim seeds the replay's random streams apart from the main
// runner's.
const streamSLOSim = 0xA1177A10_00000003

// SLOSimSpec is a scenario's `slo` section: the queue-model parameters
// of the replay. The controller configuration is the service's own
// SLOConfig, so thresholds exercised in CI are exactly the thresholds
// a server runs.
type SLOSimSpec struct {
	// Controller is the overload controller under test; its P99 is the
	// SLO the gate enforces.
	Controller service.SLOConfig `json:"controller"`
	// FullAnswerSeconds is the lane-held service time of a full
	// what-if-scoring answer.
	FullAnswerSeconds float64 `json:"fullAnswerSeconds"`
	// DegradedAnswerSeconds is the service time of a degraded
	// (uncertainty-ranked) answer.
	DegradedAnswerSeconds float64 `json:"degradedAnswerSeconds"`
	// Lanes is the worker-lane budget (default 1).
	Lanes int `json:"lanes,omitempty"`
	// ThinkSeconds is each user's mean think time between answers,
	// exponentially drawn (0 = 1s).
	ThinkSeconds float64 `json:"thinkSeconds,omitempty"`
	// RetrySeconds is how long a shed user backs off before retrying —
	// the Retry-After contract (0 = 1s).
	RetrySeconds float64 `json:"retrySeconds,omitempty"`
	// CurveSeconds is the SLO-curve sampling cadence (0 = 1s).
	CurveSeconds float64 `json:"curveSeconds,omitempty"`
}

func (s *SLOSimSpec) validate() error {
	if !s.Controller.Enabled() {
		return fmt.Errorf("workload: slo.controller.p99 must be positive")
	}
	if s.FullAnswerSeconds <= 0 || s.DegradedAnswerSeconds <= 0 {
		return fmt.Errorf("workload: slo needs positive fullAnswerSeconds and degradedAnswerSeconds")
	}
	if s.DegradedAnswerSeconds > s.FullAnswerSeconds {
		return fmt.Errorf("workload: degraded answers must not cost more than full answers")
	}
	if s.Lanes < 0 || s.ThinkSeconds < 0 || s.RetrySeconds < 0 || s.CurveSeconds < 0 {
		return fmt.Errorf("workload: slo has a negative knob")
	}
	return nil
}

func (s *SLOSimSpec) lanes() int {
	if s.Lanes > 0 {
		return s.Lanes
	}
	return 1
}

func (s *SLOSimSpec) think() float64 {
	if s.ThinkSeconds > 0 {
		return s.ThinkSeconds
	}
	return 1
}

func (s *SLOSimSpec) retry() float64 {
	if s.RetrySeconds > 0 {
		return s.RetrySeconds
	}
	return 1
}

func (s *SLOSimSpec) curveEvery() float64 {
	if s.CurveSeconds > 0 {
		return s.CurveSeconds
	}
	return 1
}

// SLOCurvePoint is one sample of the replayed overload arc.
type SLOCurvePoint struct {
	// T is the virtual time of the sample.
	T float64 `json:"t"`
	// Mode is the controller rung at T.
	Mode string `json:"mode"`
	// WindowP99 is the controller's windowed p99 at T.
	WindowP99 float64 `json:"windowP99"`
	// Served/Shed/Degraded are cumulative counters at T.
	Served   int64 `json:"served"`
	Shed     int64 `json:"shed"`
	Degraded int64 `json:"degraded"`
}

// SLOReport is the replay's result: the controller-on arc, the
// controller-off counterfactual, and the summary numbers the gate
// compares against its committed baseline.
type SLOReport struct {
	Scenario   string  `json:"scenario"`
	Seed       int64   `json:"seed"`
	SLOSeconds float64 `json:"sloSeconds"`

	// Arrivals counts users who entered; Served/Shed/DegradedAnswers
	// and Breaches are the controller-on run's totals.
	Arrivals        int64 `json:"arrivals"`
	Served          int64 `json:"served"`
	Shed            int64 `json:"shed"`
	DegradedAnswers int64 `json:"degradedAnswers"`
	Breaches        int64 `json:"breaches"`

	// FirstDegradeT/FirstShedT are when the ladder first reached each
	// rung (0 = never).
	FirstDegradeT float64 `json:"firstDegradeT"`
	FirstShedT    float64 `json:"firstShedT"`

	// OverallP99 is the controller-on p99 over every served answer;
	// SteadyP99 restricts to answers that ARRIVED after the shed
	// transition — requests admitted under admission control, excluding
	// the backlog that queued up before the controller engaged. This is
	// the "admitted load meets the SLO" number.
	OverallP99 float64 `json:"overallP99"`
	SteadyP99  float64 `json:"steadyP99"`

	// ControllerOffP99 is the counterfactual: the same arrivals served
	// with the controller disabled (always full scoring, never shed).
	ControllerOffP99 float64 `json:"controllerOffP99"`

	// Curve is the controller-on arc sampled every CurveSeconds.
	Curve []SLOCurvePoint `json:"curve"`
}

// sloRequest is one in-flight answer request of the queue model.
type sloRequest struct {
	user    *sloUser
	arrived float64
}

// sloUser is one closed-loop client: think, answer, honor Retry-After
// on a shed, leave after its answer budget.
type sloUser struct {
	remaining int
}

// sloSim is the queue model's state for one pass.
type sloSim struct {
	spec *SLOSimSpec
	ctrl *service.SLOController // nil = controller-off pass
	rng  *stats.RNG

	q     eventQueue
	seq   int64
	fifo  []*sloRequest
	free  int
	waits int64

	lastT     float64
	arrivalsN int64
	served    int64
	shed      int64
	degraded  int64
	latencies []float64
	lateAfter []float64 // latencies of requests admitted at/after firstShed
	firstDeg  float64
	firstShed float64
	curve     []SLOCurvePoint
}

func (s *sloSim) push(at float64, fn func(now float64)) {
	s.seq++
	heap.Push(&s.q, &event{at: at, seq: s.seq, fn: fn})
}

// modeAt asks the controller for its rung, driving evaluation exactly
// the way Manager.withSession does; the controller-off pass always
// reads normal.
func (s *sloSim) modeAt(now float64) service.SLOMode {
	if s.ctrl == nil {
		return service.ModeNormal
	}
	m := s.ctrl.ModeAt(now, s.waits)
	if m >= service.ModeDegraded && s.firstDeg == 0 {
		s.firstDeg = now
	}
	if m == service.ModeShedding && s.firstShed == 0 {
		s.firstShed = now
	}
	return m
}

// exp draws an exponential gap with the given mean.
func (s *sloSim) exp(mean float64) float64 {
	return -math.Log1p(-s.rng.Float64()) * mean
}

// arrive handles one answer request, mirroring Manager.withSession:
// while shedding, a request that cannot take a lane immediately is
// refused (the user backs off RetrySeconds and retries); otherwise it
// takes a free lane or queues, counting lane contention exactly like
// Budget.Acquire/TryAcquire.
func (s *sloSim) arrive(now float64, req *sloRequest) {
	req.arrived = now
	if s.modeAt(now) == service.ModeShedding && s.free == 0 {
		s.waits++
		s.shed++
		if s.ctrl != nil {
			s.ctrl.RecordShed()
		}
		retry := *req
		s.push(now+s.spec.retry(), func(t float64) { s.arrive(t, &retry) })
		return
	}
	if s.free > 0 {
		s.free--
		s.start(now, req)
		return
	}
	s.waits++
	s.fifo = append(s.fifo, req)
}

// start begins service for req: the ranking mode — and so the service
// time — is stamped at execution time, after any queue wait, matching
// the server's degrade-mid-backlog behavior.
func (s *sloSim) start(now float64, req *sloRequest) {
	deg := s.modeAt(now) != service.ModeNormal
	cost := s.spec.FullAnswerSeconds
	if deg {
		cost = s.spec.DegradedAnswerSeconds
	}
	s.push(now+cost, func(t float64) { s.complete(t, req, deg) })
}

// complete finishes req's service and feeds the controller.
func (s *sloSim) complete(now float64, req *sloRequest, deg bool) {
	lat := now - req.arrived
	s.served++
	s.latencies = append(s.latencies, lat)
	if s.firstShed > 0 && req.arrived >= s.firstShed {
		s.lateAfter = append(s.lateAfter, lat)
	}
	if deg {
		s.degraded++
		if s.ctrl != nil {
			s.ctrl.RecordDegradedAnswer()
		}
	}
	if s.ctrl != nil {
		s.ctrl.ObserveAnswer(now, lat, s.waits)
	}
	// Hand the lane to the queue head, or free it.
	if len(s.fifo) > 0 {
		next := s.fifo[0]
		s.fifo = s.fifo[1:]
		s.start(now, next)
	} else {
		s.free++
	}
	// The user thinks, then submits its next answer.
	req.user.remaining--
	if req.user.remaining > 0 {
		s.push(now+s.exp(s.spec.think()), func(t float64) {
			s.arrive(t, &sloRequest{user: req.user})
		})
	}
}

// sample records one SLO-curve point.
func (s *sloSim) sample(now float64) {
	pt := SLOCurvePoint{
		T: now, Mode: service.ModeNormal.String(),
		Served: s.served, Shed: s.shed, Degraded: s.degraded,
	}
	if s.ctrl != nil {
		st := s.ctrl.Status(now, s.waits)
		pt.Mode = st.Mode
		pt.WindowP99 = st.WindowP99
	}
	s.curve = append(s.curve, pt)
}

// p99 is the nearest-rank p99 of a latency sample (0 when empty).
func p99(lats []float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	s := append([]float64(nil), lats...)
	sort.Float64s(s)
	rank := (99*len(s) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// runSLOPass replays the scenario's arrivals through the queue model
// once. withController selects the controller-on arc or the
// counterfactual.
func runSLOPass(sc *Scenario, withController bool, sampleCurve bool) *sloSim {
	spec := sc.SLO
	s := &sloSim{
		spec: spec,
		rng:  stats.NewRNG(stats.StreamSeed(uint64(sc.Seed), streamSLOSim)),
		free: spec.lanes(),
	}
	if withController {
		s.ctrl = service.NewSLOController(spec.Controller)
	}

	// Users enter per the scenario's arrival process, each a closed
	// loop of answerCap answers (default: the per-user scenario cap, or
	// 8 when the scenario leaves it open — a queue model has no session
	// to run to completion).
	answers := sc.AnswersPerUser
	if answers <= 0 {
		answers = 8
	}
	arr := newArrivals(sc)
	var nextArrival func(now float64)
	nextArrival = func(now float64) {
		if int(s.arrivalsN) >= sc.maxUsers() {
			return
		}
		s.arrivalsN++
		s.arrive(now, &sloRequest{user: &sloUser{remaining: answers}})
		if at, ok := arr.next(now); ok {
			s.push(at, nextArrival)
		}
	}
	if sc.Arrival.Kind == ArrivalClosed {
		// A closed fleet is Concurrency users all present at t=0.
		for i := 0; i < sc.Arrival.Concurrency && int(s.arrivalsN) < sc.maxUsers(); i++ {
			s.arrivalsN++
			s.arrive(0, &sloRequest{user: &sloUser{remaining: answers}})
		}
	} else if at, ok := arr.next(0); ok {
		s.push(at, nextArrival)
	}

	// Sample the curve on a fixed cadence across the horizon plus a
	// drain margin, then run events to exhaustion under a hard cap so a
	// shed/retry loop cannot spin forever.
	horizon := sc.DurationSeconds
	tMax := 2*horizon + 30
	if sampleCurve {
		for t := 0.0; t <= tMax; t += spec.curveEvery() {
			at := t
			s.push(at, func(now float64) { s.sample(now) })
		}
	}
	for s.q.Len() > 0 {
		e := heap.Pop(&s.q).(*event)
		if e.at > tMax {
			break
		}
		s.lastT = e.at
		e.fn(e.at)
	}
	return s
}

// RunSLOSim replays the scenario through the SLO queue model:
// controller-on for the arc and gate numbers, controller-off for the
// counterfactual p99. Deterministic in (scenario, seed).
func RunSLOSim(sc *Scenario) (*SLOReport, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.SLO == nil {
		return nil, fmt.Errorf("workload: scenario %q has no slo section", sc.Name)
	}
	on := runSLOPass(sc, true, true)
	off := runSLOPass(sc, false, false)
	return &SLOReport{
		Scenario:         sc.Name,
		Seed:             sc.Seed,
		SLOSeconds:       sc.SLO.Controller.P99,
		Arrivals:         on.arrivalsN,
		Served:           on.served,
		Shed:             on.shed,
		DegradedAnswers:  on.degraded,
		Breaches:         breachCount(on),
		FirstDegradeT:    on.firstDeg,
		FirstShedT:       on.firstShed,
		OverallP99:       p99(on.latencies),
		SteadyP99:        p99(on.lateAfter),
		ControllerOffP99: p99(off.latencies),
		Curve:            on.curve,
	}, nil
}

func breachCount(s *sloSim) int64 {
	if s.ctrl == nil {
		return 0
	}
	return s.ctrl.Status(s.lastT, s.waits).Breaches
}
