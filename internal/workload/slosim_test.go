package workload

import (
	"encoding/json"
	"testing"

	"factcheck/internal/service"
)

// sloScenario is a compact flash-crowd: a ramp to well past one lane's
// full-scoring capacity, with degraded serving still above capacity so
// the ladder must reach shedding.
func sloScenario() *Scenario {
	sc := testScenario()
	sc.Name = "slo-sim"
	sc.DurationSeconds = 60
	sc.MaxUsers = 60
	sc.AnswersPerUser = 6
	sc.Arrival = ArrivalSpec{Kind: ArrivalRamp, Rate: 0.5, EndRate: 10, RampSeconds: 15}
	sc.SLO = &SLOSimSpec{
		Controller: service.SLOConfig{
			P99:           0.5,
			WindowSeconds: 2,
			Slots:         4,
			MinSamples:    4,
			DegradeAfter:  2,
			ShedAfter:     2,
			RecoverAfter:  1_000,
		},
		FullAnswerSeconds:     0.5,
		DegradedAnswerSeconds: 0.15,
		Lanes:                 1,
		ThinkSeconds:          0.3,
		RetrySeconds:          1,
		CurveSeconds:          1,
	}
	return sc
}

func TestRunSLOSimOverloadArc(t *testing.T) {
	rep, err := RunSLOSim(sloScenario())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arrivals == 0 || rep.Served == 0 {
		t.Fatalf("empty replay: %+v", rep)
	}
	// The arc: breach, degrade, then persistent contention forces
	// shedding.
	if rep.Breaches == 0 {
		t.Fatal("flash crowd never breached the SLO window")
	}
	if rep.FirstDegradeT <= 0 {
		t.Fatal("controller never degraded")
	}
	if rep.FirstShedT <= rep.FirstDegradeT {
		t.Fatalf("controller never reached shedding after degrading (degrade %0.1f, shed %0.1f)",
			rep.FirstDegradeT, rep.FirstShedT)
	}
	if rep.Shed == 0 {
		t.Fatal("admission control rejected nothing")
	}
	if rep.DegradedAnswers == 0 {
		t.Fatal("no answer was served degraded")
	}
	// Admitted load under admission control meets the SLO; the
	// controller-off counterfactual breaches it.
	if rep.SteadyP99 > rep.SLOSeconds {
		t.Fatalf("steady-state p99 %0.3fs exceeds the %0.3fs SLO", rep.SteadyP99, rep.SLOSeconds)
	}
	if rep.ControllerOffP99 <= rep.SLOSeconds {
		t.Fatalf("controller-off p99 %0.3fs does not breach the %0.3fs SLO — the scenario is not an overload",
			rep.ControllerOffP99, rep.SLOSeconds)
	}
	// The curve walks the ladder monotonically up in this scenario
	// (RecoverAfter is out of reach) and carries the counters.
	prev := service.ModeNormal
	sawShedding := false
	for _, pt := range rep.Curve {
		m := service.ParseSLOMode(pt.Mode)
		if m < prev {
			t.Fatalf("curve stepped down from %s to %s at t=%0.1f with recovery out of reach", prev, pt.Mode, pt.T)
		}
		prev = m
		sawShedding = sawShedding || m == service.ModeShedding
	}
	if !sawShedding {
		t.Fatal("curve never samples the shedding rung")
	}
	last := rep.Curve[len(rep.Curve)-1]
	if last.Served == 0 || last.Shed == 0 || last.Degraded == 0 {
		t.Fatalf("final curve point lost the counters: %+v", last)
	}
}

// TestRunSLOSimDeterministic: the gate's premise — two replays of one
// scenario are byte-identical.
func TestRunSLOSimDeterministic(t *testing.T) {
	a, err := RunSLOSim(sloScenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSLOSim(sloScenario())
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("replays diverge:\n%s\n%s", ja, jb)
	}
}

func TestRunSLOSimValidation(t *testing.T) {
	sc := sloScenario()
	sc.SLO = nil
	if _, err := RunSLOSim(sc); err == nil {
		t.Fatal("replay accepted a scenario with no slo section")
	}
	cases := []func(*SLOSimSpec){
		func(s *SLOSimSpec) { s.Controller.P99 = 0 },
		func(s *SLOSimSpec) { s.FullAnswerSeconds = 0 },
		func(s *SLOSimSpec) { s.DegradedAnswerSeconds = s.FullAnswerSeconds * 2 },
		func(s *SLOSimSpec) { s.Lanes = -1 },
		func(s *SLOSimSpec) { s.ThinkSeconds = -1 },
	}
	for i, mutate := range cases {
		sc := sloScenario()
		mutate(sc.SLO)
		if err := sc.Validate(); err == nil {
			t.Errorf("case %d: invalid slo spec validated", i)
		}
	}
}
