package workload

import (
	"fmt"
	"math"
	"sort"
)

// This file is the analytical capacity model behind the SLO gate: a
// closed-form answers-per-second predictor in terms of worker lanes,
// corpus size and community count, fitted from discrete-event
// simulation sweeps. The model's shape follows the serving stack's cost
// structure: one answer's lane-held service time is an affine function
// of corpus scale — a fixed per-request overhead, a per-claim term
// (incremental inference walks claim marginals), and a per-community
// term (ranking aggregates community posteriors) — and lanes serve in
// parallel, so saturated throughput is lanes over service seconds.

// CapacitySample is one measured operating point: the saturated
// answer throughput a DES sweep observed for a given configuration.
type CapacitySample struct {
	// Lanes is the worker-lane budget.
	Lanes int `json:"lanes"`
	// Claims is the corpus size in claims.
	Claims int `json:"claims"`
	// Communities is the corpus community count.
	Communities int `json:"communities"`
	// AnswersPerSecond is the observed saturated throughput.
	AnswersPerSecond float64 `json:"answersPerSecond"`
}

// CapacityModel is the fitted predictor: an answer's service time is
//
//	seconds = A + B*claims + C*communities
//
// and lanes serve independently, so capacity = lanes / seconds.
type CapacityModel struct {
	// A is the fixed per-answer overhead in seconds.
	A float64 `json:"a"`
	// B is the per-claim service cost in seconds.
	B float64 `json:"b"`
	// C is the per-community service cost in seconds.
	C float64 `json:"c"`
}

// ServiceSeconds predicts one answer's lane-held service time.
func (m CapacityModel) ServiceSeconds(claims, communities int) float64 {
	return m.A + m.B*float64(claims) + m.C*float64(communities)
}

// AnswersPerSecond predicts the saturated answer throughput of a
// server with the given lane budget and corpus shape.
func (m CapacityModel) AnswersPerSecond(lanes, claims, communities int) float64 {
	s := m.ServiceSeconds(claims, communities)
	if s <= 0 {
		return 0
	}
	return float64(lanes) / s
}

// FitCapacityModel fits the affine service-time model to sweep samples
// by least squares on observed service seconds (lanes / throughput):
// the 3×3 normal equations of the design [1, claims, communities],
// solved by Gaussian elimination with partial pivoting. At least three
// samples with a non-degenerate design (varying claims AND varying
// communities) are required.
func FitCapacityModel(samples []CapacitySample) (CapacityModel, error) {
	if len(samples) < 3 {
		return CapacityModel{}, fmt.Errorf("workload: capacity fit needs >= 3 samples, got %d", len(samples))
	}
	// Normal equations X'X beta = X'y over x = [1, claims, communities],
	// y = observed per-answer service seconds.
	var xtx [3][3]float64
	var xty [3]float64
	for _, s := range samples {
		if s.AnswersPerSecond <= 0 || s.Lanes <= 0 {
			return CapacityModel{}, fmt.Errorf("workload: capacity sample needs positive lanes and throughput: %+v", s)
		}
		x := [3]float64{1, float64(s.Claims), float64(s.Communities)}
		y := float64(s.Lanes) / s.AnswersPerSecond
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				xtx[i][j] += x[i] * x[j]
			}
			xty[i] += x[i] * y
		}
	}
	beta, ok := solve3(xtx, xty)
	if !ok {
		return CapacityModel{}, fmt.Errorf("workload: capacity design is degenerate; sweep both claims and communities")
	}
	return CapacityModel{A: beta[0], B: beta[1], C: beta[2]}, nil
}

// solve3 solves a 3×3 linear system by Gaussian elimination with
// partial pivoting; ok = false when the matrix is (numerically)
// singular.
func solve3(a [3][3]float64, b [3]float64) ([3]float64, bool) {
	for col := 0; col < 3; col++ {
		pivot := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return [3]float64{}, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c < 3; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	return [3]float64{b[0] / a[0][0], b[1] / a[1][1], b[2] / a[2][2]}, true
}

// SimulateCapacity measures saturated answer throughput with a tiny
// closed-loop discrete-event simulation: `users` zero-think closed-loop
// clients against `lanes` parallel lanes, each answer holding a lane
// for serviceSeconds. Deterministic — no randomness enters; the DES is
// exact for this model and the function exists so sweeps and the fitted
// model share one definition of "measured capacity".
func SimulateCapacity(lanes int, serviceSeconds float64, users int, horizonSeconds float64) float64 {
	if lanes < 1 || users < 1 || serviceSeconds <= 0 || horizonSeconds <= 0 {
		return 0
	}
	// Each lane serves back-to-back while a client is waiting; with
	// zero-think closed loops, min(users, lanes) lanes stay busy.
	busy := lanes
	if users < busy {
		busy = users
	}
	// Event walk per lane: completions at k*serviceSeconds.
	var served int64
	for l := 0; l < busy; l++ {
		served += int64(math.Floor(horizonSeconds / serviceSeconds))
	}
	return float64(served) / horizonSeconds
}

// CapacitySweep runs SimulateCapacity across the cross-product of lane
// budgets and corpus shapes, with per-answer cost supplied by costOf
// (seconds for a corpus of the given claims and communities). The
// returned samples are sorted and ready for FitCapacityModel.
func CapacitySweep(costOf func(claims, communities int) float64, lanes, claims, communities []int, horizonSeconds float64) []CapacitySample {
	var out []CapacitySample
	for _, l := range lanes {
		for _, cl := range claims {
			for _, co := range communities {
				s := costOf(cl, co)
				aps := SimulateCapacity(l, s, 4*l, horizonSeconds)
				out = append(out, CapacitySample{Lanes: l, Claims: cl, Communities: co, AnswersPerSecond: aps})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Lanes != b.Lanes {
			return a.Lanes < b.Lanes
		}
		if a.Claims != b.Claims {
			return a.Claims < b.Claims
		}
		return a.Communities < b.Communities
	})
	return out
}
