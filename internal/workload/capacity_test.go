package workload

import (
	"math"
	"testing"
)

// syntheticCost is a ground-truth affine service-time law the fit
// should recover through the sweep.
func syntheticCost(claims, communities int) float64 {
	return 0.004 + 0.00025*float64(claims) + 0.0015*float64(communities)
}

func TestFitCapacityModelRecoversSweep(t *testing.T) {
	samples := CapacitySweep(syntheticCost,
		[]int{1, 2, 4}, []int{50, 200, 800}, []int{2, 8, 24}, 10_000)
	if len(samples) != 27 {
		t.Fatalf("sweep produced %d samples, want 27", len(samples))
	}
	m, err := FitCapacityModel(samples)
	if err != nil {
		t.Fatal(err)
	}
	// The DES quantizes to whole answers over the horizon, so recovery
	// is near-exact but not bit-exact.
	if math.Abs(m.A-0.004) > 1e-3 || math.Abs(m.B-0.00025) > 1e-5 || math.Abs(m.C-0.0015) > 1e-4 {
		t.Fatalf("fit = %+v, want ~{0.004 0.00025 0.0015}", m)
	}
	// Prediction at an unswept operating point stays within 2%.
	lanes, claims, comms := 3, 500, 12
	want := float64(lanes) / syntheticCost(claims, comms)
	got := m.AnswersPerSecond(lanes, claims, comms)
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("predicted %0.2f answers/s, true %0.2f", got, want)
	}
}

func TestFitCapacityModelErrors(t *testing.T) {
	if _, err := FitCapacityModel(nil); err == nil {
		t.Fatal("fit accepted an empty sample set")
	}
	if _, err := FitCapacityModel([]CapacitySample{
		{Lanes: 1, Claims: 10, Communities: 2, AnswersPerSecond: 5},
		{Lanes: 1, Claims: 20, Communities: 2, AnswersPerSecond: 4},
	}); err == nil {
		t.Fatal("fit accepted two samples")
	}
	// Claims and communities never vary: the design is rank-deficient.
	degenerate := []CapacitySample{
		{Lanes: 1, Claims: 10, Communities: 2, AnswersPerSecond: 5},
		{Lanes: 2, Claims: 10, Communities: 2, AnswersPerSecond: 10},
		{Lanes: 4, Claims: 10, Communities: 2, AnswersPerSecond: 20},
	}
	if _, err := FitCapacityModel(degenerate); err == nil {
		t.Fatal("fit accepted a degenerate design")
	}
	bad := []CapacitySample{
		{Lanes: 1, Claims: 10, Communities: 2, AnswersPerSecond: 0},
		{Lanes: 1, Claims: 20, Communities: 4, AnswersPerSecond: 4},
		{Lanes: 1, Claims: 30, Communities: 8, AnswersPerSecond: 3},
	}
	if _, err := FitCapacityModel(bad); err == nil {
		t.Fatal("fit accepted a zero-throughput sample")
	}
}

func TestSimulateCapacityScalesWithLanes(t *testing.T) {
	one := SimulateCapacity(1, 0.1, 8, 1000)
	four := SimulateCapacity(4, 0.1, 16, 1000)
	if one <= 0 || math.Abs(four-4*one)/four > 0.01 {
		t.Fatalf("capacity does not scale with lanes: 1 lane %0.2f, 4 lanes %0.2f", one, four)
	}
	// Fewer clients than lanes: clients, not lanes, bound throughput.
	starved := SimulateCapacity(8, 0.1, 2, 1000)
	if math.Abs(starved-2*one)/starved > 0.01 {
		t.Fatalf("client-bound capacity %0.2f, want ~%0.2f", starved, 2*one)
	}
	if SimulateCapacity(0, 0.1, 1, 10) != 0 || SimulateCapacity(1, 0, 1, 10) != 0 {
		t.Fatal("invalid inputs should report zero capacity")
	}
}
