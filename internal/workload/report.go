package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"factcheck/internal/service"
	"factcheck/internal/stats"
)

// Operation labels used across telemetry.
const (
	opOpen   = "open"
	opNext   = "next"
	opAnswer = "answer"
	opIngest = "ingest"
	opDelete = "delete"
)

// recorder collects per-operation telemetry: counts, errors, and
// wall-clock latency histograms. It is shared by every user of a run;
// all methods are safe for concurrent use (the wall runner hits it from
// one goroutine per user).
type recorder struct {
	mu     sync.Mutex
	ops    map[string]*stats.LogHist
	counts map[string]int64
	errs   map[string]int64
}

func newRecorder() *recorder {
	return &recorder{
		ops:    make(map[string]*stats.LogHist),
		counts: make(map[string]int64),
		errs:   make(map[string]int64),
	}
}

// timed runs one operation, folding its wall latency (and error, if
// any) into the telemetry. The measured wall time never feeds back into
// scheduling, so it cannot perturb a virtual-clock run.
func (r *recorder) timed(op string, f func() error) error {
	start := time.Now()
	err := f()
	sec := time.Since(start).Seconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counts[op]++
	if err != nil {
		r.errs[op]++
	} else {
		h, ok := r.ops[op]
		if !ok {
			h = stats.NewLogHist()
			r.ops[op] = h
		}
		h.Add(sec)
	}
	return err
}

func (r *recorder) snapshot() (counts, errs map[string]int64, latency map[string]stats.Summary) {
	r.mu.Lock()
	defer r.mu.Unlock()
	counts = make(map[string]int64, len(r.counts))
	for k, v := range r.counts {
		counts[k] = v
	}
	errs = make(map[string]int64, len(r.errs))
	for k, v := range r.errs {
		errs[k] = v
	}
	latency = make(map[string]stats.Summary, len(r.ops))
	for k, h := range r.ops {
		latency[k] = h.Summary()
	}
	return counts, errs, latency
}

// CurvePoint is one point of the quality-vs-effort curve: the state of
// the fleet's sessions after their k-th answer, averaged over every
// session that got that far. Gain ties the curve back to the paper's
// Fig. 5–7 framing — precision bought per elicited answer.
type CurvePoint struct {
	// Answers is k, the number of answers submitted.
	Answers int `json:"answers"`
	// Sessions is how many sessions reached k answers.
	Sessions int `json:"sessions"`
	// MeanPrecision is the mean grounding precision at k.
	MeanPrecision float64 `json:"meanPrecision"`
	// MeanEffort is the mean labeled fraction |C_L|/|C| at k.
	MeanEffort float64 `json:"meanEffort"`
	// MeanGain is the mean precision improvement over the same
	// sessions' pre-validation baseline.
	MeanGain float64 `json:"meanGain"`
}

// Report is a run's result. In virtual mode it is a deterministic
// function of (scenario, seed): identical runs marshal to identical
// JSON bytes, so reports can be diffed and pinned in CI. The
// wall-clock-dependent sections (Latency, Server, Retries) are
// populated only in wall mode for exactly that reason.
type Report struct {
	Scenario string `json:"scenario"`
	Mode     string `json:"mode"`
	Target   string `json:"target"`
	Seed     int64  `json:"seed"`
	// DurationSeconds is the scenario horizon in virtual mode and the
	// measured elapsed wall time in wall mode.
	DurationSeconds float64 `json:"durationSeconds"`

	UsersStarted     int `json:"usersStarted"`
	UsersCompleted   int `json:"usersCompleted"`
	UsersAbandoned   int `json:"usersAbandoned"`
	UsersFailed      int `json:"usersFailed"`
	UsersActiveAtEnd int `json:"usersActiveAtEnd"`
	// UsersPerGroup counts started users per fleet group, keyed by the
	// group's name (or behavior kind when unnamed).
	UsersPerGroup map[string]int `json:"usersPerGroup"`

	Answers int64 `json:"answers"`
	Skips   int64 `json:"skips"`
	Errors  int64 `json:"errors"`
	// Retries counts transport retries by the HTTP client (wall mode
	// against a real server; always 0 in-process).
	Retries int64 `json:"retries,omitempty"`
	// AnswersPerSecond is Answers over DurationSeconds — virtual
	// throughput under the modeled think times, or real wall
	// throughput.
	AnswersPerSecond float64 `json:"answersPerSecond"`

	// OpCounts and OpErrors break operations down by kind
	// (open/next/answer/delete).
	OpCounts map[string]int64 `json:"opCounts"`
	OpErrors map[string]int64 `json:"opErrors,omitempty"`

	// Latency holds the measured per-operation wall-latency digests
	// (seconds). Wall mode only: wall measurements in a virtual report
	// would break bit-reproducibility.
	Latency map[string]stats.Summary `json:"latency,omitempty"`

	// Quality is the quality-vs-effort curve over the fleet.
	Quality []CurvePoint `json:"quality"`

	// Server is the target's /metrics scrape at the end of the run
	// (wall mode only).
	Server *service.Metrics `json:"server,omitempty"`

	// SLORungHistory records the overload controller's rung transitions
	// observed over the run, sampled from the target's metrics (wall
	// mode only — a wall-clock sampling schedule in a virtual report
	// would break bit-reproducibility). Empty when the target runs
	// without a controller.
	SLORungHistory []RungSample `json:"sloRungHistory,omitempty"`
}

// RungSample is one observed SLO-controller rung transition: the rung
// entered and the elapsed run seconds when the sampler first saw it.
type RungSample struct {
	T    float64 `json:"t"`
	Mode string  `json:"mode"`
}

// Result pairs the report with the informational wall-latency digests,
// which are always measured (virtual runs included) but only merged
// into the report in wall mode.
type Result struct {
	Report Report
	// WallLatency is the measured per-operation latency regardless of
	// mode; in wall mode it equals Report.Latency.
	WallLatency map[string]stats.Summary
}

// groupLabel names a fleet group in reports.
func groupLabel(g *FleetGroup) string {
	if g.Name != "" {
		return g.Name
	}
	return g.Behavior.Kind
}

// buildQuality folds the per-user precision/effort trajectories into
// the fleet curve. Users are sorted into index order first (the wall
// runner appends them in completion-race order) and sums are plain
// left-to-right additions, so the curve is deterministic for a fixed
// fleet regardless of how the runner interleaved the users.
func buildQuality(users []*fleetUser) []CurvePoint {
	users = append([]*fleetUser(nil), users...)
	sort.Slice(users, func(i, j int) bool { return users[i].idx < users[j].idx })
	maxK := 0
	for _, u := range users {
		if len(u.precisions)-1 > maxK {
			maxK = len(u.precisions) - 1
		}
	}
	var curve []CurvePoint
	for k := 0; k <= maxK; k++ {
		var prec, eff, gain float64
		n := 0
		for _, u := range users {
			if len(u.precisions) <= k {
				continue
			}
			n++
			prec += u.precisions[k]
			eff += u.efforts[k]
			gain += u.precisions[k] - u.precisions[0]
		}
		if n == 0 {
			continue
		}
		curve = append(curve, CurvePoint{
			Answers:       k,
			Sessions:      n,
			MeanPrecision: prec / float64(n),
			MeanEffort:    eff / float64(n),
			MeanGain:      gain / float64(n),
		})
	}
	return curve
}

// buildReport assembles the report from a finished run's users and
// telemetry.
func buildReport(sc *Scenario, target Target, users []*fleetUser, rec *recorder, elapsed float64, wall bool, rungs []RungSample) *Result {
	counts, errs, latency := rec.snapshot()
	r := Report{
		Scenario:        sc.Name,
		Mode:            sc.mode(),
		Target:          target.Kind(),
		Seed:            sc.Seed,
		DurationSeconds: elapsed,
		UsersStarted:    len(users),
		UsersPerGroup:   make(map[string]int),
		OpCounts:        counts,
		Quality:         buildQuality(users),
	}
	if len(errs) > 0 {
		r.OpErrors = errs
	}
	for _, u := range users {
		r.UsersPerGroup[groupLabel(&sc.Fleet[u.groupIdx])]++
		r.Answers += int64(u.answers)
		r.Skips += int64(u.skips)
		switch u.outcome {
		case outcomeCompleted:
			r.UsersCompleted++
		case outcomeAbandoned:
			r.UsersAbandoned++
		case outcomeFailed:
			r.UsersFailed++
		default:
			r.UsersActiveAtEnd++
		}
	}
	for _, n := range errs {
		r.Errors += n
	}
	if elapsed > 0 {
		r.AnswersPerSecond = float64(r.Answers) / elapsed
	}
	if wall {
		r.Latency = latency
		r.Retries = target.Retries()
		r.SLORungHistory = rungs
		if m, err := target.Metrics(true); err == nil {
			r.Server = &m
		}
	}
	return &Result{Report: r, WallLatency: latency}
}

// MarshalJSON is not customised; reports marshal with encoding/json,
// which sorts map keys — together with the deterministic aggregation
// above this is what makes virtual reports byte-identical across runs.
// EncodeJSON renders the report as indented JSON with a trailing
// newline.
func (r *Report) EncodeJSON() ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// RenderTable writes the human-readable run summary. The wall-latency
// digests are always shown; in virtual mode they are marked as
// informational since they are not part of the (reproducible) report.
func (res *Result) RenderTable(w io.Writer) {
	r := &res.Report
	fmt.Fprintf(w, "scenario %s  (mode=%s target=%s seed=%d)\n", r.Scenario, r.Mode, r.Target, r.Seed)
	fmt.Fprintf(w, "  duration   %10.1fs   users %d started / %d completed / %d abandoned / %d failed / %d active\n",
		r.DurationSeconds, r.UsersStarted, r.UsersCompleted, r.UsersAbandoned, r.UsersFailed, r.UsersActiveAtEnd)
	groups := make([]string, 0, len(r.UsersPerGroup))
	for g := range r.UsersPerGroup {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	parts := make([]string, 0, len(groups))
	for _, g := range groups {
		parts = append(parts, fmt.Sprintf("%s=%d", g, r.UsersPerGroup[g]))
	}
	fmt.Fprintf(w, "  fleet      %s\n", strings.Join(parts, " "))
	fmt.Fprintf(w, "  answers    %7d (%.3f/s)   skips %d   errors %d   retries %d\n",
		r.Answers, r.AnswersPerSecond, r.Skips, r.Errors, r.Retries)

	note := ""
	if r.Mode == ModeVirtual {
		note = "   (informational: excluded from the virtual-mode report)"
	}
	ops := make([]string, 0, len(res.WallLatency))
	for op := range res.WallLatency {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	if len(ops) > 0 {
		fmt.Fprintf(w, "  op latency%s\n", note)
		fmt.Fprintf(w, "    %-8s %9s %12s %12s %12s %12s\n", "op", "count", "p50", "p90", "p99", "max")
		for _, op := range ops {
			s := res.WallLatency[op]
			fmt.Fprintf(w, "    %-8s %9d %12s %12s %12s %12s\n",
				op, s.Count, fmtSec(s.P50), fmtSec(s.P90), fmtSec(s.P99), fmtSec(s.Max))
		}
	}
	if len(r.Quality) > 0 {
		fmt.Fprintf(w, "  quality-vs-effort\n")
		fmt.Fprintf(w, "    %8s %9s %10s %8s %8s\n", "answers", "sessions", "precision", "effort", "gain")
		for _, p := range sampleCurve(r.Quality, 12) {
			fmt.Fprintf(w, "    %8d %9d %10.4f %8.4f %+8.4f\n",
				p.Answers, p.Sessions, p.MeanPrecision, p.MeanEffort, p.MeanGain)
		}
	}
	if r.Server != nil {
		fmt.Fprintf(w, "  server     sessions=%d spilled=%d lanes=%d/%d answers=%d p99=%s\n",
			r.Server.Sessions, r.Server.Spilled, r.Server.WorkersGranted, r.Server.WorkersTotal,
			r.Server.AnswersServed, fmtSec(r.Server.AnswerLatency.P99))
		if len(r.Server.Stages) > 0 {
			stages := make([]string, 0, len(r.Server.Stages))
			for st := range r.Server.Stages {
				stages = append(stages, st)
			}
			sort.Strings(stages)
			parts := make([]string, 0, len(stages))
			for _, st := range stages {
				parts = append(parts, fmt.Sprintf("%s p99=%s", st, fmtSec(r.Server.Stages[st].P99)))
			}
			fmt.Fprintf(w, "  stage p99  %s\n", strings.Join(parts, "  "))
		}
		if c := r.Server.Controller; c != nil {
			fmt.Fprintf(w, "  slo        mode=%s p99=%s/%s breaches=%d shed=%d degraded=%d\n",
				c.Mode, fmtSec(c.WindowP99), fmtSec(c.SLOSeconds), c.Breaches, c.Sheds, c.DegradedAnswers)
		}
	}
	if len(r.SLORungHistory) > 0 {
		parts := make([]string, 0, len(r.SLORungHistory))
		for _, s := range r.SLORungHistory {
			parts = append(parts, fmt.Sprintf("%s@%s", s.Mode, fmtSec(s.T)))
		}
		fmt.Fprintf(w, "  slo rungs  %s\n", strings.Join(parts, " -> "))
	}
}

// sampleCurve thins a long curve to about n rows for the table (the
// JSON report always carries every point).
func sampleCurve(curve []CurvePoint, n int) []CurvePoint {
	if len(curve) <= n {
		return curve
	}
	out := make([]CurvePoint, 0, n+1)
	step := float64(len(curve)-1) / float64(n)
	last := -1
	for i := 0; i <= n; i++ {
		idx := int(float64(i) * step)
		if idx >= len(curve) {
			idx = len(curve) - 1
		}
		if idx == last {
			continue
		}
		last = idx
		out = append(out, curve[idx])
	}
	return out
}

func fmtSec(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}
