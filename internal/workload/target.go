package workload

import (
	"factcheck/internal/service"
)

// Target abstracts where a fleet's sessions live: the in-process
// serving stack (library runs, CI) or a live factcheck-server over HTTP
// (real load tests). Both paths go through service.Manager semantics,
// so a scenario measured in-process and over HTTP exercises the same
// protocol and inference work — HTTP adds only transport.
type Target interface {
	// Kind labels the target in reports: "library" or "http".
	Kind() string
	// Open creates one session for one simulated user.
	Open(req service.OpenRequest) (TargetSession, service.SessionInfo, error)
	// Metrics scrapes the server-side telemetry.
	Metrics(withBuckets bool) (service.Metrics, error)
	// Retries reports transport retries performed so far (HTTP only).
	Retries() int64
	// Close releases target resources owned by the workload runner.
	Close()
}

// TargetSession is one user's handle on its session.
type TargetSession interface {
	Next(k int) (service.NextResponse, error)
	Answer(req service.AnswerRequest) (service.StateResponse, error)
	// Ingest streams a corpus delta into the live session (the
	// "ingesting" behavior kind drives it).
	Ingest(req service.IngestRequest) (service.IngestResponse, error)
	Delete() error
}

// ManagerTarget drives an in-process service.Manager — the core.Session
// library path behind the same session protocol the server speaks.
type ManagerTarget struct {
	m    *service.Manager
	owns bool
}

// NewManagerTarget wraps an existing manager; Close will not shut it
// down.
func NewManagerTarget(m *service.Manager) *ManagerTarget {
	return &ManagerTarget{m: m}
}

// NewLibraryTarget builds a self-contained in-process target with the
// given shared worker budget (0 = GOMAXPROCS); Close shuts it down.
func NewLibraryTarget(workers, maxSessions int) *ManagerTarget {
	if maxSessions <= 0 {
		maxSessions = 1 << 16
	}
	m := service.NewManager(service.Config{Workers: workers, MaxSessions: maxSessions})
	return &ManagerTarget{m: m, owns: true}
}

// Kind implements Target.
func (t *ManagerTarget) Kind() string { return "library" }

// Manager exposes the underlying manager.
func (t *ManagerTarget) Manager() *service.Manager { return t.m }

// Open implements Target.
func (t *ManagerTarget) Open(req service.OpenRequest) (TargetSession, service.SessionInfo, error) {
	info, err := t.m.Open(req)
	if err != nil {
		return nil, service.SessionInfo{}, err
	}
	return &managerSession{m: t.m, id: info.ID}, info, nil
}

// Metrics implements Target.
func (t *ManagerTarget) Metrics(withBuckets bool) (service.Metrics, error) {
	return t.m.Metrics(withBuckets), nil
}

// Retries implements Target; the in-process path has no transport.
func (t *ManagerTarget) Retries() int64 { return 0 }

// Close implements Target.
func (t *ManagerTarget) Close() {
	if t.owns {
		t.m.Shutdown()
	}
}

type managerSession struct {
	m  *service.Manager
	id string
}

func (s *managerSession) Next(k int) (service.NextResponse, error) { return s.m.Next(s.id, k) }
func (s *managerSession) Answer(req service.AnswerRequest) (service.StateResponse, error) {
	return s.m.Answer(s.id, req)
}
func (s *managerSession) Ingest(req service.IngestRequest) (service.IngestResponse, error) {
	return s.m.Ingest(s.id, req)
}
func (s *managerSession) Delete() error { return s.m.Delete(s.id) }

// ClientTarget drives a live factcheck-server through service.Client.
// The client retries transient connection errors under a bounded
// jittered backoff — a fleet run should ride out a server restart, and
// the retry count lands in the report.
type ClientTarget struct {
	c *service.Client
}

// NewClientTarget returns a target for the server at base (e.g.
// "http://127.0.0.1:8080"), with the loadtest retry policy installed.
func NewClientTarget(base string) *ClientTarget {
	c := service.NewClient(base)
	c.Retry = &service.RetryPolicy{MaxAttempts: 4}
	return &ClientTarget{c: c}
}

// Kind implements Target.
func (t *ClientTarget) Kind() string { return "http" }

// Client exposes the underlying client.
func (t *ClientTarget) Client() *service.Client { return t.c }

// Open implements Target.
func (t *ClientTarget) Open(req service.OpenRequest) (TargetSession, service.SessionInfo, error) {
	info, err := t.c.Open(req)
	if err != nil {
		return nil, service.SessionInfo{}, err
	}
	return &clientSession{c: t.c, id: info.ID}, info, nil
}

// Metrics implements Target.
func (t *ClientTarget) Metrics(withBuckets bool) (service.Metrics, error) {
	return t.c.Metrics(withBuckets)
}

// Retries implements Target.
func (t *ClientTarget) Retries() int64 { return t.c.Retries() }

// Close implements Target; the server is not ours to stop.
func (t *ClientTarget) Close() {}

type clientSession struct {
	c  *service.Client
	id string
}

func (s *clientSession) Next(k int) (service.NextResponse, error) { return s.c.Next(s.id, k) }
func (s *clientSession) Answer(req service.AnswerRequest) (service.StateResponse, error) {
	return s.c.Answer(s.id, req)
}
func (s *clientSession) Ingest(req service.IngestRequest) (service.IngestResponse, error) {
	// The HTTP surface splits ingestion by payload: deltas carrying new
	// claims go to /claims, source/evidence-only deltas to /sources.
	if req.Delta.NewClaims > 0 {
		return s.c.IngestClaims(s.id, req)
	}
	return s.c.IngestSources(s.id, req)
}
func (s *clientSession) Delete() error { return s.c.Delete(s.id) }
