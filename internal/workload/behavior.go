package workload

import (
	"factcheck/internal/service"
	"factcheck/internal/sim"
	"factcheck/internal/stats"
	"factcheck/internal/synth"
)

// User outcomes.
const (
	outcomeActive    = iota // still running when the scenario ended
	outcomeCompleted        // finished its answers (or its session)
	outcomeAbandoned        // walked away, session left open
	outcomeFailed           // an operation error ended the user
)

// simUser is the core.User-shaped contract the §8 simulators share.
type simUser interface {
	Validate(claim int) (verdict bool, ok bool)
}

// fleetUser is one simulated fact checker: a behavior profile bound to
// per-user random streams, the client-side ground truth of its corpus
// (the loadtest regenerates the deterministic synthetic corpus locally,
// so erroneous and worker verdicts can be simulated without asking the
// server for the truth), and its live session handle.
type fleetUser struct {
	idx      int
	groupIdx int
	behavior Behavior
	cap      int // answer cap; 0 = drive to done

	truth   []bool
	inner   simUser     // verdict source for non-worker kinds
	worker  *sim.Worker // verdict + think source for expert/crowd
	think   *sim.Worker // think-time source for non-worker kinds
	gap     *sim.Worker // revisit-gap source for bursty
	rng     *stats.RNG  // abandon rolls
	session service.OpenRequest

	sess      TargetSession
	answers   int
	skips     int
	burstLeft int
	outcome   int
	// Ingesting users stream corpus deltas into their session. The
	// delta profile tracks the corpus's virtual shape (base + every
	// delta already posted) so each next delta's existing-row references
	// stay valid; ingestBase seeds the per-delta stream, truths of new
	// claims extend u.truth in posting order (deltas apply FIFO, ids are
	// assigned densely, and only this user writes to its session).
	deltaProf   synth.Profile
	ingestBase  int64
	ingests     int
	sinceIngest int
	// precisions[k] and efforts[k] are the session's precision and
	// effort after the k-th answer; index 0 is the post-open baseline.
	precisions []float64
	efforts    []float64
}

// userCorpus regenerates the corpus the server will build for req —
// synthetic corpora are a pure function of (profile, scale, seed), and
// both sides call the same service.BuildCorpus, so the fleet's local
// ground truth (and, for ingesting users, the corpus shape their deltas
// must validate against) is guaranteed to match the served corpus.
func userCorpus(req service.OpenRequest) (*synth.Corpus, error) {
	return service.BuildCorpus(req)
}

// newFleetUser builds user idx of the run from its fleet group. All of
// its randomness derives from the scenario seed and idx via
// stats.StreamSeed, so the fleet is reproducible regardless of how
// users are scheduled.
func newFleetUser(sc *Scenario, idx, groupIdx int) (*fleetUser, error) {
	group := &sc.Fleet[groupIdx]
	b := group.Behavior.withDefaults()
	base := uint64(sc.Seed)
	streamID := func(slot uint64) int64 { return stats.StreamSeed(base, uint64(idx+1)*8+slot) }

	req := sc.Session
	req.Seed += int64(idx)
	corpus, err := userCorpus(req)
	if err != nil {
		return nil, err
	}
	truth := corpus.Truth

	u := &fleetUser{
		idx:       idx,
		groupIdx:  groupIdx,
		behavior:  b,
		cap:       sc.answerCap(group),
		truth:     truth,
		rng:       stats.NewRNG(streamID(1)),
		session:   req,
		burstLeft: b.BurstLen,
	}
	if b.Kind == KindIngesting {
		// Deltas are generated from the base profile's statistical knobs
		// at the served corpus's actual shape (community partitioning and
		// scale floors can round the sizes away from the nominal profile;
		// the shape is what existing-row references validate against).
		prof, err := synth.ByName(req.Profile)
		if err != nil {
			return nil, err
		}
		prof.Claims = corpus.DB.NumClaims
		prof.Sources = len(corpus.DB.Sources)
		prof.Documents = len(corpus.DB.Documents)
		u.deltaProf = prof
		u.ingestBase = streamID(6)
	}
	switch b.Kind {
	case KindExpert, KindCrowd:
		u.worker = sim.NewWorker(b.Reliability, b.ThinkMedianSeconds, b.ThinkSigma, streamID(2))
	case KindIngesting:
		// The inner simulator must read the *live* truth slice — it
		// grows as deltas land, and a sim.Oracle/Erroneous would capture
		// the pre-ingest header and index out of range on a new claim.
		u.think = sim.NewWorker(1, b.ThinkMedianSeconds, b.ThinkSigma, streamID(2))
		u.inner = &liveTruthUser{u: u, p: b.ErrorP, rng: stats.NewRNG(streamID(3))}
	default:
		u.think = sim.NewWorker(1, b.ThinkMedianSeconds, b.ThinkSigma, streamID(2))
		var inner simUser = &sim.Oracle{Truth: truth}
		if b.ErrorP > 0 {
			inner = sim.NewErroneous(truth, b.ErrorP, streamID(3))
		}
		if b.Kind == KindSkipping {
			inner = sim.NewSkipper(inner, b.SkipP, streamID(4))
		}
		u.inner = inner
	}
	if b.Kind == KindBursty {
		u.gap = sim.NewWorker(1, b.BurstGapSeconds, b.ThinkSigma, streamID(5))
	}
	return u, nil
}

// liveTruthUser is the ingesting kind's verdict source: it answers
// from the owning fleetUser's truth slice at call time (the slice
// grows with every posted delta), flipping the verdict with
// probability p exactly like sim.Erroneous.
type liveTruthUser struct {
	u   *fleetUser
	p   float64
	rng *stats.RNG
}

func (l *liveTruthUser) Validate(c int) (bool, bool) {
	v := l.u.truth[c]
	if l.p > 0 && l.rng.Bernoulli(l.p) {
		v = !v
	}
	return v, true
}

// drawThink returns the log-normal pause before this user's next
// interaction, via the sim.Worker response-time model.
func (u *fleetUser) drawThink() float64 {
	w := u.think
	if w == nil {
		w = u.worker
	}
	_, sec := w.Answer(true)
	return sec
}

// respond produces the answer request for the expected claim plus the
// think gap before the user's next interaction. For worker kinds the
// verdict and the time spent come from one sim.Worker.Answer draw — the
// §8.9 model ties them together; for the rest the verdict comes from
// the wrapped §8.1/§8.5 simulator and the time from the think stream.
func (u *fleetUser) respond(claim int) (service.AnswerRequest, float64) {
	req := service.AnswerRequest{Claim: claim}
	var think float64
	if u.worker != nil {
		req.Verdict, think = u.worker.Answer(u.truth[claim])
	} else {
		v, ok := u.inner.Validate(claim)
		req.Verdict, req.Skip = v, !ok
		think = u.drawThink()
	}
	if u.gap != nil && !req.Skip {
		if u.burstLeft--; u.burstLeft <= 0 {
			// Burst over: leave, revisit after a long log-normal gap.
			_, think = u.gap.Answer(true)
			u.burstLeft = u.behavior.BurstLen
		}
	}
	return req, think
}

// capReached reports that the user has submitted its answer budget.
func (u *fleetUser) capReached() bool {
	return u.cap > 0 && u.answers >= u.cap
}

// open creates the user's session and returns the think gap before its
// first interaction.
func (u *fleetUser) open(t Target, rec *recorder) (float64, error) {
	var info service.SessionInfo
	err := rec.timed(opOpen, func() error {
		var err error
		u.sess, info, err = t.Open(u.session)
		return err
	})
	if err != nil {
		u.outcome = outcomeFailed
		return 0, err
	}
	u.precisions = append(u.precisions, info.Precision)
	u.efforts = append(u.efforts, 0)
	return u.drawThink(), nil
}

// round performs one interaction (poll the expected claim, answer it)
// and returns the think gap before the next round; done reports that
// the user is finished, with u.outcome saying how.
func (u *fleetUser) round(rec *recorder) (think float64, done bool) {
	if u.behavior.Kind == KindAbandoning && u.rng.Bernoulli(u.behavior.AbandonP) {
		// Walk away without closing the session: cleaning up after
		// abandonment is the server's idle-eviction job, and exactly
		// what this profile exists to exercise.
		u.outcome = outcomeAbandoned
		return 0, true
	}
	if u.behavior.Kind == KindIngesting && u.sinceIngest >= u.behavior.IngestEvery {
		if !u.ingest(rec) {
			return 0, true
		}
	}
	var next service.NextResponse
	err := rec.timed(opNext, func() error {
		var err error
		next, err = u.sess.Next(1)
		return err
	})
	if err != nil {
		u.outcome = outcomeFailed
		return 0, true
	}
	if next.Done || len(next.Candidates) == 0 {
		u.complete(rec)
		return 0, true
	}
	req, think := u.respond(next.Candidates[0].Claim)
	// Declare the expected transcript sequence so a retried submission
	// (client retry is on by default in loadtest fleets) is idempotent
	// server-side instead of tripping a conflict.
	seq := next.Seq
	req.Seq = &seq
	var st service.StateResponse
	err = rec.timed(opAnswer, func() error {
		var err error
		st, err = u.sess.Answer(req)
		return err
	})
	if err != nil {
		u.outcome = outcomeFailed
		return 0, true
	}
	if req.Skip {
		u.skips++
	} else {
		u.answers++
		u.sinceIngest++
		u.precisions = append(u.precisions, st.Precision)
		u.efforts = append(u.efforts, st.Effort)
	}
	if st.Done || u.capReached() {
		u.complete(rec)
		return 0, true
	}
	return think, false
}

// ingest streams one deterministically generated corpus delta into the
// user's session; ok=false means the operation failed and the user is
// done. The local ground truth and virtual corpus shape are extended
// whether the server applied the delta inline or queued it — the
// mailbox is FIFO and drains before the session's next guidance work,
// so by the time any new claim can be offered as a candidate its truth
// is in place.
func (u *fleetUser) ingest(rec *recorder) bool {
	seed := stats.StreamSeed(uint64(u.ingestBase), uint64(u.ingests))
	d := synth.GenerateDelta(u.deltaProf, u.behavior.IngestScale, seed)
	err := rec.timed(opIngest, func() error {
		_, err := u.sess.Ingest(service.IngestRequest{Delta: d})
		return err
	})
	if err != nil {
		u.outcome = outcomeFailed
		return false
	}
	u.truth = append(u.truth, d.Truth...)
	u.deltaProf.Claims += d.NewClaims
	u.deltaProf.Sources += len(d.Sources)
	u.deltaProf.Documents += len(d.Documents)
	u.ingests++
	u.sinceIngest = 0
	return true
}

// complete closes out a finished user: the session is deleted (freeing
// server resources) and the outcome recorded. A delete failure counts
// as an op error but the user still completed its work.
func (u *fleetUser) complete(rec *recorder) {
	_ = rec.timed(opDelete, func() error { return u.sess.Delete() })
	u.outcome = outcomeCompleted
}
