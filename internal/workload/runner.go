package workload

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"factcheck/internal/stats"
)

// Run executes the scenario against the target under the scenario's
// clock mode and returns the report.
func Run(sc *Scenario, target Target) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.mode() == ModeWall {
		return runWall(sc, target)
	}
	return runVirtual(sc, target)
}

// Random-stream identifiers off the scenario seed. User streams are
// 8*(idx+1)+slot (see newFleetUser); these huge ids cannot collide with
// any realistic fleet size.
const (
	streamArrivals  = 0xA1177A10_00000001
	streamFleetPick = 0xA1177A10_00000002
)

// arrivals samples an open-loop arrival process. next returns the
// arrival after time t, or ok = false when the process emits nothing
// more within the scenario horizon.
type arrivals struct {
	spec     ArrivalSpec
	duration float64
	rng      *stats.RNG
}

func newArrivals(sc *Scenario) *arrivals {
	return &arrivals{
		spec:     sc.Arrival,
		duration: sc.DurationSeconds,
		rng:      stats.NewRNG(stats.StreamSeed(uint64(sc.Seed), streamArrivals)),
	}
}

// exp draws an exponential inter-arrival gap at the given rate.
func (a *arrivals) exp(rate float64) float64 {
	return -math.Log1p(-a.rng.Float64()) / rate
}

// rate is the instantaneous arrival rate at time t (ramp profile).
func (a *arrivals) rate(t float64) float64 {
	ramp := a.spec.RampSeconds
	if ramp <= 0 {
		ramp = a.duration
	}
	if t >= ramp {
		return a.spec.EndRate
	}
	return a.spec.Rate + (a.spec.EndRate-a.spec.Rate)*t/ramp
}

func (a *arrivals) next(t float64) (float64, bool) {
	switch a.spec.Kind {
	case ArrivalPoisson:
		t += a.exp(a.spec.Rate)
		return t, t <= a.duration
	case ArrivalRamp:
		// Lewis–Shedler thinning: propose at the peak rate, accept with
		// probability rate(t)/peak — an exact inhomogeneous Poisson.
		peak := math.Max(a.spec.Rate, a.spec.EndRate)
		for {
			t += a.exp(peak)
			if t > a.duration {
				return 0, false
			}
			if a.rng.Float64()*peak <= a.rate(t) {
				return t, true
			}
		}
	}
	return 0, false // closed loop has no arrival stream
}

// fleetPicker draws each arriving user's group proportionally to the
// fleet weights.
type fleetPicker struct {
	cum []float64
	rng *stats.RNG
}

func newFleetPicker(sc *Scenario) *fleetPicker {
	cum := make([]float64, len(sc.Fleet))
	total := 0.0
	for i, g := range sc.Fleet {
		w := g.Weight
		if w == 0 {
			w = 1
		}
		total += w
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[len(cum)-1] = 1
	return &fleetPicker{
		cum: cum,
		rng: stats.NewRNG(stats.StreamSeed(uint64(sc.Seed), streamFleetPick)),
	}
}

func (p *fleetPicker) pick() int {
	u := p.rng.Float64()
	for i, c := range p.cum {
		if u < c {
			return i
		}
	}
	return len(p.cum) - 1
}

// event is one scheduled step of the virtual discrete-event simulation.
// Ties on the timestamp break by insertion sequence, which keeps the
// event order — and therefore the whole run — deterministic.
type event struct {
	at  float64
	seq int64
	fn  func(now float64)
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// virtualRun is the deterministic DES: one goroutine, a seeded event
// queue, operations executed inline at their virtual timestamps.
type virtualRun struct {
	sc     *Scenario
	target Target
	rec    *recorder
	q      eventQueue
	seq    int64
	arr    *arrivals
	picker *fleetPicker
	users  []*fleetUser
	err    error
}

func (v *virtualRun) push(at float64, fn func(now float64)) {
	v.seq++
	heap.Push(&v.q, &event{at: at, seq: v.seq, fn: fn})
}

// spawn starts user number len(users) at virtual time now.
func (v *virtualRun) spawn(now float64) {
	if len(v.users) >= v.sc.maxUsers() {
		return
	}
	u, err := newFleetUser(v.sc, len(v.users), v.picker.pick())
	if err != nil {
		// A constructible scenario cannot fail here (Validate vets the
		// profile); treat it as fatal rather than skewing the fleet.
		v.err = fmt.Errorf("workload: building user %d: %w", len(v.users), err)
		return
	}
	v.users = append(v.users, u)
	think, err := u.open(v.target, v.rec)
	if err != nil {
		v.finished(now)
		return
	}
	v.push(now+think, v.wake(u))
}

// wake returns the event running one interaction round of u.
func (v *virtualRun) wake(u *fleetUser) func(now float64) {
	return func(now float64) {
		think, done := u.round(v.rec)
		if done {
			v.finished(now)
			return
		}
		v.push(now+think, v.wake(u))
	}
}

// finished closes the loop for closed-loop arrivals: a finishing user
// is immediately replaced, keeping the concurrency fixed.
func (v *virtualRun) finished(now float64) {
	if v.sc.Arrival.Kind == ArrivalClosed {
		v.push(now, v.spawn)
	}
}

// arrive processes one open-loop arrival and schedules the next.
func (v *virtualRun) arrive(now float64) {
	v.spawn(now)
	if next, ok := v.arr.next(now); ok {
		v.push(next, v.arrive)
	}
}

func runVirtual(sc *Scenario, target Target) (*Result, error) {
	v := &virtualRun{
		sc:     sc,
		target: target,
		rec:    newRecorder(),
		arr:    newArrivals(sc),
		picker: newFleetPicker(sc),
	}
	heap.Init(&v.q)
	switch sc.Arrival.Kind {
	case ArrivalClosed:
		for i := 0; i < sc.Arrival.Concurrency; i++ {
			v.push(0, v.spawn)
		}
	default:
		if t, ok := v.arr.next(0); ok {
			v.push(t, v.arrive)
		}
	}
	for v.q.Len() > 0 {
		e := heap.Pop(&v.q).(*event)
		if e.at > sc.DurationSeconds {
			// The queue pops in time order: everything left lies past
			// the horizon too. Users mid-session count as active.
			break
		}
		e.fn(e.at)
		if v.err != nil {
			return nil, v.err
		}
	}
	return buildReport(sc, target, v.users, v.rec, sc.DurationSeconds, false, nil), nil
}

// runWall drives the scenario in real (optionally compressed) time:
// one goroutine per simulated user, arrivals on their own goroutine,
// sleeps scaled by WallTimeScale, everything stopping at the deadline.
func runWall(sc *Scenario, target Target) (*Result, error) {
	rec := newRecorder()
	scale := sc.timeScale()
	start := time.Now()
	wallDur := time.Duration(sc.DurationSeconds / scale * float64(time.Second))
	ctx, cancel := context.WithDeadline(context.Background(), start.Add(wallDur))
	defer cancel()

	var (
		mu       sync.Mutex
		users    []*fleetUser
		started  int
		buildErr error
	)
	picker := newFleetPicker(sc)

	// Rung sampler: poll the target's metrics on a wall cadence and
	// record each SLO-controller rung transition, so the report shows
	// when the run pushed the server into degraded or shedding mode and
	// when it recovered. The slice is touched only by this goroutine
	// until its channel closes, which the final read waits on.
	var rungs []RungSample
	rungsDone := make(chan struct{})
	go func() {
		defer close(rungsDone)
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		last := ""
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				m, err := target.Metrics(false)
				if err != nil || m.Controller == nil {
					continue
				}
				if m.Controller.Mode != last {
					last = m.Controller.Mode
					rungs = append(rungs, RungSample{T: time.Since(start).Seconds(), Mode: m.Controller.Mode})
				}
			}
		}
	}()

	// sleep pauses for sec virtual seconds (compressed by scale);
	// false means the run's deadline arrived first.
	sleep := func(sec float64) bool {
		t := time.NewTimer(time.Duration(sec / scale * float64(time.Second)))
		defer t.Stop()
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
			return true
		}
	}

	// tryStart admits one more user, or returns nil when the cap or the
	// deadline has been reached.
	tryStart := func() *fleetUser {
		mu.Lock()
		if started >= sc.maxUsers() || ctx.Err() != nil || buildErr != nil {
			mu.Unlock()
			return nil
		}
		idx := started
		started++
		gi := picker.pick()
		mu.Unlock()
		u, err := newFleetUser(sc, idx, gi)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if buildErr == nil {
				buildErr = fmt.Errorf("workload: building user %d: %w", idx, err)
			}
			return nil
		}
		users = append(users, u)
		return u
	}

	var wg sync.WaitGroup
	runUser := func(u *fleetUser, onDone func()) {
		defer wg.Done()
		think, err := u.open(target, rec)
		if err == nil {
			for sleep(think) {
				var done bool
				think, done = u.round(rec)
				if done {
					break
				}
			}
		}
		if onDone != nil {
			onDone()
		}
	}

	if sc.Arrival.Kind == ArrivalClosed {
		// Fixed concurrency: each finishing user starts its successor.
		var replace func()
		replace = func() {
			if u := tryStart(); u != nil {
				wg.Add(1)
				go runUser(u, replace)
			}
		}
		for i := 0; i < sc.Arrival.Concurrency; i++ {
			replace()
		}
	} else {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arr := newArrivals(sc)
			t := 0.0
			for {
				next, ok := arr.next(t)
				if !ok || !sleep(next-t) {
					return
				}
				t = next
				u := tryStart()
				if u == nil {
					return
				}
				wg.Add(1)
				go runUser(u, nil)
			}
		}()
	}
	wg.Wait()
	cancel()
	<-rungsDone

	mu.Lock()
	defer mu.Unlock()
	if buildErr != nil {
		return nil, buildErr
	}
	elapsed := time.Since(start).Seconds()
	return buildReport(sc, target, users, rec, elapsed, true, rungs), nil
}
