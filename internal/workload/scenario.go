// Package workload is the load-generation and telemetry subsystem: it
// simulates whole fleets of fact-checking users — composed from the §8
// user models of internal/sim — against either the in-process serving
// stack (service.Manager over core.Session) or a live factcheck-server
// over HTTP, and measures what the paper's micro-benchmarks cannot:
// end-to-end latency, throughput and quality-vs-effort under realistic
// arrival processes.
//
// A Scenario (declared in JSON, see examples/scenarios/) names an
// arrival process (open-loop Poisson, closed-loop fixed concurrency, or
// a ramp), a fleet of behavior profiles (oracle, erroneous, skipping,
// expert/crowd workers with log-normal think times, abandoning and
// bursty-revisit users), and the session configuration every simulated
// user opens. Runs execute under one of two clocks:
//
//   - virtual: a deterministic discrete-event simulation under a seeded
//     virtual clock. Two runs of the same scenario and seed produce
//     bit-identical JSON reports, which makes scenario runs CI-safe
//     regression artifacts. Operation latencies are still measured in
//     wall time for the human table, but are excluded from the report.
//   - wall: goroutine-per-user real time (optionally compressed by
//     WallTimeScale), for driving a real server and measuring real
//     latency percentiles.
package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"factcheck/internal/service"
	"factcheck/internal/synth"
)

// Clock modes.
const (
	ModeVirtual = "virtual"
	ModeWall    = "wall"
)

// Arrival process kinds.
const (
	ArrivalPoisson = "poisson"
	ArrivalClosed  = "closed"
	ArrivalRamp    = "ramp"
)

// Behavior kinds; see Behavior.
const (
	KindOracle     = "oracle"
	KindErroneous  = "erroneous"
	KindSkipping   = "skipping"
	KindExpert     = "expert"
	KindCrowd      = "crowd"
	KindAbandoning = "abandoning"
	KindBursty     = "bursty"
	KindIngesting  = "ingesting"
)

// Scenario declares one workload: who arrives, when, and what they do.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string `json:"name"`
	// Seed drives every random stream of the run: arrivals, fleet
	// composition, think times, behavior rolls, and (via Session.Seed +
	// user index) each user's corpus and session randomness.
	Seed int64 `json:"seed"`
	// Mode selects the clock: "virtual" (default) or "wall".
	Mode string `json:"mode,omitempty"`
	// DurationSeconds is the scenario horizon in virtual seconds. No
	// new arrivals are admitted past it, and in virtual mode no event
	// runs past it (users mid-session count as active-at-end).
	DurationSeconds float64 `json:"durationSeconds"`
	// MaxUsers hard-caps started users across the whole run (0 = 4096).
	MaxUsers int `json:"maxUsers,omitempty"`
	// AnswersPerUser caps the answers each user submits before it
	// completes its session (0 = drive the session to done). A fleet
	// group may override it.
	AnswersPerUser int `json:"answersPerUser,omitempty"`
	// Arrival is the arrival process.
	Arrival ArrivalSpec `json:"arrival"`
	// Session configures the session every user opens. Its Seed is the
	// base: user i opens with Seed + i, so users exercise distinct
	// corpora while staying reproducible.
	Session service.OpenRequest `json:"session"`
	// Fleet is the behavior mix; each arriving user is drawn from the
	// groups proportionally to Weight.
	Fleet []FleetGroup `json:"fleet"`
	// WallTimeScale compresses time in wall mode: a think or arrival
	// gap of v virtual seconds sleeps v/WallTimeScale wall seconds
	// (0 = 1, i.e. real time). Virtual mode ignores it.
	WallTimeScale float64 `json:"wallTimeScale,omitempty"`
	// SLO configures the scenario-replay SLO simulation (RunSLOSim) for
	// the CI gate. The ordinary load runners ignore it; declaring it
	// here keeps a gate scenario loadable by plain loadtest runs under
	// DisallowUnknownFields.
	SLO *SLOSimSpec `json:"slo,omitempty"`
}

// ArrivalSpec declares how users arrive.
type ArrivalSpec struct {
	// Kind is "poisson" (open loop: exponential inter-arrivals at
	// Rate users/sec), "closed" (Concurrency users are always running;
	// a finishing user is replaced immediately), or "ramp" (open loop
	// with the rate rising linearly from Rate to EndRate over
	// RampSeconds, then holding — a flash crowd).
	Kind string `json:"kind"`
	// Rate is the arrival rate in users/sec (poisson; ramp start).
	Rate float64 `json:"rate,omitempty"`
	// EndRate is the ramp's final rate.
	EndRate float64 `json:"endRate,omitempty"`
	// RampSeconds is how long the ramp takes (0 = the whole duration).
	RampSeconds float64 `json:"rampSeconds,omitempty"`
	// Concurrency is the closed-loop fleet size.
	Concurrency int `json:"concurrency,omitempty"`
}

// FleetGroup is one slice of the fleet: a behavior with a mix weight.
type FleetGroup struct {
	// Name labels the group (defaults to the behavior kind).
	Name string `json:"name,omitempty"`
	// Weight is the group's share of arrivals (0 = 1).
	Weight float64 `json:"weight,omitempty"`
	// Behavior is how this group's users answer and pace themselves.
	Behavior Behavior `json:"behavior"`
	// Answers overrides Scenario.AnswersPerUser for this group.
	Answers int `json:"answers,omitempty"`
}

// Behavior composes the §8 user models of internal/sim into one
// profile. Unused knobs are ignored; zero values take the defaults
// noted per field.
type Behavior struct {
	// Kind is one of:
	//   oracle     — answers ground truth (§8.1)
	//   erroneous  — flips the truth with probability ErrorP (§8.5)
	//   skipping   — skips first-time claims with probability SkipP,
	//                answering via oracle or erroneous inner (§8.5)
	//   expert     — §8.9 expert worker: Reliability (default 0.97),
	//                slow log-normal think times
	//   crowd      — §8.9 crowd worker: Reliability (default 0.80),
	//                faster, noisier think times
	//   abandoning — rolls AbandonP before every interaction and walks
	//                away on success, leaving the session open (it is
	//                the server's idle-eviction problem now)
	//   bursty     — answers in bursts of BurstLen, then leaves for a
	//                log-normal gap around BurstGapSeconds and revisits
	//   ingesting  — a streaming fact checker: answers like erroneous,
	//                and after every IngestEvery answers posts a corpus
	//                delta (IngestScale of the corpus size) into its own
	//                live session, exercising the /v1 ingestion path
	Kind string `json:"kind"`
	// ErrorP is the per-answer mistake probability (erroneous, and the
	// inner user of skipping/abandoning/bursty; default 0).
	ErrorP float64 `json:"errorP,omitempty"`
	// SkipP is the first-ask skip probability (skipping; default 0.1).
	SkipP float64 `json:"skipP,omitempty"`
	// Reliability is the worker's probability of answering the truth
	// (expert/crowd; defaults 0.97 / 0.80).
	Reliability float64 `json:"reliability,omitempty"`
	// AbandonP is the per-interaction walk-away probability
	// (abandoning; default 0.25).
	AbandonP float64 `json:"abandonP,omitempty"`
	// BurstLen is the answers per burst (bursty; default 3).
	BurstLen int `json:"burstLen,omitempty"`
	// BurstGapSeconds is the median revisit gap (bursty; default 10×
	// the think median).
	BurstGapSeconds float64 `json:"burstGapSeconds,omitempty"`
	// ThinkMedianSeconds is the median per-interaction think time,
	// drawn log-normally via the sim.Worker response-time model
	// (default 15; experts 50, crowd 20).
	ThinkMedianSeconds float64 `json:"thinkMedianSeconds,omitempty"`
	// ThinkSigma is the log-normal shape of the think time
	// (default 0.5; experts 0.35).
	ThinkSigma float64 `json:"thinkSigma,omitempty"`
	// IngestEvery is the number of answers between corpus deltas
	// (ingesting; default 3).
	IngestEvery int `json:"ingestEvery,omitempty"`
	// IngestScale sizes each delta as a fraction of the session corpus
	// (ingesting; default 0.05).
	IngestScale float64 `json:"ingestScale,omitempty"`
}

// withDefaults resolves the per-kind default knobs.
func (b Behavior) withDefaults() Behavior {
	switch b.Kind {
	case KindExpert:
		if b.Reliability == 0 {
			b.Reliability = 0.97
		}
		if b.ThinkMedianSeconds == 0 {
			b.ThinkMedianSeconds = 50
		}
		if b.ThinkSigma == 0 {
			b.ThinkSigma = 0.35
		}
	case KindCrowd:
		if b.Reliability == 0 {
			b.Reliability = 0.80
		}
		if b.ThinkMedianSeconds == 0 {
			b.ThinkMedianSeconds = 20
		}
	case KindSkipping:
		if b.SkipP == 0 {
			b.SkipP = 0.1
		}
	case KindAbandoning:
		if b.AbandonP == 0 {
			b.AbandonP = 0.25
		}
	case KindBursty:
		if b.BurstLen <= 0 {
			b.BurstLen = 3
		}
	case KindIngesting:
		if b.IngestEvery <= 0 {
			b.IngestEvery = 3
		}
		if b.IngestScale == 0 {
			b.IngestScale = 0.05
		}
	}
	if b.ThinkMedianSeconds == 0 {
		b.ThinkMedianSeconds = 15
	}
	if b.ThinkSigma == 0 {
		b.ThinkSigma = 0.5
	}
	if b.Kind == KindBursty && b.BurstGapSeconds == 0 {
		b.BurstGapSeconds = 10 * b.ThinkMedianSeconds
	}
	return b
}

// validKinds guards against typos in hand-written scenario files.
var validKinds = map[string]bool{
	KindOracle: true, KindErroneous: true, KindSkipping: true,
	KindExpert: true, KindCrowd: true, KindAbandoning: true, KindBursty: true,
	KindIngesting: true,
}

// Validate checks the scenario for structural errors; it is called by
// Run but exposed so tools can lint scenario files.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("workload: scenario has no name")
	}
	switch sc.Mode {
	case "", ModeVirtual, ModeWall:
	default:
		return fmt.Errorf("workload: unknown mode %q", sc.Mode)
	}
	if sc.DurationSeconds <= 0 {
		return fmt.Errorf("workload: durationSeconds must be positive")
	}
	if sc.MaxUsers < 0 {
		return fmt.Errorf("workload: negative maxUsers")
	}
	if sc.WallTimeScale < 0 {
		return fmt.Errorf("workload: negative wallTimeScale")
	}
	switch sc.Arrival.Kind {
	case ArrivalPoisson:
		if sc.Arrival.Rate <= 0 {
			return fmt.Errorf("workload: poisson arrival needs rate > 0")
		}
	case ArrivalRamp:
		if sc.Arrival.Rate < 0 || sc.Arrival.EndRate <= 0 {
			return fmt.Errorf("workload: ramp arrival needs rate >= 0 and endRate > 0")
		}
		if sc.Arrival.RampSeconds < 0 {
			return fmt.Errorf("workload: negative rampSeconds")
		}
	case ArrivalClosed:
		if sc.Arrival.Concurrency <= 0 {
			return fmt.Errorf("workload: closed arrival needs concurrency > 0")
		}
	default:
		return fmt.Errorf("workload: unknown arrival kind %q", sc.Arrival.Kind)
	}
	if len(sc.Fleet) == 0 {
		return fmt.Errorf("workload: scenario has no fleet groups")
	}
	for i, g := range sc.Fleet {
		if !validKinds[g.Behavior.Kind] {
			return fmt.Errorf("workload: fleet[%d] has unknown behavior kind %q", i, g.Behavior.Kind)
		}
		if g.Weight < 0 || g.Answers < 0 {
			return fmt.Errorf("workload: fleet[%d] has a negative weight or answer cap", i)
		}
		b := g.Behavior
		if b.ErrorP < 0 || b.ErrorP > 1 || b.SkipP < 0 || b.SkipP > 1 ||
			b.AbandonP < 0 || b.AbandonP > 1 || b.Reliability < 0 || b.Reliability > 1 {
			return fmt.Errorf("workload: fleet[%d] has a probability outside [0, 1]", i)
		}
		if b.ThinkMedianSeconds < 0 || b.ThinkSigma < 0 || b.BurstGapSeconds < 0 || b.BurstLen < 0 {
			return fmt.Errorf("workload: fleet[%d] has a negative timing knob", i)
		}
		if b.IngestEvery < 0 || b.IngestScale < 0 || b.IngestScale > 1 {
			return fmt.Errorf("workload: fleet[%d] has an ingestion knob outside its range", i)
		}
	}
	if _, err := synth.ByName(sc.Session.Profile); err != nil {
		return fmt.Errorf("workload: session profile: %w", err)
	}
	if sc.SLO != nil {
		if err := sc.SLO.validate(); err != nil {
			return err
		}
	}
	return nil
}

// maxUsers resolves the started-users cap.
func (sc *Scenario) maxUsers() int {
	if sc.MaxUsers > 0 {
		return sc.MaxUsers
	}
	return 4096
}

// mode resolves the clock mode.
func (sc *Scenario) mode() string {
	if sc.Mode == "" {
		return ModeVirtual
	}
	return sc.Mode
}

// timeScale resolves the wall-mode compression factor.
func (sc *Scenario) timeScale() float64 {
	if sc.WallTimeScale <= 0 {
		return 1
	}
	return sc.WallTimeScale
}

// answerCap resolves a group's per-user answer cap (0 = unlimited).
func (sc *Scenario) answerCap(g *FleetGroup) int {
	if g.Answers > 0 {
		return g.Answers
	}
	return sc.AnswersPerUser
}

// LoadScenario reads and validates a scenario file. Unknown fields are
// rejected so a typoed knob fails loudly instead of silently running
// the default.
func LoadScenario(path string) (*Scenario, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return ParseScenario(raw)
}

// ParseScenario decodes and validates scenario JSON.
func ParseScenario(raw []byte) (*Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("workload: scenario JSON: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}
