package workload

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"factcheck/internal/service"
)

// fastEM keeps test inference cheap; determinism holds at any budget.
func fastEM() *service.EMBudgets {
	return &service.EMBudgets{BurnIn: 4, Samples: 8, IncBurnIn: 2, IncSamples: 4, EMIters: 1, HypoBurn: 1, HypoSamples: 2}
}

// testScenario is a small, fast fleet for unit tests.
func testScenario() *Scenario {
	return &Scenario{
		Name:            "test",
		Seed:            11,
		DurationSeconds: 120,
		MaxUsers:        12,
		AnswersPerUser:  2,
		Arrival:         ArrivalSpec{Kind: ArrivalPoisson, Rate: 0.2},
		Session: service.OpenRequest{
			Profile:       "wiki",
			Scale:         0.03,
			Seed:          900,
			CandidatePool: 4,
			EM:            fastEM(),
		},
		Fleet: []FleetGroup{
			{Behavior: Behavior{Kind: KindOracle, ThinkMedianSeconds: 5}},
		},
	}
}

func runLibrary(t *testing.T, sc *Scenario) *Result {
	t.Helper()
	target := NewLibraryTarget(2, 0)
	defer target.Close()
	res, err := Run(sc, target)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestVirtualRunBasics(t *testing.T) {
	sc := testScenario()
	res := runLibrary(t, sc)
	r := &res.Report
	if r.Mode != ModeVirtual || r.Target != "library" || r.Seed != sc.Seed {
		t.Fatalf("report header = %+v", r)
	}
	if r.UsersStarted == 0 || r.Answers == 0 {
		t.Fatalf("no work done: %+v", r)
	}
	if r.UsersStarted != r.UsersCompleted+r.UsersAbandoned+r.UsersFailed+r.UsersActiveAtEnd {
		t.Fatalf("user accounting does not add up: %+v", r)
	}
	if r.Errors != 0 || r.UsersFailed != 0 {
		t.Fatalf("errors in a clean in-process run: %+v", r)
	}
	if r.Latency != nil || r.Server != nil {
		t.Fatal("virtual report must exclude wall-clock sections")
	}
	if len(res.WallLatency) == 0 {
		t.Fatal("wall latencies must still be measured for the table")
	}
	if r.AnswersPerSecond <= 0 || math.Abs(r.AnswersPerSecond-float64(r.Answers)/r.DurationSeconds) > 1e-12 {
		t.Fatalf("throughput inconsistent: %+v", r)
	}
	// Two answers per user: completed users drove exactly 2.
	if r.OpCounts[opAnswer] < int64(r.UsersCompleted)*2 {
		t.Fatalf("answer ops = %d with %d completed users", r.OpCounts[opAnswer], r.UsersCompleted)
	}
	// Quality curve starts at the pre-validation baseline and carries
	// every answer index up to the cap.
	if len(r.Quality) != 3 {
		t.Fatalf("quality curve = %+v", r.Quality)
	}
	if r.Quality[0].Answers != 0 || r.Quality[0].MeanGain != 0 {
		t.Fatalf("curve baseline = %+v", r.Quality[0])
	}
	if r.Quality[1].Sessions < r.UsersCompleted {
		t.Fatalf("curve sessions = %+v", r.Quality)
	}
}

// TestVirtualRunBitReproducible is the acceptance pin: the same
// scenario file and seed must produce byte-identical JSON reports, run
// to run, including across distinct in-process targets.
func TestVirtualRunBitReproducible(t *testing.T) {
	path := filepath.Join("..", "..", "examples", "scenarios", "mixed-fleet.json")
	encode := func() []byte {
		sc, err := LoadScenario(path)
		if err != nil {
			t.Fatal(err)
		}
		res := runLibrary(t, sc)
		buf, err := res.Report.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatalf("virtual reports differ across runs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	// And a different seed must actually change the run.
	sc, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed++
	res := runLibrary(t, sc)
	buf, err := res.Report.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, buf) {
		t.Fatal("changing the seed did not change the report")
	}
}

func TestShippedScenarios(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 6 {
		t.Fatalf("want at least 6 shipped scenarios, found %d", len(paths))
	}
	arrivalKinds := map[string]bool{}
	behaviorKinds := map[string]bool{}
	names := map[string]bool{}
	for _, p := range paths {
		sc, err := LoadScenario(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if names[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		names[sc.Name] = true
		arrivalKinds[sc.Arrival.Kind] = true
		for _, g := range sc.Fleet {
			behaviorKinds[g.Behavior.Kind] = true
		}
	}
	for _, k := range []string{ArrivalPoisson, ArrivalClosed, ArrivalRamp} {
		if !arrivalKinds[k] {
			t.Errorf("no shipped scenario uses arrival kind %q", k)
		}
	}
	// router-smoke drives this preset against a live 3-backend router
	// with a mid-run drain; it must stay shipped and closed-loop (a
	// closed fleet keeps pressure on the ring through the migration).
	if !names["router-fleet"] {
		t.Error("the router-fleet preset is missing")
	}
	for _, k := range []string{KindOracle, KindErroneous, KindSkipping, KindExpert, KindCrowd, KindAbandoning, KindBursty, KindIngesting} {
		if !behaviorKinds[k] {
			t.Errorf("no shipped scenario uses behavior kind %q", k)
		}
	}
}

// TestIngestingFleetVirtual drives the shipped ingesting-crowd preset
// through the library target: streaming users must actually post
// deltas, the run must stay clean (every delta validates against the
// virtual corpus shape, truths stay aligned), and the report must be
// bit-reproducible like any other virtual scenario.
func TestIngestingFleetVirtual(t *testing.T) {
	path := filepath.Join("..", "..", "examples", "scenarios", "ingesting-crowd.json")
	encode := func() ([]byte, *Report) {
		sc, err := LoadScenario(path)
		if err != nil {
			t.Fatal(err)
		}
		res := runLibrary(t, sc)
		buf, err := res.Report.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		return buf, &res.Report
	}
	a, r := encode()
	if r.OpCounts[opIngest] == 0 {
		t.Fatalf("ingesting fleet posted no deltas: %+v", r.OpCounts)
	}
	if r.Errors != 0 || r.UsersFailed != 0 {
		t.Fatalf("errors in a clean ingesting run: %+v (opErrors %v)", r, r.OpErrors)
	}
	b, _ := encode()
	if !bytes.Equal(a, b) {
		t.Fatalf("ingesting virtual reports differ across runs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestScenarioValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"no name", func(sc *Scenario) { sc.Name = "" }},
		{"bad mode", func(sc *Scenario) { sc.Mode = "warp" }},
		{"no duration", func(sc *Scenario) { sc.DurationSeconds = 0 }},
		{"negative maxUsers", func(sc *Scenario) { sc.MaxUsers = -1 }},
		{"negative timescale", func(sc *Scenario) { sc.WallTimeScale = -2 }},
		{"bad arrival kind", func(sc *Scenario) { sc.Arrival.Kind = "burst" }},
		{"poisson without rate", func(sc *Scenario) { sc.Arrival.Rate = 0 }},
		{"closed without concurrency", func(sc *Scenario) { sc.Arrival = ArrivalSpec{Kind: ArrivalClosed} }},
		{"ramp without endRate", func(sc *Scenario) { sc.Arrival = ArrivalSpec{Kind: ArrivalRamp, Rate: 1} }},
		{"ramp negative rampSeconds", func(sc *Scenario) {
			sc.Arrival = ArrivalSpec{Kind: ArrivalRamp, Rate: 1, EndRate: 2, RampSeconds: -1}
		}},
		{"empty fleet", func(sc *Scenario) { sc.Fleet = nil }},
		{"bad behavior kind", func(sc *Scenario) { sc.Fleet[0].Behavior.Kind = "sleepy" }},
		{"probability out of range", func(sc *Scenario) { sc.Fleet[0].Behavior.ErrorP = 1.5 }},
		{"negative think", func(sc *Scenario) { sc.Fleet[0].Behavior.ThinkMedianSeconds = -1 }},
		{"negative weight", func(sc *Scenario) { sc.Fleet[0].Weight = -1 }},
		{"unknown profile", func(sc *Scenario) { sc.Session.Profile = "moonbase" }},
	}
	for _, c := range cases {
		sc := testScenario()
		c.mutate(sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: validation passed", c.name)
		}
	}
	if err := testScenario().Validate(); err != nil {
		t.Fatalf("base scenario invalid: %v", err)
	}
}

func TestParseScenarioRejectsUnknownFields(t *testing.T) {
	if _, err := ParseScenario([]byte(`{"name":"x","durationSeconds":1,"arival":{}}`)); err == nil {
		t.Fatal("typoed field accepted")
	}
	if _, err := ParseScenario([]byte(`{broken`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := LoadScenario("/no/such/scenario.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestPoissonArrivalRate(t *testing.T) {
	sc := testScenario()
	sc.DurationSeconds = 10_000
	sc.Arrival = ArrivalSpec{Kind: ArrivalPoisson, Rate: 0.05}
	a := newArrivals(sc)
	n, t0 := 0, 0.0
	for {
		next, ok := a.next(t0)
		if !ok {
			break
		}
		if next <= t0 {
			t.Fatalf("arrival did not advance: %v -> %v", t0, next)
		}
		t0 = next
		n++
	}
	want := sc.Arrival.Rate * sc.DurationSeconds // 500 expected
	if math.Abs(float64(n)-want) > 4*math.Sqrt(want) {
		t.Fatalf("poisson arrivals = %d, want ~%v", n, want)
	}
}

func TestRampArrivalIntensifies(t *testing.T) {
	sc := testScenario()
	sc.DurationSeconds = 1000
	sc.Arrival = ArrivalSpec{Kind: ArrivalRamp, Rate: 0.01, EndRate: 1.0}
	a := newArrivals(sc)
	var firstHalf, secondHalf int
	t0 := 0.0
	for {
		next, ok := a.next(t0)
		if !ok {
			break
		}
		t0 = next
		if t0 < sc.DurationSeconds/2 {
			firstHalf++
		} else {
			secondHalf++
		}
	}
	if secondHalf <= 2*firstHalf {
		t.Fatalf("ramp did not intensify: %d then %d", firstHalf, secondHalf)
	}
	// The mean of a linear 0.01→1.0 ramp is ~0.5/s over 1000s.
	total := float64(firstHalf + secondHalf)
	if total < 350 || total > 700 {
		t.Fatalf("ramp arrivals = %v, want ~500", total)
	}
}

func TestFleetPickerWeights(t *testing.T) {
	sc := testScenario()
	sc.Fleet = []FleetGroup{
		{Behavior: Behavior{Kind: KindOracle}, Weight: 3},
		{Behavior: Behavior{Kind: KindCrowd}, Weight: 1},
	}
	p := newFleetPicker(sc)
	counts := [2]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[p.pick()]++
	}
	frac := float64(counts[0]) / n
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("group 0 fraction = %v, want ~0.75", frac)
	}
}

func TestClosedLoopKeepsConcurrency(t *testing.T) {
	sc := testScenario()
	sc.Arrival = ArrivalSpec{Kind: ArrivalClosed, Concurrency: 3}
	sc.MaxUsers = 9
	sc.DurationSeconds = 10_000 // long enough that the cap, not time, ends it
	res := runLibrary(t, sc)
	r := &res.Report
	if r.UsersStarted != 9 {
		t.Fatalf("started %d users, want the cap of 9", r.UsersStarted)
	}
	if r.UsersCompleted != 9 {
		t.Fatalf("completed %d of 9", r.UsersCompleted)
	}
}

func TestAbandoningUsersLeaveSessionsBehind(t *testing.T) {
	sc := testScenario()
	sc.Fleet = []FleetGroup{{Behavior: Behavior{Kind: KindAbandoning, AbandonP: 0.9, ThinkMedianSeconds: 2}}}
	sc.AnswersPerUser = 50
	target := NewLibraryTarget(2, 0)
	defer target.Close()
	res, err := Run(sc, target)
	if err != nil {
		t.Fatal(err)
	}
	r := &res.Report
	if r.UsersAbandoned == 0 {
		t.Fatalf("no user abandoned at p=0.9: %+v", r)
	}
	// Abandoned sessions are left open on the server — the whole point
	// of the profile is to exercise idle eviction.
	if live := target.Manager().Len(); live < r.UsersAbandoned {
		t.Fatalf("manager holds %d sessions, want at least the %d abandoned", live, r.UsersAbandoned)
	}
}

func TestSkippingUsersSkip(t *testing.T) {
	sc := testScenario()
	sc.Seed = 21
	sc.MaxUsers = 8
	sc.Arrival.Rate = 0.5
	sc.AnswersPerUser = 3
	sc.Fleet = []FleetGroup{{Behavior: Behavior{Kind: KindSkipping, SkipP: 0.5, ThinkMedianSeconds: 2}}}
	res := runLibrary(t, sc)
	if res.Report.Skips == 0 {
		t.Fatalf("no skips at skipP=0.5: %+v", res.Report)
	}
	if res.Report.Errors != 0 {
		t.Fatalf("skip protocol errors: %+v", res.Report)
	}
}

func TestErroneousFleetDegradesQuality(t *testing.T) {
	base := testScenario()
	base.MaxUsers = 6
	base.AnswersPerUser = 3
	noisy := testScenario()
	noisy.MaxUsers = 6
	noisy.AnswersPerUser = 3
	noisy.Fleet = []FleetGroup{{Behavior: Behavior{Kind: KindErroneous, ErrorP: 0.5, ThinkMedianSeconds: 5}}}
	a, b := runLibrary(t, base), runLibrary(t, noisy)
	last := func(r *Report) CurvePoint { return r.Quality[len(r.Quality)-1] }
	if last(&b.Report).MeanPrecision >= last(&a.Report).MeanPrecision {
		t.Fatalf("50%% erroneous fleet (%v) not worse than oracle fleet (%v)",
			last(&b.Report).MeanPrecision, last(&a.Report).MeanPrecision)
	}
}

func TestBurstyUserDrawsLongGaps(t *testing.T) {
	sc := testScenario()
	sc.Fleet = []FleetGroup{{Behavior: Behavior{Kind: KindBursty, BurstLen: 2, BurstGapSeconds: 500, ThinkMedianSeconds: 1}}}
	u, err := newFleetUser(sc, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Claim indices only drive verdict lookup; any valid one works.
	var thinks []float64
	for i := 0; i < 6; i++ {
		_, think := u.respond(0)
		thinks = append(thinks, think)
	}
	// Every second answer ends a burst: gaps at indices 1, 3, 5.
	for i, th := range thinks {
		if i%2 == 1 {
			if th < 50 {
				t.Fatalf("burst-ending answer %d got a short gap %v", i, th)
			}
		} else if th > 50 {
			t.Fatalf("mid-burst answer %d got a gap-sized think %v", i, th)
		}
	}
}

func TestBehaviorDefaults(t *testing.T) {
	for _, kind := range []string{KindOracle, KindErroneous, KindSkipping, KindExpert, KindCrowd, KindAbandoning, KindBursty} {
		b := Behavior{Kind: kind}.withDefaults()
		if b.ThinkMedianSeconds <= 0 || b.ThinkSigma <= 0 {
			t.Fatalf("%s: think defaults missing: %+v", kind, b)
		}
		switch kind {
		case KindExpert:
			if b.Reliability != 0.97 {
				t.Fatalf("expert reliability = %v", b.Reliability)
			}
		case KindCrowd:
			if b.Reliability != 0.80 {
				t.Fatalf("crowd reliability = %v", b.Reliability)
			}
		case KindSkipping:
			if b.SkipP != 0.1 {
				t.Fatalf("skip default = %v", b.SkipP)
			}
		case KindAbandoning:
			if b.AbandonP != 0.25 {
				t.Fatalf("abandon default = %v", b.AbandonP)
			}
		case KindBursty:
			if b.BurstLen != 3 || b.BurstGapSeconds != 10*b.ThinkMedianSeconds {
				t.Fatalf("bursty defaults = %+v", b)
			}
		}
	}
	// Expert think times dominate crowd think times by default.
	e := Behavior{Kind: KindExpert}.withDefaults()
	c := Behavior{Kind: KindCrowd}.withDefaults()
	if e.ThinkMedianSeconds <= c.ThinkMedianSeconds {
		t.Fatal("experts should think longer than crowd by default")
	}
}

func TestUserTruthMatchesServerCorpus(t *testing.T) {
	req := service.OpenRequest{Profile: "wiki", Scale: 0.05, Seed: 77, EM: fastEM()}
	corpus, err := userCorpus(req)
	if err != nil {
		t.Fatal(err)
	}
	target := NewLibraryTarget(1, 0)
	defer target.Close()
	_, info, err := target.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	if info.Claims != len(corpus.Truth) {
		t.Fatalf("client-side truth has %d claims, server corpus %d", len(corpus.Truth), info.Claims)
	}
	if _, err := userCorpus(service.OpenRequest{Profile: "nope"}); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if _, err := userCorpus(service.OpenRequest{Profile: "wiki", Scale: -1}); err == nil {
		t.Fatal("negative scale accepted")
	}
}

func TestRenderTable(t *testing.T) {
	res := runLibrary(t, testScenario())
	var buf bytes.Buffer
	res.RenderTable(&buf)
	out := buf.String()
	for _, want := range []string{"scenario test", "answers", "quality-vs-effort", "op latency", "informational"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestSampleCurve(t *testing.T) {
	long := make([]CurvePoint, 100)
	for i := range long {
		long[i].Answers = i
	}
	got := sampleCurve(long, 12)
	if len(got) < 10 || len(got) > 13 {
		t.Fatalf("sampled to %d points", len(got))
	}
	if got[0].Answers != 0 || got[len(got)-1].Answers != 99 {
		t.Fatalf("sample must keep endpoints: %v..%v", got[0].Answers, got[len(got)-1].Answers)
	}
	if n := len(sampleCurve(long[:5], 12)); n != 5 {
		t.Fatalf("short curve resampled to %d", n)
	}
}

func TestFmtSec(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		12e-6:  "12.0µs",
		3.5e-3: "3.50ms",
		2.25:   "2.250s",
	}
	for in, want := range cases {
		if got := fmtSec(in); got != want {
			t.Fatalf("fmtSec(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestStreamSeedsAreStable(t *testing.T) {
	// Two identically-built users must carry identical random streams.
	sc := testScenario()
	a, err := newFleetUser(sc, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newFleetUser(sc, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if a.drawThink() != b.drawThink() {
			t.Fatal("think streams diverged for identical users")
		}
	}
	c, err := newFleetUser(sc, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.drawThink() == c.drawThink() {
		t.Fatal("distinct users share a think stream")
	}
}
