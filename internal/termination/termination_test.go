package termination

import (
	"math"
	"testing"

	"factcheck/internal/em"
	"factcheck/internal/factdb"
	"factcheck/internal/stats"
	"factcheck/internal/synth"
)

func TestURR(t *testing.T) {
	tr := NewTracker(5)
	if tr.URR() != 0 {
		t.Fatal("URR before observations should be 0")
	}
	tr.Observe(Observation{Entropy: 10, Claims: 100})
	tr.Observe(Observation{Entropy: 8, Claims: 100})
	if got := tr.URR(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("URR = %v, want 0.2", got)
	}
	tr.Observe(Observation{Entropy: 8, Claims: 100})
	if got := tr.URR(); got != 0 {
		t.Fatalf("URR with no reduction = %v", got)
	}
}

func TestURRZeroEntropyGuard(t *testing.T) {
	tr := NewTracker(5)
	tr.Observe(Observation{Entropy: 0, Claims: 10})
	tr.Observe(Observation{Entropy: 0, Claims: 10})
	if got := tr.URR(); got != 0 {
		t.Fatalf("URR with zero entropy = %v", got)
	}
}

func TestCNG(t *testing.T) {
	tr := NewTracker(5)
	if tr.CNG() != 0 {
		t.Fatal("CNG before observations should be 0")
	}
	tr.Observe(Observation{Entropy: 1, Changes: 5, Claims: 50})
	if got := tr.CNG(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("CNG = %v, want 0.1", got)
	}
}

func TestPREWindow(t *testing.T) {
	tr := NewTracker(3)
	tr.Observe(Observation{PredictionMatched: false, Claims: 10})
	tr.Observe(Observation{PredictionMatched: true, Claims: 10})
	tr.Observe(Observation{PredictionMatched: true, Claims: 10})
	tr.Observe(Observation{PredictionMatched: true, Claims: 10})
	// Window of 3: the initial mismatch has scrolled out.
	if got := tr.PRE(); got != 1 {
		t.Fatalf("PRE = %v, want 1", got)
	}
}

func TestPIR(t *testing.T) {
	tr := NewTracker(5)
	if tr.PIR() != 0 {
		t.Fatal("PIR before estimates should be 0")
	}
	tr.ObserveCV(0.8)
	tr.ObserveCV(0.88)
	if got := tr.PIR(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("PIR = %v, want 0.1", got)
	}
}

func TestShouldStopURR(t *testing.T) {
	tr := NewTracker(5)
	th := Thresholds{URRBelow: 0.05, Consecutive: 3}
	tr.Observe(Observation{Entropy: 10, Claims: 10})
	tr.Observe(Observation{Entropy: 9.9, Claims: 10})
	tr.Observe(Observation{Entropy: 9.85, Claims: 10})
	if tr.ShouldStop(th) {
		t.Fatal("stopped before run length satisfied")
	}
	tr.Observe(Observation{Entropy: 9.8, Claims: 10})
	if !tr.ShouldStop(th) {
		t.Fatal("URR criterion should trigger after 3 slow iterations")
	}
}

func TestShouldStopCNG(t *testing.T) {
	tr := NewTracker(5)
	th := Thresholds{CNGBelow: 0.02, Consecutive: 2}
	tr.Observe(Observation{Entropy: 5, Changes: 10, Claims: 100})
	tr.Observe(Observation{Entropy: 5, Changes: 1, Claims: 100})
	if tr.ShouldStop(th) {
		t.Fatal("one quiet iteration should not stop")
	}
	tr.Observe(Observation{Entropy: 5, Changes: 0, Claims: 100})
	if !tr.ShouldStop(th) {
		t.Fatal("CNG criterion should trigger")
	}
}

func TestShouldStopPRE(t *testing.T) {
	tr := NewTracker(4)
	th := Thresholds{PREAbove: 0.99, Consecutive: 3}
	for i := 0; i < 3; i++ {
		tr.Observe(Observation{Entropy: 5, PredictionMatched: true, Claims: 10})
	}
	if !tr.ShouldStop(th) {
		t.Fatal("PRE criterion should trigger after consistent matches")
	}
	tr.Observe(Observation{Entropy: 5, PredictionMatched: false, Claims: 10})
	if tr.ShouldStop(th) {
		t.Fatal("mismatch must reset the PRE run")
	}
}

func TestShouldStopPIR(t *testing.T) {
	tr := NewTracker(5)
	th := Thresholds{PIRBelow: 0.01}
	tr.Observe(Observation{Entropy: 5, Claims: 10})
	tr.Observe(Observation{Entropy: 5, Claims: 10})
	tr.Observe(Observation{Entropy: 5, Claims: 10})
	tr.ObserveCV(0.9)
	tr.ObserveCV(0.9005)
	if !tr.ShouldStop(th) {
		t.Fatal("PIR criterion should trigger on flat CV precision")
	}
}

func TestShouldStopIgnoresZeroCriteria(t *testing.T) {
	tr := NewTracker(5)
	for i := 0; i < 10; i++ {
		tr.Observe(Observation{Entropy: 1, Changes: 0, Claims: 10, PredictionMatched: true})
	}
	if tr.ShouldStop(Thresholds{}) {
		t.Fatal("zero thresholds must never stop")
	}
}

func TestCrossValidateAccuracy(t *testing.T) {
	corpus := synth.Generate(synth.Wikipedia.Scaled(0.3), 7)
	state := factdb.NewState(corpus.DB.NumClaims)
	e := em.NewEngine(corpus.DB, em.DefaultConfig(), 9)
	e.InferFull(state)
	// Label 60% truthfully.
	for i := 0; i < corpus.DB.NumClaims*3/5; i++ {
		c := corpus.ClaimOrder[i]
		state.SetLabel(c, corpus.Truth[c])
		e.InferIncremental(state)
	}
	a := CrossValidate(e, state, 5, stats.NewRNG(11))
	if a <= 0.5 || a > 1 {
		t.Fatalf("CV precision = %v, want in (0.5, 1]", a)
	}
}

func TestCrossValidateInsufficientLabels(t *testing.T) {
	corpus := synth.Generate(synth.Wikipedia.Scaled(0.1), 13)
	state := factdb.NewState(corpus.DB.NumClaims)
	e := em.NewEngine(corpus.DB, em.DefaultConfig(), 15)
	e.InferFull(state)
	state.SetLabel(0, true)
	if got := CrossValidate(e, state, 5, stats.NewRNG(17)); got != 0 {
		t.Fatalf("CV with one label = %v, want 0", got)
	}
	if got := CrossValidate(e, state, 1, stats.NewRNG(17)); got != 0 {
		t.Fatalf("CV with k=1 = %v, want 0", got)
	}
}

func TestTrackerDefaults(t *testing.T) {
	tr := NewTracker(0)
	if tr.Window != 5 {
		t.Fatalf("default window = %d", tr.Window)
	}
	if tr.Iterations() != 0 {
		t.Fatal("fresh tracker has observations")
	}
}
