// Package termination implements the early-termination machinery of
// §6.1: the uncertainty reduction rate (URR), the amount of changes
// (CNG), the amount of validated predictions (PRE), and the precision
// improvement rate (PIR) estimated by k-fold cross validation — the
// decision-support heuristics that stop the validation process once the
// probabilistic model has converged.
package termination

import (
	"factcheck/internal/em"
	"factcheck/internal/factdb"
	"factcheck/internal/stats"
)

// Observation carries the per-iteration signals of Alg. 1 consumed by the
// tracker.
type Observation struct {
	// Entropy is H_C(Q_i) after the iteration (Eq. 13 approximation).
	Entropy float64
	// Changes is |{c | g_i(c) ≠ g_{i−1}(c)}|.
	Changes int
	// Claims is |C|.
	Claims int
	// PredictionMatched reports whether the pre-validation grounding
	// g_{i−1}(c) agreed with the user's verdict for the validated claim.
	PredictionMatched bool
}

// Tracker accumulates observations and exposes the §6.1 indicators.
// Window controls how many recent iterations the PRE indicator and the
// consecutive-iteration stopping rules consider.
type Tracker struct {
	Window int

	obs []Observation
	cv  []float64 // cross-validation precision estimates A_i
}

// NewTracker creates a tracker with the given smoothing window
// (default 5 when w <= 0).
func NewTracker(w int) *Tracker {
	if w <= 0 {
		w = 5
	}
	return &Tracker{Window: w}
}

// Observe appends one iteration's signals.
func (t *Tracker) Observe(o Observation) { t.obs = append(t.obs, o) }

// ObserveCV appends a cross-validation precision estimate A_i (feeding
// the PIR indicator).
func (t *Tracker) ObserveCV(a float64) { t.cv = append(t.cv, a) }

// Iterations returns the number of observations.
func (t *Tracker) Iterations() int { return len(t.obs) }

// URR returns the uncertainty reduction rate of the latest iteration,
// (H(Q_{i−1}) − H(Q_i)) / H(Q_{i−1}); 0 before two observations.
func (t *Tracker) URR() float64 {
	n := len(t.obs)
	if n < 2 {
		return 0
	}
	prev, cur := t.obs[n-2].Entropy, t.obs[n-1].Entropy
	if prev <= 0 {
		return 0
	}
	return (prev - cur) / prev
}

// CNG returns the latest amount-of-changes indicator as a fraction of
// |C|.
func (t *Tracker) CNG() float64 {
	n := len(t.obs)
	if n == 0 {
		return 0
	}
	o := t.obs[n-1]
	if o.Claims == 0 {
		return 0
	}
	return float64(o.Changes) / float64(o.Claims)
}

// PRE returns the fraction of the last Window iterations whose inference
// result matched the user input.
func (t *Tracker) PRE() float64 {
	n := len(t.obs)
	if n == 0 {
		return 0
	}
	lo := n - t.Window
	if lo < 0 {
		lo = 0
	}
	matched := 0
	for _, o := range t.obs[lo:n] {
		if o.PredictionMatched {
			matched++
		}
	}
	return float64(matched) / float64(n-lo)
}

// PIR returns the precision improvement rate (A_i − A_{i−1}) / A_{i−1}
// from the last two cross-validation estimates; 0 before two estimates.
func (t *Tracker) PIR() float64 {
	n := len(t.cv)
	if n < 2 {
		return 0
	}
	if t.cv[n-2] <= 0 {
		return 0
	}
	return (t.cv[n-1] - t.cv[n-2]) / t.cv[n-2]
}

// Thresholds configures ShouldStop; zero-valued criteria are ignored.
type Thresholds struct {
	// URRBelow stops once the uncertainty reduction rate stays below
	// this value for Consecutive iterations.
	URRBelow float64
	// CNGBelow stops once the change fraction stays below this value
	// for Consecutive iterations.
	CNGBelow float64
	// PREAbove stops once the validated-prediction rate stays above
	// this value for Consecutive iterations.
	PREAbove float64
	// PIRBelow stops once the precision improvement rate (absolute
	// value) falls below this value.
	PIRBelow float64
	// Consecutive is the required run length (default 3).
	Consecutive int
}

// ShouldStop evaluates the configured criteria; any satisfied criterion
// stops the process (the indicators are alternatives, §6.1).
func (t *Tracker) ShouldStop(th Thresholds) bool {
	consec := th.Consecutive
	if consec <= 0 {
		consec = 3
	}
	if len(t.obs) < consec {
		return false
	}
	if th.URRBelow > 0 && t.runLength(func(i int) bool {
		if i == 0 {
			return false
		}
		prev := t.obs[i-1].Entropy
		if prev <= 0 {
			return true
		}
		return (prev-t.obs[i].Entropy)/prev < th.URRBelow
	}) >= consec {
		return true
	}
	if th.CNGBelow > 0 && t.runLength(func(i int) bool {
		o := t.obs[i]
		return o.Claims > 0 && float64(o.Changes)/float64(o.Claims) < th.CNGBelow
	}) >= consec {
		return true
	}
	if th.PREAbove > 0 && t.runLength(func(i int) bool {
		return t.obs[i].PredictionMatched
	}) >= consec && t.PRE() >= th.PREAbove {
		return true
	}
	if th.PIRBelow > 0 && len(t.cv) >= 2 {
		pir := t.PIR()
		if pir < 0 {
			pir = -pir
		}
		if pir < th.PIRBelow {
			return true
		}
	}
	return false
}

// runLength returns the length of the trailing run of observations
// satisfying pred (by index into obs).
func (t *Tracker) runLength(pred func(i int) bool) int {
	n := 0
	for i := len(t.obs) - 1; i >= 0; i-- {
		if !pred(i) {
			break
		}
		n++
	}
	return n
}

// CrossValidate estimates the model precision A_i by k-fold cross
// validation over the labelled claims (§6.1): each fold's labels are
// withheld, credibility is re-inferred for the withheld claims, and the
// inferred values are compared with the user input. The mean fold
// accuracy is returned; claims < k labels return 0.
func CrossValidate(e *em.Engine, state *factdb.State, k int, rng *stats.RNG) float64 {
	labeled := state.LabeledClaims()
	if k <= 1 || len(labeled) < k {
		return 0
	}
	rng.Shuffle(len(labeled), func(i, j int) { labeled[i], labeled[j] = labeled[j], labeled[i] })
	foldSize := (len(labeled) + k - 1) / k
	total := 0.0
	folds := 0
	for f := 0; f < k; f++ {
		lo := f * foldSize
		if lo >= len(labeled) {
			break
		}
		hi := lo + foldSize
		if hi > len(labeled) {
			hi = len(labeled)
		}
		fold := labeled[lo:hi]
		marg := e.HoldoutMarginals(state, fold)
		correct := 0
		for i, c := range fold {
			v, _ := state.Label(c)
			if (marg[i] >= 0.5) == v {
				correct++
			}
		}
		total += float64(correct) / float64(len(fold))
		folds++
	}
	if folds == 0 {
		return 0
	}
	return total / float64(folds)
}
