// Package guidance implements the user-guidance strategies of §4 — the
// first step of the validation process: selecting the claim(s) whose
// validation is most beneficial. It provides the random and
// uncertainty-sampling baselines of §8.4, the information-driven (§4.2)
// and source-driven (§4.3) strategies built on what-if iCRF inference,
// the hybrid roulette of §4.4, and the submodular batch selection of
// §6.2.
package guidance

import (
	"math"
	"sort"

	"factcheck/internal/em"
	"factcheck/internal/entropy"
	"factcheck/internal/factdb"
	"factcheck/internal/gibbs"
	"factcheck/internal/stats"
)

// Context carries the per-iteration inputs a strategy may consult.
type Context struct {
	DB     *factdb.DB
	State  *factdb.State
	Engine *em.Engine
	// Grounding is g_{i−1}, the grounding of the previous iteration.
	Grounding factdb.Grounding
	// RNG drives stochastic strategies (random baseline, hybrid roulette)
	// and seeds each scoring round's deterministic what-if streams.
	RNG *stats.RNG
	// CandidatePool bounds the number of claims scored by the what-if
	// strategies (§5.1's parallelisation note); 0 scores every
	// unlabelled claim.
	CandidatePool int
	// Workers bounds the goroutines used for what-if scoring; 0 means
	// GOMAXPROCS. Rankings are byte-identical across worker counts for a
	// fixed seed.
	Workers int
	// Pool is the persistent scoring pool; sessions share one across
	// iterations. A nil Pool is created (and cached) on first use.
	Pool *Pool
	// Gains is the optional cross-answer gain cache. When set, what-if
	// scoring seeds derive from per-component epochs (not from a
	// per-round RNG draw) and the strategies re-score only components
	// whose epoch moved since they were last scored, merging cached
	// gains for clean ones. When nil, every round re-scores everything
	// under a fresh base draw — the historical behaviour, kept for
	// transient contexts (experiments, batch assembly).
	Gains *GainCache
}

// Strategy ranks unlabelled claims by expected validation benefit.
type Strategy interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Rank returns up to k distinct unlabelled claims in descending
	// preference; an empty slice means nothing is left to validate.
	Rank(ctx *Context, k int) []int
}

// Select returns the single best claim of a strategy, or −1 when no
// unlabelled claims remain.
func Select(s Strategy, ctx *Context) int {
	r := s.Rank(ctx, 1)
	if len(r) == 0 {
		return -1
	}
	return r[0]
}

// Random is the random-selection baseline of §8.4.
type Random struct{}

// Name implements Strategy.
func (Random) Name() string { return "random" }

// Rank implements Strategy.
func (Random) Rank(ctx *Context, k int) []int {
	unl := ctx.State.Unlabeled()
	ctx.RNG.Shuffle(len(unl), func(i, j int) { unl[i], unl[j] = unl[j], unl[i] })
	if len(unl) > k {
		unl = unl[:k]
	}
	return unl
}

// Uncertainty is the uncertainty-sampling baseline of §8.4: it picks the
// most "problematic" claim, the one whose credibility probability has
// maximal binary entropy.
type Uncertainty struct{}

// Name implements Strategy.
func (Uncertainty) Name() string { return "uncertainty" }

// Rank implements Strategy. Entropies are computed once per claim before
// sorting — the comparator runs O(n log n) times and must not re-derive
// them.
func (Uncertainty) Rank(ctx *Context, k int) []int {
	unl := ctx.State.Unlabeled()
	h := make([]float64, len(unl))
	idx := make([]int, len(unl))
	for i, c := range unl {
		h[i] = stats.BinaryEntropy(ctx.State.P(c))
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if h[idx[a]] != h[idx[b]] {
			return h[idx[a]] > h[idx[b]]
		}
		return unl[idx[a]] < unl[idx[b]]
	})
	out := make([]int, 0, min(k, len(unl)))
	for _, i := range idx {
		out = append(out, unl[i])
		if len(out) == k {
			break
		}
	}
	return out
}

// candidates returns the claims the what-if strategies will score: the
// CandidatePool most uncertain unlabelled claims (all of them when the
// pool is 0 or larger than |C_U|).
func candidates(ctx *Context) []int {
	unl := (Uncertainty{}).Rank(ctx, ctx.State.Len())
	if ctx.CandidatePool > 0 && len(unl) > ctx.CandidatePool {
		unl = unl[:ctx.CandidatePool]
	}
	return unl
}

// rankByGain sorts candidates by gain (descending, ties by id).
func rankByGain(cand []int, gains []float64, k int) []int {
	idx := make([]int, len(cand))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if gains[idx[a]] != gains[idx[b]] {
			return gains[idx[a]] > gains[idx[b]]
		}
		return cand[idx[a]] < cand[idx[b]]
	})
	out := make([]int, 0, k)
	for _, i := range idx {
		out = append(out, cand[i])
		if len(out) == k {
			break
		}
	}
	return out
}

// InfoGain is the information-driven strategy of §4.2: select the claim
// whose validation maximally reduces the claim-entropy of the database
// (Eq. 14–16), estimated by component-restricted what-if inference.
type InfoGain struct{}

// Name implements Strategy.
func (InfoGain) Name() string { return "info" }

// Rank implements Strategy.
func (InfoGain) Rank(ctx *Context, k int) []int {
	cand := candidates(ctx)
	if len(cand) == 0 {
		return nil
	}
	gains := InformationGains(ctx, cand)
	return rankByGain(cand, gains, k)
}

// InformationGains returns IG_C(c) (Eq. 15) for each candidate.
func InformationGains(ctx *Context, cand []int) []float64 {
	return whatIfGains(ctx, cand, gainInfo)
}

// beforeEntropy computes a component's "before" entropy for a gain kind:
// the Eq. 13 claim entropy for the information-driven strategy, the
// Eq. 17-derived source entropy under the previous grounding for the
// source-driven one. Both depend only on the component's frozen state
// for this epoch, so candidates sharing a component share the value and
// the gain cache may carry it across answers while the component stays
// clean.
func beforeEntropy(ctx *Context, kind gainKind, comp int) float64 {
	if kind == gainInfo {
		return entropy.ApproxClaims(ctx.State, ctx.DB.ComponentMembers(comp))
	}
	h := 0.0
	for _, s := range ctx.DB.ComponentSources(comp) {
		h += stats.BinaryEntropy(sourceTrustGrounded(ctx.DB, int(s), ctx.Grounding))
	}
	return h
}

// whatIfGain scores one candidate with the worker's what-if chains; hCur
// is the candidate's component "before" entropy.
func whatIfGain(ctx *Context, kind gainKind, w *Worker, c int, hCur float64) float64 {
	plus := w.Hypo(ctx.Engine, c, true)
	minus := w.Hypo(ctx.Engine, c, false)
	p := ctx.State.P(c)
	var hPlus, hMinus float64
	if kind == gainInfo {
		hPlus = hypoClaimEntropy(ctx.State, plus, c)
		hMinus = hypoClaimEntropy(ctx.State, minus, c)
	} else {
		srcs := ctx.DB.ComponentSources(ctx.DB.ComponentOf(c))
		hPlus = hypoSourceEntropy(ctx, srcs, plus, c, true)
		hMinus = hypoSourceEntropy(ctx, srcs, minus, c, false)
	}
	return hCur - (p*hPlus + (1-p)*hMinus)
}

// whatIfGains evaluates a gain family over the candidates. Without a
// gain cache every candidate is scored under a fresh per-round base
// draw (the historical path). With one, gains cached for clean
// components are merged in and only the remainder — candidates whose
// component epoch moved, typically just the answered claim's component —
// is scored, under epoch-derived seeds that make each gain an exact,
// reproducible function of the component's state. The two paths inside
// a cached session (reuse on or SetFullRecompute) are bit-identical by
// construction.
func whatIfGains(ctx *Context, cand []int, kind gainKind) []float64 {
	if len(cand) == 0 {
		return nil
	}
	gc := ctx.Gains
	var gains []float64   // allocated only on the cached path
	need := cand          // candidates requiring a scoring round
	needIdx := []int(nil) // positions of need within gains; nil = identity
	if gc != nil {
		gains = make([]float64, len(cand))
		need = make([]int, 0, len(cand))
		needIdx = make([]int, 0, len(cand))
		for i, c := range cand {
			comp := ctx.DB.ComponentOf(c)
			if g, ok := gc.gain(kind, c, comp); ok {
				gains[i] = g
				continue
			}
			need = append(need, c)
			needIdx = append(needIdx, i)
		}
		if len(need) == 0 {
			return gains
		}
	}

	// "Before" entropies, one per distinct component being scored. They
	// are resolved up front (through the cache when present) so the
	// scoring closure below only reads this map — workers never touch
	// shared cache state concurrently.
	compH := make(map[int]float64)
	for _, c := range need {
		comp := ctx.DB.ComponentOf(c)
		if _, ok := compH[comp]; ok {
			continue
		}
		if gc != nil {
			compH[comp] = gc.entropyFor(kind, comp, func() float64 { return beforeEntropy(ctx, kind, comp) })
		} else {
			compH[comp] = beforeEntropy(ctx, kind, comp)
		}
	}

	fn := func(w *Worker, c int) float64 {
		return whatIfGain(ctx, kind, w, c, compH[ctx.DB.ComponentOf(c)])
	}
	var scored []float64
	if gc != nil {
		scored = ctx.pool().ScoreSeeded(ctx, need, func(c int) int64 {
			comp := ctx.DB.ComponentOf(c)
			return stats.StreamSeed(gc.scoreBase(kind, comp), uint64(c))
		}, fn)
	} else {
		scored = ctx.pool().Score(ctx, need, fn)
	}
	if needIdx == nil {
		return scored
	}
	for j, v := range scored {
		gc.storeGain(kind, need[j], ctx.DB.ComponentOf(need[j]), v)
		gains[needIdx[j]] = v
	}
	return gains
}

// hypoClaimEntropy computes the Eq. 13 entropy of a component under
// what-if marginals; the clamped claim contributes zero (it would be
// labelled), and already-labelled claims contribute zero as always.
func hypoClaimEntropy(state *factdb.State, res gibbs.ComponentResult, clamped int) float64 {
	h := 0.0
	for i, m := range res.Members {
		if int(m) == clamped || state.Labeled(int(m)) {
			continue
		}
		h += stats.BinaryEntropy(res.Marginals[i])
	}
	return h
}

// SourceGain is the source-driven strategy of §4.3: select the claim
// whose validation maximally reduces the uncertainty of source
// trustworthiness (Eq. 19–21).
type SourceGain struct{}

// Name implements Strategy.
func (SourceGain) Name() string { return "source" }

// Rank implements Strategy.
func (SourceGain) Rank(ctx *Context, k int) []int {
	cand := candidates(ctx)
	if len(cand) == 0 {
		return nil
	}
	gains := SourceGains(ctx, cand)
	return rankByGain(cand, gains, k)
}

// SourceGains returns IG_S(c) (Eq. 20) for each candidate. Source
// trustworthiness Pr(s) follows Eq. 17: the fraction of the source's
// claims deemed credible — under the current grounding for the "before"
// entropy, and under thresholded what-if marginals for the conditional
// entropy. Components are closed under shared sources, so only the
// candidate's component contributes to the difference.
func SourceGains(ctx *Context, cand []int) []float64 {
	return whatIfGains(ctx, cand, gainSource)
}

// sourceTrustGrounded is Eq. 17 for a single source.
func sourceTrustGrounded(db *factdb.DB, s int, g factdb.Grounding) float64 {
	claims := db.SourceClaims[s]
	if len(claims) == 0 {
		return 0.5
	}
	n := 0
	for _, c := range claims {
		if g[c] {
			n++
		}
	}
	return float64(n) / float64(len(claims))
}

// hypoSourceEntropy computes H_S over the component's sources with the
// what-if marginals thresholded at 0.5 (claim c forced to v).
func hypoSourceEntropy(ctx *Context, srcs []int32, res gibbs.ComponentResult, c int, v bool) float64 {
	cred := make(map[int32]bool, len(res.Members))
	for i, m := range res.Members {
		cred[m] = res.Marginals[i] >= 0.5
	}
	cred[int32(c)] = v
	h := 0.0
	for _, s := range srcs {
		claims := ctx.DB.SourceClaims[s]
		if len(claims) == 0 {
			h += stats.BinaryEntropy(0.5)
			continue
		}
		n := 0
		for _, cl := range claims {
			credible, ok := cred[cl]
			if !ok {
				credible = ctx.Grounding[cl]
			}
			if credible {
				n++
			}
		}
		h += stats.BinaryEntropy(float64(n) / float64(len(claims)))
	}
	return h
}

// Hybrid is the dynamic strategy of §4.4: a roulette wheel chooses the
// source-driven strategy with probability Z and the information-driven
// strategy otherwise. Alg. 1 updates Z each iteration via HybridScore.
type Hybrid struct {
	// Z is the score z_{i−1} of Eq. 23.
	Z float64
}

// Name implements Strategy.
func (*Hybrid) Name() string { return "hybrid" }

// Rank implements Strategy.
func (h *Hybrid) Rank(ctx *Context, k int) []int {
	if ctx.RNG.Float64() < h.Z {
		return (SourceGain{}).Rank(ctx, k)
	}
	return (InfoGain{}).Rank(ctx, k)
}

// HybridScore computes z_i = 1 − e^{−(ε_i·(1−h_i) + r_i·h_i)} (Eq. 23)
// from the error rate ε_i, the unreliable-source ratio r_i, and the user
// input ratio h_i = i/|C|.
func HybridScore(errRate, unreliableRatio, inputRatio float64) float64 {
	return 1 - math.Exp(-(errRate*(1-inputRatio) + unreliableRatio*inputRatio))
}

// UnreliableRatio computes r_i (Alg. 1, line 17): the fraction of sources
// whose Eq. 17 trustworthiness under grounding g falls below 0.5.
func UnreliableRatio(db *factdb.DB, g factdb.Grounding) float64 {
	if len(db.Sources) == 0 {
		return 0
	}
	n := 0
	for s := range db.Sources {
		if sourceTrustGrounded(db, s, g) < 0.5 {
			n++
		}
	}
	return float64(n) / float64(len(db.Sources))
}

// ErrorRate computes ε_i (Eq. 22): the surprise of user input v for claim
// c against the previous iteration's probability.
func ErrorRate(prevP float64, prevGrounding bool) float64 {
	if prevGrounding {
		return 1 - prevP
	}
	return prevP
}
