package guidance

import (
	"reflect"
	"testing"

	"factcheck/internal/em"
	"factcheck/internal/factdb"
	"factcheck/internal/stats"
	"factcheck/internal/synth"
)

// TestPoolTrimIsTraceNeutral verifies that trimming a pool's worker
// buffers between rounds — the idle-session reclamation of the serving
// layer — never changes scores: lanes are reseeded and resynchronised
// every round, so cached buffers carry no cross-round information.
func TestPoolTrimIsTraceNeutral(t *testing.T) {
	corpus := synth.Generate(synth.Wikipedia.Scaled(0.1), 3)
	cfg := em.DefaultConfig()
	cfg.BurnIn, cfg.Samples, cfg.EMIters = 6, 10, 1

	rank := func(trim bool) [][]int {
		e := em.NewEngine(corpus.DB, cfg, 4)
		state := factdb.NewState(corpus.DB.NumClaims)
		e.InferFull(state)
		ctx := &Context{
			DB:            corpus.DB,
			State:         state,
			Engine:        e,
			Grounding:     e.Grounding(state),
			RNG:           stats.NewRNG(5),
			CandidatePool: 6,
			Workers:       2,
			Pool:          NewPool(e),
		}
		var out [][]int
		for round := 0; round < 3; round++ {
			out = append(out, (InfoGain{}).Rank(ctx, 4))
			if trim {
				ctx.Pool.Trim(0)
				e.ReleaseWorkers(0)
			}
		}
		return out
	}

	plain, trimmed := rank(false), rank(true)
	if !reflect.DeepEqual(plain, trimmed) {
		t.Fatalf("Trim changed rankings:\n plain=%v\n trimmed=%v", plain, trimmed)
	}
}

func TestPoolTrimBounds(t *testing.T) {
	p := &Pool{workers: make([]Worker, 4)}
	p.Trim(8) // larger than current size: no-op
	if len(p.workers) != 4 {
		t.Fatalf("Trim(8) resized to %d", len(p.workers))
	}
	p.Trim(-2) // clamps to 0
	if len(p.workers) != 0 {
		t.Fatalf("Trim(-2) kept %d workers", len(p.workers))
	}
}
