package guidance

import (
	"factcheck/internal/stats"
)

// gainKind indexes the two what-if gain families held by a GainCache.
type gainKind int

const (
	gainInfo gainKind = iota
	gainSource
	numGainKinds
)

// GainCache is the cross-answer gain/entropy cache behind incremental
// dirty-component re-ranking. The what-if strategies score candidates
// per connected component: a candidate's gain is a pure function of its
// component's frozen state (chain assignment, marginals, grounding,
// labels), the model parameters, and a deterministic per-candidate seed.
// Between full EM sweeps a single user answer perturbs only the answered
// claim's component, so the gains of every other component are still
// exact — the cache keeps them and the strategies re-score only the
// dirty component.
//
// Exactness is what preserves the repository's standing invariant that
// selection traces are bit-identical across configurations: every cache
// entry is keyed by a (global, per-component) epoch pair, the per-
// candidate scoring seed is derived from the same epoch pair (never from
// a per-round RNG draw), and invalidation bumps the epoch. A cached gain
// is therefore byte-identical to what a from-scratch recompute would
// produce — SetFullRecompute(true) forces that recompute (same seeds,
// no reuse) and is the A/B lever the property tests and benchmarks use.
//
// Epochs move on three triggers, driven by core.Session: the answered
// claim's component (per-answer dirty marking), a global bump on full EM
// parameter sweeps and confirmation-check repairs (θ and every
// component's samples changed), and implicitly on restore — replay
// re-executes the same invalidation sequence, rebuilding identical
// epochs. A GainCache is owned by one session and is not safe for
// concurrent use.
type GainCache struct {
	base   uint64
	full   bool
	global uint64   // bumped by InvalidateAll; starts at 1 so zero entries never match
	local  []uint64 // per-component epoch, bumped by InvalidateComponent

	gains     [numGainKinds][]gainEntry // per claim
	entropies [numGainKinds][]hEntry    // per component ("before" entropy)

	hits, misses int64 // lookup telemetry (gains only)
}

// gainEntry is one cached candidate gain, valid while its epoch pair
// matches the component's current epochs.
type gainEntry struct {
	global, local uint64
	gain          float64
}

// hEntry is one cached per-component "before" entropy.
type hEntry struct {
	global, local uint64
	h             float64
}

// gainCacheStream separates the cache's seed universe from every other
// StreamSeed consumer of the session seed.
const gainCacheStream = 0x6761696e63616368 // "gaincach"

// NewGainCache creates an empty cache whose deterministic seed universe
// derives from seed (a session passes its Options.Seed, so restored
// sessions rebuild the identical universe).
func NewGainCache(seed int64) *GainCache {
	return &GainCache{
		base:   uint64(stats.StreamSeed(uint64(seed), gainCacheStream)),
		global: 1,
	}
}

// SetFullRecompute switches the cache into full-recompute mode: epochs
// and seeds are maintained exactly as before, but lookups always miss,
// so every candidate is re-scored every round. Because cached values are
// exact, rankings are bit-identical with the mode on or off — it exists
// so tests can assert that property and benchmarks can price the cache.
func (g *GainCache) SetFullRecompute(on bool) { g.full = on }

// FullRecompute reports whether full-recompute mode is on.
func (g *GainCache) FullRecompute() bool { return g.full }

// InvalidateAll marks every component dirty — the fallback taken on full
// EM parameter sweeps, confirmation-check repairs and any other change
// with non-local reach.
func (g *GainCache) InvalidateAll() { g.global++ }

// InvalidateComponent marks one component dirty — the per-answer path.
func (g *GainCache) InvalidateComponent(comp int) {
	g.growLocal(comp)
	g.local[comp]++
}

// InvalidateMerged marks the components a corpus extend dirtied —
// merge winners, freshly created components, and components whose
// claims gained evidence. Unlike InvalidateComponent, the new epoch
// jumps past the maximum epoch of every component: a merge moves
// claims between components, and an absorbed claim's cached entry
// still carries its old component's epoch — a plain +1 bump of the
// winner could collide with that stale value and serve a wrong gain.
func (g *GainCache) InvalidateMerged(comps []int) {
	var max uint64
	for _, e := range g.local {
		if e > max {
			max = e
		}
	}
	for _, comp := range comps {
		g.growLocal(comp)
		g.local[comp] = max + 1
	}
}

func (g *GainCache) growLocal(comp int) {
	for len(g.local) <= comp {
		g.local = append(g.local, 0)
	}
}

func (g *GainCache) localOf(comp int) uint64 {
	if comp < len(g.local) {
		return g.local[comp]
	}
	return 0
}

// epochSeed is the deterministic seed root of the component's current
// epoch: a pure function of (session seed, global epoch, component,
// local epoch), so a cached gain and a from-scratch recompute of the
// same epoch always draw identical what-if streams.
func (g *GainCache) epochSeed(comp int) uint64 {
	s := uint64(stats.StreamSeed(g.base, g.global))
	s = uint64(stats.StreamSeed(s, uint64(comp)))
	return uint64(stats.StreamSeed(s, g.localOf(comp)))
}

// SweepSeed returns the seed of the component's incremental inference
// sweep for the current epoch; a distinct stream id keeps it disjoint
// from the scoring seeds of the same epoch.
func (g *GainCache) SweepSeed(comp int) int64 {
	return stats.StreamSeed(g.epochSeed(comp), 1)
}

// scoreBase returns the per-epoch base of the component's candidate
// scoring seeds for one gain family; candidate c reseeds its what-if
// chain from StreamSeed(scoreBase, c). The kind is mixed in so the
// information- and source-gain estimators draw independent Monte Carlo
// streams — the hybrid roulette compares the two families, and shared
// sampling noise would correlate their errors.
func (g *GainCache) scoreBase(kind gainKind, comp int) uint64 {
	return uint64(stats.StreamSeed(g.epochSeed(comp), 2+uint64(kind)))
}

// Hits returns the number of candidate-gain lookups served from cache.
func (g *GainCache) Hits() int64 { return g.hits }

// Misses returns the number of candidate-gain lookups that required a
// fresh what-if scoring round (in full-recompute mode, all of them).
func (g *GainCache) Misses() int64 { return g.misses }

// gain returns the cached gain of a candidate when its entry matches the
// component's current epoch (always a miss in full-recompute mode).
func (g *GainCache) gain(kind gainKind, claim, comp int) (float64, bool) {
	if g.full {
		g.misses++
		return 0, false
	}
	es := g.gains[kind]
	if claim < len(es) {
		e := es[claim]
		if e.global == g.global && e.local == g.localOf(comp) {
			g.hits++
			return e.gain, true
		}
	}
	g.misses++
	return 0, false
}

// storeGain records a freshly scored gain under the component's current
// epoch.
func (g *GainCache) storeGain(kind gainKind, claim, comp int, v float64) {
	for len(g.gains[kind]) <= claim {
		g.gains[kind] = append(g.gains[kind], gainEntry{})
	}
	g.gains[kind][claim] = gainEntry{global: g.global, local: g.localOf(comp), gain: v}
}

// entropyFor returns the component's cached "before" entropy for the
// current epoch, computing and storing it on a miss. Entropy reuse stays
// on even in full-recompute mode: the value is an exact pure function of
// unchanged component state, and what the mode exists to re-price is the
// what-if scoring.
func (g *GainCache) entropyFor(kind gainKind, comp int, compute func() float64) float64 {
	for len(g.entropies[kind]) <= comp {
		g.entropies[kind] = append(g.entropies[kind], hEntry{})
	}
	e := &g.entropies[kind][comp]
	if e.global == g.global && e.local == g.localOf(comp) {
		return e.h
	}
	h := compute()
	*e = hEntry{global: g.global, local: g.localOf(comp), h: h}
	return h
}
