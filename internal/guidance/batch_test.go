package guidance

import (
	"math"
	"testing"
	"testing/quick"

	"factcheck/internal/factdb"
	"factcheck/internal/stats"
)

// corrDB builds claims 0,1 sharing two sources, claims 1,2 sharing one,
// and claim 3 isolated.
func corrDB(t *testing.T) *factdb.DB {
	t.Helper()
	db := &factdb.DB{NumClaims: 4}
	db.Sources = []factdb.Source{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}}
	add := func(id, src, claim int) factdb.Document {
		return factdb.Document{ID: id, Source: src, Refs: []factdb.ClaimRef{{Claim: claim, Stance: factdb.Support}}}
	}
	db.Documents = []factdb.Document{
		add(0, 0, 0), add(1, 0, 1),
		add(2, 1, 0), add(3, 1, 1),
		add(4, 2, 1), add(5, 2, 2),
		add(6, 3, 3),
	}
	if err := db.Finalize(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCorrelationMatrix(t *testing.T) {
	db := corrDB(t)
	corr := NewCorrelation(db, []int{0, 1, 2, 3})
	// Max shared count: claims 0-1 share sources {0,1} = 2; also the
	// diagonal of claim 1 is |{0,1,2}| = 3 — the max.
	if corr.At(0, 1) != corr.At(1, 0) {
		t.Fatal("correlation not symmetric")
	}
	if corr.At(0, 1) <= 0 {
		t.Fatal("claims 0,1 share sources, M must be positive")
	}
	if corr.At(0, 3) != 0 || corr.At(2, 3) != 0 {
		t.Fatal("isolated claim must have zero correlation")
	}
	if corr.At(0, 1) <= corr.At(1, 2) {
		t.Fatalf("two shared sources (%v) should beat one (%v)", corr.At(0, 1), corr.At(1, 2))
	}
	// All entries in [0,1].
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if corr.At(i, j) < 0 || corr.At(i, j) > 1 {
				t.Fatalf("M(%d,%d) = %v", i, j, corr.At(i, j))
			}
		}
	}
}

func TestImportance(t *testing.T) {
	db := corrDB(t)
	corr := NewCorrelation(db, []int{0, 1, 2, 3})
	ig := []float64{1, 1, 1, 1}
	q := corr.Importance(ig)
	// Claim 1 touches the most shared sources, so it must be the most
	// important; claim 3 only correlates with itself.
	if q[1] <= q[3] {
		t.Fatalf("importance: q = %v", q)
	}
}

func TestUtilityAndGreedyAgreeOnSingle(t *testing.T) {
	db := corrDB(t)
	claims := []int{0, 1, 2, 3}
	corr := NewCorrelation(db, claims)
	ig := []float64{0.5, 0.9, 0.4, 0.3}
	q := corr.Importance(ig)
	sel := GreedyBatch(corr, ig, q, 4, 1)
	if len(sel) != 1 {
		t.Fatalf("selected %v", sel)
	}
	// The greedy single pick must maximise F over singletons.
	bestF := math.Inf(-1)
	best := -1
	for i := range claims {
		f := Utility(corr, ig, q, 4, []int{i})
		if f > bestF {
			bestF, best = f, i
		}
	}
	if sel[0] != best {
		t.Fatalf("greedy picked %d, singleton max is %d", sel[0], best)
	}
}

func TestGreedyIncrementalUpdateMatchesDirectComputation(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := stats.NewRNG(seed)
		n := 3 + r.Intn(7)
		// Random symmetric M with unit diagonal scale and random gains.
		corr := &Correlation{claims: make([]int, n), m: make([][]float64, n)}
		for i := 0; i < n; i++ {
			corr.m[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := r.Float64()
				corr.m[i][j] = v
				corr.m[j][i] = v
			}
		}
		ig := make([]float64, n)
		for i := range ig {
			ig[i] = r.Float64()
		}
		q := corr.Importance(ig)
		w := 1 + 3*r.Float64()
		k := 1 + r.Intn(n)
		sel := GreedyBatch(corr, ig, q, w, k)
		if len(sel) != k {
			return false
		}
		// Replay the greedy using direct F evaluations.
		var direct []int
		used := make([]bool, n)
		for len(direct) < k {
			best, bestGain := -1, math.Inf(-1)
			for i := 0; i < n; i++ {
				if used[i] {
					continue
				}
				gain := Utility(corr, ig, q, w, append(append([]int{}, direct...), i)) -
					Utility(corr, ig, q, w, direct)
				if gain > bestGain+1e-12 {
					best, bestGain = i, gain
				}
			}
			used[best] = true
			direct = append(direct, best)
		}
		for i := range sel {
			if sel[i] != direct[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUtilitySubmodular(t *testing.T) {
	// F(A ∪ {x}) − F(A) ≥ F(B ∪ {x}) − F(B) for A ⊆ B, x ∉ B, with
	// non-negative IG and M.
	err := quick.Check(func(seed int64) bool {
		r := stats.NewRNG(seed)
		n := 4 + r.Intn(5)
		corr := &Correlation{claims: make([]int, n), m: make([][]float64, n)}
		for i := 0; i < n; i++ {
			corr.m[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := r.Float64()
				corr.m[i][j] = v
				corr.m[j][i] = v
			}
		}
		ig := make([]float64, n)
		for i := range ig {
			ig[i] = r.Float64()
		}
		q := corr.Importance(ig)
		w := 2.0
		// A = {0}, B = {0,1}, x = 2 (valid since n >= 4).
		a := []int{0}
		b := []int{0, 1}
		gainA := Utility(corr, ig, q, w, append(append([]int{}, a...), 2)) - Utility(corr, ig, q, w, a)
		gainB := Utility(corr, ig, q, w, append(append([]int{}, b...), 2)) - Utility(corr, ig, q, w, b)
		return gainA >= gainB-1e-9
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGreedyMeetsApproximationGuarantee(t *testing.T) {
	// Greedy F(B) must be >= (1 − 1/e)·OPT on monotone instances.
	err := quick.Check(func(seed int64) bool {
		r := stats.NewRNG(seed)
		n := 4 + r.Intn(4)
		corr := &Correlation{claims: make([]int, n), m: make([][]float64, n)}
		for i := 0; i < n; i++ {
			corr.m[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				// Small off-diagonal redundancy keeps F monotone.
				v := 0.2 * r.Float64()
				if i == j {
					v = 0.5
				}
				corr.m[i][j] = v
				corr.m[j][i] = v
			}
		}
		ig := make([]float64, n)
		for i := range ig {
			ig[i] = 0.2 + r.Float64()
		}
		q := corr.Importance(ig)
		w := 3.0
		k := 2 + r.Intn(2)
		sel := GreedyBatch(corr, ig, q, w, k)
		fGreedy := Utility(corr, ig, q, w, sel)
		_, fOpt := BruteForceBatch(corr, ig, q, w, k)
		return fGreedy >= (1-1/math.E)*fOpt-1e-9
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGreedyAvoidsRedundantPick(t *testing.T) {
	// Two heavily correlated high-gain claims and one independent
	// medium-gain claim: the batch of two should include the
	// independent one.
	corr := &Correlation{claims: []int{0, 1, 2}, m: [][]float64{
		{1, 1, 0},
		{1, 1, 0},
		{0, 0, 1},
	}}
	ig := []float64{1.0, 0.99, 0.7}
	q := corr.Importance(ig)
	sel := GreedyBatch(corr, ig, q, 1.0, 2)
	has2 := false
	for _, s := range sel {
		if s == 2 {
			has2 = true
		}
	}
	if !has2 {
		t.Fatalf("greedy ignored the non-redundant claim: %v", sel)
	}
}

func TestBatchSelectorEndToEnd(t *testing.T) {
	ctx, _ := newCtx(t, 21)
	b := &BatchSelector{W: 4, K: 5}
	batch := b.SelectBatch(ctx, 5)
	if len(batch) != 5 {
		t.Fatalf("batch size = %d", len(batch))
	}
	seen := map[int]bool{}
	for _, c := range batch {
		if ctx.State.Labeled(c) {
			t.Fatalf("batch contains labelled claim %d", c)
		}
		if seen[c] {
			t.Fatalf("duplicate claim %d in batch", c)
		}
		seen[c] = true
	}
	if b.Name() != "batch" {
		t.Fatal("name")
	}
	if got := b.Rank(ctx, 3); len(got) != 3 {
		t.Fatalf("Rank(3) = %v", got)
	}
}

func TestBruteForceBatchExhausts(t *testing.T) {
	corr := &Correlation{claims: []int{0, 1, 2}, m: [][]float64{
		{1, 0, 0}, {0, 1, 0}, {0, 0, 1},
	}}
	ig := []float64{0.3, 0.9, 0.5}
	q := corr.Importance(ig)
	best, f := BruteForceBatch(corr, ig, q, 5, 2)
	if len(best) != 2 {
		t.Fatalf("best = %v", best)
	}
	// With no cross terms, the two largest IG·q·w − IG² wins: claims 1,2.
	want := map[int]bool{1: true, 2: true}
	for _, b := range best {
		if !want[b] {
			t.Fatalf("best = %v, f = %v", best, f)
		}
	}
}

func TestGreedyBatchBudgetedRespectsBudget(t *testing.T) {
	corr := &Correlation{claims: []int{0, 1, 2, 3}, m: [][]float64{
		{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1},
	}}
	ig := []float64{0.9, 0.8, 0.7, 0.6}
	q := corr.Importance(ig)
	costs := []float64{3, 1, 1, 1}
	sel := GreedyBatchBudgeted(corr, ig, q, costs, 4, 3)
	total := 0.0
	for _, i := range sel {
		total += costs[i]
	}
	if total > 3 {
		t.Fatalf("budget exceeded: %v (selection %v)", total, sel)
	}
	// With equal-ish gains, the three cheap claims beat the expensive one.
	if len(sel) != 3 {
		t.Fatalf("selected %v, want the three affordable claims", sel)
	}
	for _, i := range sel {
		if i == 0 {
			t.Fatalf("expensive claim selected: %v", sel)
		}
	}
}

func TestGreedyBatchBudgetedPrefersCostEffective(t *testing.T) {
	corr := &Correlation{claims: []int{0, 1}, m: [][]float64{{1, 0}, {0, 1}}}
	ig := []float64{1.0, 0.6}
	q := corr.Importance(ig)
	// Claim 0 has higher gain but is 5x the cost; claim 1 wins per unit.
	sel := GreedyBatchBudgeted(corr, ig, q, []float64{5, 1}, 4, 5)
	if len(sel) == 0 || sel[0] != 1 {
		t.Fatalf("first pick = %v, want cost-effective claim 1", sel)
	}
}

func TestGreedyBatchBudgetedPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on cost mismatch")
		}
	}()
	corr := &Correlation{claims: []int{0}, m: [][]float64{{1}}}
	GreedyBatchBudgeted(corr, []float64{1}, []float64{1}, nil, 1, 1)
}

func TestGreedyBatchBudgetedIgnoresNonPositiveCosts(t *testing.T) {
	corr := &Correlation{claims: []int{0, 1}, m: [][]float64{{1, 0}, {0, 1}}}
	ig := []float64{1, 1}
	q := corr.Importance(ig)
	sel := GreedyBatchBudgeted(corr, ig, q, []float64{0, 1}, 4, 10)
	for _, i := range sel {
		if i == 0 {
			t.Fatal("zero-cost claim must be skipped (guard against infinite ratio)")
		}
	}
}
