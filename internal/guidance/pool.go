package guidance

import (
	"runtime"
	"sync"
	"sync/atomic"

	"factcheck/internal/em"
	"factcheck/internal/gibbs"
	"factcheck/internal/stats"
)

// Pool is the persistent parallel scoring engine behind the what-if
// strategies (§5.1). It replaces the old clone-per-Rank scheme: worker
// chains are long-lived (owned by the engine, resynchronised in place at
// the start of every scoring round) and each Worker carries reusable
// marginal buffers, so a steady-state Rank call performs no O(|C|)
// allocations.
//
// Scoring is deterministic by construction: every candidate's what-if
// chain RNG is reseeded from (round base, claim id), and each what-if
// excursion is rolled back before the worker moves on, so a candidate's
// gain is a pure function of the synced chain state — independent of the
// worker count and of task scheduling. Rankings are therefore
// byte-identical for a fixed seed whether one worker scores everything or
// GOMAXPROCS workers share the queue.
//
// A Pool is attached to a session (core.Session wires one into every
// Context); strategies fall back to a transient Pool when the Context
// carries none, which still reuses the engine's persistent worker chains.
type Pool struct {
	engine  *em.Engine
	workers []Worker
	// legacyBase feeds legacySeed, the pool-cached per-round seed
	// closure of the cache-less Score path: rebuilding the closure per
	// round would put one heap allocation back on a scoring path that
	// is advertised — and benchmark-gated — as allocation-free.
	legacyBase uint64
	legacySeed func(c int) int64
}

// Worker is one scoring lane of a Pool: a persistent worker chain plus
// reusable marginal buffers for the two what-if branches of a candidate.
type Worker struct {
	// Chain is the lane's private Gibbs chain, resynchronised with the
	// engine at the start of each scoring round.
	Chain *gibbs.Chain

	plus, minus []float64
}

// Hypo runs the engine's component-restricted what-if inference for
// (c, v) on the worker's chain, reusing the branch's marginal buffer.
// The result is valid until the worker's next Hypo call for the same v.
func (w *Worker) Hypo(e *em.Engine, c int, v bool) gibbs.ComponentResult {
	buf := &w.minus
	if v {
		buf = &w.plus
	}
	res := e.HypotheticalInto(*buf, w.Chain, c, v)
	*buf = res.Marginals
	return res
}

// NewPool creates a scoring pool over the engine's persistent worker
// chains.
func NewPool(engine *em.Engine) *Pool { return &Pool{engine: engine} }

// Trim drops the pool's cached per-worker scoring buffers beyond keep.
// A serving layer that parks idle sessions calls Trim(0) (together with
// em.Engine.ReleaseWorkers) so memory is held only by sessions actually
// scoring; the buffers regrow on demand and their presence or absence
// never affects scores — Score reseeds and resynchronises every worker
// lane per round.
func (p *Pool) Trim(keep int) {
	if keep < 0 {
		keep = 0
	}
	if len(p.workers) <= keep {
		return
	}
	for i := keep; i < len(p.workers); i++ {
		p.workers[i] = Worker{}
	}
	p.workers = p.workers[:keep]
}

// pool returns the Context's scoring pool, creating and caching a
// transient one on first use.
func (ctx *Context) pool() *Pool {
	if ctx.Pool == nil {
		ctx.Pool = NewPool(ctx.Engine)
	}
	return ctx.Pool
}

// workerCount resolves the effective parallelism for nTasks tasks.
func workerCount(requested, nTasks int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > nTasks {
		w = nTasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Score evaluates fn for every candidate with the pool's workers and
// returns the gains aligned with cand. One RNG draw from ctx.RNG seeds
// the round regardless of worker count, keeping the session's random
// stream — and hence the selection trace — identical across parallelism
// settings.
func (p *Pool) Score(ctx *Context, cand []int, fn func(w *Worker, c int) float64) []float64 {
	p.legacyBase = ctx.RNG.Uint64()
	if p.legacySeed == nil {
		p.legacySeed = func(c int) int64 {
			return stats.StreamSeed(p.legacyBase, uint64(c))
		}
	}
	return p.ScoreSeeded(ctx, cand, p.legacySeed, fn)
}

// ScoreSeeded is Score with caller-controlled per-candidate seeds and no
// RNG draw of its own. The gain-cache scoring path uses it with seeds
// derived from per-component epochs instead of a per-round draw, which
// is what makes a candidate's gain reproducible across rounds while its
// component is clean — the exactness the cross-answer cache depends on.
// Determinism across worker counts is unchanged: a candidate's chain is
// reseeded from seedOf(c) wherever it runs, and every what-if excursion
// is rolled back.
func (p *Pool) ScoreSeeded(ctx *Context, cand []int, seedOf func(c int) int64, fn func(w *Worker, c int) float64) []float64 {
	if len(cand) == 0 {
		return nil
	}
	gains := make([]float64, len(cand))
	n := workerCount(ctx.Workers, len(cand))
	chains := p.engine.AcquireWorkers(n)
	for len(p.workers) < n {
		p.workers = append(p.workers, Worker{})
	}
	ws := p.workers[:n]
	for i := range ws {
		ws[i].Chain = chains[i]
	}
	score := func(w *Worker, i int) {
		c := cand[i]
		w.Chain.Reseed(seedOf(c))
		gains[i] = fn(w, c)
	}
	if n == 1 {
		for i := range cand {
			score(&ws[0], i)
		}
		return gains
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := range ws {
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cand) {
					return
				}
				score(w, i)
			}
		}(&ws[k])
	}
	wg.Wait()
	return gains
}
