package guidance

import (
	"factcheck/internal/factdb"
)

// Correlation is the matrix M(c, c′) of Eq. 26 over a candidate set: the
// number of sources serving as origin of both claims, normalised to the
// unit interval by the maximum entry. It is symmetric with M(c, c) = 1
// whenever the candidate has any source and the set is non-degenerate.
type Correlation struct {
	claims []int
	m      [][]float64
}

// NewCorrelation builds M over the given claims.
func NewCorrelation(db *factdb.DB, claims []int) *Correlation {
	n := len(claims)
	m := make([][]float64, n)
	maxV := 0.0
	for i := range m {
		m[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := float64(db.SharedSources(claims[i], claims[j]))
			m[i][j] = v
			m[j][i] = v
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV > 0 {
		for i := range m {
			for j := range m[i] {
				m[i][j] /= maxV
			}
		}
	}
	return &Correlation{claims: claims, m: m}
}

// Claims returns the candidate set backing the matrix.
func (c *Correlation) Claims() []int { return c.claims }

// At returns M between the i-th and j-th candidates (matrix indices, not
// claim ids).
func (c *Correlation) At(i, j int) float64 { return c.m[i][j] }

// Importance returns q(c) = Σ_c′ M(c, c′)·IG(c′) for each candidate — the
// propagation weight of §6.2.
func (c *Correlation) Importance(ig []float64) []float64 {
	n := len(c.claims)
	q := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += c.m[i][j] * ig[j]
		}
		q[i] = s
	}
	return q
}

// Utility evaluates F(B) of Eq. 27 for a set of candidate indices:
// F(B) = w·Σ_{c∈B} q(c)·IG(c) − Σ_{c,c′∈B} IG(c)·M(c,c′)·IG(c′)
// (the redundancy sum ranges over ordered pairs including the diagonal,
// matching the incremental update of §6.2).
func Utility(corr *Correlation, ig, q []float64, w float64, set []int) float64 {
	f := 0.0
	for _, i := range set {
		f += w * q[i] * ig[i]
	}
	for _, i := range set {
		for _, j := range set {
			f -= ig[i] * corr.At(i, j) * ig[j]
		}
	}
	return f
}

// GreedyBatch selects k candidate indices greedily maximising F, using
// the incremental gain update Δ_{i+1}(c) = Δ_i(c) − 2·IG(c*)·M(c,c*)·IG(c).
// F is monotone submodular for non-negative IG and M, so the result
// carries the (1 − 1/e) guarantee of [49]. Returned indices are in
// selection order.
func GreedyBatch(corr *Correlation, ig, q []float64, w float64, k int) []int {
	n := len(ig)
	if k > n {
		k = n
	}
	delta := make([]float64, n)
	for i := 0; i < n; i++ {
		// Δ_0(c) = w·q(c)·IG(c) − IG(c)²·M(c,c)   (the diagonal term).
		delta[i] = w*q[i]*ig[i] - ig[i]*corr.At(i, i)*ig[i]
	}
	selected := make([]int, 0, k)
	used := make([]bool, n)
	for len(selected) < k {
		best, bestVal := -1, 0.0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if best == -1 || delta[i] > bestVal {
				best, bestVal = i, delta[i]
			}
		}
		if best == -1 {
			break
		}
		used[best] = true
		selected = append(selected, best)
		for i := 0; i < n; i++ {
			if !used[i] {
				delta[i] -= 2 * ig[best] * corr.At(i, best) * ig[i]
			}
		}
	}
	return selected
}

// GreedyBatchBudgeted is the budgeted variant of the §6.2 selection: each
// candidate has a validation cost (the paper notes such cost models —
// e.g. validation difficulty — as an orthogonal extension), and the batch
// must fit a total budget. The cost-benefit greedy picks the candidate
// with maximal Δ(c)/cost(c) among those still affordable, the standard
// heuristic for budgeted submodular maximisation. Returned indices are in
// selection order; the total cost of the result never exceeds budget.
func GreedyBatchBudgeted(corr *Correlation, ig, q, costs []float64, w, budget float64) []int {
	n := len(ig)
	if len(costs) != n {
		panic("guidance: cost length mismatch")
	}
	delta := make([]float64, n)
	for i := 0; i < n; i++ {
		delta[i] = w*q[i]*ig[i] - ig[i]*corr.At(i, i)*ig[i]
	}
	var selected []int
	used := make([]bool, n)
	remaining := budget
	for {
		best, bestRatio := -1, 0.0
		for i := 0; i < n; i++ {
			if used[i] || costs[i] > remaining || costs[i] <= 0 {
				continue
			}
			ratio := delta[i] / costs[i]
			if best == -1 || ratio > bestRatio {
				best, bestRatio = i, ratio
			}
		}
		if best == -1 {
			break
		}
		used[best] = true
		selected = append(selected, best)
		remaining -= costs[best]
		for i := 0; i < n; i++ {
			if !used[i] {
				delta[i] -= 2 * ig[best] * corr.At(i, best) * ig[i]
			}
		}
	}
	return selected
}

// BruteForceBatch exhaustively maximises F over all k-subsets; it is the
// test oracle for the greedy guarantee and the literal selectAB of
// Eq. 28 for small candidate pools.
func BruteForceBatch(corr *Correlation, ig, q []float64, w float64, k int) ([]int, float64) {
	n := len(ig)
	if k > n {
		k = n
	}
	idx := make([]int, k)
	var best []int
	bestF := 0.0
	first := true
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			f := Utility(corr, ig, q, w, idx)
			if first || f > bestF {
				bestF = f
				best = append([]int(nil), idx...)
				first = false
			}
			return
		}
		for i := start; i < n; i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return best, bestF
}

// BatchSelector implements the batched validation of §6.2 as a Strategy
// adapter: it scores a candidate pool with the information-driven gains,
// then greedily assembles the top-k batch with the redundancy penalty.
type BatchSelector struct {
	// W is the positive balance weight of Eq. 27.
	W float64
	// K is the batch size.
	K int
}

// Name implements Strategy.
func (b *BatchSelector) Name() string { return "batch" }

// Rank implements Strategy (returns min(k, K, |pool|) claims).
func (b *BatchSelector) Rank(ctx *Context, k int) []int {
	if b.K < k {
		k = b.K
	}
	return b.SelectBatch(ctx, k)
}

// SelectBatch returns the greedy top-k batch of claim ids in selection
// (descending preference) order.
func (b *BatchSelector) SelectBatch(ctx *Context, k int) []int {
	cand := candidates(ctx)
	if len(cand) == 0 {
		return nil
	}
	ig := InformationGains(ctx, cand)
	// Clamp tiny negative sampling noise: submodularity needs IG ≥ 0.
	for i, g := range ig {
		if g < 0 {
			ig[i] = 0
		}
	}
	corr := NewCorrelation(ctx.DB, cand)
	q := corr.Importance(ig)
	sel := GreedyBatch(corr, ig, q, b.W, k)
	out := make([]int, len(sel))
	for i, idx := range sel {
		out[i] = cand[idx]
	}
	return out
}
