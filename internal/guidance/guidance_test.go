package guidance

import (
	"math"
	"testing"

	"factcheck/internal/em"
	"factcheck/internal/factdb"
	"factcheck/internal/stats"
	"factcheck/internal/synth"
)

// newCtx builds a small inferred corpus context for strategy tests.
func newCtx(t *testing.T, seed int64) (*Context, *synth.Corpus) {
	t.Helper()
	corpus := synth.Generate(synth.Wikipedia.Scaled(0.25), seed)
	state := factdb.NewState(corpus.DB.NumClaims)
	engine := em.NewEngine(corpus.DB, em.DefaultConfig(), seed+1)
	engine.InferFull(state)
	ctx := &Context{
		DB:            corpus.DB,
		State:         state,
		Engine:        engine,
		Grounding:     engine.Grounding(state),
		RNG:           stats.NewRNG(seed + 2),
		CandidatePool: 12,
		Workers:       2,
	}
	return ctx, corpus
}

func TestRandomRanksUnlabeled(t *testing.T) {
	ctx, _ := newCtx(t, 1)
	r := Random{}
	got := r.Rank(ctx, 5)
	if len(got) != 5 {
		t.Fatalf("Rank returned %d claims", len(got))
	}
	seen := map[int]bool{}
	for _, c := range got {
		if ctx.State.Labeled(c) {
			t.Fatalf("random picked labelled claim %d", c)
		}
		if seen[c] {
			t.Fatalf("duplicate claim %d", c)
		}
		seen[c] = true
	}
	if r.Name() != "random" {
		t.Fatal("name")
	}
}

func TestRandomExhaustsClaims(t *testing.T) {
	ctx, _ := newCtx(t, 2)
	n := ctx.DB.NumClaims
	got := (Random{}).Rank(ctx, n+10)
	if len(got) != n {
		t.Fatalf("Rank(%d) over %d claims returned %d", n+10, n, len(got))
	}
}

func TestUncertaintyPrefersHalf(t *testing.T) {
	ctx, _ := newCtx(t, 3)
	// Force one claim to be maximally uncertain and others confident.
	for c := 0; c < ctx.DB.NumClaims; c++ {
		ctx.State.SetP(c, 0.99)
	}
	ctx.State.SetP(7, 0.5)
	ctx.State.SetP(9, 0.8)
	got := (Uncertainty{}).Rank(ctx, 2)
	if got[0] != 7 {
		t.Fatalf("top uncertain claim = %d, want 7", got[0])
	}
	if got[1] != 9 {
		t.Fatalf("second = %d, want 9", got[1])
	}
}

func TestUncertaintySkipsLabeled(t *testing.T) {
	ctx, _ := newCtx(t, 4)
	for c := 0; c < ctx.DB.NumClaims; c++ {
		ctx.State.SetP(c, 0.9)
	}
	ctx.State.SetLabel(3, true)
	got := (Uncertainty{}).Rank(ctx, ctx.DB.NumClaims)
	for _, c := range got {
		if c == 3 {
			t.Fatal("labelled claim ranked")
		}
	}
}

func TestSelectReturnsMinusOneWhenExhausted(t *testing.T) {
	ctx, corpus := newCtx(t, 5)
	for c := 0; c < corpus.DB.NumClaims; c++ {
		ctx.State.SetLabel(c, corpus.Truth[c])
	}
	if got := Select(Random{}, ctx); got != -1 {
		t.Fatalf("Select on exhausted state = %d, want -1", got)
	}
	if got := Select(InfoGain{}, ctx); got != -1 {
		t.Fatalf("InfoGain on exhausted state = %d, want -1", got)
	}
}

func TestInformationGainsFiniteAndMostlyPositive(t *testing.T) {
	ctx, _ := newCtx(t, 6)
	cand := candidates(ctx)
	gains := InformationGains(ctx, cand)
	if len(gains) != len(cand) {
		t.Fatal("gain length mismatch")
	}
	positive := 0
	for i, g := range gains {
		if math.IsNaN(g) || math.IsInf(g, 0) {
			t.Fatalf("gain[%d] = %v", i, g)
		}
		if g > 0 {
			positive++
		}
	}
	if positive == 0 {
		t.Fatal("no candidate had positive information gain")
	}
}

func TestInfoGainPrefersConnectedClaim(t *testing.T) {
	// A claim linked to many others through one source should carry more
	// information gain than an isolated claim.
	db := &factdb.DB{NumClaims: 6}
	db.Sources = []factdb.Source{{ID: 0}, {ID: 1}}
	docID := 0
	for c := 0; c < 5; c++ { // claims 0..4 share source 0
		db.Documents = append(db.Documents, factdb.Document{
			ID: docID, Source: 0, Refs: []factdb.ClaimRef{{Claim: c, Stance: factdb.Support}},
		})
		docID++
	}
	db.Documents = append(db.Documents, factdb.Document{
		ID: docID, Source: 1, Refs: []factdb.ClaimRef{{Claim: 5, Stance: factdb.Support}},
	})
	if err := db.Finalize(); err != nil {
		t.Fatal(err)
	}
	state := factdb.NewState(6)
	engine := em.NewEngine(db, em.DefaultConfig(), 9)
	engine.InferFull(state)
	// Install a strong trust coupling so validation propagates.
	th := engine.Theta()
	th[len(th)-1] = 2
	engine.SetTheta(th)
	ctx := &Context{
		DB: db, State: state, Engine: engine,
		Grounding: engine.Grounding(state),
		RNG:       stats.NewRNG(10), Workers: 1,
	}
	gains := InformationGains(ctx, []int{0, 5})
	if gains[0] <= gains[1] {
		t.Fatalf("connected claim gain %v should beat isolated %v", gains[0], gains[1])
	}
}

func TestSourceGainsFinite(t *testing.T) {
	ctx, _ := newCtx(t, 11)
	cand := candidates(ctx)[:6]
	gains := SourceGains(ctx, cand)
	for i, g := range gains {
		if math.IsNaN(g) || math.IsInf(g, 0) {
			t.Fatalf("source gain[%d] = %v", i, g)
		}
	}
}

func TestStrategiesReturnUnlabeledOnly(t *testing.T) {
	ctx, corpus := newCtx(t, 12)
	for i := 0; i < 10; i++ {
		c := corpus.ClaimOrder[i]
		ctx.State.SetLabel(c, corpus.Truth[c])
	}
	for _, s := range []Strategy{Random{}, Uncertainty{}, InfoGain{}, SourceGain{}, &Hybrid{Z: 0.5}} {
		got := s.Rank(ctx, 5)
		for _, c := range got {
			if ctx.State.Labeled(c) {
				t.Fatalf("%s ranked labelled claim %d", s.Name(), c)
			}
		}
	}
}

func TestHybridRoulette(t *testing.T) {
	ctx, _ := newCtx(t, 13)
	// With a single-candidate pool, both sub-strategies must return the
	// most uncertain claim, making the hybrid deterministic despite the
	// stochastic what-if scoring.
	ctx.CandidatePool = 1
	want := (Uncertainty{}).Rank(ctx, 1)[0]
	for _, z := range []float64{0, 1, 0.5} {
		h := &Hybrid{Z: z}
		got := h.Rank(ctx, 1)
		if len(got) != 1 || got[0] != want {
			t.Fatalf("hybrid(Z=%v) = %v, want [%d]", z, got, want)
		}
	}
	if (&Hybrid{}).Name() != "hybrid" {
		t.Fatal("name")
	}
}

func TestHybridScoreProperties(t *testing.T) {
	if z := HybridScore(0, 0, 0); z != 0 {
		t.Fatalf("z(0,0,0) = %v", z)
	}
	// Monotone in both error rate and unreliable ratio.
	if HybridScore(0.9, 0, 0.2) <= HybridScore(0.1, 0, 0.2) {
		t.Fatal("z not monotone in error rate")
	}
	if HybridScore(0.1, 0.9, 0.8) <= HybridScore(0.1, 0.1, 0.8) {
		t.Fatal("z not monotone in unreliable ratio")
	}
	// Early on (h≈0) the error rate dominates; late (h≈1) the ratio does.
	early := HybridScore(0.8, 0.1, 0.01)
	earlySwap := HybridScore(0.1, 0.8, 0.01)
	if early <= earlySwap {
		t.Fatal("error rate should dominate early")
	}
	late := HybridScore(0.1, 0.8, 0.99)
	lateSwap := HybridScore(0.8, 0.1, 0.99)
	if late <= lateSwap {
		t.Fatal("unreliable ratio should dominate late")
	}
	for _, z := range []float64{HybridScore(1, 1, 0.5), HybridScore(0.5, 0.5, 0.5)} {
		if z < 0 || z > 1 {
			t.Fatalf("z out of [0,1]: %v", z)
		}
	}
}

func TestUnreliableRatio(t *testing.T) {
	db := &factdb.DB{NumClaims: 2}
	db.Sources = []factdb.Source{{ID: 0}, {ID: 1}}
	db.Documents = []factdb.Document{
		{ID: 0, Source: 0, Refs: []factdb.ClaimRef{{Claim: 0, Stance: factdb.Support}}},
		{ID: 1, Source: 1, Refs: []factdb.ClaimRef{{Claim: 1, Stance: factdb.Support}}},
	}
	if err := db.Finalize(); err != nil {
		t.Fatal(err)
	}
	// Source 0's claim credible, source 1's not: half the sources are
	// unreliable.
	if got := UnreliableRatio(db, factdb.Grounding{true, false}); got != 0.5 {
		t.Fatalf("UnreliableRatio = %v", got)
	}
	if got := UnreliableRatio(db, factdb.Grounding{true, true}); got != 0 {
		t.Fatalf("UnreliableRatio = %v", got)
	}
}

func TestErrorRate(t *testing.T) {
	if got := ErrorRate(0.8, true); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("ErrorRate = %v", got)
	}
	if got := ErrorRate(0.8, false); got != 0.8 {
		t.Fatalf("ErrorRate = %v", got)
	}
}

func TestParallelAndSequentialGainsIdentical(t *testing.T) {
	// What-if chains are reseeded per candidate from one shared base draw
	// and every excursion is rolled back, so gains must be byte-identical
	// across worker counts — not merely statistically close.
	for _, strat := range []func(*Context, []int) []float64{InformationGains, SourceGains} {
		ctx, _ := newCtx(t, 14)
		cand := candidates(ctx)
		gains := map[int][]float64{}
		for _, workers := range []int{1, 2, 4} {
			c := *ctx
			c.RNG = stats.NewRNG(99)
			c.Workers = workers
			c.Pool = nil
			gains[workers] = strat(&c, cand)
		}
		for _, workers := range []int{2, 4} {
			for i := range gains[1] {
				if math.IsNaN(gains[1][i]) {
					t.Fatal("NaN gain")
				}
				if gains[workers][i] != gains[1][i] {
					t.Fatalf("workers=%d: gain[%d] = %v, want %v (workers=1)",
						workers, i, gains[workers][i], gains[1][i])
				}
			}
		}
	}
}

func TestRankIdenticalWithPersistentPool(t *testing.T) {
	// A session-owned persistent Pool must rank exactly like a transient
	// one: worker chains are resynchronised every round.
	ctx, _ := newCtx(t, 16)
	pooled := *ctx
	pooled.RNG = stats.NewRNG(7)
	pooled.Pool = NewPool(ctx.Engine)
	fresh := *ctx
	fresh.RNG = stats.NewRNG(7)
	fresh.Pool = nil
	a := (InfoGain{}).Rank(&pooled, 5)
	b := (InfoGain{}).Rank(&fresh, 5)
	if len(a) != len(b) {
		t.Fatalf("rank lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank[%d] = %d with pool, %d without", i, a[i], b[i])
		}
	}
	// And a second round on the same pool (stale worker state must be
	// resynced, not accumulated).
	pooled.RNG = stats.NewRNG(7)
	fresh.RNG = stats.NewRNG(7)
	a = (InfoGain{}).Rank(&pooled, 5)
	b = (InfoGain{}).Rank(&fresh, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("second round rank[%d] = %d with pool, %d without", i, a[i], b[i])
		}
	}
}

func TestCandidatePoolCap(t *testing.T) {
	ctx, _ := newCtx(t, 15)
	ctx.CandidatePool = 5
	if got := candidates(ctx); len(got) != 5 {
		t.Fatalf("pool = %d, want 5", len(got))
	}
	ctx.CandidatePool = 0
	if got := candidates(ctx); len(got) != ctx.DB.NumClaims {
		t.Fatalf("pool = %d, want all %d", len(got), ctx.DB.NumClaims)
	}
}

func TestGainCacheEpochSemantics(t *testing.T) {
	g := NewGainCache(3)
	g.storeGain(gainInfo, 5, 2, 0.25)
	if v, ok := g.gain(gainInfo, 5, 2); !ok || v != 0.25 {
		t.Fatalf("stored gain not returned: %v %v", v, ok)
	}
	// The other kind is a separate namespace.
	if _, ok := g.gain(gainSource, 5, 2); ok {
		t.Fatal("kind namespaces leaked")
	}
	// Dirtying the component invalidates its entries and moves its seeds.
	seedBefore := g.scoreBase(gainInfo, 2)
	sweepBefore := g.SweepSeed(2)
	otherBefore := g.scoreBase(gainInfo, 3)
	g.InvalidateComponent(2)
	if _, ok := g.gain(gainInfo, 5, 2); ok {
		t.Fatal("entry survived component invalidation")
	}
	if g.scoreBase(gainInfo, 2) == seedBefore || g.SweepSeed(2) == sweepBefore {
		t.Fatal("component epoch bump did not move its seeds")
	}
	if g.scoreBase(gainInfo, 3) != otherBefore {
		t.Fatal("component epoch bump moved a clean component's seed")
	}
	// A global invalidation clears everything.
	g.storeGain(gainInfo, 5, 2, 0.5)
	g.InvalidateAll()
	if _, ok := g.gain(gainInfo, 5, 2); ok {
		t.Fatal("entry survived global invalidation")
	}
	// Full-recompute mode: identical seeds, lookups always miss.
	g2 := NewGainCache(3)
	if g2.scoreBase(gainSource, 1) != NewGainCache(3).scoreBase(gainSource, 1) {
		t.Fatal("seed universe not a pure function of the session seed")
	}
	if g2.scoreBase(gainInfo, 1) == g2.scoreBase(gainSource, 1) {
		t.Fatal("info and source scoring streams must be independent")
	}
	g2.storeGain(gainSource, 1, 1, 0.75)
	g2.SetFullRecompute(true)
	if _, ok := g2.gain(gainSource, 1, 1); ok {
		t.Fatal("full-recompute mode served a cached gain")
	}
	if g2.Hits() != 0 || g2.Misses() == 0 {
		t.Fatalf("telemetry: hits=%d misses=%d", g2.Hits(), g2.Misses())
	}
}

func TestCachedGainsExactAcrossRounds(t *testing.T) {
	// Over a multi-component corpus, a second scoring round with an
	// untouched cache must serve every gain from cache — and both rounds,
	// plus a full-recompute context over the same engine, must agree
	// bit-for-bit.
	corpus := synth.GenerateCommunities(synth.Wikipedia.Scaled(0.5), 4, 21)
	state := factdb.NewState(corpus.DB.NumClaims)
	engine := em.NewEngine(corpus.DB, em.DefaultConfig(), 22)
	engine.InferFull(state)
	ctx := &Context{
		DB: corpus.DB, State: state, Engine: engine,
		Grounding: engine.Grounding(state),
		RNG:       stats.NewRNG(23), Workers: 2,
		CandidatePool: 16,
		Gains:         NewGainCache(24),
	}
	cand := candidates(ctx)
	for _, strat := range []func(*Context, []int) []float64{InformationGains, SourceGains} {
		first := strat(ctx, cand)
		missesAfter := ctx.Gains.Misses()
		again := strat(ctx, cand)
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("gain[%d] changed across rounds: %v vs %v", i, first[i], again[i])
			}
		}
		if ctx.Gains.Misses() != missesAfter {
			t.Fatalf("second round missed the cache %d times", ctx.Gains.Misses()-missesAfter)
		}

		full := *ctx
		full.Gains = NewGainCache(24)
		full.Gains.SetFullRecompute(true)
		full.Pool = nil
		recomputed := strat(&full, cand)
		for i := range first {
			if first[i] != recomputed[i] {
				t.Fatalf("cached gain[%d] = %v, full recompute = %v", i, first[i], recomputed[i])
			}
		}
	}
	if ctx.Gains.Hits() == 0 {
		t.Fatal("no cache hits recorded")
	}
}

func TestDirtyComponentRescoresOnlyThatComponent(t *testing.T) {
	corpus := synth.GenerateCommunities(synth.Wikipedia.Scaled(0.5), 4, 31)
	state := factdb.NewState(corpus.DB.NumClaims)
	engine := em.NewEngine(corpus.DB, em.DefaultConfig(), 32)
	engine.InferFull(state)
	ctx := &Context{
		DB: corpus.DB, State: state, Engine: engine,
		Grounding: engine.Grounding(state),
		RNG:       stats.NewRNG(33), Workers: 1,
		CandidatePool: 16,
		Gains:         NewGainCache(34),
	}
	cand := candidates(ctx)
	first := InformationGains(ctx, cand)
	dirty := ctx.DB.ComponentOf(cand[0])
	ctx.Gains.InvalidateComponent(dirty)
	second := InformationGains(ctx, cand)
	for i, c := range cand {
		clean := ctx.DB.ComponentOf(c) != dirty
		if clean && first[i] != second[i] {
			t.Fatalf("clean candidate %d re-scored differently: %v vs %v", c, first[i], second[i])
		}
	}
	// The dirty component was genuinely re-scored: its candidates missed.
	var dirtyCands int64
	for _, c := range cand {
		if ctx.DB.ComponentOf(c) == dirty {
			dirtyCands++
		}
	}
	if dirtyCands == 0 {
		t.Skip("candidate pool missed the dirty component")
	}
	if hits := ctx.Gains.Hits(); hits != int64(len(cand))-dirtyCands {
		t.Fatalf("hits = %d, want %d clean candidates", hits, int64(len(cand))-dirtyCands)
	}
}
