// Package stream implements the streaming fact checking of §7 (Alg. 2):
// an online Expectation-Maximization engine that updates the CRF
// parameters with stochastic approximation (Eq. 29-30) as new claims,
// documents and sources arrive, instead of re-computing from the full
// (and ever-growing) database. The engine exchanges parameters with the
// validation process of Alg. 1 in both directions (lines 7 and 10).
package stream

import (
	"math"
	"sync"

	"factcheck/internal/crf"
	"factcheck/internal/factdb"
	"factcheck/internal/optimize"
)

// Config tunes the online EM.
type Config struct {
	// Gamma0 scales the step sizes γ_t = Gamma0 / t^GammaExp.
	Gamma0 float64
	// GammaExp ∈ (0.5, 1] satisfies the Robbins-Monro conditions
	// Σγ_t = ∞ and Σγ_t² < ∞ ([18]).
	GammaExp float64
	// BufferCap bounds the retained clique observations; the oldest
	// (most down-weighted) observations are evicted first. Claims and
	// their user input are discarded after validation (§7).
	BufferCap int
	// Lambda is the L2 regularisation of the M-step.
	Lambda float64
	// Tron configures the Eq. 30 solver.
	Tron optimize.Config
}

// DefaultConfig returns the streaming defaults (DESIGN.md §6).
func DefaultConfig() Config {
	return Config{
		Gamma0:    1,
		GammaExp:  0.6,
		BufferCap: 4096,
		Lambda:    0.01,
		Tron:      optimize.Config{MaxIter: 15, CGMaxIter: 15, Tol: 1e-3},
	}
}

// Engine is the online EM state: the current parameters W_t and the
// decaying-weight sufficient-statistics buffer realising Q_t(W).
//
// An Engine is safe for concurrent use: arrivals and validated claims
// flowing back from Alg. 1 (§7, lines 7/10) may be observed from
// different goroutines, and Predict/Theta may be read while updates run.
// Updates are serialised internally — the stochastic-approximation
// recursion Q_t = (1−γ_t)Q_{t−1} + γ_t(·) is inherently sequential — so
// concurrency changes arrival interleaving (as a real stream would), not
// the correctness of any single update.
type Engine struct {
	mu    sync.Mutex
	cfg   Config
	dim   int
	t     int
	theta []float64

	rows [][]float64
	ys   []float64
	ws   []float64
}

// New creates an engine for parameter dimensionality dim (the crf.Model
// dimension) with zero initial parameters.
func New(dim int, cfg Config) *Engine {
	if cfg.Gamma0 <= 0 {
		cfg.Gamma0 = 1
	}
	if cfg.GammaExp <= 0 {
		cfg.GammaExp = 0.6
	}
	if cfg.BufferCap <= 0 {
		cfg.BufferCap = 4096
	}
	return &Engine{cfg: cfg, dim: dim, theta: make([]float64, dim)}
}

// T returns the number of observed claims.
func (e *Engine) T() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.t
}

// StepSize returns γ_t for a given t (exposed for the Robbins-Monro
// property tests).
func (e *Engine) StepSize(t int) float64 {
	if t < 1 {
		t = 1
	}
	return e.cfg.Gamma0 / math.Pow(float64(t), e.cfg.GammaExp)
}

// Theta returns a copy of the current parameters W_t.
func (e *Engine) Theta() []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]float64(nil), e.theta...)
}

// SetTheta installs parameters received from the validation process
// (Alg. 2 line 7); the next update warm-starts from them.
func (e *Engine) SetTheta(theta []float64) {
	if len(theta) != e.dim {
		panic("stream: theta dimension mismatch")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	copy(e.theta, theta)
}

// Predict returns the engine's credibility estimate for a claim given its
// clique feature rows and stance signs: σ(Σ_π sign_π·θ·x_π). This is the
// "educated guess" available for claims after their data is discarded.
func (e *Engine) Predict(rows [][]float64, signs []float64) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.predictLocked(rows, signs)
}

func (e *Engine) predictLocked(rows [][]float64, signs []float64) float64 {
	z := 0.0
	for i, row := range rows {
		s := 0.0
		for j, x := range row {
			s += e.theta[j] * x
		}
		z += signs[i] * s
	}
	return sigmoid(z)
}

// ObserveClaim performs one stochastic-approximation update (Eq. 29-30)
// for an arriving claim described by its clique feature rows and stance
// signs. When the claim arrives with a known verdict (a validated claim
// flowing back from Alg. 1), pass it via label; otherwise pass nil and
// the engine uses its own prediction as the expectation over C_U.
func (e *Engine) ObserveClaim(rows [][]float64, signs []float64, label *bool) {
	if len(rows) == 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.t++
	gamma := e.StepSize(e.t)

	// Expectation for the new claim.
	var p float64
	if label != nil {
		if *label {
			p = 1
		} else {
			p = 0
		}
	} else {
		p = e.predictLocked(rows, signs)
	}

	// Q_t = (1−γ)·Q_{t−1} + γ·(new term): decay the old observations...
	for i := range e.ws {
		e.ws[i] *= 1 - gamma
	}
	// ...and append the new claim's cliques at weight γ.
	for i, row := range rows {
		y := p
		if signs[i] < 0 {
			y = 1 - p
		}
		e.rows = append(e.rows, append([]float64(nil), row...))
		e.ys = append(e.ys, y)
		e.ws = append(e.ws, gamma)
	}
	// FIFO eviction: the oldest entries carry the smallest weights.
	if over := len(e.rows) - e.cfg.BufferCap; over > 0 {
		e.rows = append([][]float64(nil), e.rows[over:]...)
		e.ys = append([]float64(nil), e.ys[over:]...)
		e.ws = append([]float64(nil), e.ws[over:]...)
	}

	// M-step (Eq. 30): TRON warm-started from W_{t−1}.
	prob := optimize.NewLogistic(e.rows, e.ys, e.ws, e.cfg.Lambda)
	res := optimize.Minimize(prob, e.theta, e.cfg.Tron)
	copy(e.theta, res.W)
}

// BufferLen returns the retained observation count (for tests).
func (e *Engine) BufferLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.rows)
}

// RowsForClaim builds the clique feature rows and stance signs of claim c
// under model m, using the supplied per-source trust estimates (pass nil
// for neutral trust). It is the bridge between a fact database and the
// database-free streaming engine.
func RowsForClaim(m *crf.Model, c int, trust []float64) (rows [][]float64, signs []float64) {
	db := m.DB
	for _, ci := range db.ClaimCliques[c] {
		cl := db.Cliques[ci]
		tr := 0.0
		if trust != nil {
			tr = trust[cl.Source]
		}
		row := make([]float64, m.Dim())
		m.CliqueFeatures(int(ci), tr, row)
		rows = append(rows, row)
		signs = append(signs, cl.Stance.Sign())
	}
	return rows, signs
}

// Arrival describes one stream element for the convenience runner: a
// claim of a corpus arriving in posting order, optionally with a user
// verdict.
type Arrival struct {
	Claim int
	Label *bool
}

// Feed observes a sequence of arrivals against a (fully materialised)
// corpus model — the §8.8 evaluation pattern, where the stream is
// replayed from a dataset in posting-time order. Trust estimates come
// from the grounding g when non-nil.
func Feed(e *Engine, m *crf.Model, arrivals []Arrival, g factdb.Grounding) {
	var trust []float64
	if g != nil {
		trust = crf.SourceTrustFromGrounding(m.DB, g)
		for i := range trust {
			trust[i] = 2*trust[i] - 1 // map to the [−1,1] trust feature
		}
	}
	for _, a := range arrivals {
		rows, signs := RowsForClaim(m, a.Claim, trust)
		e.ObserveClaim(rows, signs, a.Label)
	}
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	ex := math.Exp(x)
	return ex / (1 + ex)
}
