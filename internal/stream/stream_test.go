package stream

import (
	"math"
	"testing"

	"factcheck/internal/crf"
	"factcheck/internal/em"
	"factcheck/internal/factdb"
	"factcheck/internal/stats"
	"factcheck/internal/synth"
)

func TestStepSizeRobbinsMonro(t *testing.T) {
	e := New(3, DefaultConfig())
	// γ_t decreasing, Σγ diverges (exponent < 1), Σγ² converges
	// (exponent > 0.5). Check numerically over a long horizon.
	var sum, sumSq, prev float64
	prev = math.Inf(1)
	for i := 1; i <= 200000; i++ {
		g := e.StepSize(i)
		if g > prev {
			t.Fatalf("step size not decreasing at t=%d", i)
		}
		prev = g
		sum += g
		sumSq += g * g
	}
	if sum < 50 {
		t.Fatalf("Σγ = %v; should grow without bound", sum)
	}
	if sumSq > 10 {
		t.Fatalf("Σγ² = %v; should converge", sumSq)
	}
}

func TestObserveClaimWithLabelsLearns(t *testing.T) {
	// Stream labelled claims whose single feature matches the label; the
	// engine must learn a positive weight and predict new claims.
	e := New(1, DefaultConfig())
	r := stats.NewRNG(3)
	for i := 0; i < 300; i++ {
		truth := r.Bernoulli(0.5)
		x := -1.0
		if truth {
			x = 1.0
		}
		x += 0.3 * r.NormFloat64()
		lbl := truth
		e.ObserveClaim([][]float64{{x}}, []float64{1}, &lbl)
	}
	if p := e.Predict([][]float64{{1.5}}, []float64{1}); p < 0.8 {
		t.Fatalf("Predict(+) = %v, want > 0.8", p)
	}
	if p := e.Predict([][]float64{{-1.5}}, []float64{1}); p > 0.2 {
		t.Fatalf("Predict(-) = %v, want < 0.2", p)
	}
}

func TestRefutingSignFlipsPrediction(t *testing.T) {
	e := New(1, DefaultConfig())
	r := stats.NewRNG(5)
	for i := 0; i < 300; i++ {
		truth := r.Bernoulli(0.5)
		x := -1.0
		if truth {
			x = 1.0
		}
		lbl := truth
		e.ObserveClaim([][]float64{{x}}, []float64{1}, &lbl)
	}
	// A refuting clique with strong "credible content" evidence argues
	// the claim is false.
	if p := e.Predict([][]float64{{1.5}}, []float64{-1}); p > 0.2 {
		t.Fatalf("refuted Predict = %v, want < 0.2", p)
	}
}

func TestBufferCapEnforced(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufferCap = 50
	e := New(1, cfg)
	for i := 0; i < 100; i++ {
		lbl := true
		e.ObserveClaim([][]float64{{1}, {0.5}}, []float64{1, 1}, &lbl)
	}
	if e.BufferLen() > 50 {
		t.Fatalf("buffer = %d, cap 50", e.BufferLen())
	}
	if e.T() != 100 {
		t.Fatalf("T = %d", e.T())
	}
}

func TestSetThetaExchange(t *testing.T) {
	e := New(4, DefaultConfig())
	th := []float64{0.1, -0.2, 0.3, 0.4}
	e.SetTheta(th)
	got := e.Theta()
	for i := range th {
		if got[i] != th[i] {
			t.Fatal("theta exchange failed")
		}
	}
	got[0] = 99
	if e.Theta()[0] == 99 {
		t.Fatal("Theta aliases internal state")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	e.SetTheta([]float64{1})
}

func TestObserveClaimEmptyRowsIgnored(t *testing.T) {
	e := New(2, DefaultConfig())
	e.ObserveClaim(nil, nil, nil)
	if e.T() != 0 || e.BufferLen() != 0 {
		t.Fatal("empty observation should be a no-op")
	}
}

func TestUnlabelledObservationUsesOwnPrediction(t *testing.T) {
	e := New(1, DefaultConfig())
	// Seed a confident model, then stream unlabelled claims; the
	// parameters should remain of the same sign (self-training keeps the
	// direction).
	lbl := true
	for i := 0; i < 50; i++ {
		e.ObserveClaim([][]float64{{1}}, []float64{1}, &lbl)
	}
	f := false
	for i := 0; i < 50; i++ {
		e.ObserveClaim([][]float64{{-1}}, []float64{1}, &f)
	}
	before := e.Theta()[0]
	if before <= 0 {
		t.Fatalf("seed weight = %v, want positive", before)
	}
	for i := 0; i < 30; i++ {
		e.ObserveClaim([][]float64{{1}}, []float64{1}, nil)
	}
	if after := e.Theta()[0]; after <= 0 {
		t.Fatalf("self-training flipped the weight: %v -> %v", before, after)
	}
}

func TestRowsForClaim(t *testing.T) {
	corpus := synth.Generate(synth.Wikipedia.Scaled(0.1), 7)
	m := crf.New(corpus.DB)
	c := 0
	rows, signs := RowsForClaim(m, c, nil)
	if len(rows) != len(corpus.DB.ClaimCliques[c]) || len(signs) != len(rows) {
		t.Fatalf("rows = %d, cliques = %d", len(rows), len(corpus.DB.ClaimCliques[c]))
	}
	for i, row := range rows {
		if len(row) != m.Dim() {
			t.Fatalf("row %d has %d features, want %d", i, len(row), m.Dim())
		}
		if signs[i] != 1 && signs[i] != -1 {
			t.Fatalf("sign = %v", signs[i])
		}
		// Neutral trust => last feature zero.
		if row[len(row)-1] != 0 {
			t.Fatal("trust feature should be neutral with nil trust")
		}
	}
}

func TestFeedMatchesManualObservation(t *testing.T) {
	corpus := synth.Generate(synth.Wikipedia.Scaled(0.1), 9)
	m := crf.New(corpus.DB)
	a := New(m.Dim(), DefaultConfig())
	b := New(m.Dim(), DefaultConfig())
	arrivals := []Arrival{{Claim: 0}, {Claim: 1}, {Claim: 2}}
	Feed(a, m, arrivals, nil)
	for _, ar := range arrivals {
		rows, signs := RowsForClaim(m, ar.Claim, nil)
		b.ObserveClaim(rows, signs, nil)
	}
	ta, tb := a.Theta(), b.Theta()
	for i := range ta {
		if math.Abs(ta[i]-tb[i]) > 1e-9 {
			t.Fatalf("Feed diverged from manual at %d: %v vs %v", i, ta[i], tb[i])
		}
	}
}

func TestStreamingParametersUsableByValidation(t *testing.T) {
	// End-to-end §7 exchange: a streaming engine learns from labelled
	// arrivals; its parameters are installed into an Alg. 1 engine and
	// must give an above-chance initial grounding.
	corpus := synth.Generate(synth.Wikipedia.Scaled(0.3), 11)
	m := crf.New(corpus.DB)
	se := New(m.Dim(), DefaultConfig())
	// First 60% of claims arrive with verdicts (historical data).
	n := corpus.DB.NumClaims
	for i := 0; i < n*3/5; i++ {
		c := corpus.ClaimOrder[i]
		lbl := corpus.Truth[c]
		rows, signs := RowsForClaim(m, c, nil)
		se.ObserveClaim(rows, signs, &lbl)
	}
	engine := em.NewEngine(corpus.DB, em.DefaultConfig(), 13)
	engine.SetTheta(se.Theta())
	state := factdb.NewState(n)
	// Evaluate the prediction quality of the streamed parameters on the
	// untouched claims directly via the engine's chain marginals.
	engine.Chain().InitFromState(state)
	ss := engine.Chain().Run(10, 40)
	correct, total := 0, 0
	for i := n * 3 / 5; i < n; i++ {
		c := corpus.ClaimOrder[i]
		total++
		if (ss.Marginal(c) >= 0.5) == corpus.Truth[c] {
			correct++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.6 {
		t.Fatalf("streamed parameters gave accuracy %v on unseen claims", acc)
	}
}
