package stream

import (
	"math"
	"sync"
	"testing"

	"factcheck/internal/crf"
	"factcheck/internal/synth"
)

// TestConcurrentArrivalsAndValidations interleaves three producers — raw
// arrivals, validated claims flowing back from Alg. 1, and a reader
// polling parameters/predictions — against one engine. Run under -race
// this is the §7 serving scenario: the stream never pauses while
// validators work. The final parameter vector depends on interleaving
// (as with any real stream order), so the test asserts integrity, not a
// specific value: every arrival counted, buffer bounded, parameters
// finite.
func TestConcurrentArrivalsAndValidations(t *testing.T) {
	corpus := synth.Generate(synth.Wikipedia.Scaled(0.15), 17)
	model := crf.New(corpus.DB)
	cfg := DefaultConfig()
	cfg.BufferCap = 128
	e := New(model.Dim(), cfg)

	order := corpus.ClaimOrder
	half := len(order) / 2

	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // unvalidated arrivals
		defer wg.Done()
		for _, c := range order[:half] {
			rows, signs := RowsForClaim(model, c, nil)
			e.ObserveClaim(rows, signs, nil)
		}
	}()
	go func() { // validated claims flowing back from the guidance loop
		defer wg.Done()
		for _, c := range order[half:] {
			rows, signs := RowsForClaim(model, c, nil)
			v := corpus.Truth[c]
			e.ObserveClaim(rows, signs, &v)
		}
	}()
	go func() { // a concurrent reader (the Alg. 1 side pulling parameters)
		defer wg.Done()
		probe, signs := RowsForClaim(model, order[0], nil)
		for i := 0; i < 50; i++ {
			theta := e.Theta()
			if len(theta) != model.Dim() {
				t.Errorf("Theta dimension %d, want %d", len(theta), model.Dim())
				return
			}
			if p := e.Predict(probe, signs); math.IsNaN(p) {
				t.Error("Predict returned NaN during concurrent updates")
				return
			}
			_ = e.T()
			_ = e.BufferLen()
		}
	}()
	wg.Wait()

	if got := e.T(); got != len(order) {
		t.Fatalf("observed %d claims, want %d", got, len(order))
	}
	if got := e.BufferLen(); got > cfg.BufferCap {
		t.Fatalf("buffer %d exceeds cap %d", got, cfg.BufferCap)
	}
	for _, w := range e.Theta() {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatalf("non-finite parameter after concurrent updates: %v", w)
		}
	}
}
