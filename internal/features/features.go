// Package features derives the source and document feature vectors of
// §8.1. For sources that are websites the paper uses centrality scores
// (PageRank, HITS); for authors it uses personal information and activity
// logs; document language quality is captured by stylistic and affective
// linguistic indicators [52]. This package computes real PageRank/HITS
// centrality over a (synthetic) hyperlink graph, activity statistics, and
// standardisation utilities that keep the M-step well conditioned.
package features

import (
	"math"

	"factcheck/internal/graph"
)

// Standardize shifts and scales each column of rows to zero mean and unit
// variance in place; constant columns become all-zero. It returns the
// per-column means and standard deviations so streaming arrivals can be
// normalised consistently.
func Standardize(rows [][]float64) (mean, std []float64) {
	if len(rows) == 0 {
		return nil, nil
	}
	d := len(rows[0])
	mean = make([]float64, d)
	std = make([]float64, d)
	for _, r := range rows {
		for j, v := range r {
			mean[j] += v
		}
	}
	n := float64(len(rows))
	for j := range mean {
		mean[j] /= n
	}
	for _, r := range rows {
		for j, v := range r {
			dv := v - mean[j]
			std[j] += dv * dv
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / n)
	}
	for _, r := range rows {
		for j := range r {
			if std[j] > 1e-12 {
				r[j] = (r[j] - mean[j]) / std[j]
			} else {
				r[j] = 0
			}
		}
	}
	return mean, std
}

// StandardizeWeighted is Standardize with per-row weights: the mean and
// variance are computed under the weights, then every row is normalised.
// The CRF consumes source features once per *document*, so source feature
// columns must be standardised under document counts — otherwise the few
// prolific sources of a Zipf corpus sit several standard deviations from
// the per-source mean and dominate every clique score.
func StandardizeWeighted(rows [][]float64, weights []float64) (mean, std []float64) {
	if len(rows) == 0 {
		return nil, nil
	}
	if len(weights) != len(rows) {
		panic("features: weight length mismatch")
	}
	d := len(rows[0])
	mean = make([]float64, d)
	std = make([]float64, d)
	var wsum float64
	for i, r := range rows {
		w := weights[i]
		if w < 0 {
			panic("features: negative weight")
		}
		wsum += w
		for j, v := range r {
			mean[j] += w * v
		}
	}
	if wsum == 0 {
		return Standardize(rows)
	}
	for j := range mean {
		mean[j] /= wsum
	}
	for i, r := range rows {
		w := weights[i]
		for j, v := range r {
			dv := v - mean[j]
			std[j] += w * dv * dv
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / wsum)
	}
	for _, r := range rows {
		for j := range r {
			if std[j] > 1e-12 {
				r[j] = (r[j] - mean[j]) / std[j]
			} else {
				r[j] = 0
			}
		}
	}
	return mean, std
}

// Apply normalises a single row with previously computed statistics
// (consistent featureisation of streaming arrivals, §7).
func Apply(row, mean, std []float64) {
	for j := range row {
		if j < len(std) && std[j] > 1e-12 {
			row[j] = (row[j] - mean[j]) / std[j]
		} else {
			row[j] = 0
		}
	}
}

// Centrality bundles the graph-derived source features.
type Centrality struct {
	PageRank  []float64
	Authority []float64
	Hub       []float64
}

// ComputeCentrality runs PageRank (damping 0.85) and HITS over the
// hyperlink graph. PageRank values are rescaled by the node count so they
// are O(1) regardless of graph size, then log-transformed to tame the
// heavy tail; authority/hub scores are used as returned (unit norm).
func ComputeCentrality(g *graph.Directed) Centrality {
	pr := g.PageRank(0.85, 60, 1e-10)
	hubs, auth := g.HITS(30)
	n := float64(g.N())
	out := Centrality{
		PageRank:  make([]float64, g.N()),
		Authority: auth,
		Hub:       hubs,
	}
	for i, p := range pr {
		out.PageRank[i] = math.Log1p(p * n)
	}
	return out
}

// Activity returns log1p of the per-source document counts — the
// "activity log" feature of author sources.
func Activity(docCounts []int) []float64 {
	out := make([]float64, len(docCounts))
	for i, c := range docCounts {
		out[i] = math.Log1p(float64(c))
	}
	return out
}
