package features

import (
	"math"
	"testing"

	"factcheck/internal/graph"
)

func TestStandardizeMoments(t *testing.T) {
	rows := [][]float64{{1, 10}, {2, 20}, {3, 30}, {4, 40}}
	mean, std := Standardize(rows)
	if math.Abs(mean[0]-2.5) > 1e-12 || math.Abs(mean[1]-25) > 1e-12 {
		t.Fatalf("means = %v", mean)
	}
	for j := 0; j < 2; j++ {
		var m, v float64
		for _, r := range rows {
			m += r[j]
		}
		m /= 4
		for _, r := range rows {
			v += (r[j] - m) * (r[j] - m)
		}
		v /= 4
		if math.Abs(m) > 1e-12 {
			t.Fatalf("column %d mean = %v after standardise", j, m)
		}
		if math.Abs(v-1) > 1e-9 {
			t.Fatalf("column %d variance = %v after standardise", j, v)
		}
	}
	if std[0] <= 0 || std[1] <= 0 {
		t.Fatalf("stds = %v", std)
	}
}

func TestStandardizeConstantColumn(t *testing.T) {
	rows := [][]float64{{5, 1}, {5, 2}, {5, 3}}
	Standardize(rows)
	for i, r := range rows {
		if r[0] != 0 {
			t.Fatalf("constant column row %d = %v, want 0", i, r[0])
		}
	}
}

func TestStandardizeEmpty(t *testing.T) {
	mean, std := Standardize(nil)
	if mean != nil || std != nil {
		t.Fatal("empty input should return nils")
	}
}

func TestApplyMatchesStandardize(t *testing.T) {
	rows := [][]float64{{1, 4}, {3, 8}, {5, 12}}
	raw := make([][]float64, len(rows))
	for i, r := range rows {
		raw[i] = append([]float64(nil), r...)
	}
	mean, std := Standardize(rows)
	for i := range raw {
		Apply(raw[i], mean, std)
		for j := range raw[i] {
			if math.Abs(raw[i][j]-rows[i][j]) > 1e-12 {
				t.Fatalf("Apply(%d,%d) = %v, want %v", i, j, raw[i][j], rows[i][j])
			}
		}
	}
}

func TestApplyZeroStd(t *testing.T) {
	row := []float64{7}
	Apply(row, []float64{7}, []float64{0})
	if row[0] != 0 {
		t.Fatalf("Apply with zero std = %v, want 0", row[0])
	}
}

func TestComputeCentralityShapes(t *testing.T) {
	g := graph.NewDirected(6)
	for i := 1; i < 6; i++ {
		g.AddEdge(i, 0) // hub at node 0
	}
	c := ComputeCentrality(g)
	if len(c.PageRank) != 6 || len(c.Authority) != 6 || len(c.Hub) != 6 {
		t.Fatal("centrality vectors wrong length")
	}
	for i := 1; i < 6; i++ {
		if c.PageRank[0] <= c.PageRank[i] {
			t.Fatalf("node 0 should dominate PageRank: %v", c.PageRank)
		}
		if c.Authority[0] <= c.Authority[i] {
			t.Fatalf("node 0 should dominate authority: %v", c.Authority)
		}
	}
	for _, v := range c.PageRank {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("PageRank feature out of range: %v", v)
		}
	}
}

func TestActivity(t *testing.T) {
	a := Activity([]int{0, 1, 99})
	if a[0] != 0 {
		t.Fatalf("Activity(0) = %v", a[0])
	}
	if a[1] <= 0 || a[2] <= a[1] {
		t.Fatalf("Activity not monotone: %v", a)
	}
	if math.Abs(a[2]-math.Log1p(99)) > 1e-12 {
		t.Fatalf("Activity(99) = %v", a[2])
	}
}
