package features

import (
	"math"
	"testing"
)

func TestStandardizeWeightedEmpty(t *testing.T) {
	mean, std := StandardizeWeighted(nil, nil)
	if mean != nil || std != nil {
		t.Fatalf("empty input: got %v %v, want nil nil", mean, std)
	}
}

func TestStandardizeWeightedPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	expectPanic("length mismatch", func() {
		StandardizeWeighted([][]float64{{1}, {2}}, []float64{1})
	})
	expectPanic("negative weight", func() {
		StandardizeWeighted([][]float64{{1}, {2}}, []float64{1, -1})
	})
}

func TestStandardizeWeightedZeroWeightsFallsBack(t *testing.T) {
	a := [][]float64{{1, 5}, {3, 5}}
	b := [][]float64{{1, 5}, {3, 5}}
	meanW, stdW := StandardizeWeighted(a, []float64{0, 0})
	mean, std := Standardize(b)
	for j := range mean {
		if meanW[j] != mean[j] || stdW[j] != std[j] {
			t.Fatalf("zero weights should reduce to Standardize: %v %v vs %v %v", meanW, stdW, mean, std)
		}
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("row %d differs from unweighted standardisation", i)
			}
		}
	}
}

func TestStandardizeWeightedMoments(t *testing.T) {
	// Column 0 carries signal; column 1 is constant and must zero out.
	rows := [][]float64{{0, 7}, {2, 7}}
	mean, std := StandardizeWeighted(rows, []float64{1, 3})
	wantMean := 1.5            // (1*0 + 3*2) / 4
	wantStd := math.Sqrt(0.75) // (1*2.25 + 3*0.25) / 4
	if math.Abs(mean[0]-wantMean) > 1e-12 || math.Abs(std[0]-wantStd) > 1e-12 {
		t.Fatalf("moments: mean %v std %v, want %v %v", mean[0], std[0], wantMean, wantStd)
	}
	if got, want := rows[0][0], (0-wantMean)/wantStd; math.Abs(got-want) > 1e-12 {
		t.Errorf("row 0 standardized to %v, want %v", got, want)
	}
	if got, want := rows[1][0], (2-wantMean)/wantStd; math.Abs(got-want) > 1e-12 {
		t.Errorf("row 1 standardized to %v, want %v", got, want)
	}
	if rows[0][1] != 0 || rows[1][1] != 0 {
		t.Errorf("constant column should standardize to zero: %v %v", rows[0][1], rows[1][1])
	}
	// The weighted mean of the standardized column is zero and its
	// weighted variance one.
	var m, v float64
	w := []float64{1, 3}
	for i := range rows {
		m += w[i] * rows[i][0]
	}
	m /= 4
	for i := range rows {
		v += w[i] * (rows[i][0] - m) * (rows[i][0] - m)
	}
	v /= 4
	if math.Abs(m) > 1e-12 || math.Abs(v-1) > 1e-12 {
		t.Errorf("standardized weighted moments: mean %v var %v, want 0 1", m, v)
	}
}
