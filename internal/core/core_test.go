package core

import (
	"testing"

	"factcheck/internal/factdb"
	"factcheck/internal/guidance"
	"factcheck/internal/sim"
	"factcheck/internal/synth"
)

func smallCorpus(t *testing.T, seed int64) *synth.Corpus {
	t.Helper()
	return synth.Generate(synth.Wikipedia.Scaled(0.25), seed)
}

func TestSessionInitialises(t *testing.T) {
	c := smallCorpus(t, 1)
	s := NewSession(c.DB, Options{Seed: 2})
	if s.State.NumLabeled() != 0 {
		t.Fatal("fresh session has labels")
	}
	if len(s.Grounding()) != c.DB.NumClaims {
		t.Fatal("grounding size wrong")
	}
	if s.Iterations() != 0 {
		t.Fatal("iteration counter should start at 0")
	}
}

func TestStepValidatesOneClaim(t *testing.T) {
	c := smallCorpus(t, 3)
	s := NewSession(c.DB, Options{Seed: 4, CandidatePool: 8, Workers: 1})
	user := &sim.Oracle{Truth: c.Truth}
	done := s.Step(user)
	if done {
		t.Fatal("one step should not exhaust the corpus")
	}
	if s.State.NumLabeled() != 1 {
		t.Fatalf("labels = %d, want 1", s.State.NumLabeled())
	}
	if len(s.History()) != 1 {
		t.Fatalf("history = %v", s.History())
	}
	v := s.History()[0]
	if v.Verdict != c.Truth[v.Claim] {
		t.Fatal("oracle verdict mismatch")
	}
	// The label must be reflected in the grounding.
	if s.Grounding()[v.Claim] != v.Verdict {
		t.Fatal("grounding ignores the label")
	}
}

func TestRunReachesGoal(t *testing.T) {
	c := smallCorpus(t, 5)
	opts := Options{
		Seed:          6,
		CandidatePool: 8,
		Workers:       1,
		Goal: func(s *Session) bool {
			return s.Precision(c.Truth) >= 0.9
		},
	}
	s := NewSession(c.DB, opts)
	n := s.Run(&sim.Oracle{Truth: c.Truth})
	if s.Precision(c.Truth) < 0.9 {
		t.Fatalf("run stopped below goal: precision %v after %d validations",
			s.Precision(c.Truth), n)
	}
	if n >= c.DB.NumClaims {
		t.Fatalf("goal needed the entire corpus (%d of %d)", n, c.DB.NumClaims)
	}
}

func TestRunRespectsBudget(t *testing.T) {
	c := smallCorpus(t, 7)
	s := NewSession(c.DB, Options{Seed: 8, Budget: 5, CandidatePool: 8, Workers: 1})
	s.Run(&sim.Oracle{Truth: c.Truth})
	if s.State.NumLabeled() != 5 {
		t.Fatalf("labels = %d, want budget 5", s.State.NumLabeled())
	}
}

func TestRunExhaustsCorpus(t *testing.T) {
	c := synth.Generate(synth.Wikipedia.Scaled(0.08), 9)
	s := NewSession(c.DB, Options{Seed: 10, Strategy: guidance.Random{}})
	s.Run(&sim.Oracle{Truth: c.Truth})
	if s.State.NumLabeled() != c.DB.NumClaims {
		t.Fatalf("labels = %d of %d", s.State.NumLabeled(), c.DB.NumClaims)
	}
	// Full validation with an oracle must give perfect precision.
	if p := s.Precision(c.Truth); p != 1 {
		t.Fatalf("full-oracle precision = %v", p)
	}
}

func TestPrecisionImprovesOverRandomBaselineEventually(t *testing.T) {
	c := smallCorpus(t, 11)
	budget := c.DB.NumClaims / 2
	hybrid := NewSession(c.DB, Options{Seed: 12, Budget: budget, CandidatePool: 10, Workers: 1})
	hybrid.Run(&sim.Oracle{Truth: c.Truth})
	if p := hybrid.Precision(c.Truth); p < 0.6 {
		t.Fatalf("hybrid precision after 50%% effort = %v", p)
	}
}

func TestBatchStep(t *testing.T) {
	c := smallCorpus(t, 13)
	s := NewSession(c.DB, Options{Seed: 14, BatchSize: 5, CandidatePool: 10, Workers: 1})
	s.Step(&sim.Oracle{Truth: c.Truth})
	if s.State.NumLabeled() != 5 {
		t.Fatalf("batch step labelled %d claims, want 5", s.State.NumLabeled())
	}
	if s.Iterations() != 1 {
		t.Fatalf("iterations = %d, want 1 (one inference per batch)", s.Iterations())
	}
}

func TestSkippingUserFallsBackToSecondBest(t *testing.T) {
	c := smallCorpus(t, 15)
	oracle := &sim.Oracle{Truth: c.Truth}
	skipper := sim.NewSkipper(oracle, 1.0, 16) // always skips the first ask
	s := NewSession(c.DB, Options{Seed: 17, CandidatePool: 8, Workers: 1})
	done := s.Step(skipper)
	if done {
		t.Fatal("step with skipper should still label a claim")
	}
	if s.State.NumLabeled() != 1 {
		t.Fatalf("labels = %d, want 1 (second-best fallback)", s.State.NumLabeled())
	}
	if skipper.Skips() == 0 {
		t.Fatal("skipper never skipped")
	}
}

func TestConfirmationCheckDetectsInjectedMistake(t *testing.T) {
	c := smallCorpus(t, 19)
	s := NewSession(c.DB, Options{Seed: 20, CandidatePool: 8, Workers: 1})
	oracle := &sim.Oracle{Truth: c.Truth}
	// Label 40% of claims truthfully so the model is well anchored.
	for i := 0; i < c.DB.NumClaims*2/5; i++ {
		s.Step(oracle)
	}
	// Inject one deliberate mistake on a claim with corroboration.
	var victim int
	found := false
	for _, cand := range s.State.Unlabeled() {
		if len(c.DB.ClaimSources[cand]) >= 2 {
			victim = cand
			found = true
			break
		}
	}
	if !found {
		victim = s.State.Unlabeled()[0]
	}
	s.State.SetLabel(victim, !c.Truth[victim])
	s.Engine.InferIncremental(s.State)
	res := s.ConfirmationCheck(oracle)
	flagged := false
	for _, f := range res.Flagged {
		if f == victim {
			flagged = true
		}
	}
	if !flagged {
		t.Skipf("mistake on claim %d not flagged this run (stochastic check)", victim)
	}
	// The oracle repairs it.
	if v, _ := s.State.Label(victim); v != c.Truth[victim] {
		t.Fatal("flagged mistake was not repaired by the oracle")
	}
	if res.Repaired < 1 {
		t.Fatal("repair count not recorded")
	}
}

func TestErroneousUserStillConverges(t *testing.T) {
	c := smallCorpus(t, 21)
	user := sim.NewErroneous(c.Truth, 0.15, 22)
	s := NewSession(c.DB, Options{Seed: 23, CandidatePool: 8, Workers: 1, ConfirmEvery: 0.05})
	s.Run(user)
	// Even with 15% user error and repairs, precision should be solid.
	if p := s.Precision(c.Truth); p < 0.7 {
		t.Fatalf("precision with erroneous user = %v", p)
	}
}

func TestObserverSeesEveryIteration(t *testing.T) {
	c := smallCorpus(t, 25)
	count := 0
	s := NewSession(c.DB, Options{Seed: 26, Budget: 6, CandidatePool: 6, Workers: 1})
	s.Observer = func(sess *Session) {
		count++
		if sess.Effort() == 0 {
			t.Error("observer ran before any labels")
		}
	}
	s.Run(&sim.Oracle{Truth: c.Truth})
	if count != s.Iterations() {
		t.Fatalf("observer ran %d times for %d iterations", count, s.Iterations())
	}
}

func TestZScoreEvolves(t *testing.T) {
	c := smallCorpus(t, 27)
	s := NewSession(c.DB, Options{Seed: 28, Budget: 8, CandidatePool: 6, Workers: 1})
	s.Run(&sim.Oracle{Truth: c.Truth})
	z := s.ZScore()
	if z < 0 || z > 1 {
		t.Fatalf("z = %v out of [0,1]", z)
	}
}

func TestGoalStopsImmediately(t *testing.T) {
	c := smallCorpus(t, 29)
	s := NewSession(c.DB, Options{Seed: 30, Goal: func(*Session) bool { return true }})
	n := s.Run(&sim.Oracle{Truth: c.Truth})
	if n != 0 {
		t.Fatalf("run with trivially-true goal performed %d validations", n)
	}
}

func TestStrategiesPluggable(t *testing.T) {
	c := synth.Generate(synth.Wikipedia.Scaled(0.1), 31)
	for _, strat := range []guidance.Strategy{
		guidance.Random{}, guidance.Uncertainty{}, guidance.InfoGain{},
		guidance.SourceGain{}, &guidance.Hybrid{},
	} {
		s := NewSession(c.DB, Options{Seed: 32, Budget: 3, Strategy: strat, CandidatePool: 5, Workers: 1})
		s.Run(&sim.Oracle{Truth: c.Truth})
		if s.State.NumLabeled() != 3 {
			t.Fatalf("%s labelled %d, want 3", strat.Name(), s.State.NumLabeled())
		}
	}
}

func TestHistoryRecordsRepairs(t *testing.T) {
	c := smallCorpus(t, 33)
	s := NewSession(c.DB, Options{Seed: 34, CandidatePool: 6, Workers: 1})
	oracle := &sim.Oracle{Truth: c.Truth}
	for i := 0; i < 10; i++ {
		s.Step(oracle)
	}
	// Corrupt a label, then check; the repair must appear in history.
	victim := s.History()[0].Claim
	s.State.SetLabel(victim, !c.Truth[victim])
	s.Engine.InferIncremental(s.State)
	res := s.ConfirmationCheck(oracle)
	if len(res.Flagged) > 0 {
		foundRepair := false
		for _, h := range s.History() {
			if h.Repaired {
				foundRepair = true
			}
		}
		if !foundRepair {
			t.Fatal("no repaired entry in history despite flags")
		}
	}
}

func TestSelectionTraceIdenticalAcrossWorkerCounts(t *testing.T) {
	// The whole Alg. 1 loop — sharded E-steps, pooled what-if scoring,
	// hybrid roulette — must produce the same claim selections and
	// verdicts for a fixed seed no matter how many workers run it.
	c := smallCorpus(t, 40)
	workerCounts := []int{1, 2, 4}
	for _, strat := range []guidance.Strategy{guidance.InfoGain{}, guidance.SourceGain{}, &guidance.Hybrid{}} {
		traces := make([][]Validation, len(workerCounts))
		for i, workers := range workerCounts {
			s := NewSession(c.DB, Options{
				Seed: 41, Budget: 8, CandidatePool: 8,
				Strategy: strat, Workers: workers,
			})
			s.Run(&sim.Oracle{Truth: c.Truth})
			traces[i] = s.History()
		}
		for i := 1; i < len(traces); i++ {
			if len(traces[i]) != len(traces[0]) {
				t.Fatalf("%s: workers=%d trace length %d, want %d",
					strat.Name(), workerCounts[i], len(traces[i]), len(traces[0]))
			}
			for j := range traces[i] {
				if traces[i][j] != traces[0][j] {
					t.Fatalf("%s: workers=%d diverged at step %d: %+v vs %+v",
						strat.Name(), workerCounts[i], j, traces[i][j], traces[0][j])
				}
			}
		}
	}
}

func TestWorkersKnobReachesEMConfig(t *testing.T) {
	opts := Options{Workers: 3}.withDefaults()
	if opts.EM.Workers != 3 {
		t.Fatalf("EM.Workers = %d, want propagated 3", opts.EM.Workers)
	}
	explicit := Options{Workers: 3}
	explicit.EM.Workers = 5
	explicit.EM.BurnIn = 1 // non-zero EM config must survive withDefaults
	if got := explicit.withDefaults().EM.Workers; got != 5 {
		t.Fatalf("explicit EM.Workers overridden: got %d, want 5", got)
	}
	// Setting only the parallelism knob must not suppress the default
	// budgets (a zero-sample engine would silently emit 0.5 marginals).
	onlyWorkers := Options{}
	onlyWorkers.EM.Workers = 4
	got := onlyWorkers.withDefaults().EM
	if got.Samples <= 0 || got.BurnIn <= 0 {
		t.Fatalf("EM budgets suppressed by Workers-only config: %+v", got)
	}
	if got.Workers != 4 {
		t.Fatalf("EM.Workers = %d, want 4 preserved", got.Workers)
	}
}

func TestSessionStringer(t *testing.T) {
	c := synth.Generate(synth.Wikipedia.Scaled(0.08), 35)
	s := NewSession(c.DB, Options{Seed: 36})
	if s.String() == "" {
		t.Fatal("empty session string")
	}
	var _ factdb.Grounding = s.Grounding()
}
