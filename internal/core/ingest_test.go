package core

import (
	"errors"
	"reflect"
	"testing"

	"factcheck/internal/factdb"
	"factcheck/internal/sim"
	"factcheck/internal/stats"
	"factcheck/internal/synth"
)

// liveOracle answers from a truth slice read at call time, so verdicts
// stay valid for claims ingested after the user was constructed (a
// sim.Oracle captures the slice header and would index out of range).
type liveOracle struct{ truth *[]bool }

func (o *liveOracle) Validate(c int) (bool, bool) { return (*o.truth)[c], true }

// deltaShape returns the profile GenerateDelta must see: the base
// profile's statistical knobs at the database's actual totals, so the
// delta's existing-row references validate against the real shape.
func deltaShape(base synth.Profile, db *factdb.DB) synth.Profile {
	base.Claims = db.NumClaims
	base.Sources = len(db.Sources)
	base.Documents = len(db.Documents)
	return base
}

// TestIngestTraceBitIdentical is the determinism property of streaming
// ingestion: two sessions fed the identical interleaving of answers and
// corpus deltas stay bit-identical — transcript, history, marginals,
// grounding, hybrid score — and a session restored from a snapshot
// whose transcript contains ingest records replays to the same state
// and continues in lockstep. The cadence must exercise both refresh
// modes: the warm-up full sweep and the frozen-θ dirty-component path.
func TestIngestTraceBitIdentical(t *testing.T) {
	base := synth.Wikipedia.Scaled(0.4)
	mkCorpus := func() *synth.Corpus { return synth.GenerateCommunities(base, 3, 91) }
	opts := fastOpts(92)
	opts.CandidatePool = 8

	ca, cb := mkCorpus(), mkCorpus()
	a, err := OpenSession(ca.DB, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenSession(cb.DB, opts)
	if err != nil {
		t.Fatal(err)
	}

	truth := append([]bool(nil), ca.Truth...)
	ua, ub := &liveOracle{&truth}, &liveOracle{&truth}
	prof := deltaShape(base, ca.DB)

	var sawFull, sawIncremental bool
	for round, n := range []int{2, 5, 5, 5} {
		for i := 0; i < n; i++ {
			a.Step(ua)
			b.Step(ub)
		}
		d := synth.GenerateDelta(prof, 0.06, stats.StreamSeed(505, uint64(round)))
		wantBase := a.DB.NumClaims
		ra, err := a.Ingest(d)
		if err != nil {
			t.Fatalf("round %d: ingest a: %v", round, err)
		}
		rb, err := b.Ingest(d)
		if err != nil {
			t.Fatalf("round %d: ingest b: %v", round, err)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("round %d: ingest results diverged:\n a=%+v\n b=%+v", round, ra, rb)
		}
		if ra.ClaimBase != wantBase || ra.NewClaims != d.NewClaims {
			t.Fatalf("round %d: result bases wrong: %+v (want claimBase %d)", round, ra, wantBase)
		}
		if ra.FullSweep {
			sawFull = true
		} else {
			sawIncremental = true
		}
		truth = append(truth, d.Truth...)
		prof.Claims += d.NewClaims
		prof.Sources += len(d.Sources)
		prof.Documents += len(d.Documents)
	}
	for i := 0; i < 3; i++ {
		a.Step(ua)
		b.Step(ub)
	}
	assertSessionsEqual(t, a, b)
	if a.Ingests() != 4 || b.Ingests() != 4 {
		t.Fatalf("ingest counts = %d, %d, want 4", a.Ingests(), b.Ingests())
	}
	if !sawFull || !sawIncremental {
		t.Errorf("cadence exercised only one refresh mode (full=%v incremental=%v)", sawFull, sawIncremental)
	}

	// Restore against a pristine base corpus: the transcript's ingest
	// records must regrow the database and replay every answer to a
	// bit-identical session that then continues in lockstep.
	restored, err := RestoreSession(mkCorpus().DB, opts, a.Snapshot())
	if err != nil {
		t.Fatalf("restore with ingest records: %v", err)
	}
	assertSessionsEqual(t, a, restored)
	for i := 0; i < 2; i++ {
		a.Step(ua)
		restored.Step(ua)
	}
	assertSessionsEqual(t, a, restored)
}

// TestIngestUnfinishesDoneSession pins the documented liveness rule:
// ingesting into a finished session is allowed, the new claims arrive
// unlabelled, and the session resumes offering candidates.
func TestIngestUnfinishesDoneSession(t *testing.T) {
	c := smallCorpus(t, 41)
	s := NewSession(c.DB, fastOpts(42))
	truth := append([]bool(nil), c.Truth...)
	user := &liveOracle{&truth}
	s.Run(user)
	if s.State.NumLabeled() < s.DB.NumClaims {
		t.Fatalf("run left %d of %d claims unlabelled", s.State.NumLabeled(), s.DB.NumClaims)
	}
	if !s.Step(user) {
		t.Fatal("done session must report done from Step")
	}

	prof := deltaShape(synth.Wikipedia.Scaled(0.25), s.DB)
	d := synth.GenerateDelta(prof, 0.1, 7)
	res, err := s.Ingest(d)
	if err != nil {
		t.Fatal(err)
	}
	truth = append(truth, d.Truth...)
	if s.State.NumLabeled() >= s.DB.NumClaims {
		t.Fatal("ingest did not un-finish the session")
	}
	pending, err := s.Pending(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) == 0 {
		t.Fatal("un-finished session offers no candidates")
	}
	for _, c := range pending {
		if c < res.ClaimBase {
			t.Fatalf("candidate %d predates the delta (claim base %d)", c, res.ClaimBase)
		}
	}
	before := len(s.History())
	s.Step(user)
	if len(s.History()) != before+1 || s.History()[before].Claim < res.ClaimBase {
		t.Fatalf("step after ingest did not label a new claim: %+v", s.History()[before:])
	}
}

// TestIngestInvalidDeltaLeavesSessionUnchanged pins validate-before-
// mutate: a delta that fails validation must leave the database, the
// transcript and the ingest counter exactly as they were.
func TestIngestInvalidDeltaLeavesSessionUnchanged(t *testing.T) {
	c := smallCorpus(t, 43)
	s := NewSession(c.DB, fastOpts(44))
	oracle := &sim.Oracle{Truth: c.Truth}
	for i := 0; i < 3; i++ {
		s.Step(oracle)
	}
	before := s.Snapshot()
	nc, ns, nd := s.DB.NumClaims, len(s.DB.Sources), len(s.DB.Documents)
	ncomp := s.DB.NumComponents()

	bad := factdb.Delta{NewClaims: 1, Documents: []factdb.DeltaDocument{{
		Source:   0,
		Features: make([]float64, s.DB.DocFeatureDim()),
		Refs:     []factdb.DeltaRef{{Claim: -1}, {Claim: nc + 999}},
	}}}
	if _, err := s.Ingest(bad); err == nil {
		t.Fatal("ingest accepted a delta referencing an unknown claim")
	}
	if s.DB.NumClaims != nc || len(s.DB.Sources) != ns || len(s.DB.Documents) != nd {
		t.Fatalf("failed ingest mutated the database: %d/%d/%d", s.DB.NumClaims, len(s.DB.Sources), len(s.DB.Documents))
	}
	if s.DB.NumComponents() != ncomp {
		t.Fatalf("failed ingest changed components: %d -> %d", ncomp, s.DB.NumComponents())
	}
	if !reflect.DeepEqual(before, s.Snapshot()) {
		t.Fatal("failed ingest changed the transcript")
	}
	if s.Ingests() != 0 {
		t.Fatalf("failed ingest counted: %d", s.Ingests())
	}
}

// TestIngestClosedSession: a closed session rejects deltas.
func TestIngestClosedSession(t *testing.T) {
	c := smallCorpus(t, 45)
	s := NewSession(c.DB, fastOpts(46))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	d := synth.GenerateDelta(deltaShape(synth.Wikipedia.Scaled(0.25), c.DB), 0.05, 9)
	if _, err := s.Ingest(d); !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest into closed session: %v, want ErrClosed", err)
	}
}

// TestValidateDeltaShape covers enqueue-time validation against virtual
// totals: a delta referencing a claim that only exists once the queued
// deltas ahead of it have applied must pass with the queue and fail
// without it.
func TestValidateDeltaShape(t *testing.T) {
	c := smallCorpus(t, 47)
	db := c.DB
	docFeat := func() []float64 { return make([]float64, db.DocFeatureDim()) }

	queued := factdb.Delta{NewClaims: 1, Documents: []factdb.DeltaDocument{{
		Source: 0, Features: docFeat(), Refs: []factdb.DeltaRef{{Claim: -1}},
	}}}
	next := factdb.Delta{Documents: []factdb.DeltaDocument{{
		Source: 0, Features: docFeat(), Refs: []factdb.DeltaRef{{Claim: db.NumClaims}},
	}}}
	if err := ValidateDeltaShape(db, nil, next); err == nil {
		t.Fatal("next validated against the bare database")
	}
	if err := ValidateDeltaShape(db, []factdb.Delta{queued}, next); err != nil {
		t.Fatalf("next must validate against the virtual shape: %v", err)
	}
}
