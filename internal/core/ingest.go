package core

import (
	"fmt"

	"factcheck/internal/factdb"
	"factcheck/internal/stats"
)

// ingestStream separates the per-ingest detached RNG universe from
// every other StreamSeed consumer of the session seed.
const ingestStream = 0x696e67657374 // "ingest"

// IngestResult summarises what one corpus delta changed.
type IngestResult struct {
	// ClaimBase/SourceBase/DocBase are the first global ids assigned to
	// the delta's rows.
	ClaimBase  int `json:"claimBase"`
	SourceBase int `json:"sourceBase"`
	DocBase    int `json:"docBase"`
	// NewClaims/NewSources/NewDocuments are the delta's row counts.
	NewClaims    int `json:"newClaims"`
	NewSources   int `json:"newSources"`
	NewDocuments int `json:"newDocuments"`
	// DirtyComponents counts the connected components whose structure
	// or evidence the delta changed; MergedComponents counts components
	// absorbed into a merge winner.
	DirtyComponents  int `json:"dirtyComponents"`
	MergedComponents int `json:"mergedComponents"`
	// FullSweep reports that the delta was absorbed by a full EM sweep
	// rather than the frozen-θ dirty-component refresh (warm-up, the
	// FullSweepEvery cadence, or a cache-less configuration).
	FullSweep bool `json:"fullSweep"`
}

// Ingest applies a corpus delta to the live session: the database grows
// in place with incremental connected-component maintenance
// (factdb.DB.Extend), the probabilistic state and the warm Gibbs chain
// grow to cover the new claims, and inference is refreshed
// incrementally — under frozen θ, only the components the delta dirtied
// are resampled, exactly like the per-answer dirty-component path —
// with a full EM sweep on the same FullSweepEvery cadence answers use.
// The arrival is recorded in the transcript (Elicitation.Ingest), so a
// snapshot taken afterwards replays the delta at the same position and
// the grown session stays a pure function of (database, options, seed,
// transcript).
//
// New-claim chain values draw from a detached stream seeded by the
// session seed and the ingest ordinal — never from the session RNG — so
// ingestion does not perturb the RNG draws of surrounding elicitations.
//
// The delta is validated before any mutation: on error the session is
// unchanged. Ingesting into a finished session is allowed and
// un-finishes it — the new claims are unlabelled.
func (s *Session) Ingest(delta factdb.Delta) (IngestResult, error) {
	if s.closed {
		return IngestResult{}, ErrClosed
	}
	ext, err := s.DB.Extend(delta)
	if err != nil {
		return IngestResult{}, err
	}
	res := IngestResult{
		ClaimBase:        ext.ClaimBase,
		SourceBase:       ext.SourceBase,
		DocBase:          ext.DocBase,
		NewClaims:        delta.NewClaims,
		NewSources:       len(delta.Sources),
		NewDocuments:     len(delta.Documents),
		DirtyComponents:  len(ext.Dirty),
		MergedComponents: len(ext.Removed),
	}
	s.State.Grow(delta.NewClaims)
	rng := stats.NewRNG(stats.StreamSeed(
		uint64(stats.StreamSeed(uint64(s.opts.Seed), ingestStream)), uint64(s.ingests)))
	s.ingests++
	s.Engine.Grow(ext, rng)
	// Worker chains were rebuilt from scratch inside Engine.Grow; the
	// scoring pool's cached per-worker buffers are dropped alongside so
	// nothing sized to the old corpus survives (trace-neutral: the pool
	// rebuilds on the next scoring round with identical streams).
	s.pool.Trim(0)

	// Record the arrival before inference: the transcript position is
	// the delta's replay position, and inference below is a pure
	// function of the post-extend state.
	stored := delta
	s.elog = append(s.elog, Elicitation{Ingest: &stored})
	if s.pendingOK {
		// A ranking was computed this iteration but no Step consumed it;
		// the delta makes it stale. Rewind the session RNG to the state
		// that round started from, so re-ranking over the grown corpus
		// draws the very values the aborted round drew — a transcript
		// replay ranks exactly once, after applying this record, and the
		// live session must consume the stream identically.
		*s.rng = s.rngAtRank
	}
	s.invalidatePending()

	// Refresh inference. Epochs move first (InvalidateMerged jumps the
	// dirtied components past every absorbed component's epoch), then
	// the same cadence logic as inferAfterLabels decides between the
	// frozen-θ dirty-component refresh and a full EM sweep. Removed
	// components are bumped too: nothing maps to them any more, but a
	// dead slot must never offer a matching epoch again.
	if s.gains != nil {
		s.gains.InvalidateMerged(append(append([]int(nil), ext.Dirty...), ext.Removed...))
	}
	incremental := false
	if s.gains != nil {
		s.sinceSweep++
		every := s.opts.FullSweepEvery
		if s.sinceSweep < every && s.State.NumLabeled() > every {
			incremental = true
			for _, comp := range ext.Dirty {
				if !s.Engine.InferComponent(s.State, comp, s.gains.SweepSeed(comp)) {
					incremental = false
					break
				}
			}
		}
	}
	if !incremental {
		s.fullSweep()
		res.FullSweep = true
	}

	// Re-decide the grounding over the grown corpus. The previous
	// grounding has the old length, so the amount-of-changes indicator
	// resets across an ingest (prev := current) rather than comparing
	// groundings of different corpora.
	s.grounding = s.Engine.Grounding(s.State)
	s.prevGnd = s.grounding.Clone()
	return res, nil
}

// Ingests returns the number of corpus deltas applied to the session.
func (s *Session) Ingests() int { return s.ingests }

// ValidateDeltaShape pre-validates a delta against a virtual corpus
// shape — the database plus deltas already queued ahead of it — without
// touching the database. A serving layer validates at enqueue time with
// this, which makes apply-time failure impossible by induction: each
// queued delta was checked against exactly the shape it will apply at.
func ValidateDeltaShape(db *factdb.DB, queued []factdb.Delta, next factdb.Delta) error {
	nClaims, nSources := db.NumClaims, len(db.Sources)
	for _, d := range queued {
		c, s, _ := d.Counts()
		nClaims += c
		nSources += s
	}
	if err := next.Validate(nClaims, nSources, db.SourceFeatureDim(), db.DocFeatureDim()); err != nil {
		return fmt.Errorf("core: invalid delta: %w", err)
	}
	return nil
}
