package core

import (
	"errors"
	"fmt"

	"factcheck/internal/factdb"
	"factcheck/internal/guidance"
)

// ErrClosed is returned by operations on a session after Close.
var ErrClosed = errors.New("core: session is closed")

// Elicitation is one user interaction: the claim the process asked about
// and the user's response. OK = false records a skip (§8.5). Repair
// prompts from confirmation checks (§5.2) appear in the log like any
// other elicitation, so the log is a complete transcript of the
// user-facing side of Alg. 1. Degraded marks elicitations whose
// iteration was ranked in degraded mode (the overload fallback to the
// uncertainty ranking, see SetDegraded): the flag is what makes a
// degraded transcript replayable — and the degraded answers auditable —
// since a degraded iteration draws no scoring values from the session
// RNG and replay must skip the same draws.
type Elicitation struct {
	Claim    int  `json:"claim"`
	Verdict  bool `json:"verdict"`
	OK       bool `json:"ok"`
	Degraded bool `json:"degraded,omitempty"`
	// Ingest, when non-nil, marks this record as a corpus-delta arrival
	// instead of a user interaction: the delta was applied to the live
	// database at exactly this transcript position (Session.Ingest).
	// Claim/Verdict/OK are meaningless on an ingest record. Recording
	// arrivals in the transcript is what keeps grown sessions a pure
	// function of (database, options, transcript): RestoreSession
	// re-applies each delta at its recorded position, so snapshot
	// restore and crash recovery replay arrivals bit-identically.
	Ingest *factdb.Delta `json:"ingest,omitempty"`
}

// SnapshotVersion is the encoding version written into snapshots taken
// by this build. RestoreSession accepts any version up to and including
// it; a snapshot from a newer build (a higher version) is rejected with
// a descriptive error instead of silently replaying under changed
// semantics. Version 0 is the pre-versioned encoding and is read as
// version 1. Version 2 marks the incremental-inference default
// (Options.FullSweepEvery = 4 with epoch-seeded what-if scoring):
// replaying a version ≤ 1 snapshot under the default diverges and
// fails loud in the replay check. To restore one, pin
// FullSweepEvery = 1 — that configuration runs the exact legacy path
// (no gain cache, per-round RNG scoring draws) and replays pre-v2
// transcripts bit-identically. Served sessions persist their opening
// request, which on records written by older builds carries no
// fullSweepEvery field, so their revival fails loud rather than
// silently diverging. Version 3 adds the per-elicitation Degraded flag
// (overload fallback to the uncertainty ranking); v2 snapshots decode
// with the flag false on every record, which is exactly right — no
// pre-v3 session ever ranked degraded — so they replay unchanged.
// Version 4 adds corpus-ingestion records (Elicitation.Ingest): a
// transcript entry may carry a corpus delta applied mid-session, which
// RestoreSession re-applies at its recorded position. Snapshots
// without ingest records are encoding-compatible with v3 in both
// directions; a v4 snapshot that does carry deltas must be rejected by
// older builds — hence the bump.
const SnapshotVersion = 4

// Snapshot is a serialisable record of a session's progress: the full
// elicitation transcript. Because every other part of a session — claim
// selection, inference, grounding, the hybrid score — is a deterministic
// function of (database, options, user responses), replaying the
// transcript against the same database and options reconstructs the
// session bit-identically. This is the persistence hook behind the
// multi-session server: a snapshot is small (one record per elicitation),
// JSON-friendly, and independent of engine internals.
type Snapshot struct {
	Version      int           `json:"version,omitempty"`
	Elicitations []Elicitation `json:"elicitations"`
}

// ask elicits a verdict and records the elicitation in the transcript,
// stamped with the mode the current iteration's ranking was computed
// under (pendingDegraded).
func (s *Session) ask(user User, c int) (bool, bool) {
	v, ok := user.Validate(c)
	s.elog = append(s.elog, Elicitation{Claim: c, Verdict: v, OK: ok, Degraded: s.pendingDegraded})
	return v, ok
}

// SetDegraded switches the session's ranking mode. While degraded, the
// next computed ranking uses the cheap precomputed uncertainty order
// (guidance.Uncertainty — RNG-free, stable) instead of the configured
// strategy; this is the graceful-degradation fallback the serving SLO
// controller flips under overload. The switch deliberately does NOT
// invalidate a cached ranking: mode is captured when a ranking is
// computed and holds for that whole iteration, so Pending stays
// idempotent and a mid-iteration flip cannot fork the selection trace.
// Every elicitation records the mode it was ranked under, which is what
// keeps degraded transcripts bit-identically replayable: a degraded
// iteration draws no scoring values from the session RNG, and replay
// (RestoreSession) re-applies the recorded mode before each Step.
func (s *Session) SetDegraded(v bool) { s.degraded = v }

// Degraded reports the session's current ranking mode (the mode the
// *next* computed ranking will use; see LastRankingDegraded for the mode
// of the cached one).
func (s *Session) Degraded() bool { return s.degraded }

// LastRankingDegraded reports whether the most recently computed ranking
// was produced in degraded mode — the annotation read-only endpoints
// surface so degraded guidance is distinguishable downstream.
func (s *Session) LastRankingDegraded() bool { return s.pendingDegraded }

// ranked returns the full ranking for the current iteration, computing
// and caching it on first call. The cache is what makes Pending
// idempotent: ranking draws one value from the session RNG per scoring
// round, so recomputing on every call would advance the random stream
// and fork the selection trace away from a session that ranks once per
// iteration. Ranking with k = |C| instead of Step's historical k = 2 is
// trace-neutral: k only truncates the sorted order, it never changes the
// number of RNG draws or the relative order of the head. In degraded
// mode the ranking comes from the RNG-free uncertainty order instead of
// the configured strategy, and the mode is captured alongside the cache
// so the iteration's elicitations record how they were ranked.
func (s *Session) ranked() []int {
	if !s.pendingOK {
		// Remember the RNG state the round starts from: if a corpus
		// ingest discards this ranking before a Step consumes it, Ingest
		// rewinds to here so the aborted round's draws never happened —
		// the property that keeps a live session bit-identical to its
		// transcript replay, which only ranks once, after the ingest.
		s.rngAtRank = *s.rng
		if s.degraded {
			s.pending = guidance.Uncertainty{}.Rank(s.ctx(), s.DB.NumClaims)
		} else {
			if s.hybrid != nil {
				s.hybrid.Z = s.zScore
			}
			s.pending = s.opts.Strategy.Rank(s.ctx(), s.DB.NumClaims)
		}
		s.pendingDegraded = s.degraded
		s.pendingOK = true
	}
	return s.pending
}

// invalidatePending drops the cached ranking; called whenever labels (and
// hence any ranking input) change.
func (s *Session) invalidatePending() {
	s.pending = nil
	s.pendingOK = false
}

// Pending returns up to k claims of the current iteration's ranking in
// descending preference — the claims Step would elicit next. The ranking
// is computed once per iteration and cached until the next validation, so
// repeated Pending calls (a client polling "which claim next?") are
// idempotent and do not perturb the session's random stream: a session
// whose ranking is inspected between steps produces the same selection
// trace as one that is only stepped. k <= 0 returns the full ranking.
// Pending is only meaningful in single-claim mode; in batch mode (§6.2)
// it returns an error, since batch assembly is interactive in the
// marginal-gain sense and has no precomputable order.
func (s *Session) Pending(k int) ([]int, error) {
	if s.closed {
		return nil, ErrClosed
	}
	if s.opts.BatchSize >= 2 {
		return nil, errors.New("core: Pending is unavailable in batch mode")
	}
	r := s.ranked()
	if k > 0 && len(r) > k {
		r = r[:k]
	}
	return append([]int(nil), r...), nil
}

// PendingCached returns the current iteration's ranking only if it has
// already been computed (by Pending or Step), without triggering a
// scoring round — the cheap peek behind read-only status endpoints.
func (s *Session) PendingCached() ([]int, bool) {
	if s.closed || !s.pendingOK {
		return nil, false
	}
	return append([]int(nil), s.pending...), true
}

// SetWorkers adjusts the parallelism of subsequent scoring rounds and
// E-step sweeps (0 = GOMAXPROCS). Results are bit-identical across
// worker counts, so a server multiplexing many sessions onto a shared
// worker budget may lower and raise a session's workers per request
// without perturbing its selection trace.
func (s *Session) SetWorkers(n int) {
	s.opts.Workers = n
	s.Engine.SetWorkers(n)
}

// Workers returns the session's current worker setting.
func (s *Session) Workers() int { return s.opts.Workers }

// Close marks the session closed and releases its cached worker
// resources (engine worker chains and scoring buffers). A closed session
// still serves read-only accessors (State, History, Snapshot, Precision),
// but Step and Run become no-ops and Pending returns ErrClosed. Closing
// an already-closed session returns ErrClosed.
func (s *Session) Close() error {
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	s.invalidatePending()
	s.pool.Trim(0)
	s.Engine.ReleaseWorkers(0)
	return nil
}

// Closed reports whether Close has been called.
func (s *Session) Closed() bool { return s.closed }

// Snapshot returns the session's replayable transcript. The snapshot is
// valid when taken between Step calls (a server takes one after each
// answered request); restoring mid-Step states is not supported.
func (s *Session) Snapshot() Snapshot {
	return Snapshot{
		Version:      SnapshotVersion,
		Elicitations: append([]Elicitation(nil), s.elog...),
	}
}

// TranscriptLen returns the number of elicitations recorded so far.
// Together with TranscriptTail it lets a caller persist the transcript
// incrementally (append only what a Step added) instead of rewriting the
// full Snapshot after every answer.
func (s *Session) TranscriptLen() int { return len(s.elog) }

// TranscriptTail returns a copy of the elicitations recorded at or
// after index from (nil when from is at or past the end).
func (s *Session) TranscriptTail(from int) []Elicitation {
	if from < 0 {
		from = 0
	}
	if from >= len(s.elog) {
		return nil
	}
	return append([]Elicitation(nil), s.elog[from:]...)
}

// replayUser feeds a recorded transcript back into the Alg. 1 loop,
// verifying at every elicitation that the process asks about the claim
// the transcript recorded — any divergence means the database, options or
// seed differ from the snapshotted session.
type replayUser struct {
	log []Elicitation
	pos int
	err error
}

func (u *replayUser) Validate(claim int) (bool, bool) {
	if u.err != nil {
		return false, false
	}
	if u.pos >= len(u.log) {
		u.err = fmt.Errorf("core: replay ran past the transcript's %d elicitations (asked claim %d)", len(u.log), claim)
		return false, false
	}
	e := u.log[u.pos]
	if e.Ingest != nil {
		// Ingest records sit between Steps; one landing mid-Step means
		// the transcript is corrupt or from a diverging configuration.
		u.err = fmt.Errorf("core: replay hit an ingest record mid-step at position %d (asked claim %d)", u.pos, claim)
		return false, false
	}
	if e.Claim != claim {
		u.err = fmt.Errorf("core: replay diverged at elicitation %d: process asked claim %d, transcript recorded claim %d (database/options/seed mismatch?)", u.pos, claim, e.Claim)
		return false, false
	}
	u.pos++
	return e.Verdict, e.OK
}

// RestoreSession reconstructs a session from a snapshot by replaying its
// transcript against the same database and options used to create the
// original. The restored session is bit-identical to the snapshotted one
// — same state, grounding, history, hybrid score and random stream — so a
// server can persist sessions across restarts and resume them exactly.
// Restoration fails with a descriptive error when the transcript does not
// match the selection trace the (db, opts) pair deterministically
// produces.
func RestoreSession(db *factdb.DB, opts Options, snap Snapshot) (*Session, error) {
	if snap.Version > SnapshotVersion {
		return nil, fmt.Errorf("core: snapshot encoding version %d is newer than this build supports (max %d)",
			snap.Version, SnapshotVersion)
	}
	s, err := OpenSession(db, opts)
	if err != nil {
		return nil, err
	}
	u := &replayUser{log: snap.Elicitations}
	for u.pos < len(u.log) && u.err == nil {
		// A recorded corpus arrival is re-applied at exactly its
		// transcript position, growing the database and refreshing
		// inference the same way the original Ingest call did.
		if rec := u.log[u.pos]; rec.Ingest != nil {
			u.pos++
			if _, err := s.Ingest(*rec.Ingest); err != nil {
				return nil, fmt.Errorf("core: replay of ingest record %d: %w", u.pos-1, err)
			}
			continue
		}
		// Re-apply the ranking mode the original session used for this
		// iteration: its first elicitation recorded whether it was ranked
		// degraded, and the mode governs both the ranking order and the
		// RNG draws the replayed Step consumes. Elicitations of one Step
		// all carry the iteration's mode, so reading the next unconsumed
		// record is exact.
		s.SetDegraded(u.log[u.pos].Degraded)
		// A Step that consumes nothing and reports done ends the replay
		// (falling through to the consumed-count check below); a Step
		// that did consume may be followed by an ingest record that
		// un-finishes the session, so the loop continues.
		before := u.pos
		if s.Step(u) && u.pos == before {
			break
		}
	}
	// Leave the restored session in normal mode; whoever drives it next
	// (the serving SLO controller, or nobody) re-decides per request.
	s.SetDegraded(false)
	if u.err != nil {
		return nil, u.err
	}
	if u.pos != len(u.log) {
		return nil, fmt.Errorf("core: replay consumed %d of %d transcript elicitations", u.pos, len(u.log))
	}
	return s, nil
}
