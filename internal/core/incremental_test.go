package core

import (
	"testing"

	"factcheck/internal/guidance"
	"factcheck/internal/sim"
	"factcheck/internal/synth"
)

// communityCorpus builds a genuinely multi-component corpus so the
// dirty-component path exercises partial re-scoring with real cache
// hits; the stock synthetic corpora are (nearly) fully connected.
func communityCorpus(t *testing.T, seed int64) *synth.Corpus {
	t.Helper()
	c := synth.GenerateCommunities(synth.Wikipedia.Scaled(0.6), 4, seed)
	if c.DB.NumComponents() < 4 {
		t.Fatalf("community corpus has %d components, want >= 4", c.DB.NumComponents())
	}
	return c
}

// TestIncrementalRankTraceBitIdentical is the exactness property of the
// cross-answer gain cache: for every what-if strategy, seed and worker
// count, a session that merges cached gains for clean components must
// produce a selection trace — history, transcript, marginals, grounding,
// hybrid score — bit-identical to one that re-scores every candidate
// from scratch each round (SetFullRecompute), including across a
// mid-session snapshot/restore of the incremental session.
func TestIncrementalRankTraceBitIdentical(t *testing.T) {
	strategies := map[string]func() guidance.Strategy{
		"info":   func() guidance.Strategy { return guidance.InfoGain{} },
		"source": func() guidance.Strategy { return guidance.SourceGain{} },
		"hybrid": func() guidance.Strategy { return &guidance.Hybrid{} },
	}
	corpus := communityCorpus(t, 71)
	for name, mk := range strategies {
		for _, seed := range []int64{101, 102, 103} {
			for _, workers := range []int{1, 4} {
				t.Run(name, func(t *testing.T) {
					opts := fastOpts(seed)
					opts.Workers = workers
					opts.CandidatePool = 12

					mkSession := func() *Session {
						o := opts
						o.Strategy = mk() // fresh instance: Hybrid mutates Z
						s, err := OpenSession(corpus.DB, o)
						if err != nil {
							t.Fatal(err)
						}
						return s
					}
					inc := mkSession()
					full := mkSession()
					full.GainCache().SetFullRecompute(true)

					// Phase 1: identical-seeded erroneous skippers drive both
					// sessions, making the transcript non-trivial (wrong
					// answers and skips).
					userFor := func() User {
						return sim.NewSkipper(sim.NewErroneous(corpus.Truth, 0.2, seed+7), 0.25, seed+8)
					}
					ua, ub := userFor(), userFor()
					const phase1 = 6
					for i := 0; i < phase1; i++ {
						inc.Step(ua)
						full.Step(ub)
					}
					assertSessionsEqual(t, inc, full)

					// Phase 2: restore the incremental session from its
					// snapshot and continue all three with a stateless oracle.
					restored, err := RestoreSession(corpus.DB, withStrategy(opts, mk()), inc.Snapshot())
					if err != nil {
						t.Fatalf("restore: %v", err)
					}
					oracle := &sim.Oracle{Truth: corpus.Truth}
					for i := 0; i < 6; i++ {
						inc.Step(oracle)
						full.Step(oracle)
						restored.Step(oracle)
					}
					assertSessionsEqual(t, inc, full)
					assertSessionsEqual(t, inc, restored)

					// The equality must not be vacuous: the incremental
					// session has to have served gains from cache.
					if inc.GainCache().Hits() == 0 {
						t.Fatal("incremental session never hit the gain cache")
					}
					if full.GainCache().Hits() != 0 {
						t.Fatal("full-recompute session must never hit the cache")
					}
				})
			}
		}
	}
}

func withStrategy(o Options, s guidance.Strategy) Options {
	o.Strategy = s
	return o
}

// TestIncrementalLegacyCadenceIsCacheFree pins that FullSweepEvery=1
// disables the incremental path entirely: no gain cache is created, so
// the session runs the exact legacy scoring path (per-round RNG draws)
// — the property that keeps pre-version-2 snapshots replayable.
func TestIncrementalLegacyCadenceIsCacheFree(t *testing.T) {
	corpus := communityCorpus(t, 72)
	opts := fastOpts(5)
	opts.FullSweepEvery = 1
	s, err := OpenSession(corpus.DB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.GainCache() != nil {
		t.Fatal("FullSweepEvery=1 must not create a gain cache")
	}
	oracle := &sim.Oracle{Truth: corpus.Truth}
	for i := 0; i < 8; i++ {
		s.Step(oracle)
	}
	if len(s.History()) != 8 {
		t.Fatalf("history = %d validations, want 8", len(s.History()))
	}
}
