// Package core implements the complete validation process of §5 (Alg. 1):
// the iterative loop that selects claims by a guidance strategy, elicits
// user input, infers its implications with iCRF, and instantiates a
// grounding — plus the confirmation-check robustness mechanism of §5.2
// and the batched variant of §6.2.
package core

import (
	"errors"
	"fmt"

	"factcheck/internal/em"
	"factcheck/internal/factdb"
	"factcheck/internal/guidance"
	"factcheck/internal/stats"
)

// User elicits validation verdicts. Validate returns the user's verdict
// for a claim; ok = false means the user skips this claim (§8.5, missing
// user input), in which case the session falls back to the next-best
// candidate.
type User interface {
	Validate(claim int) (verdict bool, ok bool)
}

// Options configures a validation session.
type Options struct {
	// Strategy selects claims; defaults to the hybrid strategy of §4.4.
	Strategy guidance.Strategy
	// Budget is the effort budget b (maximum number of validations);
	// 0 means |C|.
	Budget int
	// Goal is the validation goal Δ, evaluated after each iteration; a
	// nil goal never stops the loop early.
	Goal func(*Session) bool
	// BatchSize is the number of claims validated per iteration (§6.2);
	// values below 2 disable batching.
	BatchSize int
	// BatchW is the balance weight w of Eq. 27 (default 4).
	BatchW float64
	// CandidatePool bounds what-if scoring (0 = all unlabelled claims).
	CandidatePool int
	// Workers bounds parallel what-if scoring and, unless EM.Workers is
	// set explicitly, the component-sharded E-step (0 = GOMAXPROCS).
	// Selection traces and inference results are bit-identical across
	// worker counts for a fixed Seed.
	Workers int
	// ConfirmEvery triggers the §5.2 confirmation check each time this
	// fraction of |C| has been validated since the previous check
	// (e.g. 0.01 per §8.5); 0 disables the check.
	ConfirmEvery float64
	// FullSweepEvery is the cadence of full EM parameter sweeps in
	// single-claim mode. Between full sweeps each answer triggers only a
	// component-restricted, frozen-θ resample of the answered claim's
	// connected component, and the guidance layer re-scores only that
	// dirty component (the cross-answer gain cache) — the per-answer
	// path the serving stack rides. Full sweeps also run for the first
	// FullSweepEvery answers, while the anchoring ramp still moves θ
	// substantially per label, and whenever a confirmation check repairs
	// labels. 1 reproduces the paper's per-answer EM exactly — the
	// session then creates no gain cache at all and runs the historical
	// scoring path, per-round RNG draws included, which is also what
	// keeps pre-version-2 snapshots replayable (the experiment harness
	// pins it). 0 selects DefaultFullSweepEvery. Selection traces
	// remain bit-identical across worker counts and across cache modes
	// for any value.
	FullSweepEvery int
	// EM configures the inference engine.
	EM em.Config
	// Seed drives all session randomness.
	Seed int64
}

// DefaultFullSweepEvery is the full-EM cadence a zero
// Options.FullSweepEvery selects: one parameter sweep every four
// answers, with the three answers in between served by the incremental
// dirty-component path.
const DefaultFullSweepEvery = 4

func (o Options) withDefaults() Options {
	if o.Strategy == nil {
		o.Strategy = &guidance.Hybrid{}
	}
	if o.BatchW == 0 {
		o.BatchW = 4
	}
	if o.FullSweepEvery == 0 {
		o.FullSweepEvery = DefaultFullSweepEvery
	}
	if o.FullSweepEvery < 1 {
		o.FullSweepEvery = 1
	}
	// The zero-value check deliberately ignores EM.Workers: setting only
	// the parallelism knob must not suppress the default budgets, or the
	// engine would silently run with 0 samples.
	budgets := o.EM
	budgets.Workers = 0
	if budgets == (em.Config{}) {
		workers := o.EM.Workers
		o.EM = em.DefaultConfig()
		o.EM.Workers = workers
	}
	if o.EM.Workers == 0 {
		o.EM.Workers = o.Workers
	}
	return o
}

// Validation records one elicited verdict.
type Validation struct {
	Claim    int
	Verdict  bool
	Iter     int
	Repaired bool // set when a confirmation check replaced the verdict
}

// Session is a running validation process over one fact database.
type Session struct {
	DB     *factdb.DB
	State  *factdb.State
	Engine *em.Engine

	opts       Options
	rng        *stats.RNG
	pool       *guidance.Pool      // persistent what-if scoring pool
	gains      *guidance.GainCache // cross-answer gain cache (nil in batch mode / cadence 1)
	sinceSweep int                 // answers since the last full EM sweep
	ingests    int                 // corpus deltas applied (seeds their detached RNG streams)
	hybrid     *guidance.Hybrid    // non-nil when the strategy is hybrid
	grounding  factdb.Grounding
	prevGnd    factdb.Grounding
	zScore     float64
	iter       int
	history    []Validation
	lastCheck  int // labels at the previous confirmation check
	// prompted records the verdict a claim held the last time a
	// confirmation check re-elicited it, bounding repeated re-elicitation
	// of the same verdict.
	prompted map[int]bool
	// elog records every elicitation (including skips and repair
	// prompts) in order; it is the replayable part of a Snapshot.
	elog []Elicitation
	// pending caches the current iteration's full ranking so that
	// Pending can be called repeatedly (e.g. by a server handling
	// repeated GET /next requests) without advancing the session RNG;
	// pendingOK distinguishes "computed and empty" from "not computed".
	pending   []int
	pendingOK bool
	// rngAtRank is the session RNG's state at the start of the cached
	// ranking's scoring round; Ingest rewinds to it when it discards a
	// computed-but-unconsumed ranking (see ranked).
	rngAtRank stats.RNG
	// degraded selects the overload fallback for the next computed
	// ranking (SetDegraded); pendingDegraded is the mode the cached
	// ranking was actually computed under — captured at ranking time so a
	// mid-iteration mode flip cannot perturb the iteration's trace.
	degraded        bool
	pendingDegraded bool
	closed          bool

	// Observer, when set, runs after every iteration (used by the
	// experiment harness to trace precision and indicator curves).
	Observer func(*Session)
}

// NewSession builds a session and performs the initial inference and
// grounding (Alg. 1 lines 1-4). It panics when the database is unusable;
// callers that must handle invalid input gracefully use OpenSession.
func NewSession(db *factdb.DB, opts Options) *Session {
	s, err := OpenSession(db, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// OpenSession is NewSession with input validation: it rejects a nil or
// empty database with an error instead of panicking deep inside the
// inference engine.
func OpenSession(db *factdb.DB, opts Options) (*Session, error) {
	if db == nil {
		return nil, errors.New("core: nil fact database")
	}
	if db.NumClaims <= 0 {
		return nil, errors.New("core: empty corpus (no claims to validate)")
	}
	if len(db.Sources) == 0 || len(db.Documents) == 0 {
		return nil, errors.New("core: corpus carries no evidence (no sources or documents)")
	}
	opts = opts.withDefaults()
	s := &Session{
		DB:       db,
		State:    factdb.NewState(db.NumClaims),
		Engine:   em.NewEngine(db, opts.EM, opts.Seed),
		opts:     opts,
		rng:      stats.NewRNG(opts.Seed + 1),
		prompted: make(map[int]bool),
	}
	s.pool = guidance.NewPool(s.Engine)
	if opts.BatchSize < 2 && opts.FullSweepEvery != 1 {
		// Batch assembly re-scores interactively in the marginal-gain
		// sense, and a cadence of 1 runs a full EM sweep per answer, so
		// in both cases nothing is ever reusable — no cache is created.
		// That makes FullSweepEvery=1 the exact legacy path, per-round
		// RNG scoring draws included: it replays pre-version-2 snapshots
		// bit-identically.
		s.gains = guidance.NewGainCache(opts.Seed)
	}
	if h, ok := opts.Strategy.(*guidance.Hybrid); ok {
		s.hybrid = h
	}
	s.Engine.InferFull(s.State)
	s.grounding = s.Engine.Grounding(s.State)
	s.prevGnd = s.grounding.Clone()
	return s, nil
}

// Grounding returns the current grounding g_i.
func (s *Session) Grounding() factdb.Grounding { return s.grounding }

// PrevGrounding returns g_{i−1}, for the amount-of-changes indicator.
func (s *Session) PrevGrounding() factdb.Grounding { return s.prevGnd }

// Iterations returns the number of completed iterations.
func (s *Session) Iterations() int { return s.iter }

// History returns the elicited validations in order.
func (s *Session) History() []Validation { return s.history }

// ZScore returns the current hybrid score z_i.
func (s *Session) ZScore() float64 { return s.zScore }

// Effort returns |C_L| / |C|.
func (s *Session) Effort() float64 { return s.State.Effort() }

// ctx assembles the guidance context for the current iteration.
func (s *Session) ctx() *guidance.Context {
	return &guidance.Context{
		DB:            s.DB,
		State:         s.State,
		Engine:        s.Engine,
		Grounding:     s.grounding,
		RNG:           s.rng,
		CandidatePool: s.opts.CandidatePool,
		Workers:       s.opts.Workers,
		Pool:          s.pool,
		Gains:         s.gains,
	}
}

// GainCache exposes the session's cross-answer gain cache (nil in
// batch mode and at FullSweepEvery = 1, where nothing is ever
// reusable). Tests and benchmarks flip it to full-recompute mode to assert
// — and price — the cache's exactness; call SetFullRecompute before the
// first Step so both modes see identical epochs from the start.
func (s *Session) GainCache() *guidance.GainCache { return s.gains }

// inferAfterLabels runs the post-answer inference of Alg. 1 line 15.
// When exactly one label landed and the full-sweep cadence permits, the
// engine resamples only the answered claim's connected component under
// frozen parameters and the gain cache marks just that component dirty;
// otherwise (batch answers, warm-up, cadence reached, or an engine that
// cannot patch incrementally) a full EM sweep runs and everything is
// invalidated.
func (s *Session) inferAfterLabels(labeled []int) {
	if s.gains != nil && len(labeled) == 1 {
		s.sinceSweep++
		every := s.opts.FullSweepEvery
		if s.sinceSweep < every && s.State.NumLabeled() > every {
			comp := s.DB.ComponentOf(labeled[0])
			s.gains.InvalidateComponent(comp)
			if s.Engine.InferComponent(s.State, comp, s.gains.SweepSeed(comp)) {
				return
			}
		}
	}
	s.fullSweep()
}

// fullSweep runs a full EM inference and invalidates every cached gain
// — the fallback of the incremental path and the periodic θ refresh.
func (s *Session) fullSweep() {
	s.Engine.InferIncremental(s.State)
	if s.gains != nil {
		s.gains.InvalidateAll()
	}
	s.sinceSweep = 0
}

// Step runs one iteration of Alg. 1 (lines 7-19); done reports that no
// unlabelled claims remain afterwards. In single-claim mode the skipping
// fallback of §8.5 applies: when the user skips the top-ranked claim, the
// second-best candidate is validated instead. In batch mode (§6.2) a
// greedy top-k batch is elicited and inference runs once for the whole
// batch.
func (s *Session) Step(user User) (done bool) {
	if s.closed {
		return true
	}
	if s.hybrid != nil {
		s.hybrid.Z = s.zScore
	}
	type pick struct {
		c int
		v bool
	}
	var picks []pick
	if s.opts.BatchSize >= 2 {
		b := &guidance.BatchSelector{W: s.opts.BatchW, K: s.opts.BatchSize}
		for _, c := range b.SelectBatch(s.ctx(), s.opts.BatchSize) {
			v, ok := s.ask(user, c)
			if !ok {
				v = s.State.P(c) >= 0.5 // a skip inside a batch accepts the model value
			}
			picks = append(picks, pick{c, v})
		}
	} else {
		ranked := s.ranked()
		if len(ranked) == 0 {
			return true
		}
		c := ranked[0]
		v, ok := s.ask(user, c)
		if !ok && len(ranked) > 1 {
			// User skipped: validate the second-best candidate (§8.5).
			c = ranked[1]
			v, ok = s.ask(user, c)
		}
		if !ok {
			v = s.State.P(c) >= 0.5 // a repeated skip accepts the model value
		}
		picks = append(picks, pick{c, v})
	}
	if len(picks) == 0 {
		return true
	}

	// (2) Record input and compute the error rate ε_i (lines 10-13).
	s.invalidatePending()
	var eps float64
	labeled := make([]int, 0, len(picks))
	for _, p := range picks {
		eps = guidance.ErrorRate(s.State.P(p.c), s.grounding[p.c])
		s.State.SetLabel(p.c, p.v)
		s.history = append(s.history, Validation{Claim: p.c, Verdict: p.v, Iter: s.iter})
		labeled = append(labeled, p.c)
	}

	// (3) Infer implications (line 15) — component-restricted when the
	// answer's reach allows it, a full EM sweep otherwise.
	s.inferAfterLabels(labeled)

	// (4) Decide on the grounding (line 16).
	s.prevGnd = s.grounding
	s.grounding = s.Engine.Grounding(s.State)

	// Lines 17-18: unreliable-source ratio and hybrid score.
	r := guidance.UnreliableRatio(s.DB, s.grounding)
	h := float64(s.State.NumLabeled()) / float64(s.DB.NumClaims)
	s.zScore = guidance.HybridScore(eps, r, h)
	s.iter++

	// Periodic confirmation check (§5.2).
	if s.opts.ConfirmEvery > 0 {
		period := int(s.opts.ConfirmEvery * float64(s.DB.NumClaims))
		if period < 1 {
			period = 1
		}
		if s.State.NumLabeled()-s.lastCheck >= period {
			s.ConfirmationCheck(user)
			s.lastCheck = s.State.NumLabeled()
		}
	}

	if s.Observer != nil {
		s.Observer(s)
	}
	return s.State.NumLabeled() >= s.DB.NumClaims
}

// Run iterates until the goal Δ holds, the budget b is exhausted, or no
// claims remain (Alg. 1 line 6); it returns the number of validations
// elicited, repairs included.
func (s *Session) Run(user User) int {
	budget := s.opts.Budget
	if budget <= 0 {
		budget = s.DB.NumClaims
	}
	for s.State.NumLabeled() < budget {
		if s.opts.Goal != nil && s.opts.Goal(s) {
			break
		}
		if s.Step(user) {
			break
		}
	}
	return len(s.history)
}

// CheckResult reports a §5.2 confirmation check.
type CheckResult struct {
	// Flagged lists the validated claims whose leave-one-out grounding
	// disagrees with the user input.
	Flagged []int
	// Repaired counts flagged claims whose re-elicited verdict differed
	// from the stored label (the label was updated).
	Repaired int
}

// ConfirmationCheck performs the robustness check of §5.2: for every
// validated claim c it constructs the grounding g_i~c from all
// information except c's validation, flags disagreements as potential
// mistakes, and re-elicits the user's verdict for flagged claims. Each
// re-elicitation is appended to History (extra effort). A claim flagged
// with the same verdict it was already re-elicited for is not prompted
// again — a verdict is binary, so every claim costs at most two repair
// prompts over the whole session, keeping the label+repair effort of
// Fig. 7 bounded.
func (s *Session) ConfirmationCheck(user User) CheckResult {
	if s.closed {
		return CheckResult{}
	}
	labeled := s.State.LabeledClaims()
	if len(labeled) == 0 {
		return CheckResult{}
	}
	marg := s.Engine.HoldoutMarginals(s.State, labeled)
	var res CheckResult
	changed := false
	for i, c := range labeled {
		v, _ := s.State.Label(c)
		loo := marg[i] >= 0.5
		if loo == v {
			continue
		}
		res.Flagged = append(res.Flagged, c)
		if last, ok := s.prompted[c]; ok && last == v {
			continue // this verdict was already re-confirmed once
		}
		s.prompted[c] = v
		v2, ok := s.ask(user, c)
		if !ok {
			continue
		}
		s.history = append(s.history, Validation{Claim: c, Verdict: v2, Iter: s.iter, Repaired: true})
		if v2 != v {
			s.State.SetLabel(c, v2)
			res.Repaired++
			changed = true
		}
	}
	if changed {
		// Repairs rewrite already-anchored labels; their reach through the
		// M-step is global, so take the full-invalidation fallback.
		s.invalidatePending()
		s.fullSweep()
		s.prevGnd = s.grounding
		s.grounding = s.Engine.Grounding(s.State)
	}
	return res
}

// Precision returns the grounding precision against a known truth; a
// convenience for experiments (the paper simulates users from ground
// truth, §8.1).
func (s *Session) Precision(truth []bool) float64 {
	return s.grounding.Precision(truth)
}

// String implements fmt.Stringer.
func (s *Session) String() string {
	return fmt.Sprintf("session{iter=%d labels=%d/%d z=%.3f}",
		s.iter, s.State.NumLabeled(), s.DB.NumClaims, s.zScore)
}
