package core

import (
	"errors"
	"reflect"
	"testing"

	"factcheck/internal/em"
	"factcheck/internal/factdb"
	"factcheck/internal/sim"
)

// fastOpts returns options with reduced inference budgets so lifecycle
// tests stay fast; behaviour, not statistical quality, is under test.
func fastOpts(seed int64) Options {
	cfg := em.DefaultConfig()
	cfg.BurnIn, cfg.Samples = 6, 12
	cfg.IncBurnIn, cfg.IncSamples = 2, 6
	cfg.EMIters = 1
	cfg.HypoBurn, cfg.HypoSamples = 2, 4
	return Options{Seed: seed, CandidatePool: 6, Workers: 1, EM: cfg}
}

func TestSnapshotRestoreBitIdentical(t *testing.T) {
	c := smallCorpus(t, 11)
	opts := fastOpts(12)
	opts.ConfirmEvery = 0.05 // exercise repair prompts in the transcript

	a, err := OpenSession(c.DB, opts)
	if err != nil {
		t.Fatal(err)
	}
	// A mix of wrong answers and skips makes the transcript non-trivial.
	user := sim.NewSkipper(sim.NewErroneous(c.Truth, 0.25, 77), 0.3, 78)
	for i := 0; i < 8; i++ {
		if a.Step(user) {
			break
		}
	}
	snap := a.Snapshot()
	if len(snap.Elicitations) < 8 {
		t.Fatalf("transcript too short: %d elicitations", len(snap.Elicitations))
	}

	b, err := RestoreSession(c.DB, opts, snap)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	assertSessionsEqual(t, a, b)

	// The restored session must continue exactly like the original: the
	// oracle is stateless, so both sessions see identical responses.
	oracle := &sim.Oracle{Truth: c.Truth}
	for i := 0; i < 4; i++ {
		da, db := a.Step(oracle), b.Step(oracle)
		if da != db {
			t.Fatalf("step %d: done diverged (%v vs %v)", i, da, db)
		}
	}
	assertSessionsEqual(t, a, b)
}

func assertSessionsEqual(t *testing.T, a, b *Session) {
	t.Helper()
	if !reflect.DeepEqual(a.History(), b.History()) {
		t.Fatalf("history diverged:\n a=%v\n b=%v", a.History(), b.History())
	}
	if !reflect.DeepEqual(a.Grounding(), b.Grounding()) {
		t.Fatal("grounding diverged")
	}
	if a.ZScore() != b.ZScore() {
		t.Fatalf("z diverged: %v vs %v", a.ZScore(), b.ZScore())
	}
	if a.Iterations() != b.Iterations() {
		t.Fatalf("iterations diverged: %d vs %d", a.Iterations(), b.Iterations())
	}
	for c := 0; c < a.DB.NumClaims; c++ {
		if a.State.P(c) != b.State.P(c) {
			t.Fatalf("P(%d) diverged: %v vs %v", c, a.State.P(c), b.State.P(c))
		}
	}
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Fatal("transcripts diverged")
	}
}

func TestRestoreDetectsMismatch(t *testing.T) {
	c := smallCorpus(t, 21)
	opts := fastOpts(22)
	a, err := OpenSession(c.DB, opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle := &sim.Oracle{Truth: c.Truth}
	for i := 0; i < 5; i++ {
		a.Step(oracle)
	}
	snap := a.Snapshot()

	// A different seed produces a different selection trace; the replay
	// must detect the divergence rather than silently building a session
	// that never happened.
	bad := opts
	bad.Seed = opts.Seed + 1
	if _, err := RestoreSession(c.DB, bad, snap); err == nil {
		t.Fatal("restore with a different seed should fail")
	}

	// Truncating the transcript mid-step is also rejected... unless the
	// cut happens to align with a step boundary, which a single-claim
	// no-repair session always does — so corrupt a claim id instead.
	snap.Elicitations[2].Claim = snap.Elicitations[2].Claim + 1
	if _, err := RestoreSession(c.DB, opts, snap); err == nil {
		t.Fatal("restore with a corrupted transcript should fail")
	}
}

func TestPendingIsIdempotentAndTraceNeutral(t *testing.T) {
	c := smallCorpus(t, 31)
	opts := fastOpts(32)
	peeked, err := OpenSession(c.DB, opts)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := OpenSession(c.DB, opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle := &sim.Oracle{Truth: c.Truth}
	for i := 0; i < 6; i++ {
		first, err := peeked.Pending(5)
		if err != nil {
			t.Fatal(err)
		}
		// Repeated polling must not change the answer or the trace.
		for j := 0; j < 3; j++ {
			again, err := peeked.Pending(5)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, again) {
				t.Fatalf("iteration %d: Pending not idempotent: %v vs %v", i, first, again)
			}
		}
		peeked.Step(oracle)
		plain.Step(oracle)
		got := peeked.History()[len(peeked.History())-1].Claim
		if got != first[0] {
			t.Fatalf("iteration %d: Step validated claim %d, Pending promised %d", i, got, first[0])
		}
	}
	if !reflect.DeepEqual(peeked.History(), plain.History()) {
		t.Fatalf("polling Pending changed the selection trace:\n peeked=%v\n plain=%v",
			peeked.History(), plain.History())
	}
}

func TestOpenSessionRejectsBadInput(t *testing.T) {
	if _, err := OpenSession(nil, Options{}); err == nil {
		t.Fatal("nil database accepted")
	}
	if _, err := OpenSession(&factdb.DB{}, Options{}); err == nil {
		t.Fatal("empty database accepted")
	}
	if _, err := OpenSession(&factdb.DB{NumClaims: 3}, Options{}); err == nil {
		t.Fatal("evidence-free database accepted")
	}
}

func TestCloseSemantics(t *testing.T) {
	c := smallCorpus(t, 41)
	s, err := OpenSession(c.DB, fastOpts(42))
	if err != nil {
		t.Fatal(err)
	}
	oracle := &sim.Oracle{Truth: c.Truth}
	s.Step(oracle)
	labels := s.State.NumLabeled()

	if err := s.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if !s.Closed() {
		t.Fatal("Closed() should report true")
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second close: got %v, want ErrClosed", err)
	}
	if _, err := s.Pending(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Pending after close: got %v, want ErrClosed", err)
	}
	if done := s.Step(oracle); !done {
		t.Fatal("Step after close should report done")
	}
	if s.State.NumLabeled() != labels {
		t.Fatal("Step after close mutated state")
	}
	// Read-only accessors keep working; the transcript survives Close.
	if len(s.Snapshot().Elicitations) == 0 {
		t.Fatal("Snapshot after close lost the transcript")
	}
}

func TestSnapshotVersioning(t *testing.T) {
	c := smallCorpus(t, 51)
	opts := fastOpts(52)
	s, err := OpenSession(c.DB, opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(&sim.Oracle{Truth: c.Truth})
	snap := s.Snapshot()
	if snap.Version != SnapshotVersion {
		t.Fatalf("Snapshot stamped version %d, want %d", snap.Version, SnapshotVersion)
	}

	// Version 0 is the pre-versioned encoding: still replayable.
	legacy := snap
	legacy.Version = 0
	if _, err := RestoreSession(c.DB, opts, legacy); err != nil {
		t.Fatalf("legacy (version 0) snapshot rejected: %v", err)
	}

	// A snapshot from a newer build must be rejected up front, before
	// any replay runs under possibly changed semantics.
	future := snap
	future.Version = SnapshotVersion + 1
	if _, err := RestoreSession(c.DB, opts, future); err == nil {
		t.Fatal("future-version snapshot accepted")
	}

	// Transcript helpers expose the incremental view a store persists.
	if got := s.TranscriptLen(); got != len(snap.Elicitations) {
		t.Fatalf("TranscriptLen = %d, want %d", got, len(snap.Elicitations))
	}
	tail := s.TranscriptTail(len(snap.Elicitations) - 1)
	if len(tail) != 1 || tail[0] != snap.Elicitations[len(snap.Elicitations)-1] {
		t.Fatalf("TranscriptTail returned %v", tail)
	}
	if got := s.TranscriptTail(s.TranscriptLen()); got != nil {
		t.Fatalf("TranscriptTail past the end = %v, want nil", got)
	}
}
