package core

import (
	"reflect"
	"testing"

	"factcheck/internal/guidance"
	"factcheck/internal/sim"
)

// degradedSchedule is the controller stand-in for the property tests: a
// pure function from step index to ranking mode. Steps 3–7 run
// degraded, everything else on the configured hybrid strategy.
func degradedSchedule(i int) bool { return i >= 3 && i < 8 }

// stepWithSchedule drives steps [from, to) applying the mode schedule
// before each, the way the serving layer applies the controller's mode
// per request.
func stepWithSchedule(s *Session, user User, from, to int) {
	for i := from; i < to; i++ {
		s.SetDegraded(degradedSchedule(i))
		if s.Step(user) {
			break
		}
	}
}

// TestDegradedTraceReplayBitIdentical is the degraded-mode determinism
// property: a session that degrades mid-run produces a transcript that
// (a) annotates exactly the degraded iterations, (b) replays
// bit-identically from a snapshot taken mid-degradation, and (c) after
// recovery back to hybrid scoring continues exactly like a restored
// copy that never has a controller attached — because the recorded mode,
// not any live controller state, is what replay consumes.
func TestDegradedTraceReplayBitIdentical(t *testing.T) {
	corpus := communityCorpus(t, 91)
	opts := fastOpts(92)
	opts.CandidatePool = 12
	opts.ConfirmEvery = 0.04 // repair prompts land inside degraded iterations too

	a, err := OpenSession(corpus.DB, withStrategy(opts, &guidance.Hybrid{}))
	if err != nil {
		t.Fatal(err)
	}
	// Wrong answers and skips make the transcript non-trivial (multiple
	// elicitations per step).
	user := sim.NewSkipper(sim.NewErroneous(corpus.Truth, 0.2, 55), 0.25, 56)
	stepWithSchedule(a, user, 0, 6)

	snap := a.Snapshot() // mid-degradation: steps 3–5 ran degraded
	if snap.Version != SnapshotVersion {
		t.Fatalf("snapshot version = %d, want %d", snap.Version, SnapshotVersion)
	}
	var sawDegraded, sawNormal bool
	for _, e := range snap.Elicitations {
		if e.Degraded {
			sawDegraded = true
		} else {
			sawNormal = true
		}
	}
	if !sawDegraded || !sawNormal {
		t.Fatalf("transcript should mix modes: degraded=%v normal=%v", sawDegraded, sawNormal)
	}

	// (b) Restore mid-degradation: bit-identical state, then bit-identical
	// continuation through the rest of the degraded phase and recovery,
	// driven by a stateless oracle under the same mode schedule.
	r, err := RestoreSession(corpus.DB, withStrategy(opts, &guidance.Hybrid{}), snap)
	if err != nil {
		t.Fatalf("restore mid-degradation: %v", err)
	}
	assertSessionsEqual(t, a, r)
	oracle := &sim.Oracle{Truth: corpus.Truth}
	stepWithSchedule(a, oracle, 6, 12)
	stepWithSchedule(r, oracle, 6, 12)
	assertSessionsEqual(t, a, r)

	// (c) Recovery: a snapshot taken after the session returned to hybrid
	// scoring restores into a session that is never given a controller
	// (SetDegraded is never called) and still resumes the exact trace —
	// steps past the degraded phase are plain hybrid steps.
	snap2 := a.Snapshot()
	r2, err := RestoreSession(corpus.DB, withStrategy(opts, &guidance.Hybrid{}), snap2)
	if err != nil {
		t.Fatalf("restore post-recovery: %v", err)
	}
	if r2.Degraded() {
		t.Fatal("restored session left in degraded mode")
	}
	assertSessionsEqual(t, a, r2)
	for i := 0; i < 3; i++ {
		a.SetDegraded(false)
		da := a.Step(oracle)
		db := r2.Step(oracle) // no SetDegraded: controller disabled
		if da != db {
			t.Fatalf("post-recovery step %d: done diverged (%v vs %v)", i, da, db)
		}
	}
	assertSessionsEqual(t, a, r2)
}

// TestDegradedRankingIsUncertaintyOrder pins what the fallback actually
// serves: while degraded, the computed ranking equals the RNG-free
// uncertainty order — and computing it consumes no RNG draws, so a
// mid-iteration mode flip after the ranking is cached changes nothing.
func TestDegradedRankingIsUncertaintyOrder(t *testing.T) {
	corpus := communityCorpus(t, 93)
	opts := fastOpts(94)
	opts.CandidatePool = 12

	s, err := OpenSession(corpus.DB, withStrategy(opts, &guidance.Hybrid{}))
	if err != nil {
		t.Fatal(err)
	}
	oracle := &sim.Oracle{Truth: corpus.Truth}
	for i := 0; i < 3; i++ {
		s.Step(oracle)
	}

	s.SetDegraded(true)
	got, err := s.Pending(0)
	if err != nil {
		t.Fatal(err)
	}
	if !s.LastRankingDegraded() {
		t.Fatal("degraded ranking not annotated")
	}
	want := guidance.Uncertainty{}.Rank(s.ctx(), s.DB.NumClaims)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("degraded ranking is not the uncertainty order:\n got %v\nwant %v", got, want)
	}

	// Flipping the mode back while the ranking is cached must not
	// invalidate it: mode is captured at ranking time, keeping Pending
	// idempotent for mid-iteration controller transitions.
	s.SetDegraded(false)
	again, err := s.Pending(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, again) {
		t.Fatal("mode flip invalidated the cached ranking mid-iteration")
	}
	if !s.LastRankingDegraded() {
		t.Fatal("cached ranking's mode annotation changed on a mid-iteration flip")
	}

	// The elicitation recorded for this iteration carries the mode the
	// ranking was computed under (degraded), not the current flag.
	s.Step(oracle)
	tail := s.TranscriptTail(s.TranscriptLen() - 1)
	if len(tail) != 1 || !tail[0].Degraded {
		t.Fatalf("elicitation mode annotation = %+v, want Degraded=true", tail)
	}
}
