// Package gibbs implements the constrained Gibbs sampler behind the
// E-step of the iCRF algorithm (§3.2, Eq. 6-7). The sampler draws claim
// configurations from the conditional distribution defined by the CRF's
// clique scores, where each clique's influence is weighted by the
// credibility of the claims of its source (the mutual-reinforcement term;
// see crf package docs). User-labelled claims are clamped — the
// constraint-embedding of [61] — and the chain state persists across
// validation iterations, which is the "view maintenance" that makes iCRF
// incremental.
package gibbs

import (
	"runtime"
	"sync"
	"sync/atomic"

	"factcheck/internal/crf"
	"factcheck/internal/factdb"
	"factcheck/internal/stats"
)

// run groups a claim's cliques that share a source, so the per-source
// trust exclusion can be computed without maps in the hot loop.
type run struct {
	source  int32
	support int32 // number of supporting cliques in the run
	refute  int32 // number of refuting cliques in the run
	// signedBase is Σ_π Stance(π).Sign()·BaseScore(π) over the run's
	// cliques; refreshed by SetModel whenever θ changes.
	signedBase float64
	// cliques are the clique indices of the run (needed to recompute
	// signedBase).
	cliques []int32
}

// Chain is a persistent Gibbs chain over the claims of one fact database.
// A Chain is not safe for concurrent use; parallel what-if evaluation
// gives each worker its own long-lived clone (CloneDetached +
// CopyStateFrom), and RunSharded may sweep disjoint components of one
// chain concurrently because components share no claims or sources.
type Chain struct {
	db     *factdb.DB
	rng    *stats.RNG
	x      []bool  // current assignment per claim
	frozen []bool  // claims pinned by user input
	agree  []int32 // per-source count of cliques agreeing with x
	total  []int32 // per-source clique count (static)
	trustW float64
	runs   [][]run // per claim

	order  []int32  // scratch for sweep ordering
	counts []int32  // scratch for RunComponentInto sample counting
	snap   Snapshot // scratch for SnapshotComponentScratch
	// shardRNG is the detached stream scratch of RefreshComponent; it is
	// reseeded per call, so keeping it on the chain only saves the
	// allocation.
	shardRNG *stats.RNG
}

// NewChain builds a chain over db seeded by rng. The initial assignment
// is sampled from the uniform distribution (all probabilities 0.5); call
// InitFromState to seed from an existing probabilistic state.
func NewChain(db *factdb.DB, rng *stats.RNG) *Chain {
	ch := &Chain{
		db:     db,
		rng:    rng,
		x:      make([]bool, db.NumClaims),
		frozen: make([]bool, db.NumClaims),
		agree:  make([]int32, len(db.Sources)),
		total:  make([]int32, len(db.Sources)),
	}
	// Build per-claim runs grouped by source.
	ch.runs = make([][]run, db.NumClaims)
	for c := 0; c < db.NumClaims; c++ {
		ch.runs[c] = ch.buildRuns(c)
	}
	for _, cl := range db.Cliques {
		ch.total[cl.Source]++
	}
	for c := range ch.x {
		ch.x[c] = rng.Bernoulli(0.5)
	}
	ch.recount()
	return ch
}

// buildRuns groups claim c's cliques by source, in clique-appearance
// order, into the run representation the sweep hot loop consumes.
func (ch *Chain) buildRuns(c int) []run {
	db := ch.db
	bySource := map[int32]*run{}
	var order []int32
	for _, ci := range db.ClaimCliques[c] {
		cl := db.Cliques[ci]
		rn, ok := bySource[cl.Source]
		if !ok {
			rn = &run{source: cl.Source}
			bySource[cl.Source] = rn
			order = append(order, cl.Source)
		}
		if cl.Stance == factdb.Support {
			rn.support++
		} else {
			rn.refute++
		}
		rn.cliques = append(rn.cliques, ci)
	}
	rs := make([]run, 0, len(order))
	for _, s := range order {
		rs = append(rs, *bySource[s])
	}
	return rs
}

// Grow extends the chain in place after the database was grown with
// factdb.DB.Extend: new claims get slots (their initial values drawn
// from the caller's detached rng, never the chain's own stream, so
// growth does not perturb later full sweeps), runs are rebuilt for
// exactly the claims whose clique sets changed, and the per-source
// counters are recomputed over the grown structure. The caller must
// drop every clone of the chain first — clones share the runs and
// total slices this method replaces — and must call SetModel afterwards
// to refresh the rebuilt runs' base scores.
func (ch *Chain) Grow(res factdb.ExtendResult, rng *stats.RNG) {
	db := ch.db
	for len(ch.x) < db.NumClaims {
		ch.x = append(ch.x, rng.Bernoulli(0.5))
		ch.frozen = append(ch.frozen, false)
	}
	for _, c := range res.Rebuilt {
		for len(ch.runs) <= c {
			ch.runs = append(ch.runs, nil)
		}
		ch.runs[c] = ch.buildRuns(c)
	}
	total := make([]int32, len(db.Sources))
	for _, cl := range db.Cliques {
		total[cl.Source]++
	}
	ch.total = total
	ch.agree = make([]int32, len(db.Sources))
	ch.recount()
}

// SetModel installs the clique base scores derived from the current θ and
// the trust coupling weight; must be called after every M-step.
func (ch *Chain) SetModel(m *crf.Model) {
	base := m.BaseScores()
	ch.trustW = m.TrustWeight()
	for c := range ch.runs {
		for i := range ch.runs[c] {
			rn := &ch.runs[c][i]
			s := 0.0
			for _, ci := range rn.cliques {
				sign := ch.db.Cliques[ci].Stance.Sign()
				s += sign * base[ci]
			}
			rn.signedBase = s
		}
	}
}

// InitFromState samples each unlabelled claim's value from state.P and
// clamps labelled claims to their user input.
func (ch *Chain) InitFromState(state *factdb.State) {
	for c := 0; c < len(ch.x); c++ {
		if v, ok := state.Label(c); ok {
			ch.x[c] = v
			ch.frozen[c] = true
		} else {
			ch.x[c] = ch.rng.Bernoulli(state.P(c))
			ch.frozen[c] = false
		}
	}
	ch.recount()
}

// SyncLabels clamps newly labelled claims without disturbing the rest of
// the chain — the incremental path taken after each validation iteration.
func (ch *Chain) SyncLabels(state *factdb.State) {
	for c := 0; c < len(ch.x); c++ {
		if v, ok := state.Label(c); ok {
			ch.frozen[c] = true
			ch.setValue(c, v)
		} else {
			ch.frozen[c] = false
		}
	}
}

// recount rebuilds the per-source agreement counters from x.
func (ch *Chain) recount() {
	for s := range ch.agree {
		ch.agree[s] = 0
	}
	for _, cl := range ch.db.Cliques {
		if ch.agrees(cl) {
			ch.agree[cl.Source]++
		}
	}
}

func (ch *Chain) agrees(cl factdb.Clique) bool {
	return ch.x[cl.Claim] == (cl.Stance == factdb.Support)
}

// setValue assigns claim c the value v, maintaining agreement counters.
func (ch *Chain) setValue(c int, v bool) {
	if ch.x[c] == v {
		return
	}
	// Flipping x[c] flips the agreement of every clique of c.
	for _, rn := range ch.runs[c] {
		var delta int32
		if v {
			// Support cliques now agree (+support), refute ones stop (−refute).
			delta = rn.support - rn.refute
		} else {
			delta = rn.refute - rn.support
		}
		ch.agree[rn.source] += delta
	}
	ch.x[c] = v
}

// Trust smoothing pseudo-counts: agreement counts are shrunk toward an
// honesty prior of a/(a+b) = 2/3 before entering the coupling. This
// (i) damps the ±1 trust estimates of sources with few observations and
// (ii) tilts the coupling's two self-consistent fixed points ("sources
// honest" vs "sources lying") toward the honest one, matching the
// paper's premise that claims from trustworthy sources are more likely
// credible (§3.1).
const (
	trustPriorAgree    = 2.0
	trustPriorDisagree = 1.0
)

// smoothedTrust maps smoothed agreement counts to [−1, 1].
func smoothedTrust(agree, total float64) float64 {
	return 2*(agree+trustPriorAgree)/(total+trustPriorAgree+trustPriorDisagree) - 1
}

// LogOdds returns the conditional log-odds of claim c = 1 given the rest
// of the chain: the average stance-signed clique score scaled by
// crf.OddsGain, where each clique's score is its static base plus
// θ_T·trust_excl, and trust_excl is the smoothed stance agreement of the
// clique's source computed over its cliques excluding those of c
// (avoiding self-reinforcement).
func (ch *Chain) LogOdds(c int) float64 {
	l := 0.0
	nc := 0
	curr := ch.x[c]
	for _, rn := range ch.runs[c] {
		l += rn.signedBase
		n := rn.support + rn.refute
		nc += int(n)
		if ch.trustW != 0 {
			exclTotal := ch.total[rn.source] - n
			if exclTotal > 0 {
				var a int32
				if curr {
					a = rn.support
				} else {
					a = rn.refute
				}
				exclAgree := ch.agree[rn.source] - a
				trust := smoothedTrust(float64(exclAgree), float64(exclTotal))
				l += ch.trustW * trust * float64(rn.support-rn.refute)
			}
		}
	}
	if nc == 0 {
		return 0
	}
	return crf.OddsGain * l / float64(nc)
}

// Value returns the current assignment of claim c.
func (ch *Chain) Value(c int) bool { return ch.x[c] }

// sampleClaim resamples claim c from its conditional.
func (ch *Chain) sampleClaim(c int) {
	p := stats.Sigmoid(ch.LogOdds(c))
	ch.setValue(c, ch.rng.Float64() < p)
}

// Sweep performs one Gibbs pass over the given claims in random order,
// skipping frozen claims. A nil claim list sweeps all claims.
func (ch *Chain) Sweep(claims []int32) {
	if claims == nil {
		if cap(ch.order) < len(ch.x) {
			ch.order = make([]int32, len(ch.x))
		}
		ch.order = ch.order[:len(ch.x)]
		for i := range ch.order {
			ch.order[i] = int32(i)
		}
		claims = ch.order
	} else {
		if cap(ch.order) < len(claims) {
			ch.order = make([]int32, len(claims))
		}
		ch.order = ch.order[:len(claims)]
		copy(ch.order, claims)
		claims = ch.order
	}
	ch.rng.Shuffle(len(claims), func(i, j int) { claims[i], claims[j] = claims[j], claims[i] })
	for _, c := range claims {
		if !ch.frozen[c] {
			ch.sampleClaim(int(c))
		}
	}
}

// Run executes burn discarded sweeps followed by samples recorded sweeps
// over all claims and returns the collected sample set Ω. Non-positive
// burn and samples are treated as zero; an empty sample set reports 0.5
// marginals rather than dividing by zero.
func (ch *Chain) Run(burn, samples int) *SampleSet {
	if samples < 0 {
		samples = 0
	}
	for i := 0; i < burn; i++ {
		ch.Sweep(nil)
	}
	ss := NewSampleSet(len(ch.x), samples)
	for i := 0; i < samples; i++ {
		ch.Sweep(nil)
		ss.Add(ch.x)
	}
	return ss
}

// RunSharded is the component-sharded parallel counterpart of Run (§5.1):
// connected components of the claim graph are independent blocks of the
// CRF, so each is swept by its own deterministic RNG stream, with up to
// workers goroutines processing components concurrently (workers <= 0
// means GOMAXPROCS). Components are closed under shared sources, so a
// component's sweeps touch only its own claims and per-source agreement
// counters — shards never contend. Sample bits of claims sharing a word
// are merged with atomic OR, which commutes, so the returned Ω is
// bit-identical for a fixed chain state regardless of worker count or
// scheduling order.
func (ch *Chain) RunSharded(burn, samples, workers int) *SampleSet {
	if burn < 0 {
		burn = 0
	}
	if samples < 0 {
		samples = 0
	}
	nComp := ch.db.NumComponents()
	// One base draw from the chain's own stream; per-component streams
	// derive from it without advancing the parent further, keeping the
	// parent chain's RNG consumption independent of the sharding.
	base := ch.rng.Uint64()
	ss := newDenseSampleSet(len(ch.x), samples)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nComp {
		workers = nComp
	}
	maxMembers := 0
	for comp := 0; comp < nComp; comp++ {
		if n := len(ch.db.ComponentMembers(comp)); n > maxMembers {
			maxMembers = n
		}
	}
	runComp := func(comp int, order []int32, rng *stats.RNG) {
		members := ch.db.ComponentMembers(comp)
		rng.Reseed(stats.StreamSeed(base, uint64(comp)))
		for i := 0; i < burn; i++ {
			ch.sweepShard(members, order[:len(members)], rng)
		}
		for k := 0; k < samples; k++ {
			ch.sweepShard(members, order[:len(members)], rng)
			ss.recordShard(k, members, ch.x)
		}
	}
	if workers <= 1 {
		order := make([]int32, maxMembers)
		rng := stats.NewRNG(0)
		for comp := 0; comp < nComp; comp++ {
			runComp(comp, order, rng)
		}
		return ss
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			order := make([]int32, maxMembers)
			rng := stats.NewRNG(0)
			for {
				comp := int(next.Add(1)) - 1
				if comp >= nComp {
					return
				}
				runComp(comp, order, rng)
			}
		}()
	}
	wg.Wait()
	return ss
}

// RefreshComponent resamples one component of ss in place: burn
// discarded sweeps followed by one recorded sweep per existing sample,
// all restricted to the component's members and driven by a detached
// RNG stream seeded from seed — the chain's own stream does not advance,
// so refreshing a component never perturbs later full sweeps. This is
// the sampling kernel of the per-answer incremental inference path: a
// new label only changes the distribution of its own connected component
// (components share no claims or sources, and the model parameters stay
// frozen between EM sweeps), so only that component's slice of Ω* needs
// replacing.
func (ch *Chain) RefreshComponent(ss *SampleSet, comp, burn int, seed int64) {
	members := ch.db.ComponentMembers(comp)
	if cap(ch.order) < len(members) {
		ch.order = make([]int32, len(members))
	}
	order := ch.order[:len(members)]
	if ch.shardRNG == nil {
		ch.shardRNG = stats.NewRNG(seed)
	} else {
		ch.shardRNG.Reseed(seed)
	}
	for i := 0; i < burn; i++ {
		ch.sweepShard(members, order, ch.shardRNG)
	}
	for k := 0; k < ss.NumSamples(); k++ {
		ch.sweepShard(members, order, ch.shardRNG)
		ss.SetShard(k, members, ch.x)
	}
}

// sweepShard performs one Gibbs pass over the given component members in
// an order shuffled by the shard's own RNG stream. The caller guarantees
// that no other goroutine touches the members' claims or their sources'
// agreement counters.
func (ch *Chain) sweepShard(members, order []int32, rng *stats.RNG) {
	copy(order, members)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	for _, c := range order {
		if !ch.frozen[c] {
			p := stats.Sigmoid(ch.LogOdds(int(c)))
			ch.setValue(int(c), rng.Float64() < p)
		}
	}
}

// ComponentResult carries the marginals of one component's claims after a
// restricted run; Members aligns with Marginals.
type ComponentResult struct {
	Members   []int32
	Marginals []float64
}

// RunComponent executes a Gibbs run restricted to the claims of the given
// component, recording marginals only for those claims. It is the
// workhorse of the what-if inference behind information gain (§4.2),
// exploiting the graph-partitioning optimisation of §5.1.
func (ch *Chain) RunComponent(comp, burn, samples int) ComponentResult {
	return ch.RunComponentInto(nil, comp, burn, samples)
}

// RunComponentInto is RunComponent with caller-provided marginal storage:
// the result's Marginals reuse marg's backing array when its capacity
// suffices, so a worker scoring many hypotheticals allocates nothing in
// steady state. The per-sample counting scratch lives on the chain. With
// samples <= 0 no sweeps are recorded and every marginal is 0.5 — the
// maximum-entropy answer — instead of the NaN a 0/0 division would
// produce.
func (ch *Chain) RunComponentInto(marg []float64, comp, burn, samples int) ComponentResult {
	members := ch.db.ComponentMembers(comp)
	if cap(marg) < len(members) {
		marg = make([]float64, len(members))
	}
	marg = marg[:len(members)]
	if samples <= 0 {
		for j := range marg {
			marg[j] = 0.5
		}
		return ComponentResult{Members: members, Marginals: marg}
	}
	for i := 0; i < burn; i++ {
		ch.Sweep(members)
	}
	if cap(ch.counts) < len(members) {
		ch.counts = make([]int32, len(members))
	}
	counts := ch.counts[:len(members)]
	for j := range counts {
		counts[j] = 0
	}
	for i := 0; i < samples; i++ {
		ch.Sweep(members)
		for j, c := range members {
			if ch.x[c] {
				counts[j]++
			}
		}
	}
	for j := range marg {
		marg[j] = float64(counts[j]) / float64(samples)
	}
	return ComponentResult{Members: members, Marginals: marg}
}

// Freeze pins claim c to value v for subsequent sweeps (what-if clamping);
// Unfreeze releases it.
func (ch *Chain) Freeze(c int, v bool) {
	ch.frozen[c] = true
	ch.setValue(c, v)
}

// Unfreeze releases a claim pinned by Freeze.
func (ch *Chain) Unfreeze(c int) { ch.frozen[c] = false }

// Snapshot captures the chain state of one component (claim values,
// source agreement counters and frozen flags) so a what-if excursion can
// be rolled back in O(component size).
type Snapshot struct {
	comp    int
	xvals   []bool
	frozen  []bool
	agree   []int32
	sources []int32
}

// SnapshotComponent captures the state of component comp.
func (ch *Chain) SnapshotComponent(comp int) Snapshot {
	var snap Snapshot
	ch.snapshotInto(&snap, comp)
	return snap
}

// SnapshotComponentScratch is SnapshotComponent backed by chain-owned
// scratch storage: what-if excursions snapshot and restore in strict LIFO
// order, so at most one scratch snapshot is live per chain and the hot
// scoring loop allocates nothing. Take a fresh SnapshotComponent instead
// when two snapshots must coexist.
func (ch *Chain) SnapshotComponentScratch(comp int) Snapshot {
	ch.snapshotInto(&ch.snap, comp)
	return ch.snap
}

func (ch *Chain) snapshotInto(snap *Snapshot, comp int) {
	members := ch.db.ComponentMembers(comp)
	srcs := ch.db.ComponentSources(comp)
	if cap(snap.xvals) < len(members) {
		snap.xvals = make([]bool, len(members))
		snap.frozen = make([]bool, len(members))
	}
	if cap(snap.agree) < len(srcs) {
		snap.agree = make([]int32, len(srcs))
	}
	snap.comp = comp
	snap.xvals = snap.xvals[:len(members)]
	snap.frozen = snap.frozen[:len(members)]
	snap.agree = snap.agree[:len(srcs)]
	snap.sources = srcs
	for i, c := range members {
		snap.xvals[i] = ch.x[c]
		snap.frozen[i] = ch.frozen[c]
	}
	for i, s := range srcs {
		snap.agree[i] = ch.agree[s]
	}
}

// Restore rolls the chain back to a snapshot taken with SnapshotComponent.
func (ch *Chain) Restore(snap Snapshot) {
	members := ch.db.ComponentMembers(snap.comp)
	for i, c := range members {
		ch.x[c] = snap.xvals[i]
		ch.frozen[c] = snap.frozen[i]
	}
	for i, s := range snap.sources {
		ch.agree[s] = snap.agree[i]
	}
}

// Clone returns an independent copy of the chain sharing the immutable
// structure (runs, totals) but owning its assignment, counters and RNG
// stream. SetModel must not run concurrently with clone use.
func (ch *Chain) Clone() *Chain {
	return &Chain{
		db:     ch.db,
		rng:    ch.rng.Split(),
		x:      append([]bool(nil), ch.x...),
		frozen: append([]bool(nil), ch.frozen...),
		agree:  append([]int32(nil), ch.agree...),
		total:  ch.total,
		trustW: ch.trustW,
		runs:   ch.runs,
	}
}

// CloneDetached is Clone with an explicitly seeded RNG instead of one
// split from the parent: the parent's stream does not advance, so the
// number of clones taken (e.g. the worker count) cannot perturb the
// parent chain's subsequent sampling. Scoring pools reseed the clone per
// task anyway.
func (ch *Chain) CloneDetached(seed int64) *Chain {
	return &Chain{
		db:     ch.db,
		rng:    stats.NewRNG(seed),
		x:      append([]bool(nil), ch.x...),
		frozen: append([]bool(nil), ch.frozen...),
		agree:  append([]int32(nil), ch.agree...),
		total:  ch.total,
		trustW: ch.trustW,
		runs:   ch.runs,
	}
}

// CopyStateFrom resynchronises a long-lived clone with src without
// allocating: assignment, frozen flags, agreement counters and the trust
// weight are copied (clones already share the run structure, whose base
// scores SetModel refreshes in place). Persistent worker pools call this
// once per scoring round instead of cloning a fresh chain.
func (ch *Chain) CopyStateFrom(src *Chain) {
	copy(ch.x, src.x)
	copy(ch.frozen, src.frozen)
	copy(ch.agree, src.agree)
	ch.trustW = src.trustW
}

// Reseed resets the chain's RNG in place to a deterministic stream.
// Scoring pools reseed a worker's chain per candidate so each what-if
// evaluation is a pure function of (chain state, candidate, seed),
// independent of which worker runs it.
func (ch *Chain) Reseed(seed int64) { ch.rng.Reseed(seed) }
