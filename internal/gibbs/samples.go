package gibbs

import (
	"sync/atomic"

	"factcheck/internal/factdb"
)

// SampleSet is a sequence Ω of sampled claim configurations, stored as
// bitsets. It provides the per-claim marginals of Eq. 7 and the
// joint-mode grounding instantiation of Eq. 10.
type SampleSet struct {
	nClaims int
	counts  []int32
	samples [][]uint64
}

// NewSampleSet creates an empty set for nClaims claims with capacity for
// expect samples.
func NewSampleSet(nClaims, expect int) *SampleSet {
	return &SampleSet{
		nClaims: nClaims,
		counts:  make([]int32, nClaims),
		samples: make([][]uint64, 0, expect),
	}
}

// Add records one configuration.
func (ss *SampleSet) Add(x []bool) {
	words := make([]uint64, (ss.nClaims+63)/64)
	for c, v := range x {
		if v {
			words[c/64] |= 1 << (c % 64)
			ss.counts[c]++
		}
	}
	ss.samples = append(ss.samples, words)
}

// newDenseSampleSet preallocates a set of exactly samples zeroed
// configurations backed by one contiguous array, so sharded runs can fill
// sample k's bits concurrently (see recordShard) without any append
// bookkeeping.
func newDenseSampleSet(nClaims, samples int) *SampleSet {
	words := (nClaims + 63) / 64
	ss := &SampleSet{
		nClaims: nClaims,
		counts:  make([]int32, nClaims),
		samples: make([][]uint64, samples),
	}
	backing := make([]uint64, samples*words)
	for i := range ss.samples {
		ss.samples[i] = backing[i*words : (i+1)*words : (i+1)*words]
	}
	return ss
}

// recordShard stores sample k's bits for the given component members from
// x. Claims of different components may share a 64-bit word, so bits are
// merged with atomic OR — commutative, hence deterministic regardless of
// which shard records first. The per-claim counts are indexed by claim and
// each claim belongs to exactly one shard, so they need no atomics.
func (ss *SampleSet) recordShard(k int, members []int32, x []bool) {
	words := ss.samples[k]
	for _, c := range members {
		if x[c] {
			atomic.OrUint64(&words[c/64], 1<<(uint(c)%64))
			ss.counts[c]++
		}
	}
}

// SetShard overwrites sample k's bits for the given component members
// from x, keeping the per-claim counts consistent. Unlike recordShard it
// both clears and sets bits (the sample already holds a configuration
// for these claims) and runs single-threaded, so no atomics are needed.
// It is the write path of the component-restricted incremental refresh:
// after a label lands in one component, only that component's slice of
// Ω* is resampled while every other component's bits stay untouched.
func (ss *SampleSet) SetShard(k int, members []int32, x []bool) {
	words := ss.samples[k]
	for _, c := range members {
		mask := uint64(1) << (uint(c) % 64)
		was := words[c/64]&mask != 0
		if x[c] == was {
			continue
		}
		if x[c] {
			words[c/64] |= mask
			ss.counts[c]++
		} else {
			words[c/64] &^= mask
			ss.counts[c]--
		}
	}
}

// Grow extends the set to cover n additional claims. The new claims'
// bits start cleared (counts zero), so their marginals read 0 until
// their components are resampled — callers refresh every component a
// corpus delta dirtied (they all contain the new claims) before the
// marginals are consumed. Samples whose word count grows are
// reallocated, detaching them from any shared dense backing.
func (ss *SampleSet) Grow(n int) {
	ss.nClaims += n
	ss.counts = append(ss.counts, make([]int32, n)...)
	words := (ss.nClaims + 63) / 64
	for i, s := range ss.samples {
		if len(s) < words {
			ns := make([]uint64, words)
			copy(ns, s)
			ss.samples[i] = ns
		}
	}
}

// NumSamples returns |Ω|.
func (ss *SampleSet) NumSamples() int { return len(ss.samples) }

// NumClaims returns the number of claims the set covers.
func (ss *SampleSet) NumClaims() int { return ss.nClaims }

// Marginal returns the ratio of samples in which claim c is credible
// (Eq. 7); 0.5 when the set is empty.
func (ss *SampleSet) Marginal(c int) float64 {
	if len(ss.samples) == 0 {
		return 0.5
	}
	return float64(ss.counts[c]) / float64(len(ss.samples))
}

// bit returns sample si's value for claim c.
func (ss *SampleSet) bit(si, c int) bool {
	return ss.samples[si][c/64]&(1<<(c%64)) != 0
}

// Decide instantiates a grounding from the sample set per Eq. 10: within
// each connected component the most frequent sampled configuration wins
// (the joint distribution factorises over components), and labelled
// claims always carry their user input. When every sampled configuration
// of a component is unique (no mode), the per-claim majority is used —
// the natural fallback noted in DESIGN.md. An empty sample set grounds by
// thresholding state probabilities at 0.5.
func Decide(db *factdb.DB, state *factdb.State, ss *SampleSet) factdb.Grounding {
	g := factdb.NewGrounding(db.NumClaims)
	if ss == nil || ss.NumSamples() == 0 {
		for c := 0; c < db.NumClaims; c++ {
			g[c] = state.P(c) >= 0.5
		}
		applyLabels(state, g)
		return g
	}
	for comp := 0; comp < db.NumComponents(); comp++ {
		members := db.ComponentMembers(comp)
		best, unique := ss.componentMode(members)
		if unique {
			// No repeated configuration: majority per claim.
			for _, c := range members {
				g[c] = ss.Marginal(int(c)) >= 0.5
			}
			continue
		}
		for _, c := range members {
			g[c] = ss.bit(best, int(c))
		}
	}
	applyLabels(state, g)
	return g
}

// componentMode returns the index of the sample holding the most frequent
// configuration restricted to members; unique reports that every
// configuration appeared exactly once.
func (ss *SampleSet) componentMode(members []int32) (best int, unique bool) {
	type entry struct {
		count int
		first int
	}
	counts := make(map[uint64]*entry, len(ss.samples))
	bestCount, bestFirst := 0, 0
	for si := range ss.samples {
		h := ss.hashComponent(si, members)
		e, ok := counts[h]
		if !ok {
			e = &entry{first: si}
			counts[h] = e
		}
		e.count++
		if e.count > bestCount || (e.count == bestCount && e.first < bestFirst) {
			bestCount = e.count
			bestFirst = e.first
		}
	}
	return bestFirst, bestCount <= 1
}

// hashComponent hashes sample si restricted to the member claims
// (FNV-1a over the member bits packed into bytes).
func (ss *SampleSet) hashComponent(si int, members []int32) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	var acc uint64
	bits := 0
	for _, c := range members {
		acc <<= 1
		if ss.bit(si, int(c)) {
			acc |= 1
		}
		bits++
		if bits == 64 {
			for k := 0; k < 8; k++ {
				h ^= (acc >> (8 * k)) & 0xff
				h *= prime
			}
			acc, bits = 0, 0
		}
	}
	if bits > 0 {
		for k := 0; k < 8; k++ {
			h ^= (acc >> (8 * k)) & 0xff
			h *= prime
		}
	}
	return h
}

func applyLabels(state *factdb.State, g factdb.Grounding) {
	for c := range g {
		if v, ok := state.Label(c); ok {
			g[c] = v
		}
	}
}
