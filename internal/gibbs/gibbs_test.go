package gibbs

import (
	"math"
	"testing"
	"testing/quick"

	"factcheck/internal/crf"
	"factcheck/internal/factdb"
	"factcheck/internal/stats"
)

// starDB builds one source with n claims, each supported by one document
// (no features), so only bias and trust drive the sampler.
func starDB(t *testing.T, n int) *factdb.DB {
	t.Helper()
	db := &factdb.DB{Sources: []factdb.Source{{ID: 0}}, NumClaims: n}
	for i := 0; i < n; i++ {
		db.Documents = append(db.Documents, factdb.Document{
			ID: i, Source: 0,
			Refs: []factdb.ClaimRef{{Claim: i, Stance: factdb.Support}},
		})
	}
	if err := db.Finalize(); err != nil {
		t.Fatal(err)
	}
	return db
}

// randomDB builds a random well-formed database for property tests.
func randomDB(r *stats.RNG) *factdb.DB {
	nSrc := 1 + r.Intn(4)
	nClaims := 1 + r.Intn(6)
	db := &factdb.DB{NumClaims: nClaims}
	for s := 0; s < nSrc; s++ {
		db.Sources = append(db.Sources, factdb.Source{ID: s, Features: []float64{r.NormFloat64()}})
	}
	docID := 0
	// Ensure every claim has at least one document.
	for c := 0; c < nClaims; c++ {
		st := factdb.Support
		if r.Bernoulli(0.3) {
			st = factdb.Refute
		}
		db.Documents = append(db.Documents, factdb.Document{
			ID: docID, Source: r.Intn(nSrc), Features: []float64{r.NormFloat64()},
			Refs: []factdb.ClaimRef{{Claim: c, Stance: st}},
		})
		docID++
	}
	extra := r.Intn(8)
	for i := 0; i < extra; i++ {
		st := factdb.Support
		if r.Bernoulli(0.3) {
			st = factdb.Refute
		}
		db.Documents = append(db.Documents, factdb.Document{
			ID: docID, Source: r.Intn(nSrc), Features: []float64{r.NormFloat64()},
			Refs: []factdb.ClaimRef{{Claim: r.Intn(nClaims), Stance: st}},
		})
		docID++
	}
	if err := db.Finalize(); err != nil {
		panic(err)
	}
	return db
}

func TestZeroModelGivesUniformMarginals(t *testing.T) {
	db := starDB(t, 6)
	m := crf.New(db)
	ch := NewChain(db, stats.NewRNG(1))
	ch.SetModel(m)
	ss := ch.Run(10, 400)
	for c := 0; c < db.NumClaims; c++ {
		if p := ss.Marginal(c); math.Abs(p-0.5) > 0.08 {
			t.Fatalf("marginal[%d] = %v, want ~0.5 under zero model", c, p)
		}
	}
}

func TestPositiveBiasPushesMarginalsUp(t *testing.T) {
	db := starDB(t, 5)
	m := crf.New(db)
	theta := make([]float64, m.Dim())
	theta[0] = 3 // strong positive bias
	m.SetTheta(theta)
	ch := NewChain(db, stats.NewRNG(2))
	ch.SetModel(m)
	ss := ch.Run(10, 200)
	for c := 0; c < db.NumClaims; c++ {
		if p := ss.Marginal(c); p < 0.9 {
			t.Fatalf("marginal[%d] = %v, want > 0.9", c, p)
		}
	}
}

func TestRefutingStanceFlipsEvidence(t *testing.T) {
	// One claim supported, one refuted, same bias: supported marginal
	// high, refuted low.
	db := &factdb.DB{Sources: []factdb.Source{{ID: 0}}, NumClaims: 2}
	db.Documents = []factdb.Document{
		{ID: 0, Source: 0, Refs: []factdb.ClaimRef{{Claim: 0, Stance: factdb.Support}}},
		{ID: 1, Source: 0, Refs: []factdb.ClaimRef{{Claim: 1, Stance: factdb.Refute}}},
	}
	if err := db.Finalize(); err != nil {
		t.Fatal(err)
	}
	m := crf.New(db)
	theta := make([]float64, m.Dim())
	theta[0] = 2.5
	m.SetTheta(theta)
	ch := NewChain(db, stats.NewRNG(3))
	ch.SetModel(m)
	ss := ch.Run(10, 300)
	if p := ss.Marginal(0); p < 0.85 {
		t.Fatalf("supported marginal = %v", p)
	}
	if p := ss.Marginal(1); p > 0.15 {
		t.Fatalf("refuted marginal = %v", p)
	}
}

func TestTrustCouplingPropagatesLabels(t *testing.T) {
	// Ten claims from one source; clamp five to true. With a positive
	// trust weight the remaining claims should lean credible: the source
	// has proven trustworthy.
	db := starDB(t, 10)
	m := crf.New(db)
	theta := make([]float64, m.Dim())
	theta[len(theta)-1] = 2 // trust coupling only
	m.SetTheta(theta)
	state := factdb.NewState(10)
	for c := 0; c < 5; c++ {
		state.SetLabel(c, true)
	}
	ch := NewChain(db, stats.NewRNG(4))
	ch.SetModel(m)
	ch.InitFromState(state)
	ss := ch.Run(20, 300)
	for c := 5; c < 10; c++ {
		if p := ss.Marginal(c); p < 0.7 {
			t.Fatalf("marginal[%d] = %v, want lifted by source trust", c, p)
		}
	}
	// Symmetric: clamping to false should push the rest down.
	state2 := factdb.NewState(10)
	for c := 0; c < 5; c++ {
		state2.SetLabel(c, false)
	}
	ch2 := NewChain(db, stats.NewRNG(5))
	ch2.SetModel(m)
	ch2.InitFromState(state2)
	ss2 := ch2.Run(20, 300)
	for c := 5; c < 10; c++ {
		if p := ss2.Marginal(c); p > 0.3 {
			t.Fatalf("marginal[%d] = %v, want pushed down by distrust", c, p)
		}
	}
}

func TestClampedClaimsNeverMove(t *testing.T) {
	db := starDB(t, 4)
	m := crf.New(db)
	theta := make([]float64, m.Dim())
	theta[0] = 5 // bias strongly towards credible
	m.SetTheta(theta)
	state := factdb.NewState(4)
	state.SetLabel(2, false) // against the bias
	ch := NewChain(db, stats.NewRNG(6))
	ch.SetModel(m)
	ch.InitFromState(state)
	ss := ch.Run(5, 100)
	if p := ss.Marginal(2); p != 0 {
		t.Fatalf("clamped claim moved: marginal = %v", p)
	}
	if !ch.frozen[2] {
		t.Fatal("claim 2 should be frozen")
	}
}

func TestAgreementCountersStayConsistent(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := stats.NewRNG(seed)
		db := randomDB(r)
		m := crf.New(db)
		theta := make([]float64, m.Dim())
		for i := range theta {
			theta[i] = r.NormFloat64()
		}
		m.SetTheta(theta)
		ch := NewChain(db, r.Split())
		ch.SetModel(m)
		for i := 0; i < 5; i++ {
			ch.Sweep(nil)
		}
		// Compare incremental counters against a recount.
		want := make([]int32, len(db.Sources))
		for _, cl := range db.Cliques {
			if ch.x[cl.Claim] == (cl.Stance == factdb.Support) {
				want[cl.Source]++
			}
		}
		for s := range want {
			if want[s] != ch.agree[s] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLogOddsMatchesNaiveComputation(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := stats.NewRNG(seed)
		db := randomDB(r)
		m := crf.New(db)
		theta := make([]float64, m.Dim())
		for i := range theta {
			theta[i] = r.NormFloat64()
		}
		m.SetTheta(theta)
		ch := NewChain(db, r.Split())
		ch.SetModel(m)
		base := m.BaseScores()
		for c := 0; c < db.NumClaims; c++ {
			got := ch.LogOdds(c)
			// Naive recomputation from first principles.
			want := 0.0
			for _, ci := range db.ClaimCliques[c] {
				cl := db.Cliques[ci]
				// Trust of cl.Source over cliques not involving claim c.
				var agree, total float64
				for _, cj := range db.Cliques {
					if cj.Source != cl.Source || cj.Claim == int32(c) {
						continue
					}
					total++
					if ch.x[cj.Claim] == (cj.Stance == factdb.Support) {
						agree++
					}
				}
				trust := 0.0
				if total > 0 {
					trust = 2*(agree+trustPriorAgree)/(total+trustPriorAgree+trustPriorDisagree) - 1
				}
				want += cl.Stance.Sign() * (base[ci] + m.TrustWeight()*trust)
			}
			if n := len(db.ClaimCliques[c]); n > 0 {
				want = crf.OddsGain * want / float64(n)
			}
			if math.Abs(got-want) > 1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	r := stats.NewRNG(11)
	db := randomDB(r)
	m := crf.New(db)
	theta := make([]float64, m.Dim())
	theta[0] = 0.5
	theta[len(theta)-1] = 1
	m.SetTheta(theta)
	ch := NewChain(db, r.Split())
	ch.SetModel(m)
	for i := 0; i < 3; i++ {
		ch.Sweep(nil)
	}
	comp := db.ComponentOf(0)
	snap := ch.SnapshotComponent(comp)
	savedX := append([]bool(nil), ch.x...)
	savedAgree := append([]int32(nil), ch.agree...)

	// Excursion: clamp claim 0 and churn the component.
	ch.Freeze(0, !ch.Value(0))
	ch.RunComponent(comp, 3, 5)
	ch.Restore(snap)

	for _, c := range db.ComponentMembers(comp) {
		if ch.x[c] != savedX[c] {
			t.Fatalf("claim %d not restored", c)
		}
		if ch.frozen[c] {
			t.Fatalf("claim %d left frozen", c)
		}
	}
	for s := range savedAgree {
		if ch.agree[s] != savedAgree[s] {
			t.Fatalf("agree[%d] not restored: %d vs %d", s, ch.agree[s], savedAgree[s])
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	db := starDB(t, 6)
	m := crf.New(db)
	ch := NewChain(db, stats.NewRNG(13))
	ch.SetModel(m)
	clone := ch.Clone()
	savedX := append([]bool(nil), ch.x...)
	for i := 0; i < 10; i++ {
		clone.Sweep(nil)
	}
	for c := range savedX {
		if ch.x[c] != savedX[c] {
			t.Fatal("clone sweeps mutated parent")
		}
	}
}

func TestRunComponentOnlyTouchesComponent(t *testing.T) {
	// Two isolated components (two sources, disjoint claims).
	db := &factdb.DB{
		Sources:   []factdb.Source{{ID: 0}, {ID: 1}},
		NumClaims: 4,
	}
	db.Documents = []factdb.Document{
		{ID: 0, Source: 0, Refs: []factdb.ClaimRef{{Claim: 0, Stance: factdb.Support}}},
		{ID: 1, Source: 0, Refs: []factdb.ClaimRef{{Claim: 1, Stance: factdb.Support}}},
		{ID: 2, Source: 1, Refs: []factdb.ClaimRef{{Claim: 2, Stance: factdb.Support}}},
		{ID: 3, Source: 1, Refs: []factdb.ClaimRef{{Claim: 3, Stance: factdb.Support}}},
	}
	if err := db.Finalize(); err != nil {
		t.Fatal(err)
	}
	m := crf.New(db)
	ch := NewChain(db, stats.NewRNG(17))
	ch.SetModel(m)
	compA := db.ComponentOf(0)
	compB := db.ComponentOf(2)
	if compA == compB {
		t.Fatal("expected two components")
	}
	xBefore := []bool{ch.Value(2), ch.Value(3)}
	res := ch.RunComponent(compA, 50, 50)
	if len(res.Members) != 2 {
		t.Fatalf("members = %v", res.Members)
	}
	if ch.Value(2) != xBefore[0] || ch.Value(3) != xBefore[1] {
		t.Fatal("RunComponent touched foreign claims")
	}
}

func TestSyncLabelsClampsAndReleases(t *testing.T) {
	db := starDB(t, 3)
	m := crf.New(db)
	ch := NewChain(db, stats.NewRNG(19))
	ch.SetModel(m)
	state := factdb.NewState(3)
	state.SetLabel(1, true)
	ch.SyncLabels(state)
	if !ch.frozen[1] || !ch.Value(1) {
		t.Fatal("SyncLabels did not clamp claim 1")
	}
	state.ClearLabel(1)
	ch.SyncLabels(state)
	if ch.frozen[1] {
		t.Fatal("SyncLabels did not release claim 1")
	}
}

// denseDB builds a multi-component database: nComp star components of
// varying size, so sharded runs exercise uneven shards.
func denseDB(t *testing.T, nComp int) *factdb.DB {
	t.Helper()
	db := &factdb.DB{}
	docID := 0
	for s := 0; s < nComp; s++ {
		db.Sources = append(db.Sources, factdb.Source{ID: s})
		size := 1 + s%4
		for k := 0; k < size; k++ {
			st := factdb.Support
			if (s+k)%3 == 0 {
				st = factdb.Refute
			}
			db.Documents = append(db.Documents, factdb.Document{
				ID: docID, Source: s,
				Refs: []factdb.ClaimRef{{Claim: db.NumClaims, Stance: st}},
			})
			docID++
			db.NumClaims++
		}
	}
	if err := db.Finalize(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestRunShardedIdenticalAcrossWorkerCounts(t *testing.T) {
	db := denseDB(t, 9)
	m := crf.New(db)
	theta := make([]float64, m.Dim())
	theta[0] = 0.7
	theta[len(theta)-1] = 0.5
	m.SetTheta(theta)
	run := func(workers int) *SampleSet {
		ch := NewChain(db, stats.NewRNG(31))
		ch.SetModel(m)
		return ch.RunSharded(6, 12, workers)
	}
	want := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		if got.NumSamples() != want.NumSamples() {
			t.Fatalf("workers=%d: %d samples, want %d", workers, got.NumSamples(), want.NumSamples())
		}
		for si := range want.samples {
			for w := range want.samples[si] {
				if got.samples[si][w] != want.samples[si][w] {
					t.Fatalf("workers=%d: sample %d word %d differs", workers, si, w)
				}
			}
		}
		for c := 0; c < db.NumClaims; c++ {
			if got.Marginal(c) != want.Marginal(c) {
				t.Fatalf("workers=%d: marginal[%d] = %v, want %v", workers, c, got.Marginal(c), want.Marginal(c))
			}
		}
	}
}

func TestRunShardedRespectsLabels(t *testing.T) {
	db := denseDB(t, 5)
	m := crf.New(db)
	ch := NewChain(db, stats.NewRNG(37))
	ch.SetModel(m)
	state := factdb.NewState(db.NumClaims)
	state.SetLabel(0, true)
	state.SetLabel(3, false)
	ch.InitFromState(state)
	ss := ch.RunSharded(4, 20, 4)
	if p := ss.Marginal(0); p != 1 {
		t.Fatalf("labelled-true marginal = %v", p)
	}
	if p := ss.Marginal(3); p != 0 {
		t.Fatalf("labelled-false marginal = %v", p)
	}
}

func TestRunGuardsNonPositiveSamples(t *testing.T) {
	db := starDB(t, 4)
	m := crf.New(db)
	ch := NewChain(db, stats.NewRNG(41))
	ch.SetModel(m)
	for _, ss := range []*SampleSet{ch.Run(2, 0), ch.Run(2, -3), ch.RunSharded(2, 0, 2)} {
		for c := 0; c < db.NumClaims; c++ {
			p := ss.Marginal(c)
			if math.IsNaN(p) || p != 0.5 {
				t.Fatalf("empty-sample marginal[%d] = %v, want 0.5", c, p)
			}
		}
	}
	res := ch.RunComponent(db.ComponentOf(0), 1, 0)
	for i, p := range res.Marginals {
		if math.IsNaN(p) || p != 0.5 {
			t.Fatalf("RunComponent(samples=0) marginal[%d] = %v, want 0.5", i, p)
		}
	}
	res = ch.RunComponent(db.ComponentOf(0), 1, -1)
	for i, p := range res.Marginals {
		if math.IsNaN(p) {
			t.Fatalf("RunComponent(samples=-1) marginal[%d] is NaN", i)
		}
	}
}

func TestRunComponentIntoReusesBuffer(t *testing.T) {
	db := starDB(t, 6)
	m := crf.New(db)
	ch := NewChain(db, stats.NewRNG(43))
	ch.SetModel(m)
	comp := db.ComponentOf(0)
	buf := make([]float64, 0, db.NumClaims)
	res := ch.RunComponentInto(buf, comp, 2, 4)
	if &res.Marginals[0] != &buf[:1][0] {
		t.Fatal("RunComponentInto did not reuse the provided buffer")
	}
	if len(res.Marginals) != len(res.Members) {
		t.Fatalf("marginals/members mismatch: %d vs %d", len(res.Marginals), len(res.Members))
	}
}

func TestSyncLabelsMatchesInitFromState(t *testing.T) {
	db := denseDB(t, 7)
	m := crf.New(db)
	theta := make([]float64, m.Dim())
	theta[0] = 0.4
	m.SetTheta(theta)
	state := factdb.NewState(db.NumClaims)
	for c := 0; c < db.NumClaims; c += 2 {
		state.SetLabel(c, c%4 == 0)
	}

	chInit := NewChain(db, stats.NewRNG(47))
	chInit.SetModel(m)
	chInit.InitFromState(state)

	chSync := NewChain(db, stats.NewRNG(47))
	chSync.SetModel(m)
	chSync.SyncLabels(state)

	// Labelled claims and frozen flags must agree exactly between the two
	// construction paths.
	for c := 0; c < db.NumClaims; c++ {
		if chInit.frozen[c] != chSync.frozen[c] {
			t.Fatalf("frozen[%d]: init %v, sync %v", c, chInit.frozen[c], chSync.frozen[c])
		}
		if v, ok := state.Label(c); ok {
			if chInit.x[c] != v || chSync.x[c] != v {
				t.Fatalf("labelled claim %d not clamped: init %v, sync %v, want %v", c, chInit.x[c], chSync.x[c], v)
			}
		}
	}
	// Both chains' agreement counters must be consistent with their own
	// assignment (SyncLabels maintains them incrementally, InitFromState
	// recounts).
	for _, ch := range []*Chain{chInit, chSync} {
		want := make([]int32, len(db.Sources))
		for _, cl := range db.Cliques {
			if ch.x[cl.Claim] == (cl.Stance == factdb.Support) {
				want[cl.Source]++
			}
		}
		for s := range want {
			if want[s] != ch.agree[s] {
				t.Fatalf("agree[%d] = %d, want %d", s, ch.agree[s], want[s])
			}
		}
	}
	// With every claim labelled the two paths are bit-identical: no RNG
	// draw is needed, so the sampled-vs-kept distinction vanishes.
	full := factdb.NewState(db.NumClaims)
	for c := 0; c < db.NumClaims; c++ {
		full.SetLabel(c, c%3 != 0)
	}
	chA := NewChain(db, stats.NewRNG(53))
	chA.SetModel(m)
	chA.InitFromState(full)
	chB := NewChain(db, stats.NewRNG(53))
	chB.SetModel(m)
	chB.SyncLabels(full)
	for c := 0; c < db.NumClaims; c++ {
		if chA.x[c] != chB.x[c] || chA.frozen[c] != chB.frozen[c] {
			t.Fatalf("fully labelled state diverged at claim %d", c)
		}
	}
	for s := range chA.agree {
		if chA.agree[s] != chB.agree[s] {
			t.Fatalf("fully labelled agree[%d] diverged: %d vs %d", s, chA.agree[s], chB.agree[s])
		}
	}
}

func TestCopyStateFromResyncsClone(t *testing.T) {
	db := denseDB(t, 6)
	m := crf.New(db)
	ch := NewChain(db, stats.NewRNG(59))
	ch.SetModel(m)
	clone := ch.Clone()
	// Diverge the clone, then churn the parent.
	for i := 0; i < 5; i++ {
		clone.Sweep(nil)
		ch.Sweep(nil)
	}
	clone.CopyStateFrom(ch)
	for c := range ch.x {
		if clone.x[c] != ch.x[c] || clone.frozen[c] != ch.frozen[c] {
			t.Fatalf("claim %d not resynced", c)
		}
	}
	for s := range ch.agree {
		if clone.agree[s] != ch.agree[s] {
			t.Fatalf("agree[%d] not resynced", s)
		}
	}
	if clone.trustW != ch.trustW {
		t.Fatal("trust weight not resynced")
	}
}

func TestReseedMakesRunsReproducible(t *testing.T) {
	db := denseDB(t, 5)
	m := crf.New(db)
	ch := NewChain(db, stats.NewRNG(61))
	ch.SetModel(m)
	comp := db.ComponentOf(0)
	snap := ch.SnapshotComponent(comp)
	ch.Reseed(99)
	a := ch.RunComponent(comp, 2, 6)
	aCopy := append([]float64(nil), a.Marginals...)
	ch.Restore(snap)
	ch.Reseed(99)
	b := ch.RunComponent(comp, 2, 6)
	for i := range aCopy {
		if aCopy[i] != b.Marginals[i] {
			t.Fatalf("reseeded run diverged at member %d: %v vs %v", i, aCopy[i], b.Marginals[i])
		}
	}
}

func TestSampleSetMarginals(t *testing.T) {
	ss := NewSampleSet(3, 4)
	ss.Add([]bool{true, false, true})
	ss.Add([]bool{true, false, false})
	if ss.NumSamples() != 2 {
		t.Fatalf("NumSamples = %d", ss.NumSamples())
	}
	if ss.Marginal(0) != 1 || ss.Marginal(1) != 0 || ss.Marginal(2) != 0.5 {
		t.Fatalf("marginals wrong: %v %v %v", ss.Marginal(0), ss.Marginal(1), ss.Marginal(2))
	}
	empty := NewSampleSet(2, 0)
	if empty.Marginal(0) != 0.5 {
		t.Fatal("empty sample set marginal should be 0.5")
	}
}

func TestDecidePicksJointMode(t *testing.T) {
	// Mirrors the paper's §3.3 example: samples [1,1,0], [1,0,0], [1,1,0]
	// must ground as [1,1,0].
	db := starDB(t, 3)
	state := factdb.NewState(3)
	ss := NewSampleSet(3, 3)
	ss.Add([]bool{true, true, false})
	ss.Add([]bool{true, false, false})
	ss.Add([]bool{true, true, false})
	g := Decide(db, state, ss)
	want := factdb.Grounding{true, true, false}
	for c := range want {
		if g[c] != want[c] {
			t.Fatalf("g[%d] = %v, want %v", c, g[c], want[c])
		}
	}
}

func TestDecideRespectsLabels(t *testing.T) {
	db := starDB(t, 2)
	state := factdb.NewState(2)
	state.SetLabel(0, false)
	ss := NewSampleSet(2, 2)
	ss.Add([]bool{true, true})
	ss.Add([]bool{true, true})
	g := Decide(db, state, ss)
	if g[0] {
		t.Fatal("label must override samples")
	}
	if !g[1] {
		t.Fatal("unlabeled claim should follow samples")
	}
}

func TestDecideEmptySampleSetThresholdsP(t *testing.T) {
	db := starDB(t, 2)
	state := factdb.NewState(2)
	state.SetP(0, 0.9)
	state.SetP(1, 0.1)
	g := Decide(db, state, nil)
	if !g[0] || g[1] {
		t.Fatalf("grounding = %v", g)
	}
}

func TestDecideUniqueConfigsFallsBackToMajority(t *testing.T) {
	db := starDB(t, 2)
	state := factdb.NewState(2)
	ss := NewSampleSet(2, 3)
	ss.Add([]bool{true, true})
	ss.Add([]bool{true, false})
	ss.Add([]bool{false, true})
	// All configs unique; majority per claim: c0 2/3 true, c1 2/3 true.
	g := Decide(db, state, ss)
	if !g[0] || !g[1] {
		t.Fatalf("grounding = %v, want majority [true,true]", g)
	}
}

func TestFreezeUnfreeze(t *testing.T) {
	db := starDB(t, 2)
	m := crf.New(db)
	theta := make([]float64, m.Dim())
	theta[0] = -8
	m.SetTheta(theta)
	ch := NewChain(db, stats.NewRNG(23))
	ch.SetModel(m)
	ch.Freeze(0, true)
	for i := 0; i < 20; i++ {
		ch.Sweep(nil)
	}
	if !ch.Value(0) {
		t.Fatal("frozen claim flipped")
	}
	ch.Unfreeze(0)
	for i := 0; i < 20; i++ {
		ch.Sweep(nil)
	}
	if ch.Value(0) {
		t.Fatal("unfrozen claim should follow strong negative bias")
	}
}

// twoComponentDB builds two isolated components (disjoint sources and
// claims) for isolation tests of the incremental refresh path.
func twoComponentDB(t *testing.T) *factdb.DB {
	t.Helper()
	db := &factdb.DB{
		Sources:   []factdb.Source{{ID: 0}, {ID: 1}},
		NumClaims: 4,
	}
	db.Documents = []factdb.Document{
		{ID: 0, Source: 0, Refs: []factdb.ClaimRef{{Claim: 0, Stance: factdb.Support}}},
		{ID: 1, Source: 0, Refs: []factdb.ClaimRef{{Claim: 1, Stance: factdb.Refute}}},
		{ID: 2, Source: 1, Refs: []factdb.ClaimRef{{Claim: 2, Stance: factdb.Support}}},
		{ID: 3, Source: 1, Refs: []factdb.ClaimRef{{Claim: 3, Stance: factdb.Support}}},
	}
	if err := db.Finalize(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSetShardKeepsCountsConsistent(t *testing.T) {
	db := twoComponentDB(t)
	m := crf.New(db)
	ch := NewChain(db, stats.NewRNG(23))
	ch.SetModel(m)
	ss := ch.Run(5, 16)
	// Overwrite component A's bits in every sample with a fixed pattern,
	// then verify the counts still equal a recount from the raw bits.
	members := db.ComponentMembers(db.ComponentOf(0))
	x := make([]bool, db.NumClaims)
	for k := 0; k < ss.NumSamples(); k++ {
		for i, c := range members {
			x[c] = (k+i)%2 == 0
		}
		ss.SetShard(k, members, x)
	}
	for c := 0; c < db.NumClaims; c++ {
		n := 0
		for k := 0; k < ss.NumSamples(); k++ {
			if ss.bit(k, c) {
				n++
			}
		}
		want := float64(n) / float64(ss.NumSamples())
		if got := ss.Marginal(c); got != want {
			t.Fatalf("claim %d: Marginal = %v, recount = %v", c, got, want)
		}
	}
}

func TestRefreshComponentOnlyTouchesComponent(t *testing.T) {
	db := twoComponentDB(t)
	m := crf.New(db)
	ch := NewChain(db, stats.NewRNG(29))
	ch.SetModel(m)
	ss := ch.Run(5, 12)
	compA, compB := db.ComponentOf(0), db.ComponentOf(2)
	if compA == compB {
		t.Fatal("expected two components")
	}
	// Record component B's bits and the chain's B state.
	membersB := db.ComponentMembers(compB)
	bitsBefore := make([][]bool, ss.NumSamples())
	for k := range bitsBefore {
		for _, c := range membersB {
			bitsBefore[k] = append(bitsBefore[k], ss.bit(k, int(c)))
		}
	}
	xBefore := []bool{ch.Value(2), ch.Value(3)}
	rngBefore := *ch.rng

	ch.RefreshComponent(ss, compA, 4, 99)

	for k := range bitsBefore {
		for i, c := range membersB {
			if ss.bit(k, int(c)) != bitsBefore[k][i] {
				t.Fatalf("sample %d: foreign claim %d bit changed", k, c)
			}
		}
	}
	if ch.Value(2) != xBefore[0] || ch.Value(3) != xBefore[1] {
		t.Fatal("RefreshComponent touched foreign claims")
	}
	if *ch.rng != rngBefore {
		t.Fatal("RefreshComponent advanced the chain's own RNG stream")
	}

	// Determinism: the same (state, component, seed) refresh on an
	// identically prepared chain yields identical bits.
	ch2 := NewChain(db, stats.NewRNG(29))
	ch2.SetModel(m)
	ss2 := ch2.Run(5, 12)
	ch2.RefreshComponent(ss2, compA, 4, 99)
	for c := 0; c < db.NumClaims; c++ {
		if ss.Marginal(c) != ss2.Marginal(c) {
			t.Fatalf("claim %d: refresh not deterministic (%v vs %v)", c, ss.Marginal(c), ss2.Marginal(c))
		}
	}
}
