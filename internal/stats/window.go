package stats

// WindowedHist is a rolling-window view over LogHist: observations land
// in fixed-width time slots and reads merge only the slots that fall
// inside the window ending at the read time, so a quantile reflects
// recent behaviour instead of the whole process lifetime. It exists for
// the serving SLO controller, whose decisions must follow the *current*
// answer-latency p99 — a cumulative histogram would keep a long-past
// overload breaching the SLO forever.
//
// Timestamps are caller-supplied float64 seconds on any monotone clock
// (wall seconds since boot, or a discrete-event simulation's virtual
// time), which is what lets the same controller run under both. Slots
// are recycled in place: writing into a slot whose stored time range has
// fallen out of the window resets it first, so a WindowedHist costs
// O(slots) memory regardless of uptime. Not safe for concurrent use;
// callers guard it.
type WindowedHist struct {
	slotDur float64
	slots   []LogHist
	// stamps[i] is the absolute slot number (floor(t/slotDur)) whose
	// observations slots[i] currently holds; -1 marks never-used.
	stamps []int64
}

// NewWindowedHist creates a window of windowSeconds split into slots
// equal slots (minimum 1 each; windowSeconds defaults to 10).
func NewWindowedHist(windowSeconds float64, slots int) *WindowedHist {
	if windowSeconds <= 0 {
		windowSeconds = 10
	}
	if slots < 1 {
		slots = 1
	}
	w := &WindowedHist{
		slotDur: windowSeconds / float64(slots),
		slots:   make([]LogHist, slots),
		stamps:  make([]int64, slots),
	}
	for i := range w.stamps {
		w.stamps[i] = -1
	}
	return w
}

// SlotSeconds returns the width of one slot — the granularity at which
// old observations age out of the window.
func (w *WindowedHist) SlotSeconds() float64 { return w.slotDur }

func (w *WindowedHist) slotNumber(t float64) int64 {
	if t < 0 {
		t = 0
	}
	return int64(t / w.slotDur)
}

// Add records one observation at time t (seconds). A slot holding
// observations from an earlier rotation is reset before reuse.
func (w *WindowedHist) Add(t, x float64) {
	sn := w.slotNumber(t)
	i := int(sn % int64(len(w.slots)))
	if w.stamps[i] != sn {
		w.slots[i] = LogHist{}
		w.stamps[i] = sn
	}
	w.slots[i].Add(x)
}

// merged collects the slots alive at time t into one histogram.
func (w *WindowedHist) merged(t float64) *LogHist {
	sn := w.slotNumber(t)
	lo := sn - int64(len(w.slots)) + 1
	var h LogHist
	for i := range w.slots {
		if w.stamps[i] >= lo && w.stamps[i] <= sn {
			h.Merge(&w.slots[i])
		}
	}
	return &h
}

// Count returns the number of observations inside the window ending at t.
func (w *WindowedHist) Count(t float64) int64 {
	return w.merged(t).Count()
}

// Quantile estimates the q-th quantile over the window ending at t. The
// second return distinguishes "no observations in the window" (ok =
// false) from a genuine zero — an empty window is absence of signal, not
// a zero-latency system, and the SLO controller must treat the two
// differently (an idle server is not in breach).
func (w *WindowedHist) Quantile(t, q float64) (float64, bool) {
	h := w.merged(t)
	if h.Count() == 0 {
		return 0, false
	}
	return h.Quantile(q), true
}

// Summary digests the window ending at t; ok = false reports an empty
// window (no signal).
func (w *WindowedHist) Summary(t float64) (Summary, bool) {
	h := w.merged(t)
	if h.Count() == 0 {
		return Summary{}, false
	}
	return h.Summary(), true
}

// Buckets exports the occupied log-buckets of the window ending at t,
// ascending — the windowed analogue of LogHist.Buckets, so a scraper
// can map the rolling view onto cumulative exposition buckets exactly
// like the cumulative histograms.
func (w *WindowedHist) Buckets(t float64) []HistBucket {
	return w.merged(t).Buckets()
}

// Reset empties every slot.
func (w *WindowedHist) Reset() {
	for i := range w.slots {
		w.slots[i] = LogHist{}
		w.stamps[i] = -1
	}
}
