package stats

import (
	"math"
	"sort"
)

// histGrowth is the geometric growth factor between LogHist bucket
// boundaries: 2^(1/8), i.e. eight buckets per doubling (~9% relative
// resolution) — plenty for latency percentiles while keeping the bucket
// set tiny (a microsecond-to-minute range spans ~210 buckets).
const histGrowth = 1.0905077326652577 // 2^(1/8)

// histFloor clamps non-positive or denormal observations; one latency
// nanosecond is far below anything the serving stack can produce.
const histFloor = 1e-9

// LogHist is a log-bucketed histogram for positive, heavy-tailed
// measurements (latencies, response times): counts land in buckets whose
// boundaries grow geometrically, so quantile estimates carry a bounded
// relative error at every magnitude — unlike the fixed-width Histogram
// function in this package, which needs the range up front. The zero
// value is an empty histogram ready for use (the bucket map is created
// lazily); NewLogHist remains for callers that prefer a pointer. Not
// safe for concurrent use; callers guard it.
type LogHist struct {
	counts   map[int]int64
	count    int64
	sum      float64
	min, max float64
}

// NewLogHist returns an empty histogram.
func NewLogHist() *LogHist {
	return &LogHist{counts: make(map[int]int64)}
}

// ensure lazily creates the bucket map, making the zero-value LogHist
// usable: `var h LogHist; h.Add(x)` must count x, not panic on a nil
// map write.
func (h *LogHist) ensure() {
	if h.counts == nil {
		h.counts = make(map[int]int64)
	}
}

// boundaryEps is the snap tolerance of bucketIndex: a value whose
// log-ratio lands within this distance below an integer index is treated
// as sitting exactly on the boundary. Bucket indices span roughly
// [-210, +210] for the supported range, where float64 log arithmetic is
// accurate to ~1e-13, so 1e-9 comfortably covers libm rounding without
// ever absorbing a genuine interior value (adjacent buckets are ~9%
// apart, i.e. a full 1.0 in index space).
const boundaryEps = 1e-9

// bucketIndex returns the bucket holding x: floor(log_growth(x)), with a
// boundary snap. Exact bucket boundaries g^k are not exactly
// representable, and log(x)/log(g) for such values may round to just
// below k on one libm and just above it on another — shifting the value
// into bucket k−1 on some machines and k on others, which in turn moves
// quantile estimates by a whole bucket across platforms. Snapping
// near-integer ratios up makes the boundary assignment deterministic:
// g^k always lands in bucket k.
func bucketIndex(x float64) int {
	r := math.Log(x) / math.Log(histGrowth)
	i := math.Floor(r)
	if r-i >= 1-boundaryEps {
		i++
	}
	return int(i)
}

// bucketLo returns the lower boundary of bucket i.
func bucketLo(i int) float64 {
	return math.Pow(histGrowth, float64(i))
}

// Add incorporates one observation. Non-positive and NaN values are
// clamped to a nanoseconds-scale floor so a clock glitch cannot poison
// the histogram.
func (h *LogHist) Add(x float64) {
	if !(x > histFloor) { // catches NaN too
		x = histFloor
	}
	h.ensure()
	h.counts[bucketIndex(x)]++
	if h.count == 0 || x < h.min {
		h.min = x
	}
	if h.count == 0 || x > h.max {
		h.max = x
	}
	h.count++
	h.sum += x
}

// Count returns the number of observations.
func (h *LogHist) Count() int64 { return h.count }

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *LogHist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation (0 when empty).
func (h *LogHist) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *LogHist) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Merge adds every observation of o into h. Both a nil/empty o and a
// zero-value receiver are handled: merging into `var h LogHist` works.
func (h *LogHist) Merge(o *LogHist) {
	if o == nil || o.count == 0 {
		return
	}
	h.ensure()
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// AbsorbBuckets merges a histogram that was exported as buckets — e.g.
// scraped from another process's /metrics — back into h, alongside the
// digest that travelled with it. Each bucket's count lands at the
// bucket's geometric midpoint, so bucket assignment is exactly
// preserved (the midpoint of an exported [g^i, g^i+1) bucket re-indexes
// to i); count, sum (via the digest mean), min and max come from the
// digest, keeping Mean/Min/Max exact across an export/absorb
// round-trip even though per-observation values are gone.
func (h *LogHist) AbsorbBuckets(bs []HistBucket, s Summary) {
	if s.Count == 0 {
		return
	}
	h.ensure()
	for _, b := range bs {
		if b.Count <= 0 || !(b.Lo > 0) {
			continue
		}
		h.counts[bucketIndex(b.Lo*math.Sqrt(histGrowth))] += b.Count
	}
	if h.count == 0 || s.Min < h.min {
		h.min = s.Min
	}
	if h.count == 0 || s.Max > h.max {
		h.max = s.Max
	}
	h.count += s.Count
	h.sum += s.Mean * float64(s.Count)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) from the buckets:
// the geometric midpoint of the bucket holding the target rank, clamped
// to the exact observed [min, max]. The estimate's relative error is
// bounded by half the bucket growth (~4.5%). Empty histograms yield 0.
func (h *LogHist) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	// Rank of the target observation, 1-based, ceil as in nearest-rank.
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, i := range h.bucketOrder() {
		cum += h.counts[i]
		if cum >= rank {
			mid := bucketLo(i) * math.Sqrt(histGrowth)
			return Clamp(mid, h.min, h.max)
		}
	}
	return h.max
}

// bucketOrder returns the occupied bucket indices in ascending order.
func (h *LogHist) bucketOrder() []int {
	idx := make([]int, 0, len(h.counts))
	for i := range h.counts {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}

// HistBucket is one exported histogram bucket: observations with
// Lo <= x < Hi.
type HistBucket struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count int64   `json:"count"`
}

// Buckets returns the occupied buckets in ascending order.
func (h *LogHist) Buckets() []HistBucket {
	out := make([]HistBucket, 0, len(h.counts))
	for _, i := range h.bucketOrder() {
		out = append(out, HistBucket{Lo: bucketLo(i), Hi: bucketLo(i + 1), Count: h.counts[i]})
	}
	return out
}

// Summary is the percentile digest of a LogHist, the JSON shape shared
// by the loadtest report and the server's /metrics endpoint. All values
// carry the unit of the observations (seconds, for latencies).
type Summary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Summary digests the histogram into count, mean and the standard
// latency percentiles.
func (h *LogHist) Summary() Summary {
	return Summary{
		Count: h.count,
		Mean:  h.Mean(),
		Min:   h.Min(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}
