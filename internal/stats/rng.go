// Package stats provides the statistical toolkit used throughout the fact
// checking framework: deterministic random number streams, correlation
// coefficients (Pearson's r, Kendall's tau-b), histograms, quantile and box
// plot summaries, and small numeric helpers.
//
// Everything in this package is deterministic given a seed, which keeps the
// experiment harness reproducible run to run.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo random number generator
// (splitmix64 seeded xorshift128+). It is not safe for concurrent use; give
// each goroutine its own stream via Split.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded from seed. Two generators with the same
// seed produce identical streams.
func NewRNG(seed int64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed resets the generator in place to the stream NewRNG(seed) would
// produce, without allocating. Worker pools reseed long-lived generators
// per task so results are independent of task-to-worker assignment.
func (r *RNG) Reseed(seed int64) {
	// SplitMix64 to spread the seed over both words, avoiding the all-zero
	// state that xorshift cannot leave.
	x := uint64(seed)
	for i := 0; i < 2; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		if i == 0 {
			r.s0 = z
		} else {
			r.s1 = z
		}
	}
	if r.s0 == 0 && r.s1 == 0 {
		r.s1 = 1
	}
}

// Split derives an independent generator from the current state. The parent
// stream advances, so repeated Split calls yield distinct children.
func (r *RNG) Split() *RNG {
	return NewRNG(int64(r.Uint64() ^ 0xd1b54a32d192ed03))
}

// StreamSeed derives a deterministic child seed for stream id from a base
// draw. Unlike Split it does not advance any generator, so a set of
// parallel workers can seed per-task streams from one shared base without
// coordination — the scheme that keeps sharded sampling bit-identical
// regardless of worker count or task scheduling order.
func StreamSeed(base uint64, id uint64) int64 {
	z := base + 0x9e3779b97f4a7c15*(id+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Box-Muller, polar form).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Beta returns a Beta(alpha, beta) variate using Johnk's/gamma composition.
func (r *RNG) Beta(alpha, beta float64) float64 {
	x := r.Gamma(alpha)
	y := r.Gamma(beta)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Gamma returns a Gamma(shape, 1) variate using Marsaglia-Tsang, valid for
// any positive shape.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("stats: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Boost via Gamma(shape+1) * U^(1/shape).
		return r.Gamma(shape+1) * math.Pow(r.Float64()+1e-300, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u+1e-300) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf draws integers in [0, n) with probability proportional to
// 1/(rank+1)^s using precomputed cumulative weights. Construct once via
// NewZipf and reuse; drawing is a binary search.
type Zipf struct {
	cum []float64
}

// NewZipf builds a Zipf distribution over n ranks with exponent s >= 0.
// s = 0 is uniform; larger s is more skewed.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf with non-positive n")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[n-1] = 1 // guard against rounding
	return &Zipf{cum: cum}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// Draw samples a rank in [0, n).
func (z *Zipf) Draw(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
