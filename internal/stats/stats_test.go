package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if !almostEqual(sum/n, 0.5, 0.01) {
		t.Fatalf("uniform mean = %v, want ~0.5", sum/n)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit only %d distinct values", len(seen))
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	const n = 100000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if !almostEqual(mean, 0, 0.02) {
		t.Errorf("normal mean = %v", mean)
	}
	if !almostEqual(variance, 1, 0.05) {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestBetaMoments(t *testing.T) {
	r := NewRNG(9)
	alpha, beta := 2.0, 5.0
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Beta(alpha, beta)
		if v < 0 || v > 1 {
			t.Fatalf("Beta out of [0,1]: %v", v)
		}
		sum += v
	}
	want := alpha / (alpha + beta)
	if !almostEqual(sum/n, want, 0.01) {
		t.Fatalf("Beta mean = %v, want ~%v", sum/n, want)
	}
}

func TestGammaMean(t *testing.T) {
	r := NewRNG(13)
	for _, shape := range []float64{0.5, 1, 3.5} {
		const n = 60000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += r.Gamma(shape)
		}
		if !almostEqual(sum/n, shape, 0.08*math.Max(1, shape)) {
			t.Errorf("Gamma(%v) mean = %v", shape, sum/n)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	p := r.Perm(50)
	sorted := append([]int(nil), p...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatalf("Perm missing %d", i)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(19)
	z := NewZipf(100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		counts[z.Draw(r)]++
	}
	if counts[0] <= counts[10] {
		t.Fatalf("Zipf not skewed: rank0=%d rank10=%d", counts[0], counts[10])
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := NewRNG(23)
	z := NewZipf(10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw(r)]++
	}
	for i, c := range counts {
		if !almostEqual(float64(c)/n, 0.1, 0.01) {
			t.Fatalf("rank %d frequency %v, want ~0.1", i, float64(c)/n)
		}
	}
}

func TestZipfDrawInRange(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := NewRNG(seed)
		z := NewZipf(17, 1.0)
		for i := 0; i < 100; i++ {
			v := z.Draw(r)
			if v < 0 || v >= 17 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Mean(xs); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); !almostEqual(got, 1.25, 1e-12) {
		t.Errorf("Variance = %v", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty-slice mean/variance should be 0")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", got)
	}
}

func TestPearsonConstantInput(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("Pearson with constant x = %v, want 0", got)
	}
}

func TestPearsonBounded(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := NewRNG(seed)
		n := 3 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		p := Pearson(xs, ys)
		return p >= -1-1e-9 && p <= 1+1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestKendallTauBPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{10, 20, 30, 40, 50}
	if got := KendallTauB(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Errorf("tau = %v, want 1", got)
	}
	rev := []float64{50, 40, 30, 20, 10}
	if got := KendallTauB(xs, rev); !almostEqual(got, -1, 1e-12) {
		t.Errorf("tau = %v, want -1", got)
	}
}

func TestKendallTauBKnownValue(t *testing.T) {
	// Classic example: one discordant swap among 4 items.
	xs := []float64{1, 2, 3, 4}
	ys := []float64{1, 2, 4, 3}
	// 5 concordant, 1 discordant of 6 pairs -> tau = 4/6.
	if got := KendallTauB(xs, ys); !almostEqual(got, 4.0/6.0, 1e-12) {
		t.Errorf("tau = %v, want %v", got, 4.0/6.0)
	}
}

func TestKendallTauBTies(t *testing.T) {
	xs := []float64{1, 1, 2, 2}
	ys := []float64{1, 2, 3, 4}
	got := KendallTauB(xs, ys)
	// concordant = 4 (pairs crossing the tie groups), ties in x = 2.
	// denom = sqrt(6-2)*sqrt(6-0) = sqrt(24); tau = 4/sqrt(24).
	want := 4 / math.Sqrt(24)
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("tau = %v, want %v", got, want)
	}
}

func TestKendallTauBAllTied(t *testing.T) {
	if got := KendallTauB([]float64{1, 1, 1}, []float64{2, 2, 2}); got != 0 {
		t.Errorf("tau = %v, want 0 for all ties", got)
	}
}

func TestKendallBounded(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := NewRNG(seed)
		n := 2 + r.Intn(30)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(r.Intn(5))
			ys[i] = float64(r.Intn(5))
		}
		tau := KendallTauB(xs, ys)
		return tau >= -1-1e-9 && tau <= 1+1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankSequenceTauIdentical(t *testing.T) {
	seq := []int{4, 2, 9, 1}
	if got := RankSequenceTau(seq, seq); !almostEqual(got, 1, 1e-12) {
		t.Errorf("tau = %v, want 1 for identical sequences", got)
	}
}

func TestRankSequenceTauReversed(t *testing.T) {
	a := []int{1, 2, 3, 4, 5}
	b := []int{5, 4, 3, 2, 1}
	if got := RankSequenceTau(a, b); !almostEqual(got, -1, 1e-12) {
		t.Errorf("tau = %v, want -1 for reversed", got)
	}
}

func TestRankSequenceTauPartialOverlap(t *testing.T) {
	// The comparison is over the intersection {1,2,3}, where the orders
	// agree perfectly.
	a := []int{1, 2, 3}
	b := []int{1, 2, 3, 4, 5}
	if got := RankSequenceTau(a, b); !almostEqual(got, 1, 1e-12) {
		t.Errorf("tau = %v, want 1 on agreeing intersection", got)
	}
	// Reversed on the intersection.
	c := []int{9, 3, 2, 1}
	if got := RankSequenceTau(a, c); !almostEqual(got, -1, 1e-12) {
		t.Errorf("tau = %v, want -1 on reversed intersection", got)
	}
}

func TestRankSequenceTauEmpty(t *testing.T) {
	if got := RankSequenceTau(nil, nil); got != 0 {
		t.Errorf("tau = %v, want 0 for empty", got)
	}
	// Fewer than two common items.
	if got := RankSequenceTau([]int{1, 2}, []int{2, 9}); got != 0 {
		t.Errorf("tau = %v, want 0 with one common item", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if got := Quantile(xs, 0.5); !almostEqual(got, 3, 1e-12) {
		t.Errorf("median = %v", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("min = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("max = %v", got)
	}
	if got := Quantile(xs, 0.25); !almostEqual(got, 2, 1e-12) {
		t.Errorf("q1 = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); !almostEqual(got, 5, 1e-12) {
		t.Errorf("interpolated median = %v, want 5", got)
	}
}

func TestBoxOrdering(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		b := Box(xs)
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.05, 0.15, 0.95, 1.5, -1}
	h := Histogram(xs, 0, 1, 10)
	total := 0
	for _, c := range h {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("histogram total = %d, want %d", total, len(xs))
	}
	if h[0] != 2 { // 0.05 and the clamped -1
		t.Errorf("bin0 = %d, want 2", h[0])
	}
	if h[9] != 2 { // 0.95 and the clamped 1.5
		t.Errorf("bin9 = %d, want 2", h[9])
	}
	if h[1] != 1 {
		t.Errorf("bin1 = %d, want 1", h[1])
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Sigmoid(0) = %v", got)
	}
	if got := Sigmoid(100); !almostEqual(got, 1, 1e-9) {
		t.Errorf("Sigmoid(100) = %v", got)
	}
	if got := Sigmoid(-100); !almostEqual(got, 0, 1e-9) {
		t.Errorf("Sigmoid(-100) = %v", got)
	}
	// Symmetry property: sigmoid(-x) = 1 - sigmoid(x).
	err := quick.Check(func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return almostEqual(Sigmoid(-x), 1-Sigmoid(x), 1e-9)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBinaryEntropy(t *testing.T) {
	if got := BinaryEntropy(0.5); !almostEqual(got, math.Log(2), 1e-12) {
		t.Errorf("H(0.5) = %v, want ln 2", got)
	}
	if BinaryEntropy(0) != 0 || BinaryEntropy(1) != 0 {
		t.Error("H(0) and H(1) must be 0")
	}
	// Symmetry and maximum-at-half properties.
	err := quick.Check(func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 1))
		return almostEqual(BinaryEntropy(p), BinaryEntropy(1-p), 1e-9) &&
			BinaryEntropy(p) <= math.Log(2)+1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp(math.Log(2), math.Log(3))
	if !almostEqual(got, math.Log(5), 1e-12) {
		t.Errorf("LogSumExp = %v, want ln 5", got)
	}
	// No overflow for large operands.
	if got := LogSumExp(1000, 1000); !almostEqual(got, 1000+math.Log(2), 1e-9) {
		t.Errorf("LogSumExp large = %v", got)
	}
	if got := LogSumExp(math.Inf(-1), 3); got != 3 {
		t.Errorf("LogSumExp(-inf,3) = %v", got)
	}
}

func TestDotNorm(t *testing.T) {
	if got := Dot([]float64{1, 2}, []float64{3, 4}); got != 11 {
		t.Errorf("Dot = %v", got)
	}
	if got := Norm2([]float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm2 = %v", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(99)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams overlap: %d identical draws", same)
	}
}

func TestSpearman(t *testing.T) {
	// Monotone nonlinear relation: Spearman 1, Pearson < 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	if got := Spearman(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Spearman = %v, want 1", got)
	}
	if got := Pearson(xs, ys); got >= 1-1e-9 {
		t.Fatalf("Pearson = %v, should be < 1 for the cubic", got)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if got := Spearman(xs, rev); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("Spearman = %v, want -1", got)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 1, 2, 3}
	ys := []float64{2, 2, 4, 6}
	got := Spearman(xs, ys)
	if !almostEqual(got, 1, 1e-12) {
		t.Fatalf("tied Spearman = %v, want 1", got)
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := NewRNG(seed)
		n := 2 + r.Intn(60)
		xs := make([]float64, n)
		var o Online
		for i := range xs {
			xs[i] = 10 * r.NormFloat64()
			o.Add(xs[i])
		}
		return o.N() == n &&
			almostEqual(o.Mean(), Mean(xs), 1e-9) &&
			almostEqual(o.Variance(), Variance(xs), 1e-6)
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOnlineZeroValue(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 || o.StdErr() != 0 || o.N() != 0 {
		t.Fatal("zero-value Online not neutral")
	}
	o.Add(5)
	if o.Mean() != 5 || o.Variance() != 0 {
		t.Fatal("single observation stats wrong")
	}
}

func TestReseedMatchesNewRNG(t *testing.T) {
	for _, seed := range []int64{0, 1, -7, 1 << 40} {
		fresh := NewRNG(seed)
		reused := NewRNG(seed + 999)
		reused.Uint64() // advance, then reset in place
		reused.Reseed(seed)
		for i := 0; i < 50; i++ {
			if a, b := fresh.Uint64(), reused.Uint64(); a != b {
				t.Fatalf("seed %d: Reseed stream diverged at draw %d: %x vs %x", seed, i, a, b)
			}
		}
	}
}

func TestStreamSeedDeterministicAndDistinct(t *testing.T) {
	const base = 0xdeadbeefcafe
	seen := map[int64]uint64{}
	for id := uint64(0); id < 200; id++ {
		s := StreamSeed(base, id)
		if s != StreamSeed(base, id) {
			t.Fatal("StreamSeed not deterministic")
		}
		if prev, ok := seen[s]; ok {
			t.Fatalf("StreamSeed collision: ids %d and %d both map to %d", prev, id, s)
		}
		seen[s] = id
	}
	// Different bases must give different stream families.
	if StreamSeed(base, 0) == StreamSeed(base+1, 0) {
		t.Fatal("StreamSeed ignores the base")
	}
}
