package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Pearson returns Pearson's correlation coefficient between xs and ys.
// It panics if the lengths differ and returns 0 when either input is
// constant or has fewer than two points.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// KendallTauB returns Kendall's tau-b rank correlation between xs and ys,
// with the standard tie correction. It panics on length mismatch and
// returns 0 when either sequence is entirely tied or shorter than two.
// The implementation is the O(n^2) pairwise definition, which is exact and
// fast enough for the validation sequences compared in the experiments
// (Table 2 uses at most a few thousand elements).
func KendallTauB(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: KendallTauB length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	var concordant, discordant, tiesX, tiesY int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := sign(xs[i] - xs[j])
			dy := sign(ys[i] - ys[j])
			switch {
			case dx == 0 && dy == 0:
				tiesX++
				tiesY++
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case dx == dy:
				concordant++
			default:
				discordant++
			}
		}
	}
	n0 := int64(n) * int64(n-1) / 2
	denom := math.Sqrt(float64(n0-tiesX)) * math.Sqrt(float64(n0-tiesY))
	if denom == 0 {
		return 0
	}
	return float64(concordant-discordant) / denom
}

func sign(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

// RankSequenceTau compares two validation orderings: seqA and seqB each
// list item identifiers in validation order. The result is Kendall's
// tau-b over the rank vectors restricted to the items present in both
// sequences — items validated by only one process carry no order
// information about the other (treating them as "last" would make every
// disjoint pair artificially discordant). Fewer than two common items
// yield 0.
func RankSequenceTau(seqA, seqB []int) float64 {
	ra := make(map[int]float64, len(seqA))
	for pos, id := range seqA {
		if _, ok := ra[id]; !ok {
			ra[id] = float64(pos)
		}
	}
	rb := make(map[int]float64, len(seqB))
	for pos, id := range seqB {
		if _, ok := rb[id]; !ok {
			rb[id] = float64(pos)
		}
	}
	var ids []int
	for id := range ra {
		if _, ok := rb[id]; ok {
			ids = append(ids, id)
		}
	}
	if len(ids) < 2 {
		return 0
	}
	sort.Ints(ids)
	xs := make([]float64, len(ids))
	ys := make([]float64, len(ids))
	for i, id := range ids {
		xs[i] = ra[id]
		ys[i] = rb[id]
	}
	return KendallTauB(xs, ys)
}

// Spearman returns Spearman's rank correlation coefficient: Pearson's r
// over the (average-tied) ranks of xs and ys.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Spearman length mismatch")
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks returns average ranks (ties share the mean rank).
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j) / 2
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// Online accumulates streaming mean and variance with Welford's
// algorithm; the zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the observation count.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 before any observation).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running population variance.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// StdErr returns the standard error of the mean.
func (o *Online) StdErr() float64 {
	if o.n < 2 {
		return 0
	}
	return math.Sqrt(o.m2/float64(o.n-1)) / math.Sqrt(float64(o.n))
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// BoxStats is the five-number summary backing the box plots of Fig. 11.
type BoxStats struct {
	Min, Q1, Median, Q3, Max float64
}

// Box computes the five-number summary of xs.
func Box(xs []float64) BoxStats {
	return BoxStats{
		Min:    Quantile(xs, 0),
		Q1:     Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		Q3:     Quantile(xs, 0.75),
		Max:    Quantile(xs, 1),
	}
}

// Histogram counts xs into bins equal-width bins over [lo, hi]. Values
// outside the range are clamped into the first or last bin. The returned
// slice has length bins and sums to len(xs).
func Histogram(xs []float64, lo, hi float64, bins int) []int {
	if bins <= 0 {
		panic("stats: Histogram with non-positive bins")
	}
	counts := make([]int, bins)
	if hi <= lo {
		counts[0] = len(xs)
		return counts
	}
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= bins {
			idx = bins - 1
		}
		counts[idx]++
	}
	return counts
}

// Clamp bounds x into [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Sigmoid returns 1/(1+exp(-x)) computed in a numerically stable way.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// BinaryEntropy returns the Shannon entropy (nats) of a Bernoulli(p)
// variable, treating 0*log 0 as 0.
func BinaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log(p) - (1-p)*math.Log(1-p)
}

// LogSumExp returns log(exp(a)+exp(b)) without overflow.
func LogSumExp(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if math.IsInf(a, -1) {
		return b
	}
	return a + math.Log1p(math.Exp(b-a))
}

// Dot returns the inner product of a and b; panics on length mismatch.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
