package stats

import (
	"math"
	"reflect"
	"testing"
)

func TestLogHistEmpty(t *testing.T) {
	h := NewLogHist()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile must be 0")
	}
	s := h.Summary()
	if s.Count != 0 || s.P99 != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if len(h.Buckets()) != 0 {
		t.Fatal("empty histogram has buckets")
	}
}

func TestLogHistQuantileAccuracy(t *testing.T) {
	// Against known uniform data the bucketed quantiles must land within
	// the documented relative error of the exact quantiles.
	h := NewLogHist()
	var xs []float64
	r := NewRNG(5)
	for i := 0; i < 20000; i++ {
		x := 0.001 + 0.999*r.Float64() // spread over three decades
		xs = append(xs, x)
		h.Add(x)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := Quantile(xs, q)
		got := h.Quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > 0.06 {
			t.Fatalf("q%.2f: hist %v vs exact %v (rel err %.3f)", q, got, exact, rel)
		}
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Fatal("extreme quantiles must be the exact min/max")
	}
}

func TestLogHistMeanMinMax(t *testing.T) {
	h := NewLogHist()
	for _, x := range []float64{0.5, 1.5, 4.0} {
		h.Add(x)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Mean()-2.0) > 1e-12 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 0.5 || h.Max() != 4.0 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestLogHistClampsBadValues(t *testing.T) {
	h := NewLogHist()
	h.Add(0)
	h.Add(-3)
	h.Add(math.NaN())
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() > 1e-8 {
		t.Fatalf("clamped max = %v", h.Max())
	}
	if q := h.Quantile(0.5); math.IsNaN(q) || q < 0 {
		t.Fatalf("quantile of clamped data = %v", q)
	}
}

func TestLogHistMerge(t *testing.T) {
	a, b, all := NewLogHist(), NewLogHist(), NewLogHist()
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		x := math.Exp(2 * r.NormFloat64())
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		all.Add(x)
	}
	a.Merge(b)
	a.Merge(nil)          // no-op
	a.Merge(NewLogHist()) // empty no-op
	if a.Count() != all.Count() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merge digest mismatch: %+v vs %+v", a.Summary(), all.Summary())
	}
	if a.Quantile(0.9) != all.Quantile(0.9) {
		t.Fatalf("merged p90 %v != combined p90 %v", a.Quantile(0.9), all.Quantile(0.9))
	}
}

func TestLogHistBuckets(t *testing.T) {
	h := NewLogHist()
	h.Add(1.0)
	h.Add(1.0)
	h.Add(100.0)
	bs := h.Buckets()
	if len(bs) != 2 {
		t.Fatalf("buckets = %v", bs)
	}
	var total int64
	for i, b := range bs {
		if b.Hi <= b.Lo {
			t.Fatalf("bucket %d has Hi <= Lo: %+v", i, b)
		}
		if i > 0 && b.Lo < bs[i-1].Hi {
			t.Fatal("buckets out of order")
		}
		total += b.Count
	}
	if total != h.Count() {
		t.Fatalf("bucket counts sum to %d, want %d", total, h.Count())
	}
	// Each observation lies inside its bucket.
	if !(bs[0].Lo <= 1.0 && 1.0 < bs[0].Hi) {
		t.Fatalf("1.0 outside first bucket %+v", bs[0])
	}
	if !(bs[1].Lo <= 100.0 && 100.0 < bs[1].Hi) {
		t.Fatalf("100.0 outside last bucket %+v", bs[1])
	}
}

func TestLogHistZeroValueUsable(t *testing.T) {
	// The zero value must behave like NewLogHist(): Add and Merge used to
	// panic on the nil bucket map.
	var h LogHist
	h.Add(0.25)
	h.Add(4)
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
	if h.Min() != 0.25 || h.Max() != 4 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}

	var dst LogHist
	src := NewLogHist()
	src.Add(1)
	src.Add(2)
	dst.Merge(src)
	if dst.Count() != 2 || dst.Min() != 1 || dst.Max() != 2 {
		t.Fatalf("merge into zero value: %+v", dst.Summary())
	}

	// Merging a zero-value (and a nil) source is a no-op, not a panic.
	var empty LogHist
	dst.Merge(&empty)
	dst.Merge(nil)
	if dst.Count() != 2 {
		t.Fatalf("Count after empty merges = %d, want 2", dst.Count())
	}
}

func TestLogHistBucketBoundariesExact(t *testing.T) {
	// Exact bucket boundaries g^k must land in bucket k on every libm:
	// without the snap guard, floor(log(g^k)/log(g)) flips to k-1 when
	// the quotient rounds just below k, shifting quantiles by a bucket
	// across machines.
	for k := -60; k <= 60; k++ {
		x := math.Pow(histGrowth, float64(k))
		if got := bucketIndex(x); got != k {
			t.Fatalf("bucketIndex(g^%d) = %d, want %d", k, got, k)
		}
		// The bucket's exported bounds must contain the boundary value.
		h := NewLogHist()
		h.Add(x)
		b := h.Buckets()
		if len(b) != 1 {
			t.Fatalf("k=%d: %d buckets", k, len(b))
		}
		if !(b[0].Lo <= x*(1+1e-12)) || !(x < b[0].Hi) {
			t.Fatalf("k=%d: %v outside [%v, %v)", k, x, b[0].Lo, b[0].Hi)
		}
	}
	// Interior values are untouched by the snap: the geometric midpoint
	// of bucket k stays in bucket k.
	for k := -60; k <= 60; k++ {
		mid := math.Pow(histGrowth, float64(k)+0.5)
		if got := bucketIndex(mid); got != k {
			t.Fatalf("bucketIndex(midpoint of %d) = %d", k, got)
		}
	}
}

// TestLogHistAbsorbBuckets: a histogram exported as buckets+digest
// (the /metrics wire shape) and absorbed into a fresh LogHist must
// reproduce the original's buckets exactly and its count/mean/min/max
// from the digest — the round-trip a shard router's fleet-wide
// aggregation performs.
func TestLogHistAbsorbBuckets(t *testing.T) {
	orig := NewLogHist()
	for i := 1; i <= 200; i++ {
		orig.Add(float64(i) * 0.003)
	}
	var agg LogHist
	agg.AbsorbBuckets(orig.Buckets(), orig.Summary())
	if !reflect.DeepEqual(agg.Buckets(), orig.Buckets()) {
		t.Fatalf("bucket round-trip diverged:\norig: %+v\nagg:  %+v", orig.Buckets(), agg.Buckets())
	}
	os, as := orig.Summary(), agg.Summary()
	if as != os {
		t.Fatalf("summary round-trip diverged:\norig: %+v\nagg:  %+v", os, as)
	}

	// Absorbing a second export merges, like Merge does.
	other := NewLogHist()
	for i := 1; i <= 50; i++ {
		other.Add(float64(i) * 0.1)
	}
	agg.AbsorbBuckets(other.Buckets(), other.Summary())
	merged := NewLogHist()
	merged.Merge(orig)
	merged.Merge(other)
	if !reflect.DeepEqual(agg.Buckets(), merged.Buckets()) {
		t.Fatal("two absorbed exports differ from a direct merge")
	}
	if agg.Count() != merged.Count() || agg.Min() != merged.Min() || agg.Max() != merged.Max() {
		t.Fatalf("absorbed totals diverged: count %d/%d min %v/%v max %v/%v",
			agg.Count(), merged.Count(), agg.Min(), merged.Min(), agg.Max(), merged.Max())
	}

	// An empty export is a no-op.
	agg2 := NewLogHist()
	agg2.AbsorbBuckets(nil, Summary{})
	if agg2.Count() != 0 {
		t.Fatal("empty absorb changed the histogram")
	}
}
