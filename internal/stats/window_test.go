package stats

import (
	"math"
	"testing"
)

// relClose reports a ≈ b within the histogram's bucket resolution
// (half the geometric growth, ~5%).
func relClose(a, b float64) bool {
	if b == 0 {
		return a == 0
	}
	return math.Abs(a-b)/b < 0.06
}

// An empty window must return no-signal, not zero: the SLO controller
// distinguishes "idle server" from "zero-latency server".
func TestWindowedHistEmptyWindowNoSignal(t *testing.T) {
	w := NewWindowedHist(10, 5)
	if _, ok := w.Quantile(0, 0.99); ok {
		t.Fatal("empty window reported a p99 signal")
	}
	if _, ok := w.Summary(3); ok {
		t.Fatal("empty window reported a summary signal")
	}
	if n := w.Count(7); n != 0 {
		t.Fatalf("empty window count = %d, want 0", n)
	}
	// Observations present, but the read time is far past the window:
	// the signal must have aged out entirely.
	w.Add(1, 0.5)
	if _, ok := w.Quantile(100, 0.99); ok {
		t.Fatal("stale observations still produced a p99 signal")
	}
}

// A read merges every live slot before taking the quantile: values
// spread across slots must digest as one population.
func TestWindowedHistMergeThenQuantile(t *testing.T) {
	w := NewWindowedHist(10, 5) // 2s slots
	// 50 fast observations in one slot, 1 slow in another; nearest-rank
	// p99 of the merged 51 lands on the slow one.
	for i := 0; i < 50; i++ {
		w.Add(1, 0.010)
	}
	w.Add(5, 1.0)
	p99, ok := w.Quantile(6, 0.99)
	if !ok {
		t.Fatal("window with observations reported no signal")
	}
	if !relClose(p99, 1.0) {
		t.Fatalf("merged p99 = %v, want ~1.0", p99)
	}
	p50, ok := w.Quantile(6, 0.50)
	if !ok || !relClose(p50, 0.010) {
		t.Fatalf("merged p50 = %v (ok=%v), want ~0.010", p50, ok)
	}
	if n := w.Count(6); n != 51 {
		t.Fatalf("window count = %d, want 51", n)
	}
}

// Rolling reset: as time advances, old slots fall out of the window and
// their buckets are recycled, so the quantile tracks the recent regime.
func TestWindowedHistRollingReset(t *testing.T) {
	w := NewWindowedHist(10, 5) // 2s slots, window [t-10, t]
	// Slow regime at t∈[0,4): would breach any SLO.
	for i := 0; i < 50; i++ {
		w.Add(float64(i%4), 2.0)
	}
	if p99, ok := w.Quantile(4, 0.99); !ok || !relClose(p99, 2.0) {
		t.Fatalf("slow-regime p99 = %v (ok=%v), want ~2.0", p99, ok)
	}
	// Fast regime from t=12 on; by t=15 the slow slots are outside the
	// window and must no longer contribute.
	for i := 0; i < 50; i++ {
		w.Add(12+float64(i%4), 0.005)
	}
	p99, ok := w.Quantile(15, 0.99)
	if !ok {
		t.Fatal("fast regime reported no signal")
	}
	if !relClose(p99, 0.005) {
		t.Fatalf("post-recovery p99 = %v, want ~0.005 (slow regime leaked into the window)", p99)
	}
	// Slot recycling: writing at a time that maps onto a stale slot's
	// array position must reset that slot, not absorb into it.
	if n := w.Count(15); n != 50 {
		t.Fatalf("window count after rollover = %d, want 50", n)
	}
}

// Writes into the same absolute slot accumulate; a later rotation onto
// the same array index starts fresh.
func TestWindowedHistSlotRecycling(t *testing.T) {
	w := NewWindowedHist(4, 2) // 2s slots, 2 of them
	w.Add(0.5, 1.0)
	w.Add(1.5, 1.0) // same slot 0
	if n := w.Count(1.9); n != 2 {
		t.Fatalf("same-slot accumulation count = %d, want 2", n)
	}
	// t=4 maps to slot number 2 → array index 0 again: must reset.
	w.Add(4.1, 0.001)
	if n := w.Count(5); n != 1 {
		t.Fatalf("recycled-slot count = %d, want 1 (old slot contents leaked)", n)
	}
}

// Negative timestamps clamp to zero instead of panicking (a defensive
// guard for clock skew in wall mode).
func TestWindowedHistNegativeTimeClamped(t *testing.T) {
	w := NewWindowedHist(10, 5)
	w.Add(-3, 0.25)
	if p, ok := w.Quantile(0, 0.5); !ok || !relClose(p, 0.25) {
		t.Fatalf("negative-time observation lost: p50 = %v (ok=%v)", p, ok)
	}
	w.Reset()
	if _, ok := w.Quantile(0, 0.5); ok {
		t.Fatal("Reset left observations behind")
	}
}
