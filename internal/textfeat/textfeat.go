// Package textfeat implements the linguistic feature extraction of §8.1:
// "language quality of documents is assessed using common linguistic
// features such as stylistic indicators (e.g., use of modals, inferential
// conjunction) and affective indicators (e.g., sentiments, thematic
// words)" [52]. It also provides a text composer that renders documents
// whose style reflects a latent quality value, giving the synthetic
// corpora a real text → feature extraction path instead of abstract
// feature channels.
package textfeat

import (
	"strings"

	"factcheck/internal/stats"
)

// Small embedded lexicons. Real systems use large curated lists; these
// carry the same signal structure at toy size.
var (
	modals = lexicon("can", "could", "may", "might", "must", "shall",
		"should", "will", "would")
	inferentials = lexicon("therefore", "because", "consequently", "thus",
		"hence", "accordingly", "since", "given")
	hedges = lexicon("maybe", "perhaps", "allegedly", "reportedly",
		"possibly", "apparently", "supposedly", "somewhat", "arguably")
	positives = lexicon("good", "great", "excellent", "amazing", "love",
		"wonderful", "best", "incredible", "fantastic")
	negatives = lexicon("bad", "terrible", "awful", "hate", "worst",
		"horrible", "disgusting", "shocking", "outrageous")
)

func lexicon(words ...string) map[string]bool {
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}

// FeatureNames lists the extracted features in vector order.
func FeatureNames() []string {
	return []string{
		"modal_rate",          // modals per token (stylistic)
		"inferential_rate",    // inferential conjunctions per token (stylistic)
		"hedge_rate",          // hedging terms per token (stylistic)
		"sentiment_polarity",  // (pos − neg) per token (affective)
		"sentiment_intensity", // (pos + neg) per token (affective)
		"exclamation_rate",    // exclamations per sentence (affective)
		"avg_sentence_len",    // tokens per sentence (stylistic)
		"type_token_ratio",    // lexical diversity (stylistic)
	}
}

// Dim returns the feature vector length.
func Dim() int { return len(FeatureNames()) }

// Extract computes the linguistic feature vector of a text. Empty text
// yields the zero vector.
func Extract(text string) []float64 {
	out := make([]float64, Dim())
	tokens := tokenize(text)
	if len(tokens) == 0 {
		return out
	}
	sentences := countSentences(text)
	if sentences == 0 {
		sentences = 1
	}
	var nModal, nInf, nHedge, nPos, nNeg int
	types := make(map[string]bool, len(tokens))
	for _, tok := range tokens {
		types[tok] = true
		switch {
		case modals[tok]:
			nModal++
		case inferentials[tok]:
			nInf++
		case hedges[tok]:
			nHedge++
		}
		if positives[tok] {
			nPos++
		}
		if negatives[tok] {
			nNeg++
		}
	}
	n := float64(len(tokens))
	out[0] = float64(nModal) / n
	out[1] = float64(nInf) / n
	out[2] = float64(nHedge) / n
	out[3] = float64(nPos-nNeg) / n
	out[4] = float64(nPos+nNeg) / n
	out[5] = float64(strings.Count(text, "!")) / float64(sentences)
	out[6] = n / float64(sentences)
	out[7] = float64(len(types)) / n
	return out
}

func tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !(r >= 'a' && r <= 'z') && !(r >= '0' && r <= '9') && r != '\''
	})
}

func countSentences(text string) int {
	n := 0
	for _, r := range text {
		if r == '.' || r == '!' || r == '?' {
			n++
		}
	}
	return n
}

// Composer renders document text whose style reflects a latent quality
// value in [0, 1]: high-quality text is objective and inferential,
// low-quality text hedges, exclaims and emotes. Deterministic per RNG.
type Composer struct {
	rng *stats.RNG
}

// NewComposer creates a composer with its own random stream.
func NewComposer(seed int64) *Composer {
	return &Composer{rng: stats.NewRNG(seed)}
}

var (
	subjects = []string{"the study", "the report", "the agency", "a witness",
		"the document", "the committee", "the survey", "the dataset",
		"the spokesperson", "the analysis"}
	verbs = []string{"shows", "indicates", "confirms", "suggests",
		"demonstrates", "reveals", "states", "documents"}
	objects = []string{"the claim", "the figure", "the incident",
		"the statement", "the measurement", "the policy", "the outcome",
		"the event"}
	qualifiersHi = []string{"therefore", "consequently", "accordingly",
		"given the evidence", "because of this"}
	qualifiersLo = []string{"allegedly", "supposedly", "maybe", "perhaps",
		"reportedly"}
	emotionsLo = []string{"shocking", "outrageous", "incredible",
		"terrible", "amazing"}
	neutralAdj = []string{"consistent", "documented", "verified",
		"measured", "recorded"}
)

// Compose renders a document of the given number of sentences at the
// given quality.
func (c *Composer) Compose(quality float64, sentences int) string {
	if sentences < 1 {
		sentences = 1
	}
	quality = stats.Clamp(quality, 0, 1)
	var b strings.Builder
	for i := 0; i < sentences; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		hiStyle := c.rng.Float64() < quality
		if hiStyle {
			// Objective, inferential register.
			if c.rng.Bernoulli(0.6) {
				b.WriteString(pick(c.rng, qualifiersHi))
				b.WriteString(", ")
			}
			b.WriteString(pick(c.rng, subjects))
			b.WriteByte(' ')
			b.WriteString(pick(c.rng, verbs))
			b.WriteString(" that ")
			b.WriteString(pick(c.rng, objects))
			b.WriteString(" is ")
			b.WriteString(pick(c.rng, neutralAdj))
			b.WriteByte('.')
		} else {
			// Hedged, emotive register.
			b.WriteString(pick(c.rng, qualifiersLo))
			b.WriteByte(' ')
			b.WriteString(pick(c.rng, subjects))
			b.WriteByte(' ')
			b.WriteString(pick(c.rng, verbs))
			b.WriteString(" the ")
			b.WriteString(pick(c.rng, emotionsLo))
			b.WriteString(" thing")
			if c.rng.Bernoulli(0.6) {
				b.WriteByte('!')
			} else {
				b.WriteByte('.')
			}
		}
	}
	return b.String()
}

func pick(r *stats.RNG, xs []string) string { return xs[r.Intn(len(xs))] }
