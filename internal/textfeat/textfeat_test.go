package textfeat

import (
	"strings"
	"testing"
	"testing/quick"

	"factcheck/internal/stats"
)

func TestFeatureNamesMatchDim(t *testing.T) {
	if len(FeatureNames()) != Dim() {
		t.Fatalf("names = %d, dim = %d", len(FeatureNames()), Dim())
	}
	if got := Extract("hello world."); len(got) != Dim() {
		t.Fatalf("vector length = %d", len(got))
	}
}

func TestExtractEmptyText(t *testing.T) {
	for _, txt := range []string{"", "   ", "..."} {
		v := Extract(txt)
		for i, x := range v {
			if x != 0 {
				t.Fatalf("Extract(%q)[%d] = %v, want 0", txt, i, x)
			}
		}
	}
}

func TestExtractKnownCounts(t *testing.T) {
	// 6 tokens, 1 modal, 1 inferential, 1 sentence.
	v := Extract("therefore results may support the claim.")
	if v[0] != 1.0/6 { // modal rate: "may"
		t.Fatalf("modal rate = %v", v[0])
	}
	if v[1] != 1.0/6 { // inferential: "therefore"
		t.Fatalf("inferential rate = %v", v[1])
	}
	if v[6] != 6 { // 6 tokens / 1 sentence
		t.Fatalf("avg sentence len = %v", v[6])
	}
}

func TestExtractSentiment(t *testing.T) {
	pos := Extract("this is a great and wonderful result.")
	neg := Extract("this is a terrible and awful result.")
	if pos[3] <= 0 {
		t.Fatalf("positive polarity = %v", pos[3])
	}
	if neg[3] >= 0 {
		t.Fatalf("negative polarity = %v", neg[3])
	}
	if pos[4] <= 0 || neg[4] <= 0 {
		t.Fatal("intensity should be positive for emotive text")
	}
}

func TestExtractExclamations(t *testing.T) {
	v := Extract("amazing! shocking! unbelievable!")
	if v[5] != 1 {
		t.Fatalf("exclamation rate = %v, want 1 per sentence", v[5])
	}
}

func TestExtractHedges(t *testing.T) {
	v := Extract("allegedly the report maybe confirms it.")
	if v[2] != 2.0/6 {
		t.Fatalf("hedge rate = %v", v[2])
	}
}

func TestTypeTokenRatio(t *testing.T) {
	uniq := Extract("alpha beta gamma delta.")
	rep := Extract("alpha alpha alpha alpha.")
	if uniq[7] != 1 {
		t.Fatalf("unique TTR = %v", uniq[7])
	}
	if rep[7] != 0.25 {
		t.Fatalf("repeated TTR = %v", rep[7])
	}
}

func TestComposerDeterministic(t *testing.T) {
	a := NewComposer(7).Compose(0.8, 5)
	b := NewComposer(7).Compose(0.8, 5)
	if a != b {
		t.Fatal("composer not deterministic per seed")
	}
	c := NewComposer(8).Compose(0.8, 5)
	if a == c {
		t.Fatal("different seeds gave identical text")
	}
}

func TestComposerQualitySeparation(t *testing.T) {
	// Averaged over many documents, high-quality text must show more
	// inferential connectives and fewer hedges/exclamations.
	comp := NewComposer(11)
	var hi, lo []float64
	const docs = 200
	dims := Dim()
	hiSum := make([]float64, dims)
	loSum := make([]float64, dims)
	for i := 0; i < docs; i++ {
		hi = Extract(comp.Compose(0.9, 4))
		lo = Extract(comp.Compose(0.1, 4))
		for j := 0; j < dims; j++ {
			hiSum[j] += hi[j]
			loSum[j] += lo[j]
		}
	}
	if hiSum[1] <= loSum[1] {
		t.Fatalf("inferential: hi %v <= lo %v", hiSum[1]/docs, loSum[1]/docs)
	}
	if hiSum[2] >= loSum[2] {
		t.Fatalf("hedges: hi %v >= lo %v", hiSum[2]/docs, loSum[2]/docs)
	}
	if hiSum[5] >= loSum[5] {
		t.Fatalf("exclamations: hi %v >= lo %v", hiSum[5]/docs, loSum[5]/docs)
	}
	if hiSum[4] >= loSum[4] {
		t.Fatalf("sentiment intensity: hi %v >= lo %v", hiSum[4]/docs, loSum[4]/docs)
	}
}

func TestComposeSentenceCount(t *testing.T) {
	comp := NewComposer(13)
	text := comp.Compose(0.5, 7)
	if got := countSentences(text); got != 7 {
		t.Fatalf("sentences = %d, want 7 in %q", got, text)
	}
	if comp.Compose(0.5, 0) == "" {
		t.Fatal("Compose(0 sentences) should still render one")
	}
}

func TestExtractBoundedRates(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := stats.NewRNG(seed)
		comp := NewComposer(seed)
		v := Extract(comp.Compose(r.Float64(), 1+r.Intn(8)))
		// All rate features live in [0, 1]; polarity in [-1, 1].
		for _, idx := range []int{0, 1, 2, 4, 7} {
			if v[idx] < 0 || v[idx] > 1 {
				return false
			}
		}
		return v[3] >= -1 && v[3] <= 1 && v[6] > 0
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTokenizeApostrophes(t *testing.T) {
	toks := tokenize("Don't can't WON'T")
	if len(toks) != 3 {
		t.Fatalf("tokens = %v", toks)
	}
	if !strings.Contains(toks[0], "'") {
		t.Fatalf("apostrophe lost: %v", toks)
	}
}
