package factdb

import (
	"testing"
	"testing/quick"

	"factcheck/internal/stats"
)

// tinyDB builds a small well-formed database:
//
//	source 0 -> doc 0 (claims 0+,1−), doc 1 (claim 0+)
//	source 1 -> doc 2 (claim 1+)
//	source 2 -> doc 3 (claim 2+)   (claim 2 is isolated from 0,1)
func tinyDB(t *testing.T) *DB {
	t.Helper()
	db := &DB{
		Sources: []Source{
			{ID: 0, Features: []float64{0.9}},
			{ID: 1, Features: []float64{0.2}},
			{ID: 2, Features: []float64{0.5}},
		},
		Documents: []Document{
			{ID: 0, Source: 0, Features: []float64{1, 0}, Refs: []ClaimRef{{Claim: 0, Stance: Support}, {Claim: 1, Stance: Refute}}},
			{ID: 1, Source: 0, Features: []float64{0, 1}, Refs: []ClaimRef{{Claim: 0, Stance: Support}}},
			{ID: 2, Source: 1, Features: []float64{1, 1}, Refs: []ClaimRef{{Claim: 1, Stance: Support}}},
			{ID: 3, Source: 2, Features: []float64{0, 0}, Refs: []ClaimRef{{Claim: 2, Stance: Support}}},
		},
		NumClaims: 3,
	}
	if err := db.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return db
}

func TestFinalizeBuildsCliques(t *testing.T) {
	db := tinyDB(t)
	if len(db.Cliques) != 5 {
		t.Fatalf("cliques = %d, want 5", len(db.Cliques))
	}
	if got := db.Stats(); got.Cliques != 5 || got.Claims != 3 || got.Sources != 3 || got.Documents != 4 {
		t.Fatalf("stats = %+v", got)
	}
	// Claim 0 has two cliques, both from source 0.
	if len(db.ClaimCliques[0]) != 2 {
		t.Fatalf("claim 0 cliques = %d", len(db.ClaimCliques[0]))
	}
	for _, ci := range db.ClaimCliques[0] {
		if db.Cliques[ci].Claim != 0 {
			t.Fatal("clique index mismatch")
		}
	}
}

func TestFinalizeAdjacency(t *testing.T) {
	db := tinyDB(t)
	if got := db.ClaimSources[0]; len(got) != 1 || got[0] != 0 {
		t.Fatalf("claim 0 sources = %v", got)
	}
	if got := db.ClaimSources[1]; len(got) != 2 {
		t.Fatalf("claim 1 sources = %v", got)
	}
	if got := db.SourceClaims[0]; len(got) != 2 {
		t.Fatalf("source 0 claims = %v", got)
	}
}

func TestFinalizeComponents(t *testing.T) {
	db := tinyDB(t)
	if db.NumComponents() != 2 {
		t.Fatalf("components = %d, want 2", db.NumComponents())
	}
	if db.ComponentOf(0) != db.ComponentOf(1) {
		t.Fatal("claims 0 and 1 share source 0, should be one component")
	}
	if db.ComponentOf(2) == db.ComponentOf(0) {
		t.Fatal("claim 2 should be isolated")
	}
	members := db.ComponentMembers(db.ComponentOf(0))
	if len(members) != 2 {
		t.Fatalf("component members = %v", members)
	}
}

func TestFinalizeIdempotent(t *testing.T) {
	db := tinyDB(t)
	n := len(db.Cliques)
	if err := db.Finalize(); err != nil {
		t.Fatal(err)
	}
	if len(db.Cliques) != n {
		t.Fatal("second Finalize duplicated cliques")
	}
}

func TestFinalizeRejectsBadInput(t *testing.T) {
	cases := map[string]*DB{
		"no claims": {
			Sources:   []Source{{ID: 0}},
			Documents: []Document{{ID: 0, Source: 0}},
		},
		"no sources": {
			NumClaims: 1,
		},
		"bad source ref": {
			Sources:   []Source{{ID: 0}},
			Documents: []Document{{ID: 0, Source: 5, Refs: []ClaimRef{{Claim: 0}}}},
			NumClaims: 1,
		},
		"bad claim ref": {
			Sources:   []Source{{ID: 0}},
			Documents: []Document{{ID: 0, Source: 0, Refs: []ClaimRef{{Claim: 7}}}},
			NumClaims: 1,
		},
		"orphan claim": {
			Sources:   []Source{{ID: 0}},
			Documents: []Document{{ID: 0, Source: 0, Refs: []ClaimRef{{Claim: 0}}}},
			NumClaims: 2,
		},
		"sparse ids": {
			Sources:   []Source{{ID: 1}},
			Documents: []Document{{ID: 0, Source: 0, Refs: []ClaimRef{{Claim: 0}}}},
			NumClaims: 1,
		},
		"ragged features": {
			Sources: []Source{{ID: 0, Features: []float64{1}}, {ID: 1, Features: []float64{1, 2}}},
			Documents: []Document{
				{ID: 0, Source: 0, Refs: []ClaimRef{{Claim: 0}}},
			},
			NumClaims: 1,
		},
	}
	for name, db := range cases {
		if err := db.Finalize(); err == nil {
			t.Errorf("%s: Finalize accepted invalid database", name)
		}
	}
}

func TestSharedSources(t *testing.T) {
	db := tinyDB(t)
	if got := db.SharedSources(0, 1); got != 1 {
		t.Fatalf("SharedSources(0,1) = %d, want 1", got)
	}
	if got := db.SharedSources(0, 2); got != 0 {
		t.Fatalf("SharedSources(0,2) = %d, want 0", got)
	}
	if got := db.SharedSources(1, 1); got != 2 {
		t.Fatalf("SharedSources(1,1) = %d, want 2", got)
	}
}

func TestStanceSign(t *testing.T) {
	if Support.Sign() != 1 || Refute.Sign() != -1 {
		t.Fatal("stance signs wrong")
	}
	if Support.String() != "support" || Refute.String() != "refute" {
		t.Fatal("stance strings wrong")
	}
}

func TestStateLabels(t *testing.T) {
	s := NewState(4)
	if s.NumLabeled() != 0 || s.Effort() != 0 {
		t.Fatal("fresh state should be unlabelled")
	}
	for c := 0; c < 4; c++ {
		if s.P(c) != 0.5 {
			t.Fatalf("initial P(%d) = %v", c, s.P(c))
		}
	}
	s.SetLabel(1, true)
	s.SetLabel(2, false)
	if s.P(1) != 1 || s.P(2) != 0 {
		t.Fatal("labels must pin probabilities")
	}
	if v, ok := s.Label(1); !ok || !v {
		t.Fatal("Label(1) wrong")
	}
	if _, ok := s.Label(0); ok {
		t.Fatal("Label(0) should report unlabelled")
	}
	if s.NumLabeled() != 2 {
		t.Fatalf("NumLabeled = %d", s.NumLabeled())
	}
	if got := s.Effort(); got != 0.5 {
		t.Fatalf("Effort = %v", got)
	}
	if got := s.Unlabeled(); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("Unlabeled = %v", got)
	}
	if got := s.LabeledClaims(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("LabeledClaims = %v", got)
	}
}

func TestStateSetPIgnoredWhenLabeled(t *testing.T) {
	s := NewState(2)
	s.SetLabel(0, true)
	s.SetP(0, 0.3)
	if s.P(0) != 1 {
		t.Fatal("SetP must not override user input")
	}
	s.SetP(1, 0.3)
	if s.P(1) != 0.3 {
		t.Fatal("SetP on unlabelled claim ignored")
	}
}

func TestStateClearLabel(t *testing.T) {
	s := NewState(2)
	s.SetLabel(0, true)
	s.ClearLabel(0)
	if s.Labeled(0) || s.NumLabeled() != 0 {
		t.Fatal("ClearLabel did not remove label")
	}
	if s.P(0) != 0.5 {
		t.Fatalf("cleared P = %v, want 0.5", s.P(0))
	}
	// Clearing twice is harmless.
	s.ClearLabel(0)
	if s.NumLabeled() != 0 {
		t.Fatal("double clear corrupted count")
	}
}

func TestStateRelabelDoesNotDoubleCount(t *testing.T) {
	s := NewState(2)
	s.SetLabel(0, true)
	s.SetLabel(0, false)
	if s.NumLabeled() != 1 {
		t.Fatalf("NumLabeled = %d after relabel", s.NumLabeled())
	}
	if s.P(0) != 0 {
		t.Fatal("relabel should update pinned P")
	}
}

func TestStateCloneIndependent(t *testing.T) {
	s := NewState(3)
	s.SetLabel(0, true)
	s.SetP(1, 0.7)
	c := s.Clone()
	c.SetLabel(2, false)
	c.SetP(1, 0.1)
	if s.Labeled(2) {
		t.Fatal("clone leaked labels into parent")
	}
	if s.P(1) != 0.7 {
		t.Fatal("clone leaked probabilities into parent")
	}
	if c.P(0) != 1 || !c.Labeled(0) {
		t.Fatal("clone lost parent state")
	}
}

func TestGroundingDiffAndPrecision(t *testing.T) {
	g := Grounding{true, false, true}
	h := Grounding{true, true, true}
	if got := g.Diff(h); got != 1 {
		t.Fatalf("Diff = %d", got)
	}
	truth := []bool{true, false, false}
	if got := g.Precision(truth); got != 2.0/3.0 {
		t.Fatalf("Precision = %v", got)
	}
	if got := g.Clone(); &got[0] == &g[0] {
		t.Fatal("Clone aliases memory")
	}
}

func TestPrecisionImprovement(t *testing.T) {
	if got := PrecisionImprovement(0.8, 0.6); got != 0.5000000000000001 && got != 0.5 {
		t.Fatalf("R = %v", got)
	}
	if got := PrecisionImprovement(0.9, 1); got != 0 {
		t.Fatalf("R at p0=1 should be 0, got %v", got)
	}
}

func TestStateEffortProperty(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := stats.NewRNG(seed)
		n := 1 + r.Intn(50)
		s := NewState(n)
		labeled := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(0.5) {
				s.SetLabel(i, r.Bernoulli(0.5))
				labeled++
			}
		}
		return s.NumLabeled() == labeled &&
			s.Effort() == float64(labeled)/float64(n) &&
			len(s.Unlabeled())+len(s.LabeledClaims()) == n
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestComponentMembersCoverAllClaims(t *testing.T) {
	db := tinyDB(t)
	seen := make(map[int32]bool)
	for ci := 0; ci < db.NumComponents(); ci++ {
		for _, m := range db.ComponentMembers(ci) {
			if seen[m] {
				t.Fatalf("claim %d in two components", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != db.NumClaims {
		t.Fatalf("components cover %d of %d claims", len(seen), db.NumClaims)
	}
}
