package factdb

import (
	"fmt"

	"factcheck/internal/graph"
)

// Delta is a position-independent corpus increment: new claims, sources
// and documents arriving into a live database. References inside a
// delta use signed addressing so the same encoded delta applies
// regardless of the database's current size — a non-negative id names
// an existing row, and -(i+1) names the delta's own i-th new row:
//
//   - DeltaDocument.Source = -(i+1) → Delta.Sources[i]
//   - DeltaRef.Claim       = -(i+1) → the delta's i-th new claim
//
// Global ids for the delta's rows are assigned densely at apply time
// (DB.Extend), in declaration order, so a delta recorded in a session
// transcript replays to the identical structure.
type Delta struct {
	// NewClaims is the number of claims the delta introduces. Every new
	// claim must be referenced by at least one delta document — the
	// same no-orphan invariant Finalize enforces for the base corpus.
	NewClaims int             `json:"newClaims,omitempty"`
	Sources   []DeltaSource   `json:"sources,omitempty"`
	Documents []DeltaDocument `json:"documents,omitempty"`
	// Truth optionally carries the ground-truth credibility of the
	// delta's new claims (one entry per new claim, or empty). The
	// database itself never reads it — truth lives outside factdb — but
	// evaluation harnesses that grade sessions against synthetic ground
	// truth need the truth of ingested claims to travel with the delta,
	// including through recorded transcripts, so it rides along here.
	Truth []bool `json:"truth,omitempty"`
}

// DeltaSource is a source arriving with the delta; its global id is
// assigned at apply time.
type DeltaSource struct {
	Features []float64 `json:"features"`
}

// DeltaDocument is a document arriving with the delta. Source uses the
// signed addressing described on Delta.
type DeltaDocument struct {
	Source   int        `json:"source"`
	Features []float64  `json:"features"`
	Refs     []DeltaRef `json:"refs"`
}

// DeltaRef is one claim reference of a delta document. Claim uses the
// signed addressing described on Delta.
type DeltaRef struct {
	Claim  int    `json:"claim"`
	Stance Stance `json:"stance,omitempty"`
}

// Empty reports whether the delta carries nothing at all.
func (d *Delta) Empty() bool {
	return d.NewClaims == 0 && len(d.Sources) == 0 && len(d.Documents) == 0
}

// Counts returns the delta's row counts (claims, sources, documents) —
// what applying it adds to a database's totals.
func (d *Delta) Counts() (claims, sources, docs int) {
	return d.NewClaims, len(d.Sources), len(d.Documents)
}

// Validate checks the delta against a database shape without applying
// it: nClaims/nSources are the database's current totals (or virtual
// totals, when earlier deltas are queued ahead of this one) and
// srcDim/docDim its feature dimensionalities. A delta that validates
// against the shape it will be applied at cannot fail in Extend.
func (d *Delta) Validate(nClaims, nSources, srcDim, docDim int) error {
	if d.NewClaims < 0 {
		return fmt.Errorf("factdb: delta declares %d new claims", d.NewClaims)
	}
	if len(d.Truth) != 0 && len(d.Truth) != d.NewClaims {
		return fmt.Errorf("factdb: delta carries %d truth values for %d new claims", len(d.Truth), d.NewClaims)
	}
	for i, s := range d.Sources {
		if len(s.Features) != srcDim {
			return fmt.Errorf("factdb: delta source %d has %d features, want %d", i, len(s.Features), srcDim)
		}
	}
	referenced := make([]bool, d.NewClaims)
	for i, doc := range d.Documents {
		if len(doc.Features) != docDim {
			return fmt.Errorf("factdb: delta document %d has %d features, want %d", i, len(doc.Features), docDim)
		}
		if doc.Source >= 0 {
			if doc.Source >= nSources {
				return fmt.Errorf("factdb: delta document %d references unknown source %d", i, doc.Source)
			}
		} else if j := -doc.Source - 1; j >= len(d.Sources) {
			return fmt.Errorf("factdb: delta document %d references delta source %d of %d", i, j, len(d.Sources))
		}
		for _, ref := range doc.Refs {
			if ref.Stance != Support && ref.Stance != Refute {
				return fmt.Errorf("factdb: delta document %d has invalid stance %d", i, ref.Stance)
			}
			if ref.Claim >= 0 {
				if ref.Claim >= nClaims {
					return fmt.Errorf("factdb: delta document %d references unknown claim %d", i, ref.Claim)
				}
			} else if j := -ref.Claim - 1; j >= d.NewClaims {
				return fmt.Errorf("factdb: delta document %d references delta claim %d of %d", i, j, d.NewClaims)
			} else {
				referenced[j] = true
			}
		}
	}
	for j, ok := range referenced {
		if !ok {
			return fmt.Errorf("factdb: delta claim %d is referenced by no document", j)
		}
	}
	return nil
}

// ExtendResult describes what applying a delta changed, in the terms
// downstream layers need to update themselves incrementally.
type ExtendResult struct {
	// ClaimBase/SourceBase/DocBase are the first global ids assigned to
	// the delta's rows (the database's pre-extend totals).
	ClaimBase  int
	SourceBase int
	DocBase    int
	// Dirty lists the post-extend component ids whose structure or
	// evidence changed — new components, merge winners, and components
	// whose claims gained cliques. Inference and gain caches for these
	// must be refreshed; every other component is untouched.
	Dirty []int
	// Removed lists component ids absorbed into a merge winner. Their
	// slots stay allocated (component ids are stable) but hold no
	// members; nothing maps to them any more.
	Removed []int
	// Rebuilt lists, in ascending order, every claim whose clique set
	// changed — old claims the delta's documents reference plus all new
	// claims. Sampler structures keyed by claim rebuild exactly these.
	Rebuilt []int
}

// insertSorted inserts v into sorted slice s, keeping it sorted and
// duplicate-free.
func insertSorted(s []int32, v int32) []int32 {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo] == v {
		return s
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = v
	return s
}

// Extend applies a delta to a finalized database in place, maintaining
// every derived index incrementally — O(delta + touched components),
// never a full re-Finalize. Connected components are updated with a
// miniature union-find over only the touched pieces: because components
// are closed under shared sources, a source the delta touches
// contributes exactly one existing component (the one all its prior
// claims belong to) plus the delta's own references, so merging those
// per-source groups yields the new partition. Merge winners keep the
// smallest participating component id, so ids of untouched components
// — and of winners — are stable across an extend, which is what lets
// per-component caches survive with only the returned Dirty set
// invalidated.
//
// The delta is fully validated before any mutation: on error the
// database is unchanged.
func (db *DB) Extend(delta Delta) (ExtendResult, error) {
	if !db.finalized {
		return ExtendResult{}, fmt.Errorf("factdb: Extend requires a finalized database")
	}
	if err := delta.Validate(db.NumClaims, len(db.Sources), db.srcFeatDim, db.docFeatDim); err != nil {
		return ExtendResult{}, err
	}

	res := ExtendResult{
		ClaimBase:  db.NumClaims,
		SourceBase: len(db.Sources),
		DocBase:    len(db.Documents),
	}
	resolveSource := func(ref int) int {
		if ref >= 0 {
			return ref
		}
		return res.SourceBase + (-ref - 1)
	}
	resolveClaim := func(ref int) int {
		if ref >= 0 {
			return ref
		}
		return res.ClaimBase + (-ref - 1)
	}

	// The mini union-find's node space: one node per existing component
	// that participates, one node per new claim. Nodes are numbered in
	// first-encounter order over the delta's documents, which is
	// deterministic for a given (db, delta) pair.
	nodeOf := make(map[[2]int]int) // {0, compID} or {1, newClaim} → node
	const (
		kindComp  = 0
		kindClaim = 1
	)
	node := func(kind, id int) int {
		key := [2]int{kind, id}
		if n, ok := nodeOf[key]; ok {
			return n
		}
		n := len(nodeOf)
		nodeOf[key] = n
		return n
	}
	type group struct{ nodes []int }
	groups := make(map[int]*group) // resolved source id → its connectivity group
	groupOrder := make([]int, 0, len(delta.Documents))
	for _, doc := range delta.Documents {
		src := resolveSource(doc.Source)
		g := groups[src]
		if g == nil {
			g = &group{}
			// An existing source anchors its group to the component all
			// its prior claims share (closure under sources: they share
			// exactly one).
			if src < res.SourceBase && len(db.SourceClaims[src]) > 0 {
				g.nodes = append(g.nodes, node(kindComp, int(db.componentOf[db.SourceClaims[src][0]])))
			}
			groups[src] = g
			groupOrder = append(groupOrder, src)
		}
		for _, ref := range doc.Refs {
			c := resolveClaim(ref.Claim)
			if c < res.ClaimBase {
				g.nodes = append(g.nodes, node(kindComp, int(db.componentOf[c])))
			} else {
				g.nodes = append(g.nodes, node(kindClaim, c))
			}
		}
	}
	uf := graph.NewUnionFind(len(nodeOf))
	for _, src := range groupOrder {
		g := groups[src]
		for i := 1; i < len(g.nodes); i++ {
			uf.Union(g.nodes[0], g.nodes[i])
		}
	}

	// Validation passed and the merge plan is computed; mutate.
	for i, s := range delta.Sources {
		db.Sources = append(db.Sources, Source{
			ID:       res.SourceBase + i,
			Features: append([]float64(nil), s.Features...),
		})
		db.SourceClaims = append(db.SourceClaims, nil)
	}
	db.NumClaims += delta.NewClaims
	for i := 0; i < delta.NewClaims; i++ {
		db.ClaimCliques = append(db.ClaimCliques, nil)
		db.ClaimSources = append(db.ClaimSources, nil)
		db.componentOf = append(db.componentOf, -1) // assigned below
	}
	touched := make(map[int]struct{})
	for _, d := range delta.Documents {
		src := resolveSource(d.Source)
		id := len(db.Documents)
		doc := Document{
			ID:       id,
			Source:   src,
			Features: append([]float64(nil), d.Features...),
			Refs:     make([]ClaimRef, 0, len(d.Refs)),
		}
		for _, ref := range d.Refs {
			c := resolveClaim(ref.Claim)
			doc.Refs = append(doc.Refs, ClaimRef{Claim: c, Stance: ref.Stance})
			idx := int32(len(db.Cliques))
			db.Cliques = append(db.Cliques, Clique{
				Claim:  int32(c),
				Doc:    int32(id),
				Source: int32(src),
				Stance: ref.Stance,
			})
			db.ClaimCliques[c] = append(db.ClaimCliques[c], idx)
			db.ClaimSources[c] = insertSorted(db.ClaimSources[c], int32(src))
			db.SourceClaims[src] = insertSorted(db.SourceClaims[src], int32(c))
			touched[c] = struct{}{}
		}
		db.Documents = append(db.Documents, doc)
	}

	// Resolve each merged set to its final component: the smallest
	// participating old id wins (stable ids), a set with no old
	// component gets a fresh slot. Components() orders sets by smallest
	// node index — deterministic.
	byKind := make([][2]int, len(nodeOf))
	//lint:allow detrand inverse permutation: nodeOf is a bijection, every n written exactly once, so the result is iteration-order independent
	for key, n := range nodeOf {
		byKind[n] = key
	}
	for _, set := range uf.Components() {
		var oldComps, newClaims []int
		for _, n := range set {
			if key := byKind[n]; key[0] == kindComp {
				oldComps = append(oldComps, key[1])
			} else {
				newClaims = append(newClaims, key[1])
			}
		}
		winner := -1
		for _, oc := range oldComps {
			if winner < 0 || oc < winner {
				winner = oc
			}
		}
		if winner < 0 {
			winner = len(db.componentMembers)
			db.componentMembers = append(db.componentMembers, nil)
			db.componentSources = append(db.componentSources, nil)
		}
		var members []int32
		for _, oc := range oldComps {
			members = append(members, db.componentMembers[oc]...)
			if oc != winner {
				db.componentMembers[oc] = nil
				db.componentSources[oc] = nil
				res.Removed = append(res.Removed, oc)
			}
		}
		for _, c := range newClaims {
			members = append(members, int32(c))
		}
		sortInt32s(members)
		for _, c := range members {
			db.componentOf[c] = int32(winner)
		}
		db.componentMembers[winner] = members
		// Recompute the component's distinct sources in the same order
		// Finalize produces: members ascending, each claim's sorted
		// sources, first occurrence kept.
		seen := make(map[int32]struct{})
		var srcs []int32
		for _, c := range members {
			for _, s := range db.ClaimSources[c] {
				if _, ok := seen[s]; !ok {
					seen[s] = struct{}{}
					srcs = append(srcs, s)
				}
			}
		}
		db.componentSources[winner] = srcs
		res.Dirty = append(res.Dirty, winner)
	}
	sortInts(res.Dirty)
	sortInts(res.Removed)

	res.Rebuilt = make([]int, 0, len(touched))
	for c := range touched {
		res.Rebuilt = append(res.Rebuilt, c)
	}
	sortInts(res.Rebuilt)
	return res, nil
}

func sortInts(s []int) {
	for a := 1; a < len(s); a++ {
		for b := a; b > 0 && s[b-1] > s[b]; b-- {
			s[b-1], s[b] = s[b], s[b-1]
		}
	}
}

func sortInt32s(s []int32) {
	for a := 1; a < len(s); a++ {
		for b := a; b > 0 && s[b-1] > s[b]; b-- {
			s[b-1], s[b] = s[b], s[b-1]
		}
	}
}
