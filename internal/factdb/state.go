package factdb

// State is the probabilistic part P of a fact database Q = ⟨S, D, C, P⟩
// together with the user-input bookkeeping of §3.2: which claims are
// labelled (C_L) and the label values. P(c) is the probability that claim
// c is credible; for labelled claims P(c) is pinned to 0 or 1 by the user
// input.
type State struct {
	p       []float64
	labeled []bool
	label   []bool
	nLabels int
}

// NewState creates the maximum-entropy initial state for n claims:
// P(c) = 0.5 everywhere and no labels (§8.1, "model parameters are
// initialised with 0.5").
func NewState(n int) *State {
	s := &State{
		p:       make([]float64, n),
		labeled: make([]bool, n),
		label:   make([]bool, n),
	}
	for i := range s.p {
		s.p[i] = 0.5
	}
	return s
}

// Len returns the number of claims.
func (s *State) Len() int { return len(s.p) }

// P returns the credibility probability of claim c.
func (s *State) P(c int) float64 { return s.p[c] }

// SetP updates the credibility probability of an unlabelled claim; for a
// labelled claim the call is ignored, since user input pins P (§2.1).
func (s *State) SetP(c int, p float64) {
	if s.labeled[c] {
		return
	}
	s.p[c] = p
}

// Grow appends n unlabelled claims at the maximum-entropy prior
// P = 0.5, mirroring NewState for the rows a corpus delta adds.
func (s *State) Grow(n int) {
	for i := 0; i < n; i++ {
		s.p = append(s.p, 0.5)
		s.labeled = append(s.labeled, false)
		s.label = append(s.label, false)
	}
}

// Labeled reports whether claim c carries user input (c ∈ C_L).
func (s *State) Labeled(c int) bool { return s.labeled[c] }

// Label returns the user-provided credibility of claim c; the second
// result is false when c is unlabelled.
func (s *State) Label(c int) (bool, bool) {
	if !s.labeled[c] {
		return false, false
	}
	return s.label[c], true
}

// SetLabel records user input v for claim c: the claim moves from C_U to
// C_L and P(c) is pinned to 1 (confirmed) or 0 (non-credible).
func (s *State) SetLabel(c int, v bool) {
	if !s.labeled[c] {
		s.nLabels++
	}
	s.labeled[c] = true
	s.label[c] = v
	if v {
		s.p[c] = 1
	} else {
		s.p[c] = 0
	}
}

// ClearLabel removes the user input for claim c, returning it to C_U with
// a maximum-entropy probability. Used by the leave-one-out confirmation
// check (§5.2) and by k-fold cross validation (§6.1).
func (s *State) ClearLabel(c int) {
	if s.labeled[c] {
		s.nLabels--
	}
	s.labeled[c] = false
	s.p[c] = 0.5
}

// NumLabeled returns |C_L|.
func (s *State) NumLabeled() int { return s.nLabels }

// Effort returns the user effort E = |C_L| / |C| (§8.1).
func (s *State) Effort() float64 {
	if len(s.p) == 0 {
		return 0
	}
	return float64(s.nLabels) / float64(len(s.p))
}

// Unlabeled returns the claims of C_U in ascending order.
func (s *State) Unlabeled() []int {
	out := make([]int, 0, len(s.p)-s.nLabels)
	for c := range s.p {
		if !s.labeled[c] {
			out = append(out, c)
		}
	}
	return out
}

// LabeledClaims returns the claims of C_L in ascending order.
func (s *State) LabeledClaims() []int {
	out := make([]int, 0, s.nLabels)
	for c := range s.p {
		if s.labeled[c] {
			out = append(out, c)
		}
	}
	return out
}

// Clone returns an independent deep copy; hypothetical (what-if) inference
// for information gain operates on clones.
func (s *State) Clone() *State {
	c := &State{
		p:       append([]float64(nil), s.p...),
		labeled: append([]bool(nil), s.labeled...),
		label:   append([]bool(nil), s.label...),
		nLabels: s.nLabels,
	}
	return c
}

// Grounding is a trusted-fact assignment g : C → {0, 1} (§2.1); true means
// the claim is deemed credible.
type Grounding []bool

// NewGrounding returns an all-false grounding over n claims.
func NewGrounding(n int) Grounding { return make(Grounding, n) }

// Clone returns a copy of g.
func (g Grounding) Clone() Grounding { return append(Grounding(nil), g...) }

// Diff returns |{c | g(c) ≠ other(c)}|, the amount-of-changes indicator of
// §6.1. It panics when lengths differ.
func (g Grounding) Diff(other Grounding) int {
	if len(g) != len(other) {
		panic("factdb: grounding length mismatch")
	}
	n := 0
	for i := range g {
		if g[i] != other[i] {
			n++
		}
	}
	return n
}

// Precision returns P_i = |{c | g(c) = truth(c)}| / |C| — the paper's
// precision of a grounding against the correct assignment g* (§8.1).
func (g Grounding) Precision(truth []bool) float64 {
	if len(g) != len(truth) {
		panic("factdb: truth length mismatch")
	}
	if len(g) == 0 {
		return 0
	}
	n := 0
	for i := range g {
		if g[i] == truth[i] {
			n++
		}
	}
	return float64(n) / float64(len(g))
}

// PrecisionImprovement returns R_i = (P_i − P_0) / (1 − P_0), the
// normalised precision of §8.1; it is 0 when P_0 = 1.
func PrecisionImprovement(pi, p0 float64) float64 {
	if p0 >= 1 {
		return 0
	}
	return (pi - p0) / (1 - p0)
}
