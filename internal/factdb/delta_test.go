package factdb

import (
	"reflect"
	"testing"
)

// freshDelta adds one new source publishing one document about one new
// claim — no contact with existing rows, so it must land in a fresh
// component slot.
func freshDelta() Delta {
	return Delta{
		NewClaims: 1,
		Sources:   []DeltaSource{{Features: []float64{0.7}}},
		Documents: []DeltaDocument{{
			Source:   -1,
			Features: []float64{1, 0},
			Refs:     []DeltaRef{{Claim: -1, Stance: Support}},
		}},
		Truth: []bool{true},
	}
}

func TestExtendFreshComponent(t *testing.T) {
	db := tinyDB(t)
	res, err := db.Extend(freshDelta())
	if err != nil {
		t.Fatal(err)
	}
	if res.ClaimBase != 3 || res.SourceBase != 3 || res.DocBase != 4 {
		t.Fatalf("bases = %+v", res)
	}
	if db.NumClaims != 4 || len(db.Sources) != 4 || len(db.Documents) != 5 {
		t.Fatalf("totals = %d/%d/%d", db.NumClaims, len(db.Sources), len(db.Documents))
	}
	if db.NumComponents() != 3 {
		t.Fatalf("components = %d, want 3 (fresh slot)", db.NumComponents())
	}
	if got := db.ComponentOf(3); got != 2 {
		t.Fatalf("new claim in component %d, want fresh slot 2", got)
	}
	if !reflect.DeepEqual(res.Dirty, []int{2}) || len(res.Removed) != 0 {
		t.Fatalf("dirty/removed = %v/%v", res.Dirty, res.Removed)
	}
	if !reflect.DeepEqual(res.Rebuilt, []int{3}) {
		t.Fatalf("rebuilt = %v", res.Rebuilt)
	}
	// Old components are untouched: ids, members and adjacency stable.
	if db.ComponentOf(0) != db.ComponentOf(1) || db.ComponentOf(0) == db.ComponentOf(3) {
		t.Fatal("extend perturbed existing components")
	}
	if got := db.SourceClaims[3]; len(got) != 1 || got[0] != 3 {
		t.Fatalf("new source claims = %v", got)
	}
	if got := db.ClaimSources[3]; len(got) != 1 || got[0] != 3 {
		t.Fatalf("new claim sources = %v", got)
	}
}

// TestExtendMergesComponents: one new source citing claims from both
// existing components plus a new claim must merge everything into the
// smallest participating component id, leaving the loser's slot empty
// but allocated (stable ids), and report the merge.
func TestExtendMergesComponents(t *testing.T) {
	db := tinyDB(t)
	comp0, comp2 := db.ComponentOf(0), db.ComponentOf(2)
	d := Delta{
		NewClaims: 1,
		Sources:   []DeltaSource{{Features: []float64{0.4}}},
		Documents: []DeltaDocument{{
			Source:   -1,
			Features: []float64{0, 1},
			Refs: []DeltaRef{
				{Claim: 0, Stance: Support},
				{Claim: 2, Stance: Refute},
				{Claim: -1, Stance: Support},
			},
		}},
	}
	res, err := db.Extend(d)
	if err != nil {
		t.Fatal(err)
	}
	winner := comp0
	if comp2 < winner {
		winner = comp2
	}
	loser := comp0 + comp2 - winner
	if !reflect.DeepEqual(res.Dirty, []int{winner}) {
		t.Fatalf("dirty = %v, want [%d]", res.Dirty, winner)
	}
	if !reflect.DeepEqual(res.Removed, []int{loser}) {
		t.Fatalf("removed = %v, want [%d]", res.Removed, loser)
	}
	if db.NumComponents() != 2 {
		t.Fatalf("components = %d, slots must stay allocated", db.NumComponents())
	}
	for c := 0; c < db.NumClaims; c++ {
		if db.ComponentOf(c) != winner {
			t.Fatalf("claim %d in component %d, want %d", c, db.ComponentOf(c), winner)
		}
	}
	if got := db.ComponentMembers(winner); len(got) != 4 {
		t.Fatalf("winner members = %v", got)
	}
	if got := db.ComponentMembers(loser); len(got) != 0 {
		t.Fatalf("loser members = %v, want empty", got)
	}
	// Rebuilt lists the referenced old claims plus the new claim.
	if !reflect.DeepEqual(res.Rebuilt, []int{0, 2, 3}) {
		t.Fatalf("rebuilt = %v", res.Rebuilt)
	}
	// The winner's source list is recomputed over the merged membership.
	if got := db.ComponentSources(winner); len(got) != 4 {
		t.Fatalf("winner sources = %v", got)
	}
}

// TestExtendExistingSourceAnchorsComponent: a document by an existing
// source joins that source's component without a new source row, and
// only that component is dirtied.
func TestExtendExistingSourceAnchorsComponent(t *testing.T) {
	db := tinyDB(t)
	comp2 := db.ComponentOf(2)
	d := Delta{
		NewClaims: 1,
		Documents: []DeltaDocument{{
			Source:   2, // existing, belongs to claim 2's component
			Features: []float64{1, 1},
			Refs:     []DeltaRef{{Claim: -1, Stance: Support}},
		}},
	}
	res, err := db.Extend(d)
	if err != nil {
		t.Fatal(err)
	}
	if db.ComponentOf(3) != comp2 {
		t.Fatalf("new claim in component %d, want %d", db.ComponentOf(3), comp2)
	}
	if !reflect.DeepEqual(res.Dirty, []int{comp2}) || len(res.Removed) != 0 {
		t.Fatalf("dirty/removed = %v/%v", res.Dirty, res.Removed)
	}
	if db.ComponentOf(0) != db.ComponentOf(1) {
		t.Fatal("untouched component perturbed")
	}
}

// TestExtendSignedAddressingIsPositionIndependent: the same encoded
// delta applies at two different database shapes, landing its rows at
// each shape's bases — the property that lets transcripts replay deltas
// regardless of when they were recorded.
func TestExtendSignedAddressingIsPositionIndependent(t *testing.T) {
	d := freshDelta()
	a := tinyDB(t)
	ra, err := a.Extend(d)
	if err != nil {
		t.Fatal(err)
	}

	b := tinyDB(t)
	if _, err := b.Extend(freshDelta()); err != nil { // grow b first
		t.Fatal(err)
	}
	rb, err := b.Extend(d)
	if err != nil {
		t.Fatal(err)
	}
	if ra.ClaimBase != 3 || rb.ClaimBase != 4 {
		t.Fatalf("claim bases = %d/%d", ra.ClaimBase, rb.ClaimBase)
	}
	if rb.SourceBase != 4 || rb.DocBase != 5 {
		t.Fatalf("second apply bases = %+v", rb)
	}
	// Both applies resolve the delta-local refs to their own bases.
	lastA, lastB := a.Documents[len(a.Documents)-1], b.Documents[len(b.Documents)-1]
	if lastA.Source != ra.SourceBase || lastA.Refs[0].Claim != ra.ClaimBase {
		t.Fatalf("first apply resolved refs to %d/%d", lastA.Source, lastA.Refs[0].Claim)
	}
	if lastB.Source != rb.SourceBase || lastB.Refs[0].Claim != rb.ClaimBase {
		t.Fatalf("second apply resolved refs to %d/%d", lastB.Source, lastB.Refs[0].Claim)
	}
}

// TestExtendValidationAtomic: every malformed delta is rejected before
// any mutation — the database stays deep-equal to a pristine copy.
func TestExtendValidationAtomic(t *testing.T) {
	cases := map[string]Delta{
		"negative claims": {NewClaims: -1},
		"truth length": {
			NewClaims: 2,
			Truth:     []bool{true},
			Documents: []DeltaDocument{
				{Source: 0, Features: []float64{0, 0}, Refs: []DeltaRef{{Claim: -1}, {Claim: -2}}},
			},
		},
		"source feature dim": {
			Sources:   []DeltaSource{{Features: []float64{1, 2}}},
			Documents: []DeltaDocument{{Source: -1, Features: []float64{0, 0}, Refs: []DeltaRef{{Claim: 0}}}},
		},
		"doc feature dim": {
			Documents: []DeltaDocument{{Source: 0, Features: []float64{0}, Refs: []DeltaRef{{Claim: 0}}}},
		},
		"unknown source": {
			Documents: []DeltaDocument{{Source: 9, Features: []float64{0, 0}, Refs: []DeltaRef{{Claim: 0}}}},
		},
		"delta source out of range": {
			Documents: []DeltaDocument{{Source: -2, Features: []float64{0, 0}, Refs: []DeltaRef{{Claim: 0}}}},
		},
		"unknown claim": {
			Documents: []DeltaDocument{{Source: 0, Features: []float64{0, 0}, Refs: []DeltaRef{{Claim: 9}}}},
		},
		"delta claim out of range": {
			NewClaims: 1,
			Documents: []DeltaDocument{{Source: 0, Features: []float64{0, 0}, Refs: []DeltaRef{{Claim: -3}}}},
		},
		"invalid stance": {
			Documents: []DeltaDocument{{Source: 0, Features: []float64{0, 0}, Refs: []DeltaRef{{Claim: 0, Stance: 7}}}},
		},
		"orphan new claim": {NewClaims: 1},
	}
	pristine := tinyDB(t)
	for name, d := range cases {
		db := tinyDB(t)
		if _, err := db.Extend(d); err == nil {
			t.Errorf("%s: Extend accepted malformed delta", name)
			continue
		}
		if !reflect.DeepEqual(db, pristine) {
			t.Errorf("%s: failed Extend mutated the database", name)
		}
	}
}

func TestExtendRequiresFinalized(t *testing.T) {
	db := &DB{
		Sources:   []Source{{ID: 0, Features: []float64{1}}},
		Documents: []Document{{ID: 0, Source: 0, Features: []float64{0, 0}, Refs: []ClaimRef{{Claim: 0}}}},
		NumClaims: 1,
	}
	if _, err := db.Extend(freshDelta()); err == nil {
		t.Fatal("Extend accepted an unfinalized database")
	}
}

func TestDeltaCountsAndEmpty(t *testing.T) {
	var zero Delta
	if !zero.Empty() {
		t.Fatal("zero delta not empty")
	}
	d := freshDelta()
	if d.Empty() {
		t.Fatal("fresh delta reported empty")
	}
	c, s, docs := d.Counts()
	if c != 1 || s != 1 || docs != 1 {
		t.Fatalf("counts = %d/%d/%d", c, s, docs)
	}
}
