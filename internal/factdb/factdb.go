// Package factdb defines the probabilistic fact database of §2.1: the sets
// of sources S, documents D and claims C, the clique structure of the CRF
// (§3.1), and the probabilistic state P with user labels. It also defines
// groundings (trusted fact sets) and the precision measures of §8.1.
//
// The package is purely structural; inference lives in the crf, gibbs and
// em packages.
package factdb

import (
	"fmt"

	"factcheck/internal/graph"
)

// Stance describes how a document relates to a claim (§3.1, "Handling
// opposing stances"). A refuting document attaches to the opposing
// variable ¬c of the claim; because ¬c ≡ 1−c in a binary model, the
// non-equality constraint of Eq. 3 holds by construction.
type Stance int8

const (
	// Support means the document asserts the claim is credible.
	Support Stance = iota
	// Refute means the document asserts the claim is not credible.
	Refute
)

// String implements fmt.Stringer.
func (s Stance) String() string {
	if s == Refute {
		return "refute"
	}
	return "support"
}

// Sign returns +1 for Support and −1 for Refute; the factor by which a
// clique's evidence enters the claim's log-odds.
func (s Stance) Sign() float64 {
	if s == Refute {
		return -1
	}
	return 1
}

// ClaimRef links a document to a claim with a stance.
type ClaimRef struct {
	Claim  int
	Stance Stance
}

// Source is a data source (website, user, news provider) with its feature
// vector ⟨f^S_1 .. f^S_mS⟩.
type Source struct {
	ID       int
	Features []float64
}

// Document is a piece of content published by one source, referencing one
// or more claims, with its language-quality feature vector ⟨f^D_1 .. f^D_mD⟩.
type Document struct {
	ID       int
	Source   int
	Features []float64
	Refs     []ClaimRef
}

// Clique is a relation factor π = {c, d, s} of the CRF (§3.1). There is
// one clique per (document, claim reference) pair.
type Clique struct {
	Claim  int32
	Doc    int32
	Source int32
	Stance Stance
}

// DB is the structural part of a probabilistic fact database
// Q = ⟨S, D, C, P⟩. The probabilistic part P lives in State so multiple
// hypothetical states can share one structure (needed for the what-if
// inference behind information gain, §4.2).
type DB struct {
	Sources   []Source
	Documents []Document
	NumClaims int

	// Derived indexes, built by Finalize.
	Cliques      []Clique
	ClaimCliques [][]int32 // clique indices per claim
	SourceClaims [][]int32 // distinct claims per source
	ClaimSources [][]int32 // distinct sources per claim

	componentOf      []int32   // connected component id per claim
	componentMembers [][]int32 // claims per component
	componentSources [][]int32 // distinct sources per component

	srcFeatDim, docFeatDim int
	finalized              bool
}

// SourceFeatureDim returns mS, the source feature dimensionality.
func (db *DB) SourceFeatureDim() int { return db.srcFeatDim }

// DocFeatureDim returns mD, the document feature dimensionality.
func (db *DB) DocFeatureDim() int { return db.docFeatDim }

// Finalize validates the raw structure and builds all derived indexes:
// cliques, per-claim and per-source adjacency, and the connected
// components of the claim graph (two claims are connected when they share
// a source). Finalize must be called before the DB is used for inference;
// it is idempotent.
func (db *DB) Finalize() error {
	if db.finalized {
		return nil
	}
	if db.NumClaims <= 0 {
		return fmt.Errorf("factdb: database has no claims")
	}
	if len(db.Sources) == 0 {
		return fmt.Errorf("factdb: database has no sources")
	}
	for i, s := range db.Sources {
		if s.ID != i {
			return fmt.Errorf("factdb: source %d has ID %d; IDs must be dense", i, s.ID)
		}
		if i == 0 {
			db.srcFeatDim = len(s.Features)
		} else if len(s.Features) != db.srcFeatDim {
			return fmt.Errorf("factdb: source %d has %d features, want %d", i, len(s.Features), db.srcFeatDim)
		}
	}
	seenClaim := make([]bool, db.NumClaims)
	for i, d := range db.Documents {
		if d.ID != i {
			return fmt.Errorf("factdb: document %d has ID %d; IDs must be dense", i, d.ID)
		}
		if d.Source < 0 || d.Source >= len(db.Sources) {
			return fmt.Errorf("factdb: document %d references unknown source %d", i, d.Source)
		}
		if i == 0 {
			db.docFeatDim = len(d.Features)
		} else if len(d.Features) != db.docFeatDim {
			return fmt.Errorf("factdb: document %d has %d features, want %d", i, len(d.Features), db.docFeatDim)
		}
		for _, ref := range d.Refs {
			if ref.Claim < 0 || ref.Claim >= db.NumClaims {
				return fmt.Errorf("factdb: document %d references unknown claim %d", i, ref.Claim)
			}
			seenClaim[ref.Claim] = true
		}
	}
	for c, ok := range seenClaim {
		if !ok {
			return fmt.Errorf("factdb: claim %d is referenced by no document", c)
		}
	}

	// Cliques and adjacency.
	db.ClaimCliques = make([][]int32, db.NumClaims)
	claimSourceSet := make([]map[int32]struct{}, db.NumClaims)
	sourceClaimSet := make([]map[int32]struct{}, len(db.Sources))
	for i := range sourceClaimSet {
		sourceClaimSet[i] = make(map[int32]struct{})
	}
	for i := range claimSourceSet {
		claimSourceSet[i] = make(map[int32]struct{})
	}
	for _, d := range db.Documents {
		for _, ref := range d.Refs {
			idx := int32(len(db.Cliques))
			db.Cliques = append(db.Cliques, Clique{
				Claim:  int32(ref.Claim),
				Doc:    int32(d.ID),
				Source: int32(d.Source),
				Stance: ref.Stance,
			})
			db.ClaimCliques[ref.Claim] = append(db.ClaimCliques[ref.Claim], idx)
			claimSourceSet[ref.Claim][int32(d.Source)] = struct{}{}
			sourceClaimSet[d.Source][int32(ref.Claim)] = struct{}{}
		}
	}
	db.ClaimSources = setsToSlices(claimSourceSet)
	db.SourceClaims = setsToSlices(sourceClaimSet)

	// Connected components over claims via shared sources.
	uf := graph.NewUnionFind(db.NumClaims)
	for _, claims := range db.SourceClaims {
		for i := 1; i < len(claims); i++ {
			uf.Union(int(claims[0]), int(claims[i]))
		}
	}
	db.componentOf = make([]int32, db.NumClaims)
	comps := uf.Components()
	db.componentMembers = make([][]int32, len(comps))
	for ci, members := range comps {
		ms := make([]int32, len(members))
		for i, m := range members {
			db.componentOf[m] = int32(ci)
			ms[i] = int32(m)
		}
		db.componentMembers[ci] = ms
	}
	db.componentSources = make([][]int32, len(comps))
	for ci, members := range db.componentMembers {
		seen := make(map[int32]struct{})
		var srcs []int32
		for _, c := range members {
			for _, s := range db.ClaimSources[c] {
				if _, ok := seen[s]; !ok {
					seen[s] = struct{}{}
					srcs = append(srcs, s)
				}
			}
		}
		db.componentSources[ci] = srcs
	}
	db.finalized = true
	return nil
}

func setsToSlices(sets []map[int32]struct{}) [][]int32 {
	out := make([][]int32, len(sets))
	for i, set := range sets {
		s := make([]int32, 0, len(set))
		for v := range set {
			s = append(s, v)
		}
		// Insertion order of map iteration is random; sort for determinism.
		sortInt32s(s)
		out[i] = s
	}
	return out
}

// ComponentOf returns the connected-component id of claim c.
func (db *DB) ComponentOf(c int) int { return int(db.componentOf[c]) }

// ComponentMembers returns the claims in component id. The returned slice
// must not be modified.
func (db *DB) ComponentMembers(id int) []int32 { return db.componentMembers[id] }

// ComponentSources returns the distinct sources linked to the claims of
// component id. Because components are closed under shared sources, every
// claim of such a source belongs to the component. The returned slice
// must not be modified.
func (db *DB) ComponentSources(id int) []int32 { return db.componentSources[id] }

// NumComponents returns the number of connected components of the claim
// graph; the graph-partitioning optimisation of §5.1 processes these
// independently.
func (db *DB) NumComponents() int { return len(db.componentMembers) }

// SharedSources returns the number of sources that link to both claims a
// and b — the raw ingredient of the correlation matrix M(c, c′) in Eq. 26.
func (db *DB) SharedSources(a, b int) int {
	sa, sb := db.ClaimSources[a], db.ClaimSources[b]
	i, j, n := 0, 0, 0
	for i < len(sa) && j < len(sb) {
		switch {
		case sa[i] < sb[j]:
			i++
		case sa[i] > sb[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Stats summarises the database for logging and experiment output.
type Stats struct {
	Sources, Documents, Claims, Cliques, Components int
}

// Stats returns the size summary of the database.
func (db *DB) Stats() Stats {
	return Stats{
		Sources:    len(db.Sources),
		Documents:  len(db.Documents),
		Claims:     db.NumClaims,
		Cliques:    len(db.Cliques),
		Components: db.NumComponents(),
	}
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("%d sources, %d documents, %d claims, %d cliques, %d components",
		s.Sources, s.Documents, s.Claims, s.Cliques, s.Components)
}
