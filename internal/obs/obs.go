// Package obs is the serving fleet's dependency-free observability
// layer: request trace ids and their context plumbing, per-request
// spans collected into bounded per-session rings, per-stage latency
// histograms, structured-logging helpers over log/slog, and a
// Prometheus text-exposition builder that maps stats.LogHist buckets
// onto native histogram samples.
//
// The package is deliberately passive: nothing in it draws randomness
// from the inference RNG streams, touches session state, or changes
// control flow — instrumentation records what happened and when, never
// what happens next. That passivity is what makes the serving layer's
// trace-neutrality guarantee (selection traces bit-identical with
// observability on or off, see DESIGN.md §16) hold by construction.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
)

// TraceHeader is the HTTP header carrying the request trace id. The
// router mints an id for every request that arrives without one and
// forwards the header on proxy, migration and ingest hops; backends
// mint one themselves when addressed directly. The id is echoed on the
// response and stamped into the JSON error envelope (error.traceId),
// so a client-side failure is joinable with the server's logs and the
// session's span ring.
const TraceHeader = "X-Factcheck-Trace"

// NewTraceID draws a fresh 16-hex-char trace id.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("obs: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether a client-supplied trace id is safe to
// adopt: 1–64 chars of [0-9A-Za-z._-]. Anything else (empty, oversized,
// or carrying exposition/log metacharacters) is replaced with a fresh
// id rather than propagated.
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

type traceKey struct{}

// WithTrace returns ctx carrying the trace id.
func WithTrace(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceID returns the trace id carried by ctx ("" when none).
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// ParseLevel maps a -log-level flag value onto a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds the fleet's standard structured logger: JSON lines
// to w at the given level, every record stamped with the component
// name ("factcheck-server", "factcheck-router", ...).
func NewLogger(w io.Writer, component string, level slog.Level) *slog.Logger {
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
	return slog.New(h).With("component", component)
}

// Discard returns a logger that drops everything — the default for
// injectable logger fields, so observability stays opt-in and silent
// paths stay silent.
func Discard() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}
