package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugServer starts the opt-in diagnostics listener: net/http/pprof
// handlers registered explicitly on a private mux, never the process's
// serving mux — the profiling endpoints must not be reachable through
// the public API, and the explicit registrations avoid the package's
// DefaultServeMux side effects. Returns the bound address (so
// -debug-addr host:0 works); the listener serves until the process
// exits.
func DebugServer(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}
