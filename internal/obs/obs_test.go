package obs

import (
	"context"
	"strings"
	"testing"
)

func TestNewTraceIDShapeAndUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 64; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace id %q: want 16 hex chars", id)
		}
		if !ValidTraceID(id) {
			t.Fatalf("minted id %q does not validate", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

func TestValidTraceID(t *testing.T) {
	for _, ok := range []string{"a", "deadbeef01234567", "A-b_c.9", strings.Repeat("x", 64)} {
		if !ValidTraceID(ok) {
			t.Errorf("ValidTraceID(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", strings.Repeat("x", 65), "has space", `q"uote`, "new\nline", "semi;colon", "ütf8"} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true, want false", bad)
		}
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := TraceID(ctx); got != "" {
		t.Fatalf("empty ctx carries trace %q", got)
	}
	ctx = WithTrace(ctx, "abc123")
	if got := TraceID(ctx); got != "abc123" {
		t.Fatalf("TraceID = %q, want abc123", got)
	}
	if got := TraceID(WithTrace(context.Background(), "")); got != "" {
		t.Fatalf("empty id stored: %q", got)
	}
}

func TestParseLevel(t *testing.T) {
	for _, s := range []string{"debug", "info", "warn", "error", ""} {
		if _, err := ParseLevel(s); err != nil {
			t.Errorf("ParseLevel(%q): %v", s, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) accepted")
	}
}

func TestRingBoundsAndOrder(t *testing.T) {
	r := NewRing(3)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("fresh ring holds %d spans", len(got))
	}
	for i := 0; i < 5; i++ {
		r.Append(Span{Stage: StageAnswer, Start: int64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("ring len = %d, want 3", r.Len())
	}
	got := r.Snapshot()
	if len(got) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(got))
	}
	for i, s := range got {
		if want := int64(i + 2); s.Start != want {
			t.Fatalf("snapshot[%d].Start = %d, want %d (oldest first)", i, s.Start, want)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(8)
	r.Append(Span{Start: 1})
	r.Append(Span{Start: 2})
	got := r.Snapshot()
	if len(got) != 2 || got[0].Start != 1 || got[1].Start != 2 {
		t.Fatalf("partial snapshot = %+v", got)
	}
}

func TestStagesAggregation(t *testing.T) {
	st := NewStages()
	if st.Summaries() != nil || st.Buckets() != nil {
		t.Fatal("empty Stages exports non-nil maps")
	}
	st.Observe(StageResample, 0.010)
	st.Observe(StageResample, 0.020)
	st.Observe(StageWALAppend, 0.001)
	sums := st.Summaries()
	if sums[StageResample].Count != 2 || sums[StageWALAppend].Count != 1 {
		t.Fatalf("summaries = %+v", sums)
	}
	bks := st.Buckets()
	var n int64
	for _, b := range bks[StageResample] {
		n += b.Count
	}
	if n != 2 {
		t.Fatalf("resample buckets hold %d observations, want 2", n)
	}
}
