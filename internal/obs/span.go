package obs

import (
	"sync"

	"factcheck/internal/stats"
)

// Stage names for the answer path's span decomposition. An answer
// decomposes, in order, into: waiting for worker lanes
// (StageLaneAcquire), folding queued corpus arrivals in
// (StageIngestApply), the Gibbs resampling step that applies the
// verdict (StageResample), the dirty-component what-if re-ranking that
// warms the next question (StageRescore), and the WAL append that
// makes the elicitation durable before the response leaves
// (StageWALAppend). StageAnswer is the whole path, lock wait included
// — the span the answer-latency SLO is defined over.
const (
	StageLaneAcquire = "lane_acquire"
	StageIngestApply = "ingest_apply"
	StageResample    = "resample"
	StageRescore     = "rescore"
	StageWALAppend   = "wal_append"
	StageAnswer      = "answer"
)

// Span is one timed stage of one request, as served at
// GET /v1/sessions/{id}/trace.
type Span struct {
	// Trace is the request's trace id ("" for untraced internal work).
	Trace string `json:"trace,omitempty"`
	// Stage names the stage (the Stage* constants).
	Stage string `json:"stage"`
	// Start is the stage's start time, Unix nanoseconds.
	Start int64 `json:"startUnixNano"`
	// Seconds is the stage's duration.
	Seconds float64 `json:"seconds"`
}

// Ring is a bounded, concurrency-safe span buffer: the newest spans
// win, the oldest fall off. One ring hangs off every live session, so
// "why was this answer slow?" is answerable after the fact without any
// log pipeline — at a fixed per-session memory cost that does not grow
// with uptime.
type Ring struct {
	mu    sync.Mutex
	spans []Span
	next  int
	full  bool
}

// NewRing returns a ring holding the last n spans (n < 1 is treated
// as 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{spans: make([]Span, n)}
}

// Append records one span, evicting the oldest when full.
func (r *Ring) Append(s Span) {
	r.mu.Lock()
	r.spans[r.next] = s
	r.next++
	if r.next == len(r.spans) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Snapshot returns the buffered spans, oldest first.
func (r *Ring) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Span, r.next)
		copy(out, r.spans[:r.next])
		return out
	}
	out := make([]Span, 0, len(r.spans))
	out = append(out, r.spans[r.next:]...)
	out = append(out, r.spans[:r.next]...)
	return out
}

// Len reports the number of buffered spans.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.spans)
	}
	return r.next
}

// Stages aggregates span durations into one latency histogram per
// stage name. Safe for concurrent use; the histograms are the source
// of the factcheck_stage_latency_seconds exposition.
type Stages struct {
	mu sync.Mutex
	h  map[string]*stats.LogHist
}

// NewStages returns an empty per-stage aggregate.
func NewStages() *Stages {
	return &Stages{h: make(map[string]*stats.LogHist)}
}

// Observe folds one stage duration (seconds) in.
func (st *Stages) Observe(stage string, seconds float64) {
	st.mu.Lock()
	h := st.h[stage]
	if h == nil {
		h = stats.NewLogHist()
		st.h[stage] = h
	}
	h.Add(seconds)
	st.mu.Unlock()
}

// Summaries digests every stage's histogram.
func (st *Stages) Summaries() map[string]stats.Summary {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.h) == 0 {
		return nil
	}
	out := make(map[string]stats.Summary, len(st.h))
	for k, h := range st.h {
		out[k] = h.Summary()
	}
	return out
}

// Buckets exports every stage's raw histogram buckets.
func (st *Stages) Buckets() map[string][]stats.HistBucket {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.h) == 0 {
		return nil
	}
	out := make(map[string][]stats.HistBucket, len(st.h))
	for k, h := range st.h {
		out[k] = h.Buckets()
	}
	return out
}
