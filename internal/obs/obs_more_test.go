package obs

import (
	"bytes"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"factcheck/internal/stats"
)

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || !ValidTraceID(a) {
		t.Fatalf("trace id %q not 16 hex chars", a)
	}
	if a == b {
		t.Fatal("two trace ids collided")
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "factcheck-test", slog.LevelInfo)
	l.Debug("dropped")
	l.Info("kept", "k", "v")
	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Error("debug record leaked through an info-level logger")
	}
	for _, want := range []string{`"component":"factcheck-test"`, `"msg":"kept"`, `"k":"v"`} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %s:\n%s", want, out)
		}
	}
}

func TestDiscard(t *testing.T) {
	l := Discard()
	if l.Enabled(nil, slog.LevelError) {
		t.Error("discard logger claims to be enabled")
	}
	l.Error("nobody hears this")
}

func TestDebugServer(t *testing.T) {
	addr, err := DebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: status %d", resp.StatusCode)
	}
	if _, err := DebugServer("definitely-not-an-address:xyz"); err == nil {
		t.Error("bad listen address accepted")
	}
}

func TestHistogramMapSortedKeys(t *testing.T) {
	var e Expo
	buckets := map[string][]stats.HistBucket{
		"rank":  {{Lo: 0, Hi: 1, Count: 2}},
		"gibbs": {{Lo: 0, Hi: 1, Count: 5}},
	}
	sums := map[string]stats.Summary{
		"rank":  {Count: 2, Mean: 0.5},
		"gibbs": {Count: 5, Mean: 0.5},
	}
	e.HistogramMap("factcheck_stage_latency_seconds", "Stage latency.", "stage", nil, buckets, sums)
	out := string(e.Bytes())
	gi := strings.Index(out, `stage="gibbs"`)
	ri := strings.Index(out, `stage="rank"`)
	if gi < 0 || ri < 0 {
		t.Fatalf("missing per-stage series:\n%s", out)
	}
	if gi > ri {
		t.Error("keys not emitted in sorted order")
	}
}

func TestNewRingClampsAndLen(t *testing.T) {
	r := NewRing(0)
	r.Append(Span{Stage: "a"})
	r.Append(Span{Stage: "b"})
	if r.Len() != 1 {
		t.Fatalf("ring of clamp-to-1 capacity holds %d spans", r.Len())
	}
	got := r.Snapshot()
	if len(got) != 1 || got[0].Stage != "b" {
		t.Fatalf("newest span should win: %+v", got)
	}
}
