package obs

import (
	"strconv"
	"strings"
	"testing"

	"factcheck/internal/stats"
)

func TestExpoCounterGaugeShape(t *testing.T) {
	var e Expo
	e.Gauge("factcheck_sessions", "Live sessions.", nil, 3)
	e.Counter("factcheck_sheds_total", "Requests shed.", Labels{{"backend", "b1"}}, 7)
	out := string(e.Bytes())
	for _, want := range []string{
		"# HELP factcheck_sessions Live sessions.\n",
		"# TYPE factcheck_sessions gauge\n",
		"factcheck_sessions 3\n",
		"# TYPE factcheck_sheds_total counter\n",
		`factcheck_sheds_total{backend="b1"} 7` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpoLabelEscaping(t *testing.T) {
	var e Expo
	e.Gauge("g", "h", Labels{{"p", `a"b\c` + "\nd"}}, 1)
	want := `g{p="a\"b\\c\nd"} 1` + "\n"
	if !strings.Contains(string(e.Bytes()), want) {
		t.Fatalf("escaping wrong:\n%s", e.Bytes())
	}
}

func TestExpoHelpTypeOncePerName(t *testing.T) {
	var e Expo
	e.Gauge("g", "h", Labels{{"k", "a"}}, 1)
	e.Gauge("g", "h", Labels{{"k", "b"}}, 2)
	out := string(e.Bytes())
	if strings.Count(out, "# TYPE g gauge") != 1 {
		t.Fatalf("TYPE emitted more than once:\n%s", out)
	}
}

// TestHistogramCumulative checks the LogHist → native histogram
// mapping: le bounds are the log-buckets' upper edges, bucket values
// are cumulative, the series closes with +Inf equal to _count, and
// _sum reconstructs mean*count.
func TestHistogramCumulative(t *testing.T) {
	h := stats.NewLogHist()
	for _, v := range []float64{0.001, 0.001, 0.004, 0.1, 3} {
		h.Add(v)
	}
	var e Expo
	e.Histogram("lat", "Latency.", nil, h.Buckets(), h.Summary())
	out := string(e.Bytes())

	var lines []string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "lat_bucket") {
			lines = append(lines, l)
		}
	}
	if len(lines) != len(h.Buckets())+1 {
		t.Fatalf("want %d bucket lines, got %d:\n%s", len(h.Buckets())+1, len(lines), out)
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, `le="+Inf"`) || !strings.HasSuffix(last, " 5") {
		t.Fatalf("last bucket line not +Inf with total count: %q", last)
	}
	// Cumulative counts never decrease, and le bounds ascend.
	prevCount, prevLe := -1.0, -1.0
	for _, l := range lines[:len(lines)-1] {
		f := strings.Fields(l)
		v, err := strconv.ParseFloat(f[len(f)-1], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", l, err)
		}
		if v < prevCount {
			t.Fatalf("cumulative counts decreased at %q", l)
		}
		prevCount = v
		leStr := l[strings.Index(l, `le="`)+4:]
		leStr = leStr[:strings.Index(leStr, `"`)]
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			t.Fatalf("parse le in %q: %v", l, err)
		}
		if le <= prevLe {
			t.Fatalf("le bounds not ascending at %q", l)
		}
		prevLe = le
	}
	if !strings.Contains(out, "lat_count 5\n") {
		t.Fatalf("missing lat_count:\n%s", out)
	}
	s := h.Summary()
	wantSum := strconv.FormatFloat(s.Mean*float64(s.Count), 'g', -1, 64)
	if !strings.Contains(out, "lat_sum "+wantSum+"\n") {
		t.Fatalf("missing lat_sum %s:\n%s", wantSum, out)
	}
}

// TestHistogramMergeThenExposeEqualsExposeThenMerge: absorbing two
// histograms' exported buckets into a fleet aggregate and exposing it
// yields the same exposition as exposing the pointwise-merged
// histogram — the property the router's fleet-aggregated /metrics
// relies on. It holds because AbsorbBuckets re-indexes each exported
// bucket at its geometric midpoint, which maps back to exactly the
// bucket it came from.
func TestHistogramMergeThenExposeEqualsExposeThenMerge(t *testing.T) {
	a, b := stats.NewLogHist(), stats.NewLogHist()
	for i := 0; i < 100; i++ {
		a.Add(0.001 * float64(i+1))
		b.Add(0.0007 * float64(3*i+1))
	}

	// Path 1: merge the live histograms, then expose.
	var direct stats.LogHist
	direct.Merge(a)
	direct.Merge(b)
	var e1 Expo
	e1.Histogram("lat", "h", nil, direct.Buckets(), direct.Summary())

	// Path 2: expose each (as /metrics does), absorb the exported
	// buckets (as the router does), then expose the aggregate.
	var absorbed stats.LogHist
	absorbed.AbsorbBuckets(a.Buckets(), a.Summary())
	absorbed.AbsorbBuckets(b.Buckets(), b.Summary())
	var e2 Expo
	e2.Histogram("lat", "h", nil, absorbed.Buckets(), absorbed.Summary())

	s1, s2 := string(e1.Bytes()), string(e2.Bytes())
	// _sum travels through mean*count on each leg; compare bucket and
	// count lines exactly and the sums numerically.
	stripSum := func(s string) (string, float64) {
		var kept []string
		var sum float64
		for _, l := range strings.Split(s, "\n") {
			if strings.HasPrefix(l, "lat_sum ") {
				sum, _ = strconv.ParseFloat(strings.TrimPrefix(l, "lat_sum "), 64)
				continue
			}
			kept = append(kept, l)
		}
		return strings.Join(kept, "\n"), sum
	}
	k1, sum1 := stripSum(s1)
	k2, sum2 := stripSum(s2)
	if k1 != k2 {
		t.Fatalf("merge-then-expose != expose-then-merge:\n--- direct ---\n%s\n--- absorbed ---\n%s", s1, s2)
	}
	if d := sum1 - sum2; d > 1e-9 || d < -1e-9 {
		t.Fatalf("sums diverge: %g vs %g", sum1, sum2)
	}
}

// TestWindowedHistBuckets maps a rolling window through the same
// exposition path: only observations inside the window contribute.
func TestWindowedHistBuckets(t *testing.T) {
	w := stats.NewWindowedHist(10, 5)
	w.Add(1, 0.010) // ages out of the window ending at 15
	w.Add(12, 0.020)
	w.Add(13, 0.040)
	bks := w.Buckets(15)
	var n int64
	for _, b := range bks {
		n += b.Count
	}
	if n != 2 {
		t.Fatalf("window buckets hold %d observations, want 2", n)
	}
	sum, ok := w.Summary(15)
	if !ok {
		t.Fatal("window unexpectedly empty")
	}
	var e Expo
	e.Histogram("win", "h", nil, bks, sum)
	out := string(e.Bytes())
	if !strings.Contains(out, "win_count 2\n") {
		t.Fatalf("windowed exposition wrong:\n%s", out)
	}
}
