package obs

import (
	"bytes"
	"sort"
	"strconv"
	"strings"

	"factcheck/internal/stats"
)

// Labels is an ordered label set for one exposition sample. Order is
// preserved as given (Prometheus treats label order as insignificant,
// but deterministic output keeps scrapes diffable and tests exact).
type Labels [][2]string

// With returns base extended by one label, without mutating base.
func (ls Labels) With(name, value string) Labels {
	out := make(Labels, 0, len(ls)+1)
	out = append(out, ls...)
	return append(out, [2]string{name, value})
}

// Expo accumulates Prometheus text-exposition (version 0.0.4) output:
// HELP/TYPE comment pairs emitted once per metric name, then samples.
// Callers emit all samples of one name consecutively — the format
// requires one uninterrupted block per metric — which the fleet's
// emitters do by construction (one call per name, or one loop over a
// sorted label dimension).
type Expo struct {
	buf   bytes.Buffer
	typed map[string]bool
}

// ContentType is the scrape response content type for the text format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

func (e *Expo) header(name, help, typ string) {
	if e.typed == nil {
		e.typed = make(map[string]bool)
	}
	if e.typed[name] {
		return
	}
	e.typed[name] = true
	e.buf.WriteString("# HELP " + name + " " + help + "\n")
	e.buf.WriteString("# TYPE " + name + " " + typ + "\n")
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (e *Expo) sample(name string, ls Labels, v float64) {
	e.buf.WriteString(name)
	if len(ls) > 0 {
		e.buf.WriteByte('{')
		for i, l := range ls {
			if i > 0 {
				e.buf.WriteByte(',')
			}
			e.buf.WriteString(l[0] + `="` + escapeLabel(l[1]) + `"`)
		}
		e.buf.WriteByte('}')
	}
	e.buf.WriteByte(' ')
	e.buf.WriteString(formatFloat(v))
	e.buf.WriteByte('\n')
}

// Counter emits one counter sample.
func (e *Expo) Counter(name, help string, ls Labels, v float64) {
	e.header(name, help, "counter")
	e.sample(name, ls, v)
}

// Gauge emits one gauge sample.
func (e *Expo) Gauge(name, help string, ls Labels, v float64) {
	e.header(name, help, "gauge")
	e.sample(name, ls, v)
}

// Histogram maps one stats.LogHist (its exported non-cumulative
// buckets plus its summary) onto a native Prometheus histogram: the
// log-bucket upper bounds become cumulative le bounds, a +Inf bucket
// closes the series, and sum is reconstructed as mean*count (exact up
// to float rounding — the histogram never stored the raw sum).
func (e *Expo) Histogram(name, help string, ls Labels, buckets []stats.HistBucket, s stats.Summary) {
	e.header(name, help, "histogram")
	var cum int64
	for _, b := range buckets {
		cum += b.Count
		e.sample(name+"_bucket", ls.With("le", formatFloat(b.Hi)), float64(cum))
	}
	// The +Inf bucket and _count must agree; cum == s.Count whenever
	// buckets and summary were exported from the same histogram, and the
	// max keeps the series monotone even if a caller pairs them loosely.
	total := s.Count
	if cum > total {
		total = cum
	}
	e.sample(name+"_bucket", ls.With("le", "+Inf"), float64(total))
	e.sample(name+"_sum", ls, s.Mean*float64(s.Count))
	e.sample(name+"_count", ls, float64(total))
}

// HistogramMap emits one histogram per key of a label dimension (e.g.
// stage or endpoint), keys sorted so the exposition is deterministic.
func (e *Expo) HistogramMap(name, help, label string, ls Labels,
	buckets map[string][]stats.HistBucket, sums map[string]stats.Summary) {
	keys := make([]string, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.Histogram(name, help, ls.With(label, k), buckets[k], sums[k])
	}
}

// Bytes returns the accumulated exposition.
func (e *Expo) Bytes() []byte {
	return e.buf.Bytes()
}
