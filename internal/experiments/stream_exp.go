package experiments

import (
	"fmt"
	"time"

	"factcheck/internal/core"
	"factcheck/internal/crf"
	"factcheck/internal/guidance"
	"factcheck/internal/sim"
	"factcheck/internal/stats"
	"factcheck/internal/stream"
	"factcheck/internal/synth"
)

// StreamTimeRow is one dataset's average model update time (§8.8).
type StreamTimeRow struct {
	Dataset    string
	AvgSeconds float64
	Claims     int
}

// StreamTimeResult holds the §8.8 update-time measurements (the paper
// reports 0.34 s / 0.61 s / 1.22 s for wiki / health / snopes on the
// authors' hardware at full scale).
type StreamTimeResult struct {
	Rows []StreamTimeRow
}

// RunStreamTime measures the per-claim model update time of Alg. 2 by
// replaying each corpus in posting order.
func RunStreamTime(cfg Config) StreamTimeResult {
	cfg = cfg.withDefaults()
	var res StreamTimeResult
	for _, prof := range cfg.profiles() {
		corpus := synth.Generate(prof, cfg.Seed)
		m := crf.New(corpus.DB)
		eng := stream.New(m.Dim(), stream.DefaultConfig())
		start := time.Now()
		for _, c := range corpus.ClaimOrder {
			rows, signs := stream.RowsForClaim(m, c, nil)
			eng.ObserveClaim(rows, signs, nil)
		}
		elapsed := time.Since(start)
		res.Rows = append(res.Rows, StreamTimeRow{
			Dataset:    datasetName(prof),
			AvgSeconds: elapsed.Seconds() / float64(len(corpus.ClaimOrder)),
			Claims:     len(corpus.ClaimOrder),
		})
	}
	return res
}

// Table renders the update times.
func (r StreamTimeResult) Table() Table {
	t := Table{
		Title:  "§8.8 — streaming model update time per arriving claim",
		Header: []string{"dataset", "claims", "avg update (s)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Dataset, fmt.Sprintf("%d", row.Claims), fmt.Sprintf("%.4f", row.AvgSeconds)})
	}
	return t
}

// Table2Row is one (dataset, period) cell of Table 2.
type Table2Row struct {
	Dataset string
	Period  float64 // validation period as a fraction of claims
	TauB    float64 // Kendall's τ_b between streaming and offline sequences
}

// Table2Result holds the validation-sequence preservation study (§8.8).
type Table2Result struct {
	Rows []Table2Row
}

// RunTable2 reproduces Table 2: claims arrive in posting order; after
// every `period` fraction of arrivals the validation process runs on the
// claims seen so far (hybrid strategy, parameters provided by the
// streaming engine). The resulting validation sequence is compared to the
// offline sequence (all claims available from the start) with Kendall's
// τ_b. Longer periods give the streaming run a view closer to the offline
// one, so τ_b grows with the period.
func RunTable2(cfg Config) Table2Result {
	cfg = cfg.withDefaults()
	var res Table2Result
	periods := []float64{0.05, 0.10, 0.20, 0.30}
	for _, prof := range cfg.profiles() {
		corpus := synth.Generate(prof, cfg.Seed)
		for _, period := range periods {
			streaming := streamingValidationSequence(corpus, cfg, period)
			// The offline run validates the same number of claims, so
			// the rank comparison is over comparable sets (otherwise the
			// missing-item ties of the shorter sequence dominate τ_b).
			frac := float64(len(streaming)) / float64(corpus.DB.NumClaims)
			offline := validationSequence(corpus, cfg, nil, frac)
			tau := stats.RankSequenceTau(streaming, offline)
			res.Rows = append(res.Rows, Table2Row{
				Dataset: datasetName(prof), Period: period, TauB: tau,
			})
		}
	}
	return res
}

// validationSequence runs the hybrid validation process over the full
// corpus and records the order in which claims are validated. With
// initTheta non-nil the engine starts from those parameters. The fraction
// argument bounds the number of validations (1.0 = all).
func validationSequence(corpus *synth.Corpus, cfg Config, initTheta []float64, fraction float64) []int {
	opts := core.Options{
		FullSweepEvery: 1, // paper-faithful per-answer EM: figures reproduce §8
		// The sequence comparison needs a deterministic-ish selector:
		// the hybrid roulette and the Gibbs-sampled what-if gains would
		// dominate Kendall's τ_b with selection noise, measuring seed
		// luck instead of streaming effects; uncertainty sampling ranks
		// by the (far less noisy) marginals.
		Strategy:      guidance.Uncertainty{},
		Seed:          cfg.Seed + 7,
		CandidatePool: cfg.CandidatePool,
		Workers:       cfg.Workers,
		Budget:        int(fraction * float64(corpus.DB.NumClaims)),
	}
	s := core.NewSession(corpus.DB, opts)
	if initTheta != nil {
		s.Engine.SetTheta(initTheta)
	}
	s.Run(&sim.Oracle{Truth: corpus.Truth})
	var seq []int
	for _, v := range s.History() {
		seq = append(seq, v.Claim)
	}
	return seq
}

// streamingValidationSequence interleaves Alg. 2 with Alg. 1: claims
// arrive in posting order and feed the streaming engine; after each
// period of arrivals, a validation burst runs on the prefix corpus with
// the streaming engine's parameters, and the validated claims (with
// verdicts) flow back into the streaming engine. The returned sequence
// uses original claim ids.
func streamingValidationSequence(corpus *synth.Corpus, cfg Config, period float64) []int {
	n := corpus.DB.NumClaims
	step := int(period * float64(n))
	if step < 1 {
		step = 1
	}
	fullModel := crf.New(corpus.DB)
	streamEng := stream.New(fullModel.Dim(), stream.DefaultConfig())
	validated := map[int]bool{} // original ids already validated
	var seq []int
	for arrived := step; arrived <= n; arrived += step {
		// New arrivals since the last burst feed the stream engine.
		for _, c := range corpus.ClaimOrder[arrived-step : arrived] {
			rows, signs := stream.RowsForClaim(fullModel, c, nil)
			streamEng.ObserveClaim(rows, signs, nil)
		}
		// Validation burst on the prefix corpus: validate the same
		// fraction of the available claims as the offline run would.
		prefix := corpus.ClaimOrder[:arrived]
		sub, toOrig := synth.Subset(corpus, prefix)
		opts := core.Options{
			FullSweepEvery: 1, // paper-faithful per-answer EM: figures reproduce §8
			Strategy:       guidance.Uncertainty{},
			Seed:           cfg.Seed + 7,
			CandidatePool:  cfg.CandidatePool,
			Workers:        cfg.Workers,
		}
		s := core.NewSession(sub.DB, opts)
		s.Engine.SetTheta(streamEng.Theta())
		// Pre-apply earlier validations (their labels persist).
		origToNew := make(map[int]int, len(toOrig))
		for newID, orig := range toOrig {
			origToNew[orig] = newID
		}
		for orig := range validated {
			if newID, ok := origToNew[orig]; ok {
				s.State.SetLabel(newID, corpus.Truth[orig])
			}
		}
		if len(validated) > 0 {
			s.Engine.InferIncremental(s.State)
		}
		// Validate half of each arrival batch so the streaming and
		// offline processes cover overlapping claim sets (the τ_b
		// comparison needs a substantial intersection).
		burst := step / 2
		if burst < 1 {
			burst = 1
		}
		user := &sim.Oracle{Truth: sub.Truth}
		for i := 0; i < burst; i++ {
			if s.Step(user) {
				break
			}
		}
		// Record new validations and feed them back to the stream.
		for _, v := range s.History() {
			orig := toOrig[v.Claim]
			if validated[orig] {
				continue
			}
			validated[orig] = true
			seq = append(seq, orig)
			rows, signs := stream.RowsForClaim(fullModel, orig, nil)
			lbl := v.Verdict
			streamEng.ObserveClaim(rows, signs, &lbl)
		}
		// Alg. 1 parameters flow back to Alg. 2 (line 7).
		streamEng.SetTheta(s.Engine.Theta())
	}
	return seq
}

// Table renders Table 2.
func (r Table2Result) Table() Table {
	t := Table{
		Title:  "Table 2 — preservation of validation sequence (Kendall's τ_b)",
		Header: []string{"dataset", "5%", "10%", "20%", "30%"},
	}
	byDS := map[string][]string{}
	for _, row := range r.Rows {
		byDS[row.Dataset] = append(byDS[row.Dataset], f2(row.TauB))
	}
	for _, ds := range []string{"wiki", "health", "snopes"} {
		if cells, ok := byDS[ds]; ok {
			t.Rows = append(t.Rows, append([]string{ds}, cells...))
		}
	}
	return t
}

// Table3Row is one (dataset, population) row of Table 3.
type Table3Row struct {
	Dataset    string
	Population string // "expert" or "crowd"
	AvgSeconds float64
	Accuracy   float64
}

// Table3Result holds the real-world deployment simulation (§8.9).
type Table3Result struct {
	Rows []Table3Row
}

// RunTable3 reproduces Table 3: 50 randomly selected claims per dataset
// are validated by a population of 3 experts and by a crowd with
// reliability-aware consensus. Expert/crowd time scales follow the
// published per-dataset medians (wiki 268/186 s, health 1579/561 s,
// snopes 559/336 s); the reproduced quantity is the trade-off — experts
// more accurate but slower.
func RunTable3(cfg Config) Table3Result {
	cfg = cfg.withDefaults()
	var res Table3Result
	timeScales := map[string][2]float64{
		"wiki":   {268, 186},
		"health": {1579, 561},
		"snopes": {559, 336},
	}
	for _, prof := range cfg.profiles() {
		corpus := synth.Generate(prof, cfg.Seed)
		rng := stats.NewRNG(cfg.Seed + 41)
		n := 50
		if n > corpus.DB.NumClaims {
			n = corpus.DB.NumClaims
		}
		perm := rng.Perm(corpus.DB.NumClaims)[:n]
		truth := make([]bool, n)
		for i, c := range perm {
			truth[i] = corpus.Truth[c]
		}
		ds := datasetName(prof)
		scale := timeScales[ds]
		// Experts answer alone (mean individual accuracy, the §8.9
		// protocol); the crowd's 3 votes per claim are aggregated by the
		// reliability-aware consensus.
		experts := sim.NewExpertPopulation(3, 0.965, scale[0], cfg.Seed+43)
		crowd := sim.NewCrowdPopulation(3, 0.8, scale[1], cfg.Seed+47)
		eRes := experts.RunTasksIndividual(truth)
		cRes := crowd.RunTasks(truth)
		res.Rows = append(res.Rows,
			Table3Row{Dataset: ds, Population: "expert", AvgSeconds: eRes.MeanSeconds, Accuracy: eRes.Accuracy},
			Table3Row{Dataset: ds, Population: "crowd", AvgSeconds: cRes.MeanSeconds, Accuracy: cRes.Accuracy},
		)
	}
	return res
}

// Table renders Table 3.
func (r Table3Result) Table() Table {
	t := Table{
		Title:  "Table 3 — experts vs crowd workers (50 claims/dataset)",
		Header: []string{"dataset", "exp.time(s)", "cro.time(s)", "exp.acc", "cro.acc"},
	}
	type pair struct {
		eT, cT, eA, cA float64
	}
	byDS := map[string]*pair{}
	for _, row := range r.Rows {
		p := byDS[row.Dataset]
		if p == nil {
			p = &pair{}
			byDS[row.Dataset] = p
		}
		if row.Population == "expert" {
			p.eT, p.eA = row.AvgSeconds, row.Accuracy
		} else {
			p.cT, p.cA = row.AvgSeconds, row.Accuracy
		}
	}
	for _, ds := range []string{"wiki", "health", "snopes"} {
		if p, ok := byDS[ds]; ok {
			t.Rows = append(t.Rows, []string{
				ds, fmt.Sprintf("%.0f", p.eT), fmt.Sprintf("%.0f", p.cT), f2(p.eA), f2(p.cA),
			})
		}
	}
	return t
}
