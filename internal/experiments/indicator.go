package experiments

import (
	"factcheck/internal/core"
	"factcheck/internal/entropy"
	"factcheck/internal/stats"
	"factcheck/internal/synth"
	"factcheck/internal/termination"
)

// indicatorTracker adapts a core.Session's observer stream to the
// termination.Tracker of §6.1, translating groundings into the
// Observation fields.
type indicatorTracker struct {
	tr     *termination.Tracker
	corpus *synth.Corpus
}

func newIndicatorTracker(s *core.Session, corpus *synth.Corpus) *indicatorTracker {
	return &indicatorTracker{tr: termination.NewTracker(5), corpus: corpus}
}

func (t *indicatorTracker) observe(s *core.Session) {
	hist := s.History()
	matched := false
	if len(hist) > 0 {
		last := hist[len(hist)-1]
		matched = s.PrevGrounding()[last.Claim] == last.Verdict
	}
	t.tr.Observe(termination.Observation{
		Entropy:           entropy.Approx(s.State),
		Changes:           s.Grounding().Diff(s.PrevGrounding()),
		Claims:            s.DB.NumClaims,
		PredictionMatched: matched,
	})
}

func (t *indicatorTracker) observeCV(s *core.Session, rng *stats.RNG) {
	a := termination.CrossValidate(s.Engine, s.State, 5, rng)
	if a > 0 {
		t.tr.ObserveCV(a)
	}
}

func (t *indicatorTracker) urr() float64 { return t.tr.URR() }
func (t *indicatorTracker) cng() float64 { return t.tr.CNG() }
func (t *indicatorTracker) pre() float64 { return t.tr.PRE() }
func (t *indicatorTracker) pir() float64 { return t.tr.PIR() }
