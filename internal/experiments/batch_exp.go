package experiments

import (
	"fmt"
	"math"

	"factcheck/internal/core"
	"factcheck/internal/sim"
	"factcheck/internal/stats"
	"factcheck/internal/synth"
)

// CostSaving is CS(k) = 1 − 1/k^α, the §8.7 model of set-up costs saved
// by validating k claims per batch under rail factor α.
func CostSaving(k int, alpha float64) float64 {
	if k < 1 {
		k = 1
	}
	return 1 - 1/math.Pow(float64(k), alpha)
}

// BatchSizes lists the §8.7 batch sizes.
func BatchSizes() []int { return []int{1, 2, 5, 10, 20} }

// Fig10Row is one (dataset, k, α) point of Fig. 10.
type Fig10Row struct {
	Dataset string
	K       int
	Alpha   float64
	// CostSaving is CS(k) in percent.
	CostSaving float64
	// PrecDegradation is the relative precision loss versus the
	// unbatched (k = 1) run at equal effort, in percent.
	PrecDegradation float64
}

// Fig10Result holds the static-batch-size study of §8.7.
type Fig10Result struct {
	Rows []Fig10Row
}

// RunFig10 reproduces Fig. 10: validation with static batch sizes
// k ∈ {1, 2, 5, 10, 20}; inference runs only once per batch, so precision
// at equal effort degrades as k grows while the cost saving CS(k)
// improves. α only rescales the cost axis.
func RunFig10(cfg Config) Fig10Result {
	cfg = cfg.withDefaults()
	var res Fig10Result
	alphas := []float64{0.25, 0.5, 1}
	for _, prof := range cfg.profiles() {
		// Precision at a fixed 50% effort for each k, averaged over runs.
		precAt := map[int]float64{}
		for _, k := range BatchSizes() {
			var sum float64
			for run := 0; run < cfg.Runs; run++ {
				seed := cfg.Seed + int64(run)*1000
				corpus := synth.Generate(prof, seed)
				budget := corpus.DB.NumClaims / 2
				opts := core.Options{
					FullSweepEvery: 1, // paper-faithful per-answer EM: figures reproduce §8
					Seed:           seed + 7,
					CandidatePool:  cfg.CandidatePool,
					Workers:        cfg.Workers,
					Budget:         budget,
				}
				if k > 1 {
					opts.BatchSize = k
				}
				s := core.NewSession(corpus.DB, opts)
				s.Run(&sim.Oracle{Truth: corpus.Truth})
				sum += s.Precision(corpus.Truth)
			}
			precAt[k] = sum / float64(cfg.Runs)
		}
		base := precAt[1]
		for _, k := range BatchSizes() {
			degr := 0.0
			if base > 0 {
				degr = 100 * (base - precAt[k]) / base
			}
			if degr < 0 {
				degr = 0
			}
			for _, a := range alphas {
				res.Rows = append(res.Rows, Fig10Row{
					Dataset:         datasetName(prof),
					K:               k,
					Alpha:           a,
					CostSaving:      100 * CostSaving(k, a),
					PrecDegradation: degr,
				})
			}
		}
	}
	return res
}

// Table renders Fig. 10 (α = 0.5 column set; other alphas only move the
// cost axis).
func (r Fig10Result) Table() Table {
	t := Table{
		Title:  "Fig. 10 — static batch size (precision degradation vs cost saving)",
		Header: []string{"dataset", "k", "CS(α=1/4)%", "CS(α=1/2)%", "CS(α=1)%", "prec.degr%"},
	}
	type key struct {
		ds string
		k  int
	}
	cs := map[key]map[float64]float64{}
	degr := map[key]float64{}
	for _, row := range r.Rows {
		kk := key{row.Dataset, row.K}
		if cs[kk] == nil {
			cs[kk] = map[float64]float64{}
		}
		cs[kk][row.Alpha] = row.CostSaving
		degr[kk] = row.PrecDegradation
	}
	for _, ds := range []string{"wiki", "health", "snopes"} {
		for _, k := range BatchSizes() {
			kk := key{ds, k}
			if m, ok := cs[kk]; ok {
				t.Rows = append(t.Rows, []string{
					ds, fmt.Sprintf("%d", k),
					f2(m[0.25]), f2(m[0.5]), f2(m[1]), f2(degr[kk]),
				})
			}
		}
	}
	return t
}

// Fig11Row is one (dataset, k, precision-target) box of Fig. 11.
type Fig11Row struct {
	Dataset    string
	K          int
	PrecTarget float64
	CostSaving float64 // CS(k) with α = 2/3, percent
	Effort     stats.BoxStats
}

// Fig11Result holds the dynamic-batch-size study of §8.7.
type Fig11Result struct {
	Rows []Fig11Row
}

// RunFig11 reproduces Fig. 11: for each batch size, the distribution
// (box plot over runs) of user effort needed to reach precision 0.8 and
// 0.9, against the cost saving with α = 2/3. Small k reaches the target
// with less effort; large k saves more set-up cost — the trade-off that
// motivates growing k dynamically as validation progresses.
func RunFig11(cfg Config) Fig11Result {
	cfg = cfg.withDefaults()
	const alpha = 2.0 / 3.0
	runs := cfg.Runs
	if runs < 3 {
		runs = 3 // box plots need a distribution
	}
	var res Fig11Result
	for _, prof := range cfg.profiles() {
		for _, k := range BatchSizes() {
			efforts := map[float64][]float64{0.8: nil, 0.9: nil}
			for run := 0; run < runs; run++ {
				seed := cfg.Seed + int64(run)*1000
				corpus := synth.Generate(prof, seed)
				opts := core.Options{
					FullSweepEvery: 1, // paper-faithful per-answer EM: figures reproduce §8
					Seed:           seed + 7,
					CandidatePool:  cfg.CandidatePool,
					Workers:        cfg.Workers,
				}
				if k > 1 {
					opts.BatchSize = k
				}
				opts.Goal = func(sess *core.Session) bool {
					return sess.Precision(corpus.Truth) >= 0.92
				}
				var curve []CurvePoint
				s := core.NewSession(corpus.DB, opts)
				curve = append(curve, CurvePoint{0, s.Precision(corpus.Truth)})
				s.Observer = func(sess *core.Session) {
					curve = append(curve, CurvePoint{sess.Effort(), sess.Precision(corpus.Truth)})
				}
				s.Run(&sim.Oracle{Truth: corpus.Truth})
				for _, target := range []float64{0.8, 0.9} {
					efforts[target] = append(efforts[target], effortToReach(curve, target))
				}
			}
			for _, target := range []float64{0.8, 0.9} {
				res.Rows = append(res.Rows, Fig11Row{
					Dataset:    datasetName(prof),
					K:          k,
					PrecTarget: target,
					CostSaving: 100 * CostSaving(k, alpha),
					Effort:     stats.Box(efforts[target]),
				})
			}
		}
	}
	return res
}

// Table renders Fig. 11 medians.
func (r Fig11Result) Table() Table {
	t := Table{
		Title:  "Fig. 11 — dynamic batch size (effort to reach precision, α=2/3)",
		Header: []string{"dataset", "k", "CS%", "effort@0.8 (med)", "effort@0.9 (med)"},
	}
	type key struct {
		ds string
		k  int
	}
	med := map[key]map[float64]float64{}
	cs := map[key]float64{}
	for _, row := range r.Rows {
		kk := key{row.Dataset, row.K}
		if med[kk] == nil {
			med[kk] = map[float64]float64{}
		}
		med[kk][row.PrecTarget] = row.Effort.Median
		cs[kk] = row.CostSaving
	}
	for _, ds := range []string{"wiki", "health", "snopes"} {
		for _, k := range BatchSizes() {
			kk := key{ds, k}
			if m, ok := med[kk]; ok {
				t.Rows = append(t.Rows, []string{
					ds, fmt.Sprintf("%d", k), f2(cs[kk]), pct(m[0.8]), pct(m[0.9]),
				})
			}
		}
	}
	return t
}
