// Package experiments contains one runner per table and figure of the
// paper's evaluation (§8), plus the ablation studies listed in DESIGN.md.
// Each runner returns typed rows and can render itself as an aligned
// text table; bench_test.go and cmd/factcheck-bench are thin wrappers.
//
// Corpora are generated at a configurable scale (DESIGN.md §5): every
// dataset is shrunk so it has about Config.TargetClaims claims while the
// documents-per-claim and sources-per-claim ratios of §8.1 are preserved.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"factcheck/internal/synth"
)

// Config controls scale, randomness and parallelism for all runners.
type Config struct {
	// TargetClaims is the approximate corpus size per dataset; datasets
	// smaller than the target run at full published size (default 90).
	TargetClaims int
	// Seed drives corpus generation and all simulated users.
	Seed int64
	// Runs is the number of repetitions averaged where the paper
	// averages (default 1).
	Runs int
	// Workers bounds what-if parallelism (0 = GOMAXPROCS).
	Workers int
	// CandidatePool bounds what-if scoring per iteration (default 16).
	CandidatePool int
	// Datasets optionally restricts the corpora ("wiki", "health",
	// "snopes"); empty means all three.
	Datasets []string
	// Strategies optionally restricts the §8.4 strategies compared;
	// empty means all five.
	Strategies []string
}

// DefaultConfig returns the scale used by `go test` and the benches.
func DefaultConfig() Config {
	return Config{TargetClaims: 90, Seed: 1, Runs: 1, CandidatePool: 16}
}

func (c Config) withDefaults() Config {
	if c.TargetClaims <= 0 {
		c.TargetClaims = 90
	}
	if c.Runs <= 0 {
		c.Runs = 1
	}
	if c.CandidatePool <= 0 {
		c.CandidatePool = 16
	}
	return c
}

// scaleFor shrinks profile p to about target claims (never grows it).
func scaleFor(p synth.Profile, target int) synth.Profile {
	if p.Claims <= target {
		return p
	}
	return p.Scaled(float64(target) / float64(p.Claims))
}

// profiles returns the configured §8.1 datasets at the configured scale.
func (c Config) profiles() []synth.Profile {
	want := map[string]bool{}
	for _, d := range c.Datasets {
		want[d] = true
	}
	var out []synth.Profile
	for _, p := range synth.Profiles() {
		if len(want) > 0 && !want[p.Name] {
			continue
		}
		out = append(out, scaleFor(p, c.TargetClaims))
	}
	return out
}

// strategies returns the configured strategy names.
func (c Config) strategies() []string {
	if len(c.Strategies) > 0 {
		return c.Strategies
	}
	return StrategyNames()
}

// datasetName strips the scale suffix for display.
func datasetName(p synth.Profile) string {
	if i := strings.IndexByte(p.Name, '@'); i >= 0 {
		return p.Name[:i]
	}
	return p.Name
}

// Table renders rows of cells as an aligned text table with a header.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String implements fmt.Stringer.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f3 formats a float with three decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// pct formats a fraction as a percentage with one decimal.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// CurvePoint is one (effort, value) sample of a labelled curve.
type CurvePoint struct {
	Effort float64
	Value  float64
}

// interpolateAt returns the curve value at the given effort via linear
// interpolation (curves are sorted by effort).
func interpolateAt(curve []CurvePoint, effort float64) float64 {
	if len(curve) == 0 {
		return 0
	}
	if effort <= curve[0].Effort {
		return curve[0].Value
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Effort >= effort {
			a, b := curve[i-1], curve[i]
			if b.Effort == a.Effort {
				return b.Value
			}
			frac := (effort - a.Effort) / (b.Effort - a.Effort)
			return a.Value + frac*(b.Value-a.Value)
		}
	}
	return curve[len(curve)-1].Value
}

// effortToReach returns the smallest observed effort at which the curve
// value reaches the target, or 1 if it never does.
func effortToReach(curve []CurvePoint, target float64) float64 {
	for _, p := range curve {
		if p.Value >= target {
			return p.Effort
		}
	}
	return 1
}

// meanCurves averages several runs' curves onto a common effort grid.
func meanCurves(curves [][]CurvePoint, grid []float64) []CurvePoint {
	out := make([]CurvePoint, len(grid))
	for i, g := range grid {
		sum := 0.0
		for _, c := range curves {
			sum += interpolateAt(c, g)
		}
		out[i] = CurvePoint{Effort: g, Value: sum / float64(len(curves))}
	}
	return out
}

// effortGrid returns {step, 2·step, …, 1}.
func effortGrid(step float64) []float64 {
	var out []float64
	for e := step; e <= 1+1e-9; e += step {
		out = append(out, e)
	}
	return out
}

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
