package experiments

import (
	"fmt"
	"time"

	"factcheck/internal/core"
	"factcheck/internal/entropy"
	"factcheck/internal/factdb"
	"factcheck/internal/guidance"
	"factcheck/internal/sim"
	"factcheck/internal/stats"
	"factcheck/internal/synth"
)

// Variant names the three implementations compared in Fig. 2-3.
type Variant string

const (
	// VariantOrigin is the plain algorithm: exact entropy (Eq. 12 via
	// the Ising projection) recomputed for every candidate's what-if
	// states, sequential scoring, no graph partitioning (hypothetical
	// runs sweep the full claim set).
	VariantOrigin Variant = "origin"
	// VariantScalable replaces exact entropy with the linear
	// approximation of Eq. 13 (§4.1) but stays sequential and
	// unpartitioned.
	VariantScalable Variant = "scalable"
	// VariantParallelPartition adds the §5.1 optimisations: parallel
	// what-if scoring and component-restricted inference.
	VariantParallelPartition Variant = "parallel+partition"
)

// Variants lists the Fig. 2 variants in paper order.
func Variants() []Variant {
	return []Variant{VariantOrigin, VariantScalable, VariantParallelPartition}
}

// selectionTime runs one full iteration (selection + user input +
// incremental inference + grounding) under the given variant and returns
// the wall time — the "wait time of a user" of §8.2.
func selectionTime(v Variant, s *core.Session, corpus *synth.Corpus, cand []int, rng *stats.RNG) time.Duration {
	start := time.Now()
	var claim int
	switch v {
	case VariantParallelPartition:
		ctx := &guidance.Context{
			DB: s.DB, State: s.State, Engine: s.Engine,
			Grounding: s.Grounding(), RNG: rng,
			CandidatePool: len(cand), Workers: 0,
		}
		gains := guidance.InformationGains(ctx, cand)
		claim = cand[argmax(gains)]
	default:
		gains := make([]float64, len(cand))
		for i, c := range cand {
			gains[i] = unpartitionedGain(v, s, c)
		}
		claim = cand[argmax(gains)]
	}
	// Elicit and infer, as in Alg. 1.
	s.State.SetLabel(claim, corpus.Truth[claim])
	s.Engine.InferIncremental(s.State)
	_ = s.Engine.Grounding(s.State)
	return time.Since(start)
}

// unpartitionedGain scores one candidate without graph partitioning: the
// what-if chains sweep every claim, and the database entropy is either
// exact (origin) or the Eq. 13 approximation (scalable).
func unpartitionedGain(v Variant, s *core.Session, c int) float64 {
	e := s.Engine
	ch := e.Chain()
	cfgEM := e.Config()
	measure := func(state *factdb.State) float64 {
		if v == VariantOrigin {
			h, _ := entropy.Exact(e.Model(), state)
			return h
		}
		return entropy.Approx(state)
	}
	hCur := measure(s.State)
	hypo := func(val bool) float64 {
		snap := ch.SnapshotComponent(s.DB.ComponentOf(c))
		// Full, unpartitioned sweep set: every component is refreshed.
		ch.Freeze(c, val)
		for i := 0; i < cfgEM.HypoBurn; i++ {
			ch.Sweep(nil)
		}
		counts := make([]int, s.DB.NumClaims)
		for i := 0; i < cfgEM.HypoSamples; i++ {
			ch.Sweep(nil)
			for cc := 0; cc < s.DB.NumClaims; cc++ {
				if ch.Value(cc) {
					counts[cc]++
				}
			}
		}
		tmp := s.State.Clone()
		tmp.SetLabel(c, val)
		for cc := 0; cc < s.DB.NumClaims; cc++ {
			if !tmp.Labeled(cc) {
				tmp.SetP(cc, float64(counts[cc])/float64(cfgEM.HypoSamples))
			}
		}
		h := measure(tmp)
		ch.Restore(snap)
		return h
	}
	p := s.State.P(c)
	return hCur - (p*hypo(true) + (1-p)*hypo(false))
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// Fig2Row is one (dataset, variant) bar of Fig. 2.
type Fig2Row struct {
	Dataset string
	Variant Variant
	// AvgSeconds is the mean response time Δt per iteration.
	AvgSeconds float64
}

// Fig2Result holds the response-time comparison of §8.2.
type Fig2Result struct {
	Rows []Fig2Row
	// Iterations is the number of timed iterations per cell.
	Iterations int
}

// RunFig2 reproduces Fig. 2: the average per-iteration response time
// (claim selection + inference) for the three variants on the three
// datasets. The paper's claim is the *ordering* — origin slowest,
// parallel+partition fastest (< 0.5 s at published scale on the authors'
// hardware); absolute numbers depend on machine and scale.
func RunFig2(cfg Config) Fig2Result {
	cfg = cfg.withDefaults()
	iters := 5
	res := Fig2Result{Iterations: iters}
	for _, prof := range cfg.profiles() {
		for _, v := range Variants() {
			corpus := synth.Generate(prof, cfg.Seed)
			s := core.NewSession(corpus.DB, core.Options{
				FullSweepEvery: 1, // paper-faithful per-answer EM: figures reproduce §8
				Seed:           cfg.Seed + 7,
				CandidatePool:  cfg.CandidatePool,
				Workers:        cfg.Workers,
			})
			rng := stats.NewRNG(cfg.Seed + 23)
			var total time.Duration
			for it := 0; it < iters; it++ {
				ctx := &guidance.Context{
					DB: s.DB, State: s.State, Engine: s.Engine,
					Grounding: s.Grounding(), RNG: rng,
					CandidatePool: cfg.CandidatePool, Workers: cfg.Workers,
				}
				cand := (guidance.Uncertainty{}).Rank(ctx, cfg.CandidatePool)
				total += selectionTime(v, s, corpus, cand, rng)
			}
			res.Rows = append(res.Rows, Fig2Row{
				Dataset:    datasetName(prof),
				Variant:    v,
				AvgSeconds: total.Seconds() / float64(iters),
			})
		}
	}
	return res
}

// Table renders Fig. 2.
func (r Fig2Result) Table() Table {
	t := Table{
		Title:  fmt.Sprintf("Fig. 2 — avg response time per iteration (s, %d iterations)", r.Iterations),
		Header: []string{"dataset", "origin", "scalable", "parallel+partition"},
	}
	byDS := map[string]map[Variant]float64{}
	for _, row := range r.Rows {
		if byDS[row.Dataset] == nil {
			byDS[row.Dataset] = map[Variant]float64{}
		}
		byDS[row.Dataset][row.Variant] = row.AvgSeconds
	}
	for _, ds := range []string{"wiki", "health", "snopes"} {
		if m, ok := byDS[ds]; ok {
			t.Rows = append(t.Rows, []string{ds, f3(m[VariantOrigin]), f3(m[VariantScalable]), f3(m[VariantParallelPartition])})
		}
	}
	return t
}

// Fig3Row is one (variant, effort-bin) point of Fig. 3.
type Fig3Row struct {
	Variant Variant
	Effort  float64
	Seconds float64
}

// Fig3Result holds the response-time-vs-effort study (§8.2, snopes).
type Fig3Result struct {
	Rows []Fig3Row
}

// RunFig3 reproduces Fig. 3: per-iteration response time across the
// validation run, bucketed by label effort, on the largest dataset
// (snopes). The paper observes a peak between 40% and 60% effort, where
// user input enables the most new inferences.
func RunFig3(cfg Config) Fig3Result {
	cfg = cfg.withDefaults()
	prof := scaleFor(synth.Snopes, cfg.TargetClaims)
	var res Fig3Result
	bins := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	for _, v := range Variants() {
		corpus := synth.Generate(prof, cfg.Seed)
		s := core.NewSession(corpus.DB, core.Options{
			FullSweepEvery: 1, // paper-faithful per-answer EM: figures reproduce §8
			Seed:           cfg.Seed + 7,
			CandidatePool:  cfg.CandidatePool,
			Workers:        cfg.Workers,
		})
		rng := stats.NewRNG(cfg.Seed + 29)
		binTime := make([]time.Duration, len(bins))
		binN := make([]int, len(bins))
		for s.State.NumLabeled() < corpus.DB.NumClaims {
			ctx := &guidance.Context{
				DB: s.DB, State: s.State, Engine: s.Engine,
				Grounding: s.Grounding(), RNG: rng,
				CandidatePool: cfg.CandidatePool, Workers: cfg.Workers,
			}
			cand := (guidance.Uncertainty{}).Rank(ctx, cfg.CandidatePool)
			if len(cand) == 0 {
				break
			}
			dt := selectionTime(v, s, corpus, cand, rng)
			e := s.State.Effort()
			for bi, hi := range bins {
				if e <= hi+1e-9 {
					binTime[bi] += dt
					binN[bi]++
					break
				}
			}
		}
		for bi, hi := range bins {
			if binN[bi] > 0 {
				res.Rows = append(res.Rows, Fig3Row{
					Variant: v, Effort: hi,
					Seconds: binTime[bi].Seconds() / float64(binN[bi]),
				})
			}
		}
	}
	return res
}

// Table renders Fig. 3.
func (r Fig3Result) Table() Table {
	t := Table{
		Title:  "Fig. 3 — response time vs label effort (snopes)",
		Header: []string{"effort<=", "origin", "scalable", "parallel+partition"},
	}
	byBin := map[float64]map[Variant]float64{}
	for _, row := range r.Rows {
		if byBin[row.Effort] == nil {
			byBin[row.Effort] = map[Variant]float64{}
		}
		byBin[row.Effort][row.Variant] = row.Seconds
	}
	for _, bin := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		if m, ok := byBin[bin]; ok {
			t.Rows = append(t.Rows, []string{
				pct(bin), f3(m[VariantOrigin]), f3(m[VariantScalable]), f3(m[VariantParallelPartition]),
			})
		}
	}
	return t
}

// Fig9Point is one effort-binned sample of the early-termination traces.
type Fig9Point struct {
	Effort    float64
	PrecImp   float64 // precision improvement R_i (%)
	URR       float64 // uncertainty reduction rate (%)
	CNG       float64 // amount of changes (%)
	PRE       float64 // validated predictions (%)
	PIR       float64 // precision improvement rate (%)
	Precision float64
}

// Fig9Result holds the §8.6 indicator traces.
type Fig9Result struct {
	Points []Fig9Point
}

// RunFig9 reproduces Fig. 9: a hybrid validation run on the snopes
// profile with all four §6.1 indicators traced against label effort.
func RunFig9(cfg Config) Fig9Result {
	cfg = cfg.withDefaults()
	prof := scaleFor(synth.Snopes, cfg.TargetClaims)
	corpus := synth.Generate(prof, cfg.Seed)
	user := &sim.Oracle{Truth: corpus.Truth}
	s := core.NewSession(corpus.DB, core.Options{
		FullSweepEvery: 1, // paper-faithful per-answer EM: figures reproduce §8
		Seed:           cfg.Seed + 7,
		CandidatePool:  cfg.CandidatePool,
		Workers:        cfg.Workers,
	})
	p0 := s.Precision(corpus.Truth)
	tracker := newIndicatorTracker(s, corpus)
	var res Fig9Result
	cvEvery := corpus.DB.NumClaims / 10
	if cvEvery < 1 {
		cvEvery = 1
	}
	rng := stats.NewRNG(cfg.Seed + 31)
	s.Observer = func(sess *core.Session) {
		tracker.observe(sess)
		if sess.State.NumLabeled()%cvEvery == 0 {
			tracker.observeCV(sess, rng)
		}
		pi := sess.Precision(corpus.Truth)
		res.Points = append(res.Points, Fig9Point{
			Effort:    sess.Effort(),
			PrecImp:   100 * factdb.PrecisionImprovement(pi, p0),
			URR:       100 * tracker.urr(),
			CNG:       100 * tracker.cng(),
			PRE:       100 * tracker.pre(),
			PIR:       100 * tracker.pir(),
			Precision: pi,
		})
	}
	s.Run(user)
	return res
}

// Table renders Fig. 9 at coarse effort steps.
func (r Fig9Result) Table() Table {
	t := Table{
		Title:  "Fig. 9 — early termination indicators vs label effort",
		Header: []string{"effort", "prec.imp%", "URR%", "CNG%", "PRE%", "PIR%"},
	}
	for _, target := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		// Pick the closest recorded point.
		best := -1
		for i, p := range r.Points {
			if best < 0 || abs(p.Effort-target) < abs(r.Points[best].Effort-target) {
				best = i
			}
		}
		if best < 0 {
			continue
		}
		p := r.Points[best]
		t.Rows = append(t.Rows, []string{
			pct(p.Effort), f2(p.PrecImp), f2(p.URR), f2(p.CNG), f2(p.PRE), f2(p.PIR),
		})
	}
	return t
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
