package experiments

import (
	"fmt"

	"factcheck/internal/core"
	"factcheck/internal/entropy"
	"factcheck/internal/guidance"
	"factcheck/internal/sim"
	"factcheck/internal/stats"
	"factcheck/internal/synth"
)

// strategyByName instantiates the five §8.4 strategies.
func strategyByName(name string) guidance.Strategy {
	switch name {
	case "random":
		return guidance.Random{}
	case "uncertainty":
		return guidance.Uncertainty{}
	case "info":
		return guidance.InfoGain{}
	case "source":
		return guidance.SourceGain{}
	case "hybrid":
		return &guidance.Hybrid{}
	}
	panic(fmt.Sprintf("experiments: unknown strategy %q", name))
}

// StrategyNames lists the §8.4 strategies in paper order.
func StrategyNames() []string {
	return []string{"random", "uncertainty", "info", "source", "hybrid"}
}

// runTrace runs a validation session to the given precision target (or
// exhaustion when stopAt <= 0) and returns the precision-vs-effort curve.
// Effort counts every elicitation in History (so repairs count, as in
// Fig. 7). The returned session allows further inspection.
func runTrace(corpus *synth.Corpus, strat guidance.Strategy, user core.User,
	cfg Config, seed int64, stopAt float64, confirmEvery float64) ([]CurvePoint, *core.Session) {

	opts := core.Options{
		FullSweepEvery: 1, // paper-faithful per-answer EM: figures reproduce §8
		Strategy:       strat,
		Seed:           seed,
		CandidatePool:  cfg.CandidatePool,
		Workers:        cfg.Workers,
		ConfirmEvery:   confirmEvery,
	}
	if stopAt > 0 {
		opts.Goal = func(sess *core.Session) bool {
			return sess.Precision(corpus.Truth) >= stopAt
		}
	}
	s := core.NewSession(corpus.DB, opts)
	curve := []CurvePoint{{Effort: 0, Value: s.Precision(corpus.Truth)}}
	s.Observer = func(sess *core.Session) {
		e := float64(len(sess.History())) / float64(corpus.DB.NumClaims)
		curve = append(curve, CurvePoint{Effort: e, Value: sess.Precision(corpus.Truth)})
	}
	s.Run(user)
	return curve, s
}

// Fig6Row is one precision-vs-effort curve of Fig. 6.
type Fig6Row struct {
	Dataset  string
	Strategy string
	Curve    []CurvePoint
	// EffortTo90 is the user effort needed to reach 0.9 precision (the
	// headline comparison of §8.4); 1 when never reached.
	EffortTo90 float64
}

// Fig6Result holds all curves of Fig. 6.
type Fig6Result struct {
	Rows []Fig6Row
}

// RunFig6 reproduces Fig. 6 (effectiveness of guiding): precision versus
// label effort for the five strategies on the three datasets, with the
// user simulated by ground truth until precision 1.0 is reached.
func RunFig6(cfg Config) Fig6Result {
	cfg = cfg.withDefaults()
	var res Fig6Result
	grid := effortGrid(0.05)
	for _, prof := range cfg.profiles() {
		for _, name := range cfg.strategies() {
			var curves [][]CurvePoint
			for run := 0; run < cfg.Runs; run++ {
				seed := cfg.Seed + int64(run)*1000
				corpus := synth.Generate(prof, seed)
				user := &sim.Oracle{Truth: corpus.Truth}
				curve, _ := runTrace(corpus, strategyByName(name), user, cfg, seed+7, 1.0, 0)
				curves = append(curves, curve)
			}
			mean := meanCurves(curves, grid)
			var toNinety float64
			for _, c := range curves {
				toNinety += effortToReach(c, 0.9)
			}
			res.Rows = append(res.Rows, Fig6Row{
				Dataset:    datasetName(prof),
				Strategy:   name,
				Curve:      mean,
				EffortTo90: toNinety / float64(len(curves)),
			})
		}
	}
	return res
}

// Table renders the effort-to-90%-precision summary.
func (r Fig6Result) Table() Table {
	t := Table{
		Title:  "Fig. 6 — effectiveness of guiding (effort to reach precision >= 0.9)",
		Header: []string{"dataset", "strategy", "effort@0.9", "prec@20%", "prec@50%"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Dataset, row.Strategy, pct(row.EffortTo90),
			f3(interpolateAt(row.Curve, 0.2)), f3(interpolateAt(row.Curve, 0.5)),
		})
	}
	return t
}

// Fig7Result holds the Fig. 7 curves (guiding with erroneous input); the
// effort axis counts labels plus repairs.
type Fig7Result struct {
	ErrorProb float64
	Rows      []Fig6Row
}

// RunFig7 reproduces Fig. 7: the Fig. 6 protocol with user mistakes at
// probability p = 0.2 and the confirmation check triggered after each 1%
// of validations (§8.5).
func RunFig7(cfg Config) Fig7Result {
	cfg = cfg.withDefaults()
	const p = 0.2
	res := Fig7Result{ErrorProb: p}
	for _, prof := range cfg.profiles() {
		for _, name := range cfg.strategies() {
			var curves [][]CurvePoint
			for run := 0; run < cfg.Runs; run++ {
				seed := cfg.Seed + int64(run)*1000
				corpus := synth.Generate(prof, seed)
				user := sim.NewErroneous(corpus.Truth, p, seed+13)
				curve, _ := runTrace(corpus, strategyByName(name), user, cfg, seed+7, 0.995, 0.01)
				curves = append(curves, curve)
			}
			// Fig. 7's x-axis is label+repair effort, which exceeds 1 when
			// confirmation checks re-elicit verdicts — extend the grid to
			// the last observed effort so the curve's tail reflects the
			// post-repair precision rather than a mid-run snapshot.
			maxEffort := 1.0
			for _, c := range curves {
				if n := len(c); n > 0 && c[n-1].Effort > maxEffort {
					maxEffort = c[n-1].Effort
				}
			}
			grid := effortGrid(0.05)
			for e := 1.05; e <= maxEffort+1e-9; e += 0.05 {
				grid = append(grid, e)
			}
			mean := meanCurves(curves, grid)
			var toNinety float64
			for _, c := range curves {
				toNinety += effortToReach(c, 0.9)
			}
			res.Rows = append(res.Rows, Fig6Row{
				Dataset:    datasetName(prof),
				Strategy:   name,
				Curve:      mean,
				EffortTo90: toNinety / float64(len(curves)),
			})
		}
	}
	return res
}

// Table renders the Fig. 7 summary.
func (r Fig7Result) Table() Table {
	t := Table{
		Title:  fmt.Sprintf("Fig. 7 — guiding with erroneous user input (p=%.2f, label+repair effort)", r.ErrorProb),
		Header: []string{"dataset", "strategy", "effort@0.9", "prec@20%", "prec@50%"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Dataset, row.Strategy, pct(row.EffortTo90),
			f3(interpolateAt(row.Curve, 0.2)), f3(interpolateAt(row.Curve, 0.5)),
		})
	}
	return t
}

// Fig5Result holds the uncertainty-precision pairs of Fig. 5 and their
// Pearson correlation (the paper reports −0.8523).
type Fig5Result struct {
	Precision   []float64
	Uncertainty []float64
	Pearson     float64
}

// RunFig5 reproduces Fig. 5: information-driven validation runs tracking
// (precision, normalised uncertainty) pairs until precision 1.0.
func RunFig5(cfg Config) Fig5Result {
	cfg = cfg.withDefaults()
	var res Fig5Result
	for _, prof := range cfg.profiles() {
		for run := 0; run < cfg.Runs; run++ {
			seed := cfg.Seed + int64(run)*1000
			corpus := synth.Generate(prof, seed)
			opts := core.Options{
				FullSweepEvery: 1, // paper-faithful per-answer EM: figures reproduce §8
				Strategy:       guidance.InfoGain{},
				Seed:           seed + 3,
				CandidatePool:  cfg.CandidatePool,
				Workers:        cfg.Workers,
				Goal: func(s *core.Session) bool {
					return s.Precision(corpus.Truth) >= 1
				},
			}
			s := core.NewSession(corpus.DB, opts)
			var precs, uncs []float64
			s.Observer = func(sess *core.Session) {
				precs = append(precs, sess.Precision(corpus.Truth))
				uncs = append(uncs, entropy.Approx(sess.State))
			}
			s.Run(&sim.Oracle{Truth: corpus.Truth})
			// Normalise uncertainty by the run's maximum.
			maxU := 0.0
			for _, u := range uncs {
				if u > maxU {
					maxU = u
				}
			}
			for i := range uncs {
				if maxU > 0 {
					uncs[i] /= maxU
				}
				res.Precision = append(res.Precision, precs[i])
				res.Uncertainty = append(res.Uncertainty, uncs[i])
			}
		}
	}
	res.Pearson = stats.Pearson(res.Precision, res.Uncertainty)
	return res
}

// Table renders the Fig. 5 correlation summary.
func (r Fig5Result) Table() Table {
	return Table{
		Title:  "Fig. 5 — uncertainty vs precision",
		Header: []string{"samples", "pearson"},
		Rows:   [][]string{{fmt.Sprintf("%d", len(r.Precision)), f3(r.Pearson)}},
	}
}

// Table1Row is one (dataset, p) cell of Table 1.
type Table1Row struct {
	Dataset string
	P       float64
	// Detected is the fraction of injected mistakes flagged by the
	// confirmation check (the paper reports percentages).
	Detected float64
	Mistakes int
}

// Table1Result holds the mistake-detection study of §8.5.
type Table1Result struct {
	Rows []Table1Row
}

// RunTable1 reproduces Table 1: user mistakes injected with probability
// p ∈ {0.15, 0.20, 0.25, 0.30}; the confirmation check runs after each 1%
// of validations; the fraction of mistaken verdicts later flagged (and so
// re-elicited) is reported.
func RunTable1(cfg Config) Table1Result {
	cfg = cfg.withDefaults()
	var res Table1Result
	for _, prof := range cfg.profiles() {
		for _, p := range []float64{0.15, 0.20, 0.25, 0.30} {
			detected, mistakes := 0, 0
			for run := 0; run < cfg.Runs; run++ {
				seed := cfg.Seed + int64(run)*1000
				corpus := synth.Generate(prof, seed)
				user := sim.NewErroneous(corpus.Truth, p, seed+17)
				_, s := runTrace(corpus, &guidance.Hybrid{}, user, cfg, seed+7, 0, 0.01)
				d, m := countDetectedMistakes(s, corpus.Truth)
				detected += d
				mistakes += m
			}
			rate := 1.0
			if mistakes > 0 {
				rate = float64(detected) / float64(mistakes)
			}
			res.Rows = append(res.Rows, Table1Row{
				Dataset: datasetName(prof), P: p, Detected: rate, Mistakes: mistakes,
			})
		}
	}
	return res
}

// countDetectedMistakes scans a session history: a mistake is a first
// verdict for a claim that contradicts truth; it counts as detected when
// the confirmation check later re-elicited that claim (a Repaired entry).
func countDetectedMistakes(s *core.Session, truth []bool) (detected, mistakes int) {
	firstVerdict := map[int]bool{}
	reprompted := map[int]bool{}
	for _, v := range s.History() {
		if v.Repaired {
			reprompted[v.Claim] = true
			continue
		}
		if _, ok := firstVerdict[v.Claim]; !ok {
			firstVerdict[v.Claim] = v.Verdict
		}
	}
	for c, v := range firstVerdict {
		if v != truth[c] {
			mistakes++
			if reprompted[c] {
				detected++
			}
		}
	}
	return detected, mistakes
}

// Table renders Table 1.
func (r Table1Result) Table() Table {
	t := Table{
		Title:  "Table 1 — detected mistakes (%)",
		Header: []string{"dataset", "p=0.15", "p=0.20", "p=0.25", "p=0.30"},
	}
	byDataset := map[string][]string{}
	for _, row := range r.Rows {
		byDataset[row.Dataset] = append(byDataset[row.Dataset], fmt.Sprintf("%.0f", 100*row.Detected))
	}
	for _, ds := range []string{"wiki", "health", "snopes"} {
		if cells, ok := byDataset[ds]; ok {
			t.Rows = append(t.Rows, append([]string{ds}, cells...))
		}
	}
	return t
}

// Fig8Row is one (dataset, pm, precision-target) cell of Fig. 8.
type Fig8Row struct {
	Dataset     string
	SkipProb    float64
	PrecTarget  float64
	SavedEffort float64 // relative effort saved vs the random baseline
}

// Fig8Result holds the missing-input study of §8.5.
type Fig8Result struct {
	Rows []Fig8Row
}

// RunFig8 reproduces Fig. 8: a user skips each newly selected claim with
// probability pm (the second-best candidate is validated instead); the
// saved effort is the relative reduction in user effort against the
// random baseline when running until precision 0.7 / 0.8 / 0.9. Skipping
// early hurts the savings most (§8.5).
func RunFig8(cfg Config) Fig8Result {
	cfg = cfg.withDefaults()
	var res Fig8Result
	targets := []float64{0.7, 0.8, 0.9}
	for _, prof := range cfg.profiles() {
		for _, pm := range []float64{0.1, 0.25, 0.5} {
			saved := make([]float64, len(targets))
			for run := 0; run < cfg.Runs; run++ {
				seed := cfg.Seed + int64(run)*1000
				corpus := synth.Generate(prof, seed)
				oracle := &sim.Oracle{Truth: corpus.Truth}
				skipper := sim.NewSkipper(oracle, pm, seed+19)
				skipCurve, _ := runTrace(corpus, &guidance.Hybrid{}, skipper, cfg, seed+7, 0.95, 0)
				randCurve, _ := runTrace(corpus, guidance.Random{}, oracle, cfg, seed+11, 0.95, 0)
				for i, target := range targets {
					es := effortToReach(skipCurve, target)
					er := effortToReach(randCurve, target)
					if er > 0 {
						saved[i] += (er - es) / er
					}
				}
			}
			for i, target := range targets {
				res.Rows = append(res.Rows, Fig8Row{
					Dataset:     datasetName(prof),
					SkipProb:    pm,
					PrecTarget:  target,
					SavedEffort: saved[i] / float64(cfg.Runs),
				})
			}
		}
	}
	return res
}

// Table renders Fig. 8.
func (r Fig8Result) Table() Table {
	t := Table{
		Title:  "Fig. 8 — effects of missing user input (saved effort vs random baseline)",
		Header: []string{"dataset", "pm", "prec=0.7", "prec=0.8", "prec=0.9"},
	}
	type key struct {
		ds string
		pm float64
	}
	cells := map[key]map[float64]float64{}
	for _, row := range r.Rows {
		k := key{row.Dataset, row.SkipProb}
		if cells[k] == nil {
			cells[k] = map[float64]float64{}
		}
		cells[k][row.PrecTarget] = row.SavedEffort
	}
	for _, ds := range []string{"wiki", "health", "snopes"} {
		for _, pm := range []float64{0.1, 0.25, 0.5} {
			k := key{ds, pm}
			if m, ok := cells[k]; ok {
				t.Rows = append(t.Rows, []string{
					ds, f2(pm), pct(m[0.7]), pct(m[0.8]), pct(m[0.9]),
				})
			}
		}
	}
	return t
}

// Fig4Result is the probability histogram study of §8.3: for each effort
// level, the frequency (%) of claims whose correct-value probability
// falls into each of ten bins.
type Fig4Result struct {
	Efforts []float64
	Bins    [][]float64 // [effort][bin] frequency in percent
}

// RunFig4 reproduces Fig. 4: hybrid validation paused at 0%, 20% and 40%
// effort; at each pause, the probability assigned to each claim's correct
// value (Pr(c=1) for true claims, Pr(c=0) for false ones) is histogrammed
// over all datasets.
func RunFig4(cfg Config) Fig4Result {
	cfg = cfg.withDefaults()
	res := Fig4Result{Efforts: []float64{0, 0.2, 0.4}}
	counts := make([][]int, len(res.Efforts))
	totals := make([]int, len(res.Efforts))
	for i := range counts {
		counts[i] = make([]int, 10)
	}
	for _, prof := range cfg.profiles() {
		seed := cfg.Seed
		corpus := synth.Generate(prof, seed)
		user := &sim.Oracle{Truth: corpus.Truth}
		opts := core.Options{
			FullSweepEvery: 1, // paper-faithful per-answer EM: figures reproduce §8
			Strategy:       &guidance.Hybrid{},
			Seed:           seed + 7,
			CandidatePool:  cfg.CandidatePool,
			Workers:        cfg.Workers,
			Budget:         int(0.45*float64(corpus.DB.NumClaims)) + 1,
		}
		s := core.NewSession(corpus.DB, opts)
		record := func(level int) {
			for c := 0; c < corpus.DB.NumClaims; c++ {
				p := s.State.P(c)
				if !corpus.Truth[c] {
					p = 1 - p
				}
				bin := int(p * 10)
				if bin > 9 {
					bin = 9
				}
				counts[level][bin]++
				totals[level]++
			}
		}
		record(0)
		nextLevel := 1
		s.Observer = func(sess *core.Session) {
			for nextLevel < len(res.Efforts) && sess.Effort() >= res.Efforts[nextLevel] {
				record(nextLevel)
				nextLevel++
			}
		}
		s.Run(user)
		for nextLevel < len(res.Efforts) {
			record(nextLevel)
			nextLevel++
		}
	}
	res.Bins = make([][]float64, len(res.Efforts))
	for i := range counts {
		res.Bins[i] = make([]float64, 10)
		for b, n := range counts[i] {
			if totals[i] > 0 {
				res.Bins[i][b] = 100 * float64(n) / float64(totals[i])
			}
		}
	}
	return res
}

// MeanCorrectProbability returns the histogram mean at an effort level —
// the mass should shift right as effort grows (§8.3).
func (r Fig4Result) MeanCorrectProbability(level int) float64 {
	sum, total := 0.0, 0.0
	for b, freq := range r.Bins[level] {
		mid := (float64(b) + 0.5) / 10
		sum += mid * freq
		total += freq
	}
	if total == 0 {
		return 0
	}
	return sum / total
}

// Table renders Fig. 4.
func (r Fig4Result) Table() Table {
	t := Table{
		Title:  "Fig. 4 — probabilities of correct credibility values (frequency %, bins of 0.1)",
		Header: []string{"effort", ".0-.1", ".1-.2", ".2-.3", ".3-.4", ".4-.5", ".5-.6", ".6-.7", ".7-.8", ".8-.9", ".9-1"},
	}
	for i, e := range r.Efforts {
		row := []string{pct(e)}
		for _, freq := range r.Bins[i] {
			row = append(row, fmt.Sprintf("%.1f", freq))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
