package experiments

import (
	"strings"
	"testing"
)

// tiny returns a fast configuration for unit tests.
func tiny() Config {
	return Config{
		TargetClaims:  30,
		Seed:          7,
		Runs:          1,
		Workers:       1,
		CandidatePool: 8,
		Datasets:      []string{"wiki"},
	}
}

func TestScaleFor(t *testing.T) {
	cfg := DefaultConfig()
	for _, p := range cfg.profiles() {
		if p.Claims > cfg.TargetClaims+5 {
			t.Fatalf("%s scaled to %d claims, target %d", p.Name, p.Claims, cfg.TargetClaims)
		}
	}
	// Datasets filter.
	c := tiny()
	profs := c.profiles()
	if len(profs) != 1 || datasetName(profs[0]) != "wiki" {
		t.Fatalf("profiles = %v", profs)
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	s := tab.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "333") {
		t.Fatalf("table rendering broken:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), s)
	}
}

func TestCurveHelpers(t *testing.T) {
	curve := []CurvePoint{{0, 0.5}, {0.5, 0.75}, {1, 1}}
	if got := interpolateAt(curve, 0.25); got != 0.625 {
		t.Fatalf("interpolateAt = %v", got)
	}
	if got := interpolateAt(curve, 0); got != 0.5 {
		t.Fatalf("interpolateAt(0) = %v", got)
	}
	if got := interpolateAt(curve, 2); got != 1 {
		t.Fatalf("interpolateAt(2) = %v", got)
	}
	if got := effortToReach(curve, 0.75); got != 0.5 {
		t.Fatalf("effortToReach = %v", got)
	}
	if got := effortToReach(curve, 2); got != 1 {
		t.Fatalf("effortToReach(unreachable) = %v", got)
	}
	mean := meanCurves([][]CurvePoint{curve, curve}, []float64{0.5, 1})
	if mean[0].Value != 0.75 || mean[1].Value != 1 {
		t.Fatalf("meanCurves = %v", mean)
	}
	if got := effortGrid(0.5); len(got) != 2 {
		t.Fatalf("effortGrid = %v", got)
	}
}

func TestCostSaving(t *testing.T) {
	if CostSaving(1, 0.5) != 0 {
		t.Fatal("CS(1) must be 0")
	}
	if !(CostSaving(20, 0.5) > CostSaving(5, 0.5)) {
		t.Fatal("CS must grow with k")
	}
	if !(CostSaving(5, 1) > CostSaving(5, 0.25)) {
		t.Fatal("CS must grow with alpha")
	}
}

func TestRunFig6Shape(t *testing.T) {
	cfg := tiny()
	cfg.Strategies = []string{"random", "hybrid"}
	res := RunFig6(cfg)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.EffortTo90 <= 0 || row.EffortTo90 > 1 {
			t.Fatalf("%s effort@0.9 = %v", row.Strategy, row.EffortTo90)
		}
		last := row.Curve[len(row.Curve)-1]
		if last.Value < 0.95 {
			t.Fatalf("%s final precision = %v (full oracle run should approach 1)", row.Strategy, last.Value)
		}
	}
	if got := res.Table().String(); !strings.Contains(got, "hybrid") {
		t.Fatalf("table missing strategy:\n%s", got)
	}
}

func TestRunFig5NegativeCorrelation(t *testing.T) {
	res := RunFig5(tiny())
	if len(res.Precision) < 10 {
		t.Fatalf("too few samples: %d", len(res.Precision))
	}
	if res.Pearson >= -0.2 {
		t.Fatalf("uncertainty-precision Pearson = %v, want strongly negative", res.Pearson)
	}
	_ = res.Table().String()
}

func TestRunFig4MassShiftsRight(t *testing.T) {
	res := RunFig4(tiny())
	if len(res.Bins) != 3 {
		t.Fatalf("levels = %d", len(res.Bins))
	}
	m0 := res.MeanCorrectProbability(0)
	m2 := res.MeanCorrectProbability(2)
	if m2 <= m0 {
		t.Fatalf("correct-value mass did not shift right: %v -> %v", m0, m2)
	}
	for _, bins := range res.Bins {
		sum := 0.0
		for _, f := range bins {
			sum += f
		}
		if sum < 99 || sum > 101 {
			t.Fatalf("histogram sums to %v%%", sum)
		}
	}
	_ = res.Table().String()
}

func TestRunTable1DetectsMistakes(t *testing.T) {
	cfg := tiny()
	res := RunTable1(cfg)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Detected < 0 || row.Detected > 1 {
			t.Fatalf("detected = %v", row.Detected)
		}
		if row.Mistakes > 0 && row.Detected < 0.5 {
			t.Fatalf("p=%v: detected only %v of mistakes", row.P, row.Detected)
		}
	}
	_ = res.Table().String()
}

func TestRunFig8Shape(t *testing.T) {
	res := RunFig8(tiny())
	if len(res.Rows) != 9 { // 3 pm × 3 targets
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Relative savings can swing far negative at tiny scale when the
		// random baseline gets lucky; only the upper bound is structural.
		if row.SavedEffort > 1 {
			t.Fatalf("saved effort = %v out of range", row.SavedEffort)
		}
	}
	_ = res.Table().String()
}

func TestRunFig2Ordering(t *testing.T) {
	cfg := tiny()
	res := RunFig2(cfg)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var byVariant = map[Variant]float64{}
	for _, row := range res.Rows {
		if row.AvgSeconds <= 0 {
			t.Fatalf("%s time = %v", row.Variant, row.AvgSeconds)
		}
		byVariant[row.Variant] = row.AvgSeconds
	}
	// The paper's qualitative claim: origin is the slowest variant.
	if byVariant[VariantOrigin] < byVariant[VariantParallelPartition] {
		t.Logf("warning: origin (%v) faster than parallel+partition (%v) at this tiny scale",
			byVariant[VariantOrigin], byVariant[VariantParallelPartition])
	}
	_ = res.Table().String()
}

func TestRunFig9IndicatorsConverge(t *testing.T) {
	res := RunFig9(tiny())
	if len(res.Points) < 10 {
		t.Fatalf("points = %d", len(res.Points))
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.PrecImp < first.PrecImp {
		t.Fatalf("precision improvement decreased: %v -> %v", first.PrecImp, last.PrecImp)
	}
	if last.Precision < 0.9 {
		t.Fatalf("final precision = %v", last.Precision)
	}
	// Late-stage change indicator must be small (converged).
	if last.CNG > 20 {
		t.Fatalf("final CNG = %v%%, should be near zero", last.CNG)
	}
	_ = res.Table().String()
}

func TestRunFig10Tradeoff(t *testing.T) {
	cfg := tiny()
	res := RunFig10(cfg)
	if len(res.Rows) != len(BatchSizes())*3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.K == 1 && row.PrecDegradation != 0 {
			t.Fatalf("k=1 degradation = %v, must be 0", row.PrecDegradation)
		}
		if row.CostSaving < 0 || row.CostSaving > 100 {
			t.Fatalf("cost saving = %v", row.CostSaving)
		}
	}
	_ = res.Table().String()
}

func TestRunFig11Shape(t *testing.T) {
	cfg := tiny()
	cfg.TargetClaims = 20
	res := RunFig11(cfg)
	if len(res.Rows) != len(BatchSizes())*2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		b := row.Effort
		if !(b.Min <= b.Median && b.Median <= b.Max) {
			t.Fatalf("box stats disordered: %+v", b)
		}
		if b.Max > 1+1e-9 || b.Min < 0 {
			t.Fatalf("box out of range: %+v", b)
		}
	}
	_ = res.Table().String()
}

func TestRunStreamTime(t *testing.T) {
	res := RunStreamTime(tiny())
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].AvgSeconds <= 0 {
		t.Fatal("update time must be positive")
	}
	_ = res.Table().String()
}

func TestRunTable2TauIncreasesWithPeriod(t *testing.T) {
	cfg := tiny()
	res := RunTable2(cfg)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.TauB < -1-1e-9 || row.TauB > 1+1e-9 {
			t.Fatalf("tau = %v", row.TauB)
		}
	}
	// The monotone trend (larger periods resemble offline more) only
	// emerges at larger scale with averaging; at this tiny test scale
	// only the structural properties are asserted. The harness run in
	// EXPERIMENTS.md carries the trend check.
	_ = res.Table().String()
}

func TestRunTable3Tradeoff(t *testing.T) {
	res := RunTable3(tiny())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var expert, crowd Table3Row
	for _, row := range res.Rows {
		if row.Population == "expert" {
			expert = row
		} else {
			crowd = row
		}
	}
	if expert.Accuracy < crowd.Accuracy {
		t.Fatalf("expert acc %v below crowd %v", expert.Accuracy, crowd.Accuracy)
	}
	if expert.AvgSeconds <= crowd.AvgSeconds {
		t.Fatalf("expert time %v not above crowd %v", expert.AvgSeconds, crowd.AvgSeconds)
	}
	_ = res.Table().String()
}

func TestAblationsRun(t *testing.T) {
	cfg := tiny()
	cfg.TargetClaims = 20
	for _, res := range []AblationResult{
		RunAblationWarmStart(cfg),
		RunAblationTrustCoupling(cfg),
		RunAblationEntropy(cfg),
		RunAblationCandidatePool(cfg),
		RunAblationBatchGreedy(cfg),
	} {
		if len(res.Rows) < 2 {
			t.Fatalf("%s: rows = %d", res.Name, len(res.Rows))
		}
		for _, row := range res.Rows {
			if row.AvgSeconds < 0 {
				t.Fatalf("%s/%s: negative time", res.Name, row.Setting)
			}
			if row.Precision < 0 || row.Precision > 1 {
				t.Fatalf("%s/%s: precision %v", res.Name, row.Setting, row.Precision)
			}
		}
		if res.Table().String() == "" {
			t.Fatalf("%s: empty table", res.Name)
		}
	}
}

func TestRunFig7WithMistakes(t *testing.T) {
	cfg := tiny()
	cfg.Strategies = []string{"hybrid"}
	res := RunFig7(cfg)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	first := row.Curve[0]
	last := row.Curve[len(row.Curve)-1]
	if last.Value < 0.6 {
		t.Fatalf("final precision with repairs = %v", last.Value)
	}
	if last.Value <= first.Value {
		t.Fatalf("erroneous-input run did not improve: %v -> %v", first.Value, last.Value)
	}
	_ = res.Table().String()
}

func TestRunFig3Shape(t *testing.T) {
	cfg := tiny()
	cfg.TargetClaims = 20
	res := RunFig3(cfg)
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if row.Seconds <= 0 {
			t.Fatalf("%s at %v: time %v", row.Variant, row.Effort, row.Seconds)
		}
	}
	_ = res.Table().String()
}
