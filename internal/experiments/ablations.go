package experiments

import (
	"fmt"
	"time"

	"factcheck/internal/core"
	"factcheck/internal/em"
	"factcheck/internal/entropy"
	"factcheck/internal/factdb"
	"factcheck/internal/sim"
	"factcheck/internal/stats"
	"factcheck/internal/synth"
)

// AblationRow is one configuration of an ablation study.
type AblationRow struct {
	Setting    string
	AvgSeconds float64
	Precision  float64
	Extra      string
}

// AblationResult holds one ablation study's rows.
type AblationResult struct {
	Name string
	Rows []AblationRow
}

// Table renders an ablation study.
func (r AblationResult) Table() Table {
	t := Table{
		Title:  "Ablation — " + r.Name,
		Header: []string{"setting", "avg s/iter", "precision", "notes"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Setting, fmt.Sprintf("%.4f", row.AvgSeconds), f3(row.Precision), row.Extra})
	}
	return t
}

// ablationCorpus builds the standard ablation workload (wiki profile).
func ablationCorpus(cfg Config) *synth.Corpus {
	return synth.Generate(scaleFor(synth.Wikipedia, cfg.TargetClaims), cfg.Seed)
}

// RunAblationWarmStart compares iCRF's warm-started incremental inference
// (the paper's design) against cold re-inference from scratch at every
// iteration — the §3.2 motivation for view maintenance.
func RunAblationWarmStart(cfg Config) AblationResult {
	cfg = cfg.withDefaults()
	corpus := ablationCorpus(cfg)
	budget := corpus.DB.NumClaims / 2
	run := func(cold bool) AblationRow {
		s := core.NewSession(corpus.DB, core.Options{
			FullSweepEvery: 1, // paper-faithful per-answer EM: figures reproduce §8
			Seed:           cfg.Seed + 7,
			CandidatePool:  cfg.CandidatePool,
			Workers:        cfg.Workers,
			Budget:         budget,
		})
		user := &sim.Oracle{Truth: corpus.Truth}
		start := time.Now()
		iters := 0
		for s.State.NumLabeled() < budget {
			if cold {
				// Cold path: full re-inference instead of the warm chain.
				s.Engine.InferFull(s.State)
			}
			if s.Step(user) {
				break
			}
			iters++
		}
		elapsed := time.Since(start)
		name := "warm (iCRF)"
		if cold {
			name = "cold restart"
		}
		return AblationRow{
			Setting:    name,
			AvgSeconds: elapsed.Seconds() / float64(maxI(iters, 1)),
			Precision:  s.Precision(corpus.Truth),
		}
	}
	return AblationResult{
		Name: "warm-start vs cold-start inference",
		Rows: []AblationRow{run(false), run(true)},
	}
}

// RunAblationTrustCoupling removes the mutual-reinforcement channel (the
// trust feature) and measures the effect on guided validation.
func RunAblationTrustCoupling(cfg Config) AblationResult {
	cfg = cfg.withDefaults()
	corpus := ablationCorpus(cfg)
	budget := corpus.DB.NumClaims * 2 / 5
	run := func(disable bool) AblationRow {
		emCfg := em.DefaultConfig()
		emCfg.DisableTrust = disable
		s := core.NewSession(corpus.DB, core.Options{
			FullSweepEvery: 1, // paper-faithful per-answer EM: figures reproduce §8
			Seed:           cfg.Seed + 7,
			CandidatePool:  cfg.CandidatePool,
			Workers:        cfg.Workers,
			Budget:         budget,
			EM:             emCfg,
		})
		start := time.Now()
		s.Run(&sim.Oracle{Truth: corpus.Truth})
		elapsed := time.Since(start)
		name := "with trust coupling"
		if disable {
			name = "without trust coupling"
		}
		return AblationRow{
			Setting:    name,
			AvgSeconds: elapsed.Seconds() / float64(maxI(s.Iterations(), 1)),
			Precision:  s.Precision(corpus.Truth),
		}
	}
	return AblationResult{
		Name: "trust coupling (mutual reinforcement) on/off",
		Rows: []AblationRow{run(false), run(true)},
	}
}

// RunAblationEntropy compares the exact (Eq. 12) and approximate (Eq. 13)
// uncertainty measures: computation time and agreement (Pearson) over a
// sequence of validation states.
func RunAblationEntropy(cfg Config) AblationResult {
	cfg = cfg.withDefaults()
	corpus := ablationCorpus(cfg)
	s := core.NewSession(corpus.DB, core.Options{
		FullSweepEvery: 1, // paper-faithful per-answer EM: figures reproduce §8
		Seed:           cfg.Seed + 7,
		CandidatePool:  cfg.CandidatePool,
		Workers:        cfg.Workers,
		Budget:         corpus.DB.NumClaims / 2,
	})
	var exactVals, approxVals []float64
	var exactTime, approxTime time.Duration
	s.Observer = func(sess *core.Session) {
		t0 := time.Now()
		h, _ := entropy.Exact(sess.Engine.Model(), sess.State)
		exactTime += time.Since(t0)
		exactVals = append(exactVals, h)
		t1 := time.Now()
		a := entropy.Approx(sess.State)
		approxTime += time.Since(t1)
		approxVals = append(approxVals, a)
	}
	s.Run(&sim.Oracle{Truth: corpus.Truth})
	n := maxI(len(exactVals), 1)
	corr := stats.Pearson(exactVals, approxVals)
	return AblationResult{
		Name: "exact (Eq. 12) vs approximate (Eq. 13) entropy",
		Rows: []AblationRow{
			{Setting: "exact/Ising", AvgSeconds: exactTime.Seconds() / float64(n), Precision: s.Precision(corpus.Truth), Extra: fmt.Sprintf("corr=%.3f", corr)},
			{Setting: "approx/linear", AvgSeconds: approxTime.Seconds() / float64(n), Precision: s.Precision(corpus.Truth), Extra: fmt.Sprintf("corr=%.3f", corr)},
		},
	}
}

// RunAblationCandidatePool sweeps the what-if candidate pool size,
// trading selection time against guidance quality.
func RunAblationCandidatePool(cfg Config) AblationResult {
	cfg = cfg.withDefaults()
	corpus := ablationCorpus(cfg)
	res := AblationResult{Name: "candidate pool size"}
	for _, pool := range []int{4, 16, 64} {
		s := core.NewSession(corpus.DB, core.Options{
			FullSweepEvery: 1, // paper-faithful per-answer EM: figures reproduce §8
			Seed:           cfg.Seed + 7,
			CandidatePool:  pool,
			Workers:        cfg.Workers,
			Goal: func(sess *core.Session) bool {
				return sess.Precision(corpus.Truth) >= 0.9
			},
		})
		start := time.Now()
		n := s.Run(&sim.Oracle{Truth: corpus.Truth})
		elapsed := time.Since(start)
		res.Rows = append(res.Rows, AblationRow{
			Setting:    fmt.Sprintf("pool=%d", pool),
			AvgSeconds: elapsed.Seconds() / float64(maxI(s.Iterations(), 1)),
			Precision:  s.Precision(corpus.Truth),
			Extra:      fmt.Sprintf("effort@0.9=%s", pct(float64(n)/float64(corpus.DB.NumClaims))),
		})
	}
	return res
}

// RunAblationBatchGreedy compares the greedy submodular batch (§6.2)
// against a random batch of the same size at equal effort.
func RunAblationBatchGreedy(cfg Config) AblationResult {
	cfg = cfg.withDefaults()
	corpus := ablationCorpus(cfg)
	budget := corpus.DB.NumClaims / 2
	const k = 5
	greedy := func() AblationRow {
		s := core.NewSession(corpus.DB, core.Options{
			FullSweepEvery: 1, // paper-faithful per-answer EM: figures reproduce §8
			Seed:           cfg.Seed + 7,
			CandidatePool:  cfg.CandidatePool,
			Workers:        cfg.Workers,
			Budget:         budget,
			BatchSize:      k,
		})
		start := time.Now()
		s.Run(&sim.Oracle{Truth: corpus.Truth})
		return AblationRow{
			Setting:    "greedy submodular batch",
			AvgSeconds: time.Since(start).Seconds() / float64(maxI(s.Iterations(), 1)),
			Precision:  s.Precision(corpus.Truth),
		}
	}
	random := func() AblationRow {
		// Random batches: label k random claims per iteration.
		state := factdb.NewState(corpus.DB.NumClaims)
		engine := em.NewEngine(corpus.DB, em.DefaultConfig(), cfg.Seed+7)
		engine.InferFull(state)
		rng := stats.NewRNG(cfg.Seed + 13)
		start := time.Now()
		iters := 0
		for state.NumLabeled() < budget {
			unl := state.Unlabeled()
			rng.Shuffle(len(unl), func(i, j int) { unl[i], unl[j] = unl[j], unl[i] })
			take := k
			if take > len(unl) {
				take = len(unl)
			}
			for _, c := range unl[:take] {
				state.SetLabel(c, corpus.Truth[c])
			}
			engine.InferIncremental(state)
			iters++
		}
		g := engine.Grounding(state)
		return AblationRow{
			Setting:    "random batch",
			AvgSeconds: time.Since(start).Seconds() / float64(maxI(iters, 1)),
			Precision:  g.Precision(corpus.Truth),
		}
	}
	return AblationResult{
		Name: "greedy vs random batch selection (k=5)",
		Rows: []AblationRow{greedy(), random()},
	}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
