package entropy

import (
	"math"
	"testing"

	"factcheck/internal/crf"
	"factcheck/internal/factdb"
	"factcheck/internal/stats"
)

// pairDB: one source with two supported claims (coupled through trust),
// plus one isolated source/claim.
func pairDB(t *testing.T) *factdb.DB {
	t.Helper()
	db := &factdb.DB{
		Sources:   []factdb.Source{{ID: 0}, {ID: 1}},
		NumClaims: 3,
	}
	db.Documents = []factdb.Document{
		{ID: 0, Source: 0, Refs: []factdb.ClaimRef{{Claim: 0, Stance: factdb.Support}}},
		{ID: 1, Source: 0, Refs: []factdb.ClaimRef{{Claim: 1, Stance: factdb.Support}}},
		{ID: 2, Source: 1, Refs: []factdb.ClaimRef{{Claim: 2, Stance: factdb.Support}}},
	}
	if err := db.Finalize(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestApproxFreshStateIsMaxEntropy(t *testing.T) {
	state := factdb.NewState(5)
	want := 5 * math.Log(2)
	if got := Approx(state); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Approx = %v, want %v", got, want)
	}
}

func TestApproxDropsWithLabels(t *testing.T) {
	state := factdb.NewState(4)
	h0 := Approx(state)
	state.SetLabel(0, true)
	state.SetLabel(1, false)
	h1 := Approx(state)
	want := 2 * math.Log(2)
	if math.Abs(h1-want) > 1e-12 {
		t.Fatalf("Approx after labels = %v, want %v", h1, want)
	}
	if h1 >= h0 {
		t.Fatal("entropy must drop with labels")
	}
}

func TestApproxClaimsSubset(t *testing.T) {
	state := factdb.NewState(4)
	state.SetP(0, 0.9)
	got := ApproxClaims(state, []int32{0, 1})
	want := stats.BinaryEntropy(0.9) + math.Log(2)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ApproxClaims = %v, want %v", got, want)
	}
}

func TestApproxMarginals(t *testing.T) {
	got := ApproxMarginals([]float64{0.5, 1, 0})
	if math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("ApproxMarginals = %v", got)
	}
}

func TestSourceEntropy(t *testing.T) {
	got := SourceEntropy([]float64{0.5, 0.5, 1})
	if math.Abs(got-2*math.Log(2)) > 1e-12 {
		t.Fatalf("SourceEntropy = %v", got)
	}
}

func TestProjectNoCouplingMatchesIndependentEntropy(t *testing.T) {
	db := pairDB(t)
	m := crf.New(db)
	theta := make([]float64, m.Dim())
	theta[0] = 0.8 // bias only; trust weight zero
	m.SetTheta(theta)
	state := factdb.NewState(db.NumClaims)
	h, exact := Exact(m, state)
	if !exact {
		t.Fatal("independent model should be exact")
	}
	p := stats.Sigmoid(crf.OddsGain * 0.8)
	want := 3 * stats.BinaryEntropy(p)
	if math.Abs(h-want) > 1e-9 {
		t.Fatalf("Exact = %v, want %v", h, want)
	}
}

func TestProjectCouplingCreatesEdges(t *testing.T) {
	db := pairDB(t)
	m := crf.New(db)
	theta := make([]float64, m.Dim())
	theta[len(theta)-1] = 1.5 // trust coupling
	m.SetTheta(theta)
	state := factdb.NewState(db.NumClaims)
	mrf := Project(m, state)
	if len(mrf.Edges) != 1 {
		t.Fatalf("edges = %d, want 1 (claims 0-1 share source 0)", len(mrf.Edges))
	}
	if mrf.Edges[0].W <= 0 {
		t.Fatalf("same-stance coupling should be positive, got %v", mrf.Edges[0].W)
	}
}

func TestProjectOpposingStancesCoupleNegatively(t *testing.T) {
	db := &factdb.DB{
		Sources:   []factdb.Source{{ID: 0}},
		NumClaims: 2,
	}
	db.Documents = []factdb.Document{
		{ID: 0, Source: 0, Refs: []factdb.ClaimRef{{Claim: 0, Stance: factdb.Support}}},
		{ID: 1, Source: 0, Refs: []factdb.ClaimRef{{Claim: 1, Stance: factdb.Refute}}},
	}
	if err := db.Finalize(); err != nil {
		t.Fatal(err)
	}
	m := crf.New(db)
	theta := make([]float64, m.Dim())
	theta[len(theta)-1] = 2
	m.SetTheta(theta)
	mrf := Project(m, factdb.NewState(2))
	if len(mrf.Edges) != 1 || mrf.Edges[0].W >= 0 {
		t.Fatalf("opposing stances should couple negatively: %+v", mrf.Edges)
	}
}

func TestProjectFoldsLabelledNeighbours(t *testing.T) {
	db := pairDB(t)
	m := crf.New(db)
	theta := make([]float64, m.Dim())
	theta[len(theta)-1] = 1.5
	m.SetTheta(theta)
	state := factdb.NewState(db.NumClaims)
	state.SetLabel(0, true)
	mrf := Project(m, state)
	// Two unlabelled claims remain; the coupling to the labelled claim
	// folds into claim 1's field as a positive shift.
	if mrf.N() != 2 {
		t.Fatalf("nodes = %d, want 2", mrf.N())
	}
	if len(mrf.Edges) != 0 {
		t.Fatalf("no unlabelled pairs share a source, edges = %v", mrf.Edges)
	}
	if mrf.Theta[0] <= 0 {
		t.Fatalf("claim 1's field should be lifted by the credible label, got %v", mrf.Theta[0])
	}
	// Labelling false should push the field the other way.
	state2 := factdb.NewState(db.NumClaims)
	state2.SetLabel(0, false)
	mrf2 := Project(m, state2)
	if mrf2.Theta[0] >= 0 {
		t.Fatalf("claim 1's field should drop under a non-credible label, got %v", mrf2.Theta[0])
	}
}

func TestExactBoundedByMaxEntropy(t *testing.T) {
	db := pairDB(t)
	m := crf.New(db)
	theta := make([]float64, m.Dim())
	theta[0] = 0.4
	theta[len(theta)-1] = 0.7
	m.SetTheta(theta)
	state := factdb.NewState(db.NumClaims)
	h, _ := Exact(m, state)
	if h < 0 || h > 3*math.Log(2)+1e-9 {
		t.Fatalf("Exact entropy = %v out of bounds", h)
	}
}

func TestExactVersusApproxOnIndependentModel(t *testing.T) {
	// With zero trust coupling the exact and approximate measures agree
	// once the approximate probabilities equal the unary sigmoids.
	db := pairDB(t)
	m := crf.New(db)
	theta := make([]float64, m.Dim())
	theta[0] = -0.6
	m.SetTheta(theta)
	state := factdb.NewState(db.NumClaims)
	p := stats.Sigmoid(crf.OddsGain * -0.6)
	for c := 0; c < 3; c++ {
		state.SetP(c, p)
	}
	hApprox := Approx(state)
	hExact, _ := Exact(m, state)
	if math.Abs(hApprox-hExact) > 1e-9 {
		t.Fatalf("approx %v != exact %v on independent model", hApprox, hExact)
	}
}
