// Package entropy implements the uncertainty measures of §4.1: the linear
// approximation of Eq. 13 (sum of per-claim binary entropies) and the
// exact computation of Eq. 12 via a pairwise-MRF projection of the CRF
// solved with Ising/tree methods (package ising). The measures drive the
// information-driven and source-driven guidance strategies and the
// early-termination indicators.
package entropy

import (
	"math"

	"factcheck/internal/crf"
	"factcheck/internal/factdb"
	"factcheck/internal/ising"
	"factcheck/internal/stats"
)

// Approx returns the Eq. 13 approximation H_C(Q) ≈ Σ_c h(P(c)) over all
// claims. Labelled claims contribute zero (their probability is pinned to
// 0 or 1).
func Approx(state *factdb.State) float64 {
	h := 0.0
	for c := 0; c < state.Len(); c++ {
		h += stats.BinaryEntropy(state.P(c))
	}
	return h
}

// ApproxClaims returns the Eq. 13 approximation restricted to the given
// claims; used for component-local what-if evaluation.
func ApproxClaims(state *factdb.State, claims []int32) float64 {
	h := 0.0
	for _, c := range claims {
		h += stats.BinaryEntropy(state.P(int(c)))
	}
	return h
}

// ApproxMarginals returns Σ h(p) over a raw marginal vector.
func ApproxMarginals(p []float64) float64 {
	h := 0.0
	for _, v := range p {
		h += stats.BinaryEntropy(v)
	}
	return h
}

// SourceEntropy returns H_S(Q) per Eq. 18 from source trustworthiness
// values Pr(s).
func SourceEntropy(trust []float64) float64 {
	h := 0.0
	for _, p := range trust {
		h += stats.BinaryEntropy(p)
	}
	return h
}

// maxPairSourceDegree caps the per-source pairwise expansion of the exact
// projection; prolific sources would otherwise contribute O(deg²) edges.
// The cap only affects the "origin" (exact-entropy) variant benchmarked
// in Fig. 2; the scalable variant (Approx) has no such term.
const maxPairSourceDegree = 64

// Project builds the pairwise binary MRF whose joint distribution matches
// the Gibbs conditionals of the chain (see gibbs.Chain.LogOdds): unary
// fields collect the stance-signed clique base scores, and claims sharing
// a source are coupled with an agreement weight proportional to the trust
// coupling θ_trust. Labelled claims are folded into the unary fields of
// their neighbours, so the MRF ranges over unlabelled claims only.
func Project(m *crf.Model, state *factdb.State) *ising.MRF {
	db := m.DB
	base := m.BaseScores()
	trustW := m.TrustWeight()

	// Node index over unlabelled claims.
	idx := make([]int, db.NumClaims)
	var nodes []int
	for c := 0; c < db.NumClaims; c++ {
		if state.Labeled(c) {
			idx[c] = -1
		} else {
			idx[c] = len(nodes)
			nodes = append(nodes, c)
		}
	}
	mrf := ising.New(len(nodes))

	// Unary fields: average stance-signed base scores scaled by the
	// odds gain, matching gibbs.Chain.LogOdds.
	for _, c := range nodes {
		th := 0.0
		for _, ci := range db.ClaimCliques[c] {
			cl := db.Cliques[ci]
			th += cl.Stance.Sign() * base[ci]
		}
		if n := len(db.ClaimCliques[c]); n > 0 {
			th = crf.OddsGain * th / float64(n)
		}
		mrf.Theta[idx[c]] = th
	}
	if trustW == 0 {
		return mrf
	}

	// signedDeg[s][c] = (#support − #refute) cliques of claim c from
	// source s, accumulated in one pass over the cliques.
	totals := make([]int, len(db.Sources))
	signedDeg := make([]map[int32]float64, len(db.Sources))
	for _, cl := range db.Cliques {
		totals[cl.Source]++
		if signedDeg[cl.Source] == nil {
			signedDeg[cl.Source] = make(map[int32]float64)
		}
		signedDeg[cl.Source][cl.Claim] += cl.Stance.Sign()
	}
	type pairKey struct{ a, b int }
	acc := make(map[pairKey]float64)
	for s, claims := range db.SourceClaims {
		if len(claims) < 2 {
			continue
		}
		if len(claims) > maxPairSourceDegree {
			claims = claims[:maxPairSourceDegree]
		}
		total := totals[s]
		sd := signedDeg[s]
		if total < 2 {
			continue
		}
		norm := trustW / float64(total-1)
		for i := 0; i < len(claims); i++ {
			for j := i + 1; j < len(claims); j++ {
				a, b := int(claims[i]), int(claims[j])
				na, nb := len(db.ClaimCliques[a]), len(db.ClaimCliques[b])
				if na == 0 || nb == 0 {
					continue
				}
				// Scale like the averaged conditionals (geometric mean
				// of the two claims' clique counts).
				scale := crf.OddsGain / math.Sqrt(float64(na)*float64(nb))
				w := scale * norm * sd[claims[i]] * sd[claims[j]]
				if w == 0 {
					continue
				}
				switch {
				case idx[a] >= 0 && idx[b] >= 0:
					k := pairKey{idx[a], idx[b]}
					if k.a > k.b {
						k.a, k.b = k.b, k.a
					}
					acc[k] += w
				case idx[a] >= 0:
					// b is labelled: fold into a's field.
					if v, _ := state.Label(b); v {
						mrf.Theta[idx[a]] += w
					} else {
						mrf.Theta[idx[a]] -= w
					}
				case idx[b] >= 0:
					if v, _ := state.Label(a); v {
						mrf.Theta[idx[b]] += w
					} else {
						mrf.Theta[idx[b]] -= w
					}
				}
			}
		}
	}
	for k, w := range acc {
		mrf.AddEdge(k.a, k.b, w)
	}
	return mrf
}

// Exact returns the Eq. 12 entropy H_C(Q) of the projected model,
// computed exactly when the projection is a forest and via loopy BP
// otherwise (the second return reports exactness).
func Exact(m *crf.Model, state *factdb.State) (float64, bool) {
	mrf := Project(m, state)
	inf := mrf.Infer(0)
	return inf.Entropy, inf.Exact
}
