package synth

import (
	"reflect"
	"testing"
)

func TestGenerateDeltaDeterministic(t *testing.T) {
	p := Wikipedia.Scaled(0.05)
	a := GenerateDelta(p, 0.1, 7)
	b := GenerateDelta(p, 0.1, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical (profile, frac, seed) produced different deltas")
	}
	c := GenerateDelta(p, 0.1, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical deltas")
	}
}

func TestGenerateDeltaShape(t *testing.T) {
	p := Wikipedia.Scaled(0.05)
	d := GenerateDelta(p, 0.1, 7)
	if d.NewClaims < 1 || len(d.Sources) < 1 || len(d.Documents) < d.NewClaims {
		t.Fatalf("degenerate delta: %d claims, %d sources, %d documents",
			d.NewClaims, len(d.Sources), len(d.Documents))
	}
	if len(d.Truth) != d.NewClaims {
		t.Fatalf("truth rides with the delta: %d entries for %d new claims", len(d.Truth), d.NewClaims)
	}
	// No-orphan coverage: document i < NewClaims cites new claim i.
	for i := 0; i < d.NewClaims; i++ {
		if got := d.Documents[i].Refs[0].Claim; got != -(i + 1) {
			t.Fatalf("document %d cites claim %d, want coverage ref %d", i, got, -(i + 1))
		}
	}
	// Signed addressing stays in range at any base shape generated from
	// the profile: new rows in [-n, -1], existing rows in [0, base).
	for i, doc := range d.Documents {
		if doc.Source < -len(d.Sources) || doc.Source >= p.Sources {
			t.Fatalf("document %d source %d out of range [-%d, %d)", i, doc.Source, len(d.Sources), p.Sources)
		}
		for _, ref := range doc.Refs {
			if ref.Claim < -d.NewClaims || ref.Claim >= p.Claims {
				t.Fatalf("document %d claim ref %d out of range [-%d, %d)", i, ref.Claim, d.NewClaims, p.Claims)
			}
		}
	}
}

func TestGenerateDeltaTextFeatures(t *testing.T) {
	p := Wikipedia.Scaled(0.05).WithText()
	d := GenerateDelta(p, 0.1, 7)
	for i, doc := range d.Documents {
		if len(doc.Features) == 0 {
			t.Fatalf("text-mode document %d has no features", i)
		}
	}
}

func TestGenerateDeltaPanicsOnBadFrac(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for frac <= 0")
		}
	}()
	GenerateDelta(Wikipedia.Scaled(0.05), 0, 1)
}

func TestCommunityProfile(t *testing.T) {
	p := Wikipedia.Scaled(0.2)
	if got := CommunityProfile(p, 1); !reflect.DeepEqual(got, p) {
		t.Fatal("parts <= 1 must return the profile unchanged")
	}
	sub := CommunityProfile(p, 4)
	if sub.Claims >= p.Claims || sub.Sources >= p.Sources || sub.Documents >= p.Documents {
		t.Fatalf("4-way community sub-profile not smaller: %+v vs %+v", sub, p)
	}
}
