package synth

import "testing"

func TestGenerateCheckedRejectsBadProfiles(t *testing.T) {
	cases := []struct {
		name string
		p    Profile
	}{
		{"empty", Profile{Name: "empty"}},
		{"no claims", Profile{Name: "c0", Sources: 5, Documents: 10}},
		{"no sources", Profile{Name: "s0", Claims: 4, Documents: 10}},
		{"too few documents", Profile{Name: "d<c", Sources: 5, Claims: 10, Documents: 4}},
		{"bad ratio", Profile{Name: "ratio", Sources: 5, Claims: 4, Documents: 10, CredibleRatio: 1.5}},
	}
	for _, tc := range cases {
		if _, err := GenerateChecked(tc.p, 1); err == nil {
			t.Errorf("%s: GenerateChecked accepted invalid profile", tc.name)
		}
	}
}

func TestGenerateCheckedMatchesGenerate(t *testing.T) {
	p := Wikipedia.Scaled(0.05)
	a, err := GenerateChecked(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	b := Generate(p, 9)
	if a.DB.Stats() != b.DB.Stats() {
		t.Fatal("GenerateChecked and Generate disagree")
	}
}
