package synth

import (
	"reflect"
	"testing"
)

func TestGenerateCommunitiesIsMultiComponent(t *testing.T) {
	parts := 8
	c := GenerateCommunities(Wikipedia, parts, 7)
	db := c.DB
	if db.NumComponents() < parts {
		t.Fatalf("components = %d, want >= %d", db.NumComponents(), parts)
	}
	if db.NumClaims != len(c.Truth) || db.NumClaims != len(c.ClaimOrder) {
		t.Fatalf("sizes inconsistent: %d claims, %d truth, %d order",
			db.NumClaims, len(c.Truth), len(c.ClaimOrder))
	}
	if len(c.SourceTrust) != len(db.Sources) {
		t.Fatalf("source trust length %d for %d sources", len(c.SourceTrust), len(db.Sources))
	}
	// The merged profile reports the merged sizes.
	if c.Profile.Claims != db.NumClaims || c.Profile.Sources != len(db.Sources) {
		t.Fatalf("profile sizes %d/%d vs db %d/%d",
			c.Profile.Claims, c.Profile.Sources, db.NumClaims, len(db.Sources))
	}
	// ClaimOrder must remain a permutation of the merged claim space.
	seen := make([]bool, db.NumClaims)
	for _, cl := range c.ClaimOrder {
		if cl < 0 || cl >= db.NumClaims || seen[cl] {
			t.Fatalf("ClaimOrder not a permutation at claim %d", cl)
		}
		seen[cl] = true
	}
}

func TestGenerateCommunitiesDeterministic(t *testing.T) {
	a := GenerateCommunities(Wikipedia.Scaled(0.5), 4, 11)
	b := GenerateCommunities(Wikipedia.Scaled(0.5), 4, 11)
	if !reflect.DeepEqual(a.Truth, b.Truth) || !reflect.DeepEqual(a.ClaimOrder, b.ClaimOrder) {
		t.Fatal("same (profile, parts, seed) produced different corpora")
	}
	if !reflect.DeepEqual(a.DB.Documents, b.DB.Documents) {
		t.Fatal("documents diverged")
	}
	c := GenerateCommunities(Wikipedia.Scaled(0.5), 4, 12)
	if reflect.DeepEqual(a.Truth, c.Truth) {
		t.Fatal("different seeds produced identical truth")
	}
}

func TestGenerateCommunitiesSinglePartFallsBack(t *testing.T) {
	a := GenerateCommunities(Wikipedia.Scaled(0.25), 1, 5)
	b := Generate(Wikipedia.Scaled(0.25), 5)
	if !reflect.DeepEqual(a.Truth, b.Truth) {
		t.Fatal("parts=1 must be plain Generate")
	}
}
