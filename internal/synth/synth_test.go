package synth

import (
	"math"
	"testing"

	"factcheck/internal/em"
	"factcheck/internal/factdb"
	"factcheck/internal/stats"
)

func TestGenerateDeterministic(t *testing.T) {
	p := Wikipedia.Scaled(0.2)
	a := Generate(p, 42)
	b := Generate(p, 42)
	if a.DB.Stats() != b.DB.Stats() {
		t.Fatalf("stats differ: %v vs %v", a.DB.Stats(), b.DB.Stats())
	}
	for c := range a.Truth {
		if a.Truth[c] != b.Truth[c] {
			t.Fatal("truth differs across identical seeds")
		}
	}
	for d := range a.DB.Documents {
		if a.DB.Documents[d].Source != b.DB.Documents[d].Source ||
			a.DB.Documents[d].Refs[0] != b.DB.Documents[d].Refs[0] {
			t.Fatal("documents differ across identical seeds")
		}
	}
	c := Generate(p, 43)
	same := true
	for d := range a.DB.Documents {
		if a.DB.Documents[d].Refs[0] != c.DB.Documents[d].Refs[0] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestGenerateMatchesProfileSizes(t *testing.T) {
	for _, p := range []Profile{Wikipedia.Scaled(0.1), Health.Scaled(0.01), Snopes.Scaled(0.01)} {
		c := Generate(p, 1)
		st := c.DB.Stats()
		if st.Sources != p.Sources || st.Documents != p.Documents || st.Claims != p.Claims {
			t.Fatalf("%s: stats %v do not match profile %+v", p.Name, st, p)
		}
		if len(c.Truth) != p.Claims || len(c.SourceTrust) != p.Sources {
			t.Fatal("latent vectors wrong length")
		}
		if len(c.ClaimOrder) != p.Claims {
			t.Fatal("claim order wrong length")
		}
	}
}

func TestPublishedProfileSizes(t *testing.T) {
	// The §8.1 corpus sizes, verbatim.
	cases := []struct {
		p                 Profile
		src, docs, claims int
	}{
		{Wikipedia, 1955, 3228, 157},
		{Health, 11206, 48083, 529},
		{Snopes, 23260, 80421, 4856},
	}
	for _, tc := range cases {
		if tc.p.Sources != tc.src || tc.p.Documents != tc.docs || tc.p.Claims != tc.claims {
			t.Fatalf("%s profile sizes drifted: %+v", tc.p.Name, tc.p)
		}
	}
}

func TestClaimOrderIsPermutation(t *testing.T) {
	c := Generate(Wikipedia.Scaled(0.3), 7)
	seen := make([]bool, len(c.ClaimOrder))
	for _, id := range c.ClaimOrder {
		if id < 0 || id >= len(seen) || seen[id] {
			t.Fatalf("ClaimOrder not a permutation at %d", id)
		}
		seen[id] = true
	}
}

func TestScaledBounds(t *testing.T) {
	q := Snopes.Scaled(0.0001)
	if q.Claims < 8 || q.Sources < 5 || q.Documents < 2*q.Claims {
		t.Fatalf("scaled profile below floors: %+v", q)
	}
	if Wikipedia.Scaled(1).Name != "wiki" {
		t.Fatal("unit scale should keep the name")
	}
	if q.Name == "snopes" {
		t.Fatal("scaled profile should be renamed")
	}
}

func TestScaledPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scaled(0) did not panic")
		}
	}()
	Wikipedia.Scaled(0)
}

func TestByName(t *testing.T) {
	for _, name := range []string{"wiki", "health", "snopes"} {
		p, err := ByName(name)
		if err != nil || p.Name != name {
			t.Fatalf("ByName(%q) = %+v, %v", name, p, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName should reject unknown profiles")
	}
}

func TestStanceCorrelatesWithTrustAndTruth(t *testing.T) {
	c := Generate(Wikipedia.Scaled(0.5), 11)
	// Documents of high-trust sources should carry the correct stance
	// far more often than those of low-trust sources.
	var hiCorrect, hiTotal, loCorrect, loTotal float64
	for _, d := range c.DB.Documents {
		ref := d.Refs[0]
		correct := (ref.Stance == factdb.Support) == c.Truth[ref.Claim]
		if c.SourceTrust[d.Source] > 0.75 {
			hiTotal++
			if correct {
				hiCorrect++
			}
		} else if c.SourceTrust[d.Source] < 0.5 {
			loTotal++
			if correct {
				loCorrect++
			}
		}
	}
	if hiTotal < 10 || loTotal < 10 {
		t.Skip("not enough mass in trust tails for this seed")
	}
	hi, lo := hiCorrect/hiTotal, loCorrect/loTotal
	if hi <= lo+0.1 {
		t.Fatalf("stance correctness: high-trust %v vs low-trust %v", hi, lo)
	}
}

func TestDocFeaturesInformative(t *testing.T) {
	c := Generate(Wikipedia.Scaled(0.5), 13)
	// The first (strongest) document feature must separate correct from
	// incorrect stances after standardisation.
	var mc, mi float64
	var nc, ni int
	for _, d := range c.DB.Documents {
		ref := d.Refs[0]
		correct := (ref.Stance == factdb.Support) == c.Truth[ref.Claim]
		if correct {
			mc += d.Features[0]
			nc++
		} else {
			mi += d.Features[0]
			ni++
		}
	}
	if nc == 0 || ni == 0 {
		t.Skip("degenerate stance split")
	}
	mc /= float64(nc)
	mi /= float64(ni)
	if mc-mi < 0.5 {
		t.Fatalf("feature separation = %v, want informative channel", mc-mi)
	}
}

func TestSourceFeaturesCorrelateWithTrust(t *testing.T) {
	c := Generate(Snopes.Scaled(0.02), 17)
	// The direct probe channel (index 3) must correlate with latent trust.
	probe := make([]float64, len(c.SourceTrust))
	for s := range probe {
		probe[s] = c.DB.Sources[s].Features[3]
	}
	r := stats.Pearson(probe, c.SourceTrust)
	if r < 0.3 {
		t.Fatalf("probe correlation with trust = %v", r)
	}
}

func TestFeatureStandardisation(t *testing.T) {
	c := Generate(Health.Scaled(0.02), 19)
	// Document features should be approximately centred.
	d := len(c.DB.Documents[0].Features)
	sums := make([]float64, d)
	for _, doc := range c.DB.Documents {
		for j, f := range doc.Features {
			sums[j] += f
		}
	}
	for j := range sums {
		if m := sums[j] / float64(len(c.DB.Documents)); math.Abs(m) > 0.05 {
			t.Fatalf("doc feature %d mean = %v after standardisation", j, m)
		}
	}
}

func TestCorpusLearnable(t *testing.T) {
	// End-to-end: on a small wiki corpus, labelling 40% of claims should
	// lift grounding precision well above the no-input baseline.
	c := Generate(Wikipedia.Scaled(0.35), 23)
	n := c.DB.NumClaims
	state := factdb.NewState(n)
	e := em.NewEngine(c.DB, em.DefaultConfig(), 5)
	e.InferFull(state)
	p0 := e.Grounding(state).Precision(c.Truth)
	for i := 0; i < n*2/5; i++ {
		cID := c.ClaimOrder[i]
		state.SetLabel(cID, c.Truth[cID])
		e.InferIncremental(state)
	}
	p1 := e.Grounding(state).Precision(c.Truth)
	if p1 < p0+0.1 {
		t.Fatalf("labels did not help: %v -> %v", p0, p1)
	}
	if p1 < 0.7 {
		t.Fatalf("precision after 40%% labels = %v, want >= 0.7", p1)
	}
}

func TestZipfDegreeSkew(t *testing.T) {
	c := Generate(Snopes.Scaled(0.02), 29)
	counts := make([]int, len(c.DB.Sources))
	for _, d := range c.DB.Documents {
		counts[d.Source]++
	}
	maxC, sum := 0, 0
	for _, n := range counts {
		sum += n
		if n > maxC {
			maxC = n
		}
	}
	mean := float64(sum) / float64(len(counts))
	if float64(maxC) < 5*mean {
		t.Fatalf("source degrees not skewed: max %d vs mean %v", maxC, mean)
	}
}

func TestTextDocumentsProfile(t *testing.T) {
	p := Wikipedia.Scaled(0.2).WithText()
	c := Generate(p, 31)
	if len(c.DocText) != len(c.DB.Documents) {
		t.Fatalf("DocText length = %d, want %d", len(c.DocText), len(c.DB.Documents))
	}
	for d, txt := range c.DocText {
		if txt == "" {
			t.Fatalf("document %d has empty text", d)
		}
	}
	// Feature dimensionality follows the linguistic extractor.
	if got := c.DB.DocFeatureDim(); got != 8 {
		t.Fatalf("doc feature dim = %d, want 8 (textfeat)", got)
	}
	if p.Name != "wiki@0.2+text" {
		t.Fatalf("profile name = %q", p.Name)
	}
}

func TestTextCorpusLearnable(t *testing.T) {
	// The real text -> extraction path must still produce a learnable
	// corpus: 40% oracle labels lift precision clearly above the
	// automated baseline.
	c := Generate(Wikipedia.Scaled(0.3).WithText(), 37)
	n := c.DB.NumClaims
	state := factdb.NewState(n)
	e := em.NewEngine(c.DB, em.DefaultConfig(), 5)
	e.InferFull(state)
	p0 := e.Grounding(state).Precision(c.Truth)
	for i := 0; i < n*2/5; i++ {
		cID := c.ClaimOrder[i]
		state.SetLabel(cID, c.Truth[cID])
		e.InferIncremental(state)
	}
	p1 := e.Grounding(state).Precision(c.Truth)
	if p1 < p0+0.08 {
		t.Fatalf("text corpus did not learn: %v -> %v", p0, p1)
	}
}

func TestTextDocumentsDeterministic(t *testing.T) {
	p := Wikipedia.Scaled(0.1).WithText()
	a := Generate(p, 41)
	b := Generate(p, 41)
	for d := range a.DocText {
		if a.DocText[d] != b.DocText[d] {
			t.Fatalf("document %d text differs across identical seeds", d)
		}
	}
}
