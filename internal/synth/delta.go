package synth

import (
	"math"

	"factcheck/internal/factdb"
	"factcheck/internal/stats"
	"factcheck/internal/textfeat"
)

// GenerateDelta builds a position-independent corpus increment from the
// same generative model as Generate: frac scales the profile's row
// counts (a frac of 0.05 yields a delta ~5% the corpus size, with at
// least one claim, source and document). Identical (profile, frac,
// seed) triples yield identical deltas, so a workload user can derive
// its arrivals from its user seed and replay them bit-identically.
//
// The delta references the base corpus only through ids that exist in
// any database generated from the profile — existing-claim and
// existing-source references are drawn from [0, p.Claims) and
// [0, p.Sources) — so the same delta applies at any later shape, no
// matter how many other deltas landed first. A share of the documents
// reference existing rows deliberately: those arrivals merge connected
// components, which is the structural event the incremental maintenance
// path (DB.Extend, engine Grow, gain-cache invalidation) exists for.
//
// Two departures from Generate, both inherent to streaming arrival:
// features are emitted on an approximate z-scale (arrivals cannot be
// re-standardised against a corpus they have not joined yet), and new
// sources carry centrality proxies instead of PageRank/HITS scores (a
// cold source has no settled place in the hyperlink graph). Both keep
// the property the engine actually depends on — informative-but-noisy
// correlation with the latent variables.
//
// Truth is filled with the ground-truth credibility of the delta's new
// claims, riding inside the delta as factdb.Delta.Truth documents.
func GenerateDelta(p Profile, frac float64, seed int64) factdb.Delta {
	if frac <= 0 {
		panic("synth: non-positive delta fraction")
	}
	r := stats.NewRNG(seed)
	nC := maxInt(1, int(math.Round(float64(p.Claims)*frac)))
	nS := maxInt(1, int(math.Round(float64(p.Sources)*frac)))
	nD := maxInt(nC, int(math.Round(float64(p.Documents)*frac)))

	truth := make([]bool, nC)
	for c := range truth {
		truth[c] = r.Bernoulli(p.CredibleRatio)
	}
	hard := make([]bool, nC)
	for c := range hard {
		hard[c] = r.Bernoulli(p.HardClaimRatio)
	}
	trust := make([]float64, nS)
	for s := range trust {
		trust[s] = r.Beta(p.TrustAlpha, p.TrustBeta)
	}

	// New sources: z-scale stand-ins for the base corpus's standardised
	// feature channels. Centrality proxies correlate with τ exactly as
	// PageRank/HITS do in Generate (trustworthy sources attract links);
	// activity sits below zero because an arriving source has few
	// documents yet; the direct trust probe and noise channel match
	// Generate's construction.
	trustMean := p.TrustAlpha / (p.TrustAlpha + p.TrustBeta)
	d := factdb.Delta{NewClaims: nC, Truth: truth}
	for s := 0; s < nS; s++ {
		d.Sources = append(d.Sources, factdb.DeltaSource{Features: []float64{
			2.0*(trust[s]-trustMean) + 0.6*r.NormFloat64(),
			2.0*(trust[s]-trustMean) + 0.8*r.NormFloat64(),
			-0.5 + 0.5*r.NormFloat64(),
			trust[s] + 0.35*r.NormFloat64(),
			r.NormFloat64(),
		}})
	}

	// Documents: each new claim gets one guaranteed document (the same
	// no-orphan coverage Generate provides), the remainder follow the
	// profile's Zipf skews. A slice of the extra documents deliberately
	// cite base-corpus claims and sources so arrivals attach to — and
	// merge — existing components.
	const (
		existingClaimShare  = 0.30
		existingSourceShare = 0.25
	)
	srcZipf := stats.NewZipf(nS, p.SourceZipf)
	clmZipf := stats.NewZipf(nC, p.ClaimZipf)
	baseSrcZipf := stats.NewZipf(p.Sources, p.SourceZipf)
	baseClmZipf := stats.NewZipf(p.Claims, p.ClaimZipf)
	var composer *textfeat.Composer
	if p.TextDocuments {
		composer = textfeat.NewComposer(seed ^ 0x7e7)
	}
	nDocFeat := len(p.DocSignal) + p.DocNoiseChannels
	for i := 0; i < nD; i++ {
		src := -(srcZipf.Draw(r) + 1) // delta source, signed addressing
		srcTrust := trust[-src-1]
		if i >= nC && r.Float64() < existingSourceShare {
			src = baseSrcZipf.Draw(r)
			// The base source's latent τ is unknown here; a draw from the
			// same Beta prior is the correct marginal.
			srcTrust = r.Beta(p.TrustAlpha, p.TrustBeta)
		}
		claim := -(i + 1) // coverage guarantee for i < nC
		claimTruth, claimHard := true, false
		if i < nC {
			claimTruth, claimHard = truth[i], hard[i]
		} else if r.Float64() < existingClaimShare {
			claim = baseClmZipf.Draw(r)
			claimTruth = r.Bernoulli(p.CredibleRatio) // marginal belief
			claimHard = r.Bernoulli(p.HardClaimRatio)
		} else {
			j := clmZipf.Draw(r)
			claim = -(j + 1)
			claimTruth, claimHard = truth[j], hard[j]
		}

		pCorrect := clampProb(srcTrust)
		if claimHard {
			pCorrect = 0.5
		}
		correct := r.Bernoulli(pCorrect)
		st := factdb.Refute
		if claimTruth == correct {
			st = factdb.Support
		}
		sign := -1.0
		if correct {
			sign = 1.0
		}
		if claimHard {
			sign = 0
		}
		var feats []float64
		if p.TextDocuments {
			quality := stats.Clamp(0.5+0.35*sign+0.15*r.NormFloat64(), 0, 1)
			feats = textfeat.Extract(composer.Compose(quality, 2+r.Intn(4)))
		} else {
			feats = make([]float64, nDocFeat)
			for k, mu := range p.DocSignal {
				// Divide by the channel's analytic σ so the delta lands on
				// the same z-scale the base corpus was standardised to.
				feats[k] = (mu*sign + p.FeatureNoise*r.NormFloat64()) /
					math.Sqrt(mu*mu+p.FeatureNoise*p.FeatureNoise)
			}
			for k := len(p.DocSignal); k < nDocFeat; k++ {
				feats[k] = r.NormFloat64()
			}
		}
		d.Documents = append(d.Documents, factdb.DeltaDocument{
			Source:   src,
			Features: feats,
			Refs:     []factdb.DeltaRef{{Claim: claim, Stance: st}},
		})
	}
	return d
}
