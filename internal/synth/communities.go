package synth

import (
	"fmt"

	"factcheck/internal/factdb"
	"factcheck/internal/stats"
)

// CommunityProfile returns the per-community sub-profile a
// GenerateCommunities call with these arguments generates `parts` copies
// of, so callers (e.g. admission control) can size the merged corpus
// before generating anything.
func CommunityProfile(p Profile, parts int) Profile {
	if parts <= 1 {
		return p
	}
	return p.Scaled(1 / float64(parts))
}

// GenerateCommunities generates a corpus of `parts` independent
// communities, each an unscaled-shape replica of profile p at 1/parts
// size, merged into one fact database over disjoint claim, source and
// document id spaces. The §8.1 generator draws document endpoints from
// global Zipf popularity, which makes its corpora (nearly) fully
// connected; real multi-topic corpora instead decompose into many
// weakly-interacting communities, and it is exactly that component
// structure the §5.1 graph-partition machinery — component-sharded
// E-steps, component-restricted what-if scoring, and the per-answer
// dirty-component path — feeds on. The merged database therefore has at
// least `parts` connected components (a community may itself split
// further).
//
// Identical (profile, parts, seed) triples yield identical corpora; each
// community draws from its own StreamSeed-derived stream. ClaimOrder
// concatenates the community orders with offset ids. The merged corpus
// carries no standardisation statistics (each community standardised its
// own features), so the streaming featurisation path does not apply.
func GenerateCommunities(p Profile, parts int, seed int64) *Corpus {
	if parts <= 1 {
		return Generate(p, seed)
	}
	sub := CommunityProfile(p, parts)
	db := &factdb.DB{}
	merged := &Corpus{}
	var claimOff, srcOff, docOff int
	for i := 0; i < parts; i++ {
		c := Generate(sub, stats.StreamSeed(uint64(seed), uint64(i)))
		for _, s := range c.DB.Sources {
			db.Sources = append(db.Sources, factdb.Source{ID: s.ID + srcOff, Features: s.Features})
		}
		for _, d := range c.DB.Documents {
			refs := make([]factdb.ClaimRef, len(d.Refs))
			for j, r := range d.Refs {
				refs[j] = factdb.ClaimRef{Claim: r.Claim + claimOff, Stance: r.Stance}
			}
			db.Documents = append(db.Documents, factdb.Document{
				ID:       d.ID + docOff,
				Source:   d.Source + srcOff,
				Features: d.Features,
				Refs:     refs,
			})
		}
		merged.Truth = append(merged.Truth, c.Truth...)
		merged.SourceTrust = append(merged.SourceTrust, c.SourceTrust...)
		for _, cl := range c.ClaimOrder {
			merged.ClaimOrder = append(merged.ClaimOrder, cl+claimOff)
		}
		merged.DocText = append(merged.DocText, c.DocText...)
		claimOff += c.DB.NumClaims
		srcOff += len(c.DB.Sources)
		docOff += len(c.DB.Documents)
	}
	db.NumClaims = claimOff
	if err := db.Finalize(); err != nil {
		panic(fmt.Sprintf("synth: merged community database invalid: %v", err))
	}
	prof := p
	prof.Name = fmt.Sprintf("%s/%dc", p.Name, parts)
	prof.Claims = claimOff
	prof.Sources = srcOff
	prof.Documents = docOff
	merged.Profile = prof
	merged.DB = db
	if !p.TextDocuments {
		merged.DocText = nil
	}
	return merged
}
